#include "usecase/nersc_olcf.hpp"

#include <gtest/gtest.h>

namespace scidmz::usecase {
namespace {

const NerscOlcfResult& sharedResult() {
  static const NerscOlcfResult result = runNerscOlcf();
  return result;
}

TEST(NerscOlcf, BeforeASingleFileTakesMoreThanAWorkday) {
  // Paper: "waited more than an entire workday for a single 33 GB input
  // file".
  const auto& r = sharedResult();
  EXPECT_GT(r.fileTimeBefore.toSeconds(), 8.0 * 3600.0);
}

TEST(NerscOlcf, AfterRatesReachTwoHundredMBps) {
  // Paper: "immediately able to improve their transfer rate to 200 MB/sec".
  const auto& r = sharedResult();
  EXPECT_GT(r.afterMBps, 150.0);
  EXPECT_LT(r.afterMBps, 280.0);
}

TEST(NerscOlcf, ImprovementAtLeastTwentyFold) {
  // Paper: "WAN transfers ... increased by at least a factor of 20".
  EXPECT_GT(sharedResult().speedup(), 20.0);
}

TEST(NerscOlcf, CampaignFinishesInUnderThreeDays) {
  // Paper: "move all 40 TB ... in less than three days".
  const auto& r = sharedResult();
  const double days = r.campaignTimeAfter.toSeconds() / 86400.0;
  EXPECT_GT(days, 1.0);
  EXPECT_LT(days, 3.0);
}

TEST(NerscOlcf, SingleFileNowMinutes) {
  const auto& r = sharedResult();
  EXPECT_LT(r.fileTimeAfter.toSeconds(), 15.0 * 60.0);
}

}  // namespace
}  // namespace scidmz::usecase
