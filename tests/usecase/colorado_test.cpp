#include "usecase/colorado.hpp"

#include <gtest/gtest.h>

namespace scidmz::usecase {
namespace {

TEST(Colorado, DefectCollapsesDownloads) {
  ColoradoConfig config;
  config.vendorFixApplied = false;
  const auto result = runColorado(config);
  EXPECT_TRUE(result.storeForwardLatched);
  EXPECT_GT(result.switchDrops, 0u);
  // Well below the ~5 Gbps the group's aggregate demand represents.
  EXPECT_LT(result.aggregateMbps, 2500.0);
}

TEST(Colorado, VendorFixRestoresLineRatePerHost) {
  ColoradoConfig config;
  config.vendorFixApplied = true;
  const auto result = runColorado(config);
  // The fallback to store-and-forward still happens; it is just loss-free.
  EXPECT_TRUE(result.storeForwardLatched);
  EXPECT_EQ(result.switchDrops, 0u);
  // "performance returned to near line rate for each member".
  EXPECT_GT(result.worstHostMbps(), 800.0);
  EXPECT_GT(result.aggregateMbps, 4000.0);
}

TEST(Colorado, FixImprovesEveryHost) {
  ColoradoConfig broken;
  broken.vendorFixApplied = false;
  const auto before = runColorado(broken);

  ColoradoConfig fixed;
  fixed.vendorFixApplied = true;
  const auto after = runColorado(fixed);

  ASSERT_EQ(before.perHostMbps.size(), after.perHostMbps.size());
  for (std::size_t i = 0; i < before.perHostMbps.size(); ++i) {
    EXPECT_GT(after.perHostMbps[i], before.perHostMbps[i]) << "host " << i;
  }
  EXPECT_GT(after.aggregateMbps, 2.0 * before.aggregateMbps);
}

TEST(Colorado, LightLoadNeverTripsTheDefect) {
  ColoradoConfig config;
  config.physicsHosts = 1;  // a single 1G flow stays under the threshold
  config.defectThreshold = sim::DataRate::gigabitsPerSecond(2);
  const auto result = runColorado(config);
  EXPECT_FALSE(result.storeForwardLatched);
  EXPECT_GT(result.worstHostMbps(), 800.0);
}

}  // namespace
}  // namespace scidmz::usecase
