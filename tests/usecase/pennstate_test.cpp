#include "usecase/pennstate.hpp"

#include <gtest/gtest.h>

namespace scidmz::usecase {
namespace {

using namespace scidmz::sim::literals;

TEST(PennState, Equation2Window) {
  // 1 Gbps x 10 ms = 1.25 MB, "20 times" the 64 KB default.
  const auto window = requiredWindow(PennStateConfig{});
  EXPECT_EQ(window.byteCount(), 1'250'000u);
  EXPECT_NEAR(static_cast<double>(window.byteCount()) / 65536.0, 19.1, 0.1);
}

TEST(PennState, SequenceCheckingCapsBothDirectionsNear50Mbps) {
  const auto result = runPennState();
  // Paper: "hosts connected by 1Gbps local connections were limited to
  // around 50Mbps overall; this observation was true in either direction".
  EXPECT_GT(result.inboundBefore.mbps, 30.0);
  EXPECT_LT(result.inboundBefore.mbps, 65.0);
  EXPECT_GT(result.outboundBefore.mbps, 30.0);
  EXPECT_LT(result.outboundBefore.mbps, 65.0);
  EXPECT_FALSE(result.inboundBefore.windowScalingActive);
  EXPECT_FALSE(result.outboundBefore.windowScalingActive);
}

TEST(PennState, WindowStuckAt64KDespiteAutoTuning) {
  const auto result = runPennState();
  // "the size of the TCP window was not growing beyond the default value
  // of 64KB, despite ... auto-tuning".
  EXPECT_LE(result.inboundBefore.peakWindowBytes, 65535u);
  EXPECT_GT(result.inboundBefore.peakWindowBytes, 0u);
  // After the fix, the window grows far past 64 KB.
  EXPECT_GT(result.inboundAfter.peakWindowBytes, 1'000'000u);
  EXPECT_TRUE(result.inboundAfter.windowScalingActive);
}

TEST(PennState, DisablingTheFeatureMultipliesThroughput) {
  const auto result = runPennState();
  // Paper: inbound ~5x, outbound ~12x. Our symmetric model yields large
  // speedups in both directions; require at least the inbound factor.
  EXPECT_GT(result.inboundSpeedup(), 5.0);
  EXPECT_GT(result.outboundSpeedup(), 5.0);
  // After the fix both directions approach the 1G access rate.
  EXPECT_GT(result.inboundAfter.mbps, 700.0);
  EXPECT_GT(result.outboundAfter.mbps, 700.0);
}

}  // namespace
}  // namespace scidmz::usecase
