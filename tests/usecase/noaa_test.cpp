#include "usecase/noaa.hpp"

#include <gtest/gtest.h>

namespace scidmz::usecase {
namespace {

// One shared run: the scenario is deterministic and moderately expensive.
const NoaaResult& sharedResult() {
  static const NoaaResult result = runNoaa();
  return result;
}

TEST(Noaa, LegacyPathTricklesAtFtpSpeeds) {
  // Paper: "data trickled in at about 1-2 MB/s".
  const auto& r = sharedResult();
  EXPECT_GT(r.legacyMBps, 0.5);
  EXPECT_LT(r.legacyMBps, 3.0);
}

TEST(Noaa, DmzPathReachesHundredsOfMBps) {
  // Paper: "approximately 395 MB/s".
  const auto& r = sharedResult();
  EXPECT_GT(r.dmzMBps, 250.0);
  EXPECT_LT(r.dmzMBps, 550.0);
}

TEST(Noaa, SpeedupIsAboutTwoHundredFold) {
  // Paper: "a throughput increase of nearly 200 times".
  const auto& r = sharedResult();
  EXPECT_GT(r.speedup(), 100.0);
  EXPECT_LT(r.speedup(), 500.0);
}

TEST(Noaa, BatchLandsInTensOfMinutes) {
  // Paper: 239.5 GB "in just over 10 minutes".
  const auto& r = sharedResult();
  const double minutes = r.dmzBatchTime.toSeconds() / 60.0;
  EXPECT_GT(minutes, 5.0);
  EXPECT_LT(minutes, 25.0);
}

}  // namespace
}  // namespace scidmz::usecase
