// Loss recovery behaviour and the paper's central quantitative claim:
// simulated TCP throughput under random loss tracks the Mathis equation.
#include <gtest/gtest.h>

#include "../tcp/tcp_test_util.hpp"
#include "tcp/mathis.hpp"

namespace scidmz::tcp {
namespace {

using namespace scidmz::sim::literals;
using testutil::PathConfig;
using testutil::TcpPath;

TEST(LossRecovery, FastRetransmitRepairsSingleDrop) {
  PathConfig cfg;
  cfg.rate = 1_Gbps;
  cfg.oneWayDelay = 1_ms;
  cfg.periodicLoss = 2000;  // a handful of drops across the transfer
  TcpPath path{cfg};
  const auto out = path.transfer(20_MB, TcpConfig{});
  ASSERT_TRUE(out.completed);
  EXPECT_EQ(out.delivered, 20_MB);
  EXPECT_GT(out.senderStats.fastRetransmits, 0u);
  // Isolated drops with plenty of dup-ACKs should rarely need an RTO.
  EXPECT_LE(out.senderStats.rtos, 2u);
}

TcpConfig steadyConfig(CcAlgorithm algo = CcAlgorithm::kReno) {
  TcpConfig cfg;
  cfg.algorithm = algo;
  cfg.sndBuf = 64_MB;  // ample for these BDPs; bounds the startup overshoot
  cfg.rcvBuf = 64_MB;
  return cfg;
}

TEST(LossRecovery, ThroughputDegradesWithLossRate) {
  auto run = [](double loss) {
    PathConfig cfg;
    cfg.rate = 10_Gbps;
    cfg.oneWayDelay = 5_ms;
    cfg.randomLoss = loss;
    TcpPath path{cfg};
    return path.steadyRate(steadyConfig(), 5_s, 15_s).toMbps();
  };
  const double clean = run(0.0);
  const double light = run(1e-5);
  const double heavy = run(1e-3);
  EXPECT_GT(clean, light);
  EXPECT_GT(light, 2.0 * heavy);
}

TEST(LossRecovery, LatencyAmplifiesLossDamage) {
  // The Figure 1 shape: the same loss rate hurts far more at high RTT.
  auto run = [](sim::Duration oneWay) {
    PathConfig cfg;
    cfg.rate = 10_Gbps;
    cfg.oneWayDelay = oneWay;
    cfg.randomLoss = 1e-4;
    TcpPath path{cfg};
    return path.steadyRate(steadyConfig(), 5_s, 15_s).toMbps();
  };
  const double local = run(500_us);   // 1ms RTT: metro
  const double remote = run(25_ms);   // 50ms RTT: cross-country
  EXPECT_GT(local, 4.0 * remote);
}

struct MathisCase {
  double loss;
  int rttMs;
};

class MathisAgreement : public ::testing::TestWithParam<MathisCase> {};

TEST_P(MathisAgreement, SimulatedRenoWithinBandOfPrediction) {
  const auto [loss, rttMs] = GetParam();
  PathConfig cfg;
  cfg.rate = 10_Gbps;
  cfg.oneWayDelay = sim::Duration::microseconds(rttMs * 500);
  cfg.mtu = 9000_B;
  cfg.randomLoss = loss;
  TcpPath path{cfg};

  // Steady-state goodput after the startup transient has drained.
  const double sim_mbps = path.steadyRate(steadyConfig(), 8_s, 20_s).toMbps();
  const auto predicted = mathisThroughput(8960_B, sim::Duration::milliseconds(rttMs), loss);
  const double pred_mbps = predicted.toMbps();
  // The Mathis equation is an upper bound ("at most") derived for periodic
  // loss; random loss and RTOs push real stacks below it. We require
  // agreement within a factor of ~2.5 either way — tight enough to catch a
  // broken congestion response, loose enough for model variance.
  EXPECT_LT(sim_mbps, pred_mbps * 2.5)
      << "loss=" << loss << " rtt=" << rttMs << "ms";
  EXPECT_GT(sim_mbps, pred_mbps / 2.5)
      << "loss=" << loss << " rtt=" << rttMs << "ms";
}

INSTANTIATE_TEST_SUITE_P(
    LossRttGrid, MathisAgreement,
    ::testing::Values(MathisCase{1e-4, 10}, MathisCase{1e-4, 40}, MathisCase{1e-3, 10},
                      MathisCase{1e-3, 40}, MathisCase{4.6e-5, 20}),
    [](const ::testing::TestParamInfo<MathisCase>& info) {
      const auto& c = info.param;
      return "loss" + std::to_string(static_cast<int>(c.loss * 1e6)) + "ppm_rtt" +
             std::to_string(c.rttMs) + "ms";
    });

TEST(LossRecovery, RtoRecoversFromAckStarvation) {
  // Severe loss: the dup-ACK signal dries up and only the RTO saves us.
  PathConfig cfg;
  cfg.rate = 100_Mbps;
  cfg.oneWayDelay = 2_ms;
  cfg.randomLoss = 0.25;
  TcpPath path{cfg};
  const auto out = path.transfer(200_KB, TcpConfig{}, 3600_s);
  ASSERT_TRUE(out.completed);
  EXPECT_EQ(out.delivered, 200_KB);
  EXPECT_GT(out.senderStats.rtos, 0u);
}

TEST(LossRecovery, ByteConservationUnderHeavyLoss) {
  PathConfig cfg;
  cfg.rate = 1_Gbps;
  cfg.oneWayDelay = 1_ms;
  cfg.randomLoss = 0.02;
  TcpPath path{cfg};
  const auto out = path.transfer(5_MB, TcpConfig{}, 600_s);
  ASSERT_TRUE(out.completed);
  EXPECT_EQ(out.delivered, 5_MB);  // exactly once, in order, no gaps
}

TEST(LossRecovery, HtcpBeatsRenoOnLossyHighBdpPath) {
  auto run = [](CcAlgorithm algo) {
    PathConfig cfg;
    cfg.rate = 10_Gbps;
    cfg.oneWayDelay = 25_ms;  // 50ms RTT
    cfg.randomLoss = 2e-5;
    TcpPath path{cfg};
    return path.steadyRate(steadyConfig(algo), 10_s, 30_s).toMbps();
  };
  const double reno = run(CcAlgorithm::kReno);
  const double htcp = run(CcAlgorithm::kHtcp);
  EXPECT_GT(htcp, reno * 1.3);
}

}  // namespace
}  // namespace scidmz::tcp
