#include "tcp/congestion.hpp"

#include <gtest/gtest.h>

#include "tcp/cubic.hpp"
#include "tcp/htcp.hpp"
#include "tcp/reno.hpp"

namespace scidmz::tcp {
namespace {

using namespace scidmz::sim::literals;

constexpr double kMss = 1460.0;

CcState freshState(double cwndSegments = 10, double ssthreshSegments = 1e9) {
  CcState s;
  s.mss = 1460_B;
  s.cwnd = cwndSegments * kMss;
  s.ssthresh = ssthreshSegments * kMss;
  return s;
}

sim::SimTime at(double seconds) {
  return sim::SimTime::zero() + sim::Duration::fromSeconds(seconds);
}

TEST(Factory, CreatesEachAlgorithm) {
  EXPECT_EQ(makeCongestionControl(CcAlgorithm::kReno)->name(), "reno");
  EXPECT_EQ(makeCongestionControl(CcAlgorithm::kCubic)->name(), "cubic");
  EXPECT_EQ(makeCongestionControl(CcAlgorithm::kHtcp)->name(), "htcp");
}

TEST(Reno, SlowStartDoublesPerRtt) {
  RenoCc cc;
  auto s = freshState(10);
  // One RTT worth of ACKs: each full-MSS ACK adds one MSS.
  for (int i = 0; i < 10; ++i) cc.onAckedBytes(s, 1460, 10_ms, at(0.01));
  EXPECT_DOUBLE_EQ(s.cwnd, 20 * kMss);
}

TEST(Reno, CongestionAvoidanceAddsOneMssPerRtt) {
  RenoCc cc;
  auto s = freshState(100, 50);  // past ssthresh -> CA
  const double before = s.cwnd;
  for (int i = 0; i < 100; ++i) cc.onAckedBytes(s, 1460, 10_ms, at(0.01));
  EXPECT_NEAR(s.cwnd - before, kMss, kMss * 0.02);
}

TEST(Reno, LossHalvesWindow) {
  RenoCc cc;
  auto s = freshState(100, 50);
  cc.onPacketLoss(s, at(1.0));
  EXPECT_DOUBLE_EQ(s.cwnd, 50 * kMss);
  EXPECT_DOUBLE_EQ(s.ssthresh, 50 * kMss);
}

TEST(Reno, LossFloorsAtTwoMss) {
  RenoCc cc;
  auto s = freshState(2, 1);
  cc.onPacketLoss(s, at(1.0));
  EXPECT_DOUBLE_EQ(s.cwnd, 2 * kMss);
}

TEST(AllAlgorithms, RtoCollapsesToOneMss) {
  for (auto algo : {CcAlgorithm::kReno, CcAlgorithm::kCubic, CcAlgorithm::kHtcp}) {
    auto cc = makeCongestionControl(algo);
    auto s = freshState(100, 50);
    cc->onRto(s, at(1.0));
    EXPECT_DOUBLE_EQ(s.cwnd, kMss) << toString(algo);
    EXPECT_DOUBLE_EQ(s.ssthresh, 50 * kMss) << toString(algo);
  }
}

TEST(Cubic, LossBacksOffByBeta) {
  CubicCc cc;
  auto s = freshState(100, 50);
  cc.onPacketLoss(s, at(1.0));
  EXPECT_NEAR(s.cwnd, 70 * kMss, 1.0);  // beta = 0.7
}

TEST(Cubic, GrowsTowardWmaxAfterLoss) {
  CubicCc cc;
  auto s = freshState(100, 50);
  cc.onPacketLoss(s, at(0.0));
  const double afterLoss = s.cwnd;
  // Feed ACKs over simulated time; cubic must climb back toward w_max.
  for (int i = 1; i <= 2000; ++i) {
    cc.onAckedBytes(s, 1460, 10_ms, at(0.001 * i));
  }
  EXPECT_GT(s.cwnd, afterLoss);
  EXPECT_GT(s.cwnd, 90 * kMss);  // near or past the old maximum after 2s
}

TEST(Cubic, SlowStartStillExponential) {
  CubicCc cc;
  auto s = freshState(10);
  for (int i = 0; i < 10; ++i) cc.onAckedBytes(s, 1460, 10_ms, at(0.01));
  EXPECT_DOUBLE_EQ(s.cwnd, 20 * kMss);
}

TEST(Htcp, RenoCompatibleShortlyAfterLoss) {
  HtcpCc cc;
  auto s = freshState(100, 50);
  cc.onPacketLoss(s, at(0.0));
  const double before = s.cwnd;
  // Within Delta_L = 1s of a loss, alpha == 1: Reno-like +1 MSS per RTT.
  const int acksPerRtt = static_cast<int>(s.cwnd / kMss);
  for (int i = 0; i < acksPerRtt; ++i) cc.onAckedBytes(s, 1460, 10_ms, at(0.5));
  EXPECT_NEAR(s.cwnd - before, kMss, kMss * 0.05);
}

TEST(Htcp, AggressiveLongAfterLoss) {
  HtcpCc cc;
  auto s = freshState(1000, 500);
  cc.onPacketLoss(s, at(0.0));
  const double before = s.cwnd;
  const int acksPerRtt = static_cast<int>(s.cwnd / kMss);
  // 5 seconds after the loss: alpha = 1 + 10*4 + 4^2/4 = 45 MSS per RTT.
  for (int i = 0; i < acksPerRtt; ++i) cc.onAckedBytes(s, 1460, 10_ms, at(5.0));
  EXPECT_NEAR((s.cwnd - before) / kMss, 45.0, 4.0);
}

TEST(Htcp, AdaptiveBetaUsesRttRatio) {
  HtcpCc cc;
  auto s = freshState(100, 1e9);
  // RTT nearly constant -> beta near its 0.8 cap (gentle backoff).
  cc.onRttSample(10_ms);
  cc.onRttSample(sim::Duration::microseconds(10'500));
  cc.onPacketLoss(s, at(1.0));
  EXPECT_NEAR(s.cwnd, 80 * kMss, kMss);
}

TEST(Htcp, DeepQueuesForceHalving) {
  HtcpCc cc;
  auto s = freshState(100, 1e9);
  // RTT doubled by queueing -> beta clamps at 0.5.
  cc.onRttSample(10_ms);
  cc.onRttSample(40_ms);
  cc.onPacketLoss(s, at(1.0));
  EXPECT_NEAR(s.cwnd, 50 * kMss, kMss);
}

TEST(Htcp, OutgrowsRenoAtHighBdp) {
  // The Figure 1 story: after a loss at a large window, H-TCP recovers far
  // faster than Reno over the same ACK stream.
  RenoCc reno;
  HtcpCc htcp;
  auto sr = freshState(2000, 1000);
  auto sh = freshState(2000, 1000);
  reno.onPacketLoss(sr, at(0.0));
  htcp.onPacketLoss(sh, at(0.0));
  for (int rtt = 0; rtt < 100; ++rtt) {
    const double t = 0.1 * (rtt + 1);  // 100ms RTT path
    for (int i = 0; i < 500; ++i) {
      reno.onAckedBytes(sr, 1460, 100_ms, at(t));
      htcp.onAckedBytes(sh, 1460, 100_ms, at(t));
    }
  }
  EXPECT_GT(sh.cwnd, 2.0 * sr.cwnd);
}

}  // namespace
}  // namespace scidmz::tcp
