#include "tcp/connection.hpp"

#include <gtest/gtest.h>

#include "../tcp/tcp_test_util.hpp"

namespace scidmz::tcp {
namespace {

using namespace scidmz::sim::literals;
using testutil::PathConfig;
using testutil::TcpPath;

TEST(Connection, HandshakeEstablishesBothSides) {
  TcpPath path;
  TcpListener listener{*path.b, 5001, TcpConfig{}};
  TcpConnection client{*path.a, path.b->address(), 5001, TcpConfig{}};
  bool clientUp = false;
  bool serverUp = false;
  listener.onAccept = [&](TcpConnection&) { serverUp = true; };
  client.onEstablished = [&] { clientUp = true; };
  client.start();
  path.scenario.simulator.run();
  EXPECT_TRUE(clientUp);
  EXPECT_TRUE(serverUp);
  EXPECT_TRUE(client.established());
  EXPECT_EQ(listener.connectionCount(), 1u);
}

TEST(Connection, TransfersExactByteCount) {
  TcpPath path;
  const auto out = path.transfer(10_MB, TcpConfig{});
  EXPECT_TRUE(out.completed);
  EXPECT_EQ(out.delivered, 10_MB);
  EXPECT_EQ(out.senderStats.bytesAcked, 10_MB);
}

TEST(Connection, CleanPathHasNoRetransmits) {
  TcpPath path;
  const auto out = path.transfer(20_MB, TcpConfig::tunedDtn());
  EXPECT_TRUE(out.completed);
  EXPECT_EQ(out.senderStats.retransmits, 0u);
  EXPECT_EQ(out.senderStats.rtos, 0u);
}

TEST(Connection, ApproachesLineRateOnCleanShortPath) {
  PathConfig cfg;
  cfg.rate = 10_Gbps;
  cfg.oneWayDelay = 500_us;  // 1ms RTT
  TcpPath path{cfg};
  const auto out = path.transfer(500_MB, TcpConfig::tunedDtn());
  ASSERT_TRUE(out.completed);
  EXPECT_GT(out.goodput.toGbps(), 8.0);
}

TEST(Connection, WindowCapLimitsThroughput) {
  // Untuned 64 KiB host at 10ms RTT: ~52 Mbps ceiling regardless of pipe.
  PathConfig cfg;
  cfg.rate = 1_Gbps;
  cfg.oneWayDelay = 5_ms;
  TcpPath path{cfg};
  const auto out = path.transfer(50_MB, TcpConfig::untunedDefault());
  ASSERT_TRUE(out.completed);
  EXPECT_LT(out.goodput.toMbps(), 60.0);
  EXPECT_GT(out.goodput.toMbps(), 35.0);
}

TEST(Connection, TunedHostFillsSamePath) {
  PathConfig cfg;
  cfg.rate = 1_Gbps;
  cfg.oneWayDelay = 5_ms;
  TcpPath path{cfg};
  const auto out = path.transfer(200_MB, TcpConfig::tunedDtn());
  ASSERT_TRUE(out.completed);
  EXPECT_GT(out.goodput.toMbps(), 800.0);
}

TEST(Connection, MssDerivedFromMtu) {
  PathConfig cfg;
  cfg.mtu = 1500_B;
  TcpPath path{cfg};
  EXPECT_EQ(path.a->mss(), 1460_B);

  PathConfig jumbo;
  jumbo.mtu = 9000_B;
  TcpPath path2{jumbo};
  EXPECT_EQ(path2.a->mss(), 8960_B);
}

TEST(Connection, DeliveredInOrderDespiteLoss) {
  PathConfig cfg;
  cfg.periodicLoss = 500;
  TcpPath path{cfg};

  // Track that delivery callbacks are cumulative and monotonic.
  TcpConfig tcpCfg;
  TcpListener listener{*path.b, 5001, tcpCfg};
  TcpConnection client{*path.a, path.b->address(), 5001, tcpCfg};
  sim::DataSize total = sim::DataSize::zero();
  TcpConnection* server = nullptr;
  listener.onAccept = [&](TcpConnection& c) {
    server = &c;
    c.onDelivered = [&total](sim::DataSize d) { total += d; };
  };
  client.onEstablished = [&client] { client.sendData(5_MB); };
  bool finished = false;
  client.onSendComplete = [&] { finished = true; };
  client.start();
  path.scenario.simulator.runFor(120_s);

  ASSERT_TRUE(finished);
  EXPECT_EQ(total, 5_MB);
  EXPECT_GT(client.stats().retransmits, 0u);
}

TEST(Connection, FinTeardownNotifiesReceiver) {
  TcpPath path;
  TcpConfig cfg;
  TcpListener listener{*path.b, 5001, cfg};
  TcpConnection client{*path.a, path.b->address(), 5001, cfg};
  bool closed = false;
  listener.onAccept = [&](TcpConnection& c) {
    c.onClosed = [&closed] { closed = true; };
  };
  client.onEstablished = [&client] {
    client.sendData(1_MB);
    client.close();
  };
  client.start();
  path.scenario.simulator.run();
  EXPECT_TRUE(closed);
}

TEST(Connection, SendDataBeforeEstablishIsQueued) {
  TcpPath path;
  TcpConfig cfg;
  TcpListener listener{*path.b, 5001, cfg};
  TcpConnection client{*path.a, path.b->address(), 5001, cfg};
  client.sendData(1_MB);  // before start()
  bool done = false;
  client.onSendComplete = [&done] { done = true; };
  client.start();
  path.scenario.simulator.run();
  EXPECT_TRUE(done);
}

TEST(Connection, MultipleSendDataCallsAccumulate) {
  TcpPath path;
  const auto runTwoChunks = [&] {
    TcpConfig cfg;
    path.listener = std::make_unique<TcpListener>(*path.b, 5001, cfg);
    path.client = std::make_unique<TcpConnection>(*path.a, path.b->address(), 5001, cfg);
    TcpConnection* server = nullptr;
    path.listener->onAccept = [&server](TcpConnection& c) { server = &c; };
    path.client->onEstablished = [&] {
      path.client->sendData(1_MB);
      path.client->sendData(2_MB);
    };
    path.scenario.simulator.schedule(1_s, [&] { path.client->sendData(3_MB); });
    path.client->start();
    path.scenario.simulator.runFor(30_s);
    return server != nullptr ? server->deliveredBytes() : sim::DataSize::zero();
  };
  EXPECT_EQ(runTwoChunks(), 6_MB);
}

TEST(Connection, SurvivesSynLoss) {
  // Drop the very first packet (the SYN): the handshake must recover via
  // the initial RTO.
  PathConfig cfg;
  cfg.periodicLoss = 0;
  TcpPath path{cfg};
  path.link->setLossModel(0, std::make_unique<net::PeriodicLoss>(1));  // drop next packet
  TcpConfig tcpCfg;
  TcpListener listener{*path.b, 5001, tcpCfg};
  TcpConnection client{*path.a, path.b->address(), 5001, tcpCfg};
  bool up = false;
  client.onEstablished = [&up] { up = true; };
  client.start();
  // After the first drop, remove the impairment so the retry succeeds.
  path.scenario.simulator.schedule(100_ms, [&path] { path.link->repair(); });
  path.scenario.simulator.runFor(10_s);
  EXPECT_TRUE(up);
}

TEST(Connection, GoodputReflectsElapsedTime) {
  PathConfig cfg;
  cfg.rate = 1_Gbps;
  cfg.oneWayDelay = 1_ms;
  TcpPath path{cfg};
  const auto out = path.transfer(100_MB, TcpConfig::tunedDtn());
  ASSERT_TRUE(out.completed);
  // 100 MB at ~1 Gbps is ~0.8s; allow generous slack for slow start.
  EXPECT_GT(out.elapsed, 500_ms);
  EXPECT_LT(out.elapsed, 3_s);
}

}  // namespace
}  // namespace scidmz::tcp
