// Sender pacing: the DTN tuning guide's countermeasure to the paper's
// burst problem. Paced flows must transfer correctly, spread their packets
// in time, and survive shallow-buffered paths that break bursty senders.
#include <gtest/gtest.h>

#include "../tcp/tcp_test_util.hpp"
#include "net/switch.hpp"

namespace scidmz::tcp {
namespace {

using namespace scidmz::sim::literals;
using testutil::PathConfig;
using testutil::TcpPath;
using testutil::Scenario;

TEST(Pacing, TransfersExactlyAndCompletes) {
  TcpPath path;
  TcpConfig cfg;
  cfg.pacing = true;
  const auto out = path.transfer(20_MB, cfg);
  EXPECT_TRUE(out.completed);
  EXPECT_EQ(out.delivered, 20_MB);
  EXPECT_EQ(out.senderStats.retransmits, 0u);
}

TEST(Pacing, ReachesLineRateOnCleanPath) {
  PathConfig pc;
  pc.rate = 10_Gbps;
  pc.oneWayDelay = 5_ms;
  TcpPath path{pc};
  TcpConfig cfg = TcpConfig::tunedDtn();
  cfg.pacing = true;
  const auto rate = path.steadyRate(cfg, 5_s, 10_s);
  EXPECT_GT(rate.toGbps(), 8.5);
}

TEST(Pacing, SmoothsBurstsThroughShallowBuffer) {
  // The paper's classic mismatch: a 10G host feeding a 1G egress through a
  // switch with a shallow buffer. The bursty sender's line-rate window
  // dumps overflow the buffer en masse; the paced sender's stream arrives
  // near the egress rate and loses little.
  auto run = [](bool paced) {
    Scenario s;
    net::SwitchProfile shallow;
    shallow.egressBuffer = 512_KiB;
    auto& sw = s.topo.addSwitch("shallow", shallow);
    auto& a = s.topo.addHost("a", net::Address(10, 0, 0, 1));
    auto& b = s.topo.addHost("b", net::Address(10, 0, 0, 2));
    net::LinkParams fast;
    fast.rate = 10_Gbps;
    fast.delay = 10_ms;
    fast.mtu = 9000_B;
    net::LinkParams slow;
    slow.rate = 1_Gbps;
    slow.delay = 10_ms;
    slow.mtu = 9000_B;
    s.topo.connect(a, sw, fast);
    s.topo.connect(sw, b, slow);
    s.topo.computeRoutes();

    TcpConfig cfg;
    cfg.algorithm = CcAlgorithm::kHtcp;
    cfg.sndBuf = 8_MB;
    cfg.rcvBuf = 8_MB;
    cfg.pacing = paced;
    TcpListener listener{b, 5001, cfg};
    TcpConnection client{a, b.address(), 5001, cfg};
    TcpConnection* server = nullptr;
    listener.onAccept = [&server](TcpConnection& c) { server = &c; };
    client.onEstablished = [&client] { client.sendData(sim::DataSize::terabytes(1)); };
    client.start();
    s.simulator.runFor(20_s);
    struct R {
      double mbps;
      std::uint64_t retx;
    };
    const double mbps =
        server ? static_cast<double>(server->deliveredBytes().bitCount()) / 20.0 / 1e6 : 0.0;
    return R{mbps, client.stats().retransmits};
  };

  const auto bursty = run(false);
  const auto paced = run(true);
  EXPECT_GT(paced.mbps, bursty.mbps);
  EXPECT_LT(paced.retx, bursty.retx);
}

TEST(Pacing, SurvivesLoss) {
  PathConfig pc;
  pc.rate = 1_Gbps;
  pc.oneWayDelay = 5_ms;
  pc.randomLoss = 1e-3;
  TcpPath path{pc};
  TcpConfig cfg;
  cfg.pacing = true;
  const auto out = path.transfer(5_MB, cfg, 600_s);
  EXPECT_TRUE(out.completed);
  EXPECT_EQ(out.delivered, 5_MB);
}

}  // namespace
}  // namespace scidmz::tcp
