// Shared scaffolding for TCP tests: a two-host path with configurable
// rate/RTT/loss and a one-shot bulk transfer runner.
#pragma once

#include <memory>
#include <optional>

#include "../net/test_util.hpp"
#include "net/host.hpp"
#include "tcp/connection.hpp"

namespace scidmz::testutil {

struct PathConfig {
  sim::DataRate rate = sim::DataRate::gigabitsPerSecond(10);
  sim::Duration oneWayDelay = sim::Duration::milliseconds(5);
  sim::DataSize mtu = sim::DataSize::bytes(9000);
  double randomLoss = 0.0;          ///< applied in the data direction (a -> b)
  std::uint64_t periodicLoss = 0;   ///< drop 1-in-N in the data direction
};

/// a (client/sender) --link--> b (server/receiver).
struct TcpPath {
  explicit TcpPath(PathConfig config = {}) : cfg(config) {
    net::LinkParams params;
    params.rate = cfg.rate;
    params.delay = cfg.oneWayDelay;
    params.mtu = cfg.mtu;
    a = &scenario.topo.addHost("a", net::Address(10, 0, 0, 1));
    b = &scenario.topo.addHost("b", net::Address(10, 0, 0, 2));
    link = &scenario.topo.connect(*a, *b, params);
    if (config.randomLoss > 0) {
      link->setLossModel(0, std::make_unique<net::RandomLoss>(config.randomLoss,
                                                              scenario.rng.fork(77)));
    } else if (config.periodicLoss > 0) {
      link->setLossModel(0, std::make_unique<net::PeriodicLoss>(config.periodicLoss));
    }
    scenario.topo.computeRoutes();
  }

  struct TransferOutcome {
    bool completed = false;
    sim::Duration elapsed = sim::Duration::zero();
    sim::DataSize delivered = sim::DataSize::zero();
    sim::DataRate goodput = sim::DataRate::zero();
    tcp::TcpStats senderStats;
    bool scalingActive = false;
  };

  /// Run a bulk a->b transfer of `bytes`, giving up after `timeout`.
  TransferOutcome transfer(sim::DataSize bytes, tcp::TcpConfig tcpConfig,
                           sim::Duration timeout = sim::Duration::seconds(600)) {
    listener = std::make_unique<tcp::TcpListener>(*b, 5001, tcpConfig);
    client = std::make_unique<tcp::TcpConnection>(*a, b->address(), 5001, tcpConfig);

    tcp::TcpConnection* serverSide = nullptr;
    listener->onAccept = [&serverSide](tcp::TcpConnection& c) { serverSide = &c; };

    bool done = false;
    sim::SimTime doneAt;
    client->onEstablished = [this, bytes] { client->sendData(bytes); };
    client->onSendComplete = [&] {
      done = true;
      doneAt = scenario.simulator.now();
      scenario.simulator.stop();
    };
    client->start();
    scenario.simulator.runUntil(scenario.simulator.now() + timeout);

    TransferOutcome out;
    out.completed = done;
    out.elapsed = (done ? doneAt : scenario.simulator.now()) - sim::SimTime::zero();
    if (serverSide != nullptr) out.delivered = serverSide->deliveredBytes();
    out.goodput = client->goodput();
    out.senderStats = client->stats();
    out.scalingActive = client->windowScalingActive();
    return out;
  }

  /// Steady-state goodput: start an effectively-infinite flow, discard
  /// `warmup` (slow-start transient and sender-queue drain), then measure
  /// delivered bytes over `window`. This is how the Figure 1 "measured"
  /// curves are produced — the Mathis equation models the congestion-
  /// avoidance equilibrium, not the startup transient.
  sim::DataRate steadyRate(tcp::TcpConfig tcpConfig, sim::Duration warmup,
                           sim::Duration window) {
    listener = std::make_unique<tcp::TcpListener>(*b, 5001, tcpConfig);
    client = std::make_unique<tcp::TcpConnection>(*a, b->address(), 5001, tcpConfig);
    tcp::TcpConnection* serverSide = nullptr;
    listener->onAccept = [&serverSide](tcp::TcpConnection& c) { serverSide = &c; };
    client->onEstablished = [this] { client->sendData(sim::DataSize::terabytes(100)); };
    client->start();
    scenario.simulator.runFor(warmup);
    const auto base = serverSide ? serverSide->deliveredBytes() : sim::DataSize::zero();
    scenario.simulator.runFor(window);
    if (serverSide == nullptr) return sim::DataRate::zero();
    const auto delta = serverSide->deliveredBytes() - base;
    return sim::DataRate::bitsPerSecond(static_cast<std::uint64_t>(
        static_cast<double>(delta.bitCount()) / window.toSeconds()));
  }

  Scenario scenario;
  PathConfig cfg;
  net::Host* a = nullptr;
  net::Host* b = nullptr;
  net::Link* link = nullptr;
  std::unique_ptr<tcp::TcpListener> listener;
  std::unique_ptr<tcp::TcpConnection> client;
};

}  // namespace scidmz::testutil
