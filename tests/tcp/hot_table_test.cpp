// FlowHotTable row lifecycle: zeroed acquire, LIFO recycling, and the
// per-Context attachment via net::Context::extension<T>().
#include <gtest/gtest.h>

#include "net/context.hpp"
#include "sim/log.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "tcp/hot_table.hpp"

namespace {

using scidmz::tcp::FlowHotTable;

TEST(FlowHotTable, AcquireZeroesAndReleasesLifo) {
  FlowHotTable t;
  const std::uint32_t a = t.acquire();
  const std::uint32_t b = t.acquire();
  EXPECT_NE(a, b);
  EXPECT_EQ(t.liveCount(), 2u);
  t.cwnd(a) = 14600.0;
  t.sndNxt(a) = 99;
  t.release(a);
  EXPECT_EQ(t.liveCount(), 1u);
  // LIFO: the freed row comes back first, and comes back zeroed.
  const std::uint32_t c = t.acquire();
  EXPECT_EQ(c, a);
  EXPECT_EQ(t.cwnd(c), 0.0);
  EXPECT_EQ(t.ssthresh(c), 0.0);
  EXPECT_EQ(t.srttNs(c), 0);
  EXPECT_EQ(t.sndUna(c), 0u);
  EXPECT_EQ(t.sndNxt(c), 0u);
  t.release(b);
  t.release(c);
  EXPECT_EQ(t.liveCount(), 0u);
  EXPECT_EQ(t.rowCount(), 2u);  // columns retain their length
}

TEST(FlowHotTable, ColumnsAreIndependentPerRow) {
  FlowHotTable t;
  const std::uint32_t a = t.acquire();
  const std::uint32_t b = t.acquire();
  t.cwnd(a) = 1.0;
  t.cwnd(b) = 2.0;
  t.srttNs(a) = 10;
  t.srttNs(b) = 20;
  EXPECT_EQ(t.cwnd(a), 1.0);
  EXPECT_EQ(t.cwnd(b), 2.0);
  EXPECT_EQ(t.srttNs(a), 10);
  EXPECT_EQ(t.srttNs(b), 20);
}

TEST(FlowHotTable, ContextExtensionIsPerContextSingleton) {
  scidmz::sim::Simulator sim;
  scidmz::sim::Rng rng{1};
  scidmz::sim::Logger log;
  scidmz::net::Context ctx{sim, rng, log};
  FlowHotTable& t1 = ctx.extension<FlowHotTable>();
  FlowHotTable& t2 = ctx.extension<FlowHotTable>();
  EXPECT_EQ(&t1, &t2);
  const std::uint32_t row = t1.acquire();
  EXPECT_EQ(t2.liveCount(), 1u);
  t2.release(row);

  // A second Context gets its own table — sweep cells never share rows.
  scidmz::sim::Simulator sim2;
  scidmz::sim::Rng rng2{2};
  scidmz::net::Context ctx2{sim2, rng2, log};
  EXPECT_NE(&ctx2.extension<FlowHotTable>(), &t1);
  EXPECT_EQ(ctx2.extension<FlowHotTable>().liveCount(), 0u);
}

}  // namespace
