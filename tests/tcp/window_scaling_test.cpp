// RFC 1323 window scaling and its failure mode: a middlebox stripping the
// option caps the effective window at 64 KiB — the Penn State incident.
#include <gtest/gtest.h>

#include "../net/test_util.hpp"
#include "net/firewall.hpp"
#include "net/host.hpp"
#include "tcp/connection.hpp"

namespace scidmz::tcp {
namespace {

using namespace scidmz::sim::literals;
using testutil::Scenario;

/// client --10G/5ms-- firewall --10G/0-- server  (10ms RTT total)
struct FirewalledTcp {
  explicit FirewalledTcp(Scenario& s, bool sequenceChecking)
      : client(s.topo.addHost("client", net::Address(10, 0, 0, 1))),
        server(s.topo.addHost("server", net::Address(192, 168, 0, 1))) {
    auto profile = net::FirewallProfile::enterprise10G();
    profile.tcpSequenceChecking = sequenceChecking;
    // Generous engines/buffers: this fixture isolates the header-rewrite
    // pathology from the buffering pathology.
    profile.engineCount = 2;
    profile.engineRate = 10_Gbps;
    profile.inputBuffer = 64_MB;
    auto& fw = s.topo.addFirewall("fw", profile);
    net::LinkParams outside;
    outside.rate = 10_Gbps;
    outside.delay = 5_ms;
    net::LinkParams inside;
    inside.rate = 10_Gbps;
    inside.delay = sim::Duration::microseconds(1);
    s.topo.connect(client, fw, outside);
    s.topo.connect(fw, server, inside);
    s.topo.computeRoutes();
  }
  net::Host& client;
  net::Host& server;
};

struct Outcome {
  double mbps = 0;
  bool scaling = false;
};

Outcome runTransfer(bool sequenceChecking, sim::DataSize bytes) {
  Scenario s;
  FirewalledTcp net{s, sequenceChecking};
  TcpConfig cfg;
  cfg.sndBuf = 64_MB;
  cfg.rcvBuf = 64_MB;

  TcpListener listener{net.server, 5001, cfg};
  TcpConnection client{net.client, net.server.address(), 5001, cfg};
  client.onEstablished = [&client, bytes] { client.sendData(bytes); };
  bool done = false;
  client.onSendComplete = [&] {
    done = true;
    s.simulator.stop();
  };
  client.start();
  s.simulator.runFor(300_s);
  EXPECT_TRUE(done);
  return Outcome{client.goodput().toMbps(), client.windowScalingActive()};
}

TEST(WindowScaling, NegotiatedOnCleanPath) {
  const auto out = runTransfer(/*sequenceChecking=*/false, 64_MB);
  EXPECT_TRUE(out.scaling);
  EXPECT_GT(out.mbps, 1000.0);
}

TEST(WindowScaling, StrippedBySequenceCheckingCapsAt64K) {
  const auto out = runTransfer(/*sequenceChecking=*/true, 16_MB);
  EXPECT_FALSE(out.scaling);
  // 65535B / 10ms RTT = ~52 Mbps: the paper reports "around 50 Mbps".
  EXPECT_LT(out.mbps, 65.0);
  EXPECT_GT(out.mbps, 30.0);
}

TEST(WindowScaling, DisablingTheFeatureRestoresThroughput) {
  // The documented fix: same firewall, sequence checking turned off,
  // inbound improves ~5x or more (paper: "nearly 5 times" inbound and
  // ~12x outbound from a lower baseline).
  const auto before = runTransfer(true, 16_MB);
  const auto after = runTransfer(false, 64_MB);
  EXPECT_GT(after.mbps, 4.0 * before.mbps);
}

TEST(WindowScaling, RuntimeToggleTakesEffectForNewConnections) {
  Scenario s;
  FirewalledTcp net{s, /*sequenceChecking=*/true};
  auto* fw = dynamic_cast<net::FirewallDevice*>(s.topo.findDevice("fw"));
  ASSERT_NE(fw, nullptr);

  TcpConfig cfg;
  cfg.sndBuf = 64_MB;
  cfg.rcvBuf = 64_MB;
  TcpListener listener{net.server, 5001, cfg};

  // First connection: option stripped.
  auto c1 = std::make_unique<TcpConnection>(net.client, net.server.address(), 5001, cfg);
  bool up1 = false;
  c1->onEstablished = [&up1] { up1 = true; };
  c1->start();
  s.simulator.runFor(1_s);
  ASSERT_TRUE(up1);
  EXPECT_FALSE(c1->windowScalingActive());

  // Admin applies the fix; a new connection negotiates scaling.
  fw->setTcpSequenceChecking(false);
  auto c2 = std::make_unique<TcpConnection>(net.client, net.server.address(), 5001, cfg);
  bool up2 = false;
  c2->onEstablished = [&up2] { up2 = true; };
  c2->start();
  s.simulator.runFor(1_s);
  ASSERT_TRUE(up2);
  EXPECT_TRUE(c2->windowScalingActive());
}

TEST(WindowScaling, UnscaledFieldNeverExceeds16Bits) {
  // Even with big buffers, an endpoint that lost the scaling negotiation
  // must advertise at most 65535.
  Scenario s;
  FirewalledTcp net{s, true};
  TcpConfig cfg;
  cfg.rcvBuf = 64_MB;

  // Tap the firewall to inspect ACK headers flowing back from the server.
  std::uint16_t maxField = 0;
  auto* fw = dynamic_cast<net::FirewallDevice*>(s.topo.findDevice("fw"));
  ASSERT_NE(fw, nullptr);
  fw->setTap([&maxField](const net::Packet& p, const net::Interface&) {
    if (p.isTcp() && p.tcp().flags.ack && !p.tcp().flags.syn) {
      maxField = std::max(maxField, p.tcp().windowField);
    }
  });

  TcpListener listener{net.server, 5001, cfg};
  TcpConnection client{net.client, net.server.address(), 5001, cfg};
  client.onEstablished = [&client] { client.sendData(2_MB); };
  client.start();
  s.simulator.runFor(30_s);
  EXPECT_LE(maxField, 65535);
  EXPECT_GT(maxField, 0);
}

}  // namespace
}  // namespace scidmz::tcp
