#include "tcp/mathis.hpp"

#include <gtest/gtest.h>

namespace scidmz::tcp {
namespace {

using namespace scidmz::sim::literals;

TEST(Mathis, Equation1ScalesInverselyWithRtt) {
  const auto at10ms = mathisThroughput(9000_B, 10_ms, 1e-4);
  const auto at100ms = mathisThroughput(9000_B, 100_ms, 1e-4);
  EXPECT_NEAR(static_cast<double>(at10ms.bps()) / static_cast<double>(at100ms.bps()), 10.0, 0.01);
}

TEST(Mathis, Equation1ScalesWithInverseSqrtLoss) {
  const auto p1 = mathisThroughput(9000_B, 10_ms, 1e-4);
  const auto p2 = mathisThroughput(9000_B, 10_ms, 1e-6);
  EXPECT_NEAR(static_cast<double>(p2.bps()) / static_cast<double>(p1.bps()), 10.0, 0.01);
}

TEST(Mathis, PaperFailingLineCardExample) {
  // Section 2: 1/22000 loss on a 10G path. At 50ms (cross-country), Mathis
  // gives well under 1 Gbps despite the 10G pipe — the collapse in Fig 1.
  const double loss = 1.0 / 22000.0;
  const auto rate = mathisThroughput(9000_B, 50_ms, loss);
  EXPECT_LT(rate, 1_Gbps);
  EXPECT_GT(rate, 100_Mbps);
}

TEST(Mathis, JumboFramesScaleThroughputSixFold) {
  const auto jumbo = mathisThroughput(9000_B, 20_ms, 1e-5);
  const auto standard = mathisThroughput(1500_B, 20_ms, 1e-5);
  EXPECT_NEAR(static_cast<double>(jumbo.bps()) / static_cast<double>(standard.bps()), 6.0, 0.01);
}

TEST(Mathis, ZeroLossIsUnbounded) {
  EXPECT_EQ(mathisThroughput(9000_B, 10_ms, 0.0), sim::DataRate::zero());  // sentinel
  EXPECT_EQ(predictThroughput(10_Gbps, 9000_B, 1_GB, 10_ms, 0.0), 10_Gbps);
}

TEST(LossFree, WindowLimitedWhenBdpExceedsWindow) {
  // 64 KiB window at 10ms RTT: 65536*8/0.01 = ~52.4 Mbps — the Penn State
  // ceiling from Section 6.2.
  const auto rate = lossFreeThroughput(1_Gbps, sim::DataSize::kibibytes(64), 10_ms);
  EXPECT_NEAR(rate.toMbps(), 52.4, 0.1);
}

TEST(LossFree, BottleneckLimitedWhenWindowAmple) {
  const auto rate = lossFreeThroughput(1_Gbps, 16_MB, 10_ms);
  EXPECT_EQ(rate, 1_Gbps);
}

TEST(Predict, TakesMinimumOfAllBounds) {
  // Big window, big pipe, but lossy: Mathis bound governs.
  const auto lossy = predictThroughput(10_Gbps, 9000_B, 1_GB, 50_ms, 1e-3);
  EXPECT_EQ(lossy, mathisThroughput(9000_B, 50_ms, 1e-3));
  // Tiny loss: pipe governs.
  const auto clean = predictThroughput(1_Gbps, 9000_B, 1_GB, 1_ms, 1e-9);
  EXPECT_EQ(clean, 1_Gbps);
}

TEST(Equation2, PaperWindowExample) {
  // 1 Gbps x 10 ms = 1.25 MB (the paper's VTTI computation).
  EXPECT_EQ(bandwidthDelayWindow(1_Gbps, 10_ms), sim::DataSize::bytes(1'250'000));
  // "This theoretical value was 20 times less than the required size":
  // 64 KB default vs 1.25 MB needed => factor ~19-20.
  const double factor = 1'250'000.0 / 65536.0;
  EXPECT_NEAR(factor, 19.1, 0.1);
}

TEST(Equation2, ScalesLinearly) {
  EXPECT_EQ(bandwidthDelayWindow(10_Gbps, 100_ms).byteCount(), 125'000'000u);
  EXPECT_EQ(bandwidthDelayWindow(100_Mbps, 1_ms).byteCount(), 12'500u);
}

}  // namespace
}  // namespace scidmz::tcp
