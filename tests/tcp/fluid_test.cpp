// Fluid (analytic) flow engine: the response function, the flow lifecycle
// through the unified FlowHandle, and the packet/fluid capacity coupling.
#include "tcp/fluid.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "../tcp/tcp_test_util.hpp"
#include "net/flow.hpp"
#include "tcp/mathis.hpp"

namespace scidmz::tcp {
namespace {

using namespace scidmz::sim::literals;
using testutil::PathConfig;
using testutil::TcpPath;

net::FlowPtr makeFluidFlow(TcpPath& path, const TcpConfig& cfg, std::uint16_t port,
                           int streams = 1) {
  net::FlowFactory::Options options;
  options.port = port;
  options.streams = streams;
  options.fidelity = net::FlowFidelity::kFluid;
  return net::flowFactory(path.scenario.ctx).create(*path.a, *path.b, cfg, options);
}

/// Steady-state rate of one handle: warmup, then delivered-delta / window.
sim::DataRate steadyRate(TcpPath& path, net::FlowHandle& flow, sim::Duration warmup,
                         sim::Duration window) {
  path.scenario.simulator.runFor(warmup);
  const auto base = flow.deliveredBytes();
  path.scenario.simulator.runFor(window);
  const auto delta = flow.deliveredBytes() - base;
  return sim::DataRate::bitsPerSecond(
      static_cast<std::uint64_t>(static_cast<double>(delta.bitCount()) / window.toSeconds()));
}

// --- the response function -------------------------------------------------

TEST(CcResponse, RenoIsCalibratedMathisEquation) {
  const double mssBits = 8960.0 * 8.0;
  const double rtt = 0.05;
  const double p = 1e-4;
  const double mathis = static_cast<double>(mathisThroughput(8960_B, 50_ms, p).bps());
  const double got = ccResponseBps(CcAlgorithm::kReno, mssBits, rtt, p);
  EXPECT_NEAR(got / mathis, kRenoCalibration, 0.01);
}

TEST(CcResponse, ZeroLossIsNeverTheBindingConstraint) {
  EXPECT_GT(ccResponseBps(CcAlgorithm::kReno, 8960.0 * 8.0, 0.05, 0.0), 1e29);
  EXPECT_GT(ccResponseBps(CcAlgorithm::kHtcp, 8960.0 * 8.0, 0.05, -1.0), 1e29);
}

TEST(CcResponse, HtcpBeatsRenoUnderLoss) {
  const double mssBits = 8960.0 * 8.0;
  const double reno = ccResponseBps(CcAlgorithm::kReno, mssBits, 0.1, 1e-3);
  const double htcp = ccResponseBps(CcAlgorithm::kHtcp, mssBits, 0.1, 1e-3);
  const double cubic = ccResponseBps(CcAlgorithm::kCubic, mssBits, 0.1, 1e-3);
  EXPECT_GT(htcp, reno);
  EXPECT_GE(cubic, reno);
}

// --- flow lifecycle --------------------------------------------------------

TEST(FluidFlow, DeliversExactByteCountAndCompletes) {
  TcpPath path;
  auto flow = makeFluidFlow(path, TcpConfig::tunedDtn(), 5001);
  bool established = false;
  bool complete = false;
  auto* raw = flow.get();
  flow->onEstablished = [&] { established = true; raw->sendData(8_MB); };
  flow->onSendComplete = [&] { complete = true; };
  flow->start();
  path.scenario.simulator.run();
  EXPECT_TRUE(established);
  EXPECT_TRUE(complete);
  EXPECT_TRUE(flow->established());
  EXPECT_TRUE(flow->sendComplete());
  EXPECT_EQ(flow->deliveredBytes(), 8_MB);
  EXPECT_EQ(flow->fidelity(), net::FlowFidelity::kFluid);
  EXPECT_EQ(flow->clientConnection(0), nullptr);  // no packet state exists
}

TEST(FluidFlow, CleanPathRunsNearBottleneck) {
  PathConfig cfg;
  cfg.rate = 10_Gbps;
  cfg.oneWayDelay = 500_us;
  TcpPath path{cfg};
  auto flow = makeFluidFlow(path, TcpConfig::tunedDtn(), 5001);
  auto* raw = flow.get();
  flow->onEstablished = [raw] { raw->sendData(sim::DataSize::terabytes(100)); };
  flow->start();
  const auto rate = steadyRate(path, *flow, 2_s, 5_s);
  EXPECT_GT(rate.toGbps(), 9.0);
  EXPECT_LE(rate.toGbps(), 10.0);
}

TEST(FluidFlow, LossyPathTracksTheResponseFunction) {
  PathConfig cfg;
  cfg.rate = 10_Gbps;
  cfg.oneWayDelay = 5_ms;  // 10 ms RTT
  cfg.randomLoss = 1e-3;
  TcpPath path{cfg};
  TcpConfig tcp = TcpConfig::tunedDtn();
  tcp.algorithm = CcAlgorithm::kReno;
  auto flow = makeFluidFlow(path, tcp, 5001);
  auto* raw = flow.get();
  flow->onEstablished = [raw] { raw->sendData(sim::DataSize::terabytes(100)); };
  flow->start();
  const auto rate = steadyRate(path, *flow, 2_s, 10_s);
  const double predictedMbps =
      ccResponseBps(CcAlgorithm::kReno, 8960.0 * 8.0, 10e-3, 1e-3) / 1e6;
  EXPECT_NEAR(rate.toMbps() / predictedMbps, 1.0, 0.05);
}

TEST(FluidFlow, ParallelStreamsMultiplyTheLossBound) {
  PathConfig cfg;
  cfg.rate = 10_Gbps;
  cfg.oneWayDelay = 5_ms;
  cfg.randomLoss = 1e-3;
  TcpPath path{cfg};
  TcpConfig tcp = TcpConfig::tunedDtn();
  tcp.algorithm = CcAlgorithm::kReno;
  auto flow = makeFluidFlow(path, tcp, 5001, /*streams=*/4);
  auto* raw = flow.get();
  flow->onEstablished = [raw] { raw->sendData(sim::DataSize::terabytes(100)); };
  flow->start();
  const auto rate = steadyRate(path, *flow, 2_s, 10_s);
  const double oneStreamMbps =
      ccResponseBps(CcAlgorithm::kReno, 8960.0 * 8.0, 10e-3, 1e-3) / 1e6;
  EXPECT_NEAR(rate.toMbps() / (4.0 * oneStreamMbps), 1.0, 0.05);
}

TEST(FluidFlow, AbortWithdrawsDemand) {
  TcpPath path;
  auto& engine = path.scenario.ctx.extension<FluidEngine>();
  auto flow = makeFluidFlow(path, TcpConfig::tunedDtn(), 5001);
  auto* raw = flow.get();
  flow->onEstablished = [raw] { raw->sendData(sim::DataSize::terabytes(100)); };
  flow->start();
  path.scenario.simulator.runFor(1_s);
  EXPECT_EQ(engine.activeFlowCount(), 1u);
  flow->abort();
  path.scenario.simulator.runFor(1_s);
  EXPECT_EQ(engine.activeFlowCount(), 0u);
}

// --- packet/fluid coupling -------------------------------------------------

TEST(HybridFidelity, FluidAndPacketFlowsShareTheBottleneck) {
  PathConfig cfg;
  cfg.rate = 10_Gbps;
  cfg.oneWayDelay = 500_us;
  TcpPath path{cfg};
  const TcpConfig tcp = TcpConfig::tunedDtn();

  net::FlowFactory::Options packetOptions;
  packetOptions.port = 5001;
  auto packetFlow = net::flowFactory(path.scenario.ctx).create(*path.a, *path.b, tcp,
                                                               packetOptions);
  auto* packetRaw = packetFlow.get();
  packetFlow->onEstablished = [packetRaw] {
    packetRaw->sendData(sim::DataSize::terabytes(100));
  };
  packetFlow->start();

  std::vector<net::FlowPtr> fluidFlows;
  for (int i = 0; i < 3; ++i) {
    auto f = makeFluidFlow(path, tcp, static_cast<std::uint16_t>(6000 + i));
    auto* raw = f.get();
    f->onEstablished = [raw] { raw->sendData(sim::DataSize::terabytes(100)); };
    f->start();
    fluidFlows.push_back(std::move(f));
  }

  path.scenario.simulator.runFor(3_s);
  const auto packetBase = packetFlow->deliveredBytes();
  std::vector<sim::DataSize> fluidBase;
  for (const auto& f : fluidFlows) fluidBase.push_back(f->deliveredBytes());
  path.scenario.simulator.runFor(5_s);

  const double packetBits =
      static_cast<double>((packetFlow->deliveredBytes() - packetBase).bitCount());
  double fluidBits = 0.0;
  for (std::size_t i = 0; i < fluidFlows.size(); ++i) {
    fluidBits +=
        static_cast<double>((fluidFlows[i]->deliveredBytes() - fluidBase[i]).bitCount());
  }
  const double packetGbps = packetBits / 5.0 / 1e9;
  const double fluidGbps = fluidBits / 5.0 / 1e9;

  // Both sides carry real traffic, the packet flow is pushed well below
  // line rate, and the total stays at (or under) the 10G bottleneck.
  EXPECT_GT(packetGbps, 0.5);
  EXPECT_GT(fluidGbps, 2.0);
  EXPECT_LT(packetGbps, 8.0);
  EXPECT_LT(packetGbps + fluidGbps, 10.5);
  EXPECT_GT(packetGbps + fluidGbps, 7.0);
}

TEST(HybridFidelity, PacketOnlyContextNeverTicksTheEngine) {
  // A packet-fidelity flow must not arm the fluid ticker: goldens depend on
  // the event stream staying byte-identical when no fluid flow exists.
  TcpPath path;
  net::FlowFactory::Options options;
  options.port = 5001;
  auto flow = net::flowFactory(path.scenario.ctx).create(*path.a, *path.b,
                                                         TcpConfig::tunedDtn(), options);
  auto* raw = flow.get();
  bool complete = false;
  flow->onEstablished = [raw] { raw->sendData(1_MB); };
  flow->onSendComplete = [&complete] { complete = true; };
  flow->start();
  path.scenario.simulator.run();  // terminates only if no ticker re-arms
  EXPECT_TRUE(complete);
  EXPECT_EQ(path.scenario.ctx.extension<FluidEngine>().activeFlowCount(), 0u);
}

TEST(FluidFlow, DeterministicAcrossIdenticalRuns) {
  auto runOnce = [] {
    PathConfig cfg;
    cfg.rate = 10_Gbps;
    cfg.oneWayDelay = 5_ms;
    cfg.randomLoss = 2e-4;
    TcpPath path{cfg};
    std::vector<net::FlowPtr> flows;
    for (int i = 0; i < 16; ++i) {
      auto f = makeFluidFlow(path, TcpConfig::tunedDtn(), static_cast<std::uint16_t>(7000 + i));
      auto* raw = f.get();
      f->onEstablished = [raw] { raw->sendData(sim::DataSize::terabytes(1)); };
      f->start();
      flows.push_back(std::move(f));
    }
    path.scenario.simulator.runFor(10_s);
    std::vector<std::uint64_t> delivered;
    for (const auto& f : flows) delivered.push_back(f->deliveredBytes().byteCount());
    return delivered;
  };
  EXPECT_EQ(runOnce(), runOnce());
}

}  // namespace
}  // namespace scidmz::tcp
