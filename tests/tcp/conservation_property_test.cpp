// Property sweep: across a grid of adverse path conditions, TCP delivers
// every byte exactly once and in order — no duplication into the app, no
// gaps — and the connection terminates cleanly.
#include <gtest/gtest.h>

#include "../tcp/tcp_test_util.hpp"

namespace scidmz::tcp {
namespace {

using namespace scidmz::sim::literals;
using testutil::PathConfig;
using testutil::TcpPath;

struct AdverseCase {
  double loss;
  int rttMs;
  int mtu;
  std::uint64_t seed;
};

class Conservation : public ::testing::TestWithParam<AdverseCase> {};

TEST_P(Conservation, EveryByteExactlyOnceInOrder) {
  const auto c = GetParam();
  PathConfig cfg;
  cfg.rate = 1_Gbps;
  cfg.oneWayDelay = sim::Duration::microseconds(c.rttMs * 500);
  cfg.mtu = sim::DataSize::bytes(static_cast<std::uint64_t>(c.mtu));
  cfg.randomLoss = c.loss;
  TcpPath path{cfg};
  path.scenario.rng.reseed(c.seed);

  TcpConfig tcpCfg;
  TcpListener listener{*path.b, 5001, tcpCfg};
  TcpConnection client{*path.a, path.b->address(), 5001, tcpCfg};

  // The receiver checks that delivery callbacks are contiguous by summing
  // them; deliveredBytes() is the same counter, so any duplicate or gap
  // would break the final equality or the monotonicity check.
  sim::DataSize viaCallbacks = sim::DataSize::zero();
  sim::DataSize lastSnapshot = sim::DataSize::zero();
  bool monotonic = true;
  TcpConnection* server = nullptr;
  listener.onAccept = [&](TcpConnection& conn) {
    server = &conn;
    conn.onDelivered = [&](sim::DataSize d) {
      viaCallbacks += d;
      if (server->deliveredBytes() < lastSnapshot) monotonic = false;
      lastSnapshot = server->deliveredBytes();
    };
  };

  const auto payload = 3_MB;
  bool closed = false;
  client.onEstablished = [&client, payload] {
    client.sendData(payload);
    client.close();
  };
  listener.onAccept = [&, inner = listener.onAccept](TcpConnection& conn) {
    inner(conn);
    conn.onClosed = [&closed] { closed = true; };
  };
  client.start();
  path.scenario.simulator.runFor(1800_s);

  ASSERT_NE(server, nullptr);
  EXPECT_EQ(server->deliveredBytes(), payload);
  EXPECT_EQ(viaCallbacks, payload);
  EXPECT_TRUE(monotonic);
  EXPECT_TRUE(closed) << "FIN did not complete";
}

INSTANTIATE_TEST_SUITE_P(
    AdverseGrid, Conservation,
    ::testing::Values(AdverseCase{0.0, 1, 1500, 1}, AdverseCase{0.001, 10, 1500, 2},
                      AdverseCase{0.01, 10, 1500, 3}, AdverseCase{0.05, 2, 1500, 4},
                      AdverseCase{0.001, 50, 9000, 5}, AdverseCase{0.02, 20, 9000, 6},
                      AdverseCase{0.1, 2, 575, 7}, AdverseCase{0.005, 100, 9000, 8}),
    [](const ::testing::TestParamInfo<AdverseCase>& info) {
      const auto& c = info.param;
      return "loss" + std::to_string(static_cast<int>(c.loss * 10000)) + "bp_rtt" +
             std::to_string(c.rttMs) + "ms_mtu" + std::to_string(c.mtu);
    });

}  // namespace
}  // namespace scidmz::tcp
