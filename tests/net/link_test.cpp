#include "net/link.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "../net/test_util.hpp"
#include "net/host.hpp"

namespace scidmz::net {
namespace {

using namespace scidmz::sim::literals;
using testutil::Scenario;

/// Captures every packet delivered to a bound UDP port.
class Capture : public PacketSink {
 public:
  void onPacket(const Packet& p) override { packets.push_back(p); }
  std::vector<Packet> packets;
};

struct TwoHosts {
  explicit TwoHosts(Scenario& s, LinkParams params = {})
      : a(s.topo.addHost("a", Address(10, 0, 0, 1))),
        b(s.topo.addHost("b", Address(10, 0, 0, 2))),
        link(s.topo.connect(a, b, params)) {
    s.topo.computeRoutes();
    b.bind(Protocol::kUdp, 7, capture);
  }
  Host& a;
  Host& b;
  Link& link;
  Capture capture;
};

Packet probeTo(Address dst, sim::DataSize payload) {
  Packet p;
  p.flow = FlowKey{Address{}, dst, 99, 7, Protocol::kUdp};
  p.body = ProbeHeader{};
  p.payload = payload;
  return p;
}

TEST(Link, DeliversAfterSerializationPlusPropagation) {
  Scenario s;
  LinkParams params;
  params.rate = 1_Gbps;
  params.delay = 1_ms;
  TwoHosts net{s, params};

  net.a.send(probeTo(net.b.address(), 1472_B));  // 1500B on the wire
  s.simulator.run();

  ASSERT_EQ(net.capture.packets.size(), 1u);
  // 1500B at 1Gbps = 12us serialization + 1ms propagation.
  EXPECT_EQ(s.simulator.now(), sim::SimTime::zero() + 1_ms + 12_us);
}

TEST(Link, BackToBackPacketsSerializeSequentially) {
  Scenario s;
  LinkParams params;
  params.rate = 1_Gbps;
  params.delay = 0_ns;
  TwoHosts net{s, params};

  for (int i = 0; i < 10; ++i) net.a.send(probeTo(net.b.address(), 1472_B));
  s.simulator.run();

  ASSERT_EQ(net.capture.packets.size(), 10u);
  EXPECT_EQ(s.simulator.now(), sim::SimTime::zero() + 120_us);
}

TEST(Link, RandomLossDropsApproximatelyAtRate) {
  Scenario s;
  LinkParams params;
  params.rate = 10_Gbps;
  TwoHosts net{s, params};
  net.link.setLossModel(0, std::make_unique<RandomLoss>(0.01, s.rng.fork(1)));

  const int n = 20000;
  for (int i = 0; i < n; ++i) net.a.send(probeTo(net.b.address(), 100_B));
  s.simulator.run();

  const double lossFrac = net.link.stats(0).lossFraction();
  EXPECT_NEAR(lossFrac, 0.01, 0.003);
  EXPECT_EQ(net.capture.packets.size(),
            static_cast<std::size_t>(n) - net.link.stats(0).lost);
}

TEST(Link, PeriodicLossDropsExactlyOneInN) {
  Scenario s;
  TwoHosts net{s};
  net.link.setLossModel(0, std::make_unique<PeriodicLoss>(100));

  for (int i = 0; i < 1000; ++i) net.a.send(probeTo(net.b.address(), 100_B));
  s.simulator.run();

  EXPECT_EQ(net.link.stats(0).lost, 10u);
  EXPECT_EQ(net.capture.packets.size(), 990u);
}

TEST(Link, RepairRemovesLoss) {
  Scenario s;
  TwoHosts net{s};
  net.link.setLossModel(0, std::make_unique<PeriodicLoss>(2));
  for (int i = 0; i < 10; ++i) net.a.send(probeTo(net.b.address(), 100_B));
  s.simulator.run();
  EXPECT_EQ(net.link.stats(0).lost, 5u);

  net.link.repair();
  for (int i = 0; i < 10; ++i) net.a.send(probeTo(net.b.address(), 100_B));
  s.simulator.run();
  EXPECT_EQ(net.link.stats(0).lost, 5u);  // unchanged
  EXPECT_EQ(net.capture.packets.size(), 15u);
}

TEST(Link, LossIsDirectional) {
  Scenario s;
  TwoHosts net{s};
  net.link.setLossModel(1, std::make_unique<PeriodicLoss>(1));  // b->a drops all

  // a -> b still works.
  net.a.send(probeTo(net.b.address(), 100_B));
  s.simulator.run();
  EXPECT_EQ(net.capture.packets.size(), 1u);
}

TEST(Link, GilbertElliottProducesBurstyLoss) {
  Scenario s;
  TwoHosts net{s};
  net.link.setLossModel(
      0, std::make_unique<GilbertElliottLoss>(0.01, 0.2, 0.8, s.rng.fork(2)));
  for (int i = 0; i < 20000; ++i) net.a.send(probeTo(net.b.address(), 100_B));
  s.simulator.run();
  const auto& st = net.link.stats(0);
  EXPECT_GT(st.lost, 100u);
  EXPECT_LT(st.lossFraction(), 0.5);
}

TEST(Link, EgressQueueOverflowDropsBeforeWire) {
  Scenario s;
  LinkParams params;
  params.rate = 1_Mbps;  // slow drain
  TwoHosts net{s, params};
  auto& nicQueue = net.a.interface(0).queue();
  nicQueue.setCapacity(3000_B);

  for (int i = 0; i < 100; ++i) net.a.send(probeTo(net.b.address(), 1000_B));
  s.simulator.run();

  EXPECT_GT(nicQueue.stats().dropped, 0u);
  EXPECT_EQ(net.capture.packets.size(),
            static_cast<std::size_t>(nicQueue.stats().enqueued));
}

}  // namespace
}  // namespace scidmz::net
