#include "net/switch.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "../net/test_util.hpp"
#include "net/host.hpp"

namespace scidmz::net {
namespace {

using namespace scidmz::sim::literals;
using testutil::Scenario;

class Capture : public PacketSink {
 public:
  void onPacket(const Packet& p) override { packets.push_back(p); }
  std::vector<Packet> packets;
};

Packet probeTo(Address dst, sim::DataSize payload) {
  Packet p;
  p.flow = FlowKey{Address{}, dst, 99, 7, Protocol::kUdp};
  p.body = ProbeHeader{};
  p.payload = payload;
  return p;
}

/// a --1G-- switch --1G-- b
struct SwitchedPair {
  SwitchedPair(Scenario& s, SwitchProfile profile, LinkParams link = {})
      : sw(s.topo.addSwitch("sw", profile)),
        a(s.topo.addHost("a", Address(10, 0, 0, 1))),
        b(s.topo.addHost("b", Address(10, 0, 0, 2))) {
    s.topo.connect(a, sw, link);
    s.topo.connect(sw, b, link);
    s.topo.computeRoutes();
    b.bind(Protocol::kUdp, 7, capture);
  }
  SwitchDevice& sw;
  Host& a;
  Host& b;
  Capture capture;
};

TEST(Switch, ForwardsBetweenHosts) {
  Scenario s;
  SwitchedPair net{s, SwitchProfile::scienceDmz()};
  net.a.send(probeTo(net.b.address(), 500_B));
  s.simulator.run();
  ASSERT_EQ(net.capture.packets.size(), 1u);
  EXPECT_EQ(net.capture.packets[0].ttl, 63);  // one forwarding hop
}

TEST(Switch, CutThroughFasterThanStoreAndForward) {
  LinkParams link;
  link.rate = 1_Gbps;
  link.delay = 0_ns;

  Scenario s1;
  auto ct = SwitchProfile::scienceDmz();
  ct.mode = ForwardingMode::kCutThrough;
  SwitchedPair n1{s1, ct, link};
  n1.a.send(probeTo(n1.b.address(), 8972_B));
  s1.simulator.run();
  const auto tCut = s1.simulator.now();

  Scenario s2;
  auto sf = SwitchProfile::scienceDmz();
  sf.mode = ForwardingMode::kStoreAndForward;
  SwitchedPair n2{s2, sf, link};
  n2.a.send(probeTo(n2.b.address(), 8972_B));
  s2.simulator.run();
  const auto tStore = s2.simulator.now();

  // Store-and-forward re-serializes the 9000B frame at 1G: +72us.
  EXPECT_EQ((tStore - tCut), 72_us);
}

TEST(Switch, AclDropsDeniedTraffic) {
  Scenario s;
  SwitchedPair net{s, SwitchProfile::scienceDmz()};
  AclTable acl{AclAction::kDeny};
  AclRule permit;
  permit.action = AclAction::kPermit;
  permit.dstPorts = PortRange::single(7);
  acl.append(permit);
  net.sw.setAcl(acl);

  auto ok = probeTo(net.b.address(), 100_B);
  auto blocked = probeTo(net.b.address(), 100_B);
  blocked.flow.dstPort = 8;
  net.a.send(ok);
  net.a.send(blocked);
  s.simulator.run();

  EXPECT_EQ(net.capture.packets.size(), 1u);
  EXPECT_EQ(net.sw.stats().dropsAcl, 1u);
}

TEST(Switch, CheapLanBufferDropsBurst) {
  // 192 KiB shared buffer vs a 1 MB burst arriving at 10G, draining at 1G.
  Scenario s;
  auto& sw = s.topo.addSwitch("sw", SwitchProfile::cheapLan());
  auto& fast = s.topo.addHost("fast", Address(10, 0, 0, 1));
  auto& slow = s.topo.addHost("slow", Address(10, 0, 0, 2));
  LinkParams in;
  in.rate = 10_Gbps;
  LinkParams out;
  out.rate = 1_Gbps;
  s.topo.connect(fast, sw, in);
  // Use the cheap profile's buffer for the congested egress port.
  s.topo.connect(sw, slow, out);
  s.topo.computeRoutes();
  Capture cap;
  slow.bind(Protocol::kUdp, 7, cap);

  const int n = 700;  // ~700 * 1500B = 1.05 MB burst
  for (int i = 0; i < n; ++i) fast.send(probeTo(slow.address(), 1472_B));
  s.simulator.run();

  const auto& egress = sw.interface(1).queue();
  EXPECT_GT(egress.stats().dropped, 0u);
  EXPECT_LT(cap.packets.size(), static_cast<std::size_t>(n));
}

TEST(Switch, ScienceDmzBufferAbsorbsSameBurst) {
  Scenario s;
  auto& sw = s.topo.addSwitch("sw", SwitchProfile::scienceDmz());
  auto& fast = s.topo.addHost("fast", Address(10, 0, 0, 1));
  auto& slow = s.topo.addHost("slow", Address(10, 0, 0, 2));
  LinkParams in;
  in.rate = 10_Gbps;
  LinkParams out;
  out.rate = 1_Gbps;
  s.topo.connect(fast, sw, in);
  s.topo.connect(sw, slow, out);
  s.topo.computeRoutes();
  Capture cap;
  slow.bind(Protocol::kUdp, 7, cap);

  const int n = 700;
  for (int i = 0; i < n; ++i) fast.send(probeTo(slow.address(), 1472_B));
  s.simulator.run();

  EXPECT_EQ(sw.interface(1).queue().stats().dropped, 0u);
  EXPECT_EQ(cap.packets.size(), static_cast<std::size_t>(n));
}

TEST(Switch, FanInDefectLatchesUnderLoadAndFixRestores) {
  // Two 10G senders into one 10G egress: offered load 20G > threshold.
  auto build = [](Scenario& s, bool applyFix) {
    auto profile = SwitchProfile::scienceDmz();
    auto& sw = s.topo.addSwitch("sw", profile);
    FanInDefect defect;
    defect.enabled = true;
    defect.loadThreshold = 2_Gbps;
    defect.defectiveBuffer = 32_KiB;
    sw.setFanInDefect(defect);
    if (applyFix) sw.applyVendorFix();

    auto& h1 = s.topo.addHost("h1", Address(10, 0, 0, 1));
    auto& h2 = s.topo.addHost("h2", Address(10, 0, 0, 2));
    auto& dst = s.topo.addHost("dst", Address(10, 0, 0, 9));
    LinkParams fast;
    fast.rate = 10_Gbps;
    s.topo.connect(h1, sw, fast);
    s.topo.connect(h2, sw, fast);
    s.topo.connect(sw, dst, fast);
    s.topo.computeRoutes();

    auto cap = std::make_unique<Capture>();
    dst.bind(Protocol::kUdp, 7, *cap);
    for (int i = 0; i < 2000; ++i) {
      h1.send(probeTo(dst.address(), 1472_B));
      h2.send(probeTo(dst.address(), 1472_B));
    }
    s.simulator.run();
    return std::pair<SwitchDevice*, std::unique_ptr<Capture>>{&sw, std::move(cap)};
  };

  Scenario broken;
  auto [swBroken, capBroken] = build(broken, false);
  EXPECT_TRUE(swBroken->inDefectiveState());
  EXPECT_GT(swBroken->interface(2).queue().stats().dropped, 0u);

  Scenario fixed;
  auto [swFixed, capFixed] = build(fixed, true);
  EXPECT_FALSE(swFixed->inDefectiveState());
  EXPECT_EQ(swFixed->interface(2).queue().stats().dropped, 0u);
  EXPECT_GT(capFixed->packets.size(), capBroken->packets.size());
}

TEST(Switch, TtlExpiryDrops) {
  Scenario s;
  SwitchedPair net{s, SwitchProfile::scienceDmz()};
  auto p = probeTo(net.b.address(), 100_B);
  p.ttl = 0;
  net.a.send(p);
  s.simulator.run();
  EXPECT_EQ(net.capture.packets.size(), 0u);
  EXPECT_EQ(net.sw.stats().dropsTtl, 1u);
}

}  // namespace
}  // namespace scidmz::net
