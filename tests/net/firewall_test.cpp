#include "net/firewall.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "../net/test_util.hpp"
#include "net/host.hpp"

namespace scidmz::net {
namespace {

using namespace scidmz::sim::literals;
using testutil::Scenario;

class Capture : public PacketSink {
 public:
  void onPacket(const Packet& p) override { packets.push_back(p); }
  std::vector<Packet> packets;
};

/// outside --10G-- firewall --10G-- inside
struct FirewalledPair {
  FirewalledPair(Scenario& s, FirewallProfile profile)
      : fw(s.topo.addFirewall("fw", profile)),
        outside(s.topo.addHost("outside", Address(198, 0, 0, 1))),
        inside(s.topo.addHost("inside", Address(10, 0, 0, 1))) {
    LinkParams link;
    link.rate = 10_Gbps;
    s.topo.connect(outside, fw, link);
    s.topo.connect(fw, inside, link);
    s.topo.computeRoutes();
    inside.bind(Protocol::kTcp, 5001, capture);
  }
  FirewallDevice& fw;
  Host& outside;
  Host& inside;
  Capture capture;
};

Packet tcpData(Address dst, sim::DataSize payload, std::uint16_t sport = 40000) {
  Packet p;
  p.flow = FlowKey{Address{}, dst, sport, 5001, Protocol::kTcp};
  TcpHeader h;
  h.flags.ack = true;
  p.body = h;
  p.payload = payload;
  return p;
}

Packet synTo(Address dst, std::uint16_t sport = 40000) {
  auto p = tcpData(dst, 0_B, sport);
  p.tcp().flags.syn = true;
  p.tcp().flags.ack = false;
  p.tcp().windowScalePresent = true;
  p.tcp().windowScale = 7;
  return p;
}

TEST(Firewall, ForwardsPermittedTraffic) {
  Scenario s;
  FirewalledPair net{s, FirewallProfile::enterprise10G()};
  net.outside.send(tcpData(net.inside.address(), 1000_B));
  s.simulator.run();
  ASSERT_EQ(net.capture.packets.size(), 1u);
  EXPECT_EQ(net.fw.firewallStats().inspected, 1u);
}

TEST(Firewall, PolicyDeniesBeforeBuffering) {
  Scenario s;
  FirewalledPair net{s, FirewallProfile::enterprise10G()};
  AclTable policy{AclAction::kDeny};
  net.fw.setPolicy(policy);
  net.outside.send(tcpData(net.inside.address(), 1000_B));
  s.simulator.run();
  EXPECT_EQ(net.capture.packets.size(), 0u);
  EXPECT_EQ(net.fw.firewallStats().dropsPolicy, 1u);
}

TEST(Firewall, SequenceCheckingStripsWindowScale) {
  Scenario s;
  auto profile = FirewallProfile::enterprise10G();
  profile.tcpSequenceChecking = true;
  FirewalledPair net{s, profile};
  net.outside.send(synTo(net.inside.address()));
  s.simulator.run();
  ASSERT_EQ(net.capture.packets.size(), 1u);
  EXPECT_FALSE(net.capture.packets[0].tcp().windowScalePresent);
  EXPECT_EQ(net.capture.packets[0].tcp().windowScale, 0);
  EXPECT_EQ(net.fw.firewallStats().synsRewritten, 1u);
}

TEST(Firewall, SequenceCheckingOffPreservesWindowScale) {
  Scenario s;
  auto profile = FirewallProfile::enterprise10G();
  profile.tcpSequenceChecking = false;
  FirewalledPair net{s, profile};
  net.outside.send(synTo(net.inside.address()));
  s.simulator.run();
  ASSERT_EQ(net.capture.packets.size(), 1u);
  EXPECT_TRUE(net.capture.packets[0].tcp().windowScalePresent);
  EXPECT_EQ(net.capture.packets[0].tcp().windowScale, 7);
}

TEST(Firewall, LineRateBurstOverflowsInputBuffer) {
  // A single 10G line-rate burst of 2 MB against a 256 KiB input buffer
  // drained by 1.25 Gbps engines: most of the burst must drop.
  Scenario s;
  FirewalledPair net{s, FirewallProfile::enterprise10G()};
  const int n = 1400;  // ~2 MB of 1500B frames
  for (int i = 0; i < n; ++i) net.outside.send(tcpData(net.inside.address(), 1460_B));
  s.simulator.run();

  const auto& st = net.fw.firewallStats();
  EXPECT_GT(st.dropsInputBuffer, static_cast<std::uint64_t>(n) / 2);
  EXPECT_EQ(st.inspected + st.dropsInputBuffer, static_cast<std::uint64_t>(n));
  EXPECT_EQ(net.capture.packets.size(), static_cast<std::size_t>(st.inspected));
}

TEST(Firewall, ManySlowFlowsPassCleanly) {
  // The business-traffic profile the firewall is built for: many flows,
  // each well under an engine's rate, spaced out in time.
  Scenario s;
  FirewalledPair net{s, FirewallProfile::enterprise10G()};
  for (int burst = 0; burst < 20; ++burst) {
    s.simulator.schedule(sim::Duration::milliseconds(burst), [&net, burst] {
      for (std::uint16_t f = 0; f < 16; ++f) {
        net.outside.send(
            tcpData(net.inside.address(), 1460_B, static_cast<std::uint16_t>(41000 + f)));
      }
      (void)burst;
    });
  }
  s.simulator.run();
  EXPECT_EQ(net.fw.firewallStats().dropsInputBuffer, 0u);
  EXPECT_EQ(net.capture.packets.size(), 320u);
}

TEST(Firewall, SessionTableLimitDropsNewFlows) {
  Scenario s;
  auto profile = FirewallProfile::enterprise10G();
  profile.sessionTableSize = 10;
  FirewalledPair net{s, profile};
  for (std::uint16_t f = 0; f < 20; ++f) {
    net.outside.send(synTo(net.inside.address(), static_cast<std::uint16_t>(30000 + f)));
  }
  s.simulator.run();
  EXPECT_EQ(net.fw.firewallStats().dropsSessionTable, 10u);
  EXPECT_EQ(net.capture.packets.size(), 10u);
  EXPECT_EQ(net.fw.firewallStats().peakSessions, 10u);
}

TEST(Firewall, BypassSkipsEnginesEntirely) {
  Scenario s;
  FirewalledPair net{s, FirewallProfile::enterprise10G()};
  // Same 2 MB burst as the overflow test, but the flow has an SDN bypass.
  auto sample = tcpData(net.inside.address(), 1460_B);
  FlowKey flowAsSeen = sample.flow;
  flowAsSeen.src = net.outside.address();  // Host::send stamps the source
  net.fw.addBypass(flowAsSeen);

  const int n = 1400;
  for (int i = 0; i < n; ++i) net.outside.send(tcpData(net.inside.address(), 1460_B));
  s.simulator.run();

  EXPECT_EQ(net.fw.firewallStats().dropsInputBuffer, 0u);
  EXPECT_EQ(net.fw.firewallStats().inspected, 0u);
  EXPECT_EQ(net.capture.packets.size(), static_cast<std::size_t>(n));
}

TEST(Firewall, EnginesAddLatency) {
  Scenario s;
  FirewalledPair net{s, FirewallProfile::enterprise10G()};
  net.outside.send(tcpData(net.inside.address(), 1460_B));
  s.simulator.run();
  // Path without firewall: 2 x (1.2us serialization + 5us propagation).
  // The firewall adds engine serialization (1500B at 1.25Gbps = 9.6us) and
  // 20us inspection delay; total must exceed the raw path time.
  EXPECT_GT(s.simulator.now() - sim::SimTime::zero(), 30_us);
}

}  // namespace
}  // namespace scidmz::net
