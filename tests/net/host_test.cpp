#include "net/host.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "../net/test_util.hpp"

namespace scidmz::net {
namespace {

using namespace scidmz::sim::literals;
using testutil::Scenario;

class Capture : public PacketSink {
 public:
  void onPacket(const Packet& p) override { packets.push_back(p); }
  std::vector<Packet> packets;
};

struct Pair {
  explicit Pair(Scenario& s, LinkParams params = {})
      : a(s.topo.addHost("a", Address(10, 0, 0, 1))),
        b(s.topo.addHost("b", Address(10, 0, 0, 2))) {
    s.topo.connect(a, b, params);
    s.topo.computeRoutes();
  }
  Host& a;
  Host& b;
};

Packet probe(Address dst, std::uint16_t dport, Protocol proto = Protocol::kUdp) {
  Packet p;
  p.flow = FlowKey{Address{}, dst, 99, dport, proto};
  if (proto == Protocol::kUdp) {
    p.body = ProbeHeader{};
  } else {
    p.body = TcpHeader{};
  }
  p.payload = 64_B;
  return p;
}

TEST(Host, DemuxByProtocolAndPort) {
  Scenario s;
  Pair net{s};
  Capture udp7;
  Capture tcp7;
  net.b.bind(Protocol::kUdp, 7, udp7);
  net.b.bind(Protocol::kTcp, 7, tcp7);

  net.a.send(probe(net.b.address(), 7, Protocol::kUdp));
  net.a.send(probe(net.b.address(), 7, Protocol::kTcp));
  s.simulator.run();

  EXPECT_EQ(udp7.packets.size(), 1u);
  EXPECT_EQ(tcp7.packets.size(), 1u);
  EXPECT_TRUE(udp7.packets[0].isProbe());
  EXPECT_TRUE(tcp7.packets[0].isTcp());
}

TEST(Host, UnboundPortDropsSilently) {
  Scenario s;
  Pair net{s};
  net.a.send(probe(net.b.address(), 4242));
  s.simulator.run();
  EXPECT_EQ(net.b.stats().dropsOther, 1u);
}

TEST(Host, WrongDestinationAddressDropped) {
  Scenario s;
  Pair net{s};
  Capture cap;
  net.b.bind(Protocol::kUdp, 7, cap);
  net.a.send(probe(Address(10, 0, 0, 99), 7));  // not b's address; no route
  s.simulator.run();
  EXPECT_TRUE(cap.packets.empty());
}

TEST(Host, UnbindStopsDelivery) {
  Scenario s;
  Pair net{s};
  Capture cap;
  net.b.bind(Protocol::kUdp, 7, cap);
  net.a.send(probe(net.b.address(), 7));
  s.simulator.run();
  ASSERT_EQ(cap.packets.size(), 1u);
  net.b.unbind(Protocol::kUdp, 7);
  net.a.send(probe(net.b.address(), 7));
  s.simulator.run();
  EXPECT_EQ(cap.packets.size(), 1u);
}

TEST(Host, SendStampsSourceAndUniqueIds) {
  Scenario s;
  Pair net{s};
  Capture cap;
  net.b.bind(Protocol::kUdp, 7, cap);
  net.a.send(probe(net.b.address(), 7));
  net.a.send(probe(net.b.address(), 7));
  s.simulator.run();
  ASSERT_EQ(cap.packets.size(), 2u);
  EXPECT_EQ(cap.packets[0].flow.src, net.a.address());
  EXPECT_NE(cap.packets[0].id, cap.packets[1].id);
}

TEST(Host, EphemeralPortsAreDistinct) {
  Scenario s;
  Pair net{s};
  const auto p1 = net.a.allocatePort();
  const auto p2 = net.a.allocatePort();
  EXPECT_NE(p1, p2);
  EXPECT_GE(p1, 10000);
}

TEST(Host, MssFollowsLinkMtu) {
  Scenario s;
  LinkParams jumbo;
  jumbo.mtu = 9000_B;
  Pair net{s, jumbo};
  EXPECT_EQ(net.a.mss(), 8960_B);
  EXPECT_EQ(net.a.nicRate(), jumbo.rate);
}

}  // namespace
}  // namespace scidmz::net
