#include "net/address.hpp"

#include <gtest/gtest.h>

namespace scidmz::net {
namespace {

TEST(Address, ParseAndFormatRoundTrip) {
  const auto a = Address::parse("10.1.2.3");
  EXPECT_EQ(a.toString(), "10.1.2.3");
  EXPECT_EQ(a, Address(10, 1, 2, 3));
}

TEST(Address, ParseRejectsMalformed) {
  EXPECT_THROW(Address::parse("10.1.2"), std::invalid_argument);
  EXPECT_THROW(Address::parse("10.1.2.3.4"), std::invalid_argument);
  EXPECT_THROW(Address::parse("10.1.2.256"), std::invalid_argument);
  EXPECT_THROW(Address::parse("a.b.c.d"), std::invalid_argument);
  EXPECT_THROW(Address::parse(""), std::invalid_argument);
}

TEST(Address, Ordering) {
  EXPECT_LT(Address(10, 0, 0, 1), Address(10, 0, 0, 2));
  EXPECT_LT(Address(9, 255, 255, 255), Address(10, 0, 0, 0));
}

TEST(Prefix, ContainsMasksCorrectly) {
  const auto p = Prefix::parse("192.168.10.0/24");
  EXPECT_TRUE(p.contains(Address::parse("192.168.10.1")));
  EXPECT_TRUE(p.contains(Address::parse("192.168.10.255")));
  EXPECT_FALSE(p.contains(Address::parse("192.168.11.0")));
}

TEST(Prefix, HostRoute) {
  const Prefix p{Address::parse("10.0.0.7"), 32};
  EXPECT_TRUE(p.contains(Address::parse("10.0.0.7")));
  EXPECT_FALSE(p.contains(Address::parse("10.0.0.8")));
}

TEST(Prefix, DefaultRouteMatchesEverything) {
  const auto p = Prefix::parse("0.0.0.0/0");
  EXPECT_TRUE(p.contains(Address::parse("1.2.3.4")));
  EXPECT_TRUE(p.contains(Address::parse("255.255.255.255")));
}

TEST(Prefix, BaseIsMasked) {
  const Prefix p{Address::parse("10.1.2.3"), 16};
  EXPECT_EQ(p.base().toString(), "10.1.0.0");
  EXPECT_EQ(p.toString(), "10.1.0.0/16");
}

TEST(Prefix, ParseRejectsBadLength) {
  EXPECT_THROW(Prefix::parse("10.0.0.0/33"), std::invalid_argument);
  EXPECT_THROW(Prefix::parse("10.0.0.0"), std::invalid_argument);
}

TEST(FlowKey, ReversedSwapsEndpoints) {
  const FlowKey k{Address(1, 1, 1, 1), Address(2, 2, 2, 2), 1111, 2222, Protocol::kTcp};
  const FlowKey r = k.reversed();
  EXPECT_EQ(r.src, k.dst);
  EXPECT_EQ(r.dst, k.src);
  EXPECT_EQ(r.srcPort, k.dstPort);
  EXPECT_EQ(r.dstPort, k.srcPort);
  EXPECT_EQ(r.reversed(), k);
}

TEST(FlowKey, HashDistinguishesFlows) {
  const FlowKey a{Address(1, 1, 1, 1), Address(2, 2, 2, 2), 1111, 2222, Protocol::kTcp};
  FlowKey b = a;
  b.dstPort = 2223;
  EXPECT_NE(FlowKeyHash{}(a), FlowKeyHash{}(b));
  EXPECT_EQ(FlowKeyHash{}(a), FlowKeyHash{}(a));
}

}  // namespace
}  // namespace scidmz::net
