// Device::forward drop accounting and the compiled-FIB / flow-cache path.
#include "net/device.hpp"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "../net/test_util.hpp"
#include "net/host.hpp"
#include "net/switch.hpp"
#include "net/topology.hpp"
#include "telemetry/telemetry.hpp"

namespace scidmz::net {
namespace {

using namespace scidmz::sim::literals;
using testutil::Scenario;

/// Minimal concrete Device exposing the protected forward() for direct
/// drop-path tests without a link/queue in the way.
class ForwardingDevice : public Device {
 public:
  using Device::Device;
  using Device::forward;
  void receive(PacketRef packet, Interface& in) override {
    (void)in;
    forward(std::move(packet));
  }
};

PacketRef probeTo(Scenario& s, Address dst) {
  PacketRef p = s.ctx.pool().acquire();
  p->flow = FlowKey{Address{}, dst, 99, 7, Protocol::kUdp};
  p->body = ProbeHeader{};
  p->payload = sim::DataSize::bytes(100);
  return p;
}

TEST(DeviceForward, TtlExpiryCountedSeparatelyFromNoRoute) {
  Scenario s;
  ForwardingDevice dev{s.ctx, "dev"};
  auto p = probeTo(s, Address(10, 0, 0, 1));
  p->ttl = 0;
  dev.forward(std::move(p));
  EXPECT_EQ(dev.stats().dropsTtl, 1u);
  EXPECT_EQ(dev.stats().dropsNoRoute, 0u);
}

TEST(DeviceForward, NoRouteCountedSeparatelyFromTtl) {
  Scenario s;
  ForwardingDevice dev{s.ctx, "dev"};
  dev.forward(probeTo(s, Address(10, 0, 0, 1)));  // default TTL, no routes
  EXPECT_EQ(dev.stats().dropsNoRoute, 1u);
  EXPECT_EQ(dev.stats().dropsTtl, 0u);
}

TEST(DeviceForward, TtlZeroDropsBeforeRouteLookup) {
  // A ttl=0 packet with a perfectly good route must be a TTL drop, not a
  // forward — and not a no-route drop.
  Scenario s;
  ForwardingDevice dev{s.ctx, "dev"};
  dev.addInterface(1_MB);
  dev.addRoute(Prefix{Address(10, 0, 0, 1), 32}, 0);
  auto p = probeTo(s, Address(10, 0, 0, 1));
  p->ttl = 0;
  dev.forward(std::move(p));
  EXPECT_EQ(dev.stats().dropsTtl, 1u);
  EXPECT_EQ(dev.stats().dropsNoRoute, 0u);
  EXPECT_EQ(s.ctx.packetsForwarded(), 0u);
}

TEST(DeviceForward, DropCausesTelemetryTaggedSeparately) {
  Scenario s;
  s.ctx.telemetry().enable();
  ForwardingDevice dev{s.ctx, "dev"};

  auto expired = probeTo(s, Address(10, 0, 0, 1));
  expired->ttl = 0;
  dev.forward(std::move(expired));
  dev.forward(probeTo(s, Address(10, 0, 0, 1)));  // no route installed

  auto& tel = s.ctx.telemetry();
  EXPECT_EQ(tel.metrics().counter("device/dev/drops_ttl_expired"), 1u);
  EXPECT_EQ(tel.metrics().counter("device/dev/drops_no_route"), 1u);

  // Each drop is a flight event at its own cause-specific emit point.
  std::vector<std::string> dropPoints;
  tel.recorder().forEach([&](const telemetry::FlightEvent& ev) {
    if (ev.kind == telemetry::FlightEventKind::kDrop) {
      dropPoints.push_back(tel.recorder().pointName(ev.point));
    }
  });
  ASSERT_EQ(dropPoints.size(), 2u);
  EXPECT_EQ(dropPoints[0], "dev/ttl_expired");
  EXPECT_EQ(dropPoints[1], "dev/no_route");
}

TEST(DeviceForward, SuccessfulForwardCountsPacket) {
  Scenario s;
  auto& h1 = s.topo.addHost("h1", Address(10, 0, 0, 1));
  auto& h2 = s.topo.addHost("h2", Address(10, 0, 0, 2));
  auto& sw = s.topo.addSwitch("sw");
  LinkParams lp;
  s.topo.connect(h1, sw, lp);
  s.topo.connect(sw, h2, lp);
  s.topo.computeRoutes();
  h1.send(probeTo(s, h2.address()));
  s.simulator.run();
  // One forward at the switch, one local delivery at h2 (hosts don't
  // forward); the counter tracks forwarding-plane hops only.
  EXPECT_EQ(s.ctx.packetsForwarded(), 1u);
}

TEST(DeviceFib, ExactSlash32BeatsShorterPrefix) {
  Scenario s;
  ForwardingDevice dev{s.ctx, "dev"};
  dev.addRoute(Prefix{Address(10, 0, 0, 0), 8}, 1);
  dev.addRoute(Prefix{Address(10, 0, 0, 7), 32}, 2);
  EXPECT_EQ(dev.lookupRoute(Address(10, 0, 0, 7)), 2);
  EXPECT_EQ(dev.lookupRoute(Address(10, 0, 0, 8)), 1);
}

TEST(DeviceFib, FirstInsertedSlash32Wins) {
  // stable_sort + first-match scan semantics: a duplicate /32 never
  // overrides the first-installed one. The exact-match table must agree.
  Scenario s;
  ForwardingDevice dev{s.ctx, "dev"};
  dev.addRoute(Prefix{Address(10, 0, 0, 7), 32}, 1);
  dev.addRoute(Prefix{Address(10, 0, 0, 7), 32}, 2);
  EXPECT_EQ(dev.lookupRoute(Address(10, 0, 0, 7)), 1);
}

TEST(DeviceFib, LongerOfTwoWidePrefixesWins) {
  Scenario s;
  ForwardingDevice dev{s.ctx, "dev"};
  dev.addRoute(Prefix{Address(10, 0, 0, 0), 8}, 1);
  dev.addRoute(Prefix{Address(10, 1, 0, 0), 16}, 2);
  EXPECT_EQ(dev.lookupRoute(Address(10, 1, 2, 3)), 2);
  EXPECT_EQ(dev.lookupRoute(Address(10, 2, 0, 1)), 1);
  EXPECT_EQ(dev.lookupRoute(Address(11, 0, 0, 1)), std::nullopt);
}

TEST(DeviceFib, FlowCacheInvalidatedByAddRoute) {
  Scenario s;
  ForwardingDevice dev{s.ctx, "dev"};
  const Address dst{10, 0, 0, 7};
  // Warm the cache with a negative result, then install a route: the
  // cached miss must not survive the generation bump.
  EXPECT_EQ(dev.lookupRoute(dst), std::nullopt);
  dev.addRoute(Prefix{dst, 32}, 3);
  EXPECT_EQ(dev.lookupRoute(dst), 3);
  // And the other way: warm a positive hit, then widen to a better route.
  dev.addRoute(Prefix{dst, 32}, 9);  // duplicate; first still wins
  EXPECT_EQ(dev.lookupRoute(dst), 3);
}

TEST(DeviceFib, FlowCacheInvalidatedByClearRoutes) {
  Scenario s;
  ForwardingDevice dev{s.ctx, "dev"};
  const Address dst{10, 0, 0, 7};
  dev.addRoute(Prefix{dst, 32}, 3);
  EXPECT_EQ(dev.lookupRoute(dst), 3);  // cache now holds a hit
  const auto genBefore = dev.routeGeneration();
  dev.clearRoutes();
  EXPECT_GT(dev.routeGeneration(), genBefore);
  EXPECT_EQ(dev.lookupRoute(dst), std::nullopt);
}

TEST(DeviceFib, ComputeRoutesLeavesFibCompiled) {
  Scenario s;
  auto& h1 = s.topo.addHost("h1", Address(10, 0, 0, 1));
  auto& sw = s.topo.addSwitch("sw");
  LinkParams lp;
  s.topo.connect(h1, sw, lp);
  s.topo.computeRoutes();
  EXPECT_TRUE(sw.fibCompiled());
  EXPECT_TRUE(h1.fibCompiled());
}

}  // namespace
}  // namespace scidmz::net
