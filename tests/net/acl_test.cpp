#include "net/acl.hpp"

#include <gtest/gtest.h>

namespace scidmz::net {
namespace {

Packet tcpPacket(Address src, Address dst, std::uint16_t sport, std::uint16_t dport) {
  Packet p;
  p.flow = FlowKey{src, dst, sport, dport, Protocol::kTcp};
  p.body = TcpHeader{};
  return p;
}

TEST(PortRange, SingleAndAny) {
  EXPECT_TRUE(PortRange::any().contains(0));
  EXPECT_TRUE(PortRange::any().contains(65535));
  EXPECT_TRUE(PortRange::single(443).contains(443));
  EXPECT_FALSE(PortRange::single(443).contains(444));
  const PortRange gridftp{50000, 51000};
  EXPECT_TRUE(gridftp.contains(50500));
  EXPECT_FALSE(gridftp.contains(49999));
}

TEST(AclTable, DefaultPermitWithNoRules) {
  AclTable acl;
  EXPECT_TRUE(acl.permits(tcpPacket(Address(1, 1, 1, 1), Address(2, 2, 2, 2), 1, 2)));
}

TEST(AclTable, DefaultDenyWithNoRules) {
  AclTable acl{AclAction::kDeny};
  EXPECT_FALSE(acl.permits(tcpPacket(Address(1, 1, 1, 1), Address(2, 2, 2, 2), 1, 2)));
}

TEST(AclTable, FirstMatchWins) {
  AclTable acl{AclAction::kDeny};
  AclRule denyHost;
  denyHost.action = AclAction::kDeny;
  denyHost.src = Prefix{Address(10, 0, 0, 5), 32};
  acl.append(denyHost);
  AclRule permitNet;
  permitNet.action = AclAction::kPermit;
  permitNet.src = Prefix{Address(10, 0, 0, 0), 24};
  acl.append(permitNet);

  EXPECT_FALSE(acl.permits(tcpPacket(Address(10, 0, 0, 5), Address(2, 2, 2, 2), 1, 2)));
  EXPECT_TRUE(acl.permits(tcpPacket(Address(10, 0, 0, 6), Address(2, 2, 2, 2), 1, 2)));
  EXPECT_FALSE(acl.permits(tcpPacket(Address(10, 0, 1, 6), Address(2, 2, 2, 2), 1, 2)));
}

TEST(AclTable, ProtocolFilter) {
  AclTable acl{AclAction::kDeny};
  AclRule tcpOnly;
  tcpOnly.action = AclAction::kPermit;
  tcpOnly.proto = Protocol::kTcp;
  acl.append(tcpOnly);

  auto tcp = tcpPacket(Address(1, 1, 1, 1), Address(2, 2, 2, 2), 1, 2);
  EXPECT_TRUE(acl.permits(tcp));
  Packet udp = tcp;
  udp.flow.proto = Protocol::kUdp;
  udp.body = ProbeHeader{};
  EXPECT_FALSE(acl.permits(udp));
}

TEST(AclTable, DtnDataChannelPolicy) {
  // Science DMZ style: permit the collaborator's network to the DTN's
  // GridFTP control+data ports; default deny.
  AclTable acl{AclAction::kDeny};
  AclRule control;
  control.action = AclAction::kPermit;
  control.src = Prefix::parse("198.128.0.0/16");
  control.dst = Prefix::parse("10.10.1.10/32");
  control.dstPorts = PortRange::single(2811);
  acl.append(control);
  AclRule data;
  data.action = AclAction::kPermit;
  data.src = Prefix::parse("198.128.0.0/16");
  data.dst = Prefix::parse("10.10.1.10/32");
  data.dstPorts = PortRange{50000, 51000};
  acl.append(data);

  const Address collab = Address::parse("198.128.4.4");
  const Address dtn = Address::parse("10.10.1.10");
  const Address attacker = Address::parse("203.0.113.9");
  EXPECT_TRUE(acl.permits(tcpPacket(collab, dtn, 40000, 2811)));
  EXPECT_TRUE(acl.permits(tcpPacket(collab, dtn, 40000, 50017)));
  EXPECT_FALSE(acl.permits(tcpPacket(collab, dtn, 40000, 22)));
  EXPECT_FALSE(acl.permits(tcpPacket(attacker, dtn, 40000, 2811)));
}

TEST(AclRule, MatchesAllDimensionsTogether) {
  AclRule rule;
  rule.src = Prefix::parse("10.0.0.0/8");
  rule.dst = Prefix::parse("10.1.0.0/16");
  rule.proto = Protocol::kTcp;
  rule.srcPorts = PortRange{1000, 2000};
  rule.dstPorts = PortRange::single(443);

  EXPECT_TRUE(rule.matches(tcpPacket(Address(10, 9, 9, 9), Address(10, 1, 2, 3), 1500, 443)));
  EXPECT_FALSE(rule.matches(tcpPacket(Address(11, 9, 9, 9), Address(10, 1, 2, 3), 1500, 443)));
  EXPECT_FALSE(rule.matches(tcpPacket(Address(10, 9, 9, 9), Address(10, 2, 2, 3), 1500, 443)));
  EXPECT_FALSE(rule.matches(tcpPacket(Address(10, 9, 9, 9), Address(10, 1, 2, 3), 999, 443)));
  EXPECT_FALSE(rule.matches(tcpPacket(Address(10, 9, 9, 9), Address(10, 1, 2, 3), 1500, 80)));
}

}  // namespace
}  // namespace scidmz::net
