#include "net/topology.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "../net/test_util.hpp"
#include "net/host.hpp"

namespace scidmz::net {
namespace {

using namespace scidmz::sim::literals;
using testutil::Scenario;

class Capture : public PacketSink {
 public:
  void onPacket(const Packet& p) override { packets.push_back(p); }
  std::vector<Packet> packets;
};

Packet probeTo(Address dst, sim::DataSize payload = sim::DataSize::bytes(100)) {
  Packet p;
  p.flow = FlowKey{Address{}, dst, 99, 7, Protocol::kUdp};
  p.body = ProbeHeader{};
  p.payload = payload;
  return p;
}

/// Linear chain: h1 - swA - swB - swC - h2, plus h3 hanging off swB.
struct ChainTopo {
  explicit ChainTopo(Scenario& s)
      : h1(s.topo.addHost("h1", Address(10, 0, 0, 1))),
        h2(s.topo.addHost("h2", Address(10, 0, 0, 2))),
        h3(s.topo.addHost("h3", Address(10, 0, 0, 3))),
        swA(s.topo.addSwitch("swA")),
        swB(s.topo.addSwitch("swB")),
        swC(s.topo.addSwitch("swC")) {
    LinkParams core;
    core.rate = 10_Gbps;
    LinkParams edge;
    edge.rate = 1_Gbps;
    s.topo.connect(h1, swA, edge);
    s.topo.connect(swA, swB, core);
    s.topo.connect(swB, swC, core);
    s.topo.connect(swC, h2, edge);
    s.topo.connect(swB, h3, edge);
    s.topo.computeRoutes();
  }
  Host& h1;
  Host& h2;
  Host& h3;
  SwitchDevice& swA;
  SwitchDevice& swB;
  SwitchDevice& swC;
};

TEST(Topology, RoutesAcrossMultipleHops) {
  Scenario s;
  ChainTopo t{s};
  Capture cap;
  t.h2.bind(Protocol::kUdp, 7, cap);
  t.h1.send(probeTo(t.h2.address()));
  s.simulator.run();
  ASSERT_EQ(cap.packets.size(), 1u);
  EXPECT_EQ(cap.packets[0].ttl, 64 - 3);
}

TEST(Topology, BranchRouting) {
  Scenario s;
  ChainTopo t{s};
  Capture cap;
  t.h3.bind(Protocol::kUdp, 7, cap);
  t.h1.send(probeTo(t.h3.address()));
  t.h2.send(probeTo(t.h3.address()));
  s.simulator.run();
  EXPECT_EQ(cap.packets.size(), 2u);
}

TEST(Topology, TraceEnumeratesPath) {
  Scenario s;
  ChainTopo t{s};
  const auto path = s.topo.trace(t.h1.address(), t.h2.address());
  ASSERT_TRUE(path.has_value());
  EXPECT_TRUE(path->complete());
  ASSERT_EQ(path->hops.size(), 4u);
  EXPECT_EQ(path->hops[0].device->name(), "swA");
  EXPECT_EQ(path->hops[1].device->name(), "swB");
  EXPECT_EQ(path->hops[2].device->name(), "swC");
  EXPECT_EQ(path->hops[3].device->name(), "h2");
  EXPECT_EQ(path->toString(), "h1 -> swA -> swB -> swC -> h2");
}

TEST(Topology, TraceBottleneckAndDelay) {
  Scenario s;
  ChainTopo t{s};
  const auto path = s.topo.trace(t.h1.address(), t.h2.address());
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->bottleneckRate(), 1_Gbps);            // the edge links
  EXPECT_EQ(path->propagationDelay(), 20_us);  // default 5us per link, 4 links
}

TEST(Topology, TraceUnknownHostFails) {
  Scenario s;
  ChainTopo t{s};
  EXPECT_FALSE(s.topo.trace(t.h1.address(), Address(9, 9, 9, 9)).has_value());
}

TEST(Topology, FindersLocateDevices) {
  Scenario s;
  ChainTopo t{s};
  EXPECT_EQ(s.topo.findHost(Address(10, 0, 0, 3)), &t.h3);
  EXPECT_EQ(s.topo.findHost(Address(10, 0, 0, 99)), nullptr);
  EXPECT_EQ(s.topo.findDevice("swB"), &t.swB);
  EXPECT_EQ(s.topo.findDevice("nope"), nullptr);
}

TEST(Topology, ShortestPathPreferredWhenRedundant) {
  // Diamond: h1 - a - b - h2 and a - c - d - b (longer). BFS must pick the
  // two-switch path.
  Scenario s;
  auto& h1 = s.topo.addHost("h1", Address(10, 0, 0, 1));
  auto& h2 = s.topo.addHost("h2", Address(10, 0, 0, 2));
  auto& a = s.topo.addSwitch("a");
  auto& b = s.topo.addSwitch("b");
  auto& c = s.topo.addSwitch("c");
  auto& d = s.topo.addSwitch("d");
  LinkParams lp;
  s.topo.connect(h1, a, lp);
  s.topo.connect(a, b, lp);
  s.topo.connect(a, c, lp);
  s.topo.connect(c, d, lp);
  s.topo.connect(d, b, lp);
  s.topo.connect(b, h2, lp);
  s.topo.computeRoutes();

  const auto path = s.topo.trace(h1.address(), h2.address());
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->hops.size(), 3u);
  EXPECT_EQ(path->hops[0].device->name(), "a");
  EXPECT_EQ(path->hops[1].device->name(), "b");
}

TEST(Topology, RecomputeAfterStructuralChange) {
  Scenario s;
  auto& h1 = s.topo.addHost("h1", Address(10, 0, 0, 1));
  auto& h2 = s.topo.addHost("h2", Address(10, 0, 0, 2));
  auto& sw = s.topo.addSwitch("sw");
  LinkParams lp;
  s.topo.connect(h1, sw, lp);
  s.topo.computeRoutes();
  EXPECT_FALSE(s.topo.trace(h1.address(), h2.address()).has_value());

  s.topo.connect(sw, h2, lp);
  s.topo.computeRoutes();
  EXPECT_TRUE(s.topo.trace(h1.address(), h2.address()).has_value());
}

TEST(Topology, RecomputeFullySupersedesStaleEntries) {
  // Soft-failure style: traffic flows (warming every flow cache on the
  // path), then the topology changes and computeRoutes() runs again. The
  // second compute must fully supersede the first — no stale FIB entries,
  // no stale flow-cache hits steering packets at the old next hop.
  Scenario s;
  auto& h1 = s.topo.addHost("h1", Address(10, 0, 0, 1));
  auto& h2 = s.topo.addHost("h2", Address(10, 0, 0, 2));
  auto& a = s.topo.addSwitch("a");
  auto& b = s.topo.addSwitch("b");
  LinkParams lp;
  s.topo.connect(h1, a, lp);
  s.topo.connect(a, h2, lp);  // initially h2 hangs off a directly
  s.topo.computeRoutes();

  Capture cap;
  h2.bind(Protocol::kUdp, 7, cap);
  h1.send(probeTo(h2.address()));
  s.simulator.run();
  ASSERT_EQ(cap.packets.size(), 1u);  // caches on h1 and a are now warm
  const auto genBefore = a.routeGeneration();

  // Structural change: h2 moves behind b (a - b - h2). The old a->h2 port
  // still exists but the recompute must route via b's port instead.
  s.topo.connect(a, b, lp);
  s.topo.connect(b, h2, lp);
  s.topo.computeRoutes();
  EXPECT_GT(a.routeGeneration(), genBefore);  // caches invalidated

  const auto path = s.topo.trace(h1.address(), h2.address());
  ASSERT_TRUE(path.has_value());
  // BFS tie-break is adjacency (link creation) order, so the direct a->h2
  // link still wins for reachability — the point is the entries are fresh.
  h1.send(probeTo(h2.address()));
  s.simulator.run();
  EXPECT_EQ(cap.packets.size(), 2u);
  EXPECT_EQ(a.stats().dropsNoRoute, 0u);
}

TEST(Topology, RecomputeAfterDetachReroutesViaSurvivingPath) {
  // Diamond with two equal-length branches: h1 - a - {b, c} - d - h2.
  // First compute prefers the b branch (insertion order); clearing and
  // re-adding routes for the c branch only must leave NO residue of the b
  // branch in a's FIB or flow cache.
  Scenario s;
  auto& h1 = s.topo.addHost("h1", Address(10, 0, 0, 1));
  auto& h2 = s.topo.addHost("h2", Address(10, 0, 0, 2));
  auto& a = s.topo.addSwitch("a");
  auto& b = s.topo.addSwitch("b");
  auto& c = s.topo.addSwitch("c");
  auto& d = s.topo.addSwitch("d");
  LinkParams lp;
  s.topo.connect(h1, a, lp);
  s.topo.connect(a, b, lp);
  s.topo.connect(a, c, lp);
  s.topo.connect(b, d, lp);
  s.topo.connect(c, d, lp);
  s.topo.connect(d, h2, lp);
  s.topo.computeRoutes();

  auto path = s.topo.trace(h1.address(), h2.address());
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->hops[1].device->name(), "b");  // insertion-order winner
  // Warm a's cache toward h2 through b.
  ASSERT_TRUE(a.lookupRoute(h2.address()).has_value());

  // Simulate the b line card dying: manually repoint a's route to the c
  // port (what an SDN controller / re-converged IGP would install).
  a.clearRoutes();
  a.addRoute(Prefix{h2.address(), 32}, 2);  // if2 = a->c link
  a.addRoute(Prefix{h1.address(), 32}, 0);  // if0 = a->h1 link
  path = s.topo.trace(h1.address(), h2.address());
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->hops[1].device->name(), "c");  // stale cache would say b

  Capture cap;
  h2.bind(Protocol::kUdp, 7, cap);
  h1.send(probeTo(h2.address()));
  s.simulator.run();
  ASSERT_EQ(cap.packets.size(), 1u);
  EXPECT_EQ(cap.packets[0].ttl, 64 - 3);  // forwarded by a, c, d
  EXPECT_EQ(b.stats().rxPackets, 0u);     // nothing leaked down the old path
}

TEST(Topology, NoRouteDropCounted) {
  Scenario s;
  ChainTopo t{s};
  t.h1.send(probeTo(Address(99, 99, 99, 99)));
  s.simulator.run();
  EXPECT_EQ(t.swA.stats().dropsNoRoute, 1u);
}

}  // namespace
}  // namespace scidmz::net
