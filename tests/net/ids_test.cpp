#include "net/ids.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "../net/test_util.hpp"
#include "net/host.hpp"

namespace scidmz::net {
namespace {

using namespace scidmz::sim::literals;
using testutil::Scenario;

Packet tcpPacket(Address src, Address dst, std::uint16_t sport, std::uint16_t dport) {
  Packet p;
  p.flow = FlowKey{src, dst, sport, dport, Protocol::kTcp};
  p.body = TcpHeader{};
  p.payload = 100_B;
  return p;
}

TEST(Ids, CountsFlowsAndBytes) {
  IntrusionDetectionSystem ids;
  const auto a = tcpPacket(Address(1, 1, 1, 1), Address(2, 2, 2, 2), 10, 20);
  const auto b = tcpPacket(Address(3, 3, 3, 3), Address(2, 2, 2, 2), 11, 20);
  ids.observe(a);
  ids.observe(a);
  ids.observe(b);
  EXPECT_EQ(ids.observedFlowCount(), 2u);
  const auto* obs = ids.flow(a.flow);
  ASSERT_NE(obs, nullptr);
  EXPECT_EQ(obs->packets, 2u);
  EXPECT_EQ(obs->bytes, sim::DataSize::bytes(280));  // 2 x (100 + 40)
}

TEST(Ids, VetsAfterConfiguredPacketCount) {
  IntrusionDetectionSystem ids;
  ids.setVettingPacketCount(3);
  std::vector<FlowKey> vetted;
  ids.onVetted([&vetted](const FlowKey& k) { vetted.push_back(k); });
  const auto p = tcpPacket(Address(1, 1, 1, 1), Address(2, 2, 2, 2), 10, 20);
  ids.observe(p);
  ids.observe(p);
  EXPECT_TRUE(vetted.empty());
  ids.observe(p);
  ASSERT_EQ(vetted.size(), 1u);
  EXPECT_EQ(vetted[0], p.flow);
  // Fires exactly once.
  ids.observe(p);
  EXPECT_EQ(vetted.size(), 1u);
}

TEST(Ids, WatchlistedFlowFlaggedNeverVetted) {
  IntrusionDetectionSystem ids;
  ids.setVettingPacketCount(1);
  ids.addWatchlistPrefix(Prefix::parse("9.9.9.0/24"));
  int flagged = 0;
  int vetted = 0;
  ids.onFlagged([&flagged](const FlowKey&) { ++flagged; });
  ids.onVetted([&vetted](const FlowKey&) { ++vetted; });
  const auto bad = tcpPacket(Address(9, 9, 9, 9), Address(2, 2, 2, 2), 10, 20);
  for (int i = 0; i < 5; ++i) ids.observe(bad);
  EXPECT_EQ(flagged, 1);
  EXPECT_EQ(vetted, 0);
  EXPECT_EQ(ids.flaggedFlowCount(), 1u);
}

TEST(Ids, WatchlistMatchesDestinationToo) {
  IntrusionDetectionSystem ids;
  ids.addWatchlistPrefix(Prefix::parse("9.9.9.0/24"));
  int flagged = 0;
  ids.onFlagged([&flagged](const FlowKey&) { ++flagged; });
  ids.observe(tcpPacket(Address(1, 1, 1, 1), Address(9, 9, 9, 1), 10, 20));
  EXPECT_EQ(flagged, 1);
}

TEST(Ids, AttachesToDeviceTapPassively) {
  // The tap must not change forwarding behaviour in any way.
  Scenario s;
  auto& a = s.topo.addHost("a", Address(10, 0, 0, 1));
  auto& sw = s.topo.addSwitch("sw");
  auto& b = s.topo.addHost("b", Address(10, 0, 0, 2));
  s.topo.connect(a, sw, LinkParams{});
  s.topo.connect(sw, b, LinkParams{});
  s.topo.computeRoutes();

  IntrusionDetectionSystem ids;
  ids.attachTo(sw);

  class Sink : public PacketSink {
   public:
    int count = 0;
    void onPacket(const Packet&) override { ++count; }
  } sink;
  b.bind(Protocol::kUdp, 7, sink);

  for (int i = 0; i < 10; ++i) {
    Packet p;
    p.flow = FlowKey{a.address(), b.address(), 99, 7, Protocol::kUdp};
    p.body = ProbeHeader{};
    p.payload = 200_B;
    a.send(p);
  }
  s.simulator.run();

  EXPECT_EQ(sink.count, 10);  // all delivered
  EXPECT_EQ(ids.observedFlowCount(), 1u);
  EXPECT_EQ(ids.flow(FlowKey{a.address(), b.address(), 99, 7, Protocol::kUdp})->packets, 10u);
}

}  // namespace
}  // namespace scidmz::net
