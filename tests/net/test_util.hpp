// Shared scaffolding for net/tcp tests: one deterministic scenario
// (simulator + rng + logger + topology) per test.
#pragma once

#include "net/topology.hpp"
#include "sim/log.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace scidmz::testutil {

struct Scenario {
  sim::Simulator simulator;
  sim::Rng rng{12345};
  sim::Logger logger;
  net::Context ctx{simulator, rng, logger};
  net::Topology topo{ctx};
};

}  // namespace scidmz::testutil
