#include "net/queue.hpp"

#include <gtest/gtest.h>

#include <utility>

#include "net/packet_pool.hpp"

namespace scidmz::net {
namespace {

using namespace scidmz::sim::literals;
using sim::SimTime;

PacketRef tcpPacket(PacketPool& pool, sim::DataSize payload) {
  PacketRef p = pool.acquire();
  p->flow.proto = Protocol::kTcp;
  p->body = TcpHeader{};
  p->payload = payload;
  return p;
}

TEST(DropTailQueue, FifoOrder) {
  PacketPool pool;
  DropTailQueue q{10_KB};
  for (std::uint64_t i = 1; i <= 3; ++i) {
    auto p = tcpPacket(pool, 100_B);
    p->id = i;
    ASSERT_TRUE(q.tryEnqueue(SimTime::zero(), std::move(p)));
  }
  for (std::uint64_t i = 1; i <= 3; ++i) {
    const auto p = q.dequeue(SimTime::zero());
    ASSERT_TRUE(p);
    EXPECT_EQ(p->id, i);
  }
  EXPECT_TRUE(q.empty());
}

TEST(DropTailQueue, DropsWhenByteCapacityExceeded) {
  // Capacity 3000B; each 1460B payload packet occupies 1500B on the wire.
  PacketPool pool;
  DropTailQueue q{3000_B};
  EXPECT_TRUE(q.tryEnqueue(SimTime::zero(), tcpPacket(pool, 1460_B)));
  EXPECT_TRUE(q.tryEnqueue(SimTime::zero(), tcpPacket(pool, 1460_B)));
  EXPECT_FALSE(q.tryEnqueue(SimTime::zero(), tcpPacket(pool, 1460_B)));
  EXPECT_EQ(q.stats().enqueued, 2u);
  EXPECT_EQ(q.stats().dropped, 1u);
  EXPECT_DOUBLE_EQ(q.stats().dropFraction(), 1.0 / 3.0);
  // The rejected packet's slot recycled when its handle died in tryEnqueue.
  EXPECT_EQ(pool.liveCount(), 2u);
}

TEST(DropTailQueue, DepthTracksWireSize) {
  PacketPool pool;
  DropTailQueue q{1_MB};
  q.tryEnqueue(SimTime::zero(), tcpPacket(pool, 1460_B));
  EXPECT_EQ(q.depth(), 1500_B);
  (void)q.dequeue(SimTime::zero());
  EXPECT_EQ(q.depth(), 0_B);
  EXPECT_EQ(pool.liveCount(), 0u);  // discarded dequeue result recycled
}

TEST(DropTailQueue, PeakDepthRecorded) {
  PacketPool pool;
  DropTailQueue q{1_MB};
  for (int i = 0; i < 4; ++i) q.tryEnqueue(SimTime::zero(), tcpPacket(pool, 1460_B));
  (void)q.dequeue(SimTime::zero());
  EXPECT_EQ(q.stats().peakDepth, 6000_B);
}

TEST(DropTailQueue, DequeueEmptyReturnsEmptyRef) {
  DropTailQueue q{1_KB};
  EXPECT_FALSE(q.dequeue(SimTime::zero()));
}

TEST(DropTailQueue, CapacityCanShrinkLive) {
  // The Colorado defect clamps buffers at runtime; already-queued bytes
  // stay, but new arrivals beyond the new capacity drop.
  PacketPool pool;
  DropTailQueue q{1_MB};
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(q.tryEnqueue(SimTime::zero(), tcpPacket(pool, 1460_B)));
  }
  q.setCapacity(3000_B);
  EXPECT_FALSE(q.tryEnqueue(SimTime::zero(), tcpPacket(pool, 1460_B)));
  EXPECT_EQ(q.packetCount(), 10u);
}

TEST(DropTailQueue, ShrinkBelowDepthClampsToDepth) {
  // Regression: setCapacity used to report a capacity smaller than the
  // current depth verbatim, leaving depth() > capacity() visible — a
  // nonsensical >100% utilisation. capacity() now clamps to the depth
  // while admission keeps testing the requested size, so drop behavior is
  // unchanged: every arrival drops until the queue drains below it.
  PacketPool pool;
  DropTailQueue q{1_MB};
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(q.tryEnqueue(SimTime::zero(), tcpPacket(pool, 1460_B)));
  }
  ASSERT_EQ(q.depth(), 15000_B);
  q.setCapacity(3000_B);
  EXPECT_EQ(q.capacity(), 15000_B);  // clamped to depth, not 3000
  EXPECT_LE(q.depth(), q.capacity());
  // Arrivals drop exactly as they would with the unclamped capacity.
  EXPECT_FALSE(q.tryEnqueue(SimTime::zero(), tcpPacket(pool, 1460_B)));
  // The reported capacity follows the backlog down and converges to the
  // requested value on its own — no re-apply needed.
  while (q.depth() >= 3000_B) (void)q.dequeue(SimTime::zero());
  EXPECT_EQ(q.capacity(), 3000_B);
  EXPECT_LE(q.depth(), q.capacity());
  // Once below the target, admission works again.
  EXPECT_TRUE(q.tryEnqueue(SimTime::zero(), tcpPacket(pool, 100_B)));
}

TEST(DropTailQueue, RingWrapsAroundPreservingFifo) {
  // Push/pop interleaved past the ring's initial 16-slot extent so head
  // wraps several times; order and depth accounting must hold throughout.
  PacketPool pool;
  DropTailQueue q{1_MB};
  std::uint64_t nextId = 1;
  std::uint64_t expect = 1;
  for (int round = 0; round < 40; ++round) {
    for (int k = 0; k < 7; ++k) {
      auto p = tcpPacket(pool, 100_B);
      p->id = nextId++;
      ASSERT_TRUE(q.tryEnqueue(SimTime::zero(), std::move(p)));
    }
    for (int k = 0; k < 5; ++k) {
      auto p = q.dequeue(SimTime::zero());
      ASSERT_TRUE(p);
      EXPECT_EQ(p->id, expect++);
    }
  }
  while (auto p = q.dequeue(SimTime::zero())) EXPECT_EQ(p->id, expect++);
  EXPECT_EQ(expect, nextId);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.depth(), 0_B);
  EXPECT_EQ(pool.liveCount(), 0u);
}

TEST(DropTailQueue, UdpOverheadSmaller) {
  PacketPool pool;
  DropTailQueue q{1_MB};
  PacketRef p = pool.acquire();
  p->flow.proto = Protocol::kUdp;
  p->payload = 100_B;
  q.tryEnqueue(SimTime::zero(), std::move(p));
  EXPECT_EQ(q.depth(), 128_B);  // 100 + 28
}

TEST(PacketPool, RecyclesSlotsLifo) {
  PacketPool pool;
  Packet* first = nullptr;
  {
    PacketRef a = pool.acquire();
    first = a.get();
    EXPECT_EQ(pool.liveCount(), 1u);
  }
  EXPECT_EQ(pool.liveCount(), 0u);
  PacketRef b = pool.acquire();
  EXPECT_EQ(b.get(), first);  // LIFO freelist reuses the hottest slot
  EXPECT_EQ(pool.highWater(), 1u);
}

TEST(PacketPool, AcquireResetsRecycledSlot) {
  PacketPool pool;
  {
    PacketRef a = pool.acquire();
    a->ttl = 3;
    a->id = 77;
    a->payload = 512_B;
  }
  PacketRef b = pool.acquire();
  const Packet fresh{};
  EXPECT_EQ(b->ttl, fresh.ttl);  // no stale TTL leaks into reused slots
  EXPECT_EQ(b->id, fresh.id);
  EXPECT_EQ(b->payload, fresh.payload);
}

TEST(PacketPool, MoveTransfersOwnership) {
  PacketPool pool;
  PacketRef a = pool.acquire();
  Packet* raw = a.get();
  PacketRef b = std::move(a);
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move) — moved-from is empty
  EXPECT_EQ(b.get(), raw);
  EXPECT_EQ(pool.liveCount(), 1u);
  b.reset();
  EXPECT_EQ(pool.liveCount(), 0u);
}

TEST(PacketPool, GrowsByWholeSlabs) {
  PacketPool pool;
  std::vector<PacketRef> held;
  for (int i = 0; i < 300; ++i) held.push_back(pool.acquire());
  EXPECT_EQ(pool.liveCount(), 300u);
  EXPECT_EQ(pool.slotCount(), 512u);  // two 256-packet slabs
  EXPECT_EQ(pool.highWater(), 300u);
  held.clear();
  EXPECT_EQ(pool.liveCount(), 0u);
  EXPECT_EQ(pool.slotCount(), 512u);  // slabs are retained, not freed
}

}  // namespace
}  // namespace scidmz::net
