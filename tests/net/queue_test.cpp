#include "net/queue.hpp"

#include <gtest/gtest.h>

namespace scidmz::net {
namespace {

using namespace scidmz::sim::literals;
using sim::SimTime;

Packet tcpPacket(sim::DataSize payload) {
  Packet p;
  p.flow.proto = Protocol::kTcp;
  p.body = TcpHeader{};
  p.payload = payload;
  return p;
}

TEST(DropTailQueue, FifoOrder) {
  DropTailQueue q{10_KB};
  for (std::uint64_t i = 1; i <= 3; ++i) {
    auto p = tcpPacket(100_B);
    p.id = i;
    ASSERT_TRUE(q.tryEnqueue(SimTime::zero(), p));
  }
  for (std::uint64_t i = 1; i <= 3; ++i) {
    const auto p = q.dequeue(SimTime::zero());
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->id, i);
  }
  EXPECT_TRUE(q.empty());
}

TEST(DropTailQueue, DropsWhenByteCapacityExceeded) {
  // Capacity 3000B; each 1460B payload packet occupies 1500B on the wire.
  DropTailQueue q{3000_B};
  EXPECT_TRUE(q.tryEnqueue(SimTime::zero(), tcpPacket(1460_B)));
  EXPECT_TRUE(q.tryEnqueue(SimTime::zero(), tcpPacket(1460_B)));
  EXPECT_FALSE(q.tryEnqueue(SimTime::zero(), tcpPacket(1460_B)));
  EXPECT_EQ(q.stats().enqueued, 2u);
  EXPECT_EQ(q.stats().dropped, 1u);
  EXPECT_DOUBLE_EQ(q.stats().dropFraction(), 1.0 / 3.0);
}

TEST(DropTailQueue, DepthTracksWireSize) {
  DropTailQueue q{1_MB};
  q.tryEnqueue(SimTime::zero(), tcpPacket(1460_B));
  EXPECT_EQ(q.depth(), 1500_B);
  (void)q.dequeue(SimTime::zero());
  EXPECT_EQ(q.depth(), 0_B);
}

TEST(DropTailQueue, PeakDepthRecorded) {
  DropTailQueue q{1_MB};
  for (int i = 0; i < 4; ++i) q.tryEnqueue(SimTime::zero(), tcpPacket(1460_B));
  (void)q.dequeue(SimTime::zero());
  EXPECT_EQ(q.stats().peakDepth, 6000_B);
}

TEST(DropTailQueue, DequeueEmptyReturnsNullopt) {
  DropTailQueue q{1_KB};
  EXPECT_FALSE(q.dequeue(SimTime::zero()).has_value());
}

TEST(DropTailQueue, CapacityCanShrinkLive) {
  // The Colorado defect clamps buffers at runtime; already-queued bytes
  // stay, but new arrivals beyond the new capacity drop.
  DropTailQueue q{1_MB};
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(q.tryEnqueue(SimTime::zero(), tcpPacket(1460_B)));
  q.setCapacity(3000_B);
  EXPECT_FALSE(q.tryEnqueue(SimTime::zero(), tcpPacket(1460_B)));
  EXPECT_EQ(q.packetCount(), 10u);
}

TEST(DropTailQueue, UdpOverheadSmaller) {
  DropTailQueue q{1_MB};
  Packet p;
  p.flow.proto = Protocol::kUdp;
  p.payload = 100_B;
  q.tryEnqueue(SimTime::zero(), p);
  EXPECT_EQ(q.depth(), 128_B);  // 100 + 28
}

}  // namespace
}  // namespace scidmz::net
