// Snapshot/restore round-trip properties: a scenario snapshotted mid-run
// and restored onto an identically rebuilt cell must (a) match the
// snapshotting run's state byte-for-byte at the restore point — counters,
// connection state, queue/telemetry contents, flight-recorder ring — and
// (b) continue to results byte-identical to the uninterrupted run, at
// packet, fluid and mixed fidelity, at any SCIDMZ_SWEEP_THREADS.
// Traced runs snapshot too: the blob carries a SPAN overlay that replaces
// the rebuilt cell's construction-time span table. Unsupported scenarios
// (unregistered scenario-level closures, unarmed contexts) must be
// refused loudly, never silently corrupted.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "net/flow.hpp"
#include "net/loss.hpp"
#include "net/topology.hpp"
#include "scenario/callback_registry.hpp"
#include "scenario/checkpoint.hpp"
#include "scenario/harness.hpp"
#include "sim/sweep.hpp"
#include "sim/units.hpp"
#include "tcp/connection.hpp"
#include "telemetry/span.hpp"

namespace scidmz::scenario {
namespace {

using namespace scidmz::sim::literals;

/// One snapshot-compatible cell: a 1 Gbps two-hop path with a periodic-loss
/// "failing line card" on the egress hop, one 48 MB flow (packet or fluid),
/// telemetry on. Construction is fully deterministic, so building two Cells
/// from the same arguments yields the identical rebuild the restore
/// protocol requires.
struct Cell {
  explicit Cell(net::FlowFidelity fidelity, int flows = 1, bool traced = false) : s(20260809) {
    s.ctx.armSnapshots();
    // Tracing must be on before flows are created so the factory arms the
    // construction-time flow spans the restore protocol replays.
    if (traced) s.ctx.extension<telemetry::Tracer>().enable();
    telemetry::TelemetryConfig tel;
    tel.sampleEvery = 10_ms;
    tel.ringCapacity = 4096;
    s.ctx.telemetry().enable(tel);

    auto& a = s.topo.addHost("a", net::Address(10, 0, 0, 1));
    auto& sw = s.topo.addSwitch("sw");
    auto& b = s.topo.addHost("b", net::Address(10, 0, 0, 2));
    net::LinkParams p;
    p.rate = 1_Gbps;
    p.delay = 5_ms;
    p.mtu = 9000_B;
    s.topo.connect(a, sw, p);
    net::Link& egress = s.topo.connect(sw, b, p);
    egress.setLossModel(0, std::make_unique<net::PeriodicLoss>(5000));
    s.topo.computeRoutes();

    tcp::TcpConfig cfg;
    cfg.algorithm = tcp::CcAlgorithm::kHtcp;
    cfg.sndBuf = 8_MB;
    cfg.rcvBuf = 8_MB;
    cfg.pacing = true;
    for (int i = 0; i < flows; ++i) {
      net::FlowFactory::Options options;
      options.port = static_cast<std::uint16_t>(5001 + i);
      // Alternate fidelities when running a mixed cell.
      options.fidelity = (flows > 1 && i % 2 == 1) ? net::FlowFidelity::kFluid : fidelity;
      options.pinned = true;
      net::FlowPtr flow = net::flowFactory(s.ctx).create(a, b, cfg, options);
      net::FlowHandle& ref = *flow;
      flow->onEstablished = [&ref] { ref.sendData(48_MB); };
      flow->start();
      flowsHeld.push_back(std::move(flow));
    }
  }

  Scenario s;
  std::vector<net::FlowPtr> flowsHeld;
};

/// Everything observable about a cell, as one comparable string: clock and
/// event accounting, per-flow transfer state, the sorted telemetry
/// snapshot, and the full flight-recorder JSONL export (packet-level event
/// stream — the strongest pop-order witness available).
std::string signature(Cell& c) {
  std::ostringstream out;
  out << "now=" << c.s.simulator.now().ns()
      << " executed=" << c.s.simulator.eventsExecuted()
      << " scheduled=" << c.s.simulator.scheduledTotal()
      << " pending=" << c.s.simulator.pendingEventCount()
      << " daemons=" << c.s.simulator.pendingDaemonCount()
      << " forwarded=" << c.s.ctx.packetsForwarded() << '\n';
  for (const auto& flow : c.flowsHeld) {
    out << "flow delivered=" << flow->deliveredBytes().byteCount()
        << " acked=" << flow->ackedBytes().byteCount() << " retx=" << flow->retransmits()
        << " rate=" << flow->currentRate().bps()
        << " established=" << flow->established() << " complete=" << flow->sendComplete()
        << '\n';
  }
  out << c.s.ctx.telemetry().snapshot().toJson() << '\n';
  c.s.ctx.telemetry().recorder().exportJsonl(out);
  auto& tracer = c.s.ctx.extension<telemetry::Tracer>();
  if (tracer.enabled()) tracer.exportSpansJsonl(out, c.s.simulator.now());
  return out.str();
}

void expectSameSignature(const std::string& got, const std::string& want, const char* what) {
  EXPECT_TRUE(got == want) << what << ": signatures diverge (" << got.size() << " vs "
                           << want.size() << " bytes)\n--- got (first 400) ---\n"
                           << got.substr(0, 400) << "\n--- want (first 400) ---\n"
                           << want.substr(0, 400);
}

/// The core round trip at one fidelity: run to t1, snapshot; keep running
/// the original to t2. Rebuild, restore, check state byte-match at t1,
/// continue to t2, check byte-match again.
void roundTrip(net::FlowFidelity fidelity, int flows) {
  Cell original(fidelity, flows);
  original.s.simulator.runFor(300_ms);
  const SnapshotBlob blob = saveSnapshot(original.s);
  ASSERT_TRUE(blob.ok()) << blob.error;
  ASSERT_FALSE(blob.bytes.empty());
  const std::string atSnapshot = signature(original);
  original.s.simulator.runFor(700_ms);
  const std::string uninterrupted = signature(original);

  Cell rebuilt(fidelity, flows);
  std::string error;
  ASSERT_TRUE(restoreSnapshot(rebuilt.s, blob.bytes, &error)) << error;
  expectSameSignature(signature(rebuilt), atSnapshot, "state at restore point");
  rebuilt.s.simulator.runFor(700_ms);
  expectSameSignature(signature(rebuilt), uninterrupted, "continuation");
}

TEST(SnapshotRoundTrip, PacketFidelityContinuesByteIdentical) {
  roundTrip(net::FlowFidelity::kPacket, 1);
}

TEST(SnapshotRoundTrip, FluidFidelityContinuesByteIdentical) {
  roundTrip(net::FlowFidelity::kFluid, 1);
}

TEST(SnapshotRoundTrip, MixedFidelityContinuesByteIdentical) {
  roundTrip(net::FlowFidelity::kPacket, 2);
}

TEST(SnapshotRoundTrip, RestoringTwiceIntoSameContextIsDeterministic) {
  // The ~Context/teardown satellite's behavioral half: a second restore of
  // the same blob into the same (already continued) Context must destroy
  // the first restore's server connections/samplers cleanly and land in
  // the same state — byte-identical continuation both times.
  Cell original(net::FlowFidelity::kPacket, 1);
  original.s.simulator.runFor(300_ms);
  const SnapshotBlob blob = saveSnapshot(original.s);
  ASSERT_TRUE(blob.ok()) << blob.error;

  Cell rebuilt(net::FlowFidelity::kPacket, 1);
  std::string error;
  ASSERT_TRUE(restoreSnapshot(rebuilt.s, blob.bytes, &error)) << error;
  rebuilt.s.simulator.runFor(500_ms);
  const std::string firstContinuation = signature(rebuilt);

  ASSERT_TRUE(restoreSnapshot(rebuilt.s, blob.bytes, &error)) << error;
  rebuilt.s.simulator.runFor(500_ms);
  expectSameSignature(signature(rebuilt), firstContinuation, "second restore");
}

TEST(SnapshotRoundTrip, SnapshotBytesAreDeterministic) {
  auto snap = [] {
    Cell cell(net::FlowFidelity::kPacket, 1);
    cell.s.simulator.runFor(200_ms);
    SnapshotBlob blob = saveSnapshot(cell.s);
    EXPECT_TRUE(blob.ok()) << blob.error;
    return blob.bytes;
  };
  EXPECT_EQ(snap(), snap());
}

TEST(SnapshotRoundTrip, ByteIdenticalAtAnyWorkerCount) {
  // Whole save+restore+continue pipelines run as sweep cells: results must
  // not depend on SCIDMZ_SWEEP_THREADS (cells share no state).
  auto runCells = [](int workers) {
    sim::SweepRunner sweep{workers};
    return sweep.run<std::string>(
        4,
        [](sim::SweepCell& cell) {
          const net::FlowFidelity fidelity =
              cell.index % 2 == 0 ? net::FlowFidelity::kPacket : net::FlowFidelity::kFluid;
          Cell original(fidelity, 1);
          original.s.simulator.runFor(250_ms);
          const SnapshotBlob blob = saveSnapshot(original.s);
          if (!blob.ok()) return std::string("refused: ") + blob.error;
          Cell rebuilt(fidelity, 1);
          std::string error;
          if (!restoreSnapshot(rebuilt.s, blob.bytes, &error)) return "failed: " + error;
          rebuilt.s.simulator.runFor(400_ms);
          return signature(rebuilt);
        },
        "snapshot_workers");
  };
  const auto serial = runCells(1);
  const auto parallel = runCells(8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(serial[i] == parallel[i]) << "cell " << i << " diverged across worker counts";
    EXPECT_TRUE(serial[i].rfind("refused:", 0) != 0 && serial[i].rfind("failed:", 0) != 0)
        << serial[i].substr(0, 200);
  }
}

TEST(SnapshotRoundTrip, RegisteredClosureIsClaimedAndReArmed) {
  // A scenario-level closure registered by name is claimed by the snapshot
  // (no "pending events" refusal) and re-armed on restore: the continuation
  // fires it on the same schedule as the uninterrupted run.
  auto arm = [](Cell& cell, int& counter) {
    auto& callbacks = cell.s.ctx.extension<CallbackRegistry>();
    sim::Simulator& simulator = cell.s.simulator;
    callbacks.registerNamed("test/tick", [&counter, &callbacks, &simulator] {
      ++counter;
      callbacks.scheduleNamed(simulator, "test/tick", 100_ms);
    });
    callbacks.scheduleNamed(simulator, "test/tick", 100_ms);
  };

  Cell original(net::FlowFidelity::kPacket, 1);
  int originalTicks = 0;
  arm(original, originalTicks);
  original.s.simulator.runFor(250_ms);
  const SnapshotBlob blob = saveSnapshot(original.s);
  ASSERT_TRUE(blob.ok()) << blob.error;
  const int ticksAtSnapshot = originalTicks;
  original.s.simulator.runFor(700_ms);

  Cell rebuilt(net::FlowFidelity::kPacket, 1);
  int rebuiltTicks = 0;
  arm(rebuilt, rebuiltTicks);
  std::string error;
  ASSERT_TRUE(restoreSnapshot(rebuilt.s, blob.bytes, &error)) << error;
  EXPECT_EQ(rebuiltTicks, 0);  // restore re-arms the timer, it does not fire it
  rebuilt.s.simulator.runFor(700_ms);
  EXPECT_EQ(rebuiltTicks, originalTicks - ticksAtSnapshot);
  expectSameSignature(signature(rebuilt), signature(original), "closure continuation");
}

TEST(SnapshotRefusal, UnregisteredClosureArmedInBlobIsRefusedOnRestore) {
  // If the blob names a registered closure the rebuilt cell never
  // registered, restore must fail loudly instead of silently dropping the
  // timer.
  Cell original(net::FlowFidelity::kPacket, 1);
  auto& callbacks = original.s.ctx.extension<CallbackRegistry>();
  sim::Simulator& simulator = original.s.simulator;
  callbacks.registerNamed("test/orphan", [] {});
  callbacks.scheduleNamed(simulator, "test/orphan", 10_s);
  original.s.simulator.runFor(100_ms);
  const SnapshotBlob blob = saveSnapshot(original.s);
  ASSERT_TRUE(blob.ok()) << blob.error;

  Cell rebuilt(net::FlowFidelity::kPacket, 1);  // never registers test/orphan
  std::string error;
  EXPECT_FALSE(restoreSnapshot(rebuilt.s, blob.bytes, &error));
}

TEST(SnapshotRefusal, UnarmedContextIsRefused) {
  Scenario s(1);
  net::Topology& topo = s.topo;
  (void)topo;
  const SnapshotBlob blob = saveSnapshot(s);
  EXPECT_FALSE(blob.ok());
  EXPECT_NE(blob.error.find("armSnapshots"), std::string::npos) << blob.error;
}

TEST(SnapshotRefusal, ScenarioLevelClosureIsRefusedNotDropped) {
  // An event the snapshot layer cannot re-materialize (a raw scenario
  // closure) must make saveSnapshot() refuse via the claimed-count check.
  Cell cell(net::FlowFidelity::kPacket, 1);
  cell.s.simulator.runFor(100_ms);
  cell.s.simulator.schedule(10_s, [] {});
  const SnapshotBlob blob = saveSnapshot(cell.s);
  EXPECT_FALSE(blob.ok());
  EXPECT_NE(blob.error.find("pending events"), std::string::npos) << blob.error;
}

TEST(SnapshotRoundTrip, TracedRunContinuesWithSpansByteIdentical) {
  // --trace and --restore now compose: the blob's SPAN overlay replaces the
  // rebuilt cell's construction-time span table, and connections re-resolve
  // their tracer on restore, so both the restore-point state and the
  // continuation's span export match the uninterrupted traced run.
  Cell original(net::FlowFidelity::kPacket, 1, /*traced=*/true);
  original.s.simulator.runFor(300_ms);
  const SnapshotBlob blob = saveSnapshot(original.s);
  ASSERT_TRUE(blob.ok()) << blob.error;
  const std::string atSnapshot = signature(original);
  original.s.simulator.runFor(700_ms);
  const std::string uninterrupted = signature(original);

  Cell rebuilt(net::FlowFidelity::kPacket, 1, /*traced=*/true);
  std::string error;
  ASSERT_TRUE(restoreSnapshot(rebuilt.s, blob.bytes, &error)) << error;
  expectSameSignature(signature(rebuilt), atSnapshot, "traced state at restore point");
  rebuilt.s.simulator.runFor(700_ms);
  expectSameSignature(signature(rebuilt), uninterrupted, "traced continuation");
}

TEST(SnapshotRefusal, GarbageBlobIsRefused) {
  Cell cell(net::FlowFidelity::kPacket, 1);
  const std::vector<std::uint8_t> garbage{0xde, 0xad, 0xbe, 0xef};
  std::string error;
  EXPECT_FALSE(restoreSnapshot(cell.s, garbage, &error));
  EXPECT_NE(error.find("snap.v1"), std::string::npos) << error;
}

}  // namespace
}  // namespace scidmz::scenario
