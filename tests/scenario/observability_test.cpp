// End-to-end tests for the observability layer: flow root spans and TCP
// phase children through the FlowFactory seam (packet and fluid fidelity),
// the critical-path report, spansEmitted bookkeeping through finishCell,
// and the determinism guarantee (byte-identical span exports at any sweep
// worker count).
#include "scenario/observability.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "net/flow.hpp"
#include "net/loss.hpp"
#include "net/topology.hpp"
#include "scenario/harness.hpp"
#include "sim/sweep.hpp"
#include "tcp/connection.hpp"
#include "telemetry/span.hpp"

namespace scidmz::scenario {
namespace {

using namespace scidmz::sim::literals;

/// A 40 ms RTT path with a soft-failure line card on the forward direction:
/// the regime where loss recovery dominates a bulk transfer. Returns the
/// cell's span export.
std::string runImpairedCell(net::FlowFidelity fidelity = net::FlowFidelity::kPacket) {
  Scenario s;
  s.ctx.extension<telemetry::Tracer>().enable();
  auto& a = s.topo.addHost("a", net::Address(10, 0, 0, 1));
  auto& b = s.topo.addHost("b", net::Address(10, 0, 0, 2));
  net::LinkParams lp;
  lp.rate = 1_Gbps;
  lp.delay = 20_ms;
  lp.mtu = 9000_B;
  auto& link = s.topo.connect(a, b, lp);
  link.setLossModel(0, std::make_unique<net::PeriodicLoss>(1500));
  s.topo.computeRoutes();

  net::FlowFactory::Options options;
  options.port = 5001;
  options.fidelity = fidelity;
  auto flow = net::flowFactory(s.ctx).create(a, b, tcp::TcpConfig::tunedDtn(), options);
  auto* raw = flow.get();
  flow->onEstablished = [raw] { raw->sendData(100_GB); };
  flow->start();
  s.simulator.runFor(5_s);

  auto& tracer = s.ctx.extension<telemetry::Tracer>();
  tracer.correlate(s.ctx.telemetry().recorder(), s.ctx.now());
  std::ostringstream out;
  tracer.exportSpansJsonl(out, s.ctx.now());
  return out.str();
}

TEST(FlowSpans, PacketFlowOpensRootAndContiguousPhaseChildren) {
  Scenario s;
  auto& tracer = s.ctx.extension<telemetry::Tracer>();
  tracer.enable();
  auto& a = s.topo.addHost("a", net::Address(10, 0, 0, 1));
  auto& b = s.topo.addHost("b", net::Address(10, 0, 0, 2));
  net::LinkParams lp;
  lp.rate = 10_Gbps;
  lp.delay = 1_ms;
  lp.mtu = 9000_B;
  s.topo.connect(a, b, lp);
  s.topo.computeRoutes();

  net::FlowFactory::Options options;
  options.port = 5001;
  auto flow = net::flowFactory(s.ctx).create(a, b, tcp::TcpConfig::tunedDtn(), options);
  auto* raw = flow.get();
  flow->onEstablished = [raw] { raw->sendData(1_GB); };
  flow->start();
  s.simulator.runFor(2_s);

  ASSERT_GE(tracer.spanCount(), 2u);
  const telemetry::Tracer::Span* root = tracer.find(telemetry::SpanId{1});
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->category, "flow");
  EXPECT_EQ(root->name, "flow a->b");
  EXPECT_EQ(root->parent, 0u);

  // Phase children tile the connection's lifetime: each starts where the
  // previous ended, the first is the handshake, none overlap.
  std::vector<const telemetry::Tracer::Span*> phases;
  tracer.forEachSpan([&](telemetry::SpanId, const telemetry::Tracer::Span& span) {
    if (span.category == "tcp.phase") phases.push_back(&span);
  });
  ASSERT_GE(phases.size(), 2u);
  EXPECT_EQ(phases.front()->name, "handshake");
  for (const auto* p : phases) EXPECT_EQ(p->parent, 1u);
  for (std::size_t i = 1; i < phases.size(); ++i) {
    EXPECT_FALSE(phases[i - 1]->open);
    EXPECT_EQ(phases[i]->t0.ns(), phases[i - 1]->t1.ns());
  }
}

TEST(FlowSpans, FluidFlowOpensRootWithModelAnnotation) {
  Scenario s;
  auto& tracer = s.ctx.extension<telemetry::Tracer>();
  tracer.enable();
  auto& a = s.topo.addHost("a", net::Address(10, 0, 0, 1));
  auto& b = s.topo.addHost("b", net::Address(10, 0, 0, 2));
  net::LinkParams lp;
  lp.rate = 10_Gbps;
  lp.delay = 1_ms;
  s.topo.connect(a, b, lp);
  s.topo.computeRoutes();

  net::FlowFactory::Options options;
  options.port = 5001;
  options.fidelity = net::FlowFidelity::kFluid;
  auto flow = net::flowFactory(s.ctx).create(a, b, tcp::TcpConfig::tunedDtn(), options);
  auto* raw = flow.get();
  flow->onEstablished = [raw] { raw->sendData(1_GB); };
  flow->start();
  s.simulator.runFor(2_s);

  std::ostringstream out;
  tracer.exportSpansJsonl(out, s.ctx.now());
  const std::string text = out.str();
  EXPECT_NE(text.find("\"fidelity\": \"fluid\""), std::string::npos);
  EXPECT_NE(text.find("\"name\": \"handshake\""), std::string::npos);
  EXPECT_NE(text.find("\"name\": \"cwnd_limited\""), std::string::npos);
}

TEST(FinishCell, RecordsSpansEmitted) {
  Scenario s;
  s.ctx.extension<telemetry::Tracer>().enable();
  auto& a = s.topo.addHost("a", net::Address(10, 0, 0, 1));
  auto& b = s.topo.addHost("b", net::Address(10, 0, 0, 2));
  net::LinkParams lp;
  lp.rate = 10_Gbps;
  lp.delay = 1_ms;
  s.topo.connect(a, b, lp);
  s.topo.computeRoutes();
  net::FlowFactory::Options options;
  options.port = 5001;
  auto flow = net::flowFactory(s.ctx).create(a, b, tcp::TcpConfig::tunedDtn(), options);
  flow->start();
  s.simulator.runFor(1_s);

  sim::SweepCell cell;
  finishCell(s, cell);
  EXPECT_EQ(cell.spansEmitted, s.ctx.extension<telemetry::Tracer>().spansEmitted());
  EXPECT_GE(cell.spansEmitted, 2u);
}

TEST(CriticalPathReport, LossRecoveryDominatesImpairedCellAndAttributionIsComplete) {
  const std::string jsonl = runImpairedCell();
  const std::string path = testing::TempDir() + "obs_report_spans.jsonl";
  {
    std::ofstream out(path);
    ASSERT_TRUE(out);
    out << jsonl;
  }

  std::ostringstream report;
  ASSERT_TRUE(printCriticalPathReport({path}, report));
  const std::string text = report.str();
  std::remove(path.c_str());

  // Parse the aggregate section: "    12.3%  phase_name ..." lines.
  std::map<std::string, double> percent;
  double attributed = 0.0;
  std::istringstream lines(text.substr(text.find("aggregate (all roots)")));
  for (std::string line; std::getline(lines, line);) {
    double value = 0.0;
    char name[32] = {};
    if (std::sscanf(line.c_str(), " %lf%%  %31s", &value, name) == 2) {
      if (std::string(name) == "attributed") {
        attributed = value;
      } else {
        percent[name] = value;
      }
    }
  }
  ASSERT_FALSE(percent.empty()) << text;
  // >= 95% of the transfer's duration lands in named phases.
  EXPECT_GE(attributed, 95.0) << text;
  // Loss recovery is the top phase on the impaired path.
  double top = 0.0;
  std::string topName;
  for (const auto& [name, value] : percent) {
    if (value > top) {
      top = value;
      topName = name;
    }
  }
  EXPECT_EQ(topName, "loss_recovery") << text;
}

TEST(TraceDeterminism, SpanExportsByteIdenticalAcrossWorkerCounts) {
  auto runCells = [](int workers) {
    sim::SweepRunner runner(workers);
    return runner.run<std::string>(
        4, [](sim::SweepCell&) { return runImpairedCell(); }, "trace_determinism");
  };
  const auto serial = runCells(1);
  const auto parallel = runCells(8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "cell " << i;
    EXPECT_FALSE(serial[i].empty());
  }
  // All cells run the same scenario: their traces must agree with each
  // other too (no cross-cell leakage through the process-wide extension id).
  EXPECT_EQ(serial[0], serial[3]);
}

}  // namespace
}  // namespace scidmz::scenario
