// Fluid-vs-packet validation harness: the same ScenarioSpec run at both
// fidelities over a reduced Figure 1 grid must agree on steady-state
// goodput (the fluid model IS the response function the packet simulation
// converges to), and fluid metrics must be byte-identical at any
// SCIDMZ_SWEEP_THREADS.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "net/flow.hpp"
#include "scenario/engine.hpp"
#include "scenario/spec.hpp"
#include "sim/sweep.hpp"
#include "sim/units.hpp"

namespace scidmz::scenario {
namespace {

using namespace scidmz::sim::literals;

struct GridPoint {
  int rttMs;
  double loss;
};

/// The reduced Figure 1 grid: the lossy half of the paper's sweep at two
/// RTTs (the loss-free row is covered by unit tests; at 1 ms RTT both
/// models just pin to the line rate, which tests nothing analytic).
const std::vector<GridPoint>& grid() {
  static const std::vector<GridPoint> points{
      {10, 1.0 / 22000.0}, {10, 2e-4}, {10, 1e-3},
      {50, 1.0 / 22000.0}, {50, 2e-4}, {50, 1e-3},
  };
  return points;
}

/// One fig1-style cell: a 10G jumbo-frame path at the given RTT/loss, one
/// steady Reno flow measured over the sawtooth-scaled window.
ScenarioSpec fig1Cell(const GridPoint& g, net::FlowFidelity fidelity, std::size_t index) {
  ScenarioSpec s;
  s.name = std::string("fluid_agreement#") + std::to_string(index);
  s.topology.kind = TopologyKind::kPath;
  auto& p = s.topology.path;
  p.link.rateMbps = 10000;
  p.link.delayUs = static_cast<std::uint64_t>(g.rttMs) * 500;
  p.link.mtuBytes = 9000;
  LossSpec l;
  l.rate = g.loss;
  p.losses.push_back(l);
  WorkloadSpec w;
  w.tcp.cc = CcAlgo::kReno;
  w.tcp.bufBytes = (256_MB).byteCount();
  w.fidelity = fidelity;
  const double windowSecs =
      std::clamp(8.2 * (static_cast<double>(g.rttMs) * 1e-3) / std::sqrt(g.loss), 15.0, 90.0);
  w.windowS = windowSecs;
  w.warmupS = std::clamp(windowSecs / 3.0, 5.0, 20.0);
  s.workloads.push_back(w);
  return s;
}

std::vector<ScenarioResult> runAll(const std::vector<ScenarioSpec>& specs, int workers) {
  sim::SweepRunner sweep{workers};
  return sweep.run<ScenarioResult>(
      specs.size(), [&specs](sim::SweepCell& cell) { return runSpec(specs[cell.index], cell); },
      "fluid_agreement");
}

TEST(FluidAgreement, TracksPacketFidelityOnFig1Grid) {
  std::vector<ScenarioSpec> specs;
  for (const auto& g : grid()) {
    specs.push_back(fig1Cell(g, net::FlowFidelity::kPacket, specs.size()));
    specs.push_back(fig1Cell(g, net::FlowFidelity::kFluid, specs.size()));
  }
  const auto results = runAll(specs, 4);

  double relErrorSum = 0.0;
  for (std::size_t i = 0; i < grid().size(); ++i) {
    const auto& packet = results[i * 2];
    const auto& fluid = results[i * 2 + 1];
    ASSERT_EQ(packet.at("w0.established"), 1.0) << "cell " << i;
    ASSERT_EQ(fluid.at("w0.established"), 1.0) << "cell " << i;
    const double packetBps = packet.at("w0.bps");
    const double fluidBps = fluid.at("w0.bps");
    ASSERT_GT(packetBps, 0.0) << "cell " << i;
    const double relError = std::abs(fluidBps - packetBps) / packetBps;
    relErrorSum += relError;
    // No single cell may be wildly off even if the mean happens to pass.
    EXPECT_LT(relError, 0.25)
        << "rtt " << grid()[i].rttMs << "ms loss " << grid()[i].loss << ": packet "
        << packetBps / 1e6 << " Mbps vs fluid " << fluidBps / 1e6 << " Mbps";
  }
  const double meanRelError = relErrorSum / static_cast<double>(grid().size());
  EXPECT_LE(meanRelError, 0.10) << "fluid model drifted from packet fidelity";
}

TEST(FluidAgreement, FluidMetricsByteIdenticalAtAnyWorkerCount) {
  std::vector<ScenarioSpec> specs;
  for (const auto& g : grid()) {
    specs.push_back(fig1Cell(g, net::FlowFidelity::kFluid, specs.size()));
  }
  const auto serial = runAll(specs, 1);
  const auto parallel = runAll(specs, 8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].metrics, parallel[i].metrics) << "cell " << i;
  }
}

TEST(FluidAgreement, MixedFidelityCellByteIdenticalAtAnyWorkerCount) {
  // The hybrid_fidelity_background shape: converging flows where the first
  // N senders are fluid and the last is per-packet, sharing one egress.
  ScenarioSpec s;
  s.name = "mixed_determinism";
  s.topology.kind = TopologyKind::kFanin;
  s.topology.fanin.senders = 9;
  s.topology.fanin.egressBufferBytes = sim::DataSize::mebibytes(32).byteCount();
  s.topology.fanin.egressLink = LinkSpec{10000, 5000, 9000};
  s.topology.fanin.senderLink = LinkSpec{10000, 20, 9000};
  WorkloadSpec w;
  w.kind = WorkloadKind::kConvergingFlows;
  w.tcp.cc = CcAlgo::kHtcp;
  w.tcp.bufBytes = (64_MB).byteCount();
  w.port = 6000;
  w.warmupS = 3.0;
  w.windowS = 6.0;
  w.fluidFlows = 8;
  s.workloads.push_back(w);
  const std::vector<ScenarioSpec> specs{s, s, s, s};

  const auto serial = runAll(specs, 1);
  const auto parallel = runAll(specs, 8);
  for (std::size_t i = 1; i < serial.size(); ++i) {
    EXPECT_EQ(serial[0].metrics, serial[i].metrics) << "serial cell " << i;
  }
  for (std::size_t i = 0; i < parallel.size(); ++i) {
    EXPECT_EQ(serial[0].metrics, parallel[i].metrics) << "parallel cell " << i;
  }
  EXPECT_GT(serial[0].at("w0.fluid_bits"), 0.0);
  EXPECT_GT(serial[0].at("w0.packet_bits"), 0.0);
}

}  // namespace
}  // namespace scidmz::scenario
