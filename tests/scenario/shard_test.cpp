// Cross-domain determinism suite for sharded execution. The bar: every
// compared artifact — result tables, merged telemetry snapshots, merged
// span exports — is byte-identical at --domains=1, 2 and 8, with and
// without tracing, because all cut-eligible links route through reserved-
// sequence channels at every domain count. Plus the scenario-layer
// boundary edge cases: zero-lookahead rejection, a flow whose path spans
// three domains, and a cross-domain link below the lookahead floor.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "net/flow.hpp"
#include "net/topology.hpp"
#include "scenario/esnet_scale.hpp"
#include "scenario/harness.hpp"
#include "scenario/observability.hpp"
#include "scenario/partition.hpp"
#include "scenario/shard.hpp"
#include "sim/sweep.hpp"
#include "sim/units.hpp"
#include "tcp/connection.hpp"
#include "telemetry/span.hpp"

namespace scidmz::scenario {
namespace {

using namespace scidmz::sim::literals;

EsnetScaleConfig smallRing() {
  EsnetScaleConfig cfg;
  cfg.sites = 8;
  cfg.hostsPerSite = 1;
  cfg.flowsPerHost = 1;
  cfg.runDuration = 120_ms;
  return cfg;
}

struct CellResult {
  EsnetScaleResult result;
  sim::SweepCellStats stats;
};

CellResult runRingAt(int domains) {
  EsnetScaleConfig cfg = smallRing();
  cfg.domains = domains;
  sim::SweepRunner sweep{1};
  auto results = sweep.run<EsnetScaleResult>(
      1, [&](sim::SweepCell& cell) { return runEsnetScale(cfg, cell); }, "shard_test");
  CellResult out;
  out.result = results.at(0);
  out.stats = sweep.lastRun().cells.at(0);
  return out;
}

TEST(ShardDeterminism, RingByteIdenticalAt1_2_8Domains) {
  const CellResult d1 = runRingAt(1);
  const CellResult d2 = runRingAt(2);
  const CellResult d8 = runRingAt(8);

  EXPECT_EQ(d1.result.deliveredBySite, d2.result.deliveredBySite);
  EXPECT_EQ(d1.result.deliveredBySite, d8.result.deliveredBySite);
  // With no per-domain samplers in play the event interleaving — and hence
  // the executed count — is identical at every partition.
  EXPECT_EQ(d1.stats.eventsExecuted, d2.stats.eventsExecuted);
  EXPECT_EQ(d1.stats.eventsExecuted, d8.stats.eventsExecuted);

  // Sharded cells report their partition: domains and a per-domain event
  // split that sums to the total.
  EXPECT_EQ(d2.stats.domains, 2u);
  EXPECT_EQ(d8.stats.domains, 8u);
  std::uint64_t sum = 0;
  for (const std::uint64_t e : d8.stats.domainEvents) sum += e;
  EXPECT_EQ(sum, d8.stats.eventsExecuted);
  EXPECT_EQ(d8.stats.domainEvents.size(), 8u);
}

TEST(ShardDeterminism, RingTelemetrySnapshotByteIdenticalAt1_2_8Domains) {
  // Telemetry on (env hook, read at Context construction): the merged
  // snapshot must be byte-identical at every partition.
  ::setenv("SCIDMZ_TELEMETRY", "1", 1);
  const CellResult d1 = runRingAt(1);
  const CellResult d2 = runRingAt(2);
  const CellResult d8 = runRingAt(8);
  ::unsetenv("SCIDMZ_TELEMETRY");

  EXPECT_EQ(d1.result.deliveredBySite, d2.result.deliveredBySite);
  EXPECT_EQ(d1.result.deliveredBySite, d8.result.deliveredBySite);
  EXPECT_FALSE(d1.stats.telemetryJson.empty());
  EXPECT_EQ(d1.stats.telemetryJson, d2.stats.telemetryJson);
  EXPECT_EQ(d1.stats.telemetryJson, d8.stats.telemetryJson);

  // Raw event counts are the one artifact telemetry perturbs: every extra
  // domain's hub runs its own sampler, adding exactly the same tick count
  // per domain. The compared artifacts above absorb this (counters are
  // summed by name); the count itself grows linearly.
  ASSERT_GE(d2.stats.eventsExecuted, d1.stats.eventsExecuted);
  const std::uint64_t perDomain = d2.stats.eventsExecuted - d1.stats.eventsExecuted;
  EXPECT_EQ(d8.stats.eventsExecuted - d1.stats.eventsExecuted, 7 * perDomain);
}

TEST(ShardDeterminism, TracedSpanExportByteIdenticalAt1_2_8Domains) {
  auto runTraced = [](int domains) {
    const std::string base =
        ::testing::TempDir() + "shard_test_trace_d" + std::to_string(domains);
    setTraceOutput(base);
    runRingAt(domains);
    telemetry::setProcessTracingEnabled(false);
    std::ifstream in(base + ".cell0.spans.jsonl", std::ios::binary);
    EXPECT_TRUE(in.good()) << "missing span export for domains=" << domains;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  };
  const std::string d1 = runTraced(1);
  const std::string d2 = runTraced(2);
  const std::string d8 = runTraced(8);
  setTraceOutput("");  // clear the base for any later test in this binary
  telemetry::setProcessTracingEnabled(false);

  EXPECT_FALSE(d1.empty());
  EXPECT_EQ(d1, d2);
  EXPECT_EQ(d1, d8);
  EXPECT_NE(d1.find("scidmz.spans.v1"), std::string::npos);
}

/// A five-device path a — r0 — r1 — r2 — b with 10 ms WAN hops, the flow
/// traversing every device. Hand-written plans let the test pin exact
/// domain assignments (3 domains vs all-in-one).
unsigned long long runThreeDomainPath(int domains) {
  Scenario s{20130101};
  ShardPlan plan;
  plan.domains = domains;
  plan.nodeDomain = {{"a", 0},
                     {"r0", 0},
                     {"r1", domains >= 2 ? 1 : 0},
                     {"r2", domains >= 3 ? 2 : 0},
                     {"b", domains >= 3 ? 2 : 0}};
  attachShards(s, plan, 20130101, 5_ms);

  auto& a = s.topo.addHost("a", net::Address(10, 0, 0, 1));
  auto& r0 = s.topo.addRouter("r0");
  auto& r1 = s.topo.addRouter("r1");
  auto& r2 = s.topo.addRouter("r2");
  auto& b = s.topo.addHost("b", net::Address(10, 0, 3, 1));
  net::LinkParams lan;
  lan.rate = sim::DataRate::gigabitsPerSecond(10);
  lan.delay = 10_us;
  lan.mtu = 9000_B;
  net::LinkParams wan;
  wan.rate = sim::DataRate::gigabitsPerSecond(100);
  wan.delay = 10_ms;
  wan.mtu = 9000_B;
  s.topo.connect(a, r0, lan);
  s.topo.connect(r0, r1, wan);
  s.topo.connect(r1, r2, wan);
  s.topo.connect(r2, b, wan);  // keep the host edge cut-eligible too
  s.topo.computeRoutes();

  tcp::TcpConfig tcp;
  tcp.algorithm = tcp::CcAlgorithm::kHtcp;
  tcp.sndBuf = sim::DataSize::mebibytes(32);
  tcp.rcvBuf = sim::DataSize::mebibytes(32);
  net::FlowFactory::Options options;
  options.port = 5001;
  options.fidelity = net::FlowFidelity::kPacket;
  auto flow = net::flowFactory(a.ctx()).create(a, b, tcp, options);
  auto* raw = flow.get();
  flow->onEstablished = [raw] { raw->sendData(sim::DataSize::terabytes(1)); };
  flow->start();
  s.runFor(400_ms);
  return static_cast<unsigned long long>(flow->deliveredBytes().byteCount());
}

TEST(ShardDeterminism, FlowSpanningThreeDomainsMatchesSingleDomain) {
  const unsigned long long one = runThreeDomainPath(1);
  const unsigned long long three = runThreeDomainPath(3);
  EXPECT_GT(one, 0u);
  EXPECT_EQ(one, three);
}

TEST(ShardEdgeCases, ZeroLookaheadIsRejected) {
  Scenario s{1};
  ShardPlan plan;
  plan.domains = 2;
  plan.nodeDomain = {{"a", 0}, {"b", 1}};
  EXPECT_THROW(attachShards(s, plan, 1, sim::Duration::zero()), std::invalid_argument);
}

TEST(ShardEdgeCases, CrossDomainLinkBelowFloorIsRejected) {
  Scenario s{1};
  ShardPlan plan;
  plan.domains = 2;
  plan.nodeDomain = {{"a", 0}, {"b", 1}};
  attachShards(s, plan, 1, 5_ms);
  auto& a = s.topo.addHost("a", net::Address(10, 0, 0, 1));
  auto& b = s.topo.addHost("b", net::Address(10, 0, 0, 2));
  net::LinkParams p;
  p.rate = sim::DataRate::gigabitsPerSecond(10);
  p.delay = 1_ms;  // below the 5 ms floor, yet a and b sit in different domains
  p.mtu = 9000_B;
  EXPECT_THROW(s.topo.connect(a, b, p), std::runtime_error);
}

}  // namespace
}  // namespace scidmz::scenario
