#include "scenario/spec.hpp"

#include <gtest/gtest.h>

#include <string>

#include "scenario/json.hpp"
#include "scenario/registry.hpp"

namespace scidmz::scenario {
namespace {

/// Every spec the catalog registers survives parse(serialize(parse(x)))
/// with byte-identical output — the property `scidmz_run --dump` and
/// ad-hoc `--spec` files rely on.
TEST(ScenarioSpec, CatalogRoundTripsByteIdentical) {
  std::size_t cells = 0;
  for (const auto& entry : ScenarioRegistry::builtin().entries()) {
    if (!entry.specs) continue;  // native entries have no spec form
    for (const auto& spec : entry.specs()) {
      const std::string once = spec.toJson().dump();
      const auto reparsed = ScenarioSpec::parse(once);
      EXPECT_EQ(reparsed.toJson().dump(), once) << entry.name << " / " << spec.name;
      ++cells;
    }
  }
  EXPECT_GT(cells, 100u);  // the catalog is not accidentally empty
}

TEST(ScenarioSpec, PrettyFormAlsoRoundTrips) {
  const auto specs = ScenarioRegistry::builtin().find("fig1_tcp_loss_rtt")->specs();
  ASSERT_FALSE(specs.empty());
  const std::string compact = specs[0].toJson().dump();
  EXPECT_EQ(ScenarioSpec::parse(specs[0].toJson().pretty()).toJson().dump(), compact);
}

TEST(ScenarioSpec, DefaultSpecRoundTrips) {
  ScenarioSpec spec;
  spec.name = "defaults";
  const std::string once = spec.toJson().dump();
  EXPECT_EQ(ScenarioSpec::parse(once).toJson().dump(), once);
}

TEST(ScenarioSpec, UnknownKeyErrorNamesTheKey) {
  ScenarioSpec spec;
  spec.name = "bad";
  Json doc = spec.toJson();
  doc["topology"]["path"]["link"].set("rateMbps", 100);
  try {
    ScenarioSpec::fromJson(doc);
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown key \"rateMbps\""), std::string::npos) << what;
    EXPECT_NE(what.find("topology.path.link"), std::string::npos) << what;
  }
}

TEST(ScenarioSpec, BadEnumErrorNamesValueAndKey) {
  ScenarioSpec spec;
  spec.name = "bad";
  WorkloadSpec w;
  spec.workloads.push_back(w);
  Json doc = spec.toJson();
  // Array elements are const through the public API; rebuild the workload
  // entry with the bad enum instead.
  Json bad = doc["workloads"].at(0);
  bad["tcp"].set("cc", "vegas");
  doc.set("workloads", Json::array());
  doc["workloads"].push(std::move(bad));
  try {
    ScenarioSpec::fromJson(doc);
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown value \"vegas\""), std::string::npos) << what;
    EXPECT_NE(what.find("cc"), std::string::npos) << what;
  }
}

TEST(ScenarioSpec, WrongSchemaIsRejected) {
  ScenarioSpec spec;
  spec.name = "bad";
  Json doc = spec.toJson();
  doc.set("schema", "scidmz.scenario.v0");
  try {
    ScenarioSpec::fromJson(doc);
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_NE(std::string(e.what()).find("scidmz.scenario.v0"), std::string::npos) << e.what();
  }
}

TEST(ScenarioSpec, MissingKeyErrorNamesTheKey) {
  EXPECT_THROW(ScenarioSpec::parse("{\"schema\":\"scidmz.scenario.v1\"}"), SpecError);
  try {
    ScenarioSpec::parse("{\"schema\":\"scidmz.scenario.v1\"}");
  } catch (const SpecError& e) {
    EXPECT_NE(std::string(e.what()).find("missing key \"name\""), std::string::npos) << e.what();
  }
}

// --- schema v2: per-workload fidelity --------------------------------------

TEST(ScenarioSpec, DefaultSpecStaysSchemaV1) {
  ScenarioSpec spec;
  spec.name = "defaults";
  WorkloadSpec w;
  spec.workloads.push_back(w);
  EXPECT_EQ(spec.toJson()["schema"].asString(), "scidmz.scenario.v1");
}

TEST(ScenarioSpec, FidelityRoundTripsAsSchemaV2) {
  ScenarioSpec spec;
  spec.name = "fluid";
  WorkloadSpec w;
  w.fidelity = net::FlowFidelity::kFluid;
  spec.workloads.push_back(w);
  Json doc = spec.toJson();
  EXPECT_EQ(doc["schema"].asString(), "scidmz.scenario.v2");
  const std::string once = doc.dump();
  const auto reparsed = ScenarioSpec::parse(once);
  EXPECT_EQ(reparsed.workloads.at(0).fidelity, net::FlowFidelity::kFluid);
  EXPECT_EQ(reparsed.toJson().dump(), once);
}

TEST(ScenarioSpec, FluidFlowsRoundTripsAsSchemaV2) {
  ScenarioSpec spec;
  spec.name = "mixed";
  spec.topology.kind = TopologyKind::kFanin;
  spec.topology.fanin.senders = 9;
  WorkloadSpec w;
  w.kind = WorkloadKind::kConvergingFlows;
  w.fluidFlows = 8;
  spec.workloads.push_back(w);
  Json doc = spec.toJson();
  EXPECT_EQ(doc["schema"].asString(), "scidmz.scenario.v2");
  const std::string once = doc.dump();
  const auto reparsed = ScenarioSpec::parse(once);
  EXPECT_EQ(reparsed.workloads.at(0).fluidFlows, 8);
  EXPECT_EQ(reparsed.toJson().dump(), once);
}

TEST(ScenarioSpec, V1DocumentRejectsFidelityKey) {
  ScenarioSpec spec;
  spec.name = "v1";
  WorkloadSpec w;
  w.fidelity = net::FlowFidelity::kFluid;
  spec.workloads.push_back(w);
  Json doc = spec.toJson();
  doc.set("schema", "scidmz.scenario.v1");  // claim v1 but keep the v2 key
  try {
    ScenarioSpec::fromJson(doc);
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_NE(std::string(e.what()).find("fidelity"), std::string::npos) << e.what();
  }
}

TEST(ScenarioSpec, BadFidelityValueIsRejected) {
  ScenarioSpec spec;
  spec.name = "bad";
  WorkloadSpec w;
  w.fidelity = net::FlowFidelity::kFluid;
  spec.workloads.push_back(w);
  Json doc = spec.toJson();
  Json bad = doc["workloads"].at(0);
  bad.set("fidelity", "plasma");
  doc.set("workloads", Json::array());
  doc["workloads"].push(std::move(bad));
  try {
    ScenarioSpec::fromJson(doc);
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_NE(std::string(e.what()).find("plasma"), std::string::npos) << e.what();
  }
}

// --- the JSON layer under the spec ----------------------------------------

TEST(Json, ParseRejectsTrailingGarbage) {
  EXPECT_THROW(Json::parse("{} x"), JsonError);
  EXPECT_THROW(Json::parse(""), JsonError);
}

TEST(Json, ErrorsCarryLineAndColumn) {
  try {
    Json::parse("{\n  \"a\": nope\n}");
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos) << e.what();
  }
}

TEST(Json, DumpIsDeterministicAndOrdered) {
  Json obj = Json::object();
  obj.set("z", 1);
  obj.set("a", 2.5);
  obj.set("m", "text");
  EXPECT_EQ(obj.dump(), "{\"z\":1,\"a\":2.5,\"m\":\"text\"}");  // insertion order kept
  EXPECT_EQ(Json::parse(obj.dump()).dump(), obj.dump());
}

TEST(Json, StringEscapesRoundTrip) {
  Json obj = Json::object();
  obj.set("s", std::string("tab\t quote\" back\\ nl\n"));
  EXPECT_EQ(Json::parse(obj.dump()).dump(), obj.dump());
  EXPECT_EQ(Json::parse(obj.dump())["s"].asString(), "tab\t quote\" back\\ nl\n");
}

}  // namespace
}  // namespace scidmz::scenario
