#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace scidmz::sim {
namespace {

using namespace scidmz::sim::literals;

TEST(Simulator, ClockAdvancesWithEvents) {
  Simulator sim;
  SimTime seen;
  sim.schedule(10_ms, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, SimTime::zero() + 10_ms);
  EXPECT_EQ(sim.now(), SimTime::zero() + 10_ms);
  EXPECT_EQ(sim.eventsExecuted(), 1u);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  std::vector<std::int64_t> firings;
  std::function<void()> tick = [&] {
    firings.push_back(sim.now().ns());
    if (firings.size() < 5) sim.schedule(1_ms, tick);
  };
  sim.schedule(1_ms, tick);
  sim.run();
  ASSERT_EQ(firings.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(firings[i], static_cast<std::int64_t>(i + 1) * 1'000'000);
  }
}

TEST(Simulator, RunUntilStopsAtDeadlineWithPendingWork) {
  Simulator sim;
  bool late = false;
  sim.schedule(100_ms, [&] { late = true; });
  sim.runUntil(SimTime::zero() + 50_ms);
  EXPECT_FALSE(late);
  EXPECT_EQ(sim.now(), SimTime::zero() + 50_ms);
  EXPECT_TRUE(sim.pendingEvents());
  sim.run();
  EXPECT_TRUE(late);
}

TEST(Simulator, RunForIsRelative) {
  Simulator sim;
  int count = 0;
  sim.schedule(10_ms, [&] { ++count; });
  sim.schedule(30_ms, [&] { ++count; });
  sim.runFor(20_ms);
  EXPECT_EQ(count, 1);
  sim.runFor(20_ms);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.now(), SimTime::zero() + 40_ms);
}

TEST(Simulator, RunUntilAdvancesClockToDeadlineEvenWhenIdle) {
  Simulator sim;
  sim.runUntil(SimTime::zero() + 5_s);
  EXPECT_EQ(sim.now(), SimTime::zero() + 5_s);
}

TEST(Simulator, StopHaltsRun) {
  Simulator sim;
  int fired = 0;
  sim.schedule(1_ms, [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule(2_ms, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.pendingEvents());
}

TEST(Simulator, NegativeDelayClampsToNow) {
  Simulator sim;
  SimTime when;
  sim.schedule(5_ms, [&] {
    sim.schedule(Duration::milliseconds(-3), [&] { when = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(when, SimTime::zero() + 5_ms);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule(1_ms, [&] { fired = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, RunTerminatesWhenOnlyDaemonsRemain) {
  Simulator sim;
  int daemonFired = 0;
  int workFired = 0;
  std::function<void()> rearm = [&] {
    ++daemonFired;
    sim.scheduleDaemon(10_ms, rearm);
  };
  sim.scheduleDaemon(10_ms, rearm);
  sim.schedule(25_ms, [&] { ++workFired; });
  sim.run();  // must not spin on the self-rearming daemon forever
  EXPECT_EQ(workFired, 1);
  EXPECT_EQ(daemonFired, 2);  // 10ms and 20ms, interleaved with real work
  EXPECT_EQ(sim.now(), SimTime::zero() + 25_ms);
  EXPECT_EQ(sim.pendingDaemonCount(), 1u);
}

TEST(Simulator, RunForFiresDaemonsThroughTheWindow) {
  Simulator sim;
  int daemonFired = 0;
  std::function<void()> rearm = [&] {
    ++daemonFired;
    sim.scheduleDaemon(10_ms, rearm);
  };
  sim.scheduleDaemon(10_ms, rearm);
  sim.runFor(35_ms);  // finite deadline: daemons tick at 10, 20, 30
  EXPECT_EQ(daemonFired, 3);
  EXPECT_EQ(sim.now(), SimTime::zero() + 35_ms);
}

TEST(Simulator, RunAloneNeverFiresALoneDaemon) {
  Simulator sim;
  bool fired = false;
  sim.scheduleDaemon(5_ms, [&] { fired = true; });
  EXPECT_EQ(sim.pendingDaemonCount(), 1u);
  sim.run();  // nothing but the daemon: exits immediately, clock untouched
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.now(), SimTime::zero());
}

TEST(Simulator, DaemonCountReturnsToZeroWhenNotRearmed) {
  Simulator sim;
  sim.scheduleDaemon(5_ms, [] {});
  EXPECT_EQ(sim.pendingDaemonCount(), 1u);
  sim.runFor(10_ms);  // finite window fires it
  EXPECT_EQ(sim.pendingDaemonCount(), 0u);
  EXPECT_EQ(sim.now(), SimTime::zero() + 10_ms);
}

}  // namespace
}  // namespace scidmz::sim
