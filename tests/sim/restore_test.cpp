// Restore-side event queue/simulator behavior: re-arming pending events
// under their snapshotted (time, sequence) keys reproduces pop order
// byte-identically, regardless of re-arm call order or heap-vs-wheel
// placement.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace scidmz::sim {
namespace {

using namespace scidmz::sim;

TEST(Restore, EventKeyReportsPendingKeysAndRejectsStale) {
  EventQueue q;
  const EventId near = q.schedule(SimTime::fromNs(100), [] {});        // heap
  const EventId far = q.schedule(SimTime::fromNs(50'000'000), [] {});  // wheel
  ASSERT_GT(q.parkedCount(), 0u);

  const EventKey nearKey = q.eventKey(near);
  ASSERT_TRUE(nearKey.valid);
  EXPECT_EQ(nearKey.at.ns(), 100);
  EXPECT_EQ(nearKey.seq, 1u);

  const EventKey farKey = q.eventKey(far);
  ASSERT_TRUE(farKey.valid);
  EXPECT_EQ(farKey.at.ns(), 50'000'000);
  EXPECT_EQ(farKey.seq, 2u);

  q.cancel(far);
  EXPECT_FALSE(q.eventKey(far).valid);
  (void)q.pop();
  EXPECT_FALSE(q.eventKey(near).valid);
  EXPECT_FALSE(q.eventKey(EventId{}).valid);
}

TEST(Restore, ReArmedQueuePopsInOriginalOrderRegardlessOfReArmOrder) {
  // Original run: a mix of near-now (heap) and periodic far (wheel) events,
  // including exact time ties decided by sequence.
  EventQueue original;
  struct Scheduled {
    std::int64_t at;
    std::uint64_t seq;
    int tag;
  };
  std::vector<Scheduled> pending;
  Rng rng(7);
  int tag = 0;
  for (int i = 0; i < 200; ++i) {
    const std::int64_t at = static_cast<std::int64_t>(rng.below(40)) * 1'000'000;
    const int t = tag++;
    const EventId id = original.schedule(SimTime::fromNs(at), [] {});
    const EventKey key = original.eventKey(id);
    ASSERT_TRUE(key.valid);
    pending.push_back({key.at.ns(), key.seq, t});
  }
  std::vector<int> originalOrder;
  while (!original.empty()) {
    const auto at = original.nextTime();
    (void)original.pop();
    // Identify by (at, seq): reconstruct the tag from the pending list.
    (void)at;
  }
  // Pop order is defined by (at, seq); compute it directly from the keys.
  std::vector<Scheduled> sorted = pending;
  std::sort(sorted.begin(), sorted.end(), [](const Scheduled& a, const Scheduled& b) {
    return a.at != b.at ? a.at < b.at : a.seq < b.seq;
  });

  // Restored run: re-arm in a shuffled order under the original keys.
  EventQueue restored;
  restored.beginRestore(SimTime::zero(), 200);
  std::vector<Scheduled> shuffled = pending;
  Rng shuffleRng(99);
  for (std::size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[shuffleRng.below(i)]);
  }
  std::vector<int> restoredOrder;
  restoredOrder.reserve(shuffled.size());
  for (const Scheduled& s : shuffled) {
    const int t = s.tag;
    (void)restored.restoreSchedule(SimTime::fromNs(s.at), s.seq,
                                   [&restoredOrder, t] { restoredOrder.push_back(t); });
  }
  while (!restored.empty()) {
    auto popped = restored.pop();
    popped.cb();
  }

  ASSERT_EQ(restoredOrder.size(), sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    EXPECT_EQ(restoredOrder[i], sorted[i].tag) << "position " << i;
  }
}

TEST(Restore, SequenceCounterContinuesFromSnapshot) {
  EventQueue q;
  q.beginRestore(SimTime::fromNs(500), 42);
  EXPECT_EQ(q.scheduledTotal(), 42u);
  const EventId id = q.schedule(SimTime::fromNs(600), [] {});
  const EventKey key = q.eventKey(id);
  ASSERT_TRUE(key.valid);
  EXPECT_EQ(key.seq, 43u);  // continues the snapshotted numbering
}

TEST(Restore, SimulatorBeginRestoreResetsClockAndDropsEvents) {
  Simulator sim;
  int fired = 0;
  sim.schedule(Duration::milliseconds(1), [&] { ++fired; });
  sim.scheduleDaemon(Duration::milliseconds(2), [&] { ++fired; });
  sim.runFor(Duration::milliseconds(5));
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.eventsExecuted(), 2u);

  sim.beginRestore(SimTime::fromNs(1'000'000), 1, 1);
  EXPECT_EQ(sim.now().ns(), 1'000'000);
  EXPECT_EQ(sim.eventsExecuted(), 1u);
  EXPECT_EQ(sim.scheduledTotal(), 1u);
  EXPECT_EQ(sim.pendingEventCount(), 0u);
  EXPECT_EQ(sim.pendingDaemonCount(), 0u);
}

TEST(Restore, RestoredDaemonDoesNotKeepRunAlive) {
  // Original: one daemon tick far out plus one real event. Restore both and
  // check run() still terminates once only the daemon remains — i.e. the
  // restoreScheduleDaemon wrapper reproduces daemon accounting.
  Simulator sim;
  sim.beginRestore(SimTime::fromNs(10'000), 5, 7);
  int daemonFired = 0;
  int eventFired = 0;
  (void)sim.restoreScheduleDaemon(SimTime::fromNs(20'000), 8, [&] { ++daemonFired; });
  (void)sim.restoreSchedule(SimTime::fromNs(15'000), 9, [&] { ++eventFired; });
  EXPECT_EQ(sim.pendingDaemonCount(), 1u);
  sim.run();  // infinite deadline: daemons alone must not keep this alive
  EXPECT_EQ(eventFired, 1);
  EXPECT_EQ(daemonFired, 0);
  EXPECT_EQ(sim.now().ns(), 15'000);
}

TEST(Restore, RestoredRunMatchesUninterruptedFiringTimes) {
  // Uninterrupted: events at 1ms cadence re-scheduling themselves.
  auto drive = [](Simulator& sim, std::vector<std::int64_t>& times, int remaining) {
    struct Ticker {
      static void arm(Simulator& s, std::vector<std::int64_t>& t, int n) {
        if (n == 0) return;
        s.schedule(Duration::milliseconds(1), [&s, &t, n] {
          t.push_back(s.now().ns());
          arm(s, t, n - 1);
        });
      }
    };
    Ticker::arm(sim, times, remaining);
    sim.run();
  };

  std::vector<std::int64_t> uninterrupted;
  {
    Simulator sim;
    drive(sim, uninterrupted, 10);
  }

  // Interrupted at t=0 with one pending event (the first tick, seq 1):
  // restore into a fresh simulator and finish.
  std::vector<std::int64_t> restored;
  {
    Simulator sim;
    sim.beginRestore(SimTime::zero(), 0, 1);
    struct Ticker {
      static void arm(Simulator& s, std::vector<std::int64_t>& t, int n) {
        if (n == 0) return;
        s.schedule(Duration::milliseconds(1), [&s, &t, n] {
          t.push_back(s.now().ns());
          arm(s, t, n - 1);
        });
      }
    };
    (void)sim.restoreSchedule(SimTime::fromNs(1'000'000), 1, [&sim, &restored] {
      restored.push_back(sim.now().ns());
      Ticker::arm(sim, restored, 9);
    });
    sim.run();
  }
  EXPECT_EQ(restored, uninterrupted);
}

}  // namespace
}  // namespace scidmz::sim
