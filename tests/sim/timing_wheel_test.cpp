// Wheel/heap boundary behavior: the timing wheel is a staging structure in
// front of the event queue's heap, and these tests pin the edges where an
// entry crosses between the two — same-tick ordering across a bucket
// cascade, cancel/reschedule slot reuse for parked entries, daemon events
// at an exact runUntil() deadline, and SimTime::max() sentinels that must
// bypass the wheel entirely.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "sim/timing_wheel.hpp"
#include "sim/units.hpp"

namespace {

using scidmz::sim::Duration;
using scidmz::sim::EventId;
using scidmz::sim::EventQueue;
using scidmz::sim::SimTime;
using scidmz::sim::Simulator;
using scidmz::sim::TimingWheel;

SimTime at(std::int64_t ns) { return SimTime::fromNs(ns); }

struct WheelEntry {
  SimTime at;
  int tag = 0;
};

using Wheel = TimingWheel<WheelEntry>;

TEST(TimingWheel, RejectsNearNowAndBeyondHorizon) {
  Wheel w;
  // Due / near-now: must stay in the heap so the current bucket never holds
  // a future entry.
  EXPECT_FALSE(w.park({at(0), 1}));
  EXPECT_FALSE(w.park({at(Wheel::kMinParkAheadNs - 1), 2}));
  // Beyond the ~2^42 ns span: heap overflow path.
  EXPECT_FALSE(w.park({SimTime::max(), 3}));
  EXPECT_TRUE(w.empty());
  // Mid-range parks, and the horizon lower-bounds the parked entry.
  EXPECT_TRUE(w.park({at(50'000), 4}));
  EXPECT_EQ(w.size(), 1u);
  EXPECT_LE(w.horizonStartNs(), 50'000);
}

TEST(TimingWheel, CascadePreservesEntriesAcrossLevels) {
  Wheel w;
  // One entry per level: level 0 (~50 us), level 1 (~1 ms), level 2
  // (~100 ms), level 3 (~30 s). Each must come back out unchanged no
  // matter how many redistributions it rides through.
  const std::int64_t times[] = {50'000, 1'000'000, 100'000'000, 30'000'000'000};
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(w.park({at(times[i]), i}));
  std::vector<std::int64_t> due;
  while (!w.empty()) {
    w.cascadeEarliest([&](const WheelEntry& e) { due.push_back(e.at.ns()); });
  }
  ASSERT_EQ(due.size(), 4u);
  // cascadeEarliest drains earliest-bucket-first, so times come out sorted.
  for (int i = 0; i < 4; ++i) EXPECT_EQ(due[static_cast<std::size_t>(i)], times[i]);
}

// An unaligned base must not let a delta just under a level's span wrap
// into the bucket congruent with the base's own index: that bucket's start
// would resolve *behind* the base and a cascade would regress it. park()
// promotes such entries a level (or rejects at the top level), so the
// horizon never dips below the base and the base is monotone.
TEST(TimingWheel, UnalignedBaseFullRevolutionPromotesInsteadOfWrapping) {
  Wheel w;
  w.advanceBase(1'000);  // not a multiple of any bucket width
  // (262'144 >> 10) == (1'000 >> 10) + 256: a full level-0 revolution
  // ahead even though the delta is under level 0's span.
  EXPECT_TRUE(w.park({at(262'144), 1}));
  EXPECT_GE(w.horizonStartNs(), w.baseNs());
  // The same wrap at the top level has nowhere to promote to: heap.
  EXPECT_FALSE(w.park({at(std::int64_t{1} << 42), 2}));

  std::vector<std::int64_t> due;
  std::int64_t prev_base = w.baseNs();
  while (!w.empty()) {
    w.cascadeEarliest([&](const WheelEntry& e) { due.push_back(e.at.ns()); });
    EXPECT_GE(w.baseNs(), prev_base);  // base never regresses
    prev_base = w.baseNs();
  }
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0], 262'144);
}

TEST(TimingWheel, AdvanceBaseOnlyMovesAnEmptyWheel) {
  Wheel w;
  w.advanceBase(1'000'000);
  EXPECT_EQ(w.baseNs(), 1'000'000);
  EXPECT_TRUE(w.park({at(2'000'000), 1}));
  w.advanceBase(5'000'000);  // non-empty: must not jump past a parked entry
  EXPECT_EQ(w.baseNs(), 1'000'000);
  // Near-now relative to the advanced base is rejected even though the
  // absolute time is large.
  EXPECT_FALSE(w.park({at(1'000'000 + Wheel::kMinParkAheadNs - 1), 2}));
}

// --- EventQueue integration: the satellite edge cases -----------------------

// Events at the exact same tick must pop in schedule order even when some
// parked in a wheel bucket and others went straight to the heap (scheduled
// after the base had advanced to within kMinParkAheadNs of the tick).
TEST(EventQueueWheel, SameTickOrderingAcrossCascadeBoundary) {
  EventQueue q;
  std::vector<int> fired;
  const auto rec = [&fired](int i) { return [&fired, i] { fired.push_back(i); }; };

  const std::int64_t tick = 1'000'000;
  // Far ahead of base 0: these park.
  for (int i = 0; i < 8; ++i) q.schedule(at(tick), rec(i));
  EXPECT_GT(q.parkedCount(), 0u);
  // An earlier event one bucket before the tick; popping it advances the
  // wheel base to within kMinParkAheadNs of `tick`.
  q.schedule(at(tick - 1'500), rec(-1));
  auto early = q.pop();
  early.cb();
  // Now the same tick is near-now: these go to the heap.
  const std::size_t parked_before = q.parkedCount();
  for (int i = 8; i < 16; ++i) q.schedule(at(tick), rec(i));
  EXPECT_EQ(q.parkedCount(), parked_before);

  while (!q.empty()) {
    auto ev = q.pop();
    EXPECT_EQ(ev.at, at(tick));
    ev.cb();
  }
  ASSERT_EQ(fired.size(), 17u);
  EXPECT_EQ(fired.front(), -1);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(fired[static_cast<std::size_t>(i) + 1], i);
}

// Regression for the exact-tie cascade rule: when the tick is *bucket
// aligned* (here 2^20 ns, a level-1 bucket start), parked entries have
// at == bucket start, so heap_min == horizonStartNs() exactly. ensureFront()
// must treat that tie as "cascade", not "heap front wins": the bucket holds
// the earlier-scheduled (smaller-seq) half of the tick, and only pushing it
// into the heap lets the (time, seq) tie-break order the two halves.
TEST(EventQueueWheel, SameTickOrderingAtBucketAlignedBoundary) {
  EventQueue q;
  std::vector<int> fired;
  const auto rec = [&fired](int i) { return [&fired, i] { fired.push_back(i); }; };

  const std::int64_t tick = 1'048'576;  // 2^20: a bucket start at levels 0 and 1
  // Far ahead of base 0: these park, with at exactly equal to the bucket start.
  for (int i = 0; i < 4; ++i) q.schedule(at(tick), rec(i));
  EXPECT_GT(q.parkedCount(), 0u);
  // Popping an earlier event advances the wheel base to within
  // kMinParkAheadNs of the tick.
  q.schedule(at(tick - 1'500), rec(-1));
  auto early = q.pop();
  early.cb();
  // The same tick is now near-now: these go straight to the heap with
  // larger sequence numbers.
  const std::size_t parked_before = q.parkedCount();
  for (int i = 4; i < 8; ++i) q.schedule(at(tick), rec(i));
  EXPECT_EQ(q.parkedCount(), parked_before);

  while (!q.empty()) {
    auto ev = q.pop();
    EXPECT_EQ(ev.at, at(tick));
    ev.cb();
  }
  ASSERT_EQ(fired.size(), 9u);
  EXPECT_EQ(fired.front(), -1);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(fired[static_cast<std::size_t>(i) + 1], i);
}

// Cancelling a parked event and rescheduling must not let the stale handle
// reach whoever reuses the slot, and the tombstone must be reclaimed when
// its bucket cascades.
TEST(EventQueueWheel, CancelThenRescheduleParkedEntry) {
  EventQueue q;
  int fired = 0;
  const EventId stale = q.schedule(at(500'000), [&fired] { fired += 100; });
  EXPECT_EQ(q.parkedCount(), 1u);
  q.cancel(stale);
  EXPECT_EQ(q.tombstoneCount(), 1u);

  const EventId live = q.schedule(at(600'000), [&fired] { fired += 1; });
  q.cancel(stale);  // stale: no-op, must not hit the new event
  EXPECT_TRUE(live.valid());

  while (!q.empty()) q.pop().cb();
  EXPECT_EQ(fired, 1);
  // The cancelled entry was reclaimed when its bucket cascaded.
  EXPECT_EQ(q.tombstoneCount(), 0u);
  EXPECT_EQ(q.parkedCount(), 0u);
}

// Daemon events due exactly at the runUntil() deadline fire, and the
// daemon accounting survives the trip through a wheel bucket.
TEST(EventQueueWheel, DaemonAtExactRunUntilDeadline) {
  Simulator sim;
  int fired = 0;
  sim.scheduleDaemon(Duration::microseconds(50), [&fired] { ++fired; });
  EXPECT_EQ(sim.pendingDaemonCount(), 1u);
  sim.runUntil(at(50'000));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), at(50'000));
  EXPECT_EQ(sim.pendingDaemonCount(), 0u);

  // A daemon beyond the deadline stays pending and does not advance time
  // past the deadline.
  sim.scheduleDaemon(Duration::seconds(1), [&fired] { ++fired; });
  sim.runFor(Duration::microseconds(10));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pendingDaemonCount(), 1u);
  // run() with only daemons pending returns immediately.
  sim.run();
  EXPECT_EQ(fired, 1);
}

// SimTime::max() sentinels bypass the wheel (they are beyond any horizon)
// and sort after every real event; nextTime() on an empty queue is the same
// sentinel and must not be confused with a scheduled max-time event.
TEST(EventQueueWheel, MaxTimeSentinelsStayInHeap) {
  EventQueue q;
  EXPECT_EQ(q.nextTime(), SimTime::max());

  std::vector<int> fired;
  q.schedule(SimTime::max(), [&fired] { fired.push_back(2); });
  EXPECT_EQ(q.parkedCount(), 0u);  // beyond horizon: heap, not wheel
  EXPECT_EQ(q.nextTime(), SimTime::max());
  EXPECT_FALSE(q.empty());

  q.schedule(at(10'000'000), [&fired] { fired.push_back(1); });
  EXPECT_EQ(q.nextTime(), at(10'000'000));
  while (!q.empty()) q.pop().cb();
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0], 1);
  EXPECT_EQ(fired[1], 2);

  // Cancelling a max-sentinel works like any other handle.
  const EventId id = q.schedule(SimTime::max(), [] {});
  q.cancel(id);
  EXPECT_TRUE(q.empty());
}

// Satellite regression test: cancelling a dense periodic schedule whose
// events are parked in wheel buckets must reclaim the tombstones via
// compact() — they count toward the tombstones_ > live_ trigger even though
// none of them ever surfaces at the heap front.
TEST(EventQueueWheel, CompactReclaimsCancelledParkedSchedule) {
  EventQueue q;
  std::vector<EventId> ids;
  // A dense periodic schedule, all far enough out to park.
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(q.schedule(at(100'000 + i * 10'000), [] {}));
  }
  EXPECT_EQ(q.parkedCount(), 1000u);

  for (const EventId id : ids) q.cancel(id);
  EXPECT_TRUE(q.empty());
  // The tombstones_ > live_ trigger fired during the cancel loop; at most
  // one sub-threshold batch (<= 64 entries) may still be parked.
  EXPECT_LE(q.tombstoneCount(), 64u);
  EXPECT_LE(q.parkedCount(), 64u);
  EXPECT_EQ(q.parkedCount(), q.tombstoneCount());

  // The queue is fully usable afterwards and the leftovers are reclaimed
  // as their buckets cascade.
  int fired = 0;
  q.schedule(at(20'000'000), [&fired] { ++fired; });
  while (!q.empty()) q.pop().cb();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.tombstoneCount(), 0u);
  EXPECT_EQ(q.parkedCount(), 0u);
}

}  // namespace
