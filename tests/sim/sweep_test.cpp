#include "sim/sweep.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/units.hpp"

namespace scidmz::sim {
namespace {

// A miniature scenario cell: its own Simulator and forked Rng, a few
// thousand events with random timestamps, and a result that folds every
// fired (time, draw) pair into one hash. Any cross-cell interference or
// ordering change shows up as a different hash.
struct CellResult {
  std::uint64_t hash = 0;
  std::uint64_t events = 0;
};

CellResult runScenarioCell(std::size_t index, SweepCell& cell) {
  Simulator simulator;
  Rng rng = Rng{20130101}.fork(index);
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (int i = 0; i < 2000; ++i) {
    const auto when = Duration::microseconds(static_cast<std::int64_t>(rng.below(50000)));
    simulator.schedule(when, [&hash, &simulator] {
      hash = (hash ^ static_cast<std::uint64_t>(simulator.now().ns())) * 0x100000001b3ull;
    });
  }
  simulator.run();
  cell.eventsExecuted = simulator.eventsExecuted();
  return CellResult{hash, simulator.eventsExecuted()};
}

TEST(Sweep, ResultsLandInSubmissionOrder) {
  SweepRunner sweep{4};
  // Cells deliberately finish out of order (later cells are cheaper).
  const auto results = sweep.run<std::size_t>(16, [](SweepCell& cell) {
    if (cell.index < 4) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return cell.index * 10;
  });
  ASSERT_EQ(results.size(), 16u);
  for (std::size_t i = 0; i < results.size(); ++i) EXPECT_EQ(results[i], i * 10);
}

// The determinism contract: per-cell results are bit-identical no matter
// how many workers execute the sweep.
TEST(Sweep, OneWorkerAndManyWorkersProduceIdenticalResults) {
  const std::size_t cells = 24;
  const auto body = [](SweepCell& cell) { return runScenarioCell(cell.index, cell); };

  SweepRunner serial{1};
  const auto reference = serial.run<CellResult>(cells, body, "serial");

  SweepRunner parallel{8};
  const auto measured = parallel.run<CellResult>(cells, body, "parallel");

  ASSERT_EQ(reference.size(), measured.size());
  for (std::size_t i = 0; i < cells; ++i) {
    EXPECT_EQ(reference[i].hash, measured[i].hash) << "cell " << i;
    EXPECT_EQ(reference[i].events, measured[i].events) << "cell " << i;
  }
}

TEST(Sweep, AllCellsExecuteExactlyOnce) {
  SweepRunner sweep{3};
  std::vector<std::atomic<int>> counts(50);
  sweep.run<int>(counts.size(), [&counts](SweepCell& cell) {
    counts[cell.index].fetch_add(1);
    return 0;
  });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(Sweep, ExceptionInCellPropagatesToCaller) {
  SweepRunner sweep{4};
  EXPECT_THROW(sweep.run<int>(8,
                              [](SweepCell& cell) {
                                if (cell.index == 5) throw std::runtime_error("cell 5 broke");
                                return static_cast<int>(cell.index);
                              }),
               std::runtime_error);
  // The pool survives a throwing batch and accepts new work.
  const auto ok = sweep.run<int>(4, [](SweepCell& cell) { return static_cast<int>(cell.index); });
  EXPECT_EQ(ok, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Sweep, LowestIndexExceptionWins) {
  SweepRunner sweep{4};
  try {
    sweep.run<int>(8, [](SweepCell& cell) -> int {
      if (cell.index == 2 || cell.index == 6) {
        throw std::runtime_error("cell " + std::to_string(cell.index));
      }
      return 0;
    });
    FAIL() << "expected a throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "cell 2");
  }
}

TEST(Sweep, StatsTrackCellsAndEvents) {
  SweepRunner sweep{2};
  sweep.run<CellResult>(6, [](SweepCell& cell) { return runScenarioCell(cell.index, cell); },
                        "stats");
  const SweepRunStats& run = sweep.lastRun();
  EXPECT_EQ(run.name, "stats");
  EXPECT_EQ(run.workers, 2);
  ASSERT_EQ(run.cells.size(), 6u);
  EXPECT_EQ(run.totalEvents(), 6u * 2000u);
  for (const auto& c : run.cells) {
    EXPECT_EQ(c.eventsExecuted, 2000u);
    EXPECT_GE(c.wallSeconds, 0.0);
  }
}

TEST(Sweep, EmptySweepIsANoOp) {
  SweepRunner sweep{2};
  const auto results = sweep.run<int>(0, [](SweepCell&) { return 1; });
  EXPECT_TRUE(results.empty());
  EXPECT_EQ(sweep.lastRun().cells.size(), 0u);
}

TEST(Sweep, WriteJsonProducesASummary) {
  SweepRunner sweep{2};
  sweep.run<CellResult>(3, [](SweepCell& cell) { return runScenarioCell(cell.index, cell); },
                        "json");
  const std::string path = testing::TempDir() + "sweep_test_bench.json";
  ASSERT_TRUE(sweep.writeJson("sweep_test", path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string content((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("\"benchmark\": \"sweep_test\""), std::string::npos);
  EXPECT_NE(content.find("\"cells\": 3"), std::string::npos);
  EXPECT_NE(content.find("\"events_executed\": 6000"), std::string::npos);
}

TEST(Sweep, DefaultWorkersHonoursEnvOverride) {
  ::setenv("SCIDMZ_SWEEP_THREADS", "3", 1);
  EXPECT_EQ(SweepRunner::defaultWorkers(), 3);
  ::setenv("SCIDMZ_SWEEP_THREADS", "not-a-number", 1);
  EXPECT_GE(SweepRunner::defaultWorkers(), 1);
  ::unsetenv("SCIDMZ_SWEEP_THREADS");
  EXPECT_GE(SweepRunner::defaultWorkers(), 1);
}

}  // namespace
}  // namespace scidmz::sim
