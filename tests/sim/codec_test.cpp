#include "sim/codec.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace scidmz::sim {
namespace {

TEST(Codec, BitsRoundTripAtArbitraryOffsets) {
  BitWriter w;
  w.writeBits(0b1, 1);
  w.writeBits(0b101, 3);
  w.writeBits(0xABCD, 16);
  w.writeBits(0x0123456789ABCDEFull, 64);
  w.writeBits(0x3F, 6);

  BitReader r(w.bytes().data(), w.byteSize());
  EXPECT_EQ(r.readBits(1), 0b1u);
  EXPECT_EQ(r.readBits(3), 0b101u);
  EXPECT_EQ(r.readBits(16), 0xABCDu);
  EXPECT_EQ(r.readBits(64), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.readBits(6), 0x3Fu);
  EXPECT_TRUE(r.ok());
}

TEST(Codec, BoolCostsOneBit) {
  BitWriter w;
  for (int i = 0; i < 8; ++i) w.writeBool(i % 2 == 0);
  EXPECT_EQ(w.byteSize(), 1u);
  BitReader r(w.bytes().data(), w.byteSize());
  for (int i = 0; i < 8; ++i) EXPECT_EQ(r.readBool(), i % 2 == 0);
}

TEST(Codec, VarintRoundTripsBoundaries) {
  const std::uint64_t values[] = {0,
                                  1,
                                  0x7F,
                                  0x80,
                                  0x3FFF,
                                  0x4000,
                                  1234567890123ull,
                                  std::numeric_limits<std::uint64_t>::max()};
  BitWriter w;
  for (const auto v : values) w.writeVarint(v);
  BitReader r(w.bytes().data(), w.byteSize());
  for (const auto v : values) EXPECT_EQ(r.readVarint(), v);
  EXPECT_TRUE(r.ok());
}

TEST(Codec, ZigzagRoundTripsSigned) {
  const std::int64_t values[] = {0, -1, 1, -64, 64, std::numeric_limits<std::int64_t>::min(),
                                 std::numeric_limits<std::int64_t>::max()};
  BitWriter w;
  for (const auto v : values) w.writeZigzag(v);
  BitReader r(w.bytes().data(), w.byteSize());
  for (const auto v : values) EXPECT_EQ(r.readZigzag(), v);
}

TEST(Codec, DoubleIsBitExact) {
  const double values[] = {0.0, -0.0, 1.0 / 3.0, 6.02214076e23, -1e-300,
                           std::numeric_limits<double>::infinity()};
  BitWriter w;
  w.writeBool(true);  // misalign on purpose
  for (const auto v : values) w.writeF64(v);
  const double nan = std::nan("");
  w.writeF64(nan);

  BitReader r(w.bytes().data(), w.byteSize());
  EXPECT_TRUE(r.readBool());
  for (const auto v : values) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(r.readF64()), std::bit_cast<std::uint64_t>(v));
  }
  EXPECT_EQ(std::bit_cast<std::uint64_t>(r.readF64()), std::bit_cast<std::uint64_t>(nan));
}

TEST(Codec, StringRoundTrip) {
  BitWriter w;
  w.writeBool(false);
  w.writeString("dtn0/if0");
  w.writeString("");
  w.writeString(std::string(300, 'x'));
  BitReader r(w.bytes().data(), w.byteSize());
  EXPECT_FALSE(r.readBool());
  EXPECT_EQ(r.readString(), "dtn0/if0");
  EXPECT_EQ(r.readString(), "");
  EXPECT_EQ(r.readString(), std::string(300, 'x'));
}

TEST(Codec, ReadPastEndSetsStickyFail) {
  BitWriter w;
  w.writeU8(42);
  BitReader r(w.bytes().data(), w.byteSize());
  EXPECT_EQ(r.readU8(), 42);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.readU32(), 0u);
  EXPECT_TRUE(r.fail());
  EXPECT_EQ(r.readU8(), 0u);  // stays failed and keeps returning zeros
  EXPECT_TRUE(r.fail());
}

TEST(Codec, SectionRoundTripAndSkip) {
  BitWriter w;
  const auto s1 = w.beginSection("AAAA");
  w.writeVarint(7);
  w.writeBool(true);
  w.endSection(s1);
  const auto s2 = w.beginSection("BBBB");
  w.writeString("payload");
  w.endSection(s2);

  // Reader that decodes both sections.
  {
    BitReader r(w.bytes().data(), w.byteSize());
    const std::uint32_t len1 = r.enterSection("AAAA");
    EXPECT_GT(len1, 0u);
    EXPECT_EQ(r.readVarint(), 7u);
    EXPECT_TRUE(r.readBool());
    const std::uint32_t len2 = r.enterSection("BBBB");
    EXPECT_GT(len2, 0u);
    EXPECT_EQ(r.readString(), "payload");
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r.atEnd());
  }

  // Reader that skips the first section wholesale.
  {
    BitReader r(w.bytes().data(), w.byteSize());
    const std::uint32_t len1 = r.enterSection("AAAA");
    r.skipBytes(len1);
    EXPECT_GT(r.enterSection("BBBB"), 0u);
    EXPECT_EQ(r.readString(), "payload");
    EXPECT_TRUE(r.ok());
  }

  // Fourcc mismatch fails loudly.
  {
    BitReader r(w.bytes().data(), w.byteSize());
    EXPECT_EQ(r.enterSection("XXXX"), 0u);
    EXPECT_TRUE(r.fail());
  }
}

TEST(Codec, DualModeArchiveRoundTrip) {
  struct Blob {
    bool flag = false;
    std::uint32_t id = 0;
    std::uint64_t count = 0;
    std::int64_t delta = 0;
    double rate = 0.0;
    std::string name;
    void serialize(Codec& c) {
      c.b(flag);
      c.vu32(id);
      c.vu64(count);
      c.vi64(delta);
      c.f64(rate);
      c.str(name);
    }
  };

  Blob a;
  a.flag = true;
  a.id = 17;
  a.count = 987654321;
  a.delta = -42;
  a.rate = 9.8e9;
  a.name = "fig1";

  BitWriter w;
  Codec cw(w);
  EXPECT_TRUE(cw.writing());
  a.serialize(cw);

  Blob b;
  BitReader r(w.bytes().data(), w.byteSize());
  Codec cr(r);
  EXPECT_FALSE(cr.writing());
  b.serialize(cr);
  EXPECT_TRUE(cr.ok());

  EXPECT_EQ(b.flag, a.flag);
  EXPECT_EQ(b.id, a.id);
  EXPECT_EQ(b.count, a.count);
  EXPECT_EQ(b.delta, a.delta);
  EXPECT_EQ(b.rate, a.rate);
  EXPECT_EQ(b.name, a.name);
}

TEST(Codec, MagicHeaderRoundTripAndMismatch) {
  BitWriter w;
  writeMagic(w, "scidmz.snap.v1");
  w.writeVarint(99);
  {
    BitReader r(w.bytes().data(), w.byteSize());
    EXPECT_TRUE(readMagic(r, "scidmz.snap.v1"));
    EXPECT_EQ(r.readVarint(), 99u);
  }
  {
    BitReader r(w.bytes().data(), w.byteSize());
    EXPECT_FALSE(readMagic(r, "scidmz.frbin.v1"));
  }
  {
    BitReader r(w.bytes().data(), 4);  // truncated
    EXPECT_FALSE(readMagic(r, "scidmz.snap.v1"));
  }
}

TEST(Codec, VarintIsSmallerThanFixedForSmallValues) {
  BitWriter fixed;
  BitWriter packed;
  for (std::uint64_t v = 0; v < 100; ++v) {
    fixed.writeU64(v);
    packed.writeVarint(v);
  }
  EXPECT_LT(packed.byteSize(), fixed.byteSize() / 4);
}

}  // namespace
}  // namespace scidmz::sim
