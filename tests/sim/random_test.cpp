#include "sim/random.hpp"

#include <gtest/gtest.h>

namespace scidmz::sim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng{7};
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BelowIsInRangeAndRoughlyUniform) {
  Rng rng{11};
  int counts[10] = {};
  for (int i = 0; i < 100000; ++i) {
    const auto v = rng.below(10);
    ASSERT_LT(v, 10u);
    ++counts[v];
  }
  for (int c : counts) EXPECT_NEAR(c, 10000, 600);
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng{13};
  int hits = 0;
  const int trials = 200000;
  for (int i = 0; i < trials; ++i) {
    if (rng.chance(1.0 / 22000.0)) ++hits;  // the failing-line-card rate
  }
  EXPECT_NEAR(static_cast<double>(hits) / trials, 1.0 / 22000.0, 6e-5);
}

TEST(Rng, ChanceEdgeCases) {
  Rng rng{17};
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_FALSE(rng.chance(-1.0));
  EXPECT_TRUE(rng.chance(1.0));
  EXPECT_TRUE(rng.chance(2.0));
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng{19};
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, ExponentialDurationMean) {
  Rng rng{23};
  using namespace scidmz::sim::literals;
  double totalSecs = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) totalSecs += rng.exponential(10_ms).toSeconds();
  EXPECT_NEAR(totalSecs / n, 0.010, 0.0005);
}

TEST(Rng, NormalMoments) {
  Rng rng{29};
  double sum = 0, sq = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(3.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Rng, ParetoRespectsMinimum) {
  Rng rng{31};
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.pareto(1.5, 2.0), 2.0);
}

TEST(Rng, ForkIsIndependentOfDrawHistory) {
  Rng a{99};
  Rng b{99};
  b.next();
  b.next();  // consume some draws
  Rng fa = a.fork(1);
  Rng fb = b.fork(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(fa.next(), fb.next());
}

TEST(Rng, ForksWithDifferentSaltsDiverge) {
  Rng base{5};
  Rng f1 = base.fork(1);
  Rng f2 = base.fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (f1.next() == f2.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

}  // namespace
}  // namespace scidmz::sim
