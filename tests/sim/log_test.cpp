#include "sim/log.hpp"

#include <gtest/gtest.h>

namespace scidmz::sim {
namespace {

using namespace scidmz::sim::literals;

TEST(Logger, SinkReceivesRecords) {
  Logger logger;
  CapturingSink sink;
  logger.addSink(sink.sink());
  logger.log(SimTime::zero() + 5_ms, LogLevel::kInfo, "tcp", "connection established");
  ASSERT_EQ(sink.records().size(), 1u);
  EXPECT_EQ(sink.records()[0].component, "tcp");
  EXPECT_EQ(sink.records()[0].message, "connection established");
  EXPECT_EQ(sink.records()[0].at, SimTime::zero() + 5_ms);
}

TEST(Logger, LevelFiltersBelowThreshold) {
  Logger logger;
  CapturingSink sink;
  logger.addSink(sink.sink());
  logger.setLevel(LogLevel::kWarn);
  logger.log(SimTime::zero(), LogLevel::kDebug, "x", "dropped");
  logger.log(SimTime::zero(), LogLevel::kInfo, "x", "dropped");
  logger.log(SimTime::zero(), LogLevel::kWarn, "x", "kept");
  logger.log(SimTime::zero(), LogLevel::kError, "x", "kept");
  EXPECT_EQ(sink.records().size(), 2u);
}

TEST(Logger, NoSinksMeansNoWork) {
  Logger logger;
  logger.log(SimTime::zero(), LogLevel::kError, "x", "nowhere to go");  // must not crash
}

TEST(Logger, MultipleSinksAllReceive) {
  Logger logger;
  CapturingSink s1;
  CapturingSink s2;
  logger.addSink(s1.sink());
  logger.addSink(s2.sink());
  logger.log(SimTime::zero(), LogLevel::kInfo, "x", "fanout");
  EXPECT_EQ(s1.records().size(), 1u);
  EXPECT_EQ(s2.records().size(), 1u);
}

TEST(LogLevel, Names) {
  EXPECT_EQ(toString(LogLevel::kTrace), "TRACE");
  EXPECT_EQ(toString(LogLevel::kError), "ERROR");
}

}  // namespace
}  // namespace scidmz::sim
