#include "sim/log.hpp"

#include <gtest/gtest.h>

namespace scidmz::sim {
namespace {

using namespace scidmz::sim::literals;

TEST(Logger, SinkReceivesRecords) {
  Logger logger;
  CapturingSink sink;
  logger.addSink(sink.sink());
  logger.log(SimTime::zero() + 5_ms, LogLevel::kInfo, "tcp", "connection established");
  ASSERT_EQ(sink.records().size(), 1u);
  EXPECT_EQ(sink.records()[0].component, "tcp");
  EXPECT_EQ(sink.records()[0].message, "connection established");
  EXPECT_EQ(sink.records()[0].at, SimTime::zero() + 5_ms);
}

TEST(Logger, LevelFiltersBelowThreshold) {
  Logger logger;
  CapturingSink sink;
  logger.addSink(sink.sink());
  logger.setLevel(LogLevel::kWarn);
  logger.log(SimTime::zero(), LogLevel::kDebug, "x", "dropped");
  logger.log(SimTime::zero(), LogLevel::kInfo, "x", "dropped");
  logger.log(SimTime::zero(), LogLevel::kWarn, "x", "kept");
  logger.log(SimTime::zero(), LogLevel::kError, "x", "kept");
  EXPECT_EQ(sink.records().size(), 2u);
}

TEST(Logger, NoSinksMeansNoWork) {
  Logger logger;
  logger.log(SimTime::zero(), LogLevel::kError, "x", "nowhere to go");  // must not crash
}

TEST(Logger, MultipleSinksAllReceive) {
  Logger logger;
  CapturingSink s1;
  CapturingSink s2;
  logger.addSink(s1.sink());
  logger.addSink(s2.sink());
  logger.log(SimTime::zero(), LogLevel::kInfo, "x", "fanout");
  EXPECT_EQ(s1.records().size(), 1u);
  EXPECT_EQ(s2.records().size(), 1u);
}

TEST(LogLevel, Names) {
  EXPECT_EQ(toString(LogLevel::kTrace), "TRACE");
  EXPECT_EQ(toString(LogLevel::kError), "ERROR");
}

TEST(LogLevel, ParseIsCaseInsensitiveAndRejectsGarbage) {
  EXPECT_EQ(parseLogLevel("debug"), LogLevel::kDebug);
  EXPECT_EQ(parseLogLevel("DEBUG"), LogLevel::kDebug);
  EXPECT_EQ(parseLogLevel("Warn"), LogLevel::kWarn);
  EXPECT_EQ(parseLogLevel("warning"), LogLevel::kWarn);
  EXPECT_EQ(parseLogLevel("trace"), LogLevel::kTrace);
  EXPECT_EQ(parseLogLevel("error"), LogLevel::kError);
  EXPECT_EQ(parseLogLevel("1"), std::nullopt);
  EXPECT_EQ(parseLogLevel(""), std::nullopt);
  EXPECT_EQ(parseLogLevel("verbose"), std::nullopt);
}

TEST(RingBufferSink, KeepsNewestAndCountsEvictions) {
  Logger logger;
  RingBufferSink ring{3};
  logger.addSink(ring.sink());
  for (int i = 0; i < 5; ++i) {
    logger.log(SimTime::zero() + Duration::milliseconds(i), LogLevel::kInfo, "x",
               "m" + std::to_string(i));
  }
  EXPECT_EQ(ring.capacity(), 3u);
  ASSERT_EQ(ring.records().size(), 3u);
  EXPECT_EQ(ring.records().front().message, "m2");
  EXPECT_EQ(ring.records().back().message, "m4");
  EXPECT_EQ(ring.dropped(), 2u);
}

TEST(RingBufferSink, ClearResetsRecordsAndDropCount) {
  Logger logger;
  RingBufferSink ring{1};
  logger.addSink(ring.sink());
  logger.log(SimTime::zero(), LogLevel::kInfo, "x", "a");
  logger.log(SimTime::zero(), LogLevel::kInfo, "x", "b");
  EXPECT_EQ(ring.dropped(), 1u);
  ring.clear();
  EXPECT_TRUE(ring.records().empty());
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(RingBufferSink, ZeroCapacityClampsToOne) {
  RingBufferSink ring{0};
  EXPECT_EQ(ring.capacity(), 1u);
}

}  // namespace
}  // namespace scidmz::sim
