#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

namespace scidmz::sim {
namespace {

using namespace scidmz::sim::literals;

SimTime at(std::int64_t ns) { return SimTime::fromNs(ns); }

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(at(30), [&] { order.push_back(3); });
  q.schedule(at(10), [&] { order.push_back(1); });
  q.schedule(at(20), [&] { order.push_back(2); });
  while (!q.empty()) q.pop().cb();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SimultaneousEventsFifoByScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    q.schedule(at(100), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().cb();
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelSkipsEvent) {
  EventQueue q;
  int fired = 0;
  q.schedule(at(1), [&] { ++fired; });
  const EventId id = q.schedule(at(2), [&] { fired += 100; });
  q.schedule(at(3), [&] { ++fired; });
  q.cancel(id);
  EXPECT_EQ(q.size(), 2u);
  while (!q.empty()) q.pop().cb();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, CancelTwiceAndCancelInvalidAreNoOps) {
  EventQueue q;
  const EventId id = q.schedule(at(1), [] {});
  q.cancel(id);
  q.cancel(id);
  q.cancel(EventId{});
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId early = q.schedule(at(5), [] {});
  q.schedule(at(9), [] {});
  q.cancel(early);
  EXPECT_EQ(q.nextTime(), at(9));
}

TEST(EventQueue, EmptyNextTimeIsMax) {
  EventQueue q;
  EXPECT_EQ(q.nextTime(), SimTime::max());
}

TEST(EventQueue, ClearDropsEverything) {
  EventQueue q;
  q.schedule(at(1), [] {});
  q.schedule(at(2), [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

// The seed implementation remembered a cancelled id forever and decremented
// live_ even when the event had already fired, so empty() could report true
// while live events remained. A stale handle must now be a pure no-op.
TEST(EventQueue, CancelAfterFireKeepsAccounting) {
  EventQueue q;
  int fired = 0;
  const EventId first = q.schedule(at(1), [&] { ++fired; });
  q.schedule(at(2), [&] { ++fired; });
  q.pop().cb();        // fires the first event
  q.cancel(first);     // stale: must not touch the remaining event's accounting
  EXPECT_FALSE(q.empty());
  EXPECT_EQ(q.size(), 1u);
  q.pop().cb();
  EXPECT_EQ(fired, 2);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelTwiceDecrementsOnce) {
  EventQueue q;
  q.schedule(at(1), [] {});
  const EventId id = q.schedule(at(2), [] {});
  q.cancel(id);
  EXPECT_EQ(q.size(), 1u);
  q.cancel(id);  // second cancel of the same handle: no double decrement
  EXPECT_EQ(q.size(), 1u);
  EXPECT_FALSE(q.empty());
  q.pop();
  EXPECT_TRUE(q.empty());
}

// A handle for a fired event must not be able to kill an unrelated event
// that later reuses the same internal slot.
TEST(EventQueue, StaleHandleCannotCancelSlotReuser) {
  EventQueue q;
  const EventId old = q.schedule(at(1), [] {});
  q.pop();  // fires; the slot is recycled
  int fired = 0;
  q.schedule(at(2), [&] { ++fired; });
  q.cancel(old);  // generation mismatch: no-op
  ASSERT_FALSE(q.empty());
  q.pop().cb();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, TombstonesAreReclaimed) {
  EventQueue q;
  // Cancel far more than the compaction threshold; dead entries must not
  // accumulate without bound.
  for (int round = 0; round < 10; ++round) {
    std::vector<EventId> ids;
    for (int i = 0; i < 100; ++i) ids.push_back(q.schedule(at(1000 + i), [] {}));
    for (const EventId id : ids) q.cancel(id);
  }
  EXPECT_TRUE(q.empty());
  EXPECT_LE(q.tombstoneCount(), 128u);
  // The queue stays fully usable afterwards.
  int fired = 0;
  q.schedule(at(1), [&] { ++fired; });
  q.pop().cb();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelAfterClearIsNoOp) {
  EventQueue q;
  const EventId id = q.schedule(at(1), [] {});
  q.clear();
  q.cancel(id);
  EXPECT_TRUE(q.empty());
  int fired = 0;
  q.schedule(at(2), [&] { ++fired; });
  EXPECT_EQ(q.size(), 1u);
  q.pop().cb();
  EXPECT_EQ(fired, 1);
}

// Captures larger than the inline buffer take the heap fallback; behaviour
// must be identical.
TEST(EventQueue, OversizedCapturesStillFire) {
  EventQueue q;
  std::array<std::uint64_t, 64> big{};  // 512 bytes, above the inline budget
  big[0] = 41;
  int result = 0;
  EventQueue::Callback cb{[big, &result] { result = static_cast<int>(big[0]) + 1; }};
  EXPECT_FALSE(cb.isInline());
  q.schedule(at(1), std::move(cb));
  q.pop().cb();
  EXPECT_EQ(result, 42);
}

// The data-path closures capture a `this` pointer plus a 16-byte pool
// handle; the SBO budget is sized so those stay inline (with headroom for
// an extra word or two of state).
TEST(EventQueue, HandleSizedCaptureStaysInline) {
  struct Capture {
    void* owner = nullptr;
    unsigned char handle[16] = {};  // net::PacketRef-shaped payload
    std::uint64_t extra = 0;
    void operator()() const {}
  };
  EventQueue::Callback cb{Capture{}};
  EXPECT_TRUE(cb.isInline());
}

// A Packet-by-value capture (~150 bytes) no longer fits — the zero-copy
// refactor shrank the inline budget from 192 to 64 bytes. Such captures
// fall back to the heap with identical call semantics.
TEST(EventQueue, PacketSizedCaptureFallsBackToHeap) {
  struct Capture {
    void* owner = nullptr;
    unsigned char bytes[144] = {};
    void operator()() const {}
  };
  EventQueue::Callback cb{Capture{}};
  EXPECT_FALSE(cb.isInline());
}

}  // namespace
}  // namespace scidmz::sim
