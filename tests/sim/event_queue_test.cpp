#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace scidmz::sim {
namespace {

using namespace scidmz::sim::literals;

SimTime at(std::int64_t ns) { return SimTime::fromNs(ns); }

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(at(30), [&] { order.push_back(3); });
  q.schedule(at(10), [&] { order.push_back(1); });
  q.schedule(at(20), [&] { order.push_back(2); });
  while (!q.empty()) q.pop().cb();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SimultaneousEventsFifoByScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    q.schedule(at(100), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().cb();
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelSkipsEvent) {
  EventQueue q;
  int fired = 0;
  q.schedule(at(1), [&] { ++fired; });
  const EventId id = q.schedule(at(2), [&] { fired += 100; });
  q.schedule(at(3), [&] { ++fired; });
  q.cancel(id);
  EXPECT_EQ(q.size(), 2u);
  while (!q.empty()) q.pop().cb();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, CancelTwiceAndCancelInvalidAreNoOps) {
  EventQueue q;
  const EventId id = q.schedule(at(1), [] {});
  q.cancel(id);
  q.cancel(id);
  q.cancel(EventId{});
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId early = q.schedule(at(5), [] {});
  q.schedule(at(9), [] {});
  q.cancel(early);
  EXPECT_EQ(q.nextTime(), at(9));
}

TEST(EventQueue, EmptyNextTimeIsMax) {
  EventQueue q;
  EXPECT_EQ(q.nextTime(), SimTime::max());
}

TEST(EventQueue, ClearDropsEverything) {
  EventQueue q;
  q.schedule(at(1), [] {});
  q.schedule(at(2), [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

}  // namespace
}  // namespace scidmz::sim
