// ShardedSimulator unit tests: conservative barrier-epoch execution of N
// per-domain Simulators stitched by timestamped channels. Covers the
// boundary-link edge cases the scenario layer relies on — zero-lookahead
// rejection, below-floor channel rejection, cross-domain delivery timing,
// per-channel FIFO order, boundary-after-local tie-breaking at equal
// timestamps, the idle null-message-style advance, messages pending across
// runUntil calls, and cancellation of an event that would have posted
// cross-domain.
#include "sim/domain.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "sim/simulator.hpp"

namespace scidmz::sim {
namespace {

using namespace scidmz::sim::literals;

TEST(ShardedSimulator, RejectsNonPositiveLookahead) {
  Simulator a;
  EXPECT_THROW((ShardedSimulator({&a}, Duration::zero())), std::invalid_argument);
  EXPECT_THROW((ShardedSimulator({&a}, Duration::nanoseconds(-1))), std::invalid_argument);
}

TEST(ShardedSimulator, RejectsEmptyDomainSet) {
  EXPECT_THROW((ShardedSimulator({}, 5_ms)), std::invalid_argument);
}

TEST(ShardedSimulator, RejectsChannelBelowLookaheadFloor) {
  Simulator a;
  Simulator b;
  ShardedSimulator sh({&a, &b}, 5_ms);
  EXPECT_THROW(sh.addChannel(1, 1_ms), std::invalid_argument);
  EXPECT_THROW(sh.addChannel(2, 10_ms), std::invalid_argument);  // dst out of range
}

TEST(ShardedSimulator, CrossDomainMessageArrivesAtPostedTime) {
  Simulator a;
  Simulator b;
  ShardedSimulator sh({&a, &b}, 5_ms);
  const std::uint32_t ch = sh.addChannel(1, 10_ms);
  std::vector<std::int64_t> arrivals;
  a.schedule(1_ms, [&] { sh.post(ch, a.now() + 10_ms, [&] { arrivals.push_back(b.now().ns()); }); });
  sh.runFor(20_ms);
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_EQ(arrivals[0], (SimTime::zero() + 11_ms).ns());
  EXPECT_EQ(a.now(), SimTime::zero() + 20_ms);
  EXPECT_EQ(b.now(), SimTime::zero() + 20_ms);
  EXPECT_EQ(sh.eventsExecuted(), 2u);
  EXPECT_EQ(sh.domainEvents(0), 1u);
  EXPECT_EQ(sh.domainEvents(1), 1u);
}

TEST(ShardedSimulator, ChannelPreservesFifoOrder) {
  Simulator a;
  Simulator b;
  ShardedSimulator sh({&a, &b}, 5_ms);
  const std::uint32_t ch = sh.addChannel(1, 10_ms);
  std::vector<int> order;
  // Two deliveries with the SAME arrival timestamp: the per-channel FIFO
  // counter must keep them in posting order.
  a.schedule(1_ms, [&] {
    sh.post(ch, a.now() + 10_ms, [&] { order.push_back(1); });
    sh.post(ch, a.now() + 10_ms, [&] { order.push_back(2); });
  });
  sh.runFor(20_ms);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
}

TEST(ShardedSimulator, BoundaryDeliverySortsAfterSameTimeLocalEvent) {
  Simulator a;
  Simulator b;
  ShardedSimulator sh({&a, &b}, 5_ms);
  const std::uint32_t ch = sh.addChannel(1, 10_ms);
  std::vector<std::string> order;
  // Local event in the destination domain at exactly the delivery time: the
  // reserved boundary sequence band must sort the delivery after it.
  b.schedule(11_ms, [&] { order.push_back("local"); });
  a.schedule(1_ms, [&] { sh.post(ch, a.now() + 10_ms, [&] { order.push_back("boundary"); }); });
  sh.runFor(20_ms);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "local");
  EXPECT_EQ(order[1], "boundary");
}

TEST(ShardedSimulator, IdleDomainsAdvanceStraightToDeadline) {
  Simulator a;
  Simulator b;
  Simulator c;
  ShardedSimulator sh({&a, &b, &c}, 5_ms);
  // No events anywhere: the horizon must jump past the deadline instead of
  // crawling in lookahead-sized epochs.
  sh.runUntil(SimTime::zero() + 10_s);
  EXPECT_EQ(a.now(), SimTime::zero() + 10_s);
  EXPECT_EQ(b.now(), SimTime::zero() + 10_s);
  EXPECT_EQ(c.now(), SimTime::zero() + 10_s);
  EXPECT_EQ(sh.eventsExecuted(), 0u);
}

TEST(ShardedSimulator, MessageBeyondDeadlineStaysPendingAcrossRuns) {
  Simulator a;
  Simulator b;
  ShardedSimulator sh({&a, &b}, 5_ms);
  const std::uint32_t ch = sh.addChannel(1, 29_ms);
  std::vector<std::int64_t> arrivals;
  // The posting event runs in the FINAL epoch of the first runFor (19 ms +
  // 5 ms lookahead overshoots the 20 ms deadline), so the message is never
  // drained inside that run and must sit in the channel until the next.
  a.schedule(19_ms, [&] { sh.post(ch, a.now() + 29_ms, [&] { arrivals.push_back(b.now().ns()); }); });
  sh.runFor(20_ms);
  EXPECT_TRUE(arrivals.empty());
  EXPECT_EQ(sh.pendingChannelMessages(), 1u);
  sh.runFor(30_ms);
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_EQ(arrivals[0], (SimTime::zero() + 48_ms).ns());
  EXPECT_EQ(sh.pendingChannelMessages(), 0u);
}

TEST(ShardedSimulator, CancelledEventNeverPostsCrossDomain) {
  Simulator a;
  Simulator b;
  ShardedSimulator sh({&a, &b}, 5_ms);
  const std::uint32_t ch = sh.addChannel(1, 10_ms);
  int arrivals = 0;
  const EventId id =
      a.schedule(1_ms, [&] { sh.post(ch, a.now() + 10_ms, [&] { ++arrivals; }); });
  a.cancel(id);
  sh.runFor(30_ms);
  EXPECT_EQ(arrivals, 0);
  EXPECT_EQ(sh.pendingChannelMessages(), 0u);
  EXPECT_EQ(sh.eventsExecuted(), 0u);
}

TEST(ShardedSimulator, PingPongAcrossThreeDomainsIsDeterministic) {
  // A message relay a -> b -> c -> a, repeated: exercises channels in both
  // directions across three worker-threaded domains and checks the final
  // event counts and clock agreement.
  auto run = [] {
    Simulator a;
    Simulator b;
    Simulator c;
    ShardedSimulator sh({&a, &b, &c}, 5_ms);
    const std::uint32_t ab = sh.addChannel(1, 10_ms);
    const std::uint32_t bc = sh.addChannel(2, 10_ms);
    const std::uint32_t ca = sh.addChannel(0, 10_ms);
    std::vector<std::int64_t> hops;
    std::function<void()> fromA = [&] { sh.post(ab, a.now() + 10_ms, [&] {
      hops.push_back(b.now().ns());
      sh.post(bc, b.now() + 10_ms, [&] {
        hops.push_back(c.now().ns());
        sh.post(ca, c.now() + 10_ms, [&] {
          hops.push_back(a.now().ns());
          if (hops.size() < 12) fromA();
        });
      });
    }); };
    a.schedule(1_ms, fromA);
    sh.runFor(500_ms);
    return hops;
  };
  const auto first = run();
  const auto second = run();
  ASSERT_EQ(first.size(), 12u);
  EXPECT_EQ(first, second);
  // Hop k lands at 1ms + (k+1)*10ms.
  for (std::size_t k = 0; k < first.size(); ++k) {
    EXPECT_EQ(first[k],
              Duration::milliseconds(1 + 10 * static_cast<std::int64_t>(k + 1)).ns());
  }
}

}  // namespace
}  // namespace scidmz::sim
