#include "sim/units.hpp"

#include <gtest/gtest.h>

namespace scidmz::sim {
namespace {

using namespace scidmz::sim::literals;

TEST(Duration, LiteralsAndConversions) {
  EXPECT_EQ((1_s).ns(), 1'000'000'000);
  EXPECT_EQ((3_ms).ns(), 3'000'000);
  EXPECT_EQ((7_us).ns(), 7'000);
  EXPECT_EQ((9_ns).ns(), 9);
  EXPECT_DOUBLE_EQ((250_ms).toSeconds(), 0.25);
  EXPECT_DOUBLE_EQ((250_ms).toMillis(), 250.0);
}

TEST(Duration, Arithmetic) {
  EXPECT_EQ(1_s + 500_ms, 1500_ms);
  EXPECT_EQ(1_s - 1_ms, 999_ms);
  EXPECT_EQ((10_ms) * 3, 30_ms);
  EXPECT_EQ((10_ms) / 2, 5_ms);
  EXPECT_DOUBLE_EQ((10_ms) / (2_ms), 5.0);
  EXPECT_LT(1_ms, 1_s);
}

TEST(Duration, FromSecondsRounds) {
  EXPECT_EQ(Duration::fromSeconds(0.5).ns(), 500'000'000);
  EXPECT_EQ(Duration::fromSeconds(1e-9).ns(), 1);
  EXPECT_EQ(Duration::fromSeconds(1.5e-9).ns(), 2);  // rounds half up
}

TEST(SimTime, PointArithmetic) {
  const SimTime t0 = SimTime::zero();
  const SimTime t1 = t0 + 10_ms;
  EXPECT_EQ((t1 - t0), 10_ms);
  EXPECT_LT(t0, t1);
  EXPECT_EQ(t1 - 10_ms, t0);
}

TEST(DataSize, UnitsAndArithmetic) {
  EXPECT_EQ((1_KB).byteCount(), 1'000u);
  EXPECT_EQ((1_MB).byteCount(), 1'000'000u);
  EXPECT_EQ((1_GB).byteCount(), 1'000'000'000u);
  EXPECT_EQ((1_TB).byteCount(), 1'000'000'000'000u);
  EXPECT_EQ((1_KiB).byteCount(), 1024u);
  EXPECT_EQ((1_MiB).byteCount(), 1024u * 1024u);
  EXPECT_EQ((1500_B).bitCount(), 12'000u);
  EXPECT_EQ(2_KB - 500_B, 1500_B);
}

TEST(DataRate, TransmissionTime) {
  // 1500B at 1Gbps = 12000 bits / 1e9 bps = 12 us.
  EXPECT_EQ((1_Gbps).transmissionTime(1500_B), 12_us);
  // 9000B at 10 Gbps = 72000 bits / 1e10 = 7.2 us.
  EXPECT_EQ((10_Gbps).transmissionTime(9000_B), Duration::nanoseconds(7200));
  // Rounds up: 1 byte at 3 bps = 8/3 s -> ceil in ns.
  EXPECT_EQ((3_bps).transmissionTime(1_B), Duration::nanoseconds(2'666'666'667));
}

TEST(DataRate, TransmissionTimeNoOverflowForTerabytes) {
  // 1 TB at 10 Gbps = 8e12 bits / 1e10 bps = 800 s. Would overflow a naive
  // 64-bit bits*1e9 computation.
  EXPECT_EQ((10_Gbps).transmissionTime(1_TB), 800_s);
}

TEST(DataRate, BytesInDuration) {
  // Equation 2 of the paper: 1 Gbps over 10 ms RTT = 1.25 MB window.
  EXPECT_EQ((1_Gbps).bytesIn(10_ms), DataSize::bytes(1'250'000));
  EXPECT_EQ((10_Gbps).bytesIn(100_ms), DataSize::bytes(125'000'000));
}

TEST(DataRate, Conversions) {
  EXPECT_DOUBLE_EQ((10_Gbps).toGbps(), 10.0);
  EXPECT_DOUBLE_EQ((200_Mbps).toMbps(), 200.0);
  EXPECT_DOUBLE_EQ((8_Mbps).toMBps(), 1.0);
}

TEST(Formatting, HumanReadable) {
  EXPECT_EQ(toString(10_Gbps), "10 Gbps");
  EXPECT_EQ(toString(1500_B), "1.5 KB");
  EXPECT_EQ(toString(10_ms), "10 ms");
  EXPECT_EQ(toString(2_s), "2 s");
}

}  // namespace
}  // namespace scidmz::sim
