// Tests for the event-loop self-profiler: attach/detach semantics, per-source
// attribution (plain, daemon, self-identified), occupancy sampling, high-water
// stamping, and the scidmz.profile.v1 export shape (deterministic fields at
// the top level, wall-clock data confined to "host").
#include "sim/profiler.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "sim/simulator.hpp"
#include "sim/units.hpp"

namespace scidmz::sim {
namespace {

TEST(Profiler, DetachedSimulatorRunsWithoutProfiling) {
  Simulator simulator;
  int fired = 0;
  simulator.schedule(Duration::microseconds(1), [&] { ++fired; });
  simulator.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(simulator.profiler(), nullptr);
}

TEST(Profiler, CountsEveryExecutedEvent) {
  Simulator simulator;
  Profiler profiler;
  simulator.setProfiler(&profiler);
  constexpr int kEvents = 3000;  // > 1024 so occupancy sampling triggers
  int fired = 0;
  for (int i = 0; i < kEvents; ++i) {
    simulator.schedule(Duration::microseconds(i + 1), [&] { ++fired; });
  }
  simulator.run();
  EXPECT_EQ(fired, kEvents);
  EXPECT_EQ(profiler.eventsProfiled(), simulator.eventsExecuted());
  ASSERT_TRUE(profiler.sources().count("event"));
  EXPECT_EQ(profiler.sources().at("event").count, profiler.eventsProfiled());
  EXPECT_GT(profiler.maxPending(), 0u);
}

TEST(Profiler, AttributesDaemonAndSelfIdentifiedSources) {
  Simulator simulator;
  Profiler profiler;
  simulator.setProfiler(&profiler);
  simulator.schedule(Duration::microseconds(1), [] {});
  simulator.scheduleDaemon(Duration::microseconds(2), [] {});
  simulator.schedule(Duration::microseconds(3), [&] { profiler.setSource("telemetry.tick"); });
  simulator.run();
  ASSERT_TRUE(profiler.sources().count("event"));
  ASSERT_TRUE(profiler.sources().count("daemon"));
  ASSERT_TRUE(profiler.sources().count("telemetry.tick"));
  EXPECT_EQ(profiler.sources().at("event").count, 1u);
  EXPECT_EQ(profiler.sources().at("daemon").count, 1u);
  EXPECT_EQ(profiler.sources().at("telemetry.tick").count, 1u);
}

TEST(Profiler, SetSourceWinsOverDaemonTag) {
  Simulator simulator;
  Profiler profiler;
  simulator.setProfiler(&profiler);
  // A daemon event that self-identifies lands under its own name, like the
  // telemetry sampling tick does in production.
  simulator.scheduleDaemon(Duration::microseconds(1),
                           [&] { profiler.setSource("telemetry.tick"); });
  // run() would park on a daemon-only queue; a finite horizon fires it.
  simulator.runFor(Duration::microseconds(10));
  EXPECT_EQ(profiler.sources().count("daemon"), 0u);
  ASSERT_TRUE(profiler.sources().count("telemetry.tick"));
  EXPECT_EQ(profiler.sources().at("telemetry.tick").count, 1u);
}

TEST(Profiler, ExportSeparatesDeterministicAndHostData) {
  Simulator simulator;
  Profiler profiler;
  simulator.setProfiler(&profiler);
  for (int i = 0; i < 10; ++i) simulator.schedule(Duration::microseconds(i + 1), [] {});
  simulator.run();
  profiler.setHighWater("arena_blocks_peak", 42);
  profiler.setHighWater("packet_pool_peak", 7);

  std::ostringstream out;
  profiler.exportJson(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"schema\": \"scidmz.profile.v1\""), std::string::npos);
  EXPECT_NE(text.find("\"events_profiled\": 10"), std::string::npos);
  EXPECT_NE(text.find("\"arena_blocks_peak\": 42"), std::string::npos);
  EXPECT_NE(text.find("\"packet_pool_peak\": 7"), std::string::npos);
  // Wall-clock numbers must be confined to "host": everything before that
  // key is byte-stable across runs of the same simulation.
  const std::size_t hostPos = text.find("\"host\"");
  ASSERT_NE(hostPos, std::string::npos);
  EXPECT_EQ(text.find("total_ns"), text.find("total_ns", hostPos));
  EXPECT_EQ(text.find("latency_log2_ns"), text.find("latency_log2_ns", hostPos));

  // The deterministic prefix really is deterministic: re-run the same
  // schedule on a fresh simulator and compare everything before "host".
  Simulator rerunSim;
  Profiler rerun;
  rerunSim.setProfiler(&rerun);
  for (int i = 0; i < 10; ++i) rerunSim.schedule(Duration::microseconds(i + 1), [] {});
  rerunSim.run();
  rerun.setHighWater("arena_blocks_peak", 42);
  rerun.setHighWater("packet_pool_peak", 7);
  std::ostringstream out2;
  rerun.exportJson(out2);
  const std::string text2 = out2.str();
  ASSERT_NE(text2.find("\"host\""), std::string::npos);
  EXPECT_EQ(text.substr(0, hostPos), text2.substr(0, text2.find("\"host\"")));
}

}  // namespace
}  // namespace scidmz::sim
