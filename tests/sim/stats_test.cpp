#include "sim/stats.hpp"

#include <gtest/gtest.h>

namespace scidmz::sim {
namespace {

using namespace scidmz::sim::literals;

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyIsSafe) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, ResetClears) {
  RunningStats s;
  s.add(10.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
}

TEST(RunningStats, SingleValueHasZeroVariance) {
  RunningStats s;
  s.add(42.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(RunningStats, EmptyMinMaxAreZeroNotInfinite) {
  RunningStats s;
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStats, ResetThenAddStartsFresh) {
  RunningStats s;
  s.add(1e9);
  s.add(-1e9);
  s.reset();
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(TimeWeightedMean, WeightsByDuration) {
  TimeWeightedMean m;
  const SimTime t0 = SimTime::zero();
  m.update(t0, 10.0);          // 10 for 1s
  m.update(t0 + 1_s, 20.0);    // 20 for 3s
  const double mean = m.mean(t0 + 4_s);
  EXPECT_DOUBLE_EQ(mean, (10.0 * 1 + 20.0 * 3) / 4.0);
}

TEST(TimeWeightedMean, SingleValue) {
  TimeWeightedMean m;
  m.update(SimTime::zero(), 42.0);
  EXPECT_DOUBLE_EQ(m.mean(SimTime::zero() + 10_s), 42.0);
  EXPECT_DOUBLE_EQ(m.current(), 42.0);
}

TEST(TimeWeightedMean, EqualTimestampsReplaceWithoutAccumulating) {
  TimeWeightedMean m;
  const SimTime t0 = SimTime::zero();
  m.update(t0, 10.0);
  m.update(t0, 20.0);  // zero-duration segment: 10.0 must contribute nothing
  EXPECT_DOUBLE_EQ(m.mean(t0 + 1_s), 20.0);
}

TEST(TimeWeightedMean, NonMonotonicUpdateDoesNotCorruptTheMean) {
  TimeWeightedMean m;
  const SimTime t0 = SimTime::zero();
  m.update(t0 + 1_s, 10.0);
  m.update(t0 + 500_ms, 20.0);  // clock went backwards: no negative-span area
  const double mean = m.mean(t0 + 1500_ms);
  EXPECT_DOUBLE_EQ(mean, 20.0);
  EXPECT_GE(mean, 0.0);  // a negative span would have produced nonsense
}

TEST(TimeWeightedMean, MeanBeforeAnyUpdateIsZero) {
  TimeWeightedMean m;
  EXPECT_DOUBLE_EQ(m.mean(SimTime::zero() + 1_s), 0.0);
  EXPECT_DOUBLE_EQ(m.current(), 0.0);
}

TEST(TimeWeightedMean, MeanAtLastUpdateTimeFallsBackToCurrent) {
  TimeWeightedMean m;
  const SimTime t0 = SimTime::zero();
  m.update(t0, 7.0);
  EXPECT_DOUBLE_EQ(m.mean(t0), 7.0);  // zero span: current value, not 0/0
}

TEST(Histogram, BucketsAndQuantiles) {
  Histogram h{{10.0, 20.0, 30.0}};
  for (double x : {5.0, 15.0, 15.0, 25.0, 35.0}) h.add(x);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.counts()[0], 1u);  // < 10
  EXPECT_EQ(h.counts()[1], 2u);  // [10, 20)
  EXPECT_EQ(h.counts()[2], 1u);  // [20, 30)
  EXPECT_EQ(h.counts()[3], 1u);  // >= 30
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 20.0);
}

TEST(ThroughputMeter, AverageRate) {
  ThroughputMeter m;
  const SimTime t0 = SimTime::zero();
  m.add(t0, 0_B);
  m.add(t0 + 1_s, 125_MB);  // 125 MB over 1 s = 1 Gbps
  EXPECT_EQ(m.averageRate().bps(), (1_Gbps).bps());
  EXPECT_EQ(m.totalBytes(), 125_MB);
}

TEST(ThroughputMeter, ExplicitWindow) {
  ThroughputMeter m;
  const SimTime t0 = SimTime::zero();
  m.add(t0 + 500_ms, 250_MB);
  EXPECT_EQ(m.averageRate(t0, t0 + 2_s).bps(), (1_Gbps).bps());
}

TEST(ThroughputMeter, EmptyIsZero) {
  ThroughputMeter m;
  EXPECT_EQ(m.averageRate(), DataRate::zero());
}

}  // namespace
}  // namespace scidmz::sim
