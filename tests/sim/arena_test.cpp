// Arena allocation semantics: size-class pooling, LIFO recycling, the
// operator-new fallback for oversized/over-aligned requests, and ArenaPtr
// ownership (destruction returns the block).
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/arena.hpp"

namespace {

using scidmz::sim::Arena;
using scidmz::sim::ArenaPtr;

TEST(Arena, MakeConstructsAndDeleterReturnsBlock) {
  Arena a;
  {
    ArenaPtr<int> p = a.make<int>(42);
    EXPECT_EQ(*p, 42);
    EXPECT_EQ(a.liveCount(), 1u);
  }
  EXPECT_EQ(a.liveCount(), 0u);
  EXPECT_EQ(a.highWater(), 1u);
  EXPECT_GE(a.slabCount(), 1u);
}

TEST(Arena, FreelistRecyclesLifo) {
  Arena a;
  void* first = a.allocate(64, 8);
  void* second = a.allocate(64, 8);
  EXPECT_NE(first, second);
  a.deallocate(first, 64, 8);
  a.deallocate(second, 64, 8);
  // LIFO: the most recently freed block comes back first — recycling order
  // is reproducible run to run, which keeps perf deterministic.
  EXPECT_EQ(a.allocate(64, 8), second);
  EXPECT_EQ(a.allocate(64, 8), first);
  a.deallocate(first, 64, 8);
  a.deallocate(second, 64, 8);
}

TEST(Arena, SizeClassesShareFreelistsByRoundedSize) {
  Arena a;
  // 65 bytes rounds to the 128-byte class; freeing it must serve a later
  // 100-byte request (same class).
  void* p = a.allocate(65, 8);
  a.deallocate(p, 65, 8);
  EXPECT_EQ(a.allocate(100, 8), p);
  a.deallocate(p, 100, 8);
  EXPECT_EQ(a.liveCount(), 0u);
}

TEST(Arena, OversizedFallsBackToOperatorNew) {
  Arena a;
  void* big = a.allocate(Arena::kMaxClassBytes + 1, 8);
  EXPECT_NE(big, nullptr);
  EXPECT_EQ(a.liveCount(), 0u);  // not pooled
  EXPECT_EQ(a.unpooledLive(), 1u);
  a.deallocate(big, Arena::kMaxClassBytes + 1, 8);
  EXPECT_EQ(a.unpooledLive(), 0u);
}

TEST(Arena, OverAlignedFallsBackToOperatorNew) {
  Arena a;
  constexpr std::size_t kAlign = alignof(std::max_align_t) * 2;
  void* p = a.allocate(64, kAlign);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % kAlign, 0u);
  EXPECT_EQ(a.unpooledLive(), 1u);
  EXPECT_EQ(a.liveCount(), 0u);
  a.deallocate(p, 64, kAlign);
  EXPECT_EQ(a.unpooledLive(), 0u);
}

TEST(Arena, SmallAllocationsRoundUpToMinClass) {
  Arena a;
  // An 8-byte request occupies a 64-byte block; two such requests must not
  // alias.
  void* p = a.allocate(8, 8);
  void* q = a.allocate(8, 8);
  EXPECT_NE(p, q);
  a.deallocate(p, 8, 8);
  a.deallocate(q, 8, 8);
}

TEST(Arena, SlabsGrowWithWorkingSetAndAreRetained) {
  Arena a;
  std::vector<void*> blocks;
  // > one slab's worth of 4 KiB blocks.
  const std::size_t n = Arena::kSlabBytes / Arena::kMaxClassBytes + 4;
  for (std::size_t i = 0; i < n; ++i) blocks.push_back(a.allocate(4096, 8));
  EXPECT_GE(a.slabCount(), 2u);
  EXPECT_EQ(a.highWater(), n);
  for (void* b : blocks) a.deallocate(b, 4096, 8);
  const std::size_t peak_slabs = a.slabCount();
  // Slabs are never returned mid-scenario; reallocation reuses them.
  for (std::size_t i = 0; i < n; ++i) blocks[i] = a.allocate(4096, 8);
  EXPECT_EQ(a.slabCount(), peak_slabs);
  for (void* b : blocks) a.deallocate(b, 4096, 8);
}

TEST(Arena, MakeSupportsNonTrivialTypes) {
  Arena a;
  struct Tracked {
    explicit Tracked(int* counter) : counter_(counter) { ++*counter_; }
    ~Tracked() { --*counter_; }
    int* counter_;
  };
  int alive = 0;
  {
    ArenaPtr<Tracked> p = a.make<Tracked>(&alive);
    EXPECT_EQ(alive, 1);
    ArenaPtr<Tracked> q = std::move(p);
    EXPECT_EQ(alive, 1);
  }
  EXPECT_EQ(alive, 0);
  EXPECT_EQ(a.liveCount(), 0u);
}

}  // namespace
