#include "perfsonar/alerts.hpp"

#include <gtest/gtest.h>

namespace scidmz::perfsonar {
namespace {

using namespace scidmz::sim::literals;

sim::SimTime at(std::int64_t seconds) {
  return sim::SimTime::zero() + sim::Duration::seconds(seconds);
}

TEST(Alerts, LossAboveThresholdFires) {
  MeasurementArchive archive;
  archive.record("a", "b", kMetricLossFraction, at(1), 0.01);
  SoftFailureDetector detector{archive};
  int fired = 0;
  detector.onAlert = [&fired](const Alert&) { ++fired; };
  detector.evaluate(at(2));
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(detector.hasActiveAlert("a", "b"));
}

TEST(Alerts, CleanLossStaysQuiet) {
  MeasurementArchive archive;
  archive.record("a", "b", kMetricLossFraction, at(1), 0.0);
  SoftFailureDetector detector{archive};
  detector.evaluate(at(2));
  EXPECT_TRUE(detector.alerts().empty());
}

TEST(Alerts, LatchesOncePerCondition) {
  MeasurementArchive archive;
  archive.record("a", "b", kMetricLossFraction, at(1), 0.02);
  SoftFailureDetector detector{archive};
  detector.evaluate(at(2));
  archive.record("a", "b", kMetricLossFraction, at(3), 0.03);
  detector.evaluate(at(4));
  EXPECT_EQ(detector.alerts().size(), 1u);
}

TEST(Alerts, ClearPairReArmsDetection) {
  MeasurementArchive archive;
  archive.record("a", "b", kMetricLossFraction, at(1), 0.02);
  SoftFailureDetector detector{archive};
  detector.evaluate(at(2));
  detector.clearPair("a", "b");
  EXPECT_FALSE(detector.hasActiveAlert("a", "b"));
  archive.record("a", "b", kMetricLossFraction, at(3), 0.02);
  detector.evaluate(at(4));
  EXPECT_EQ(detector.alerts().size(), 2u);
}

TEST(Alerts, ThroughputRegressionAgainstBaseline) {
  MeasurementArchive archive;
  // Healthy baseline, then collapse (the failing-line-card signature).
  archive.record("a", "b", kMetricThroughputMbps, at(1), 9200.0);
  archive.record("a", "b", kMetricThroughputMbps, at(2), 9400.0);
  archive.record("a", "b", kMetricThroughputMbps, at(3), 9300.0);
  archive.record("a", "b", kMetricThroughputMbps, at(4), 800.0);

  SoftFailureDetector detector{archive};
  detector.evaluate(at(5));
  ASSERT_EQ(detector.alerts().size(), 1u);
  EXPECT_EQ(detector.alerts()[0].metric, kMetricThroughputMbps);
  EXPECT_DOUBLE_EQ(detector.alerts()[0].value, 800.0);
}

TEST(Alerts, NoRegressionAlertDuringBaselineWindow) {
  MeasurementArchive archive;
  archive.record("a", "b", kMetricThroughputMbps, at(1), 9200.0);
  archive.record("a", "b", kMetricThroughputMbps, at(2), 100.0);  // within window
  SoftFailureDetector detector{archive};
  detector.evaluate(at(3));
  EXPECT_TRUE(detector.alerts().empty());
}

TEST(Alerts, ModestDipDoesNotFire) {
  MeasurementArchive archive;
  archive.record("a", "b", kMetricThroughputMbps, at(1), 9000.0);
  archive.record("a", "b", kMetricThroughputMbps, at(2), 9000.0);
  archive.record("a", "b", kMetricThroughputMbps, at(3), 9000.0);
  archive.record("a", "b", kMetricThroughputMbps, at(4), 6000.0);  // 67% of baseline
  SoftFailureDetector detector{archive};
  detector.evaluate(at(5));
  EXPECT_TRUE(detector.alerts().empty());
}

}  // namespace
}  // namespace scidmz::perfsonar
