#include "perfsonar/bwctl.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "../net/test_util.hpp"

namespace scidmz::perfsonar {
namespace {

using namespace scidmz::sim::literals;
using testutil::Scenario;

struct TestPath {
  explicit TestPath(Scenario& s, net::LinkParams params = {})
      : a(s.topo.addHost("a", net::Address(10, 0, 0, 1))),
        b(s.topo.addHost("b", net::Address(10, 0, 0, 2))),
        link(s.topo.connect(a, b, params)) {
    s.topo.computeRoutes();
  }
  net::Host& a;
  net::Host& b;
  net::Link& link;
};

TEST(Bwctl, MeasuresCleanPathNearCapacity) {
  Scenario s;
  net::LinkParams params;
  params.rate = 1_Gbps;
  params.delay = 1_ms;
  TestPath net{s, params};
  BwctlTest test{net.a, net.b};
  BwctlResult seen;
  test.onComplete = [&seen](const BwctlResult& r) { seen = r; };
  test.start();
  s.simulator.run();

  ASSERT_TRUE(seen.ran);
  EXPECT_GT(seen.throughput.toMbps(), 850.0);
  EXPECT_LE(seen.throughput.toMbps(), 1000.0);
  EXPECT_EQ(seen.retransmits, 0u);
}

TEST(Bwctl, LossyPathMeasuresFarBelowCapacity) {
  Scenario s;
  net::LinkParams params;
  params.rate = 10_Gbps;
  params.delay = 20_ms;
  params.mtu = 9000_B;
  TestPath net{s, params};
  net.link.setLossModel(0, std::make_unique<net::RandomLoss>(1e-4, s.rng.fork(8)));
  BwctlTest::Options options;
  options.duration = 20_s;
  BwctlTest test{net.a, net.b, options};
  test.start();
  s.simulator.run();

  ASSERT_TRUE(test.result().ran);
  EXPECT_LT(test.result().throughput.toGbps(), 2.0);
  EXPECT_GT(test.result().retransmits, 0u);
}

TEST(Bwctl, BlackholedPathReportsZeroInsteadOfHanging) {
  Scenario s;
  TestPath net{s};
  net.link.setLossModel(0, std::make_unique<net::PeriodicLoss>(1));  // dead
  BwctlTest::Options options;
  options.duration = 5_s;
  BwctlTest test{net.a, net.b, options};
  test.start();
  s.simulator.runFor(60_s);

  ASSERT_TRUE(test.result().ran);
  EXPECT_EQ(test.result().throughput.bps(), 0u);
}

TEST(Bwctl, BackToBackTestsDoNotInterfere) {
  Scenario s;
  net::LinkParams params;
  params.rate = 1_Gbps;
  TestPath net{s, params};

  BwctlResult first;
  BwctlResult second;
  BwctlTest::Options options;
  options.duration = 3_s;
  auto test1 = std::make_unique<BwctlTest>(net.a, net.b, options);
  auto test2 = std::make_unique<BwctlTest>(net.a, net.b, options);
  test1->onComplete = [&](const BwctlResult& r) {
    first = r;
    test2->start();
  };
  test2->onComplete = [&second](const BwctlResult& r) { second = r; };
  test1->start();
  s.simulator.runFor(120_s);

  ASSERT_TRUE(first.ran);
  ASSERT_TRUE(second.ran);
  EXPECT_GT(first.throughput.toMbps(), 800.0);
  EXPECT_GT(second.throughput.toMbps(), 800.0);
}

}  // namespace
}  // namespace scidmz::perfsonar
