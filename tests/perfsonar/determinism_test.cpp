// Determinism of the monitoring pipeline output: the dashboard render and
// the alert stream for a measured path must be byte-identical whether the
// sweep runs on 1 worker or 8. Each cell simulates its own owamp + bwctl
// session on an impaired path, folds the measurements into an archive, and
// renders; the renders are compared across worker counts.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "net/loss.hpp"
#include "net/topology.hpp"
#include "perfsonar/alerts.hpp"
#include "perfsonar/bwctl.hpp"
#include "perfsonar/dashboard.hpp"
#include "perfsonar/owamp.hpp"
#include "sim/sweep.hpp"

#include "../net/test_util.hpp"

namespace scidmz::perfsonar {
namespace {

using namespace scidmz::sim::literals;
using testutil::Scenario;

/// One monitored path with a failing line card: owamp all along, one bwctl
/// test, dashboard + alerts rendered to a string.
std::string runMonitoredCell() {
  Scenario s;
  auto& src = s.topo.addHost("ps-a", net::Address(198, 129, 0, 1));
  auto& dst = s.topo.addHost("ps-b", net::Address(198, 129, 0, 2));
  net::LinkParams lp;
  lp.rate = 1_Gbps;
  lp.delay = 10_ms;
  lp.mtu = 9000_B;
  auto& link = s.topo.connect(src, dst, lp);
  link.setLossModel(0, std::make_unique<net::PeriodicLoss>(2000));
  s.topo.computeRoutes();

  MeasurementArchive archive;
  OwampStream::Options owampOptions;
  owampOptions.interval = 10_ms;
  OwampStream owamp{src, dst, owampOptions};
  owamp.start();

  BwctlTest::Options bwctlOptions;
  bwctlOptions.duration = 5_s;
  BwctlTest bwctl{src, dst, bwctlOptions};
  bwctl.onComplete = [&](const BwctlResult& result) {
    archive.record("a", "b", kMetricThroughputMbps, s.simulator.now(),
                   result.throughput.toMbps());
  };
  bwctl.start();

  s.simulator.runFor(10_s);
  owamp.stop();
  const OwampReport report = owamp.report();
  archive.record("a", "b", kMetricLossFraction, s.simulator.now(), report.lossFraction);

  SoftFailureDetector detector{archive};
  detector.evaluate(s.simulator.now());

  Dashboard dash{archive, {"a", "b"}, 900.0};
  std::ostringstream out;
  out << dash.render();
  for (const Alert& alert : detector.alerts()) {
    out << alert.at.ns() << " " << alert.src << "->" << alert.dst << " " << alert.metric << " "
        << alert.value << " " << alert.message << "\n";
  }
  out << "sent=" << report.sent << " received=" << report.received << "\n";
  return out.str();
}

TEST(MonitoringDeterminism, DashboardAndAlertsByteIdenticalAcrossWorkerCounts) {
  auto runCells = [](int workers) {
    sim::SweepRunner runner(workers);
    return runner.run<std::string>(
        4, [](sim::SweepCell&) { return runMonitoredCell(); }, "monitoring_determinism");
  };
  const auto serial = runCells(1);
  const auto parallel = runCells(8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "cell " << i;
    EXPECT_FALSE(serial[i].empty());
  }
  // Identical cells agree with each other: no leakage between cells.
  EXPECT_EQ(serial[0], serial[3]);
  // The impairment is actually visible: loss above threshold raises at
  // least one alert, so the comparison is over meaningful output.
  EXPECT_NE(serial[0].find(kMetricLossFraction), std::string::npos);
}

}  // namespace
}  // namespace scidmz::perfsonar
