#include "perfsonar/dashboard.hpp"

#include <gtest/gtest.h>

namespace scidmz::perfsonar {
namespace {

using namespace scidmz::sim::literals;

sim::SimTime at(std::int64_t seconds) {
  return sim::SimTime::zero() + sim::Duration::seconds(seconds);
}

TEST(Dashboard, RatesThroughputAgainstExpected) {
  MeasurementArchive archive;
  archive.record("lbl", "anl", kMetricThroughputMbps, at(1), 9500.0);  // good
  archive.record("lbl", "ornl", kMetricThroughputMbps, at(1), 4000.0); // degraded
  archive.record("anl", "lbl", kMetricThroughputMbps, at(1), 100.0);   // bad

  Dashboard dash{archive, {"lbl", "anl", "ornl"}, 10000.0};
  EXPECT_EQ(dash.throughputRating("lbl", "anl"), CellRating::kGood);
  EXPECT_EQ(dash.throughputRating("lbl", "ornl"), CellRating::kDegraded);
  EXPECT_EQ(dash.throughputRating("anl", "lbl"), CellRating::kBad);
  EXPECT_EQ(dash.throughputRating("ornl", "anl"), CellRating::kNoData);
}

TEST(Dashboard, RatesLossAbsolutely) {
  MeasurementArchive archive;
  archive.record("a", "b", kMetricLossFraction, at(1), 0.0);
  archive.record("b", "a", kMetricLossFraction, at(1), 0.001);
  archive.record("a", "c", kMetricLossFraction, at(1), 0.2);

  Dashboard dash{archive, {"a", "b", "c"}, 10000.0};
  EXPECT_EQ(dash.lossRating("a", "b"), CellRating::kGood);
  EXPECT_EQ(dash.lossRating("b", "a"), CellRating::kDegraded);
  EXPECT_EQ(dash.lossRating("a", "c"), CellRating::kBad);
}

TEST(Dashboard, CountAtRating) {
  MeasurementArchive archive;
  archive.record("a", "b", kMetricThroughputMbps, at(1), 9500.0);
  archive.record("b", "a", kMetricThroughputMbps, at(1), 9500.0);
  archive.record("a", "c", kMetricThroughputMbps, at(1), 10.0);

  Dashboard dash{archive, {"a", "b", "c"}, 10000.0};
  EXPECT_EQ(dash.countAtRating(CellRating::kGood), 2);
  EXPECT_EQ(dash.countAtRating(CellRating::kBad), 1);
  EXPECT_EQ(dash.countAtRating(CellRating::kNoData), 3);  // c->a, c->b, b->c
}

TEST(Dashboard, RenderShowsGridWithLegend) {
  MeasurementArchive archive;
  archive.record("lbl", "anl", kMetricThroughputMbps, at(1), 9500.0);
  archive.record("lbl", "anl", kMetricLossFraction, at(1), 0.0);

  Dashboard dash{archive, {"lbl", "anl"}, 10000.0};
  const auto text = dash.render();
  EXPECT_NE(text.find("lbl"), std::string::npos);
  EXPECT_NE(text.find("anl"), std::string::npos);
  EXPECT_NE(text.find("##"), std::string::npos);  // good|good cell
  EXPECT_NE(text.find("legend"), std::string::npos);
}

TEST(Dashboard, DiagonalIsBlank) {
  MeasurementArchive archive;
  Dashboard dash{archive, {"x", "y"}, 100.0};
  const auto text = dash.render();
  EXPECT_NE(text.find('-'), std::string::npos);
}

}  // namespace
}  // namespace scidmz::perfsonar
