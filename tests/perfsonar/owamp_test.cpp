#include "perfsonar/owamp.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "../net/test_util.hpp"

namespace scidmz::perfsonar {
namespace {

using namespace scidmz::sim::literals;
using testutil::Scenario;

struct ProbePath {
  explicit ProbePath(Scenario& s, net::LinkParams params = {})
      : a(s.topo.addHost("a", net::Address(10, 0, 0, 1))),
        b(s.topo.addHost("b", net::Address(10, 0, 0, 2))),
        link(s.topo.connect(a, b, params)) {
    s.topo.computeRoutes();
  }
  net::Host& a;
  net::Host& b;
  net::Link& link;
};

TEST(Owamp, CleanPathShowsZeroLoss) {
  Scenario s;
  ProbePath net{s};
  OwampStream stream{net.a, net.b};
  stream.start();
  s.simulator.runFor(60_s);
  stream.stop();
  s.simulator.runFor(1_s);  // drain in-flight probes

  const auto r = stream.report();
  EXPECT_GT(r.sent, 500u);
  EXPECT_EQ(r.received, r.sent);
  EXPECT_DOUBLE_EQ(r.lossFraction, 0.0);
}

TEST(Owamp, DetectsFailingLineCardLossRate) {
  // The Section 2 story: 1-in-22000 loss is invisible to error counters
  // but plainly visible to a long-running OWAMP stream.
  Scenario s;
  ProbePath net{s};
  net.link.setLossModel(0, std::make_unique<net::PeriodicLoss>(22000));

  OwampStream::Options fast;
  fast.interval = 100_us;  // dense probing to accumulate samples quickly
  OwampStream stream{net.a, net.b, fast};
  stream.start();
  s.simulator.runFor(30_s);
  stream.stop();
  s.simulator.runFor(1_s);

  const auto r = stream.report();
  EXPECT_GT(r.sent, 100'000u);
  EXPECT_NEAR(r.lossFraction, 1.0 / 22000.0, 2e-5);
}

TEST(Owamp, OneWayDelayMatchesPath) {
  Scenario s;
  net::LinkParams params;
  params.delay = 12_ms;
  ProbePath net{s, params};
  OwampStream stream{net.a, net.b};
  stream.start();
  s.simulator.runFor(10_s);
  stream.stop();
  s.simulator.runFor(1_s);

  const auto r = stream.report();
  EXPECT_GE(r.minDelay, 12_ms);
  EXPECT_LT(r.meanDelay, 13_ms);  // tiny serialization on top
}

TEST(Owamp, IntervalReportIsolatesWindows) {
  Scenario s;
  ProbePath net{s};
  OwampStream::Options options;
  options.lossTimeout = 50_ms;  // path delay is microseconds here
  OwampStream stream{net.a, net.b, options};
  stream.start();

  s.simulator.runFor(10_s);
  const auto first = stream.intervalReport();
  EXPECT_GT(first.sent, 0u);
  // At most the probe in flight at snapshot time counts as "lost".
  EXPECT_LT(first.lossFraction, 0.02);

  // Break the path; the next interval must show heavy loss.
  net.link.setLossModel(0, std::make_unique<net::PeriodicLoss>(2));
  s.simulator.runFor(10_s);
  const auto second = stream.intervalReport();
  EXPECT_NEAR(second.lossFraction, 0.5, 0.05);

  // Repair; the following interval is clean again.
  net.link.repair();
  s.simulator.runFor(10_s);
  const auto third = stream.intervalReport();
  EXPECT_LT(third.lossFraction, 0.02);
}

TEST(Owamp, StopHaltsProbes) {
  Scenario s;
  ProbePath net{s};
  OwampStream stream{net.a, net.b};
  stream.start();
  s.simulator.runFor(5_s);
  stream.stop();
  const auto sentAtStop = stream.probesSent();
  s.simulator.runFor(5_s);
  EXPECT_EQ(stream.probesSent(), sentAtStop);
  // Once everything is past the loss horizon, the report covers exactly
  // the probes emitted before the stop.
  EXPECT_EQ(stream.report().sent, sentAtStop);
}

TEST(Owamp, TwoStreamsCoexistOnDistinctPorts) {
  Scenario s;
  ProbePath net{s};
  OwampStream::Options opt1;
  opt1.port = 861;
  OwampStream::Options opt2;
  opt2.port = 862;
  OwampStream forward{net.a, net.b, opt1};
  OwampStream reverse{net.b, net.a, opt2};
  forward.start();
  reverse.start();
  s.simulator.runFor(10_s);
  forward.stop();
  reverse.stop();
  s.simulator.runFor(1_s);
  EXPECT_EQ(forward.report().lossFraction, 0.0);
  EXPECT_EQ(reverse.report().lossFraction, 0.0);
  EXPECT_GT(forward.report().received, 90u);
  EXPECT_GT(reverse.report().received, 90u);
}

}  // namespace
}  // namespace scidmz::perfsonar
