// Integration: the full Figure 2 pipeline — mesh measurements into the
// archive, rendered as a dashboard, with a soft failure detected.
#include "perfsonar/mesh.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "../net/test_util.hpp"
#include "perfsonar/alerts.hpp"
#include "perfsonar/dashboard.hpp"

namespace scidmz::perfsonar {
namespace {

using namespace scidmz::sim::literals;
using testutil::Scenario;

/// Three sites in a line: lbl -- wan1 -- anl -- wan2 -- ornl (all 10G).
struct ThreeSiteWan {
  explicit ThreeSiteWan(Scenario& s) {
    auto& core1 = s.topo.addRouter("wan1");
    auto& core2 = s.topo.addRouter("wan2");
    lbl = &s.topo.addHost("ps-lbl", net::Address(198, 129, 0, 1));
    anl = &s.topo.addHost("ps-anl", net::Address(198, 129, 0, 2));
    ornl = &s.topo.addHost("ps-ornl", net::Address(198, 129, 0, 3));
    net::LinkParams wan;
    wan.rate = 10_Gbps;
    wan.delay = 10_ms;
    wan.mtu = 9000_B;
    s.topo.connect(*lbl, core1, wan);
    lblLink = s.topo.links().back().get();
    s.topo.connect(core1, core2, wan);
    s.topo.connect(core2, *anl, wan);
    s.topo.connect(core2, *ornl, wan);
    s.topo.computeRoutes();
  }
  net::Host* lbl;
  net::Host* anl;
  net::Host* ornl;
  net::Link* lblLink;
};

MeshRunner::Options fastOptions() {
  MeshRunner::Options options;
  options.lossReportInterval = 5_s;
  options.throughputTestGap = 1_s;
  // Long enough that slow start amortizes and a clean 10G path rates
  // "good" against a 9 Gbps expectation.
  options.throughputTestDuration = 5_s;
  options.owamp.interval = 10_ms;
  return options;
}

TEST(Mesh, PopulatesArchiveForAllPairs) {
  Scenario s;
  ThreeSiteWan wan{s};
  MeasurementArchive archive;
  MeshRunner mesh{s.ctx,
                  {{"lbl", wan.lbl}, {"anl", wan.anl}, {"ornl", wan.ornl}},
                  archive,
                  fastOptions()};
  mesh.start();
  s.simulator.runFor(60_s);
  mesh.stop();

  // 6 ordered pairs x loss + delay series, plus throughput for the pairs
  // the round-robin reached.
  EXPECT_GE(archive.seriesCount(), 12u);
  for (const char* src : {"lbl", "anl", "ornl"}) {
    for (const char* dst : {"lbl", "anl", "ornl"}) {
      if (std::string{src} == dst) continue;
      EXPECT_TRUE(archive.latest(src, dst, kMetricLossFraction).has_value())
          << src << "->" << dst;
    }
  }
}

TEST(Mesh, HealthyMeshRendersAllGood) {
  Scenario s;
  ThreeSiteWan wan{s};
  MeasurementArchive archive;
  MeshRunner mesh{s.ctx,
                  {{"lbl", wan.lbl}, {"anl", wan.anl}, {"ornl", wan.ornl}},
                  archive,
                  fastOptions()};
  mesh.start();
  s.simulator.runFor(150_s);  // enough round-robin laps for all 6 pairs
  mesh.stop();

  Dashboard dash{archive, mesh.siteNames(), 9000.0};
  EXPECT_EQ(dash.countAtRating(CellRating::kBad), 0);
  EXPECT_EQ(dash.countAtRating(CellRating::kNoData), 0);
  EXPECT_GE(dash.countAtRating(CellRating::kGood), 4);
}

TEST(Mesh, FailingLineCardShowsUpOnDashboardAndAlerts) {
  Scenario s;
  ThreeSiteWan wan{s};
  MeasurementArchive archive;
  MeshRunner mesh{s.ctx,
                  {{"lbl", wan.lbl}, {"anl", wan.anl}, {"ornl", wan.ornl}},
                  archive,
                  fastOptions()};
  // The paper's failing line card sits on LBL's uplink, outbound.
  wan.lblLink->setLossModel(0, std::make_unique<net::PeriodicLoss>(2000));
  mesh.start();

  // Run the detector the way a deployment does: re-evaluate after every
  // archive update rather than sampling one arbitrary final interval.
  SoftFailureDetector detector{archive};
  for (int i = 0; i < 30; ++i) {
    s.simulator.runFor(5_s);
    detector.evaluate(s.simulator.now());
  }
  mesh.stop();

  // Both LBL-sourced directions degrade; paths not crossing the bad card
  // stay clean.
  Dashboard dash{archive, mesh.siteNames(), 9000.0};
  EXPECT_NE(dash.throughputRating("lbl", "anl"), CellRating::kGood);
  EXPECT_EQ(dash.throughputRating("anl", "ornl"), CellRating::kGood);

  EXPECT_TRUE(detector.hasActiveAlert("lbl", "anl"));
  EXPECT_FALSE(detector.hasActiveAlert("anl", "ornl"));
}

}  // namespace
}  // namespace scidmz::perfsonar
