#include "perfsonar/archive.hpp"

#include <gtest/gtest.h>

namespace scidmz::perfsonar {
namespace {

using namespace scidmz::sim::literals;

sim::SimTime at(std::int64_t seconds) {
  return sim::SimTime::zero() + sim::Duration::seconds(seconds);
}

TEST(Archive, RecordAndLatest) {
  MeasurementArchive archive;
  archive.record("lbl", "anl", kMetricThroughputMbps, at(1), 9200.0);
  archive.record("lbl", "anl", kMetricThroughputMbps, at(2), 9400.0);

  const auto latest = archive.latest("lbl", "anl", kMetricThroughputMbps);
  ASSERT_TRUE(latest.has_value());
  EXPECT_DOUBLE_EQ(latest->value, 9400.0);
  EXPECT_EQ(latest->at, at(2));
}

TEST(Archive, MissingSeriesIsEmpty) {
  MeasurementArchive archive;
  EXPECT_EQ(archive.series("x", "y", kMetricLossFraction), nullptr);
  EXPECT_FALSE(archive.latest("x", "y", kMetricLossFraction).has_value());
  EXPECT_FALSE(archive.meanSince("x", "y", kMetricLossFraction, at(0)).has_value());
}

TEST(Archive, DirectionsAreDistinct) {
  MeasurementArchive archive;
  archive.record("a", "b", kMetricLossFraction, at(1), 0.5);
  archive.record("b", "a", kMetricLossFraction, at(1), 0.0);
  EXPECT_DOUBLE_EQ(archive.latest("a", "b", kMetricLossFraction)->value, 0.5);
  EXPECT_DOUBLE_EQ(archive.latest("b", "a", kMetricLossFraction)->value, 0.0);
}

TEST(Archive, MeanSinceFiltersByTime) {
  MeasurementArchive archive;
  for (int i = 1; i <= 10; ++i) {
    archive.record("a", "b", kMetricThroughputMbps, at(i), 100.0 * i);
  }
  const auto recent = archive.meanSince("a", "b", kMetricThroughputMbps, at(9));
  ASSERT_TRUE(recent.has_value());
  EXPECT_DOUBLE_EQ(*recent, 950.0);  // samples at t=9 (900) and t=10 (1000)
}

TEST(Archive, BaselineMeanUsesFirstSamples) {
  MeasurementArchive archive;
  archive.record("a", "b", kMetricThroughputMbps, at(1), 9000.0);
  archive.record("a", "b", kMetricThroughputMbps, at(2), 9200.0);
  archive.record("a", "b", kMetricThroughputMbps, at(3), 100.0);  // regression
  const auto baseline = archive.baselineMean("a", "b", kMetricThroughputMbps, 2);
  ASSERT_TRUE(baseline.has_value());
  EXPECT_DOUBLE_EQ(*baseline, 9100.0);
}

TEST(Archive, KeysEnumerateAllSeries) {
  MeasurementArchive archive;
  archive.record("a", "b", kMetricLossFraction, at(1), 0.0);
  archive.record("a", "b", kMetricThroughputMbps, at(1), 1.0);
  archive.record("b", "a", kMetricLossFraction, at(1), 0.0);
  EXPECT_EQ(archive.seriesCount(), 3u);
  EXPECT_EQ(archive.keys().size(), 3u);
}

}  // namespace
}  // namespace scidmz::perfsonar
