#include "vc/roce.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "../net/test_util.hpp"

namespace scidmz::vc {
namespace {

using namespace scidmz::sim::literals;
using testutil::Scenario;

struct RocePath {
  explicit RocePath(Scenario& s, net::LinkParams params)
      : a(s.topo.addHost("a", net::Address(10, 0, 0, 1))),
        b(s.topo.addHost("b", net::Address(10, 0, 0, 2))),
        link(s.topo.connect(a, b, params)) {
    s.topo.computeRoutes();
  }
  net::Host& a;
  net::Host& b;
  net::Link& link;
};

net::LinkParams circuit40G() {
  net::LinkParams lp;
  lp.rate = 40_Gbps;
  lp.delay = 10_ms;
  lp.mtu = 9000_B;
  return lp;
}

TEST(Roce, FillsGuaranteedCircuit) {
  Scenario s;
  RocePath path{s, circuit40G()};
  RoceTransfer::Options options;
  options.rate = 40_Gbps;
  RoceTransfer transfer{path.a, path.b, 5_GB, options};
  RoceResult seen;
  transfer.onComplete = [&seen](const RoceResult& r) { seen = r; };
  transfer.start();
  s.simulator.runFor(60_s);

  ASSERT_TRUE(seen.completed);
  // Kissel et al.: 39.5 Gbps on a 40GE host. Pacing + headers cost a bit.
  EXPECT_GT(seen.goodput.toGbps(), 38.0);
  EXPECT_EQ(seen.bytesMoved, 5_GB);
  EXPECT_EQ(seen.bytesWasted, 0_B);
}

TEST(Roce, CpuCostFiftyTimesBelowTcp) {
  Scenario s;
  RocePath path{s, circuit40G()};
  RoceTransfer::Options options;
  options.rate = 40_Gbps;
  RoceTransfer transfer{path.a, path.b, 5_GB, options};
  transfer.start();
  s.simulator.runFor(60_s);
  ASSERT_TRUE(transfer.finished());
  const double roceCpu = transfer.result().cpuUnits;
  const double tcpCpu = tcpCpuUnits(5_GB);
  EXPECT_NEAR(tcpCpu / roceCpu, 50.0, 0.5);
}

TEST(Roce, CollapsesUnderLossWithoutCircuit) {
  // The same transfer with a little random loss: go-back-N wastes huge
  // amounts of the pipe (this is why RoCE needs a loss-free circuit).
  Scenario s;
  RocePath path{s, circuit40G()};
  path.link.setLossModel(0, std::make_unique<net::RandomLoss>(1e-4, s.rng.fork(21)));
  RoceTransfer::Options options;
  options.rate = 40_Gbps;
  RoceTransfer transfer{path.a, path.b, 2_GB, options};
  transfer.start();
  s.simulator.runFor(300_s);

  ASSERT_TRUE(transfer.finished());
  ASSERT_TRUE(transfer.result().completed);
  EXPECT_GT(transfer.result().bytesWasted, 1_GB);         // massive rewinding
  EXPECT_LT(transfer.result().goodput.toGbps(), 20.0);    // well under the pipe
}

TEST(Roce, DeadPathTimesOutIncomplete) {
  Scenario s;
  RocePath path{s, circuit40G()};
  path.link.setLossModel(0, std::make_unique<net::PeriodicLoss>(1));
  RoceTransfer::Options options;
  options.rate = 40_Gbps;
  options.progressTimeout = 2_s;
  RoceTransfer transfer{path.a, path.b, 100_MB, options};
  transfer.start();
  s.simulator.runFor(60_s);

  ASSERT_TRUE(transfer.finished());
  EXPECT_FALSE(transfer.result().completed);
  EXPECT_EQ(transfer.result().bytesMoved, 0_B);
}

TEST(Roce, TailLossRecoveredByRewind) {
  Scenario s;
  RocePath path{s, circuit40G()};
  RoceTransfer::Options options;
  options.rate = 40_Gbps;
  RoceTransfer transfer{path.a, path.b, 100_MB, options};
  // Drop exactly one packet near the end of the stream: after ~11,000
  // 4 KiB messages. PeriodicLoss(11000) drops message ~11000 of ~12200.
  path.link.setLossModel(0, std::make_unique<net::PeriodicLoss>(11000));
  transfer.start();
  s.simulator.runFor(60_s);

  ASSERT_TRUE(transfer.finished());
  EXPECT_TRUE(transfer.result().completed);
  EXPECT_GT(transfer.result().bytesWasted, 0_B);
}

}  // namespace
}  // namespace scidmz::vc
