#include "vc/oscars.hpp"

#include <gtest/gtest.h>

#include "../net/test_util.hpp"
#include "net/host.hpp"

namespace scidmz::vc {
namespace {

using namespace scidmz::sim::literals;
using testutil::Scenario;

sim::SimTime at(std::int64_t seconds) {
  return sim::SimTime::zero() + sim::Duration::seconds(seconds);
}

/// h1 - sw - h2 with a 10G core link, plus h3 on the same switch.
struct VcTopo {
  explicit VcTopo(Scenario& s)
      : h1(s.topo.addHost("h1", net::Address(10, 0, 0, 1))),
        h2(s.topo.addHost("h2", net::Address(10, 0, 0, 2))),
        h3(s.topo.addHost("h3", net::Address(10, 0, 0, 3))),
        sw(s.topo.addSwitch("sw")) {
    net::LinkParams lp;
    lp.rate = 10_Gbps;
    s.topo.connect(h1, sw, lp);
    s.topo.connect(h2, sw, lp);
    s.topo.connect(h3, sw, lp);
    s.topo.computeRoutes();
  }
  net::Host& h1;
  net::Host& h2;
  net::Host& h3;
  net::SwitchDevice& sw;
};

TEST(Oscars, ReservesAlongRoutedPath) {
  Scenario s;
  VcTopo topo{s};
  OscarsService oscars{s.topo};
  const auto id = oscars.reserve(topo.h1.address(), topo.h2.address(), 4_Gbps, at(0), at(100));
  ASSERT_TRUE(id.has_value());
  const auto* res = oscars.find(*id);
  ASSERT_NE(res, nullptr);
  EXPECT_EQ(res->path.size(), 2u);  // h1-sw, sw-h2
  EXPECT_TRUE(oscars.activeAt(*id, at(50)));
  EXPECT_FALSE(oscars.activeAt(*id, at(100)));
}

TEST(Oscars, AdmissionControlRejectsOversubscription) {
  Scenario s;
  VcTopo topo{s};
  OscarsService oscars{s.topo};
  ASSERT_TRUE(oscars.reserve(topo.h1.address(), topo.h2.address(), 7_Gbps, at(0), at(100)));
  // Second circuit sharing the h1-sw link cannot get another 7G.
  EXPECT_FALSE(
      oscars.reserve(topo.h1.address(), topo.h3.address(), 7_Gbps, at(50), at(150)).has_value());
  // But 3G fits.
  EXPECT_TRUE(
      oscars.reserve(topo.h1.address(), topo.h3.address(), 3_Gbps, at(50), at(150)).has_value());
}

TEST(Oscars, DisjointTimeWindowsShareCapacity) {
  Scenario s;
  VcTopo topo{s};
  OscarsService oscars{s.topo};
  ASSERT_TRUE(oscars.reserve(topo.h1.address(), topo.h2.address(), 9_Gbps, at(0), at(100)));
  EXPECT_TRUE(
      oscars.reserve(topo.h1.address(), topo.h2.address(), 9_Gbps, at(100), at(200)).has_value());
}

TEST(Oscars, MidWindowOverlapDetected) {
  // Reservation B starts inside A's window: the checkpoint at B.start must
  // catch the combined demand even though B.start != A.start.
  Scenario s;
  VcTopo topo{s};
  OscarsService oscars{s.topo};
  ASSERT_TRUE(oscars.reserve(topo.h1.address(), topo.h2.address(), 6_Gbps, at(50), at(150)));
  EXPECT_FALSE(
      oscars.reserve(topo.h1.address(), topo.h2.address(), 6_Gbps, at(0), at(100)).has_value());
  EXPECT_TRUE(
      oscars.reserve(topo.h1.address(), topo.h2.address(), 6_Gbps, at(0), at(50)).has_value());
}

TEST(Oscars, ReleaseReturnsCapacity) {
  Scenario s;
  VcTopo topo{s};
  OscarsService oscars{s.topo};
  const auto id = oscars.reserve(topo.h1.address(), topo.h2.address(), 9_Gbps, at(0), at(100));
  ASSERT_TRUE(id.has_value());
  EXPECT_FALSE(
      oscars.reserve(topo.h1.address(), topo.h2.address(), 9_Gbps, at(0), at(100)).has_value());
  oscars.release(*id);
  EXPECT_TRUE(
      oscars.reserve(topo.h1.address(), topo.h2.address(), 9_Gbps, at(0), at(100)).has_value());
}

TEST(Oscars, ReservableFractionHoldsHeadroom) {
  Scenario s;
  VcTopo topo{s};
  OscarsService oscars{s.topo, 0.5};  // only half of each link reservable
  EXPECT_FALSE(
      oscars.reserve(topo.h1.address(), topo.h2.address(), 6_Gbps, at(0), at(10)).has_value());
  EXPECT_TRUE(
      oscars.reserve(topo.h1.address(), topo.h2.address(), 5_Gbps, at(0), at(10)).has_value());
}

TEST(Oscars, AvailableOnReportsRemaining) {
  Scenario s;
  VcTopo topo{s};
  OscarsService oscars{s.topo};
  const auto id = oscars.reserve(topo.h1.address(), topo.h2.address(), 4_Gbps, at(0), at(100));
  ASSERT_TRUE(id.has_value());
  const auto* res = oscars.find(*id);
  ASSERT_NE(res, nullptr);
  EXPECT_EQ(oscars.availableOn(*res->path[0], at(50)), 6_Gbps);
  EXPECT_EQ(oscars.availableOn(*res->path[0], at(150)), 10_Gbps);
}

TEST(Oscars, RejectsUnroutableAndDegenerate) {
  Scenario s;
  VcTopo topo{s};
  OscarsService oscars{s.topo};
  EXPECT_FALSE(oscars
                   .reserve(topo.h1.address(), net::Address(99, 9, 9, 9), 1_Gbps, at(0), at(10))
                   .has_value());
  EXPECT_FALSE(
      oscars.reserve(topo.h1.address(), topo.h2.address(), 1_Gbps, at(10), at(10)).has_value());
  EXPECT_FALSE(oscars
                   .reserve(topo.h1.address(), topo.h2.address(), sim::DataRate::zero(), at(0),
                            at(10))
                   .has_value());
}

}  // namespace
}  // namespace scidmz::vc
