#include "vc/openflow.hpp"

#include <gtest/gtest.h>

#include "../net/test_util.hpp"
#include "net/host.hpp"
#include "tcp/connection.hpp"

namespace scidmz::vc {
namespace {

using namespace scidmz::sim::literals;
using testutil::Scenario;

net::FlowKey flowOf(const char* src, const char* dst, std::uint16_t sport, std::uint16_t dport) {
  return net::FlowKey{net::Address::parse(src), net::Address::parse(dst), sport, dport,
                      net::Protocol::kTcp};
}

TEST(FlowTable, TableMissDefault) {
  FlowTable table;
  EXPECT_EQ(table.lookup(flowOf("1.1.1.1", "2.2.2.2", 1, 2)), FlowAction::kToController);
  FlowTable forwardMiss{FlowAction::kForward};
  EXPECT_EQ(forwardMiss.lookup(flowOf("1.1.1.1", "2.2.2.2", 1, 2)), FlowAction::kForward);
}

TEST(FlowTable, HighestPriorityWins) {
  FlowTable table;
  FlowRule allow;
  allow.priority = 10;
  allow.match.src = net::Prefix::parse("10.0.0.0/8");
  allow.action = FlowAction::kBypassFirewall;
  table.add(allow);
  FlowRule block;
  block.priority = 100;
  block.match.src = net::Prefix::parse("10.0.0.5/32");
  block.action = FlowAction::kDrop;
  table.add(block);

  EXPECT_EQ(table.lookup(flowOf("10.0.0.5", "2.2.2.2", 1, 2)), FlowAction::kDrop);
  EXPECT_EQ(table.lookup(flowOf("10.0.0.6", "2.2.2.2", 1, 2)), FlowAction::kBypassFirewall);
}

TEST(FlowTable, WildcardsAndExactFields) {
  FlowTable table{FlowAction::kForward};
  FlowRule rule;
  rule.priority = 1;
  rule.match.dstPort = 2811;
  rule.match.proto = net::Protocol::kTcp;
  rule.action = FlowAction::kBypassFirewall;
  table.add(rule);

  EXPECT_EQ(table.lookup(flowOf("1.1.1.1", "2.2.2.2", 999, 2811)), FlowAction::kBypassFirewall);
  EXPECT_EQ(table.lookup(flowOf("1.1.1.1", "2.2.2.2", 999, 22)), FlowAction::kForward);
}

TEST(FlowTable, RemoveAndHitCounting) {
  FlowTable table;
  FlowRule rule;
  rule.priority = 1;
  rule.action = FlowAction::kDrop;
  const auto handle = table.add(rule);
  table.lookup(flowOf("1.1.1.1", "2.2.2.2", 1, 2));
  table.lookup(flowOf("3.3.3.3", "4.4.4.4", 5, 6));
  ASSERT_NE(table.rule(handle), nullptr);
  EXPECT_EQ(table.rule(handle)->hits, 2u);
  table.remove(handle);
  EXPECT_EQ(table.ruleCount(), 0u);
  EXPECT_EQ(table.lookup(flowOf("1.1.1.1", "2.2.2.2", 1, 2)), FlowAction::kToController);
}

/// outside --10G-- firewall --10G-- server, with IDS + controller.
struct SdnSite {
  explicit SdnSite(Scenario& s)
      : outside(s.topo.addHost("outside", net::Address(198, 0, 0, 1))),
        server(s.topo.addHost("server", net::Address(10, 0, 0, 1))),
        fw(s.topo.addFirewall("fw", net::FirewallProfile::enterprise10G())),
        controller(fw, ids) {
    net::LinkParams lp;
    lp.rate = 10_Gbps;
    lp.delay = 1_ms;
    s.topo.connect(outside, fw, lp);
    s.topo.connect(fw, server, lp);
    s.topo.computeRoutes();
  }
  net::Host& outside;
  net::Host& server;
  net::FirewallDevice& fw;
  net::IntrusionDetectionSystem ids;
  BypassController controller;
};

TEST(BypassController, VetsFlowThenInstallsBypass) {
  Scenario s;
  SdnSite site{s};
  site.ids.setVettingPacketCount(5);

  tcp::TcpConfig cfg;
  tcp::TcpListener listener{site.server, 5001, cfg};
  tcp::TcpConnection client{site.outside, site.server.address(), 5001, cfg};
  client.onEstablished = [&client] { client.sendData(20_MB); };
  bool done = false;
  client.onSendComplete = [&done] { done = true; };
  client.start();
  s.simulator.runFor(120_s);

  EXPECT_TRUE(done);
  EXPECT_EQ(site.controller.bypassesInstalled(), 2u);  // both directions vetted
  EXPECT_GE(site.controller.table().ruleCount(), 2u);
  // After vetting, the data flood bypasses the engines: the firewall's
  // inspected count stays tiny relative to the 20 MB of segments.
  EXPECT_LT(site.fw.firewallStats().inspected, 200u);
}

TEST(BypassController, FlaggedSourceGetsDropped) {
  Scenario s;
  SdnSite site{s};
  site.ids.addWatchlistPrefix(net::Prefix::parse("198.0.0.0/24"));

  tcp::TcpConfig cfg;
  tcp::TcpListener listener{site.server, 5001, cfg};
  tcp::TcpConnection client{site.outside, site.server.address(), 5001, cfg};
  bool established = false;
  client.onEstablished = [&established] { established = true; };
  client.start();
  s.simulator.runFor(10_s);

  // The watchlisted SYN is observed, a deny is installed, and the
  // handshake never completes (policy drops at the firewall).
  EXPECT_FALSE(established);
  EXPECT_GE(site.controller.dropsInstalled(), 1u);
  EXPECT_GT(site.fw.firewallStats().dropsPolicy, 0u);
  EXPECT_EQ(site.controller.table().lookup(
                net::FlowKey{site.outside.address(), site.server.address(), 1, 2,
                             net::Protocol::kTcp}),
            FlowAction::kDrop);
}

TEST(BypassController, CleanFlowUnaffectedByOthersBlock) {
  Scenario s;
  SdnSite site{s};
  site.ids.addWatchlistPrefix(net::Prefix::parse("198.0.0.99/32"));  // someone else
  site.ids.setVettingPacketCount(3);

  tcp::TcpConfig cfg;
  tcp::TcpListener listener{site.server, 5001, cfg};
  tcp::TcpConnection client{site.outside, site.server.address(), 5001, cfg};
  client.onEstablished = [&client] { client.sendData(1_MB); };
  bool done = false;
  client.onSendComplete = [&done] { done = true; };
  client.start();
  s.simulator.runFor(60_s);

  EXPECT_TRUE(done);
  EXPECT_EQ(site.controller.dropsInstalled(), 0u);
}

}  // namespace
}  // namespace scidmz::vc
