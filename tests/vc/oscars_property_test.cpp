// Property test: under a random mix of reservation requests and releases,
// the bandwidth calendar never oversubscribes any link at any instant.
#include <gtest/gtest.h>

#include <vector>

#include "../net/test_util.hpp"
#include "net/host.hpp"
#include "vc/oscars.hpp"

namespace scidmz::vc {
namespace {

using namespace scidmz::sim::literals;
using testutil::Scenario;

sim::SimTime at(std::int64_t seconds) {
  return sim::SimTime::zero() + sim::Duration::seconds(seconds);
}

class OscarsFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OscarsFuzz, NeverOversubscribesAnyLink) {
  Scenario s;
  // Dumbbell: 4 hosts per side around a constrained core link.
  auto& left = s.topo.addSwitch("left");
  auto& right = s.topo.addSwitch("right");
  net::LinkParams core;
  core.rate = 10_Gbps;
  s.topo.connect(left, right, core);
  std::vector<net::Host*> hosts;
  net::LinkParams edge;
  edge.rate = 10_Gbps;
  for (int i = 0; i < 4; ++i) {
    auto& hl = s.topo.addHost("l" + std::to_string(i),
                              net::Address(10, 0, 1, static_cast<std::uint8_t>(i + 1)));
    s.topo.connect(hl, left, edge);
    hosts.push_back(&hl);
    auto& hr = s.topo.addHost("r" + std::to_string(i),
                              net::Address(10, 0, 2, static_cast<std::uint8_t>(i + 1)));
    s.topo.connect(hr, right, edge);
    hosts.push_back(&hr);
  }
  s.topo.computeRoutes();

  OscarsService oscars{s.topo, 0.9};
  sim::Rng rng{GetParam()};
  std::vector<ReservationId> live;

  for (int step = 0; step < 400; ++step) {
    if (!live.empty() && rng.chance(0.3)) {
      const auto idx = rng.below(live.size());
      oscars.release(live[idx]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    } else {
      auto* a = hosts[rng.below(hosts.size())];
      auto* b = hosts[rng.below(hosts.size())];
      if (a == b) continue;
      const auto start = at(static_cast<std::int64_t>(rng.below(200)));
      const auto end = start + sim::Duration::seconds(1 + static_cast<std::int64_t>(rng.below(100)));
      const auto bw = sim::DataRate::megabitsPerSecond(100 + rng.below(4000));
      const auto id = oscars.reserve(a->address(), b->address(), bw, start, end);
      if (id) live.push_back(*id);
    }

    // Invariant: at a sample of instants, no link is oversubscribed.
    for (const auto& link : s.topo.links()) {
      for (const std::int64_t t : {0, 50, 100, 150, 250}) {
        const auto reserved = oscars.reservedOn(*link, at(t));
        const auto cap = static_cast<double>(link->rate().bps()) * 0.9;
        ASSERT_LE(static_cast<double>(reserved.bps()), cap + 1.0)
            << "link oversubscribed at t=" << t << " step " << step;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OscarsFuzz, ::testing::Values(1u, 7u, 1234u, 987654321u));

}  // namespace
}  // namespace scidmz::vc
