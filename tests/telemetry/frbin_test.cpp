// Binary flight-recorder export (scidmz.frbin.v1): round-trips to the
// exact JSONL the source recorder would emit, rejects malformed blobs, and
// is substantially smaller than the JSONL for realistic event mixes.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "telemetry/flight_recorder.hpp"

namespace scidmz::telemetry {
namespace {

FlightEvent makeEvent(std::int64_t tNs, std::uint64_t pkt, std::uint32_t point,
                      FlightEventKind kind) {
  FlightEvent e;
  e.at = sim::SimTime::fromNs(tNs);
  e.packetId = pkt;
  e.aux = pkt * 1448;
  e.aux2 = 4096 + (pkt % 64) * 1500;
  e.flow.src = 0x0a000001;
  e.flow.dst = 0x0a000002;
  e.flow.srcPort = static_cast<std::uint16_t>(40000 + pkt % 16);
  e.flow.dstPort = 5001;
  e.flow.proto = 6;
  e.bytes = 1500;
  e.point = point;
  e.kind = kind;
  return e;
}

FlightRecorder populated(std::size_t events) {
  FlightRecorder rec(1 << 16);
  const std::uint32_t p0 = rec.internPoint("dtn0/if0");
  const std::uint32_t p1 = rec.internPoint("sw0/egress");
  for (std::size_t i = 0; i < events; ++i) {
    const auto kind = i % 97 == 0    ? FlightEventKind::kDrop
                      : i % 3 == 0   ? FlightEventKind::kDequeue
                      : i % 3 == 1   ? FlightEventKind::kEnqueue
                                     : FlightEventKind::kDeliver;
    rec.record(makeEvent(static_cast<std::int64_t>(1000 + i * 1200), i,
                         i % 2 == 0 ? p0 : p1, kind));
  }
  return rec;
}

std::string jsonlOf(const FlightRecorder& rec) {
  std::ostringstream out;
  rec.exportJsonl(out);
  return out.str();
}

TEST(FrbinExport, RoundTripsToIdenticalJsonl) {
  const FlightRecorder rec = populated(5000);
  std::ostringstream bin;
  rec.exportBinary(bin);

  FlightRecorder loaded(4);  // capacity is raised by the import
  std::istringstream in(bin.str());
  ASSERT_TRUE(loaded.importBinary(in));
  EXPECT_EQ(loaded.size(), rec.size());
  EXPECT_EQ(loaded.pointCount(), rec.pointCount());
  EXPECT_EQ(jsonlOf(loaded), jsonlOf(rec));
}

TEST(FrbinExport, IsMuchSmallerThanJsonl) {
  const FlightRecorder rec = populated(5000);
  std::ostringstream bin;
  rec.exportBinary(bin);
  const std::size_t binBytes = bin.str().size();
  const std::size_t jsonBytes = jsonlOf(rec).size();
  ASSERT_GT(binBytes, 0u);
  // The satellite target is >= 8x on the soft_failure_linecard trace; this
  // synthetic mix should clear the same bar.
  EXPECT_GE(jsonBytes / binBytes, 8u)
      << "jsonl " << jsonBytes << " bytes vs frbin " << binBytes << " bytes";
}

TEST(FrbinExport, RejectsGarbageAndTruncation) {
  FlightRecorder rec(16);
  std::istringstream garbage("not a frbin blob at all");
  EXPECT_FALSE(rec.importBinary(garbage));
  EXPECT_EQ(rec.size(), 0u);

  const FlightRecorder source = populated(100);
  std::ostringstream bin;
  source.exportBinary(bin);
  const std::string whole = bin.str();
  std::istringstream truncated(whole.substr(0, whole.size() / 2));
  EXPECT_FALSE(rec.importBinary(truncated));
  EXPECT_EQ(rec.size(), 0u);
}

TEST(FrbinExport, EmptyRecorderRoundTrips) {
  FlightRecorder rec(8);
  std::ostringstream bin;
  rec.exportBinary(bin);
  FlightRecorder loaded(8);
  std::istringstream in(bin.str());
  ASSERT_TRUE(loaded.importBinary(in));
  EXPECT_EQ(loaded.size(), 0u);
  EXPECT_EQ(jsonlOf(loaded), jsonlOf(rec));
}

}  // namespace
}  // namespace scidmz::telemetry
