// Tests for causal span tracing: tracer lifecycle, parent/child nesting,
// annotations, flight-recorder correlation, both exporters (JSONL and
// Chrome trace), determinism of the serialized form, and the
// FlightRecorder::forEachInWindow helper the correlator rides on.
#include "telemetry/span.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "telemetry/flight_recorder.hpp"

namespace scidmz::telemetry {
namespace {

sim::SimTime at(std::int64_t ns) { return sim::SimTime::fromNs(ns); }

/// Tracer is non-copyable; enable in a constructor instead of a factory.
struct TestTracer : Tracer {
  TestTracer() { enable(); }
};

TEST(Tracer, DisabledByDefaultWithoutEnvOrProcessFlag) {
  // The test binary runs without SCIDMZ_TRACE; the process flag is off.
  Tracer t;
  EXPECT_FALSE(t.enabled());
}

TEST(Tracer, IdsAreSequentialAndSimTimeOnly) {
  TestTracer t;
  const SpanId a = t.begin(at(100), "a", "flow");
  const SpanId b = t.begin(at(200), "b", "tcp.phase", a);
  EXPECT_EQ(a.value, 1u);
  EXPECT_EQ(b.value, 2u);
  EXPECT_EQ(t.spansEmitted(), 2u);
  EXPECT_EQ(t.openCount(), 2u);
  t.end(b, at(300));
  t.end(a, at(400));
  EXPECT_EQ(t.openCount(), 0u);
  const Tracer::Span* span = t.find(a);
  ASSERT_NE(span, nullptr);
  EXPECT_EQ(span->t0.ns(), 100);
  EXPECT_EQ(span->t1.ns(), 400);
  EXPECT_FALSE(span->open);
}

TEST(Tracer, EndIsIdempotentAndClampsReversedClose) {
  TestTracer t;
  const SpanId a = t.begin(at(500), "a", "flow");
  t.end(a, at(100));  // close before open: clamped to t0
  EXPECT_EQ(t.find(a)->t1.ns(), 500);
  t.end(a, at(900));  // already closed: no-op
  EXPECT_EQ(t.find(a)->t1.ns(), 500);
  t.end(SpanId{}, at(900));     // invalid id: no-op
  t.end(SpanId{99}, at(900));   // unknown id: no-op
}

TEST(Tracer, AnnotateAndBumpKeepInsertionOrder) {
  TestTracer t;
  const SpanId a = t.begin(at(0), "a", "flow");
  t.annotate(a, "fidelity", "packet");
  t.annotate(a, "streams", std::uint64_t{4});
  t.annotate(a, "rate", 2.5);
  t.bump(a, "rtos", 1);
  t.bump(a, "rtos", 2);
  const auto& args = t.find(a)->args;
  ASSERT_EQ(args.size(), 4u);
  EXPECT_EQ(args[0].first, "fidelity");
  EXPECT_EQ(args[0].second, "\"packet\"");
  EXPECT_EQ(args[1].second, "4");
  EXPECT_EQ(args[2].first, "rate");
  EXPECT_EQ(args[3].first, "rtos");
  EXPECT_EQ(args[3].second, "3");
}

TEST(Tracer, CorrelateCountsMatchingFlowEventsInWindow) {
  FlightRecorder rec(16);
  const std::uint32_t point = rec.internPoint("sw0/if0");
  auto record = [&](std::int64_t ns, FlightEventKind kind, std::uint32_t src, std::uint32_t dst,
                    std::uint64_t depth = 0) {
    FlightEvent ev;
    ev.at = at(ns);
    ev.kind = kind;
    ev.flow.src = src;
    ev.flow.dst = dst;
    ev.aux2 = depth;
    ev.point = point;
    rec.record(ev);
  };
  record(50, FlightEventKind::kDrop, 1, 2);        // before window
  record(150, FlightEventKind::kDrop, 1, 2);       // in window, forward
  record(200, FlightEventKind::kLinkLoss, 2, 1);   // in window, reverse
  record(250, FlightEventKind::kRetransmit, 1, 2); // in window
  record(260, FlightEventKind::kEnqueue, 1, 2, 7000);
  record(270, FlightEventKind::kEnqueue, 1, 2, 9000);
  record(280, FlightEventKind::kDrop, 3, 4);       // other flow
  record(900, FlightEventKind::kDrop, 1, 2);       // after window

  TestTracer t;
  const SpanId a = t.begin(at(100), "flow", "flow");
  t.setCorrelationKey(a, 1, 2);
  t.end(a, at(300));
  t.correlate(rec, at(1000));

  const auto& args = t.find(a)->args;
  auto value = [&](const std::string& key) -> std::string {
    for (const auto& [k, v] : args) {
      if (k == key) return v;
    }
    return "<missing>";
  };
  EXPECT_EQ(value("fr_drops"), "1");
  EXPECT_EQ(value("fr_link_loss"), "1");
  EXPECT_EQ(value("fr_retransmits"), "1");
  EXPECT_EQ(value("fr_max_queue_bytes"), "9000");

  // Idempotent: a second correlate must not double-count.
  t.correlate(rec, at(1000));
  EXPECT_EQ(value("fr_drops"), "1");
}

TEST(Tracer, JsonlExportClosesOpenSpansVirtually) {
  TestTracer t;
  const SpanId root = t.begin(at(0), "flow a->b", "flow");
  const SpanId child = t.begin(at(10), "handshake", "tcp.phase", root);
  t.end(child, at(40));

  std::ostringstream out;
  t.exportSpansJsonl(out, at(100), ", \"cell\": 3");
  const std::string text = out.str();
  std::vector<std::string> lines;
  std::istringstream in(text);
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0],
            "{\"schema\": \"scidmz.spans.v1\", \"cell\": 3, \"spans\": 2, \"open\": 1, "
            "\"now_ns\": 100}");
  EXPECT_NE(lines[1].find("\"t1_ns\": 100"), std::string::npos);  // virtual close at now
  EXPECT_NE(lines[1].find("\"open\": true"), std::string::npos);
  EXPECT_NE(lines[2].find("\"parent\": 1"), std::string::npos);
  EXPECT_NE(lines[2].find("\"open\": false"), std::string::npos);

  // Byte-determinism: exporting the same tracer twice is byte-identical.
  std::ostringstream again;
  t.exportSpansJsonl(again, at(100), ", \"cell\": 3");
  EXPECT_EQ(text, again.str());
}

TEST(Tracer, ChromeTraceGroupsTracksByRootSpan) {
  TestTracer t;
  const SpanId r1 = t.begin(at(0), "flow a->b", "flow");
  const SpanId r2 = t.begin(at(0), "flow c->d", "flow");
  (void)t.begin(at(10), "handshake", "tcp.phase", r1);
  (void)t.begin(at(10), "handshake", "tcp.phase", r2);

  std::ostringstream out;
  t.exportChromeTrace(out, at(1000));
  const std::string text = out.str();
  // Two thread_name metadata records, one per root track.
  std::size_t metas = 0;
  for (std::size_t p = 0; (p = text.find("thread_name", p)) != std::string::npos; ++p) ++metas;
  EXPECT_EQ(metas, 2u);
  // Children inherit their root's tid.
  EXPECT_NE(text.find("\"tid\": 1, \"name\": \"handshake\""), std::string::npos);
  EXPECT_NE(text.find("\"tid\": 2, \"name\": \"handshake\""), std::string::npos);
  // Microsecond timestamps with sub-ns fidelity kept as decimals.
  EXPECT_NE(text.find("\"ts\": 0.010"), std::string::npos);
}

// --- FlightRecorder::forEachInWindow -------------------------------------

FlightEvent eventAt(std::int64_t ns, std::uint64_t id) {
  FlightEvent ev;
  ev.at = at(ns);
  ev.packetId = id;
  return ev;
}

TEST(FlightRecorderWindow, SelectsClosedWindowOldestFirst) {
  FlightRecorder rec(8);  // not full: head at 0
  for (std::uint64_t i = 0; i < 5; ++i) rec.record(eventAt(static_cast<std::int64_t>(i) * 100, i));
  std::vector<std::uint64_t> ids;
  rec.forEachInWindow(at(100), at(300), [&](const FlightEvent& e) { ids.push_back(e.packetId); });
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{1, 2, 3}));  // [t0, t1] inclusive
}

TEST(FlightRecorderWindow, StaysChronologicalAcrossRingWrap) {
  FlightRecorder rec(4);
  // 7 events into a 4-slot ring: retained window is ids 3..6, with the
  // physical ring wrapped (head mid-buffer). Oldest-first must hold.
  for (std::uint64_t i = 0; i < 7; ++i) rec.record(eventAt(static_cast<std::int64_t>(i) * 100, i));
  ASSERT_EQ(rec.overwritten(), 3u);

  std::vector<std::uint64_t> all;
  rec.forEachInWindow(at(0), at(10'000), [&](const FlightEvent& e) { all.push_back(e.packetId); });
  EXPECT_EQ(all, (std::vector<std::uint64_t>{3, 4, 5, 6}));

  std::vector<std::uint64_t> window;
  rec.forEachInWindow(at(400), at(500), [&](const FlightEvent& e) { window.push_back(e.packetId); });
  EXPECT_EQ(window, (std::vector<std::uint64_t>{4, 5}));

  // Window entirely before the retained range: nothing (those events are
  // gone, not resurrected).
  std::vector<std::uint64_t> gone;
  rec.forEachInWindow(at(0), at(250), [&](const FlightEvent& e) { gone.push_back(e.packetId); });
  EXPECT_TRUE(gone.empty());
}

TEST(FlightRecorderWindow, FullAndNonFullAgreeOnSameRetainedEvents) {
  // Same final four events reached two ways — exactly-at-capacity (no wrap)
  // and over-capacity (wrapped) — must iterate identically.
  FlightRecorder exact(4);
  for (std::uint64_t i = 3; i < 7; ++i) {
    exact.record(eventAt(static_cast<std::int64_t>(i) * 100, i));
  }
  FlightRecorder wrapped(4);
  for (std::uint64_t i = 0; i < 7; ++i) {
    wrapped.record(eventAt(static_cast<std::int64_t>(i) * 100, i));
  }
  std::vector<std::uint64_t> a;
  std::vector<std::uint64_t> b;
  exact.forEachInWindow(at(300), at(600), [&](const FlightEvent& e) { a.push_back(e.packetId); });
  wrapped.forEachInWindow(at(300), at(600), [&](const FlightEvent& e) { b.push_back(e.packetId); });
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, (std::vector<std::uint64_t>{3, 4, 5, 6}));
}

}  // namespace
}  // namespace scidmz::telemetry
