// Tests for the telemetry layer: registry semantics, flight recorder ring
// behaviour and exporters, sampling via daemon events, end-to-end emit-point
// wiring through an instrumented scenario, loss localization, and the
// determinism guarantee (byte-identical snapshots at any sweep worker count).
#include "telemetry/telemetry.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "net/topology.hpp"
#include "sim/sweep.hpp"
#include "tcp/connection.hpp"
#include "telemetry/diagnosis.hpp"

namespace scidmz::telemetry {
namespace {

using namespace scidmz::sim::literals;

struct Scenario {
  sim::Simulator simulator;
  sim::Rng rng{20130101};
  sim::Logger logger;
  net::Context ctx{simulator, rng, logger};
  net::Topology topo{ctx};
};

TEST(MetricRegistry, CounterCreateOrGetIsStable) {
  MetricRegistry reg;
  std::uint64_t& a = reg.counter("queue/sw0/if0/drops");
  a += 3;
  std::uint64_t& again = reg.counter("queue/sw0/if0/drops");
  EXPECT_EQ(&a, &again);
  EXPECT_EQ(again, 3u);
  EXPECT_EQ(reg.counterValue("queue/sw0/if0/drops"), 3u);
  EXPECT_EQ(reg.counterValue("no/such/counter"), 0u);
}

TEST(MetricRegistry, AddressesSurviveGrowth) {
  MetricRegistry reg;
  std::uint64_t& first = reg.counter("c0");
  for (int i = 1; i < 200; ++i) (void)reg.counter("c" + std::to_string(i));
  first = 7;
  EXPECT_EQ(reg.counterValue("c0"), 7u);
  EXPECT_EQ(reg.counterCount(), 200u);
}

TEST(MetricRegistry, IterationFollowsRegistrationOrder) {
  MetricRegistry reg;
  (void)reg.counter("zebra");
  (void)reg.counter("alpha");
  std::vector<std::string> order;
  reg.forEachCounter([&](const std::string& name, std::uint64_t) { order.push_back(name); });
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "zebra");
  EXPECT_EQ(order[1], "alpha");
}

TEST(FlightRecorder, RingWrapOverwritesOldestAndCounts) {
  FlightRecorder rec(4);
  const std::uint32_t point = rec.internPoint("swA/if0");
  for (std::uint64_t i = 0; i < 6; ++i) {
    FlightEvent ev;
    ev.at = sim::SimTime::zero() + sim::Duration::microseconds(static_cast<std::int64_t>(i));
    ev.packetId = i;
    ev.point = point;
    rec.record(ev);
  }
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.totalRecorded(), 6u);
  EXPECT_EQ(rec.overwritten(), 2u);
  std::vector<std::uint64_t> ids;
  rec.forEach([&](const FlightEvent& e) { ids.push_back(e.packetId); });
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{2, 3, 4, 5}));
}

TEST(FlightRecorder, SetCapacityOnlyBeforeFirstRecord) {
  FlightRecorder rec(4);
  rec.setCapacity(2);
  EXPECT_EQ(rec.capacity(), 2u);
  FlightEvent ev;
  rec.record(ev);
  rec.setCapacity(64);  // ignored: the ring is live
  EXPECT_EQ(rec.capacity(), 2u);
}

TEST(FlightRecorder, JsonlLineFormat) {
  FlightRecorder rec(8);
  FlightEvent ev;
  ev.at = sim::SimTime::zero() + 1500_us;
  ev.packetId = 42;
  ev.aux = 9000;   // sequence
  ev.aux2 = 1234;  // depth
  ev.flow = FlowRef{(10u << 24) | 1u, (10u << 24) | 2u, 49152, 5001, 6};
  ev.bytes = 9040;
  ev.point = rec.internPoint("line-card-router/if1");
  ev.kind = FlightEventKind::kDrop;
  rec.record(ev);

  std::ostringstream out;
  rec.exportJsonl(out);
  EXPECT_EQ(out.str(),
            "{\"t_ns\":1500000,\"ev\":\"drop\",\"point\":\"line-card-router/if1\","
            "\"pkt\":42,\"src\":\"10.0.0.1\",\"dst\":\"10.0.0.2\",\"sport\":49152,"
            "\"dport\":5001,\"proto\":\"tcp\",\"bytes\":9040,\"seq\":9000,"
            "\"depth\":1234}\n");

  std::ostringstream csv;
  rec.exportCsv(csv);
  EXPECT_EQ(csv.str(),
            "t_ns,ev,point,pkt,src,dst,sport,dport,proto,bytes,seq,depth\n"
            "1500000,drop,line-card-router/if1,42,10.0.0.1,10.0.0.2,49152,5001,"
            "tcp,9040,9000,1234\n");
}

TEST(Telemetry, DisabledByDefaultAndFirstEnableWins) {
  sim::Simulator sim;
  Telemetry tel{sim};
  EXPECT_FALSE(tel.enabled());

  TelemetryConfig first;
  first.sampleEvery = 5_ms;
  tel.enable(first);
  EXPECT_TRUE(tel.enabled());

  TelemetryConfig second;
  second.sampleEvery = 99_ms;
  tel.enable(second);  // no-op: emit points already cached the first config
  EXPECT_EQ(tel.config().sampleEvery, 5_ms);
}

TEST(Telemetry, SamplersFireOnCadenceThroughRunFor) {
  sim::Simulator sim;
  Telemetry tel{sim};
  TelemetryConfig config;
  config.sampleEvery = 10_ms;
  tel.enable(config);

  double value = 1.0;
  const SamplerId id = tel.addSampler("probe/x", [&value] { return value++; });
  ASSERT_TRUE(id.valid());
  sim.runFor(95_ms);  // ticks at 10, 20, ..., 90

  const TimeSeries* series = tel.findSeries("probe/x");
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series->size(), 9u);
  EXPECT_DOUBLE_EQ(series->first(), 1.0);
  EXPECT_DOUBLE_EQ(series->last(), 9.0);
  EXPECT_EQ(series->samples().front().at, sim::SimTime::zero() + 10_ms);

  tel.removeSampler(id);
  sim.runFor(50_ms);
  EXPECT_EQ(tel.findSeries("probe/x")->size(), 9u);  // no further samples
}

TEST(Telemetry, SamplingDaemonDoesNotKeepRunAlive) {
  sim::Simulator sim;
  Telemetry tel{sim};
  tel.enable();
  (void)tel.addSampler("probe/idle", [] { return 0.0; });
  int fired = 0;
  sim.schedule(25_ms, [&fired] { ++fired; });
  sim.run();  // must terminate although the sampling daemon re-arms forever
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), sim::SimTime::zero() + 25_ms);
}

TEST(Telemetry, SnapshotSortsByNameAndRoundTripsValues) {
  sim::Simulator sim;
  Telemetry tel{sim};
  tel.enable();
  tel.metrics().counter("zeta/drops") = 4;
  tel.metrics().counter("alpha/lost") = 9;
  tel.metrics().gauge("g/util") = 0.5;

  const TelemetrySnapshot snap = tel.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "alpha/lost");
  EXPECT_EQ(snap.counters[1].name, "zeta/drops");
  EXPECT_EQ(snap.counterValue("alpha/lost"), 9u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].value, 0.5);
  EXPECT_NE(snap.toJson().find("\"schema\":\"scidmz.telemetry.v1\""), std::string::npos);
}

TEST(Diagnosis, LocalizeLossRanksByCountThenName) {
  sim::Simulator sim;
  Telemetry tel{sim};
  tel.enable();
  tel.metrics().counter("link/r->b/lost") = 21;
  tel.metrics().counter("queue/sw/if0/drops") = 21;
  tel.metrics().counter("firewall/fw/drops_policy") = 3;
  tel.metrics().counter("tcp/flow/retransmits") = 40;  // not a loss counter
  tel.metrics().counter("queue/quiet/if1/drops") = 0;  // zero: not a suspect

  const auto diagnosis = localizeLoss(tel.snapshot());
  ASSERT_EQ(diagnosis.suspects.size(), 3u);
  EXPECT_FALSE(diagnosis.clean());
  // Equal counts tie-break by name; "link/..." < "queue/..." lexically.
  EXPECT_EQ(diagnosis.suspects[0].point, "link/r->b/lost");
  EXPECT_EQ(diagnosis.suspects[1].point, "queue/sw/if0/drops");
  EXPECT_EQ(diagnosis.suspects[2].point, "firewall/fw/drops_policy");
  ASSERT_NE(diagnosis.culprit(), nullptr);
  EXPECT_EQ(diagnosis.culprit()->count, 21u);
}

TEST(Diagnosis, CleanSnapshotHasNoCulprit) {
  sim::Simulator sim;
  Telemetry tel{sim};
  const auto diagnosis = localizeLoss(tel.snapshot());
  EXPECT_TRUE(diagnosis.clean());
  EXPECT_EQ(diagnosis.culprit(), nullptr);
}

/// A small lossy path with a bulk TCP flow; telemetry enabled up front.
std::string runInstrumentedCell(int lossPeriod) {
  Scenario s;
  s.ctx.telemetry().enable();
  auto& a = s.topo.addHost("a", net::Address(10, 0, 0, 1));
  auto& r = s.topo.addRouter("r");
  auto& b = s.topo.addHost("b", net::Address(10, 0, 0, 2));
  net::LinkParams lp;
  lp.rate = 1_Gbps;
  lp.delay = 2_ms;
  s.topo.connect(a, r, lp);
  auto& bad = s.topo.connect(r, b, lp);
  bad.setLossModel(0, std::make_unique<net::PeriodicLoss>(lossPeriod));
  s.topo.computeRoutes();

  tcp::TcpConfig cfg;
  tcp::TcpListener listener{b, 5001, cfg};
  tcp::TcpConnection client{a, b.address(), 5001, cfg};
  client.onEstablished = [&client] { client.sendData(sim::DataSize::gigabytes(1)); };
  client.start();
  s.simulator.runFor(500_ms);
  return s.ctx.telemetry().snapshot().toJson();
}

TEST(Telemetry, InstrumentedScenarioWiresEmitPoints) {
  Scenario s;
  s.ctx.telemetry().enable();
  auto& a = s.topo.addHost("a", net::Address(10, 0, 0, 1));
  auto& r = s.topo.addRouter("r");
  auto& b = s.topo.addHost("b", net::Address(10, 0, 0, 2));
  net::LinkParams lp;
  lp.rate = 1_Gbps;
  lp.delay = 2_ms;
  s.topo.connect(a, r, lp);
  auto& bad = s.topo.connect(r, b, lp);
  bad.setLossModel(0, std::make_unique<net::PeriodicLoss>(200));
  s.topo.computeRoutes();

  tcp::TcpConfig cfg;
  tcp::TcpListener listener{b, 5001, cfg};
  tcp::TcpConnection client{a, b.address(), 5001, cfg};
  client.onEstablished = [&client] { client.sendData(sim::DataSize::gigabytes(1)); };
  client.start();
  s.simulator.runFor(500_ms);

  const TelemetrySnapshot snap = s.ctx.telemetry().snapshot();
  EXPECT_GT(snap.counterValue("link/r->b/lost"), 0u);
  EXPECT_GT(snap.counterValue("link/a->r/delivered"), 0u);

  const auto diagnosis = localizeLoss(snap);
  ASSERT_NE(diagnosis.culprit(), nullptr);
  EXPECT_EQ(diagnosis.culprit()->point, "link/r->b/lost");

  // The sender's cwnd probe sampled throughout the run.
  bool sawCwnd = false;
  for (const auto& series : snap.series) {
    if (series.name.size() > 11 &&
        series.name.compare(series.name.size() - 11, 11, "/cwnd_bytes") == 0) {
      sawCwnd = series.sampleCount > 0;
    }
  }
  EXPECT_TRUE(sawCwnd);

  // Retransmits were recorded both as a counter and as flight events.
  EXPECT_GT(snap.flightEventsRecorded, 0u);
  std::uint64_t retransmits = 0;
  for (const auto& c : snap.counters) {
    if (c.name.size() > 12 &&
        c.name.compare(c.name.size() - 12, 12, "/retransmits") == 0) {
      retransmits += c.value;
    }
  }
  EXPECT_GT(retransmits, 0u);
}

TEST(Telemetry, SnapshotJsonIsByteIdenticalAcrossWorkerCounts) {
  const std::vector<int> periods{50, 100, 200, 400};
  auto body = [&periods](sim::SweepCell& cell) {
    return runInstrumentedCell(periods[cell.index]);
  };
  sim::SweepRunner serial{1};
  const auto one = serial.run<std::string>(periods.size(), body, "serial");
  sim::SweepRunner parallel{4};
  const auto four = parallel.run<std::string>(periods.size(), body, "parallel");
  ASSERT_EQ(one.size(), four.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_FALSE(one[i].empty());
    EXPECT_EQ(one[i], four[i]) << "cell " << i;
  }
}

TEST(Telemetry, TraceIsByteIdenticalAcrossRuns) {
  auto runTrace = [] {
    Scenario s;
    s.ctx.telemetry().enable();
    auto& a = s.topo.addHost("a", net::Address(10, 0, 0, 1));
    auto& b = s.topo.addHost("b", net::Address(10, 0, 0, 2));
    net::LinkParams lp;
    lp.rate = 1_Gbps;
    lp.delay = 1_ms;
    auto& wire = s.topo.connect(a, b, lp);
    wire.setLossModel(0, std::make_unique<net::PeriodicLoss>(100));
    s.topo.computeRoutes();
    tcp::TcpConfig cfg;
    tcp::TcpListener listener{b, 5001, cfg};
    tcp::TcpConnection client{a, b.address(), 5001, cfg};
    client.onEstablished = [&client] { client.sendData(sim::DataSize::megabytes(50)); };
    client.start();
    s.simulator.runFor(300_ms);
    std::ostringstream out;
    s.ctx.telemetry().recorder().exportJsonl(out);
    return out.str();
  };
  const std::string first = runTrace();
  const std::string second = runTrace();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace scidmz::telemetry
