#include "dtn/storage.hpp"

#include <gtest/gtest.h>

#include "../net/test_util.hpp"

namespace scidmz::dtn {
namespace {

using namespace scidmz::sim::literals;
using testutil::Scenario;

TEST(Storage, ReadStreamDeliversAllBytesAtDiskRate) {
  Scenario s;
  StorageSubsystem disk{s.ctx, StorageProfile::singleDisk()};  // 150 MB/s read
  sim::DataSize delivered = sim::DataSize::zero();
  bool done = false;
  disk.openRead(
      150_MB, [&delivered](sim::DataSize chunk) { delivered += chunk; }, [&done] { done = true; });
  s.simulator.run();

  EXPECT_TRUE(done);
  EXPECT_EQ(delivered, 150_MB);
  // 150 MB at 150 MB/s: about one second (tick rounding allowed).
  EXPECT_NEAR(s.simulator.now().toSeconds(), 1.0, 0.05);
}

TEST(Storage, ConcurrentReadsShareBandwidthFairly) {
  Scenario s;
  auto profile = StorageProfile::raidArray();  // 2 GB/s aggregate read
  profile.perStreamCap = sim::DataRate::gigabitsPerSecond(100);  // uncapped
  StorageSubsystem disk{s.ctx, profile};

  sim::SimTime done1, done2;
  disk.openRead(250_MB, [](sim::DataSize) {}, [&] { done1 = s.simulator.now(); });
  disk.openRead(250_MB, [](sim::DataSize) {}, [&] { done2 = s.simulator.now(); });
  s.simulator.run();

  // Two 250MB reads sharing 2 GB/s finish together at ~0.25s; a solo read
  // would have taken 0.125s.
  EXPECT_NEAR(done1.toSeconds(), 0.25, 0.02);
  EXPECT_NEAR(done2.toSeconds(), 0.25, 0.02);
}

TEST(Storage, PerStreamCapLimitsSoloReader) {
  Scenario s;
  auto profile = StorageProfile::raidArray();
  profile.perStreamCap = sim::DataRate::megabitsPerSecond(4000);  // 500 MB/s
  StorageSubsystem disk{s.ctx, profile};
  bool done = false;
  disk.openRead(500_MB, [](sim::DataSize) {}, [&done] { done = true; });
  s.simulator.run();
  EXPECT_TRUE(done);
  EXPECT_NEAR(s.simulator.now().toSeconds(), 1.0, 0.05);
}

TEST(Storage, WriteStreamCompletesWhenAllDurable) {
  Scenario s;
  StorageSubsystem disk{s.ctx, StorageProfile::singleDisk()};  // 120 MB/s write
  bool done = false;
  const auto id = disk.openWrite(120_MB, [&done] { done = true; });
  disk.offerWrite(id, 60_MB);
  s.simulator.runFor(400_ms);
  EXPECT_FALSE(done);  // only half offered
  disk.offerWrite(id, 60_MB);
  s.simulator.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(disk.stats().bytesWritten, 120_MB);
}

TEST(Storage, WriteBacklogDrainsAtWriteRate) {
  Scenario s;
  StorageSubsystem disk{s.ctx, StorageProfile::singleDisk()};
  const auto id = disk.openWrite(120_MB, [] {});
  const auto backlog = disk.offerWrite(id, 120_MB);
  EXPECT_EQ(backlog, 120_MB);
  s.simulator.runFor(500_ms);
  // ~60 MB drained in 0.5s at 120 MB/s.
  EXPECT_NEAR(disk.stats().bytesWritten.toMB(), 60.0, 5.0);
}

TEST(Storage, CloseAbandonsStream) {
  Scenario s;
  StorageSubsystem disk{s.ctx, StorageProfile::singleDisk()};
  bool done = false;
  const auto id = disk.openRead(1_GB, [](sim::DataSize) {}, [&done] { done = true; });
  s.simulator.runFor(100_ms);
  disk.close(id);
  s.simulator.run();
  EXPECT_FALSE(done);
  EXPECT_EQ(disk.activeReadStreams(), 0);
}

TEST(ParallelFs, CatalogVisibilityFollowsCommit) {
  Scenario s;
  ParallelFilesystem fs{s.ctx};
  const auto t0 = sim::SimTime::zero();
  EXPECT_FALSE(fs.available("run42.h5", t0 + 10_s));
  fs.commitFile("run42.h5", 33_GB, t0 + 5_s);
  EXPECT_TRUE(fs.available("run42.h5", t0 + 10_s));
  EXPECT_FALSE(fs.available("run42.h5", t0 + 1_s));
  ASSERT_NE(fs.lookup("run42.h5"), nullptr);
  EXPECT_EQ(fs.lookup("run42.h5")->size, 33_GB);
  EXPECT_EQ(fs.fileCount(), 1u);
}

}  // namespace
}  // namespace scidmz::dtn
