#include "dtn/dtn_cluster.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "../net/test_util.hpp"

namespace scidmz::dtn {
namespace {

using namespace scidmz::sim::literals;
using testutil::Scenario;

/// Two sites, each with `n` DTNs behind a site switch, joined by a fat WAN
/// link — a miniature LHC Tier-1 pair.
struct ClusterPair {
  ClusterPair(Scenario& s, int n)
      : srcCluster("tier1-src"), dstCluster("tier1-dst") {
    auto& swA = s.topo.addSwitch("swA");
    auto& swB = s.topo.addSwitch("swB");
    net::LinkParams wan;
    wan.rate = 100_Gbps;
    wan.delay = 20_ms;
    wan.mtu = 9000_B;
    s.topo.connect(swA, swB, wan);
    net::LinkParams lan;
    lan.rate = 10_Gbps;
    lan.delay = sim::Duration::microseconds(50);
    lan.mtu = 9000_B;
    for (int i = 0; i < n; ++i) {
      auto& hostA = s.topo.addHost("dtnA" + std::to_string(i),
                                   net::Address(10, 0, 1, static_cast<std::uint8_t>(i + 1)));
      auto& hostB = s.topo.addHost("dtnB" + std::to_string(i),
                                   net::Address(10, 0, 2, static_cast<std::uint8_t>(i + 1)));
      s.topo.connect(hostA, swA, lan);
      s.topo.connect(hostB, swB, lan);
      storages.push_back(
          std::make_unique<StorageSubsystem>(s.ctx, StorageProfile::parallelFsBackend()));
      storages.push_back(
          std::make_unique<StorageSubsystem>(s.ctx, StorageProfile::parallelFsBackend()));
      nodes.push_back(std::make_unique<DataTransferNode>(hostA, *storages[storages.size() - 2]));
      nodes.push_back(std::make_unique<DataTransferNode>(hostB, *storages[storages.size() - 1]));
      srcCluster.addNode(*nodes[nodes.size() - 2]);
      dstCluster.addNode(*nodes[nodes.size() - 1]);
    }
    s.topo.computeRoutes();
  }
  DtnCluster srcCluster;
  DtnCluster dstCluster;
  std::vector<std::unique_ptr<StorageSubsystem>> storages;
  std::vector<std::unique_ptr<DataTransferNode>> nodes;
};

TEST(Cluster, CampaignMovesAllFiles) {
  Scenario s;
  ClusterPair pair{s, 2};
  TransferCampaign campaign{pair.srcCluster, pair.dstCluster};
  for (int i = 0; i < 6; ++i) {
    campaign.enqueue({"file" + std::to_string(i), 200_MB});
  }
  TransferCampaign::Report final;
  bool done = false;
  campaign.onComplete = [&](const TransferCampaign::Report& r) {
    final = r;
    done = true;
  };
  campaign.start();
  s.simulator.runFor(600_s);

  ASSERT_TRUE(done);
  EXPECT_EQ(final.filesDone, 6u);
  EXPECT_EQ(final.bytesMoved, sim::DataSize::megabytes(1200));
  EXPECT_GT(final.aggregateRate().toMbps(), 100.0);
}

TEST(Cluster, MoreNodesMoveTheCampaignFaster) {
  auto run = [](int nodesPerSite) {
    Scenario s;
    ClusterPair pair{s, nodesPerSite};
    TransferCampaign campaign{pair.srcCluster, pair.dstCluster};
    for (int i = 0; i < 8; ++i) campaign.enqueue({"f" + std::to_string(i), 400_MB});
    bool done = false;
    sim::SimTime doneAt;
    campaign.onComplete = [&](const TransferCampaign::Report&) {
      done = true;
      doneAt = s.simulator.now();
    };
    campaign.start();
    s.simulator.runFor(3600_s);
    EXPECT_TRUE(done);
    return doneAt.toSeconds();
  };
  const double oneLane = run(1);
  const double fourLanes = run(4);
  EXPECT_LT(fourLanes, oneLane * 0.5);
}

TEST(Cluster, EmptyCampaignCompletesImmediately) {
  Scenario s;
  ClusterPair pair{s, 1};
  TransferCampaign campaign{pair.srcCluster, pair.dstCluster};
  bool done = false;
  campaign.onComplete = [&done](const TransferCampaign::Report& r) {
    done = true;
    EXPECT_EQ(r.filesTotal, 0u);
  };
  campaign.start();
  s.simulator.runFor(1_s);
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace scidmz::dtn
