#include "dtn/dtn_node.hpp"

#include <gtest/gtest.h>

#include "../net/test_util.hpp"

namespace scidmz::dtn {
namespace {

using namespace scidmz::sim::literals;
using testutil::Scenario;

/// Two DTNs across a 10G / 10ms-RTT WAN path.
struct DtnPair {
  DtnPair(Scenario& s, StorageProfile srcDisk, StorageProfile dstDisk,
          DtnProfile profile = DtnProfile())
      : srcHost(s.topo.addHost("dtn-src", net::Address(10, 0, 0, 1))),
        dstHost(s.topo.addHost("dtn-dst", net::Address(10, 0, 0, 2))),
        srcStorage(s.ctx, srcDisk),
        dstStorage(s.ctx, dstDisk),
        src(srcHost, srcStorage, profile),
        dst(dstHost, dstStorage, profile) {
    net::LinkParams wan;
    wan.rate = 10_Gbps;
    wan.delay = 5_ms;
    wan.mtu = 9000_B;
    s.topo.connect(srcHost, dstHost, wan);
    s.topo.computeRoutes();
  }
  net::Host& srcHost;
  net::Host& dstHost;
  StorageSubsystem srcStorage;
  StorageSubsystem dstStorage;
  DataTransferNode src;
  DataTransferNode dst;
};

TEST(DtnTransfer, MovesFileEndToEnd) {
  Scenario s;
  DtnPair pair{s, StorageProfile::raidArray(), StorageProfile::raidArray()};
  DtnTransfer transfer{pair.src, pair.dst, "dataset.tar", 1_GB, 50000};
  DtnTransfer::Result seen;
  transfer.onComplete = [&seen](const DtnTransfer::Result& r) { seen = r; };
  transfer.start();
  s.simulator.runFor(300_s);

  ASSERT_TRUE(seen.completed);
  EXPECT_EQ(seen.bytes, 1_GB);
  EXPECT_EQ(seen.file, "dataset.tar");
  EXPECT_GT(seen.averageRate.toMbps(), 500.0);
}

TEST(DtnTransfer, SlowDiskIsTheBottleneckNotTheNetwork) {
  // 10G network but a 150 MB/s (1.2 Gbps) source disk: the transfer lands
  // near disk speed — the reason the DTN tuning guides obsess over storage.
  Scenario s;
  DtnPair pair{s, StorageProfile::singleDisk(), StorageProfile::parallelFsBackend()};
  DtnTransfer transfer{pair.src, pair.dst, "slowdisk.dat", 600_MB, 50000};
  transfer.start();
  s.simulator.runFor(300_s);

  ASSERT_TRUE(transfer.finished());
  const auto rate = transfer.result().averageRate.toMbps();
  EXPECT_LT(rate, 1300.0);
  EXPECT_GT(rate, 800.0);
}

TEST(DtnTransfer, CommitsToAttachedFilesystem) {
  Scenario s;
  DtnPair pair{s, StorageProfile::raidArray(), StorageProfile::parallelFsBackend()};
  ParallelFilesystem fs{s.ctx};
  pair.dst.attachFilesystem(&fs);

  DtnTransfer transfer{pair.src, pair.dst, "run7.h5", 200_MB, 50000};
  transfer.start();
  s.simulator.runFor(300_s);

  ASSERT_TRUE(transfer.finished());
  // The "no double copy" property: the file is in the shared catalog the
  // moment the DTN finishes writing it; compute can read it immediately.
  EXPECT_TRUE(fs.available("run7.h5", s.simulator.now()));
  EXPECT_EQ(fs.lookup("run7.h5")->size, 200_MB);
}

TEST(DtnTransfer, UntunedProfileIsFarSlowerOnSamePath) {
  auto run = [](DtnProfile profile) {
    Scenario s;
    DtnPair pair{s, StorageProfile::raidArray(), StorageProfile::raidArray(), profile};
    DtnTransfer transfer{pair.src, pair.dst, "x.dat", 300_MB, 50000};
    transfer.start();
    s.simulator.runFor(600_s);
    EXPECT_TRUE(transfer.finished());
    return transfer.result().averageRate.toMbps();
  };
  const double tuned = run(DtnProfile());
  const double untuned = run(DtnProfile::untunedGeneralPurpose());
  // 64 KiB windows at 10ms RTT cap the untuned host around 50 Mbps.
  EXPECT_GT(tuned, 10.0 * untuned);
}

}  // namespace
}  // namespace scidmz::dtn
