#include "core/security_policy.hpp"

#include <gtest/gtest.h>

namespace scidmz::core {
namespace {

net::Packet packet(net::Address src, net::Address dst, std::uint16_t sport, std::uint16_t dport,
                   net::Protocol proto = net::Protocol::kTcp) {
  net::Packet p;
  p.flow = net::FlowKey{src, dst, sport, dport, proto};
  if (proto == net::Protocol::kTcp) {
    p.body = net::TcpHeader{};
  } else {
    p.body = net::ProbeHeader{};
  }
  return p;
}

DmzServicePolicy samplePolicy() {
  DmzServicePolicy policy;
  policy.dtnAddresses = {net::Address(10, 10, 1, 10)};
  policy.measurementHosts = {net::Address(10, 10, 1, 250)};
  return policy;
}

const net::Address kCollab{198, 128, 7, 7};
const net::Address kStranger{203, 0, 113, 5};
const net::Address kDtn{10, 10, 1, 10};
const net::Address kPs{10, 10, 1, 250};

TEST(SecurityPolicy, DefaultDeny) {
  const auto acl = compileDmzAcl(samplePolicy());
  EXPECT_EQ(acl.defaultAction(), net::AclAction::kDeny);
  EXPECT_FALSE(acl.permits(packet(kStranger, kDtn, 4444, 50010)));
}

TEST(SecurityPolicy, CollaboratorGridFtpPermitted) {
  const auto acl = compileDmzAcl(samplePolicy());
  EXPECT_TRUE(acl.permits(packet(kCollab, kDtn, 40000, kGridFtpControlPort)));
  EXPECT_TRUE(acl.permits(packet(kCollab, kDtn, 40000, 50500)));
  // Return half of a locally-initiated transfer (remote data port source).
  EXPECT_TRUE(acl.permits(packet(kCollab, kDtn, 50001, 33000)));
}

TEST(SecurityPolicy, NonServicePortsDenied) {
  const auto acl = compileDmzAcl(samplePolicy());
  EXPECT_FALSE(acl.permits(packet(kCollab, kDtn, 40000, 22)));    // ssh
  EXPECT_FALSE(acl.permits(packet(kCollab, kDtn, 40000, 443)));   // https
  EXPECT_FALSE(acl.permits(packet(kCollab, kPs, 40000, 22)));
}

TEST(SecurityPolicy, MeasurementPortsPermitted) {
  const auto acl = compileDmzAcl(samplePolicy());
  EXPECT_TRUE(acl.permits(packet(kCollab, kPs, 8760, kOwampPortBase, net::Protocol::kUdp)));
  EXPECT_TRUE(acl.permits(packet(kCollab, kPs, 45000, kBwctlPort)));
  // But OWAMP to the DTN (wrong host) is not part of the policy.
  EXPECT_FALSE(acl.permits(packet(kCollab, kDtn, 8760, kOwampPortBase, net::Protocol::kUdp)));
}

TEST(SecurityPolicy, LocalTrafficAlwaysLeaves) {
  const auto acl = compileDmzAcl(samplePolicy());
  EXPECT_TRUE(acl.permits(packet(kDtn, kCollab, 33000, 50001)));
  EXPECT_TRUE(acl.permits(packet(net::Address(10, 20, 1, 3), kCollab, 50000, 80)));
}

TEST(SecurityPolicy, EnterpriseTransitHandedDownstream) {
  const auto acl = compileDmzAcl(samplePolicy());
  EXPECT_TRUE(acl.permits(packet(kCollab, net::Address(10, 20, 1, 5), 443, 55555)));
}

TEST(SecurityPolicy, RoceDataPortPermitted) {
  const auto acl = compileDmzAcl(samplePolicy());
  EXPECT_TRUE(acl.permits(packet(kCollab, kDtn, 60000, kRocePort, net::Protocol::kUdp)));
}

TEST(SecurityPolicy, MultipleDtns) {
  auto policy = samplePolicy();
  policy.dtnAddresses.push_back(net::Address(10, 10, 1, 11));
  const auto acl = compileDmzAcl(policy);
  EXPECT_TRUE(acl.permits(packet(kCollab, net::Address(10, 10, 1, 11), 40000, 50500)));
  EXPECT_FALSE(acl.permits(packet(kCollab, net::Address(10, 10, 1, 12), 40000, 50500)));
}

}  // namespace
}  // namespace scidmz::core
