#include "core/tuning.hpp"

#include <gtest/gtest.h>

#include "../net/test_util.hpp"
#include "core/site_builder.hpp"
#include "dtn/dtn_node.hpp"

namespace scidmz::core {
namespace {

using namespace scidmz::sim::literals;
using testutil::Scenario;

TEST(Tuning, BuffersTrackBdp) {
  Scenario s;
  SiteConfig config;
  config.wan.rate = 10_Gbps;
  config.wan.delay = 50_ms;  // 100ms RTT -> 125 MB BDP
  auto site = buildSimpleScienceDmz(s.topo, config);
  const auto rec = recommendTuning(s.topo, site->remoteDtn->host().address(),
                                   site->primaryDtn()->host().address());
  ASSERT_TRUE(rec.has_value());
  EXPECT_GE(rec->socketBuffers, sim::DataSize::megabytes(250));  // ~2x BDP
  EXPECT_EQ(rec->tcp.sndBuf, rec->socketBuffers);
  EXPECT_TRUE(rec->tcp.pacing);
  EXPECT_EQ(rec->tcp.algorithm, tcp::CcAlgorithm::kHtcp);
}

TEST(Tuning, ShortPathGetsFloor) {
  Scenario s;
  SiteConfig config;
  config.wan.delay = sim::Duration::microseconds(100);
  auto site = buildSimpleScienceDmz(s.topo, config);
  const auto rec = recommendTuning(s.topo, site->remoteDtn->host().address(),
                                   site->primaryDtn()->host().address());
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->socketBuffers, sim::DataSize::megabytes(4));
}

TEST(Tuning, LossyPathGetsMoreStreams) {
  Scenario s;
  auto site = buildSimpleScienceDmz(s.topo, SiteConfig{});
  TuningInputs clean;
  TuningInputs lossy;
  lossy.expectedLossRate = 1e-4;
  const auto recClean = recommendTuning(s.topo, site->remoteDtn->host().address(),
                                        site->primaryDtn()->host().address(), clean);
  const auto recLossy = recommendTuning(s.topo, site->remoteDtn->host().address(),
                                        site->primaryDtn()->host().address(), lossy);
  ASSERT_TRUE(recClean.has_value());
  ASSERT_TRUE(recLossy.has_value());
  EXPECT_GT(recLossy->parallelStreams, recClean->parallelStreams);
  EXPECT_LE(recLossy->parallelStreams, 8);
}

TEST(Tuning, JumboDetection) {
  Scenario s1;
  SiteConfig jumbo;
  auto siteJumbo = buildSimpleScienceDmz(s1.topo, jumbo);
  const auto recJumbo = recommendTuning(s1.topo, siteJumbo->remoteDtn->host().address(),
                                        siteJumbo->primaryDtn()->host().address());
  ASSERT_TRUE(recJumbo.has_value());
  EXPECT_TRUE(recJumbo->jumboFrames);

  Scenario s2;
  SiteConfig standard;
  standard.wan.mtu = 1500_B;
  auto siteStd = buildSimpleScienceDmz(s2.topo, standard);
  const auto recStd = recommendTuning(s2.topo, siteStd->remoteDtn->host().address(),
                                      siteStd->primaryDtn()->host().address());
  ASSERT_TRUE(recStd.has_value());
  EXPECT_FALSE(recStd->jumboFrames);
}

TEST(Tuning, UnroutableReturnsNullopt) {
  Scenario s;
  auto site = buildSimpleScienceDmz(s.topo, SiteConfig{});
  EXPECT_FALSE(recommendTuning(s.topo, site->remoteDtn->host().address(),
                               net::Address(1, 2, 3, 4))
                   .has_value());
}

TEST(Tuning, RecommendationActuallyFillsThePath) {
  // End-to-end: a DTN built from the advisor's profile saturates the path
  // it was tuned for.
  Scenario s;
  SiteConfig config;
  config.wan.rate = 10_Gbps;
  config.wan.delay = 25_ms;
  auto site = buildSimpleScienceDmz(s.topo, config);
  const auto rec = recommendTuning(s.topo, site->remoteDtn->host().address(),
                                   site->primaryDtn()->host().address());
  ASSERT_TRUE(rec.has_value());

  // Rebuild the remote DTN wrapper with the recommended profile.
  auto& storage = site->addStorage(s.ctx, dtn::StorageProfile::parallelFsBackend());
  auto& tunedRemote = site->addDtnNode(site->remoteDtn->host(), storage, rec->asDtnProfile());

  dtn::DtnTransfer transfer{tunedRemote, *site->primaryDtn(), "tuned.dat", 2_GB, 50100};
  transfer.start();
  s.simulator.runFor(600_s);
  ASSERT_TRUE(transfer.finished());
  EXPECT_GT(transfer.result().averageRate.toGbps(), 4.0);
}

}  // namespace
}  // namespace scidmz::core
