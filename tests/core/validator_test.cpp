// One test per design rule: a clean reference design passes; each seeded
// defect is detected by exactly the rule that owns it.
#include "core/validator.hpp"

#include <gtest/gtest.h>

#include "../net/test_util.hpp"
#include "core/site_builder.hpp"

namespace scidmz::core {
namespace {

using namespace scidmz::sim::literals;
using testutil::Scenario;

std::string summaryOf(const ValidationResult& r) {
  std::string out;
  for (const auto& v : r.violations) {
    out += std::string{toString(v.rule)} + ": " + v.detail + "\n";
  }
  return out;
}

TEST(Validator, CleanSimpleDmzHasNoCriticalFindings) {
  Scenario s;
  auto site = buildSimpleScienceDmz(s.topo, SiteConfig{});
  const auto result = validate(*site);
  // No criticals. (The stock enterprise firewall ships with sequence
  // checking enabled, which legitimately earns an off-path warning.)
  EXPECT_EQ(result.criticalCount(), 0u) << summaryOf(result);
  EXPECT_FALSE(result.hasViolation(RuleId::kSciencePathAvoidsFirewall));
  EXPECT_FALSE(result.hasViolation(RuleId::kDtnTuned));
  EXPECT_FALSE(result.hasViolation(RuleId::kMeasurementHostPresent));
}

TEST(Validator, FullyCleanWhenFirewallFeatureDisabled) {
  Scenario s;
  SiteConfig config;
  config.firewall.tcpSequenceChecking = false;
  auto site = buildSimpleScienceDmz(s.topo, config);
  const auto result = validate(*site);
  EXPECT_TRUE(result.clean()) << summaryOf(result);
}

TEST(Validator, CampusBaselineFailsLocationAndMonitoring) {
  Scenario s;
  SiteConfig config;
  config.dtnProfile = dtn::DtnProfile::untunedGeneralPurpose();
  auto site = buildGeneralPurposeCampus(s.topo, config);
  const auto result = validate(*site);

  EXPECT_TRUE(result.hasViolation(RuleId::kSciencePathAvoidsFirewall));
  EXPECT_TRUE(result.hasViolation(RuleId::kMeasurementHostPresent));
  EXPECT_TRUE(result.hasViolation(RuleId::kDtnIsDedicated));
  EXPECT_TRUE(result.hasViolation(RuleId::kDtnTuned));
  EXPECT_TRUE(result.hasViolation(RuleId::kNoSequenceCheckingFirewall));
  EXPECT_GE(result.criticalCount(), 3u);
}

TEST(Validator, DetectsUntunedDtnOnOtherwiseCleanSite) {
  Scenario s;
  SiteConfig config;
  config.dtnProfile.tcp = tcp::TcpConfig::untunedDefault();
  auto site = buildSimpleScienceDmz(s.topo, config);
  const auto result = validate(*site);
  EXPECT_TRUE(result.hasViolation(RuleId::kDtnTuned));
  EXPECT_FALSE(result.hasViolation(RuleId::kSciencePathAvoidsFirewall));
}

TEST(Validator, DetectsNonDedicatedDtn) {
  Scenario s;
  SiteConfig config;
  config.dtnProfile.dedicatedApplicationSet = false;
  auto site = buildSimpleScienceDmz(s.topo, config);
  EXPECT_TRUE(validate(*site).hasViolation(RuleId::kDtnIsDedicated));
}

TEST(Validator, DetectsMissingAcls) {
  Scenario s;
  SiteConfig config;
  config.applyDmzAcls = false;
  auto site = buildSimpleScienceDmz(s.topo, config);
  EXPECT_TRUE(validate(*site).hasViolation(RuleId::kDmzAclPolicyPresent));
}

TEST(Validator, DetectsPermissiveDefaultAcl) {
  Scenario s;
  auto site = buildSimpleScienceDmz(s.topo, SiteConfig{});
  net::AclTable permissive{net::AclAction::kPermit};
  site->dmzSwitch->setAcl(permissive);
  const auto result = validate(*site);
  EXPECT_TRUE(result.hasViolation(RuleId::kDmzAclPolicyPresent));
  EXPECT_EQ(result.criticalCount(), 0u);  // downgraded to warning
}

TEST(Validator, DetectsOverFastDtnNic) {
  Scenario s;
  SiteConfig config;
  config.wan.rate = 1_Gbps;  // slow WAN
  // DTN port still at wan.rate by construction; rebuild the mismatch by
  // hand: attach a faster DTN to the DMZ switch.
  auto site = buildSimpleScienceDmz(s.topo, config);
  auto& fastHost = s.topo.addHost("fast-dtn", net::Address(10, 10, 1, 20));
  net::LinkParams fat;
  fat.rate = 10_Gbps;
  fat.mtu = 9000_B;
  s.topo.connect(fastHost, *site->dmzSwitch, fat);
  auto& storage = site->addStorage(s.ctx, dtn::StorageProfile::raidArray());
  site->dtns.insert(site->dtns.begin(), &site->addDtnNode(fastHost, storage, dtn::DtnProfile{}));
  s.topo.computeRoutes();

  EXPECT_TRUE(validate(*site).hasViolation(RuleId::kDtnMatchedToWan));
}

TEST(Validator, DetectsStandardMtuOnSciencePath) {
  Scenario s;
  SiteConfig config;
  config.wan.mtu = 1500_B;
  auto site = buildSimpleScienceDmz(s.topo, config);
  EXPECT_TRUE(validate(*site).hasViolation(RuleId::kJumboFramesOnPath));
}

TEST(Validator, DetectsShallowDmzSwitchBuffers) {
  Scenario s;
  auto site = buildSimpleScienceDmz(s.topo, SiteConfig{});
  // Shrink the DMZ switch's egress buffers below the fan-in requirement.
  for (std::size_t i = 0; i < site->dmzSwitch->interfaceCount(); ++i) {
    site->dmzSwitch->interface(i).queue().setCapacity(64_KiB);
  }
  EXPECT_TRUE(validate(*site).hasViolation(RuleId::kAdequatePathBuffers));
}

TEST(Validator, DetectsSequenceCheckingEvenOffPath) {
  Scenario s;
  auto site = buildSimpleScienceDmz(s.topo, SiteConfig{});
  // The stock enterprise firewall has sequence checking on by default; it
  // is off the science path, so the finding is a warning, not critical.
  const auto result = validate(*site);
  bool found = false;
  for (const auto& v : result.violations) {
    if (v.rule == RuleId::kNoSequenceCheckingFirewall) {
      found = true;
      EXPECT_EQ(v.severity, Severity::kWarning);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Validator, DetectsSharedAccessSwitch) {
  // Hand-build a site whose "DTN" hangs off the same switch as an office
  // host: the separation rule must fire.
  Scenario s;
  auto site = buildSimpleScienceDmz(s.topo, SiteConfig{});
  auto& office = s.topo.addHost("rogue-office", net::Address(10, 20, 1, 200));
  net::LinkParams lp;
  s.topo.connect(office, *site->dmzSwitch, lp);
  site->enterpriseHosts.push_back(&office);
  s.topo.computeRoutes();
  EXPECT_TRUE(validate(*site).hasViolation(RuleId::kScienceTrafficSeparated));
}

TEST(Validator, MissingDtnIsFatalFinding) {
  Scenario s;
  auto site = std::make_unique<Site>(s.topo, SiteKind::kSimpleScienceDmz);
  const auto result = validate(*site);
  EXPECT_FALSE(result.clean());
}

TEST(Validator, RuleMetadataComplete) {
  for (auto rule : {RuleId::kSciencePathAvoidsFirewall, RuleId::kDmzNearPerimeter,
                    RuleId::kScienceTrafficSeparated, RuleId::kDtnIsDedicated,
                    RuleId::kDtnTuned, RuleId::kDtnMatchedToWan, RuleId::kJumboFramesOnPath,
                    RuleId::kMeasurementHostPresent, RuleId::kMeasurementHostOnDmz,
                    RuleId::kDmzAclPolicyPresent, RuleId::kAdequatePathBuffers,
                    RuleId::kNoSequenceCheckingFirewall}) {
    EXPECT_NE(toString(rule), "?");
    EXPECT_FALSE(describe(patternOf(rule)).empty());
  }
}

}  // namespace
}  // namespace scidmz::core
