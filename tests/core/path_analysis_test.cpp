#include "core/path_analysis.hpp"

#include <gtest/gtest.h>

#include "../net/test_util.hpp"
#include "core/site_builder.hpp"
#include "tcp/mathis.hpp"

namespace scidmz::core {
namespace {

using namespace scidmz::sim::literals;
using testutil::Scenario;

TEST(PathAnalysis, CleanDmzPathPredictsLineRate) {
  Scenario s;
  auto site = buildSimpleScienceDmz(s.topo, SiteConfig{});
  const auto a = assessPath(s.topo, site->remoteDtn->host().address(),
                            site->primaryDtn()->host().address());
  ASSERT_TRUE(a.has_value());
  EXPECT_FALSE(a->crossesFirewall);
  EXPECT_EQ(a->bottleneck, 10_Gbps);
  EXPECT_EQ(a->expectedThroughput, 10_Gbps);
  EXPECT_EQ(a->mss, 8960_B);
  // RTT dominated by the 10ms WAN span each way.
  EXPECT_GT(a->rtt, 20_ms);
  EXPECT_LT(a->rtt, 21_ms);
}

TEST(PathAnalysis, FirewallDetectedOnCampusPath) {
  Scenario s;
  SiteConfig config;
  config.dtnProfile = dtn::DtnProfile::untunedGeneralPurpose();
  auto site = buildGeneralPurposeCampus(s.topo, config);
  const auto a = assessPath(s.topo, site->remoteDtn->host().address(),
                            site->primaryDtn()->host().address());
  ASSERT_TRUE(a.has_value());
  EXPECT_TRUE(a->crossesFirewall);
  EXPECT_EQ(a->bottleneck, 1_Gbps);  // campus access link
}

TEST(PathAnalysis, BrokenWindowScalingCapsPrediction) {
  Scenario s;
  auto site = buildSimpleScienceDmz(s.topo, SiteConfig{});
  PathAssumptions assumptions;
  assumptions.windowScalingBroken = true;
  const auto a = assessPath(s.topo, site->remoteDtn->host().address(),
                            site->primaryDtn()->host().address(), assumptions);
  ASSERT_TRUE(a.has_value());
  // 64 KiB window at ~20ms RTT: ~26 Mbps.
  EXPECT_LT(a->expectedThroughput.toMbps(), 30.0);
  EXPECT_GT(a->expectedThroughput.toMbps(), 20.0);
}

TEST(PathAnalysis, LossAssumptionEngagesMathisBound) {
  Scenario s;
  auto site = buildSimpleScienceDmz(s.topo, SiteConfig{});
  PathAssumptions assumptions;
  assumptions.lossRate = 1.0 / 22000.0;  // the failing line card
  const auto a = assessPath(s.topo, site->remoteDtn->host().address(),
                            site->primaryDtn()->host().address(), assumptions);
  ASSERT_TRUE(a.has_value());
  EXPECT_LT(a->expectedThroughput, 1_Gbps);
  EXPECT_EQ(a->lossLimitedRate,
            tcp::mathisThroughput(a->mss, a->rtt, assumptions.lossRate));
}

TEST(PathAnalysis, Equation2WindowReported) {
  Scenario s;
  SiteConfig config;
  config.wan.rate = 1_Gbps;
  config.wan.delay = 5_ms;  // ~10ms RTT: the paper's VTTI example
  auto site = buildSimpleScienceDmz(s.topo, config);
  const auto a = assessPath(s.topo, site->remoteDtn->host().address(),
                            site->primaryDtn()->host().address());
  ASSERT_TRUE(a.has_value());
  // 1 Gbps x ~10ms = ~1.25 MB (Equation 2).
  EXPECT_NEAR(a->bdp.toMB(), 1.25, 0.01);
}

TEST(PathAnalysis, UnroutableReturnsNullopt) {
  Scenario s;
  auto site = buildSimpleScienceDmz(s.topo, SiteConfig{});
  EXPECT_FALSE(assessPath(s.topo, site->remoteDtn->host().address(),
                          net::Address(1, 2, 3, 4))
                   .has_value());
}

}  // namespace
}  // namespace scidmz::core
