// End-to-end integration: the headline claim of the paper, measured on the
// reference designs. A Science DMZ moves data at WAN speed; the same
// transfer through the general-purpose campus network is orders of
// magnitude slower; and the supercomputer-center design exposes ingested
// files to compute without a second copy.
#include <gtest/gtest.h>

#include "../net/test_util.hpp"
#include "core/site_builder.hpp"
#include "core/validator.hpp"
#include "dtn/dtn_node.hpp"
#include "perfsonar/owamp.hpp"

namespace scidmz::core {
namespace {

using namespace scidmz::sim::literals;
using testutil::Scenario;

double transferRateMbps(Scenario& s, Site& site, sim::DataSize bytes) {
  dtn::DtnTransfer transfer{*site.remoteDtn, *site.primaryDtn(), "dataset.tar", bytes, 50000};
  transfer.start();
  s.simulator.runFor(3600_s);
  EXPECT_TRUE(transfer.finished());
  return transfer.result().averageRate.toMbps();
}

TEST(Integration, DmzBeatsCampusBaselineByOrdersOfMagnitude) {
  // Baseline: untuned single-stream endpoints, server behind the
  // enterprise firewall (the FTP-era setup of the NOAA use case).
  Scenario sBase;
  SiteConfig baseConfig;
  baseConfig.dtnProfile = dtn::DtnProfile::untunedGeneralPurpose();
  baseConfig.remoteProfile = dtn::DtnProfile::untunedGeneralPurpose();
  auto baseline = buildGeneralPurposeCampus(sBase.topo, baseConfig);
  const double baseMbps = transferRateMbps(sBase, *baseline, 200_MB);

  // After: simple Science DMZ with a tuned DTN.
  Scenario sDmz;
  auto dmz = buildSimpleScienceDmz(sDmz.topo, SiteConfig{});
  const double dmzMbps = transferRateMbps(sDmz, *dmz, 2_GB);

  EXPECT_GT(dmzMbps, 4000.0);          // near the 10G WAN
  EXPECT_LT(baseMbps, 100.0);          // firewall + untuned host
  EXPECT_GT(dmzMbps, 40.0 * baseMbps); // the paper's "orders of magnitude"
}

TEST(Integration, DmzTransferSurvivesAclPolicy) {
  // The default-deny ACL on the DMZ switch must not break sanctioned
  // GridFTP traffic in either direction.
  Scenario s;
  auto site = buildSimpleScienceDmz(s.topo, SiteConfig{});
  ASSERT_TRUE(site->dmzSwitch->acl().has_value());
  const double mbps = transferRateMbps(s, *site, 1_GB);
  EXPECT_GT(mbps, 4000.0);
  EXPECT_EQ(site->dmzSwitch->stats().dropsAcl, 0u);
}

TEST(Integration, SupercomputerIngestVisibleToComputeWithoutDoubleCopy) {
  Scenario s;
  SiteConfig config;
  config.dtnCount = 2;
  auto site = buildSupercomputerCenter(s.topo, config);

  dtn::DtnTransfer transfer{*site->remoteDtn, *site->primaryDtn(), "checkpoint.h5", 500_MB,
                            50000};
  transfer.start();
  s.simulator.runFor(3600_s);
  ASSERT_TRUE(transfer.finished());

  // The file landed on the shared parallel filesystem: visible at once.
  EXPECT_TRUE(site->parallelFs->available("checkpoint.h5", s.simulator.now()));
  EXPECT_EQ(site->parallelFs->lookup("checkpoint.h5")->size, 500_MB);
}

TEST(Integration, OwampProbesFlowThroughDmzPolicy) {
  Scenario s;
  auto site = buildSimpleScienceDmz(s.topo, SiteConfig{});
  perfsonar::OwampStream stream{*site->remotePerfsonarHost, *site->perfsonarHost};
  stream.start();
  s.simulator.runFor(30_s);
  stream.stop();
  s.simulator.runFor(3_s);
  const auto report = stream.report();
  EXPECT_GT(report.sent, 200u);
  EXPECT_DOUBLE_EQ(report.lossFraction, 0.0);
}

TEST(Integration, ValidatorPredictsMeasuredOutcome) {
  // The validator's verdict and the measured transfer agree: critical
  // findings <=> slow transfers.
  Scenario sBad;
  SiteConfig badConfig;
  badConfig.dtnProfile = dtn::DtnProfile::untunedGeneralPurpose();
  auto bad = buildGeneralPurposeCampus(sBad.topo, badConfig);
  EXPECT_GT(validate(*bad).criticalCount(), 0u);
  const double badMbps = transferRateMbps(sBad, *bad, 100_MB);

  Scenario sGood;
  SiteConfig goodConfig;
  goodConfig.firewall.tcpSequenceChecking = false;
  auto good = buildSimpleScienceDmz(sGood.topo, goodConfig);
  EXPECT_TRUE(validate(*good).clean());
  const double goodMbps = transferRateMbps(sGood, *good, 2_GB);

  EXPECT_LT(badMbps, goodMbps / 10.0);
}

}  // namespace
}  // namespace scidmz::core
