#include "core/site_builder.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "../net/test_util.hpp"

namespace scidmz::core {
namespace {

using namespace scidmz::sim::literals;
using testutil::Scenario;

TEST(SiteBuilder, SimpleDmzHasAllRoles) {
  Scenario s;
  auto site = buildSimpleScienceDmz(s.topo, SiteConfig{});
  EXPECT_EQ(site->kind(), SiteKind::kSimpleScienceDmz);
  EXPECT_NE(site->borderRouter, nullptr);
  EXPECT_NE(site->dmzSwitch, nullptr);
  EXPECT_NE(site->enterpriseFirewall, nullptr);
  EXPECT_NE(site->perfsonarHost, nullptr);
  EXPECT_NE(site->remoteDtn, nullptr);
  EXPECT_NE(site->wanLink, nullptr);
  ASSERT_EQ(site->dtns.size(), 1u);
  EXPECT_EQ(site->enterpriseHosts.size(), 3u);
}

TEST(SiteBuilder, SimpleDmzSciencePathSkipsFirewall) {
  Scenario s;
  auto site = buildSimpleScienceDmz(s.topo, SiteConfig{});
  const auto path = s.topo.trace(site->remoteDtn->host().address(),
                                 site->primaryDtn()->host().address());
  ASSERT_TRUE(path.has_value());
  for (auto* device : path->devices()) {
    EXPECT_EQ(dynamic_cast<net::FirewallDevice*>(device), nullptr) << device->name();
  }
  // wan-core -> border -> dmz-switch -> dtn.
  EXPECT_EQ(path->hops.size(), 4u);
}

TEST(SiteBuilder, CampusBaselinePathCrossesFirewall) {
  Scenario s;
  SiteConfig config;
  config.dtnProfile = dtn::DtnProfile::untunedGeneralPurpose();
  auto site = buildGeneralPurposeCampus(s.topo, config);
  const auto path = s.topo.trace(site->remoteDtn->host().address(),
                                 site->primaryDtn()->host().address());
  ASSERT_TRUE(path.has_value());
  bool crossesFirewall = false;
  for (auto* device : path->devices()) {
    if (dynamic_cast<net::FirewallDevice*>(device) != nullptr) crossesFirewall = true;
  }
  EXPECT_TRUE(crossesFirewall);
  EXPECT_EQ(site->dmzSwitch, nullptr);
  EXPECT_EQ(site->perfsonarHost, nullptr);
}

TEST(SiteBuilder, EnterpriseHostsReachableThroughFirewall) {
  Scenario s;
  auto site = buildSimpleScienceDmz(s.topo, SiteConfig{});
  const auto path = s.topo.trace(site->remoteDtn->host().address(),
                                 site->enterpriseHosts[0]->address());
  ASSERT_TRUE(path.has_value());
  bool crossesFirewall = false;
  for (auto* device : path->devices()) {
    if (dynamic_cast<net::FirewallDevice*>(device) != nullptr) crossesFirewall = true;
  }
  EXPECT_TRUE(crossesFirewall);
}

TEST(SiteBuilder, SupercomputerCenterSharesFilesystem) {
  Scenario s;
  SiteConfig config;
  config.dtnCount = 3;
  config.computeNodeCount = 2;
  auto site = buildSupercomputerCenter(s.topo, config);
  ASSERT_EQ(site->dtns.size(), 3u);
  EXPECT_EQ(site->computeNodes.size(), 2u);
  ASSERT_NE(site->parallelFs, nullptr);
  for (auto* node : site->dtns) {
    EXPECT_EQ(node->filesystem(), site->parallelFs);
    EXPECT_EQ(&node->storage(), &site->parallelFs->storage());
  }
}

TEST(SiteBuilder, BigDataSiteHasRedundantBordersAndCluster) {
  Scenario s;
  SiteConfig config;
  config.dtnCount = 6;
  auto site = buildBigDataSite(s.topo, config);
  EXPECT_EQ(site->dtns.size(), 6u);
  EXPECT_NE(s.topo.findDevice("border-1"), nullptr);
  EXPECT_NE(s.topo.findDevice("border-2"), nullptr);
  const auto path = s.topo.trace(site->remoteDtn->host().address(),
                                 site->primaryDtn()->host().address());
  ASSERT_TRUE(path.has_value());
  for (auto* device : path->devices()) {
    EXPECT_EQ(dynamic_cast<net::FirewallDevice*>(device), nullptr) << device->name();
  }
}

TEST(SiteBuilder, DmzAclAllowsGridFtpBlocksSsh) {
  Scenario s;
  auto site = buildSimpleScienceDmz(s.topo, SiteConfig{});
  ASSERT_TRUE(site->dmzSwitch->acl().has_value());
  const auto& acl = *site->dmzSwitch->acl();

  net::Packet gridftp;
  gridftp.flow = net::FlowKey{site->remoteDtn->host().address(),
                              site->primaryDtn()->host().address(), 40000, 50010,
                              net::Protocol::kTcp};
  gridftp.body = net::TcpHeader{};
  EXPECT_TRUE(acl.permits(gridftp));

  net::Packet ssh = gridftp;
  ssh.flow.dstPort = 22;
  EXPECT_FALSE(acl.permits(ssh));
}


TEST(SiteBuilder, RejectsNonPositiveDtnCount) {
  Scenario s;
  SiteConfig config;
  config.dtnCount = 0;
  try {
    buildSupercomputerCenter(s.topo, config);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("dtnCount is 0"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("buildSupercomputerCenter"), std::string::npos)
        << e.what();
  }
  config.dtnCount = -3;
  EXPECT_THROW(buildBigDataSite(s.topo, config), std::invalid_argument);
}

TEST(SiteBuilder, RejectsNegativeComputeNodeCount) {
  Scenario s;
  SiteConfig config;
  config.computeNodeCount = -1;
  try {
    buildSupercomputerCenter(s.topo, config);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("computeNodeCount is -1"), std::string::npos)
        << e.what();
  }
}

TEST(SiteBuilder, RejectsZeroWanRate) {
  Scenario s;
  SiteConfig config;
  config.wan.rate = sim::DataRate::bitsPerSecond(0);
  try {
    buildSimpleScienceDmz(s.topo, config);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("wan.rate is zero"), std::string::npos) << e.what();
  }
  EXPECT_THROW(buildGeneralPurposeCampus(s.topo, config), std::invalid_argument);
}

}  // namespace
}  // namespace scidmz::core
