#include "core/report.hpp"

#include <gtest/gtest.h>

#include "../net/test_util.hpp"
#include "core/site_builder.hpp"

namespace scidmz::core {
namespace {

using testutil::Scenario;

TEST(Report, CleanSiteReportMentionsRolesAndPath) {
  Scenario s;
  SiteConfig config;
  config.firewall.tcpSequenceChecking = false;
  auto site = buildSimpleScienceDmz(s.topo, config);
  const auto result = validate(*site);
  const auto text = renderSiteReport(*site, result);

  EXPECT_NE(text.find("simple Science DMZ"), std::string::npos);
  EXPECT_NE(text.find("border"), std::string::npos);
  EXPECT_NE(text.find("dmz-switch"), std::string::npos);
  EXPECT_NE(text.find("crosses firewall: no"), std::string::npos);
  EXPECT_NE(text.find("no findings"), std::string::npos);
  EXPECT_NE(text.find("expected throughput"), std::string::npos);
}

TEST(Report, BaselineReportListsFindings) {
  Scenario s;
  SiteConfig config;
  config.dtnProfile = dtn::DtnProfile::untunedGeneralPurpose();
  auto site = buildGeneralPurposeCampus(s.topo, config);
  const auto result = validate(*site);
  const auto text = renderSiteReport(*site, result);

  EXPECT_NE(text.find("general-purpose campus"), std::string::npos);
  EXPECT_NE(text.find("crosses firewall: YES"), std::string::npos);
  EXPECT_NE(text.find("CRITICAL"), std::string::npos);
  EXPECT_NE(text.find("science-path-avoids-firewall"), std::string::npos);
  EXPECT_NE(text.find("measurement-host-present"), std::string::npos);
}

TEST(Report, FindingsOnlyRenderer) {
  ValidationResult result;
  result.violations.push_back(Violation{RuleId::kDtnTuned, Severity::kCritical, "dtn",
                                        "buffers too small"});
  const auto text = renderFindings(result);
  EXPECT_NE(text.find("CRITICAL"), std::string::npos);
  EXPECT_NE(text.find("dtn-tuned"), std::string::npos);
  EXPECT_NE(text.find("dedicated-systems"), std::string::npos);
  EXPECT_NE(text.find("buffers too small"), std::string::npos);
}

}  // namespace
}  // namespace scidmz::core
