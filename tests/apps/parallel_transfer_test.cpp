#include "apps/parallel_transfer.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "../net/test_util.hpp"

namespace scidmz::apps {
namespace {

using namespace scidmz::sim::literals;
using testutil::Scenario;

struct DirectPair {
  explicit DirectPair(Scenario& s, net::LinkParams params = {})
      : a(s.topo.addHost("a", net::Address(10, 0, 0, 1))),
        b(s.topo.addHost("b", net::Address(10, 0, 0, 2))),
        link(s.topo.connect(a, b, params)) {
    s.topo.computeRoutes();
  }
  net::Host& a;
  net::Host& b;
  net::Link& link;
};

TEST(ParallelTransfer, AllStreamsCompleteAndBytesAddUp) {
  Scenario s;
  DirectPair net{s};
  ParallelTransfer t{net.a, net.b, 2811, 40_MB, 4, tcp::TcpConfig{}};
  bool done = false;
  t.onComplete = [&done] { done = true; };
  t.start();
  s.simulator.run();

  EXPECT_TRUE(done);
  EXPECT_TRUE(t.finished());
  EXPECT_EQ(t.streamCount(), 4);
  EXPECT_EQ(t.totalBytes(), 40_MB);
}

TEST(ParallelTransfer, UnevenSizeStillExact) {
  Scenario s;
  DirectPair net{s};
  // 10'000'003 bytes across 4 streams: slack lands somewhere, total exact.
  ParallelTransfer t{net.a, net.b, 2811, sim::DataSize::bytes(10'000'003), 4, tcp::TcpConfig{}};
  t.start();
  s.simulator.run();
  EXPECT_TRUE(t.finished());
  sim::DataSize acked = sim::DataSize::zero();
  // aggregateGoodput * elapsed ~ bytes; verify via goodput > 0 and exact
  // completion instead of reaching into private state.
  EXPECT_GT(t.aggregateGoodput().toMbps(), 0.0);
  (void)acked;
}

TEST(ParallelTransfer, SingleStreamDegeneratesToBulk) {
  Scenario s;
  DirectPair net{s};
  ParallelTransfer t{net.a, net.b, 2811, 10_MB, 1, tcp::TcpConfig{}};
  t.start();
  s.simulator.run();
  EXPECT_TRUE(t.finished());
  EXPECT_EQ(t.streamCount(), 1);
}

TEST(ParallelTransfer, StreamsBeatSingleUnderLoss) {
  // The GridFTP rationale: on a lossy high-BDP path, N windows in parallel
  // recover independently and the aggregate stays higher.
  auto run = [](int streams) {
    Scenario s;
    net::LinkParams params;
    params.rate = 10_Gbps;
    params.delay = 20_ms;
    params.mtu = 9000_B;
    DirectPair net{s, params};
    // Loss heavy enough that every stream spends the transfer in loss
    // recovery (Mathis-limited), not in the slow-start blast.
    net.link.setLossModel(0, std::make_unique<net::RandomLoss>(3e-4, s.rng.fork(9)));
    tcp::TcpConfig cfg;
    cfg.sndBuf = 64_MB;
    cfg.rcvBuf = 64_MB;
    ParallelTransfer t{net.a, net.b, 2811, 250_MB, streams, cfg};
    t.start();
    s.simulator.runFor(600_s);
    EXPECT_TRUE(t.finished());
    return t.elapsed().toSeconds();
  };
  const double single = run(1);
  const double striped = run(8);
  EXPECT_LT(striped, single * 0.5);
}

}  // namespace
}  // namespace scidmz::apps
