#include "apps/background_traffic.hpp"

#include <gtest/gtest.h>

#include "../net/test_util.hpp"

namespace scidmz::apps {
namespace {

using namespace scidmz::sim::literals;
using testutil::Scenario;

/// Small campus: 3 clients and 2 servers behind one switch.
struct Campus {
  explicit Campus(Scenario& s) {
    auto& sw = s.topo.addSwitch("sw");
    for (int i = 0; i < 3; ++i) {
      auto& h = s.topo.addHost("client" + std::to_string(i),
                               net::Address(10, 0, 1, static_cast<std::uint8_t>(i + 1)));
      s.topo.connect(h, sw, net::LinkParams{});
      clients.push_back(&h);
    }
    for (int i = 0; i < 2; ++i) {
      auto& h = s.topo.addHost("server" + std::to_string(i),
                               net::Address(10, 0, 2, static_cast<std::uint8_t>(i + 1)));
      s.topo.connect(h, sw, net::LinkParams{});
      servers.push_back(&h);
    }
    s.topo.computeRoutes();
  }
  std::vector<net::Host*> clients;
  std::vector<net::Host*> servers;
};

TEST(BackgroundTraffic, GeneratesAndCompletesFlows) {
  Scenario s;
  Campus campus{s};
  BackgroundProfile profile;
  profile.flowsPerSecond = 100;
  BackgroundTraffic bg{s.ctx, campus.clients, campus.servers, 20000, profile, s.rng.fork(3)};
  bg.start();
  s.simulator.runFor(5_s);
  bg.stop();
  s.simulator.runFor(5_s);  // drain

  EXPECT_GT(bg.stats().flowsStarted, 300u);
  EXPECT_GT(bg.stats().flowsCompleted, 200u);
  EXPECT_GT(bg.stats().bytesCompleted, 1_MB);
}

TEST(BackgroundTraffic, ArrivalRateApproximatelyPoisson) {
  Scenario s;
  Campus campus{s};
  BackgroundProfile profile;
  profile.flowsPerSecond = 200;
  BackgroundTraffic bg{s.ctx, campus.clients, campus.servers, 20000, profile, s.rng.fork(4)};
  bg.start();
  s.simulator.runFor(10_s);
  bg.stop();
  // Expect ~2000 arrivals within a few standard deviations (sqrt(2000)~45),
  // minus the occasional self-flow skip.
  EXPECT_NEAR(static_cast<double>(bg.stats().flowsStarted), 2000.0, 200.0);
}

TEST(BackgroundTraffic, StopHaltsNewArrivals) {
  Scenario s;
  Campus campus{s};
  BackgroundTraffic bg{s.ctx, campus.clients, campus.servers, 20000, BackgroundProfile{},
                       s.rng.fork(5)};
  bg.start();
  s.simulator.runFor(2_s);
  bg.stop();
  const auto started = bg.stats().flowsStarted;
  s.simulator.runFor(5_s);
  EXPECT_EQ(bg.stats().flowsStarted, started);
}

TEST(BackgroundTraffic, EmptyPoolsAreSafe) {
  Scenario s;
  BackgroundTraffic bg{s.ctx, {}, {}, 20000, BackgroundProfile{}, s.rng.fork(6)};
  bg.start();  // must not crash or schedule anything
  s.simulator.runFor(1_s);
  EXPECT_EQ(bg.stats().flowsStarted, 0u);
}

}  // namespace
}  // namespace scidmz::apps
