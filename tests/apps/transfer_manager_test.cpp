#include "apps/transfer_manager.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "../net/test_util.hpp"

namespace scidmz::apps {
namespace {

using namespace scidmz::sim::literals;
using testutil::Scenario;

struct DirectPair {
  explicit DirectPair(Scenario& s, net::LinkParams params = {})
      : a(s.topo.addHost("a", net::Address(10, 0, 0, 1))),
        b(s.topo.addHost("b", net::Address(10, 0, 0, 2))),
        link(s.topo.connect(a, b, params)) {
    s.topo.computeRoutes();
  }
  net::Host& a;
  net::Host& b;
  net::Link& link;
};

std::vector<FileSpec> makeFiles(int n, sim::DataSize each) {
  std::vector<FileSpec> files;
  for (int i = 0; i < n; ++i) files.push_back(FileSpec{"file" + std::to_string(i), each});
  return files;
}

TEST(TransferManager, MovesWholeQueue) {
  Scenario s;
  DirectPair net{s};
  TransferManager mgr{net.a, net.b, tcp::TcpConfig{}};
  mgr.enqueue(makeFiles(10, 2_MB));
  TransferReport final;
  bool done = false;
  mgr.onAllComplete = [&](const TransferReport& r) {
    final = r;
    done = true;
  };
  mgr.start();
  s.simulator.runFor(600_s);

  ASSERT_TRUE(done);
  EXPECT_EQ(final.filesTotal, 10u);
  EXPECT_EQ(final.filesDone, 10u);
  EXPECT_EQ(final.filesFailed, 0u);
  EXPECT_EQ(final.bytesMoved, 20_MB);
  EXPECT_GT(final.averageRate().toMbps(), 1.0);
}

TEST(TransferManager, ConcurrencyBoundRespected) {
  // Direct check: the number of in-flight transfers never exceeds the
  // configured concurrency, and the bound is actually reached.
  Scenario s;
  net::LinkParams slow;
  slow.rate = 100_Mbps;
  DirectPair net{s, slow};
  TransferManager::Options options;
  options.concurrency = 2;
  TransferManager mgr{net.a, net.b, tcp::TcpConfig{}, options};
  mgr.enqueue(makeFiles(6, 5_MB));
  mgr.start();

  std::size_t peak = 0;
  while (!mgr.idle() && s.simulator.now() < sim::SimTime::zero() + 600_s) {
    peak = std::max(peak, mgr.activeCount());
    EXPECT_LE(mgr.activeCount(), 2u);
    s.simulator.runFor(50_ms);
  }
  EXPECT_EQ(peak, 2u);
  EXPECT_EQ(mgr.report().filesDone, 6u);
}

TEST(TransferManager, RetriesStalledFileAndSucceedsAfterRepair) {
  Scenario s;
  DirectPair net{s};
  // Break the path completely; the first attempt stalls, the watchdog
  // retries, and after the repair a retry succeeds.
  net.link.setLossModel(0, std::make_unique<net::PeriodicLoss>(1));
  TransferManager::Options options;
  options.concurrency = 1;
  options.maxRetries = 5;
  options.stallTimeout = 5_s;
  TransferManager mgr{net.a, net.b, tcp::TcpConfig{}, options};
  mgr.enqueue(FileSpec{"data.h5", 5_MB});
  bool done = false;
  TransferReport final;
  mgr.onAllComplete = [&](const TransferReport& r) {
    final = r;
    done = true;
  };
  mgr.start();
  s.simulator.schedule(12_s, [&net] { net.link.repair(); });
  s.simulator.runFor(600_s);

  ASSERT_TRUE(done);
  EXPECT_EQ(final.filesDone, 1u);
  EXPECT_GT(final.retries, 0u);
  EXPECT_EQ(final.filesFailed, 0u);
}

TEST(TransferManager, GivesUpAfterMaxRetries) {
  Scenario s;
  DirectPair net{s};
  net.link.setLossModel(0, std::make_unique<net::PeriodicLoss>(1));  // dead path
  TransferManager::Options options;
  options.concurrency = 1;
  options.maxRetries = 2;
  options.stallTimeout = 2_s;
  TransferManager mgr{net.a, net.b, tcp::TcpConfig{}, options};
  mgr.enqueue(FileSpec{"doomed.dat", 1_MB});
  bool done = false;
  TransferReport final;
  mgr.onAllComplete = [&](const TransferReport& r) {
    final = r;
    done = true;
  };
  mgr.start();
  s.simulator.runFor(600_s);

  ASSERT_TRUE(done);
  EXPECT_EQ(final.filesDone, 0u);
  EXPECT_EQ(final.filesFailed, 1u);
  EXPECT_EQ(final.retries, 2u);
}

TEST(TransferManager, EnqueueAfterStartKeepsGoing) {
  Scenario s;
  DirectPair net{s};
  TransferManager mgr{net.a, net.b, tcp::TcpConfig{}};
  mgr.enqueue(FileSpec{"first.dat", 1_MB});
  mgr.start();
  s.simulator.runFor(100_ms);
  mgr.enqueue(FileSpec{"second.dat", 1_MB});
  s.simulator.runFor(600_s);
  const auto r = mgr.report();
  EXPECT_EQ(r.filesDone, 2u);
}

}  // namespace
}  // namespace scidmz::apps
