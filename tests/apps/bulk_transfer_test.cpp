#include "apps/bulk_transfer.hpp"

#include <gtest/gtest.h>

#include "../net/test_util.hpp"

namespace scidmz::apps {
namespace {

using namespace scidmz::sim::literals;
using testutil::Scenario;

struct DirectPair {
  explicit DirectPair(Scenario& s, net::LinkParams params = {})
      : a(s.topo.addHost("a", net::Address(10, 0, 0, 1))),
        b(s.topo.addHost("b", net::Address(10, 0, 0, 2))),
        link(s.topo.connect(a, b, params)) {
    s.topo.computeRoutes();
  }
  net::Host& a;
  net::Host& b;
  net::Link& link;
};

TEST(BulkTransfer, MovesBytesAndReportsResult) {
  Scenario s;
  DirectPair net{s};
  BulkTransfer t{net.a, net.b, 5001, 10_MB, tcp::TcpConfig{}};
  BulkTransfer::Result seen;
  t.onComplete = [&seen](const BulkTransfer::Result& r) { seen = r; };
  t.start();
  s.simulator.run();

  EXPECT_TRUE(t.finished());
  EXPECT_TRUE(seen.completed);
  EXPECT_EQ(seen.bytes, 10_MB);
  EXPECT_GT(seen.goodput.toMbps(), 100.0);
  EXPECT_GT(seen.elapsed, 0_ns);
}

TEST(BulkTransfer, ProgressIsMonotonic) {
  Scenario s;
  net::LinkParams slow;
  slow.rate = 100_Mbps;
  DirectPair net{s, slow};
  BulkTransfer t{net.a, net.b, 5001, 10_MB, tcp::TcpConfig{}};
  t.start();
  sim::DataSize last = sim::DataSize::zero();
  for (int i = 0; i < 10; ++i) {
    s.simulator.runFor(100_ms);
    const auto p = t.progress();
    EXPECT_GE(p, last);
    last = p;
  }
  EXPECT_GT(last, 0_B);
}

TEST(BulkTransfer, AbortStopsTraffic) {
  Scenario s;
  net::LinkParams slow;
  slow.rate = 10_Mbps;
  DirectPair net{s, slow};
  BulkTransfer t{net.a, net.b, 5001, 100_MB, tcp::TcpConfig{}};
  bool completed = false;
  t.onComplete = [&completed](const BulkTransfer::Result&) { completed = true; };
  t.start();
  s.simulator.runFor(1_s);
  t.abort();
  // Let anything in flight drain; nothing should blow up or complete.
  s.simulator.runFor(10_s);
  EXPECT_TRUE(t.finished());
  EXPECT_FALSE(completed);
}

TEST(BulkTransfer, ConcurrentTransfersOnDistinctPorts) {
  Scenario s;
  DirectPair net{s};
  BulkTransfer t1{net.a, net.b, 6001, 5_MB, tcp::TcpConfig{}};
  BulkTransfer t2{net.a, net.b, 6002, 5_MB, tcp::TcpConfig{}};
  int done = 0;
  t1.onComplete = [&done](const BulkTransfer::Result&) { ++done; };
  t2.onComplete = [&done](const BulkTransfer::Result&) { ++done; };
  t1.start();
  t2.start();
  s.simulator.run();
  EXPECT_EQ(done, 2);
}

}  // namespace
}  // namespace scidmz::apps
