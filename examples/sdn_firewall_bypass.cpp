// Section 7.3 demo: software-defined security policy. New connections pass
// through the enterprise firewall and are mirrored to an IDS; once the IDS
// vets the connection-setup traffic, the OpenFlow controller installs a
// bypass and the bulk of the flow skips the firewall's inspection engines.
// A watch-listed source never gets that far: it is blocked outright.
//
//   ./examples/sdn_firewall_bypass
#include <cstdio>

#include "net/topology.hpp"
#include "sim/log.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "tcp/connection.hpp"
#include "vc/openflow.hpp"

using namespace scidmz;
using namespace scidmz::sim::literals;

int main() {
  sim::Simulator simulator;
  sim::Rng rng{23};
  sim::Logger logger;
  net::Context ctx{simulator, rng, logger};
  net::Topology topo{ctx};

  // trusted-site --10G-- firewall --10G-- dtn   (+ IDS tap + controller)
  auto& trusted = topo.addHost("trusted-site", net::Address(198, 128, 2, 1));
  auto& attacker = topo.addHost("watchlisted", net::Address(203, 0, 113, 66));
  auto& fw = topo.addFirewall("fw", net::FirewallProfile::enterprise10G());
  auto& dtn = topo.addHost("dtn", net::Address(10, 10, 1, 10));
  net::LinkParams lp;
  lp.rate = 10_Gbps;
  lp.delay = 2_ms;
  lp.mtu = 9000_B;
  topo.connect(trusted, fw, lp);
  topo.connect(attacker, fw, lp);
  topo.connect(fw, dtn, lp);
  topo.computeRoutes();

  net::IntrusionDetectionSystem ids;
  ids.setVettingPacketCount(5);
  ids.addWatchlistPrefix(net::Prefix::parse("203.0.113.0/24"));
  vc::BypassController controller{fw, ids};
  controller.onBypassInstalled = [&](const net::FlowKey& flow) {
    std::printf("[%6.3fs] controller: bypass installed for %s\n",
                simulator.now().toSeconds(), flow.toString().c_str());
  };

  // The trusted site pushes 200 MB to the DTN.
  tcp::TcpConfig cfg;
  cfg.algorithm = tcp::CcAlgorithm::kHtcp;  // DTN-style high-BDP recovery
  cfg.sndBuf = 64_MB;
  cfg.rcvBuf = 64_MB;
  tcp::TcpListener listener{dtn, 2811, cfg};
  tcp::TcpConnection good{trusted, dtn.address(), 2811, cfg};
  good.onEstablished = [&good] { good.sendData(200_MB); };
  bool done = false;
  good.onSendComplete = [&] {
    done = true;
    std::printf("[%6.3fs] trusted transfer complete at %s\n", simulator.now().toSeconds(),
                sim::toString(good.goodput()).c_str());
  };
  good.start();

  // The watch-listed host tries to connect too.
  tcp::TcpConnection bad{attacker, dtn.address(), 2811, cfg};
  bool badEstablished = false;
  bad.onEstablished = [&badEstablished] { badEstablished = true; };
  bad.start();

  simulator.runFor(120_s);

  const auto& stats = fw.firewallStats();
  std::printf("\nfirewall: inspected=%llu policy-drops=%llu\n",
              static_cast<unsigned long long>(stats.inspected),
              static_cast<unsigned long long>(stats.dropsPolicy));
  std::printf("controller: bypasses=%llu blocks=%llu flow-table rules=%zu\n",
              static_cast<unsigned long long>(controller.bypassesInstalled()),
              static_cast<unsigned long long>(controller.dropsInstalled()),
              controller.table().ruleCount());
  std::printf("watchlisted host connected: %s\n", badEstablished ? "YES (bug!)" : "no");

  // Success: transfer done, inspection engines barely touched, attacker out.
  const bool ok = done && !badEstablished && stats.inspected < 100;
  std::puts(ok ? "\nresult: bulk data bypassed the firewall after vetting; attacker blocked"
               : "\nresult: FAILED");
  return ok ? 0 : 1;
}
