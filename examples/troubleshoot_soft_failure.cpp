// Soft-failure troubleshooting (Sections 2 and 3.3): a line card on the
// WAN path starts dropping 1 in 22,000 packets — invisible to interface
// error counters, devastating to TCP. The perfSONAR mesh alerts, segment
// testing localizes the bad link, the card is replaced, and the dashboard
// goes green again.
//
//   ./examples/troubleshoot_soft_failure
#include <cstdio>
#include <memory>

#include "core/site_builder.hpp"
#include "perfsonar/alerts.hpp"
#include "perfsonar/dashboard.hpp"
#include "perfsonar/mesh.hpp"
#include "perfsonar/owamp.hpp"
#include "net/topology.hpp"
#include "sim/log.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

using namespace scidmz;
using namespace scidmz::sim::literals;

int main() {
  sim::Simulator simulator;
  sim::Rng rng{17};
  sim::Logger logger;
  net::Context ctx{simulator, rng, logger};
  net::Topology topo{ctx};

  core::SiteConfig config;
  config.firewall.tcpSequenceChecking = false;
  auto site = core::buildSimpleScienceDmz(topo, config);

  // Continuous measurement between the site's perfSONAR host and the
  // collaborator's, in both directions.
  perfsonar::MeasurementArchive archive;
  perfsonar::MeshRunner::Options meshOptions;
  meshOptions.lossReportInterval = 5_s;
  meshOptions.throughputTestGap = 2_s;
  meshOptions.throughputTestDuration = 5_s;
  meshOptions.owamp.interval = 5_ms;
  perfsonar::MeshRunner mesh{
      ctx,
      {{"site", site->perfsonarHost}, {"collab", site->remotePerfsonarHost}},
      archive,
      meshOptions};
  perfsonar::SoftFailureDetector detector{archive};
  detector.onAlert = [&](const perfsonar::Alert& alert) {
    std::printf("[%7.2fs] ALERT %s->%s %s: %s\n", simulator.now().toSeconds(),
                alert.src.c_str(), alert.dst.c_str(), alert.metric.c_str(),
                alert.message.c_str());
  };
  mesh.start();

  // Periodic detector evaluation, like a cron job on the measurement host.
  std::function<void()> evaluate = [&] {
    detector.evaluate(simulator.now());
    simulator.schedule(5_s, evaluate);
  };
  simulator.schedule(5_s, evaluate);

  std::puts("phase 1: healthy baseline (60s)");
  simulator.runFor(60_s);

  std::puts("phase 2: line card on the WAN span begins dropping 1/22000 packets");
  site->wanLink->setLossModel(0, std::make_unique<net::PeriodicLoss>(22000));
  site->wanLink->setLossModel(1, std::make_unique<net::PeriodicLoss>(22000));
  simulator.runFor(120_s);

  perfsonar::Dashboard dashboard{archive, mesh.siteNames(), config.wan.rate.toMbps() * 0.9};
  std::puts("\ndashboard during the failure:");
  std::fputs(dashboard.render().c_str(), stdout);

  // Localize: one-way segment tests against the border (in practice, the
  // engineer owamps each segment; here the WAN span is the only suspect
  // between the two measurement hosts showing loss in both directions).
  const bool collabToSite = detector.hasActiveAlert("collab", "site");
  const bool siteToCollab = detector.hasActiveAlert("site", "collab");
  std::printf("\nlocalization: loss seen collab->site=%s site->collab=%s -> shared WAN span\n",
              collabToSite ? "yes" : "no", siteToCollab ? "yes" : "no");

  std::puts("phase 3: line card replaced; verifying");
  site->wanLink->repair();
  detector.clearPair("site", "collab");
  detector.clearPair("collab", "site");
  simulator.runFor(90_s);

  std::puts("\ndashboard after the repair:");
  std::fputs(dashboard.render().c_str(), stdout);

  const int bad = dashboard.countAtRating(perfsonar::CellRating::kBad) +
                  dashboard.countAtRating(perfsonar::CellRating::kDegraded);
  std::printf("\ndegraded cells after repair: %d, alerts raised during incident: %zu\n", bad,
              detector.alerts().size());
  mesh.stop();
  return (bad == 0 && !detector.alerts().empty()) ? 0 : 1;
}
