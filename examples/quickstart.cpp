// Quickstart: build a simple Science DMZ (Figure 3 of the paper), validate
// it against the four design patterns, move a 2 GB dataset from a remote
// collaborator to the local DTN, and print what happened.
//
//   ./examples/quickstart
#include <cstdio>

#include "core/report.hpp"
#include "core/site_builder.hpp"
#include "dtn/dtn_node.hpp"
#include "net/topology.hpp"
#include "sim/log.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

using namespace scidmz;
using namespace scidmz::sim::literals;

int main() {
  // Every scenario is one Simulator + one seeded Rng + one Logger.
  sim::Simulator simulator;
  sim::Rng rng{2013};
  sim::Logger logger;
  net::Context ctx{simulator, rng, logger};
  net::Topology topo{ctx};

  // A 10G WAN with 20ms RTT to the collaborator, jumbo frames end to end.
  core::SiteConfig config;
  config.wan.rate = 10_Gbps;
  config.wan.delay = 10_ms;
  config.firewall.tcpSequenceChecking = false;  // a well-run enterprise edge
  auto site = core::buildSimpleScienceDmz(topo, config);

  // Static design review before any packet flows.
  const auto findings = core::validate(*site);
  std::fputs(core::renderSiteReport(*site, findings).c_str(), stdout);

  // Move a dataset: remote DTN -> local DTN, GridFTP-style parallel
  // streams, read from and written to real (simulated) storage.
  dtn::DtnTransfer transfer{*site->remoteDtn, *site->primaryDtn(), "climate-run-042.tar",
                            2_GB, 50000};
  transfer.onComplete = [&](const dtn::DtnTransfer::Result& r) {
    std::printf("\ntransfer complete: %s\n", r.file.c_str());
    std::printf("  bytes:    %s\n", sim::toString(r.bytes).c_str());
    std::printf("  elapsed:  %s\n", sim::toString(r.elapsed).c_str());
    std::printf("  rate:     %s (%.0f MB/s)\n", sim::toString(r.averageRate).c_str(),
                r.averageRate.toMBps());
    std::printf("  retransmits: %llu\n", static_cast<unsigned long long>(r.retransmits));
  };
  transfer.start();
  simulator.runFor(120_s);

  if (!transfer.finished()) {
    std::puts("transfer did not finish within 120 simulated seconds");
    return 1;
  }
  return 0;
}
