// Campus deployment walkthrough: assess a general-purpose campus network,
// measure a science transfer over it, then deploy a Science DMZ and show
// the before/after — the CC-NIE upgrade story in miniature.
//
//   ./examples/campus_deployment
#include <cstdio>

#include "apps/background_traffic.hpp"
#include "core/report.hpp"
#include "core/site_builder.hpp"
#include "dtn/dtn_node.hpp"
#include "net/topology.hpp"
#include "sim/log.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

using namespace scidmz;
using namespace scidmz::sim::literals;

namespace {

struct Measurement {
  double mbps = 0.0;
  sim::Duration elapsed = sim::Duration::zero();
};

/// Run one science transfer on a freshly built site while business traffic
/// churns on the enterprise network.
Measurement measureSite(bool withDmz, sim::DataSize bytes) {
  sim::Simulator simulator;
  sim::Rng rng{99};
  sim::Logger logger;
  net::Context ctx{simulator, rng, logger};
  net::Topology topo{ctx};

  core::SiteConfig config;
  if (!withDmz) {
    config.dtnProfile = dtn::DtnProfile::untunedGeneralPurpose();
    config.remoteProfile = dtn::DtnProfile::untunedGeneralPurpose();
  }
  auto site = withDmz ? core::buildSimpleScienceDmz(topo, config)
                      : core::buildGeneralPurposeCampus(topo, config);

  // Print the design review for this stage.
  const auto findings = core::validate(*site);
  std::fputs(core::renderSiteReport(*site, findings).c_str(), stdout);

  // Enterprise background load: web/mail-style flows among office hosts.
  apps::BackgroundProfile bg;
  bg.flowsPerSecond = 40;
  apps::BackgroundTraffic business{ctx, site->enterpriseHosts, site->enterpriseHosts, 20000, bg,
                                   rng.fork(5)};
  business.start();

  Measurement m;
  dtn::DtnTransfer transfer{*site->remoteDtn, *site->primaryDtn(), "dataset.h5", bytes, 50000};
  transfer.onComplete = [&](const dtn::DtnTransfer::Result& r) {
    m.mbps = r.averageRate.toMbps();
    m.elapsed = r.elapsed;
  };
  transfer.start();
  simulator.runFor(3600_s);
  business.stop();
  return m;
}

}  // namespace

int main() {
  std::puts("== stage 1: the campus as it stands =================================");
  const auto before = measureSite(/*withDmz=*/false, 100_MB);
  std::printf("\nscience transfer (100 MB): %.1f Mbps, %s\n\n", before.mbps,
              sim::toString(before.elapsed).c_str());

  std::puts("== stage 2: after the Science DMZ deployment ========================");
  const auto after = measureSite(/*withDmz=*/true, 2_GB);
  std::printf("\nscience transfer (2 GB): %.1f Mbps, %s\n\n", after.mbps,
              sim::toString(after.elapsed).c_str());

  std::printf("improvement: %.0fx\n", after.mbps / before.mbps);
  return after.mbps > before.mbps ? 0 : 1;
}
