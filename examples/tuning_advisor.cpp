// Tuning advisor walkthrough: ask the library what a DTN on this path
// should look like (the fasterdata guidance, computed), then prove the
// recommendation by running transfers with and without it.
//
//   ./examples/tuning_advisor
#include <cstdio>

#include "core/site_builder.hpp"
#include "core/tuning.hpp"
#include "dtn/dtn_node.hpp"
#include "net/topology.hpp"
#include "sim/log.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

using namespace scidmz;
using namespace scidmz::sim::literals;

int main() {
  sim::Simulator simulator;
  sim::Rng rng{31};
  sim::Logger logger;
  net::Context ctx{simulator, rng, logger};
  net::Topology topo{ctx};

  // A long path: 10G, 80ms RTT (transatlantic-ish), with a little residual
  // loss the measurement host reported.
  core::SiteConfig config;
  config.wan.rate = 10_Gbps;
  config.wan.delay = 40_ms;
  auto site = core::buildSimpleScienceDmz(topo, config);

  core::TuningInputs inputs;
  inputs.expectedLossRate = 2e-6;  // from the owamp archive, say
  const auto rec = core::recommendTuning(topo, site->remoteDtn->host().address(),
                                         site->primaryDtn()->host().address(), inputs);
  if (!rec) {
    std::puts("path unroutable");
    return 1;
  }
  std::puts("recommended DTN configuration for this path:");
  std::fputs(rec->rationale.c_str(), stdout);

  auto runTransfer = [&](dtn::DtnProfile profile, const char* label, sim::DataSize bytes,
                         std::uint16_t port) {
    auto& storage = site->addStorage(ctx, dtn::StorageProfile::parallelFsBackend());
    auto& sender = site->addDtnNode(site->remoteDtn->host(), storage, profile);
    dtn::DtnTransfer transfer{sender, *site->primaryDtn(), std::string{label} + ".dat", bytes,
                              port};
    transfer.start();
    simulator.runFor(600_s);
    std::printf("%-24s %s %s in %s (%.1f MB/s)\n", label,
                transfer.finished() ? "moved" : "DID NOT FINISH",
                sim::toString(bytes).c_str(),
                sim::toString(transfer.result().elapsed).c_str(),
                transfer.result().averageRate.toMBps());
    return transfer.result().averageRate.toMbps();
  };

  std::puts("\nproof by transfer:");
  // The untuned host crawls at ~6.5 Mbps (64 KB / 80 ms); give it a small
  // file so the demo stays snappy. Rates, not sizes, are being compared.
  const double untuned =
      runTransfer(dtn::DtnProfile::untunedGeneralPurpose(), "untuned-defaults", 64_MB, 50200);
  const double tuned = runTransfer(rec->asDtnProfile(), "advisor-recommended", 4_GB, 50300);
  std::printf("\nadvisor speedup: %.0fx\n", tuned / untuned);
  return tuned > untuned ? 0 : 1;
}
