// Supercomputer-center example (Figure 4): WAN data arrives through the
// DTN pool and lands directly on the shared parallel filesystem, where the
// compute side can read it immediately — no second copy through login
// nodes. Several files stream in concurrently; the catalog is polled the
// way a workflow manager would.
//
//   ./examples/supercomputer_center
#include <cstdio>
#include <memory>
#include <vector>

#include "core/site_builder.hpp"
#include "dtn/dtn_cluster.hpp"
#include "net/topology.hpp"
#include "sim/log.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

using namespace scidmz;
using namespace scidmz::sim::literals;

int main() {
  sim::Simulator simulator;
  sim::Rng rng{7};
  sim::Logger logger;
  net::Context ctx{simulator, rng, logger};
  net::Topology topo{ctx};

  core::SiteConfig config;
  config.wan.rate = 10_Gbps;
  config.wan.delay = 25_ms;  // cross-country
  config.dtnCount = 4;
  config.computeNodeCount = 4;
  auto center = core::buildSupercomputerCenter(topo, config);

  // Ship a campaign of restart files from the experiment's remote site
  // into the center, spread across the DTN pool.
  dtn::DtnCluster remote{"experiment"};
  remote.addNode(*center->remoteDtn);
  dtn::DtnCluster local{"center"};
  for (auto* node : center->dtns) local.addNode(*node);

  dtn::TransferCampaign campaign{remote, local};
  std::vector<std::string> names;
  for (int i = 0; i < 8; ++i) {
    names.push_back("shot-" + std::to_string(1000 + i) + ".h5");
    campaign.enqueue({names.back(), 800_MB});
  }
  campaign.onComplete = [&](const dtn::TransferCampaign::Report& r) {
    std::printf("campaign done: %zu files, %s in %s (%s aggregate)\n", r.filesDone,
                sim::toString(r.bytesMoved).c_str(), sim::toString(r.elapsed).c_str(),
                sim::toString(r.aggregateRate()).c_str());
  };
  campaign.start();

  // A workflow manager on the compute side polls the catalog and "starts
  // analysis" the moment each file is visible — without any copy step.
  std::size_t seen = 0;
  std::vector<std::string> started;
  std::function<void()> poll = [&] {
    for (const auto& name : names) {
      if (!center->parallelFs->available(name, simulator.now())) continue;
      bool isNew = true;
      for (const auto& s : started) {
        if (s == name) {
          isNew = false;
          break;
        }
      }
      if (isNew) {
        started.push_back(name);
        ++seen;
        std::printf("[%7.2fs] compute: %s visible on /scratch, starting analysis\n",
                    simulator.now().toSeconds(), name.c_str());
      }
    }
    if (seen < names.size()) simulator.schedule(500_ms, poll);
  };
  simulator.schedule(500_ms, poll);

  simulator.runFor(600_s);

  std::printf("\nfiles visible to compute: %zu / %zu\n", seen, names.size());
  std::printf("shared filesystem catalog entries: %zu\n", center->parallelFs->fileCount());
  return seen == names.size() ? 0 : 1;
}
