// Storage models behind data transfer nodes: local disk subsystems, SANs,
// and striped parallel filesystems (Lustre/GPFS-style).
//
// The model is rate-based with fair sharing: a subsystem has aggregate
// read/write bandwidth; concurrently active streams split it evenly (up to
// a per-stream cap). Transfers pump data through storage streams, so a
// slow disk — not just the network — can be the measured bottleneck, as on
// real DTNs.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/context.hpp"
#include "sim/units.hpp"

namespace scidmz::dtn {

struct StorageProfile {
  sim::DataRate readRate = sim::DataRate::megabitsPerSecond(8000);   // 1 GB/s
  sim::DataRate writeRate = sim::DataRate::megabitsPerSecond(8000);
  /// Cap on any single stream (head positioning, per-OST limits, ...).
  sim::DataRate perStreamCap = sim::DataRate::megabitsPerSecond(8000);
  /// Granularity of the pump loop.
  sim::Duration tick = sim::Duration::milliseconds(10);

  /// A single spinning disk: the anti-pattern on a would-be fast DTN.
  static StorageProfile singleDisk() {
    StorageProfile p;
    p.readRate = sim::DataRate::megabitsPerSecond(1200);  // 150 MB/s
    p.writeRate = sim::DataRate::megabitsPerSecond(960);
    p.perStreamCap = p.readRate;
    return p;
  }

  /// RAID array / SAN volume suitable for a 10G DTN.
  static StorageProfile raidArray() {
    StorageProfile p;
    p.readRate = sim::DataRate::megabitsPerSecond(16000);  // 2 GB/s
    p.writeRate = sim::DataRate::megabitsPerSecond(12000);
    p.perStreamCap = sim::DataRate::megabitsPerSecond(8000);
    return p;
  }

  /// Striped parallel filesystem backend (many OSTs): supercomputer-center
  /// class aggregate bandwidth.
  static StorageProfile parallelFsBackend() {
    StorageProfile p;
    p.readRate = sim::DataRate::gigabitsPerSecond(80);  // 10 GB/s
    p.writeRate = sim::DataRate::gigabitsPerSecond(64);
    p.perStreamCap = sim::DataRate::gigabitsPerSecond(16);
    return p;
  }
};

/// Handle for an open storage stream.
struct StreamId {
  std::uint64_t value = 0;
  [[nodiscard]] constexpr bool valid() const { return value != 0; }
  constexpr bool operator==(const StreamId&) const = default;
};

/// A shared storage device pumping byte chunks to its open streams.
class StorageSubsystem {
 public:
  StorageSubsystem(net::Context& ctx, StorageProfile profile);
  ~StorageSubsystem();

  StorageSubsystem(const StorageSubsystem&) = delete;
  StorageSubsystem& operator=(const StorageSubsystem&) = delete;

  using ChunkCallback = std::function<void(sim::DataSize)>;
  using DoneCallback = std::function<void()>;

  /// Open a read stream for `total` bytes: `onChunk` fires as data becomes
  /// available off the platters, `onDone` once when the last byte is read.
  StreamId openRead(sim::DataSize total, ChunkCallback onChunk, DoneCallback onDone);

  /// Open a write stream: push bytes in with `offerWrite`; they complete
  /// (durably land) at the device's paced rate. `onDone` fires when all of
  /// `total` has been written.
  StreamId openWrite(sim::DataSize total, DoneCallback onDone);

  /// Queue received bytes on a write stream (from the network receive
  /// path). Returns the current backlog after the offer.
  sim::DataSize offerWrite(StreamId id, sim::DataSize bytes);

  /// Abandon a stream (transfer aborted).
  void close(StreamId id);

  [[nodiscard]] int activeReadStreams() const;
  [[nodiscard]] int activeWriteStreams() const;
  [[nodiscard]] const StorageProfile& profile() const { return profile_; }

  struct Stats {
    sim::DataSize bytesRead = sim::DataSize::zero();
    sim::DataSize bytesWritten = sim::DataSize::zero();
    std::uint64_t readStreamsOpened = 0;
    std::uint64_t writeStreamsOpened = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct ReadStream {
    sim::DataSize remaining = sim::DataSize::zero();
    ChunkCallback onChunk;
    DoneCallback onDone;
  };
  struct WriteStream {
    sim::DataSize expected = sim::DataSize::zero();
    sim::DataSize written = sim::DataSize::zero();
    sim::DataSize backlog = sim::DataSize::zero();
    DoneCallback onDone;
  };

  void ensurePump();
  void pump();

  net::Context& ctx_;
  StorageProfile profile_;
  std::unordered_map<std::uint64_t, ReadStream> reads_;
  std::unordered_map<std::uint64_t, WriteStream> writes_;
  std::uint64_t next_id_ = 0;
  bool pump_armed_ = false;
  sim::EventId pump_timer_{};
  Stats stats_;
};

/// A parallel filesystem: a StorageSubsystem plus a file catalog shared by
/// every mount (DTNs and compute nodes alike). Files written through a DTN
/// are immediately visible to the compute side — the paper's "no double
/// copy" property of the supercomputer-center design.
class ParallelFilesystem {
 public:
  explicit ParallelFilesystem(net::Context& ctx,
                              StorageProfile profile = StorageProfile::parallelFsBackend())
      : storage_(ctx, profile) {}

  [[nodiscard]] StorageSubsystem& storage() { return storage_; }

  /// Record a completed file (called by the ingesting DTN's write path).
  void commitFile(const std::string& name, sim::DataSize size, sim::SimTime at) {
    catalog_[name] = Entry{size, at};
  }

  struct Entry {
    sim::DataSize size = sim::DataSize::zero();
    sim::SimTime availableAt;
  };
  [[nodiscard]] const Entry* lookup(const std::string& name) const {
    const auto it = catalog_.find(name);
    return it == catalog_.end() ? nullptr : &it->second;
  }
  [[nodiscard]] bool available(const std::string& name, sim::SimTime now) const {
    const auto* e = lookup(name);
    return e != nullptr && e->availableAt <= now;
  }
  [[nodiscard]] std::size_t fileCount() const { return catalog_.size(); }

 private:
  StorageSubsystem storage_;
  std::unordered_map<std::string, Entry> catalog_;
};

}  // namespace scidmz::dtn
