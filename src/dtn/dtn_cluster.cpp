#include "dtn/dtn_cluster.hpp"

#include <algorithm>

namespace scidmz::dtn {

void TransferCampaign::start() {
  if (started_ || src_.size() == 0 || dst_.size() == 0) return;
  started_ = true;
  ctx_ = &src_.node(0).host().ctx();
  started_at_ = ctx_->now();

  const std::size_t laneCount = std::max(src_.size(), dst_.size());
  for (std::size_t i = 0; i < laneCount; ++i) {
    Lane lane;
    lane.srcNode = &src_.node(i % src_.size());
    lane.dstNode = &dst_.node(i % dst_.size());
    lane.port = static_cast<std::uint16_t>(base_port_ + i);
    lanes_.push_back(std::move(lane));
  }
  for (std::size_t i = 0; i < lanes_.size(); ++i) pump(i);
  maybeAnnounce();
}

void TransferCampaign::pump(std::size_t laneIndex) {
  auto& lane = lanes_[laneIndex];
  if (queue_.empty()) {
    lane.current.reset();
    return;
  }
  FileEntry file = std::move(queue_.front());
  queue_.pop_front();
  ++active_;

  lane.current = std::make_unique<DtnTransfer>(*lane.srcNode, *lane.dstNode, file.name,
                                               file.size, lane.port);
  lane.current->onComplete = [this, laneIndex](const DtnTransfer::Result& r) {
    ++report_.filesDone;
    report_.bytesMoved += r.bytes;
    report_.retransmits += r.retransmits;
    --active_;
    // Defer the next launch: we are inside the finished transfer's own
    // callback chain and must not destroy it mid-flight.
    auto& ctx = lanes_[laneIndex].srcNode->host().ctx();
    ctx.sim().schedule(sim::Duration::zero(), [this, laneIndex] {
      pump(laneIndex);
      maybeAnnounce();
    });
  };
  lane.current->start();
}

void TransferCampaign::maybeAnnounce() {
  if (!started_ || announced_ || active_ != 0 || !queue_.empty()) return;
  announced_ = true;
  report_.elapsed = src_.node(0).host().ctx().now() - started_at_;
  if (onComplete) onComplete(report_);
}

TransferCampaign::Report TransferCampaign::report() const {
  Report r = report_;
  if (started_ && !announced_ && ctx_ != nullptr) r.elapsed = ctx_->now() - started_at_;
  return r;
}

}  // namespace scidmz::dtn
