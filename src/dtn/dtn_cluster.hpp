// DTN clusters: groups of transfer nodes serving multi-petabyte stores
// (the LHC Tier-1 pattern of Section 4.3). A campaign moves a file list
// between two clusters, spreading files across node pairs.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dtn/dtn_node.hpp"

namespace scidmz::dtn {

class DtnCluster {
 public:
  explicit DtnCluster(std::string name) : name_(std::move(name)) {}

  void addNode(DataTransferNode& node) { nodes_.push_back(&node); }
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] DataTransferNode& node(std::size_t i) { return *nodes_.at(i); }
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::vector<DataTransferNode*> nodes_;
};

/// A bulk campaign between two clusters: files are assigned to node pairs
/// round-robin; each pair works through its share one file at a time.
class TransferCampaign {
 public:
  struct FileEntry {
    std::string name;
    sim::DataSize size = sim::DataSize::zero();
  };

  struct Report {
    std::size_t filesTotal = 0;
    std::size_t filesDone = 0;
    sim::DataSize bytesMoved = sim::DataSize::zero();
    sim::Duration elapsed = sim::Duration::zero();
    std::uint64_t retransmits = 0;

    [[nodiscard]] sim::DataRate aggregateRate() const {
      if (elapsed <= sim::Duration::zero()) return sim::DataRate::zero();
      return sim::DataRate::bitsPerSecond(static_cast<std::uint64_t>(
          static_cast<double>(bytesMoved.bitCount()) / elapsed.toSeconds()));
    }
  };

  TransferCampaign(DtnCluster& src, DtnCluster& dst, std::uint16_t basePort = 50000)
      : src_(src), dst_(dst), base_port_(basePort) {}

  TransferCampaign(const TransferCampaign&) = delete;
  TransferCampaign& operator=(const TransferCampaign&) = delete;

  void enqueue(FileEntry file) {
    ++report_.filesTotal;
    queue_.push_back(std::move(file));
  }

  void start();

  std::function<void(const Report&)> onComplete;

  [[nodiscard]] Report report() const;
  [[nodiscard]] bool finished() const { return announced_; }

 private:
  struct Lane {
    DataTransferNode* srcNode = nullptr;
    DataTransferNode* dstNode = nullptr;
    std::uint16_t port = 0;
    std::unique_ptr<DtnTransfer> current;
  };

  void pump(std::size_t laneIndex);
  void maybeAnnounce();

  DtnCluster& src_;
  DtnCluster& dst_;
  net::Context* ctx_ = nullptr;
  std::uint16_t base_port_;
  std::deque<FileEntry> queue_;
  std::vector<Lane> lanes_;
  std::size_t active_ = 0;
  sim::SimTime started_at_;
  bool started_ = false;
  bool announced_ = false;
  Report report_;
};

}  // namespace scidmz::dtn
