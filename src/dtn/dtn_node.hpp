// The Data Transfer Node: a purpose-built host dedicated to wide area
// transfers (Section 3.2 of the paper). A DTN couples a tuned network host
// to a storage subsystem and runs only transfer tooling.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dtn/storage.hpp"
#include "net/flow.hpp"
#include "net/host.hpp"
#include "tcp/connection.hpp"
#include "telemetry/span.hpp"

namespace scidmz::dtn {

struct DtnProfile {
  tcp::TcpConfig tcp = tcp::TcpConfig::tunedDtn();
  /// GridFTP-style parallel streams per transfer.
  int parallelStreams = 4;
  /// True for real DTNs: only data-transfer applications installed. The
  /// design-rule validator flags general-purpose hosts posing as DTNs.
  bool dedicatedApplicationSet = true;
  /// Flow model fidelity for transfers originating at this DTN. kPacket
  /// keeps full per-segment TCP; kFluid/kAuto let large transfer fleets run
  /// on the analytic engine.
  net::FlowFidelity fidelity = net::FlowFidelity::kPacket;

  /// An untuned general-purpose server pressed into transfer duty — the
  /// baseline the paper's use cases start from.
  static DtnProfile untunedGeneralPurpose() {
    DtnProfile p;
    p.tcp = tcp::TcpConfig::untunedDefault();
    p.parallelStreams = 1;
    p.dedicatedApplicationSet = false;
    return p;
  }
};

class DataTransferNode {
 public:
  DataTransferNode(net::Host& host, StorageSubsystem& storage, DtnProfile profile = DtnProfile())
      : host_(host), storage_(storage), profile_(profile) {}

  [[nodiscard]] net::Host& host() { return host_; }
  [[nodiscard]] const net::Host& host() const { return host_; }
  [[nodiscard]] StorageSubsystem& storage() { return storage_; }
  [[nodiscard]] const DtnProfile& profile() const { return profile_; }

  /// Optional: commits of completed inbound files land in this catalog
  /// (the shared parallel filesystem of the supercomputer-center design).
  void attachFilesystem(ParallelFilesystem* fs) { filesystem_ = fs; }
  [[nodiscard]] ParallelFilesystem* filesystem() const { return filesystem_; }

 private:
  net::Host& host_;
  StorageSubsystem& storage_;
  DtnProfile profile_;
  ParallelFilesystem* filesystem_ = nullptr;
};

/// One file moved DTN-to-DTN: read from source storage at disk speed, sent
/// over parallel TCP streams, written to destination storage, committed to
/// the destination catalog. Completion means *durably written*, not just
/// ACKed — storage can be the bottleneck and the result shows it.
class DtnTransfer {
 public:
  struct Result {
    bool completed = false;
    std::string file;
    sim::DataSize bytes = sim::DataSize::zero();
    sim::Duration elapsed = sim::Duration::zero();
    sim::DataRate averageRate = sim::DataRate::zero();
    std::uint64_t retransmits = 0;
  };

  DtnTransfer(DataTransferNode& src, DataTransferNode& dst, std::string fileName,
              sim::DataSize fileSize, std::uint16_t port);
  ~DtnTransfer();

  DtnTransfer(const DtnTransfer&) = delete;
  DtnTransfer& operator=(const DtnTransfer&) = delete;

  void start();

  std::function<void(const Result&)> onComplete;

  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] const Result& result() const { return result_; }

 private:
  void feed(sim::DataSize chunk);
  void maybeFinish();

  DataTransferNode& src_;
  DataTransferNode& dst_;
  std::string file_name_;
  sim::DataSize file_size_;
  std::uint16_t port_;

  net::FlowPtr flow_;
  bool reading_started_ = false;
  StreamId read_stream_{};
  StreamId write_stream_{};
  bool write_done_ = false;
  sim::SimTime started_at_;
  bool finished_ = false;
  Result result_;

  // Span tracing: a "dtn.transfer" root over the whole move plus a
  // "storage" child covering the destination write stream — completion
  // means durably written, and the child makes a storage-limited tail
  // visible in the trace.
  telemetry::Tracer* tracer_ = nullptr;
  telemetry::SpanId span_{};
  telemetry::SpanId write_span_{};
};

}  // namespace scidmz::dtn
