#include "dtn/dtn_node.hpp"

namespace scidmz::dtn {

DtnTransfer::DtnTransfer(DataTransferNode& src, DataTransferNode& dst, std::string fileName,
                         sim::DataSize fileSize, std::uint16_t port)
    : src_(src), dst_(dst), file_name_(std::move(fileName)), file_size_(fileSize), port_(port) {}

DtnTransfer::~DtnTransfer() {
  src_.storage().close(read_stream_);
  dst_.storage().close(write_stream_);
}

void DtnTransfer::start() {
  started_at_ = src_.host().ctx().now();

  // Destination side: accept streams; every delivered byte is offered to
  // the write stream, whose completion defines transfer completion.
  write_stream_ = dst_.storage().openWrite(file_size_, [this] {
    write_done_ = true;
    maybeFinish();
  });
  listener_ = dst_.host().ctx().arena().make<tcp::TcpListener>(dst_.host(), port_, dst_.profile().tcp);
  listener_->onAccept = [this](tcp::TcpConnection& conn) {
    conn.onDelivered = [this](sim::DataSize bytes) {
      dst_.storage().offerWrite(write_stream_, bytes);
    };
  };

  // Source side: parallel streams, fed round-robin from the disk pump.
  const int streamCount = std::max(1, src_.profile().parallelStreams);
  for (int i = 0; i < streamCount; ++i) {
    auto conn = src_.host().ctx().arena().make<tcp::TcpConnection>(src_.host(), dst_.host().address(), port_,
                                                     src_.profile().tcp);
    conn->onEstablished = [this] {
      ++established_;
      if (!reading_started_ && established_ == streams_.size()) {
        reading_started_ = true;
        read_stream_ = src_.storage().openRead(
            file_size_, [this](sim::DataSize chunk) { feed(chunk); }, [] {});
      }
    };
    streams_.push_back(std::move(conn));
  }
  for (auto& s : streams_) s->start();
}

void DtnTransfer::feed(sim::DataSize chunk) {
  // Round-robin the freshly-read chunk across the parallel streams.
  auto& conn = streams_[next_stream_];
  next_stream_ = (next_stream_ + 1) % streams_.size();
  conn->sendData(chunk);
}

void DtnTransfer::maybeFinish() {
  if (finished_ || !write_done_) return;
  finished_ = true;
  const auto now = src_.host().ctx().now();
  result_.completed = true;
  result_.file = file_name_;
  result_.bytes = file_size_;
  result_.elapsed = now - started_at_;
  if (result_.elapsed > sim::Duration::zero()) {
    result_.averageRate = sim::DataRate::bitsPerSecond(static_cast<std::uint64_t>(
        static_cast<double>(file_size_.bitCount()) / result_.elapsed.toSeconds()));
  }
  for (const auto& s : streams_) result_.retransmits += s->stats().retransmits;
  auto& tel = src_.host().ctx().telemetry();
  if (tel.enabled()) {
    ++tel.metrics().counter("dtn/transfers_completed");
    tel.metrics().counter("dtn/bytes_transferred") += file_size_.byteCount();
    tel.metrics().counter("dtn/retransmits") += result_.retransmits;
  }
  if (dst_.filesystem() != nullptr) {
    dst_.filesystem()->commitFile(file_name_, file_size_, now);
  }
  if (onComplete) onComplete(result_);
}

}  // namespace scidmz::dtn
