#include "dtn/dtn_node.hpp"

namespace scidmz::dtn {

DtnTransfer::DtnTransfer(DataTransferNode& src, DataTransferNode& dst, std::string fileName,
                         sim::DataSize fileSize, std::uint16_t port)
    : src_(src), dst_(dst), file_name_(std::move(fileName)), file_size_(fileSize), port_(port) {}

DtnTransfer::~DtnTransfer() {
  src_.storage().close(read_stream_);
  dst_.storage().close(write_stream_);
  if (tracer_ != nullptr) {
    const auto now = src_.host().ctx().now();
    if (write_span_.valid() && tracer_->isOpen(write_span_)) tracer_->end(write_span_, now);
    if (span_.valid() && tracer_->isOpen(span_)) tracer_->end(span_, now);
  }
}

void DtnTransfer::start() {
  started_at_ = src_.host().ctx().now();
  auto& tracer = src_.host().ctx().extension<telemetry::Tracer>();
  if (tracer.enabled()) {
    tracer_ = &tracer;
    span_ = tracer_->begin(started_at_, "dtn.transfer " + file_name_, "dtn.transfer");
    tracer_->annotate(span_, "bytes", file_size_.byteCount());
    write_span_ = tracer_->begin(started_at_, "storage.write", "storage", span_);
  }

  // Destination side: accept streams; every delivered byte is offered to
  // the write stream, whose completion defines transfer completion.
  write_stream_ = dst_.storage().openWrite(file_size_, [this] {
    write_done_ = true;
    if (tracer_ != nullptr && write_span_.valid()) {
      tracer_->end(write_span_, src_.host().ctx().now());
    }
    maybeFinish();
  });

  // Source side: one flow with GridFTP-style parallel streams, fed
  // round-robin from the disk pump. The listener side runs the destination
  // DTN's TCP profile (the two ends can be tuned differently).
  net::FlowFactory::Options options;
  options.port = port_;
  options.streams = std::max(1, src_.profile().parallelStreams);
  options.fidelity = src_.profile().fidelity;
  options.serverTcp = &dst_.profile().tcp;
  flow_ = net::flowFactory(src_.host().ctx())
              .create(src_.host(), dst_.host(), src_.profile().tcp, options);
  flow_->onDelivered = [this](sim::DataSize bytes) {
    dst_.storage().offerWrite(write_stream_, bytes);
  };
  flow_->onEstablished = [this] {
    if (!reading_started_) {
      reading_started_ = true;
      read_stream_ = src_.storage().openRead(
          file_size_, [this](sim::DataSize chunk) { feed(chunk); }, [] {});
    }
  };
  flow_->start();
}

void DtnTransfer::feed(sim::DataSize chunk) {
  // Round-robin the freshly-read chunk across the parallel streams.
  flow_->sendData(chunk);
}

void DtnTransfer::maybeFinish() {
  if (finished_ || !write_done_) return;
  finished_ = true;
  const auto now = src_.host().ctx().now();
  result_.completed = true;
  result_.file = file_name_;
  result_.bytes = file_size_;
  result_.elapsed = now - started_at_;
  if (result_.elapsed > sim::Duration::zero()) {
    result_.averageRate = sim::DataRate::bitsPerSecond(static_cast<std::uint64_t>(
        static_cast<double>(file_size_.bitCount()) / result_.elapsed.toSeconds()));
  }
  result_.retransmits = flow_ ? flow_->retransmits() : 0;
  if (tracer_ != nullptr && span_.valid()) {
    tracer_->annotate(span_, "retransmits", result_.retransmits);
    tracer_->end(span_, now);
  }
  auto& tel = src_.host().ctx().telemetry();
  if (tel.enabled()) {
    ++tel.metrics().counter("dtn/transfers_completed");
    tel.metrics().counter("dtn/bytes_transferred") += file_size_.byteCount();
    tel.metrics().counter("dtn/retransmits") += result_.retransmits;
  }
  if (dst_.filesystem() != nullptr) {
    dst_.filesystem()->commitFile(file_name_, file_size_, now);
  }
  if (onComplete) onComplete(result_);
}

}  // namespace scidmz::dtn
