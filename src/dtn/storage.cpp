#include "dtn/storage.hpp"

#include <algorithm>
#include <vector>

namespace scidmz::dtn {

StorageSubsystem::StorageSubsystem(net::Context& ctx, StorageProfile profile)
    : ctx_(ctx), profile_(profile) {}

StorageSubsystem::~StorageSubsystem() {
  if (pump_timer_.valid()) ctx_.sim().cancel(pump_timer_);
}

StreamId StorageSubsystem::openRead(sim::DataSize total, ChunkCallback onChunk,
                                    DoneCallback onDone) {
  const StreamId id{++next_id_};
  reads_.emplace(id.value, ReadStream{total, std::move(onChunk), std::move(onDone)});
  ++stats_.readStreamsOpened;
  ensurePump();
  return id;
}

StreamId StorageSubsystem::openWrite(sim::DataSize total, DoneCallback onDone) {
  const StreamId id{++next_id_};
  writes_.emplace(id.value, WriteStream{total, sim::DataSize::zero(), sim::DataSize::zero(),
                                        std::move(onDone)});
  ++stats_.writeStreamsOpened;
  return id;
}

sim::DataSize StorageSubsystem::offerWrite(StreamId id, sim::DataSize bytes) {
  const auto it = writes_.find(id.value);
  if (it == writes_.end()) return sim::DataSize::zero();
  it->second.backlog += bytes;
  ensurePump();
  return it->second.backlog;
}

void StorageSubsystem::close(StreamId id) {
  reads_.erase(id.value);
  writes_.erase(id.value);
}

int StorageSubsystem::activeReadStreams() const { return static_cast<int>(reads_.size()); }

int StorageSubsystem::activeWriteStreams() const {
  int n = 0;
  for (const auto& [id, w] : writes_) {
    if (w.backlog > sim::DataSize::zero()) ++n;
  }
  return n;
}

void StorageSubsystem::ensurePump() {
  if (pump_armed_) return;
  pump_armed_ = true;
  pump_timer_ = ctx_.sim().schedule(profile_.tick, [this] {
    pump_timer_ = sim::EventId{};
    pump_armed_ = false;
    pump();
  });
}

void StorageSubsystem::pump() {
  const auto tick = profile_.tick;

  // --- reads: fair share of readRate across active read streams ---------
  if (!reads_.empty()) {
    const auto fairRate = std::min(
        profile_.perStreamCap, profile_.readRate / static_cast<std::uint64_t>(reads_.size()));
    const auto perStream = fairRate.bytesIn(tick);
    // Iterate over a snapshot of ids: callbacks may open/close streams.
    std::vector<std::uint64_t> ids;
    ids.reserve(reads_.size());
    for (const auto& [id, r] : reads_) ids.push_back(id);
    for (const auto id : ids) {
      const auto it = reads_.find(id);
      if (it == reads_.end()) continue;
      auto& stream = it->second;
      const auto chunk = std::min(perStream, stream.remaining);
      if (chunk == sim::DataSize::zero()) continue;
      stream.remaining -= chunk;
      stats_.bytesRead += chunk;
      const bool done = stream.remaining == sim::DataSize::zero();
      // Move the callbacks out before erasing so `done` can close us.
      auto onChunk = stream.onChunk;
      auto onDone = done ? stream.onDone : DoneCallback{};
      if (done) reads_.erase(it);
      if (onChunk) onChunk(chunk);
      if (onDone) onDone();
    }
  }

  // --- writes: drain backlogs at fair share of writeRate ----------------
  int activeWrites = activeWriteStreams();
  if (activeWrites > 0) {
    const auto fairRate = std::min(profile_.perStreamCap,
                                   profile_.writeRate / static_cast<std::uint64_t>(activeWrites));
    const auto perStream = fairRate.bytesIn(tick);
    std::vector<std::uint64_t> ids;
    ids.reserve(writes_.size());
    for (const auto& [id, w] : writes_) ids.push_back(id);
    for (const auto id : ids) {
      const auto it = writes_.find(id);
      if (it == writes_.end()) continue;
      auto& stream = it->second;
      const auto chunk = std::min(perStream, stream.backlog);
      if (chunk == sim::DataSize::zero()) continue;
      stream.backlog -= chunk;
      stream.written += chunk;
      stats_.bytesWritten += chunk;
      if (stream.written >= stream.expected) {
        auto onDone = stream.onDone;
        writes_.erase(it);
        if (onDone) onDone();
      }
    }
  }

  // Keep pumping while any stream has work.
  const bool readWork = !reads_.empty();
  bool writeWork = false;
  for (const auto& [id, w] : writes_) {
    if (w.backlog > sim::DataSize::zero()) {
      writeWork = true;
      break;
    }
  }
  if (readWork || writeWork) ensurePump();
}

}  // namespace scidmz::dtn
