// Sampled time series: the storage behind cwnd/queue-depth/utilization
// probes and the perfSONAR measurement archive (which consumes the same
// type instead of keeping a private one).
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "sim/codec.hpp"
#include "sim/units.hpp"

namespace scidmz::telemetry {

struct Sample {
  sim::SimTime at;
  double value = 0.0;
};

class TimeSeries {
 public:
  explicit TimeSeries(std::string name) : name_(std::move(name)) {}

  void append(sim::SimTime at, double value) { samples_.push_back(Sample{at, value}); }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<Sample>& samples() const { return samples_; }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] std::size_t size() const { return samples_.size(); }

  [[nodiscard]] double first() const { return samples_.empty() ? 0.0 : samples_.front().value; }
  [[nodiscard]] double last() const { return samples_.empty() ? 0.0 : samples_.back().value; }

  [[nodiscard]] double min() const {
    double m = samples_.empty() ? 0.0 : samples_.front().value;
    for (const auto& s : samples_) m = s.value < m ? s.value : m;
    return m;
  }

  [[nodiscard]] double max() const {
    double m = samples_.empty() ? 0.0 : samples_.front().value;
    for (const auto& s : samples_) m = s.value > m ? s.value : m;
    return m;
  }

  [[nodiscard]] double mean() const {
    if (samples_.empty()) return 0.0;
    double total = 0.0;
    for (const auto& s : samples_) total += s.value;
    return total / static_cast<double>(samples_.size());
  }

  /// Snapshot/restore overlay of the sample vector (the name is the lookup
  /// key and stays with the rebuilt object). Timestamps delta-encode.
  void serialize(sim::Codec& c) {
    std::uint64_t n = samples_.size();
    c.vu64(n);
    if (!c.writing()) {
      samples_.clear();
      samples_.resize(static_cast<std::size_t>(n));
    }
    std::int64_t prevNs = 0;
    for (Sample& s : samples_) {
      std::int64_t deltaNs = s.at.ns() - prevNs;
      c.vi64(deltaNs);
      if (!c.writing()) s.at = sim::SimTime::fromNs(prevNs + deltaNs);
      prevNs = s.at.ns();
      c.f64(s.value);
    }
  }

 private:
  std::string name_;
  std::vector<Sample> samples_;
};

}  // namespace scidmz::telemetry
