// End-of-run telemetry summary: every counter and gauge, a per-series
// digest of each probe, and the flight recorder's accounting, serializable
// as JSON for BENCH_sim.json cell merging and CI artifacts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace scidmz::telemetry {

struct TelemetrySnapshot {
  struct CounterValue {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    double value = 0.0;
  };
  struct SeriesSummary {
    std::string name;
    std::size_t sampleCount = 0;
    double first = 0.0;
    double last = 0.0;
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
  };

  /// Sorted by name so snapshots from different scenarios diff cleanly
  /// regardless of emit-point initialization order.
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<SeriesSummary> series;

  std::uint64_t flightEventsRecorded = 0;
  std::uint64_t flightEventsRetained = 0;
  std::uint64_t flightEventsOverwritten = 0;

  /// Counter value by exact name; 0 when absent.
  [[nodiscard]] std::uint64_t counterValue(const std::string& name) const;
  /// Series summary by exact name; nullptr when absent.
  [[nodiscard]] const SeriesSummary* findSeries(const std::string& name) const;

  /// Compact JSON object (schema scidmz.telemetry.v1, see EXPERIMENTS.md).
  [[nodiscard]] std::string toJson() const;
};

}  // namespace scidmz::telemetry
