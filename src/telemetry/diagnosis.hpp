// Soft-failure localization from telemetry alone: rank every hop that
// recorded loss or drops so the lossy element (the paper's "dirty
// linecard") can be named without packet captures or manual bisection.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/snapshot.hpp"

namespace scidmz::telemetry {

struct HopLoss {
  std::string point;        ///< Counter name of the lossy hop.
  std::uint64_t count = 0;  ///< Packets lost/dropped there.
};

struct LossDiagnosis {
  /// Every hop with nonzero loss, highest count first (name breaks ties).
  std::vector<HopLoss> suspects;

  [[nodiscard]] bool clean() const { return suspects.empty(); }
  /// The most likely failing element, or nullptr on a clean network.
  [[nodiscard]] const HopLoss* culprit() const {
    return suspects.empty() ? nullptr : &suspects.front();
  }
};

/// Scan a snapshot's counters for loss/drop evidence. Matches the standard
/// emit-point vocabulary: any counter whose name contains "lost" or
/// "drops" (queue tail drops, ACL drops, firewall buffer drops, link-level
/// impairment loss) with a nonzero value becomes a suspect.
[[nodiscard]] LossDiagnosis localizeLoss(const TelemetrySnapshot& snapshot);

}  // namespace scidmz::telemetry
