#include "telemetry/telemetry.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>

namespace scidmz::telemetry {

namespace {

bool envTruthy(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return false;
  const std::string s(v);
  return s != "0" && s != "off" && s != "false" && s != "no";
}

long long envLong(const char* name, long long fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  return (end != v && parsed > 0) ? parsed : fallback;
}

}  // namespace

Telemetry::Telemetry(sim::Simulator& simulator, sim::Arena& arena)
    : sim_(simulator), arena_(arena) {
  enableFromEnv();
}

Telemetry::Telemetry(sim::Simulator& simulator)
    : sim_(simulator),
      owned_arena_(std::make_unique<sim::Arena>()),
      arena_(*owned_arena_) {
  enableFromEnv();
}

void Telemetry::enableFromEnv() {
  if (envTruthy("SCIDMZ_TELEMETRY")) {
    TelemetryConfig cfg;
    cfg.sampleEvery = sim::Duration::microseconds(
        envLong("SCIDMZ_TELEMETRY_CADENCE_US", cfg.sampleEvery.ns() / 1000));
    cfg.ringCapacity =
        static_cast<std::size_t>(envLong("SCIDMZ_TELEMETRY_RING",
                                         static_cast<long long>(cfg.ringCapacity)));
    enable(cfg);
  }
}

void Telemetry::enable(TelemetryConfig config) {
  if (enabled_) return;  // first enable wins; samplers may already be armed
  enabled_ = true;
  config_ = config;
  recorder_.setCapacity(config_.ringCapacity);
  if (!samplers_.empty()) armTick();
}

TimeSeries& Telemetry::series(const std::string& name) {
  const auto it = series_index_.find(name);
  if (it != series_index_.end()) return *series_[it->second];
  series_.push_back(arena_.make<TimeSeries>(name));
  series_index_.emplace(name, series_.size() - 1);
  return *series_.back();
}

const TimeSeries* Telemetry::findSeries(const std::string& name) const {
  const auto it = series_index_.find(name);
  return it != series_index_.end() ? series_[it->second].get() : nullptr;
}

SamplerId Telemetry::addSampler(const std::string& seriesName, Sampler fn) {
  SamplerEntry entry;
  entry.id = ++next_sampler_id_;
  entry.series = &series(seriesName);
  entry.fn = std::move(fn);
  samplers_.push_back(std::move(entry));
  if (enabled_) armTick();
  return SamplerId{samplers_.back().id};
}

void Telemetry::removeSampler(SamplerId id) {
  if (!id.valid()) return;
  const auto it = std::find_if(samplers_.begin(), samplers_.end(),
                               [&](const SamplerEntry& e) { return e.id == id.value; });
  if (it != samplers_.end()) samplers_.erase(it);
}

void Telemetry::armTick() {
  if (tick_armed_ || restoring_) return;
  tick_armed_ = true;
  tick_event_ = sim_.scheduleDaemon(config_.sampleEvery, [this] { tick(); });
}

void Telemetry::tick() {
  tick_armed_ = false;
  if (sim::Profiler* prof = sim_.profiler(); prof != nullptr) prof->setSource("telemetry.tick");
  // Sample by id, not iterator: a sampler callback may register or remove
  // samplers (e.g. a TCP connection closing mid-run).
  for (std::size_t i = 0; i < samplers_.size(); ++i) {
    SamplerEntry& entry = samplers_[i];
    entry.series->append(sim_.now(), entry.fn());
  }
  if (!samplers_.empty()) armTick();
}

std::uint64_t Telemetry::serialize(sim::Codec& c) {
  std::uint64_t claimed = 0;
  // enabled() comes from the environment / scenario code and must match
  // between the snapshotting run and the rebuild — a mismatch would change
  // which emit points exist at all.
  bool enabled = enabled_;
  c.b(enabled);
  if (!c.writing() && enabled != enabled_) {
    c.reader().markFailed();
    return claimed;
  }
  sim::codecDuration(c, config_.sampleEvery);
  c.size(config_.ringCapacity);
  metrics_.serialize(c);
  recorder_.serialize(c);
  // Series by name (create-or-get): the rebuild plus component restores
  // created a subset of the snapshot's series; any missing ones appear now.
  std::uint64_t seriesCountN = series_.size();
  c.vu64(seriesCountN);
  if (c.writing()) {
    for (auto& sp : series_) {
      std::string name = sp->name();
      c.str(name);
      sp->serialize(c);
    }
  } else {
    for (std::uint64_t i = 0; i < seriesCountN; ++i) {
      std::string name;
      c.str(name);
      if (!c.ok()) return claimed;
      series(name).serialize(c);
    }
  }
  // Sampler ids continue from the snapshot's counter so ids minted after a
  // restore match the uninterrupted run (restore-time re-registrations
  // re-used ids the original run already minted).
  c.vu32(next_sampler_id_);
  // The pending sampling tick, re-armed as a daemon under its original key.
  if (c.writing()) {
    const sim::EventKey key = sim_.eventKey(tick_event_);
    bool armed = key.valid;
    c.b(armed);
    if (armed) {
      sim::SimTime at = key.at;
      std::uint64_t seq = key.seq;
      sim::codecTime(c, at);
      c.vu64(seq);
      claimed = 1;
    }
  } else {
    restoring_ = false;
    bool armed = false;
    c.b(armed);
    if (armed) {
      sim::SimTime at = sim::SimTime::zero();
      std::uint64_t seq = 0;
      sim::codecTime(c, at);
      c.vu64(seq);
      tick_armed_ = true;
      tick_event_ = sim_.restoreScheduleDaemon(at, seq, [this] { tick(); });
      claimed = 1;
    } else {
      tick_armed_ = false;
      tick_event_ = sim::EventId{};
    }
  }
  return claimed;
}

TelemetrySnapshot Telemetry::snapshot() const {
  TelemetrySnapshot snap;
  metrics_.forEachCounter([&](const std::string& name, std::uint64_t value) {
    snap.counters.push_back({name, value});
  });
  metrics_.forEachGauge([&](const std::string& name, double value) {
    snap.gauges.push_back({name, value});
  });
  std::sort(snap.counters.begin(), snap.counters.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  std::sort(snap.gauges.begin(), snap.gauges.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  for (const auto& sp : series_) {
    const TimeSeries& s = *sp;
    TelemetrySnapshot::SeriesSummary summary;
    summary.name = s.name();
    summary.sampleCount = s.size();
    if (!s.empty()) {
      summary.first = s.first();
      summary.last = s.last();
      summary.min = s.min();
      summary.max = s.max();
      summary.mean = s.mean();
    }
    snap.series.push_back(std::move(summary));
  }
  std::sort(snap.series.begin(), snap.series.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  snap.flightEventsRecorded = recorder_.totalRecorded();
  snap.flightEventsRetained = recorder_.size();
  snap.flightEventsOverwritten = recorder_.overwritten();
  return snap;
}

bool Telemetry::writeTrace(const std::string& path, bool csv) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  if (csv) {
    recorder_.exportCsv(out);
  } else {
    recorder_.exportJsonl(out);
  }
  return static_cast<bool>(out);
}

}  // namespace scidmz::telemetry
