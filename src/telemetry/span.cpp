#include "telemetry/span.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <utility>

namespace scidmz::telemetry {

namespace {

bool g_process_tracing = false;

void appendEscaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
}

std::string jsonString(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  appendEscaped(out, s);
  out.push_back('"');
  return out;
}

std::string jsonNumber(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  return buf;
}

std::string jsonNumber(double v) {
  // %.17g round-trips doubles and is locale-independent for the values we
  // emit (the C locale is never changed by the simulator).
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

void setProcessTracingEnabled(bool enabled) { g_process_tracing = enabled; }

bool processTracingEnabled() { return g_process_tracing; }

Tracer::Tracer() {
  enabled_ = g_process_tracing || std::getenv("SCIDMZ_TRACE") != nullptr;
}

SpanId Tracer::begin(sim::SimTime at, std::string name, std::string category, SpanId parent) {
  Span span;
  span.name = std::move(name);
  span.category = std::move(category);
  span.parent = parent.value <= spans_.size() ? parent.value : 0;
  span.t0 = at;
  span.t1 = at;
  spans_.push_back(std::move(span));
  ++open_count_;
  return SpanId{static_cast<std::uint32_t>(spans_.size())};
}

void Tracer::end(SpanId id, sim::SimTime at) {
  Span* span = mutableSpan(id);
  if (span == nullptr || !span->open) return;
  span->t1 = at < span->t0 ? span->t0 : at;
  span->open = false;
  --open_count_;
}

bool Tracer::isOpen(SpanId id) const {
  const Span* span = find(id);
  return span != nullptr && span->open;
}

void Tracer::annotate(SpanId id, std::string_view key, std::string_view value) {
  Span* span = mutableSpan(id);
  if (span != nullptr) span->args.emplace_back(std::string(key), jsonString(value));
}

void Tracer::annotate(SpanId id, std::string_view key, std::uint64_t value) {
  Span* span = mutableSpan(id);
  if (span != nullptr) span->args.emplace_back(std::string(key), jsonNumber(value));
}

void Tracer::annotate(SpanId id, std::string_view key, double value) {
  Span* span = mutableSpan(id);
  if (span != nullptr) span->args.emplace_back(std::string(key), jsonNumber(value));
}

void Tracer::bump(SpanId id, std::string_view key, std::uint64_t delta) {
  Span* span = mutableSpan(id);
  if (span == nullptr) return;
  for (auto& [k, v] : span->args) {
    if (k == key) {
      v = jsonNumber(static_cast<std::uint64_t>(std::strtoull(v.c_str(), nullptr, 10)) + delta);
      return;
    }
  }
  span->args.emplace_back(std::string(key), jsonNumber(delta));
}

void Tracer::setCorrelationKey(SpanId id, std::uint32_t srcAddr, std::uint32_t dstAddr) {
  Span* span = mutableSpan(id);
  if (span == nullptr) return;
  span->corrSrc = srcAddr;
  span->corrDst = dstAddr;
}

void Tracer::correlate(const FlightRecorder& recorder, sim::SimTime now) {
  correlate(std::vector<const FlightRecorder*>{&recorder}, now);
}

void Tracer::correlate(const std::vector<const FlightRecorder*>& recorders, sim::SimTime now) {
  for (auto& span : spans_) {
    if (span.correlated || (span.corrSrc == 0 && span.corrDst == 0)) continue;
    span.correlated = true;
    const sim::SimTime t1 = span.open ? now : span.t1;
    std::uint64_t drops = 0;
    std::uint64_t linkLoss = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t maxDepth = 0;
    for (const FlightRecorder* recorder : recorders) {
      recorder->forEachInWindow(span.t0, t1, [&](const FlightEvent& ev) {
        const bool fwd = ev.flow.src == span.corrSrc && ev.flow.dst == span.corrDst;
        const bool rev = ev.flow.src == span.corrDst && ev.flow.dst == span.corrSrc;
        if (!fwd && !rev) return;
        switch (ev.kind) {
          case FlightEventKind::kDrop: ++drops; break;
          case FlightEventKind::kLinkLoss: ++linkLoss; break;
          case FlightEventKind::kRetransmit: ++retransmits; break;
          case FlightEventKind::kEnqueue:
            if (ev.aux2 > maxDepth) maxDepth = ev.aux2;
            break;
          default: break;
        }
      });
    }
    span.args.emplace_back("fr_drops", jsonNumber(drops));
    span.args.emplace_back("fr_link_loss", jsonNumber(linkLoss));
    span.args.emplace_back("fr_retransmits", jsonNumber(retransmits));
    span.args.emplace_back("fr_max_queue_bytes", jsonNumber(maxDepth));
  }
}

void Tracer::mergeFrom(const std::vector<const Tracer*>& parts) {
  spans_.clear();
  open_count_ = 0;

  // Gather every root with a sort key; subtrees stay in creation order and
  // follow their root, so only roots need a canonical order.
  struct RootRef {
    std::size_t part = 0;
    std::size_t index = 0;
    const Span* span = nullptr;
  };
  std::vector<RootRef> roots;
  for (std::size_t p = 0; p < parts.size(); ++p) {
    const auto& src = parts[p]->spans_;
    for (std::size_t i = 0; i < src.size(); ++i) {
      if (src[i].parent == 0) roots.push_back(RootRef{p, i, &src[i]});
    }
  }
  const auto argsKey = [](const Span& s) {
    std::string key;
    for (const auto& [k, v] : s.args) {
      key += k;
      key += '=';
      key += v;
      key += ';';
    }
    return key;
  };
  std::stable_sort(roots.begin(), roots.end(), [&](const RootRef& a, const RootRef& b) {
    if (a.span->t0 != b.span->t0) return a.span->t0 < b.span->t0;
    if (a.span->name != b.span->name) return a.span->name < b.span->name;
    const std::string ka = argsKey(*a.span);
    const std::string kb = argsKey(*b.span);
    if (ka != kb) return ka < kb;
    if (a.span->corrSrc != b.span->corrSrc) return a.span->corrSrc < b.span->corrSrc;
    return a.span->corrDst < b.span->corrDst;
  });

  // Emit each root followed by its descendants (a span's root is found by
  // chasing parents — parents always precede children in creation order).
  for (const RootRef& root : roots) {
    const auto& src = parts[root.part]->spans_;
    std::vector<std::uint32_t> remap(src.size(), 0);  // old index+1 -> new id
    const auto rootIndexOf = [&src](std::size_t i) {
      while (src[i].parent != 0) i = src[i].parent - 1;
      return i;
    };
    for (std::size_t i = root.index; i < src.size(); ++i) {
      if (rootIndexOf(i) != root.index) continue;
      Span copy = src[i];
      copy.parent = copy.parent == 0 ? 0 : remap[copy.parent - 1];
      remap[i] = static_cast<std::uint32_t>(spans_.size() + 1);
      if (copy.open) ++open_count_;
      spans_.push_back(std::move(copy));
    }
  }
}

void Tracer::serialize(sim::Codec& c) {
  std::uint64_t count = spans_.size();
  c.vu64(count);
  if (!c.writing()) {
    spans_.clear();
    spans_.resize(count);
    open_count_ = 0;
  }
  for (std::uint64_t i = 0; i < count; ++i) {
    Span& s = spans_[i];
    c.str(s.name);
    c.str(s.category);
    c.vu32(s.parent);
    sim::codecTime(c, s.t0);
    sim::codecTime(c, s.t1);
    c.b(s.open);
    c.vu32(s.corrSrc);
    c.vu32(s.corrDst);
    c.b(s.correlated);
    std::uint64_t nargs = s.args.size();
    c.vu64(nargs);
    if (!c.writing()) s.args.resize(nargs);
    for (auto& [k, v] : s.args) {
      c.str(k);
      c.str(v);
    }
    if (!c.writing() && s.open) ++open_count_;
  }
}

const Tracer::Span* Tracer::find(SpanId id) const {
  if (id.value == 0 || id.value > spans_.size()) return nullptr;
  return &spans_[id.value - 1];
}

Tracer::Span* Tracer::mutableSpan(SpanId id) {
  if (id.value == 0 || id.value > spans_.size()) return nullptr;
  return &spans_[id.value - 1];
}

std::size_t Tracer::rootOf(std::size_t i) const {
  while (spans_[i].parent != 0) i = spans_[i].parent - 1;
  return i;
}

void Tracer::exportSpansJsonl(std::ostream& out, sim::SimTime now,
                              const std::string& headerExtra) const {
  std::string line;
  line += "{\"schema\": \"scidmz.spans.v1\"";
  line += headerExtra;
  line += ", \"spans\": ";
  line += jsonNumber(static_cast<std::uint64_t>(spans_.size()));
  line += ", \"open\": ";
  line += jsonNumber(static_cast<std::uint64_t>(open_count_));
  line += ", \"now_ns\": ";
  line += jsonNumber(static_cast<std::uint64_t>(now.ns()));
  line += "}";
  out << line << '\n';
  for (std::size_t i = 0; i < spans_.size(); ++i) {
    const Span& s = spans_[i];
    const sim::SimTime t1 = s.open ? now : s.t1;
    line.clear();
    line += "{\"id\": ";
    line += jsonNumber(static_cast<std::uint64_t>(i + 1));
    line += ", \"parent\": ";
    line += jsonNumber(static_cast<std::uint64_t>(s.parent));
    line += ", \"name\": ";
    line += jsonString(s.name);
    line += ", \"cat\": ";
    line += jsonString(s.category);
    line += ", \"t0_ns\": ";
    line += jsonNumber(static_cast<std::uint64_t>(s.t0.ns()));
    line += ", \"t1_ns\": ";
    line += jsonNumber(static_cast<std::uint64_t>(t1.ns()));
    line += ", \"open\": ";
    line += s.open ? "true" : "false";
    if (!s.args.empty()) {
      line += ", \"args\": {";
      bool first = true;
      for (const auto& [k, v] : s.args) {
        if (!first) line += ", ";
        first = false;
        line += jsonString(k);
        line += ": ";
        line += v;
      }
      line += "}";
    }
    line += "}";
    out << line << '\n';
  }
}

void Tracer::exportChromeTrace(std::ostream& out, sim::SimTime now) const {
  // Chrome trace-event "X" (complete) events: ts/dur are microseconds, as
  // doubles, relative to simulation start. pid 1; each root span gets its
  // own tid (track) named after the root, so a flow and all its phases
  // stack on one Perfetto track.
  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  std::string line;
  char buf[64];
  // One metadata record per root span, in first-appearance order.
  std::vector<std::uint32_t> rootTid(spans_.size(), 0);
  std::uint32_t nextTid = 0;
  bool first = true;
  for (std::size_t i = 0; i < spans_.size(); ++i) {
    const std::size_t root = rootOf(i);
    if (i == root) {
      rootTid[i] = ++nextTid;
      line.clear();
      line += first ? "" : ",\n";
      first = false;
      line += "{\"ph\": \"M\", \"pid\": 1, \"tid\": ";
      line += jsonNumber(static_cast<std::uint64_t>(rootTid[i]));
      line += ", \"name\": \"thread_name\", \"args\": {\"name\": ";
      line += jsonString(spans_[i].name);
      line += "}}";
      out << line;
    } else {
      rootTid[i] = rootTid[root];
    }
  }
  for (std::size_t i = 0; i < spans_.size(); ++i) {
    const Span& s = spans_[i];
    const sim::SimTime t1 = s.open ? now : s.t1;
    line.clear();
    line += first ? "" : ",\n";
    first = false;
    line += "{\"ph\": \"X\", \"pid\": 1, \"tid\": ";
    line += jsonNumber(static_cast<std::uint64_t>(rootTid[i]));
    line += ", \"name\": ";
    line += jsonString(s.name);
    line += ", \"cat\": ";
    line += jsonString(s.category);
    std::snprintf(buf, sizeof buf, ", \"ts\": %.3f, \"dur\": %.3f",
                  static_cast<double>(s.t0.ns()) / 1000.0,
                  static_cast<double>((t1 - s.t0).ns()) / 1000.0);
    line += buf;
    line += ", \"args\": {\"span_id\": ";
    line += jsonNumber(static_cast<std::uint64_t>(i + 1));
    if (s.open) line += ", \"open\": true";
    for (const auto& [k, v] : s.args) {
      line += ", ";
      line += jsonString(k);
      line += ": ";
      line += v;
    }
    line += "}}";
    out << line;
  }
  out << "\n]}\n";
}

}  // namespace scidmz::telemetry
