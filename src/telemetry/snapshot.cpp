#include "telemetry/snapshot.hpp"

#include <algorithm>
#include <cstdio>

namespace scidmz::telemetry {

namespace {

void appendEscaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
}

void appendDouble(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6f", v);
  out += buf;
}

}  // namespace

std::uint64_t TelemetrySnapshot::counterValue(const std::string& name) const {
  for (const auto& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

const TelemetrySnapshot::SeriesSummary* TelemetrySnapshot::findSeries(
    const std::string& name) const {
  for (const auto& s : series) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::string TelemetrySnapshot::toJson() const {
  std::string out;
  out.reserve(256 + counters.size() * 48 + series.size() * 160);
  out += "{\"schema\":\"scidmz.telemetry.v1\",\"counters\":{";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    if (i) out += ',';
    out += '"';
    appendEscaped(out, counters[i].name);
    out += "\":";
    char buf[24];
    std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(counters[i].value));
    out += buf;
  }
  out += "},\"gauges\":{";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    if (i) out += ',';
    out += '"';
    appendEscaped(out, gauges[i].name);
    out += "\":";
    appendDouble(out, gauges[i].value);
  }
  out += "},\"series\":{";
  for (std::size_t i = 0; i < series.size(); ++i) {
    const SeriesSummary& s = series[i];
    if (i) out += ',';
    out += '"';
    appendEscaped(out, s.name);
    out += "\":{\"samples\":";
    char buf[24];
    std::snprintf(buf, sizeof buf, "%zu", s.sampleCount);
    out += buf;
    out += ",\"first\":";
    appendDouble(out, s.first);
    out += ",\"last\":";
    appendDouble(out, s.last);
    out += ",\"min\":";
    appendDouble(out, s.min);
    out += ",\"max\":";
    appendDouble(out, s.max);
    out += ",\"mean\":";
    appendDouble(out, s.mean);
    out += '}';
  }
  out += "},\"flight_recorder\":{\"recorded\":";
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(flightEventsRecorded));
  out += buf;
  out += ",\"retained\":";
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(flightEventsRetained));
  out += buf;
  out += ",\"overwritten\":";
  std::snprintf(buf, sizeof buf, "%llu",
                static_cast<unsigned long long>(flightEventsOverwritten));
  out += buf;
  out += "}}";
  return out;
}

}  // namespace scidmz::telemetry
