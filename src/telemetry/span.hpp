// Causal span tracing: a per-scenario record of *why* a transfer spent its
// time, the observability counterpart to the flight recorder's *what*.
//
// A Tracer lives per net::Context (reached via ctx.extension<Tracer>()), so
// every sweep cell traces itself independently and traces are byte-identical
// at any SCIDMZ_SWEEP_THREADS: span ids are minted from a context-scoped
// counter, timestamps are simulated time, and no wall clock is consulted
// anywhere. Disabled by default — every emit site guards on enabled() (one
// predictable bool load) and pays nothing else.
//
// The span tree mirrors the transfer stack: root spans for flows (opened by
// net::FlowFactory at creation, packet and fluid fidelity alike), transfers
// (apps::TransferManager, dtn::DtnTransfer) and perfSONAR sessions
// (owamp/bwctl); child spans for TCP phases (handshake, slow-start,
// cwnd-limited, rwnd-limited, loss-recovery) and per-episode loss recovery.
// Root flow spans carry a correlation key (src/dst address) so
// correlate() can annotate them post-hoc from the FlightRecorder: drops,
// link loss, retransmits and peak queue residency within the span's window.
//
// Two exporters, both deterministic:
//   exportSpansJsonl — scidmz.spans.v1: a header object, then one span per
//     line, nanosecond timestamps (validated by tools/validate_trace.py).
//   exportChromeTrace — Chrome trace-event JSON ("X" complete events,
//     sim-time microseconds), loadable directly in Perfetto; each root span
//     renders as its own track.
// Spans still open at export time are closed virtually at the export
// timestamp; the JSONL marks them "open": true.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "sim/codec.hpp"
#include "sim/units.hpp"
#include "telemetry/flight_recorder.hpp"

namespace scidmz::telemetry {

/// Handle to one span; value 0 is "no span" (also "no parent").
struct SpanId {
  std::uint32_t value = 0;
  constexpr bool operator==(const SpanId&) const = default;
  [[nodiscard]] constexpr bool valid() const { return value != 0; }
};

class Tracer {
 public:
  /// A new tracer starts enabled iff the process-wide flag is set (see
  /// setProcessTracingEnabled below, flipped by `scidmz_run --trace`) or
  /// SCIDMZ_TRACE is in the environment — the same pattern the telemetry
  /// hub uses for SCIDMZ_TELEMETRY, so any binary can be traced unchanged.
  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void enable() { enabled_ = true; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Open a span at simulated time `at`. Parent must be unset or a span
  /// from this tracer. Categories are dotted slugs ("flow", "tcp.phase",
  /// "transfer", "perfsonar"); the report tooling keys off them.
  [[nodiscard]] SpanId begin(sim::SimTime at, std::string name, std::string category,
                             SpanId parent = {});
  /// Close a span. Closing an invalid/already-closed id is a no-op, so
  /// teardown paths need not track open state.
  void end(SpanId id, sim::SimTime at);
  [[nodiscard]] bool isOpen(SpanId id) const;

  /// Attach a key/value argument. Values land in the span's "args" object;
  /// the string form is emitted as a JSON string, the numeric forms as
  /// numbers. No-ops on invalid ids.
  void annotate(SpanId id, std::string_view key, std::string_view value);
  void annotate(SpanId id, std::string_view key, std::uint64_t value);
  void annotate(SpanId id, std::string_view key, double value);

  /// Add an incrementable numeric argument (creates at `delta` if absent).
  void bump(SpanId id, std::string_view key, std::uint64_t delta);

  /// Mark a span as correlatable with flight-recorder traffic between the
  /// two addresses (either direction). correlate() fills in the counts.
  void setCorrelationKey(SpanId id, std::uint32_t srcAddr, std::uint32_t dstAddr);

  /// Post-hoc annotation from the flight recorder: for every span with a
  /// correlation key, count drops / link losses / retransmits and the peak
  /// queue depth among matching-flow events inside the span's [t0, t1|now]
  /// window. Idempotent per span (keyed spans are correlated once).
  void correlate(const FlightRecorder& recorder, sim::SimTime now);
  /// Same, accumulating across several recorders before annotating — the
  /// sharded path, where a flow's hops record into per-domain rings. The
  /// union of the rings is partition-invariant (absent overflow), so the
  /// appended counts match a single-ring run.
  void correlate(const std::vector<const FlightRecorder*>& recorders, sim::SimTime now);

  /// Spans opened over the tracer's lifetime (the BENCH_sim.json
  /// spans_emitted column).
  [[nodiscard]] std::uint64_t spansEmitted() const { return static_cast<std::uint64_t>(spans_.size()); }
  [[nodiscard]] std::size_t openCount() const { return open_count_; }

  struct Span {
    std::string name;
    std::string category;
    std::uint32_t parent = 0;  ///< SpanId value; 0 = root.
    sim::SimTime t0;
    sim::SimTime t1;
    bool open = true;
    // Flight-recorder correlation (address pair; 0/0 = none).
    std::uint32_t corrSrc = 0;
    std::uint32_t corrDst = 0;
    bool correlated = false;
    /// Key → pre-serialized JSON value (insertion-ordered, deterministic).
    std::vector<std::pair<std::string, std::string>> args;
  };
  [[nodiscard]] const Span* find(SpanId id) const;
  [[nodiscard]] std::size_t spanCount() const { return spans_.size(); }
  template <typename F>
  void forEachSpan(F&& fn) const {
    for (std::size_t i = 0; i < spans_.size(); ++i) fn(SpanId{static_cast<std::uint32_t>(i + 1)}, spans_[i]);
  }

  /// Deterministically merge per-domain tracers into this (empty) tracer:
  /// root spans are ordered by (t0, name, args, correlation key) — a total
  /// order for the catalog's flows, whose roots carry a unique port — and
  /// each root's subtree follows in its domain's creation order, ids
  /// renumbered. The result is partition-invariant: the same set of spans
  /// merges to the same bytes at any domain count.
  void mergeFrom(const std::vector<const Tracer*>& parts);

  /// Snapshot/restore of the full span table (scidmz.snap.v1 TRC section).
  /// Claims no pending events — the tracer is passive state.
  void serialize(sim::Codec& c);

  /// scidmz.spans.v1 JSONL. `headerExtra` is a comma-led JSON fragment
  /// spliced into the header object (e.g. ",\"cell\": 0"); pass "" for none.
  void exportSpansJsonl(std::ostream& out, sim::SimTime now,
                        const std::string& headerExtra = std::string()) const;
  /// Chrome trace-event JSON (Perfetto-loadable). One track per root span.
  void exportChromeTrace(std::ostream& out, sim::SimTime now) const;

 private:
  [[nodiscard]] Span* mutableSpan(SpanId id);
  /// Index of the root ancestor of span i (0-based), for track grouping.
  [[nodiscard]] std::size_t rootOf(std::size_t i) const;

  bool enabled_ = false;
  std::vector<Span> spans_;  ///< SpanId value = index + 1.
  std::size_t open_count_ = 0;
};

/// Process-wide tracing switch (`scidmz_run --trace=...`): every Tracer
/// default-constructed afterwards starts enabled. Set once at startup,
/// before any simulation runs; sweep workers read it without
/// synchronization, so never flip it mid-run.
void setProcessTracingEnabled(bool enabled);
[[nodiscard]] bool processTracingEnabled();

}  // namespace scidmz::telemetry
