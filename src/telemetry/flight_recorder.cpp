#include "telemetry/flight_recorder.hpp"

#include <cstdio>
#include <istream>
#include <iterator>
#include <ostream>
#include <tuple>

namespace scidmz::telemetry {

namespace {

constexpr const char* kFrbinMagic = "scidmz.frbin.v1";

/// A trace repeats a handful of 5-tuples across millions of events, so
/// flows are interned the same way emit points are: the first sighting of
/// a tuple carries it in full (its ref equals the table size so far) and
/// every later event pays one varint. Both directions grow the table in
/// stream order, so no separate dictionary section is needed.
struct FlowInterner {
  std::map<std::tuple<std::uint32_t, std::uint32_t, std::uint16_t, std::uint16_t, std::uint8_t>,
           std::uint32_t>
      index;
  std::vector<FlowRef> flows;
};

void codecFlowTuple(sim::Codec& c, FlowRef& f) {
  c.vu32(f.src);
  c.vu32(f.dst);
  std::uint32_t sport = f.srcPort;
  std::uint32_t dport = f.dstPort;
  c.vu32(sport);
  c.vu32(dport);
  if (!c.writing()) {
    f.srcPort = static_cast<std::uint16_t>(sport);
    f.dstPort = static_cast<std::uint16_t>(dport);
  }
  c.u8(f.proto);
}

void codecFlowRef(sim::Codec& c, FlowRef& f, FlowInterner& interner) {
  if (c.writing()) {
    const auto key = std::make_tuple(f.src, f.dst, f.srcPort, f.dstPort, f.proto);
    const auto it = interner.index.find(key);
    std::uint32_t ref = it != interner.index.end()
                            ? it->second
                            : static_cast<std::uint32_t>(interner.flows.size());
    c.vu32(ref);
    if (it == interner.index.end()) {
      interner.index.emplace(key, ref);
      interner.flows.push_back(f);
      codecFlowTuple(c, f);
    }
    return;
  }
  std::uint32_t ref = 0;
  c.vu32(ref);
  if (ref == interner.flows.size()) {
    codecFlowTuple(c, f);
    interner.flows.push_back(f);
  } else if (ref < interner.flows.size()) {
    f = interner.flows[ref];
  } else {
    c.reader().markFailed();
  }
}

/// One event through the codec. Used by both the snapshot overlay and the
/// frbin export; `prevNs` delta-encodes the (chronological) timestamps and
/// `interner` compresses the repeated 5-tuples.
void codecEvent(sim::Codec& c, FlightEvent& e, std::int64_t& prevNs, FlowInterner& interner) {
  std::int64_t deltaNs = e.at.ns() - prevNs;
  c.vi64(deltaNs);
  if (!c.writing()) e.at = sim::SimTime::fromNs(prevNs + deltaNs);
  prevNs = e.at.ns();
  c.vu64(e.packetId);
  c.vu64(e.aux);
  c.vu64(e.aux2);
  codecFlowRef(c, e.flow, interner);
  c.vu32(e.bytes);
  c.vu32(e.point);
  std::uint8_t kind = static_cast<std::uint8_t>(e.kind);
  c.u8(kind);
  if (!c.writing()) e.kind = static_cast<FlightEventKind>(kind);
}

void codecPoints(sim::Codec& c, std::vector<std::string>& points,
                 std::map<std::string, std::uint32_t>& index) {
  std::uint64_t n = points.size();
  c.vu64(n);
  if (c.writing()) {
    for (std::string& p : points) c.str(p);
  } else {
    points.clear();
    index.clear();
    points.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
      std::string name;
      c.str(name);
      index.emplace(name, static_cast<std::uint32_t>(points.size()));
      points.push_back(std::move(name));
    }
  }
}

void appendEscaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
}

void appendIp(std::string& out, std::uint32_t ip) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (ip >> 24) & 0xff, (ip >> 16) & 0xff,
                (ip >> 8) & 0xff, ip & 0xff);
  out += buf;
}

std::string_view protoName(std::uint8_t proto) {
  switch (proto) {
    case 6: return "tcp";
    case 17: return "udp";
    default: return "other";
  }
}

}  // namespace

std::string_view toString(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kEnqueue: return "enqueue";
    case FlightEventKind::kDequeue: return "dequeue";
    case FlightEventKind::kDrop: return "drop";
    case FlightEventKind::kLinkLoss: return "link_loss";
    case FlightEventKind::kRetransmit: return "retransmit";
    case FlightEventKind::kDeliver: return "deliver";
  }
  return "?";
}

FlightRecorder::FlightRecorder(std::size_t capacity) : capacity_(capacity ? capacity : 1) {
  ring_.reserve(capacity_ < 4096 ? capacity_ : 4096);
}

std::uint32_t FlightRecorder::internPoint(const std::string& name) {
  const auto it = point_index_.find(name);
  if (it != point_index_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(points_.size());
  points_.push_back(name);
  point_index_.emplace(name, id);
  return id;
}

const std::string& FlightRecorder::pointName(std::uint32_t id) const {
  static const std::string kUnknown = "?";
  return id < points_.size() ? points_[id] : kUnknown;
}

void FlightRecorder::record(const FlightEvent& event) {
  ++total_;
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
    return;
  }
  ring_[head_] = event;  // overwrite the oldest
  head_ = (head_ + 1) % capacity_;
}

void FlightRecorder::setCapacity(std::size_t capacity) {
  // Only honored before any event is recorded; resizing a live ring would
  // scramble chronological order for no real use case.
  if (total_ == 0) capacity_ = capacity ? capacity : 1;
}

void FlightRecorder::clear() {
  ring_.clear();
  head_ = 0;
  total_ = 0;
}

void FlightRecorder::exportJsonl(std::ostream& out) const {
  std::string line;
  forEach([&](const FlightEvent& e) {
    line.clear();
    char buf[96];
    std::snprintf(buf, sizeof buf, "{\"t_ns\":%lld,\"ev\":\"",
                  static_cast<long long>(e.at.ns()));
    line += buf;
    line += toString(e.kind);
    line += "\",\"point\":\"";
    appendEscaped(line, pointName(e.point));
    line += "\",\"pkt\":";
    std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(e.packetId));
    line += buf;
    line += ",\"src\":\"";
    appendIp(line, e.flow.src);
    line += "\",\"dst\":\"";
    appendIp(line, e.flow.dst);
    std::snprintf(buf, sizeof buf, "\",\"sport\":%u,\"dport\":%u,\"proto\":\"", e.flow.srcPort,
                  e.flow.dstPort);
    line += buf;
    line += protoName(e.flow.proto);
    std::snprintf(buf, sizeof buf, "\",\"bytes\":%u,\"seq\":%llu,\"depth\":%llu}", e.bytes,
                  static_cast<unsigned long long>(e.aux),
                  static_cast<unsigned long long>(e.aux2));
    line += buf;
    out << line << '\n';
  });
}

void FlightRecorder::serialize(sim::Codec& c) {
  c.size(capacity_);
  std::uint64_t retained = ring_.size();
  c.vu64(retained);
  if (!c.writing()) ring_.resize(static_cast<std::size_t>(retained));
  // Ring order (not chronological order): head_ comes across verbatim, so
  // the restored ring overwrites slots in exactly the original sequence.
  std::int64_t prevNs = 0;
  FlowInterner interner;
  for (FlightEvent& e : ring_) codecEvent(c, e, prevNs, interner);
  c.size(head_);
  c.vu64(total_);
  codecPoints(c, points_, point_index_);
}

void FlightRecorder::exportBinary(std::ostream& out) const {
  sim::BitWriter w;
  sim::writeMagic(w, kFrbinMagic);
  sim::Codec c(w);
  {
    const auto cookie = w.beginSection("PTS ");
    auto points = points_;  // codec wants mutable refs; export is const
    std::map<std::string, std::uint32_t> index;
    codecPoints(c, points, index);
    w.endSection(cookie);
  }
  {
    const auto cookie = w.beginSection("EVTS");
    std::uint64_t n = ring_.size();
    c.vu64(n);
    std::int64_t prevNs = 0;
    FlowInterner interner;
    forEach([&](const FlightEvent& e) {
      FlightEvent copy = e;  // chronological order, delta-friendly
      codecEvent(c, copy, prevNs, interner);
    });
    w.endSection(cookie);
  }
  const auto bytes = w.take();
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

bool FlightRecorder::importBinary(std::istream& in) {
  clear();
  std::vector<std::uint8_t> blob((std::istreambuf_iterator<char>(in)),
                                 std::istreambuf_iterator<char>());
  sim::BitReader r(blob.data(), blob.size());
  if (!sim::readMagic(r, kFrbinMagic)) return false;
  sim::Codec c(r);
  if (r.enterSection("PTS ") == 0 && r.fail()) return false;
  codecPoints(c, points_, point_index_);
  if (r.enterSection("EVTS") == 0 && r.fail()) return false;
  std::uint64_t n = 0;
  c.vu64(n);
  if (capacity_ < static_cast<std::size_t>(n)) capacity_ = static_cast<std::size_t>(n);
  std::int64_t prevNs = 0;
  FlowInterner interner;
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
    FlightEvent e;
    codecEvent(c, e, prevNs, interner);
    record(e);
  }
  if (r.fail()) {
    clear();
    return false;
  }
  return true;
}

void FlightRecorder::exportCsv(std::ostream& out) const {
  out << "t_ns,ev,point,pkt,src,dst,sport,dport,proto,bytes,seq,depth\n";
  std::string line;
  forEach([&](const FlightEvent& e) {
    line.clear();
    char buf[96];
    std::snprintf(buf, sizeof buf, "%lld,", static_cast<long long>(e.at.ns()));
    line += buf;
    line += toString(e.kind);
    line += ',';
    line += pointName(e.point);  // point names never contain commas by convention
    std::snprintf(buf, sizeof buf, ",%llu,", static_cast<unsigned long long>(e.packetId));
    line += buf;
    appendIp(line, e.flow.src);
    line += ',';
    appendIp(line, e.flow.dst);
    std::snprintf(buf, sizeof buf, ",%u,%u,", e.flow.srcPort, e.flow.dstPort);
    line += buf;
    line += protoName(e.flow.proto);
    std::snprintf(buf, sizeof buf, ",%u,%llu,%llu", e.bytes,
                  static_cast<unsigned long long>(e.aux),
                  static_cast<unsigned long long>(e.aux2));
    line += buf;
    out << line << '\n';
  });
}

}  // namespace scidmz::telemetry
