#include "telemetry/flight_recorder.hpp"

#include <cstdio>
#include <ostream>

namespace scidmz::telemetry {

namespace {

void appendEscaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
}

void appendIp(std::string& out, std::uint32_t ip) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (ip >> 24) & 0xff, (ip >> 16) & 0xff,
                (ip >> 8) & 0xff, ip & 0xff);
  out += buf;
}

std::string_view protoName(std::uint8_t proto) {
  switch (proto) {
    case 6: return "tcp";
    case 17: return "udp";
    default: return "other";
  }
}

}  // namespace

std::string_view toString(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kEnqueue: return "enqueue";
    case FlightEventKind::kDequeue: return "dequeue";
    case FlightEventKind::kDrop: return "drop";
    case FlightEventKind::kLinkLoss: return "link_loss";
    case FlightEventKind::kRetransmit: return "retransmit";
    case FlightEventKind::kDeliver: return "deliver";
  }
  return "?";
}

FlightRecorder::FlightRecorder(std::size_t capacity) : capacity_(capacity ? capacity : 1) {
  ring_.reserve(capacity_ < 4096 ? capacity_ : 4096);
}

std::uint32_t FlightRecorder::internPoint(const std::string& name) {
  const auto it = point_index_.find(name);
  if (it != point_index_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(points_.size());
  points_.push_back(name);
  point_index_.emplace(name, id);
  return id;
}

const std::string& FlightRecorder::pointName(std::uint32_t id) const {
  static const std::string kUnknown = "?";
  return id < points_.size() ? points_[id] : kUnknown;
}

void FlightRecorder::record(const FlightEvent& event) {
  ++total_;
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
    return;
  }
  ring_[head_] = event;  // overwrite the oldest
  head_ = (head_ + 1) % capacity_;
}

void FlightRecorder::setCapacity(std::size_t capacity) {
  // Only honored before any event is recorded; resizing a live ring would
  // scramble chronological order for no real use case.
  if (total_ == 0) capacity_ = capacity ? capacity : 1;
}

void FlightRecorder::clear() {
  ring_.clear();
  head_ = 0;
  total_ = 0;
}

void FlightRecorder::exportJsonl(std::ostream& out) const {
  std::string line;
  forEach([&](const FlightEvent& e) {
    line.clear();
    char buf[96];
    std::snprintf(buf, sizeof buf, "{\"t_ns\":%lld,\"ev\":\"",
                  static_cast<long long>(e.at.ns()));
    line += buf;
    line += toString(e.kind);
    line += "\",\"point\":\"";
    appendEscaped(line, pointName(e.point));
    line += "\",\"pkt\":";
    std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(e.packetId));
    line += buf;
    line += ",\"src\":\"";
    appendIp(line, e.flow.src);
    line += "\",\"dst\":\"";
    appendIp(line, e.flow.dst);
    std::snprintf(buf, sizeof buf, "\",\"sport\":%u,\"dport\":%u,\"proto\":\"", e.flow.srcPort,
                  e.flow.dstPort);
    line += buf;
    line += protoName(e.flow.proto);
    std::snprintf(buf, sizeof buf, "\",\"bytes\":%u,\"seq\":%llu,\"depth\":%llu}", e.bytes,
                  static_cast<unsigned long long>(e.aux),
                  static_cast<unsigned long long>(e.aux2));
    line += buf;
    out << line << '\n';
  });
}

void FlightRecorder::exportCsv(std::ostream& out) const {
  out << "t_ns,ev,point,pkt,src,dst,sport,dport,proto,bytes,seq,depth\n";
  std::string line;
  forEach([&](const FlightEvent& e) {
    line.clear();
    char buf[96];
    std::snprintf(buf, sizeof buf, "%lld,", static_cast<long long>(e.at.ns()));
    line += buf;
    line += toString(e.kind);
    line += ',';
    line += pointName(e.point);  // point names never contain commas by convention
    std::snprintf(buf, sizeof buf, ",%llu,", static_cast<unsigned long long>(e.packetId));
    line += buf;
    appendIp(line, e.flow.src);
    line += ',';
    appendIp(line, e.flow.dst);
    std::snprintf(buf, sizeof buf, ",%u,%u,", e.flow.srcPort, e.flow.dstPort);
    line += buf;
    line += protoName(e.flow.proto);
    std::snprintf(buf, sizeof buf, ",%u,%llu,%llu", e.bytes,
                  static_cast<unsigned long long>(e.aux),
                  static_cast<unsigned long long>(e.aux2));
    line += buf;
    out << line << '\n';
  });
}

}  // namespace scidmz::telemetry
