// Named counters and gauges for one scenario.
//
// The registry is owned by the scenario's Telemetry hub (itself owned by
// net::Context) — never a global — so sweep cells instrument themselves
// independently and stay bit-reproducible at any worker count. Lookup by
// name happens once, at emit-site initialization; the hot path increments
// through a cached reference.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <utility>

#include "sim/codec.hpp"

namespace scidmz::telemetry {

class MetricRegistry {
 public:
  /// Create-or-get a counter. The returned reference is stable for the
  /// registry's lifetime (entries live in a deque), so emit points cache it.
  [[nodiscard]] std::uint64_t& counter(const std::string& name) {
    const auto it = counter_index_.find(name);
    if (it != counter_index_.end()) return counters_[it->second].second;
    counter_index_.emplace(name, counters_.size());
    counters_.emplace_back(name, 0);
    return counters_.back().second;
  }

  /// Create-or-get a gauge (last-value-wins double). Stable address.
  [[nodiscard]] double& gauge(const std::string& name) {
    const auto it = gauge_index_.find(name);
    if (it != gauge_index_.end()) return gauges_[it->second].second;
    gauge_index_.emplace(name, gauges_.size());
    gauges_.emplace_back(name, 0.0);
    return gauges_.back().second;
  }

  /// Counter value by name; 0 when absent (diagnosis convenience).
  [[nodiscard]] std::uint64_t counterValue(const std::string& name) const {
    const auto it = counter_index_.find(name);
    return it == counter_index_.end() ? 0 : counters_[it->second].second;
  }

  [[nodiscard]] std::size_t counterCount() const { return counters_.size(); }
  [[nodiscard]] std::size_t gaugeCount() const { return gauges_.size(); }

  /// Iterate counters in registration order (deterministic per scenario).
  template <typename F>
  void forEachCounter(F&& fn) const {
    for (const auto& [name, value] : counters_) fn(name, value);
  }

  template <typename F>
  void forEachGauge(F&& fn) const {
    for (const auto& [name, value] : gauges_) fn(name, value);
  }

  /// Snapshot/restore overlay: values are applied create-or-get by NAME,
  /// never by index — the rebuild may have created a subset (or differently
  /// ordered prefix) of the snapshot's entries, and every output path sorts
  /// by name, so registration order is not observable. Cached references
  /// stay valid (deque addresses are stable).
  void serialize(sim::Codec& c) {
    std::uint64_t counterCount = counters_.size();
    c.vu64(counterCount);
    if (c.writing()) {
      for (auto& [name, value] : counters_) {
        std::string n = name;
        c.str(n);
        c.vu64(value);
      }
    } else {
      for (std::uint64_t i = 0; i < counterCount; ++i) {
        std::string n;
        c.str(n);
        std::uint64_t v = 0;
        c.vu64(v);
        counter(n) = v;
      }
    }
    std::uint64_t gaugeCountN = gauges_.size();
    c.vu64(gaugeCountN);
    if (c.writing()) {
      for (auto& [name, value] : gauges_) {
        std::string n = name;
        c.str(n);
        c.f64(value);
      }
    } else {
      for (std::uint64_t i = 0; i < gaugeCountN; ++i) {
        std::string n;
        c.str(n);
        double v = 0.0;
        c.f64(v);
        gauge(n) = v;
      }
    }
  }

 private:
  // deque keeps value addresses stable across growth.
  std::deque<std::pair<std::string, std::uint64_t>> counters_;
  std::deque<std::pair<std::string, double>> gauges_;
  std::map<std::string, std::size_t> counter_index_;
  std::map<std::string, std::size_t> gauge_index_;
};

}  // namespace scidmz::telemetry
