// Packet-level flight recorder: a bounded ring of enqueue/dequeue/drop/
// loss/retransmit events, deterministic by construction (simulated time
// only, ids minted by the scenario).
//
// Emit points intern their location once ("dtn0/if0", "fw0/input") and
// record fixed-size POD events; when the ring is full the oldest events
// are overwritten and counted, never silently lost. Exporters stream the
// retained window in chronological order as JSONL (one event per line,
// schema scidmz.trace.v1 — see EXPERIMENTS.md) or CSV.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "sim/codec.hpp"
#include "sim/units.hpp"

namespace scidmz::telemetry {

enum class FlightEventKind : std::uint8_t {
  kEnqueue,     ///< Packet accepted into an egress queue; aux2 = depth after.
  kDequeue,     ///< Packet left a queue for the wire; aux2 = depth after.
  kDrop,        ///< Buffer-full (or policy) drop at a device; aux2 = depth.
  kLinkLoss,    ///< Impairment model dropped the packet on the wire.
  kRetransmit,  ///< TCP sender retransmitted; aux = sequence number.
  kDeliver,     ///< Packet delivered to the far end of a link.
};

[[nodiscard]] std::string_view toString(FlightEventKind kind);

/// Flow identity flattened to PODs so telemetry does not depend on net.
/// `proto` uses IANA numbers (6 = TCP, 17 = UDP).
struct FlowRef {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint16_t srcPort = 0;
  std::uint16_t dstPort = 0;
  std::uint8_t proto = 0;
};

struct FlightEvent {
  sim::SimTime at;
  std::uint64_t packetId = 0;
  std::uint64_t aux = 0;   ///< Kind-specific (TCP sequence for retransmits).
  std::uint64_t aux2 = 0;  ///< Kind-specific (queue depth in bytes).
  FlowRef flow;
  std::uint32_t bytes = 0;  ///< Wire size of the packet.
  std::uint32_t point = 0;  ///< Interned emit-point id.
  FlightEventKind kind = FlightEventKind::kEnqueue;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = 1 << 16);

  /// Register an emit point ("hostA/if0"); idempotent, returns a stable id.
  [[nodiscard]] std::uint32_t internPoint(const std::string& name);
  [[nodiscard]] const std::string& pointName(std::uint32_t id) const;
  [[nodiscard]] std::size_t pointCount() const { return points_.size(); }

  void record(const FlightEvent& event);

  void setCapacity(std::size_t capacity);
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Events currently retained in the ring.
  [[nodiscard]] std::size_t size() const { return ring_.size(); }
  /// Events recorded over the recorder's lifetime.
  [[nodiscard]] std::uint64_t totalRecorded() const { return total_; }
  /// Events overwritten because the ring wrapped.
  [[nodiscard]] std::uint64_t overwritten() const {
    return total_ - static_cast<std::uint64_t>(ring_.size());
  }

  /// Visit retained events oldest-first.
  template <typename F>
  void forEach(F&& fn) const {
    const std::size_t n = ring_.size();
    for (std::size_t i = 0; i < n; ++i) fn(ring_[(head_ + i) % n]);
  }

  /// Visit retained events with t0 <= at <= t1, oldest-first. Retained
  /// events are chronological (recorded in simulated-time order), so the
  /// scan skips the prefix before t0 and stops at the first event past t1 —
  /// span correlation over many windows stays linear in the ring size.
  template <typename F>
  void forEachInWindow(sim::SimTime t0, sim::SimTime t1, F&& fn) const {
    const std::size_t n = ring_.size();
    for (std::size_t i = 0; i < n; ++i) {
      const FlightEvent& ev = ring_[(head_ + i) % n];
      if (ev.at < t0) continue;
      if (ev.at > t1) break;
      fn(ev);
    }
  }

  /// One JSON object per line; deterministic for a given scenario + seed.
  void exportJsonl(std::ostream& out) const;
  /// Same columns, CSV with a header row.
  void exportCsv(std::ostream& out) const;

  /// Binary export (format scidmz.frbin.v1): the interned point table plus
  /// the retained events oldest-first, bit-packed with delta-encoded
  /// timestamps — typically an order of magnitude smaller than the JSONL.
  void exportBinary(std::ostream& out) const;
  /// Load a scidmz.frbin.v1 blob, replacing the recorder's contents (the
  /// `scidmz_run convert` path back to JSONL/CSV). False on a malformed or
  /// truncated blob; the recorder is cleared either way.
  bool importBinary(std::istream& in);

  /// Snapshot/restore overlay: ring, head, lifetime total, and the interned
  /// point table (replacing the rebuild's table — rebuild-time interning is
  /// a prefix of the snapshot's, so cached ids stay valid).
  void serialize(sim::Codec& c);

  void clear();

 private:
  std::size_t capacity_;
  std::vector<FlightEvent> ring_;
  std::size_t head_ = 0;  ///< Index of the oldest retained event once full.
  std::uint64_t total_ = 0;
  std::vector<std::string> points_;
  std::map<std::string, std::uint32_t> point_index_;
};

}  // namespace scidmz::telemetry
