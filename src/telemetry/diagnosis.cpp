#include "telemetry/diagnosis.hpp"

#include <algorithm>

namespace scidmz::telemetry {

LossDiagnosis localizeLoss(const TelemetrySnapshot& snapshot) {
  LossDiagnosis diag;
  for (const auto& c : snapshot.counters) {
    if (c.value == 0) continue;
    const bool lossy = c.name.find("lost") != std::string::npos ||
                       c.name.find("drops") != std::string::npos;
    if (lossy) diag.suspects.push_back({c.name, c.value});
  }
  std::sort(diag.suspects.begin(), diag.suspects.end(),
            [](const HopLoss& a, const HopLoss& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.point < b.point;
            });
  return diag;
}

}  // namespace scidmz::telemetry
