// Per-scenario telemetry hub: one MetricRegistry, one set of sampled
// time-series probes, one packet flight recorder.
//
// Owned by the scenario's net::Context (no globals), so every sweep cell
// instruments itself independently and traces are byte-identical at any
// SCIDMZ_SWEEP_THREADS. Disabled by default: every emit point guards on
// enabled() (a single bool load) and the sampling tick is never scheduled,
// so an uninstrumented run pays one predictable branch per emit site.
//
// Enable programmatically with enable(), or for any existing binary by
// setting SCIDMZ_TELEMETRY=1 in the environment (cadence and ring size via
// SCIDMZ_TELEMETRY_CADENCE_US / SCIDMZ_TELEMETRY_RING).
//
// Sampling rides the simulator's daemon events (sim::Simulator::
// scheduleDaemon): probes fire on the configured cadence for as long as the
// scenario has real work pending — or through the full window of a
// runFor/runUntil — without keeping run() alive forever on their own.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/arena.hpp"
#include "sim/simulator.hpp"
#include "sim/units.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/series.hpp"
#include "telemetry/snapshot.hpp"

namespace scidmz::telemetry {

struct TelemetryConfig {
  /// Cadence of the sampled probes (cwnd, queue depth, ...).
  sim::Duration sampleEvery = sim::Duration::milliseconds(10);
  /// Flight recorder ring capacity, in events.
  std::size_t ringCapacity = 1 << 16;
};

/// Handle to a registered sampler, for removal when the instrumented
/// component (e.g. a TcpConnection) dies before the scenario does.
struct SamplerId {
  std::uint32_t value = 0;
  [[nodiscard]] constexpr bool valid() const { return value != 0; }
};

class Telemetry {
 public:
  /// Reads SCIDMZ_TELEMETRY from the environment; a value of 1/on/true
  /// enables instrumentation with env-tunable defaults so any bench or
  /// example can be instrumented without code changes. Series nodes
  /// allocate from `arena` (net::Context passes its scenario arena); the
  /// single-argument form owns a private arena for standalone use.
  Telemetry(sim::Simulator& simulator, sim::Arena& arena);
  explicit Telemetry(sim::Simulator& simulator);

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  void enable(TelemetryConfig config = {});
  [[nodiscard]] bool enabled() const { return enabled_; }
  [[nodiscard]] const TelemetryConfig& config() const { return config_; }

  [[nodiscard]] MetricRegistry& metrics() { return metrics_; }
  [[nodiscard]] const MetricRegistry& metrics() const { return metrics_; }
  [[nodiscard]] FlightRecorder& recorder() { return recorder_; }
  [[nodiscard]] const FlightRecorder& recorder() const { return recorder_; }

  /// Create-or-get a named series. Stable address for the hub's lifetime.
  [[nodiscard]] TimeSeries& series(const std::string& name);
  [[nodiscard]] const TimeSeries* findSeries(const std::string& name) const;
  [[nodiscard]] std::size_t seriesCount() const { return series_.size(); }

  template <typename F>
  void forEachSeries(F&& fn) const {
    for (const auto& s : series_) fn(*s);
  }

  /// Register a probe: `fn` is invoked on every sampling tick and its value
  /// appended to `seriesName`. Samplers run in registration order. The
  /// first registration arms the sampling tick.
  using Sampler = std::function<double()>;
  SamplerId addSampler(const std::string& seriesName, Sampler fn);
  /// Stop sampling `id`. Safe on invalid/stale ids; ordering of the
  /// remaining samplers is preserved.
  void removeSampler(SamplerId id);

  /// Summarize everything recorded so far (counters/gauges sorted by name).
  [[nodiscard]] TelemetrySnapshot snapshot() const;

  /// Enter restore mode: component overlays (e.g. restored TCP connections)
  /// may re-register samplers, and armTick() must not schedule fresh tick
  /// events for them — the snapshot's TEL section re-arms the tick under
  /// its original event key, which ends restore mode.
  void beginRestore() { restoring_ = true; }

  /// Snapshot/restore of the hub: registry, recorder, series (by name),
  /// sampler-id counter, and the pending sampling tick. Sampler callbacks
  /// never cross the wire — restored components re-register them before
  /// this runs, which is why the TEL section is read LAST (the overlay then
  /// squashes any counter/series values those re-registrations bumped).
  /// Returns claimed pending events.
  std::uint64_t serialize(sim::Codec& c);

  /// Write the flight recorder trace; returns false if the file can't be
  /// opened. Format by extension-agnostic flag: JSONL by default.
  bool writeTrace(const std::string& path, bool csv = false) const;

 private:
  void enableFromEnv();
  void tick();
  void armTick();

  sim::Simulator& sim_;
  /// Present only for the standalone (arena-less) constructor; declared
  /// before series_ so arena-backed nodes die first.
  std::unique_ptr<sim::Arena> owned_arena_;
  sim::Arena& arena_;
  bool enabled_ = false;
  bool tick_armed_ = false;
  bool restoring_ = false;
  sim::EventId tick_event_{};
  TelemetryConfig config_;

  MetricRegistry metrics_;
  FlightRecorder recorder_;

  // Arena nodes: stable addresses across growth, one pooled block each.
  std::vector<sim::ArenaPtr<TimeSeries>> series_;
  std::map<std::string, std::size_t> series_index_;

  struct SamplerEntry {
    std::uint32_t id = 0;
    TimeSeries* series = nullptr;
    Sampler fn;
  };
  std::vector<SamplerEntry> samplers_;
  std::uint32_t next_sampler_id_ = 0;
};

}  // namespace scidmz::telemetry
