#include "perfsonar/dashboard.hpp"

#include <algorithm>

namespace scidmz::perfsonar {

CellRating Dashboard::throughputRating(const std::string& src, const std::string& dst) const {
  const auto sample = archive_.latest(src, dst, kMetricThroughputMbps);
  if (!sample) return CellRating::kNoData;
  const double fraction = expected_mbps_ > 0 ? sample->value / expected_mbps_ : 0.0;
  if (fraction >= thresholds_.goodFraction) return CellRating::kGood;
  if (fraction >= thresholds_.degradedFraction) return CellRating::kDegraded;
  return CellRating::kBad;
}

CellRating Dashboard::lossRating(const std::string& src, const std::string& dst) const {
  const auto sample = archive_.latest(src, dst, kMetricLossFraction);
  if (!sample) return CellRating::kNoData;
  if (sample->value < 1e-4) return CellRating::kGood;
  if (sample->value < 1e-2) return CellRating::kDegraded;
  return CellRating::kBad;
}

int Dashboard::countAtRating(CellRating rating) const {
  int n = 0;
  for (const auto& src : sites_) {
    for (const auto& dst : sites_) {
      if (src != dst && throughputRating(src, dst) == rating) ++n;
    }
  }
  return n;
}

std::string Dashboard::render() const {
  // Column width fits the longest site name (min 4 for readability).
  std::size_t width = 4;
  for (const auto& s : sites_) width = std::max(width, s.size());
  width += 1;

  auto pad = [width](const std::string& text) {
    std::string out = text;
    out.resize(width, ' ');
    return out;
  };

  std::string out = pad("");
  for (const auto& dst : sites_) out += pad(dst);
  out += "\n";
  for (const auto& src : sites_) {
    out += pad(src);
    for (const auto& dst : sites_) {
      if (src == dst) {
        out += pad("-");
        continue;
      }
      // Two glyphs per cell: throughput rating and loss rating, matching
      // the halved squares in the paper's Figure 2.
      std::string cell;
      cell += toGlyph(throughputRating(src, dst));
      cell += toGlyph(lossRating(src, dst));
      out += pad(cell);
    }
    out += "\n";
  }
  out += "legend: # good   + degraded   ! bad   . no-data   (throughput|loss)\n";
  return out;
}

}  // namespace scidmz::perfsonar
