// Mesh dashboard (MaDDash-style): the Figure 2 grid. Each ordered site
// pair gets a cell rated against the expected path throughput; the render
// is an ASCII table with both directions of a pair visible.
#pragma once

#include <string>
#include <vector>

#include "perfsonar/archive.hpp"

namespace scidmz::perfsonar {

enum class CellRating { kGood, kDegraded, kBad, kNoData };

[[nodiscard]] constexpr char toGlyph(CellRating r) {
  switch (r) {
    case CellRating::kGood: return '#';      // full throughput
    case CellRating::kDegraded: return '+';  // degraded
    case CellRating::kBad: return '!';       // badly impaired
    case CellRating::kNoData: return '.';
  }
  return '?';
}

struct DashboardThresholds {
  /// >= goodFraction of expected throughput rates "good".
  double goodFraction = 0.8;
  /// >= degradedFraction rates "degraded"; below is "bad".
  double degradedFraction = 0.3;
};

class Dashboard {
 public:
  Dashboard(const MeasurementArchive& archive, std::vector<std::string> sites,
            double expectedMbps, DashboardThresholds thresholds = {})
      : archive_(archive),
        sites_(std::move(sites)),
        expected_mbps_(expectedMbps),
        thresholds_(thresholds) {}

  /// Rating of the latest throughput sample for src -> dst.
  [[nodiscard]] CellRating throughputRating(const std::string& src, const std::string& dst) const;

  /// Rating of the latest loss sample (good: < 0.01%, degraded: < 1%).
  [[nodiscard]] CellRating lossRating(const std::string& src, const std::string& dst) const;

  /// Count of pairs currently rated at the given level (throughput).
  [[nodiscard]] int countAtRating(CellRating rating) const;

  /// ASCII grid: rows = source site, columns = destination site.
  [[nodiscard]] std::string render() const;

  [[nodiscard]] const std::vector<std::string>& sites() const { return sites_; }

 private:
  const MeasurementArchive& archive_;
  std::vector<std::string> sites_;
  double expected_mbps_;
  DashboardThresholds thresholds_;
};

}  // namespace scidmz::perfsonar
