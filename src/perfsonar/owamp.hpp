// OWAMP-style one-way active measurement (RFC 4656 in spirit): a stream of
// small timestamped UDP probes at a fixed rate. This is the tool that
// catches the paper's Section 2 failing line card — loss rates far below
// anything SNMP error counters or throughput graphs reveal.
//
// Loss semantics follow the real tool: a probe counts as lost only once it
// is `lossTimeout` overdue, so queueing delay (e.g. a TCP test inflating a
// shared buffer) shows up as delay, not as phantom loss.
#pragma once

#include <cstdint>
#include <vector>

#include "net/host.hpp"
#include "sim/stats.hpp"
#include "telemetry/span.hpp"

namespace scidmz::perfsonar {

struct OwampReport {
  std::uint64_t sent = 0;      ///< Probes past the loss-timeout horizon.
  std::uint64_t received = 0;  ///< Of those, how many arrived.
  double lossFraction = 0.0;
  sim::Duration minDelay = sim::Duration::zero();
  sim::Duration meanDelay = sim::Duration::zero();
  sim::Duration maxDelay = sim::Duration::zero();
};

/// Probe stream configuration (namespace scope so it can be a defaulted
/// argument; GCC cannot evaluate a nested class's member initializers in
/// the enclosing class's default arguments).
struct OwampOptions {
  sim::Duration interval = sim::Duration::milliseconds(100);  // 10 pps
  sim::DataSize probeSize = sim::DataSize::bytes(50);
  std::uint16_t port = 861;  // OWAMP's IANA port
  /// A probe not seen this long after transmission is declared lost.
  sim::Duration lossTimeout = sim::Duration::seconds(2);
};

/// A continuous one-way probe stream from `src` to `dst`. Owns both the
/// sending schedule and the receiving sink.
class OwampStream {
 public:
  using Options = OwampOptions;

  OwampStream(net::Host& src, net::Host& dst, Options options = OwampOptions());
  ~OwampStream();

  OwampStream(const OwampStream&) = delete;
  OwampStream& operator=(const OwampStream&) = delete;

  void start();
  void stop();

  /// Cumulative statistics over all probes that are past the loss-timeout
  /// horizon at the time of the call.
  [[nodiscard]] OwampReport report() const;

  /// Delta report covering the probes that crossed the loss-timeout
  /// horizon since the previous call — the shape regular monitoring
  /// consumes (one row per measurement interval).
  [[nodiscard]] OwampReport intervalReport();

  /// Raw counters (no timeout accounting).
  [[nodiscard]] std::uint64_t probesSent() const { return sent_times_.size(); }
  [[nodiscard]] std::uint64_t probesReceived() const { return receiver_.received_count_; }

 private:
  class Receiver : public net::PacketSink {
   public:
    explicit Receiver(net::Host& host) : host_(host) {}
    void onPacket(const net::Packet& packet) override;
    net::Host& host_;
    std::uint32_t stream_id_ = 0;
    std::vector<bool> got_;
    std::uint64_t received_count_ = 0;
    sim::RunningStats delaySeconds_;
  };

  void sendProbe();
  /// Count of probes sent at or before `cutoff`, and how many arrived.
  struct HorizonCounts {
    std::uint64_t due = 0;
    std::uint64_t arrived = 0;
  };
  [[nodiscard]] HorizonCounts countsAtHorizon(sim::SimTime now) const;

  net::Host& src_;
  net::Host& dst_;
  Options options_;
  Receiver receiver_;
  std::uint32_t stream_id_;
  bool running_ = false;
  sim::EventId timer_{};
  std::vector<sim::SimTime> sent_times_;
  HorizonCounts last_snapshot_;
  /// Root "owamp.session" span over the probing window (tracing only).
  telemetry::Tracer* tracer_ = nullptr;
  telemetry::SpanId span_{};
};

}  // namespace scidmz::perfsonar
