// BWCTL-style scheduled throughput tests: a fixed-duration memory-to-memory
// TCP test (iperf under the hood, historically) that measures the available
// bandwidth a real science flow would see on the path.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "net/flow.hpp"
#include "net/host.hpp"
#include "tcp/connection.hpp"
#include "telemetry/span.hpp"

namespace scidmz::perfsonar {

struct BwctlResult {
  bool ran = false;
  sim::DataRate throughput = sim::DataRate::zero();
  sim::DataSize bytesMoved = sim::DataSize::zero();
  sim::Duration duration = sim::Duration::zero();
  std::uint64_t retransmits = 0;
};

/// One throughput test: drive TCP at full tilt for `duration`, then report
/// the receiver-side delivery rate. Disposable: construct, start, read the
/// result from the completion callback.
struct BwctlOptions {
  sim::Duration duration = sim::Duration::seconds(10);
  std::uint16_t port = 4823;  // BWCTL's IANA port
  tcp::TcpConfig tcp = tcp::TcpConfig::tunedDtn();
  /// A throughput probe measures steady-state rate, which the fluid model
  /// reproduces directly, so fluid probes are meaningful (and cheap).
  net::FlowFidelity fidelity = net::FlowFidelity::kPacket;
};

class BwctlTest {
 public:
  using Options = BwctlOptions;

  BwctlTest(net::Host& src, net::Host& dst, Options options = BwctlOptions());
  ~BwctlTest();

  BwctlTest(const BwctlTest&) = delete;
  BwctlTest& operator=(const BwctlTest&) = delete;

  void start();

  std::function<void(const BwctlResult&)> onComplete;

  [[nodiscard]] const BwctlResult& result() const { return result_; }
  [[nodiscard]] bool finished() const { return finished_; }

 private:
  void finish();

  net::Host& src_;
  net::Host& dst_;
  Options options_;
  net::FlowPtr flow_;
  sim::SimTime measure_start_;
  sim::DataSize measure_base_ = sim::DataSize::zero();
  sim::EventId end_timer_{};
  sim::EventId watchdog_{};
  bool finished_ = false;
  BwctlResult result_;
  /// Root "bwctl.session" span over the test (tracing only).
  telemetry::Tracer* tracer_ = nullptr;
  telemetry::SpanId span_{};
};

}  // namespace scidmz::perfsonar
