// Measurement archive: the esmond-style store behind a perfSONAR
// deployment. Time series keyed by (source site, destination site, metric),
// queryable for dashboards and alerting.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "sim/stats.hpp"
#include "sim/units.hpp"

namespace scidmz::perfsonar {

/// Canonical metric names used across this library.
inline constexpr const char* kMetricThroughputMbps = "throughput_mbps";
inline constexpr const char* kMetricLossFraction = "loss_fraction";
inline constexpr const char* kMetricOneWayDelayMs = "owd_ms";

struct Sample {
  sim::SimTime at;
  double value = 0.0;
};

class MeasurementArchive {
 public:
  void record(const std::string& src, const std::string& dst, const std::string& metric,
              sim::SimTime at, double value) {
    series_[Key{src, dst, metric}].push_back(Sample{at, value});
  }

  [[nodiscard]] const std::vector<Sample>* series(const std::string& src, const std::string& dst,
                                                  const std::string& metric) const {
    const auto it = series_.find(Key{src, dst, metric});
    return it == series_.end() ? nullptr : &it->second;
  }

  [[nodiscard]] std::optional<Sample> latest(const std::string& src, const std::string& dst,
                                             const std::string& metric) const {
    const auto* s = series(src, dst, metric);
    if (s == nullptr || s->empty()) return std::nullopt;
    return s->back();
  }

  /// Mean of samples with at >= since.
  [[nodiscard]] std::optional<double> meanSince(const std::string& src, const std::string& dst,
                                                const std::string& metric,
                                                sim::SimTime since) const {
    const auto* s = series(src, dst, metric);
    if (s == nullptr) return std::nullopt;
    sim::RunningStats stats;
    for (const auto& sample : *s) {
      if (sample.at >= since) stats.add(sample.value);
    }
    if (stats.count() == 0) return std::nullopt;
    return stats.mean();
  }

  /// Mean of the first `n` samples — the "baseline" for regression alerts.
  [[nodiscard]] std::optional<double> baselineMean(const std::string& src, const std::string& dst,
                                                   const std::string& metric,
                                                   std::size_t n) const {
    const auto* s = series(src, dst, metric);
    if (s == nullptr || s->empty()) return std::nullopt;
    sim::RunningStats stats;
    for (std::size_t i = 0; i < s->size() && i < n; ++i) stats.add((*s)[i].value);
    return stats.mean();
  }

  [[nodiscard]] std::size_t seriesCount() const { return series_.size(); }

  struct SeriesKey {
    std::string src;
    std::string dst;
    std::string metric;
  };
  [[nodiscard]] std::vector<SeriesKey> keys() const {
    std::vector<SeriesKey> out;
    out.reserve(series_.size());
    for (const auto& [key, samples] : series_) {
      out.push_back(SeriesKey{std::get<0>(key), std::get<1>(key), std::get<2>(key)});
    }
    return out;
  }

 private:
  using Key = std::tuple<std::string, std::string, std::string>;
  std::map<Key, std::vector<Sample>> series_;
};

}  // namespace scidmz::perfsonar
