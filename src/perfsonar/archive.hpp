// Measurement archive: the esmond-style store behind a perfSONAR
// deployment. Time series keyed by (source site, destination site, metric),
// queryable for dashboards and alerting.
//
// Storage is the telemetry layer's TimeSeries — the archive is a consumer
// of the same probe machinery as the rest of the simulator, not a private
// stats store. Attach it to a scenario's Telemetry hub and every archived
// measurement also appears in telemetry snapshots (and BENCH_sim.json) as
// "psonar/<src>-><dst>/<metric>"; default-constructed archives own their
// series locally.
#pragma once

#include <deque>
#include <map>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "sim/stats.hpp"
#include "sim/units.hpp"
#include "telemetry/series.hpp"
#include "telemetry/telemetry.hpp"

namespace scidmz::perfsonar {

/// Canonical metric names used across this library.
inline constexpr const char* kMetricThroughputMbps = "throughput_mbps";
inline constexpr const char* kMetricLossFraction = "loss_fraction";
inline constexpr const char* kMetricOneWayDelayMs = "owd_ms";

/// Archive samples ARE telemetry samples; one vocabulary across the stack.
using Sample = telemetry::Sample;

class MeasurementArchive {
 public:
  /// Standalone archive owning its series.
  MeasurementArchive() = default;
  /// Archive whose series live in (and are reported by) the telemetry hub.
  explicit MeasurementArchive(telemetry::Telemetry& hub) : hub_(&hub) {}

  MeasurementArchive(const MeasurementArchive&) = delete;
  MeasurementArchive& operator=(const MeasurementArchive&) = delete;

  void record(const std::string& src, const std::string& dst, const std::string& metric,
              sim::SimTime at, double value) {
    seriesFor(src, dst, metric).append(at, value);
  }

  [[nodiscard]] const std::vector<Sample>* series(const std::string& src, const std::string& dst,
                                                  const std::string& metric) const {
    const auto it = index_.find(Key{src, dst, metric});
    return it == index_.end() ? nullptr : &it->second->samples();
  }

  [[nodiscard]] std::optional<Sample> latest(const std::string& src, const std::string& dst,
                                             const std::string& metric) const {
    const auto* s = series(src, dst, metric);
    if (s == nullptr || s->empty()) return std::nullopt;
    return s->back();
  }

  /// Mean of samples with at >= since.
  [[nodiscard]] std::optional<double> meanSince(const std::string& src, const std::string& dst,
                                                const std::string& metric,
                                                sim::SimTime since) const {
    const auto* s = series(src, dst, metric);
    if (s == nullptr) return std::nullopt;
    sim::RunningStats stats;
    for (const auto& sample : *s) {
      if (sample.at >= since) stats.add(sample.value);
    }
    if (stats.count() == 0) return std::nullopt;
    return stats.mean();
  }

  /// Mean of the first `n` samples — the "baseline" for regression alerts.
  [[nodiscard]] std::optional<double> baselineMean(const std::string& src, const std::string& dst,
                                                   const std::string& metric,
                                                   std::size_t n) const {
    const auto* s = series(src, dst, metric);
    if (s == nullptr || s->empty()) return std::nullopt;
    sim::RunningStats stats;
    for (std::size_t i = 0; i < s->size() && i < n; ++i) stats.add((*s)[i].value);
    return stats.mean();
  }

  [[nodiscard]] std::size_t seriesCount() const { return index_.size(); }

  struct SeriesKey {
    std::string src;
    std::string dst;
    std::string metric;
  };
  [[nodiscard]] std::vector<SeriesKey> keys() const {
    std::vector<SeriesKey> out;
    out.reserve(index_.size());
    for (const auto& [key, ts] : index_) {
      out.push_back(SeriesKey{std::get<0>(key), std::get<1>(key), std::get<2>(key)});
    }
    return out;
  }

 private:
  using Key = std::tuple<std::string, std::string, std::string>;

  [[nodiscard]] telemetry::TimeSeries& seriesFor(const std::string& src, const std::string& dst,
                                                 const std::string& metric) {
    Key key{src, dst, metric};
    const auto it = index_.find(key);
    if (it != index_.end()) return *it->second;
    const std::string name = "psonar/" + src + "->" + dst + "/" + metric;
    telemetry::TimeSeries* ts = nullptr;
    if (hub_ != nullptr) {
      ts = &hub_->series(name);
    } else {
      local_.emplace_back(name);
      ts = &local_.back();
    }
    index_.emplace(std::move(key), ts);
    return *ts;
  }

  telemetry::Telemetry* hub_ = nullptr;
  std::deque<telemetry::TimeSeries> local_;  // stable addresses (standalone mode)
  std::map<Key, telemetry::TimeSeries*> index_;
};

}  // namespace scidmz::perfsonar
