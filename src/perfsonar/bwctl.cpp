#include "perfsonar/bwctl.hpp"

namespace scidmz::perfsonar {

BwctlTest::BwctlTest(net::Host& src, net::Host& dst, Options options)
    : src_(src), dst_(dst), options_(options) {}

BwctlTest::~BwctlTest() {
  if (end_timer_.valid()) src_.ctx().sim().cancel(end_timer_);
  if (watchdog_.valid()) src_.ctx().sim().cancel(watchdog_);
}

void BwctlTest::start() {
  auto& tracer = src_.ctx().extension<telemetry::Tracer>();
  if (tracer.enabled()) {
    tracer_ = &tracer;
    span_ = tracer_->begin(src_.ctx().now(), "bwctl " + src_.name() + "->" + dst_.name(),
                           "perfsonar.bwctl");
  }
  net::FlowFactory::Options flowOptions;
  flowOptions.port = options_.port;
  flowOptions.fidelity = options_.fidelity;
  flow_ = net::flowFactory(src_.ctx()).create(src_, dst_, options_.tcp, flowOptions);
  flow_->onEstablished = [this] {
    // Enough data that the source never runs dry within the test window.
    flow_->sendData(sim::DataSize::terabytes(10));
    measure_start_ = src_.ctx().now();
    measure_base_ = flow_->deliveredBytes();
    end_timer_ = src_.ctx().sim().schedule(options_.duration, [this] {
      end_timer_ = sim::EventId{};
      finish();
    });
  };
  flow_->start();

  // If the handshake itself never completes (black-holed path), report a
  // zero-throughput result rather than hanging forever.
  watchdog_ = src_.ctx().sim().schedule(options_.duration * 4, [this] {
    watchdog_ = sim::EventId{};
    if (!finished_) finish();
  });
}

void BwctlTest::finish() {
  if (finished_) return;
  finished_ = true;
  if (end_timer_.valid()) {
    src_.ctx().sim().cancel(end_timer_);
    end_timer_ = sim::EventId{};
  }
  if (watchdog_.valid()) {
    src_.ctx().sim().cancel(watchdog_);
    watchdog_ = sim::EventId{};
  }
  result_.ran = true;
  if (flow_ && flow_->established()) {
    const auto moved = flow_->deliveredBytes() - measure_base_;
    const auto span = src_.ctx().now() - measure_start_;
    result_.bytesMoved = moved;
    result_.duration = span;
    if (span > sim::Duration::zero()) {
      result_.throughput = sim::DataRate::bitsPerSecond(static_cast<std::uint64_t>(
          static_cast<double>(moved.bitCount()) / span.toSeconds()));
    }
  }
  result_.retransmits = flow_ ? flow_->retransmits() : 0;
  // Tear the flow down so back-to-back scheduled tests do not overlap.
  flow_.reset();
  if (tracer_ != nullptr && span_.valid()) {
    tracer_->annotate(span_, "throughput_mbps", result_.throughput.toMbps());
    tracer_->annotate(span_, "retransmits", result_.retransmits);
    tracer_->end(span_, src_.ctx().now());
    span_ = telemetry::SpanId{};
  }
  if (onComplete) onComplete(result_);
}

}  // namespace scidmz::perfsonar
