// Mesh measurement runner: continuous OWAMP between every ordered site
// pair plus round-robin BWCTL throughput tests, all feeding the archive.
// This is the machinery behind a production perfSONAR mesh and behind the
// paper's Figure 2 dashboard.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/host.hpp"
#include "perfsonar/archive.hpp"
#include "perfsonar/bwctl.hpp"
#include "perfsonar/owamp.hpp"

namespace scidmz::perfsonar {

struct MeshSite {
  std::string name;
  net::Host* host = nullptr;
};

struct MeshOptions {
  /// How often each pair's OWAMP interval statistics are archived.
  sim::Duration lossReportInterval = sim::Duration::seconds(10);
  /// Gap between consecutive BWCTL tests (tests are serialized so they
  /// never compete with each other, as real BWCTL enforces).
  sim::Duration throughputTestGap = sim::Duration::seconds(5);
  sim::Duration throughputTestDuration = sim::Duration::seconds(5);
  OwampOptions owamp;
  tcp::TcpConfig bwctlTcp = tcp::TcpConfig::tunedDtn();
};

class MeshRunner {
 public:
  using Options = MeshOptions;

  MeshRunner(net::Context& ctx, std::vector<MeshSite> sites, MeasurementArchive& archive,
             Options options = MeshOptions());
  ~MeshRunner();

  MeshRunner(const MeshRunner&) = delete;
  MeshRunner& operator=(const MeshRunner&) = delete;

  void start();
  void stop();

  [[nodiscard]] const std::vector<MeshSite>& sites() const { return sites_; }
  [[nodiscard]] std::vector<std::string> siteNames() const;

 private:
  struct Pair {
    std::size_t srcIndex = 0;
    std::size_t dstIndex = 0;
    std::unique_ptr<OwampStream> owamp;
  };

  void archiveLossReports();
  void runNextThroughputTest();

  net::Context& ctx_;
  std::vector<MeshSite> sites_;
  MeasurementArchive& archive_;
  Options options_;
  std::vector<Pair> pairs_;
  std::unique_ptr<BwctlTest> current_test_;
  std::size_t next_pair_ = 0;
  bool running_ = false;
  sim::EventId loss_timer_{};
  sim::EventId bwctl_timer_{};
};

}  // namespace scidmz::perfsonar
