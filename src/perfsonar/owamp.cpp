#include "perfsonar/owamp.hpp"

#include <algorithm>

namespace scidmz::perfsonar {
namespace {

OwampReport makeReport(std::uint64_t due, std::uint64_t arrived,
                       const sim::RunningStats& delays) {
  OwampReport r;
  r.sent = due;
  r.received = std::min(arrived, due);
  r.lossFraction =
      due == 0 ? 0.0 : static_cast<double>(due - r.received) / static_cast<double>(due);
  r.minDelay = sim::Duration::fromSeconds(delays.count() ? delays.min() : 0.0);
  r.meanDelay = sim::Duration::fromSeconds(delays.mean());
  r.maxDelay = sim::Duration::fromSeconds(delays.count() ? delays.max() : 0.0);
  return r;
}

}  // namespace

OwampStream::OwampStream(net::Host& src, net::Host& dst, Options options)
    : src_(src), dst_(dst), options_(options), receiver_(dst), stream_id_(src.ctx().nextStreamId()) {
  receiver_.stream_id_ = stream_id_;
  dst_.bind(net::Protocol::kUdp, options_.port, receiver_);
}

OwampStream::~OwampStream() {
  stop();
  dst_.unbind(net::Protocol::kUdp, options_.port);
}

void OwampStream::start() {
  if (running_) return;
  running_ = true;
  auto& tracer = src_.ctx().extension<telemetry::Tracer>();
  if (tracer.enabled()) {
    tracer_ = &tracer;
    span_ = tracer_->begin(src_.ctx().now(), "owamp " + src_.name() + "->" + dst_.name(),
                           "perfsonar.owamp");
    tracer_->setCorrelationKey(span_, src_.address().value(), dst_.address().value());
  }
  sendProbe();
}

void OwampStream::stop() {
  running_ = false;
  if (timer_.valid()) {
    src_.ctx().sim().cancel(timer_);
    timer_ = sim::EventId{};
  }
  if (tracer_ != nullptr && span_.valid()) {
    tracer_->annotate(span_, "probes_sent", static_cast<std::uint64_t>(sent_times_.size()));
    tracer_->end(span_, src_.ctx().now());
    span_ = telemetry::SpanId{};
  }
}

void OwampStream::sendProbe() {
  if (!running_) return;
  net::ProbeHeader header;
  header.streamId = stream_id_;
  header.seqNo = sent_times_.size();
  header.sentAt = src_.ctx().now();
  net::FlowKey flow{src_.address(), dst_.address(), static_cast<std::uint16_t>(8760),
                    options_.port, net::Protocol::kUdp};
  src_.send(net::makeProbePacket(src_.ctx().pool(), flow, header, options_.probeSize));
  sent_times_.push_back(src_.ctx().now());
  timer_ = src_.ctx().sim().schedule(options_.interval, [this] {
    timer_ = sim::EventId{};
    sendProbe();
  });
}

void OwampStream::Receiver::onPacket(const net::Packet& packet) {
  if (!packet.isProbe()) return;
  const auto& probe = packet.probe();
  if (probe.streamId != stream_id_) return;
  if (probe.seqNo >= got_.size()) got_.resize(probe.seqNo + 1, false);
  if (!got_[probe.seqNo]) {
    got_[probe.seqNo] = true;
    ++received_count_;
  }
  const auto delay = host_.ctx().now() - probe.sentAt;
  delaySeconds_.add(delay.toSeconds());
}

OwampStream::HorizonCounts OwampStream::countsAtHorizon(sim::SimTime now) const {
  const auto cutoff = now - options_.lossTimeout;
  HorizonCounts counts;
  for (std::size_t i = 0; i < sent_times_.size(); ++i) {
    if (sent_times_[i] > cutoff) break;  // sent_times_ is monotonic
    ++counts.due;
    if (i < receiver_.got_.size() && receiver_.got_[i]) ++counts.arrived;
  }
  return counts;
}

OwampReport OwampStream::report() const {
  const auto counts = countsAtHorizon(src_.ctx().now());
  return makeReport(counts.due, counts.arrived, receiver_.delaySeconds_);
}

OwampReport OwampStream::intervalReport() {
  const auto counts = countsAtHorizon(src_.ctx().now());
  const auto dueDelta = counts.due - last_snapshot_.due;
  const auto arrivedDelta = counts.arrived - last_snapshot_.arrived;
  last_snapshot_ = counts;
  return makeReport(dueDelta, arrivedDelta, receiver_.delaySeconds_);
}

}  // namespace scidmz::perfsonar
