#include "perfsonar/alerts.hpp"

namespace scidmz::perfsonar {
namespace {

std::string latchKey(const std::string& src, const std::string& dst, const std::string& metric) {
  return src + "|" + dst + "|" + metric;
}

}  // namespace

void SoftFailureDetector::evaluate(sim::SimTime now) {
  for (const auto& key : archive_.keys()) {
    const auto latest = archive_.latest(key.src, key.dst, key.metric);
    if (!latest) continue;

    if (key.metric == kMetricLossFraction) {
      if (latest->value > options_.lossThreshold) {
        raise(now, key.src, key.dst, key.metric, latest->value,
              "packet loss " + std::to_string(latest->value * 100) + "% exceeds threshold");
      }
      continue;
    }
    if (key.metric == kMetricThroughputMbps) {
      const auto baseline =
          archive_.baselineMean(key.src, key.dst, key.metric, options_.baselineSamples);
      const auto* series = archive_.series(key.src, key.dst, key.metric);
      if (!baseline || series == nullptr || series->size() <= options_.baselineSamples) continue;
      if (latest->value < options_.throughputDropFraction * *baseline) {
        raise(now, key.src, key.dst, key.metric, latest->value,
              "throughput " + std::to_string(latest->value) + " Mbps regressed below " +
                  std::to_string(options_.throughputDropFraction * *baseline) +
                  " Mbps (baseline " + std::to_string(*baseline) + ")");
      }
    }
  }
}

void SoftFailureDetector::clearPair(const std::string& src, const std::string& dst) {
  for (auto it = latched_.begin(); it != latched_.end();) {
    if (it->rfind(src + "|" + dst + "|", 0) == 0) {
      it = latched_.erase(it);
    } else {
      ++it;
    }
  }
}

bool SoftFailureDetector::hasActiveAlert(const std::string& src, const std::string& dst) const {
  for (const auto& key : latched_) {
    if (key.rfind(src + "|" + dst + "|", 0) == 0) return true;
  }
  return false;
}

void SoftFailureDetector::raise(sim::SimTime now, const std::string& src, const std::string& dst,
                                const std::string& metric, double value, std::string message) {
  const auto key = latchKey(src, dst, metric);
  if (latched_.count(key)) return;
  latched_.insert(key);
  const Alert alert{now, src, dst, metric, value, std::move(message)};
  alerts_.push_back(alert);
  if (onAlert) onAlert(alert);
}

}  // namespace scidmz::perfsonar
