// Soft-failure detection: the paper's Section 3.3 payoff. Regular active
// measurements turn "a scientist eventually complains" into an alert —
// loss rates above threshold, or throughput regressing against the path's
// own baseline.
#pragma once

#include <functional>
#include <set>
#include <string>
#include <vector>

#include "perfsonar/archive.hpp"

namespace scidmz::perfsonar {

struct Alert {
  sim::SimTime at;
  std::string src;
  std::string dst;
  std::string metric;
  double value = 0.0;
  std::string message;
};

struct SoftFailureOptions {
  /// Loss above this fraction raises an alert (perfSONAR default
  /// practice: any sustained loss on a science path is a failure).
  double lossThreshold = 1e-3;
  /// Throughput below this fraction of the baseline raises an alert.
  double throughputDropFraction = 0.5;
  /// Samples used to establish the per-path baseline.
  std::size_t baselineSamples = 3;
};

class SoftFailureDetector {
 public:
  using Options = SoftFailureOptions;

  explicit SoftFailureDetector(const MeasurementArchive& archive,
                               Options options = SoftFailureOptions())
      : archive_(archive), options_(options) {}

  /// Scan the archive's latest samples and raise alerts. An alert for a
  /// given (src, dst, metric) fires once until cleared.
  void evaluate(sim::SimTime now);

  /// Clear latched alerts for a pair (after a fix is deployed and
  /// verified), so regression can be detected again.
  void clearPair(const std::string& src, const std::string& dst);

  std::function<void(const Alert&)> onAlert;

  [[nodiscard]] const std::vector<Alert>& alerts() const { return alerts_; }
  [[nodiscard]] bool hasActiveAlert(const std::string& src, const std::string& dst) const;

 private:
  void raise(sim::SimTime now, const std::string& src, const std::string& dst,
             const std::string& metric, double value, std::string message);

  const MeasurementArchive& archive_;
  Options options_;
  std::vector<Alert> alerts_;
  std::set<std::string> latched_;  // "src|dst|metric"
};

}  // namespace scidmz::perfsonar
