#include "perfsonar/mesh.hpp"

namespace scidmz::perfsonar {

MeshRunner::MeshRunner(net::Context& ctx, std::vector<MeshSite> sites,
                       MeasurementArchive& archive, Options options)
    : ctx_(ctx), sites_(std::move(sites)), archive_(archive), options_(options) {
  for (std::size_t s = 0; s < sites_.size(); ++s) {
    for (std::size_t d = 0; d < sites_.size(); ++d) {
      if (s == d) continue;
      auto owampOptions = options_.owamp;
      // Unique receiver port per source so streams toward one site coexist.
      owampOptions.port = static_cast<std::uint16_t>(owampOptions.port + s);
      Pair pair;
      pair.srcIndex = s;
      pair.dstIndex = d;
      pair.owamp = std::make_unique<OwampStream>(*sites_[s].host, *sites_[d].host, owampOptions);
      pairs_.push_back(std::move(pair));
    }
  }
}

MeshRunner::~MeshRunner() { stop(); }

std::vector<std::string> MeshRunner::siteNames() const {
  std::vector<std::string> names;
  names.reserve(sites_.size());
  for (const auto& s : sites_) names.push_back(s.name);
  return names;
}

void MeshRunner::start() {
  if (running_) return;
  running_ = true;
  for (auto& pair : pairs_) pair.owamp->start();
  loss_timer_ = ctx_.sim().schedule(options_.lossReportInterval, [this] {
    loss_timer_ = sim::EventId{};
    archiveLossReports();
  });
  bwctl_timer_ = ctx_.sim().schedule(options_.throughputTestGap, [this] {
    bwctl_timer_ = sim::EventId{};
    runNextThroughputTest();
  });
}

void MeshRunner::stop() {
  running_ = false;
  for (auto& pair : pairs_) pair.owamp->stop();
  if (loss_timer_.valid()) {
    ctx_.sim().cancel(loss_timer_);
    loss_timer_ = sim::EventId{};
  }
  if (bwctl_timer_.valid()) {
    ctx_.sim().cancel(bwctl_timer_);
    bwctl_timer_ = sim::EventId{};
  }
  current_test_.reset();
}

void MeshRunner::archiveLossReports() {
  if (!running_) return;
  const auto now = ctx_.now();
  for (auto& pair : pairs_) {
    const auto report = pair.owamp->intervalReport();
    const auto& src = sites_[pair.srcIndex].name;
    const auto& dst = sites_[pair.dstIndex].name;
    archive_.record(src, dst, kMetricLossFraction, now, report.lossFraction);
    archive_.record(src, dst, kMetricOneWayDelayMs, now, report.meanDelay.toMillis());
  }
  loss_timer_ = ctx_.sim().schedule(options_.lossReportInterval, [this] {
    loss_timer_ = sim::EventId{};
    archiveLossReports();
  });
}

void MeshRunner::runNextThroughputTest() {
  if (!running_ || pairs_.empty()) return;
  auto& pair = pairs_[next_pair_];
  next_pair_ = (next_pair_ + 1) % pairs_.size();

  BwctlTest::Options testOptions;
  testOptions.duration = options_.throughputTestDuration;
  testOptions.tcp = options_.bwctlTcp;
  current_test_ = std::make_unique<BwctlTest>(*sites_[pair.srcIndex].host,
                                              *sites_[pair.dstIndex].host, testOptions);
  const auto& src = sites_[pair.srcIndex].name;
  const auto& dst = sites_[pair.dstIndex].name;
  current_test_->onComplete = [this, src, dst](const BwctlResult& result) {
    archive_.record(src, dst, kMetricThroughputMbps, ctx_.now(), result.throughput.toMbps());
    // Schedule the next test after the configured gap; serialized tests
    // keep the mesh's measurement load off the science paths.
    bwctl_timer_ = ctx_.sim().schedule(options_.throughputTestGap, [this] {
      bwctl_timer_ = sim::EventId{};
      runNextThroughputTest();
    });
  };
  current_test_->start();
}

}  // namespace scidmz::perfsonar
