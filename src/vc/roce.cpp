#include "vc/roce.hpp"

#include <algorithm>

namespace scidmz::vc {

RoceTransfer::RoceTransfer(net::Host& src, net::Host& dst, sim::DataSize bytes, Options options)
    : src_(src),
      dst_(dst),
      total_(bytes),
      options_(options),
      receiver_(*this, dst),
      sender_sink_(*this) {
  src_port_ = src_.allocatePort();
  dst_.bind(net::Protocol::kUdp, options_.port, receiver_);
  src_.bind(net::Protocol::kUdp, src_port_, sender_sink_);
}

RoceTransfer::~RoceTransfer() {
  if (pace_timer_.valid()) src_.ctx().sim().cancel(pace_timer_);
  if (watchdog_.valid()) src_.ctx().sim().cancel(watchdog_);
  dst_.unbind(net::Protocol::kUdp, options_.port);
  src_.unbind(net::Protocol::kUdp, src_port_);
}

void RoceTransfer::start() {
  started_at_ = src_.ctx().now();
  last_progress_at_ = started_at_;
  armWatchdog();
  paceNext();
}

void RoceTransfer::paceNext() {
  if (finished_) return;
  if (next_seq_ >= total_.byteCount()) {
    // Pipeline drained from our side; completion normally comes from the
    // final ACK. If the tail (or its ACK) was lost there is no later
    // packet to expose the gap, so arm a tail-recovery rewind.
    pace_timer_ = src_.ctx().sim().schedule(sim::Duration::milliseconds(100), [this] {
      pace_timer_ = sim::EventId{};
      if (finished_ || acked_ >= total_.byteCount()) return;
      wasted_ += sim::DataSize::bytes(next_seq_ - acked_);
      next_seq_ = acked_;
      paceNext();
    });
    return;
  }
  const auto len = std::min<std::uint64_t>(options_.messageSize.byteCount(),
                                           total_.byteCount() - next_seq_);
  net::RoceHeader header;
  header.seq = next_seq_;
  net::FlowKey flow{src_.address(), dst_.address(), src_port_, options_.port,
                    net::Protocol::kUdp};
  src_.send(net::makeRocePacket(src_.ctx().pool(), flow, header, sim::DataSize::bytes(len)));
  next_seq_ += len;

  // Hardware pacing at exactly the circuit rate (no congestion control).
  const auto gap = options_.rate.transmissionTime(sim::DataSize::bytes(len));
  pace_timer_ = src_.ctx().sim().schedule(gap, [this] {
    pace_timer_ = sim::EventId{};
    paceNext();
  });
}

void RoceTransfer::Receiver::onPacket(const net::Packet& packet) {
  if (!packet.isRoce()) return;
  const auto& header = packet.roce();
  const auto len = packet.payload.byteCount();
  const auto now = host_.ctx().now();

  if (header.seq == expected_) {
    expected_ += len;
    sentNack_ = false;
    // Cumulative ACK: piggyback progress every message (cheap in-model;
    // real RoCE acks per message too).
    net::RoceHeader ack;
    ack.isAck = true;
    ack.ackSeq = expected_;
    net::FlowKey replyFlow = packet.flow.reversed();
    replyFlow.src = host_.address();
    host_.send(net::makeRocePacket(host_.ctx().pool(), replyFlow, ack, sim::DataSize::zero()));
    return;
  }
  if (header.seq > expected_) {
    // Gap: NACK the first missing byte, at most one outstanding NACK per
    // round trip so a burst of out-of-order arrivals yields one rewind.
    if (!sentNack_ || now - lastNackAt_ > sim::Duration::milliseconds(1)) {
      sentNack_ = true;
      lastNackAt_ = now;
      net::RoceHeader nack;
      nack.isNack = true;
      nack.nackSeq = expected_;
      net::FlowKey replyFlow = packet.flow.reversed();
      replyFlow.src = host_.address();
      host_.send(net::makeRocePacket(host_.ctx().pool(), replyFlow, nack, sim::DataSize::zero()));
    }
  }
  // Below-expected duplicates are dropped silently.
}

void RoceTransfer::SenderSink::onPacket(const net::Packet& packet) {
  if (!packet.isRoce()) return;
  const auto& header = packet.roce();
  if (header.isAck) owner_.handleAck(header.ackSeq);
  if (header.isNack) owner_.handleNack(header.nackSeq);
}

void RoceTransfer::handleAck(std::uint64_t ackSeq) {
  if (finished_) return;
  if (ackSeq > acked_) {
    acked_ = ackSeq;
    last_progress_at_ = src_.ctx().now();
  }
  if (acked_ >= total_.byteCount()) finish(true);
}

void RoceTransfer::handleNack(std::uint64_t nackSeq) {
  if (finished_) return;
  // Go-back-N: rewind the transmit pointer; everything after the hole is
  // resent. This is the collapse mechanism without a loss-free circuit.
  if (nackSeq < next_seq_) {
    wasted_ += sim::DataSize::bytes(next_seq_ - nackSeq);
    next_seq_ = nackSeq;
    if (!pace_timer_.valid()) paceNext();
  }
}

void RoceTransfer::armWatchdog() {
  watchdog_ = src_.ctx().sim().schedule(options_.progressTimeout, [this] {
    watchdog_ = sim::EventId{};
    if (finished_) return;
    if (src_.ctx().now() - last_progress_at_ >= options_.progressTimeout) {
      finish(false);
      return;
    }
    armWatchdog();
  });
}

void RoceTransfer::finish(bool completed) {
  if (finished_) return;
  finished_ = true;
  if (pace_timer_.valid()) {
    src_.ctx().sim().cancel(pace_timer_);
    pace_timer_ = sim::EventId{};
  }
  if (watchdog_.valid()) {
    src_.ctx().sim().cancel(watchdog_);
    watchdog_ = sim::EventId{};
  }
  result_.completed = completed;
  result_.elapsed = src_.ctx().now() - started_at_;
  result_.bytesMoved = sim::DataSize::bytes(acked_);
  result_.bytesWasted = wasted_;
  result_.cpuUnits = roceCpuUnits(result_.bytesMoved);
  if (result_.elapsed > sim::Duration::zero()) {
    result_.goodput = sim::DataRate::bitsPerSecond(static_cast<std::uint64_t>(
        static_cast<double>(result_.bytesMoved.bitCount()) / result_.elapsed.toSeconds()));
  }
  if (onComplete) onComplete(result_);
}

}  // namespace scidmz::vc
