#include "vc/openflow.hpp"

#include <algorithm>

namespace scidmz::vc {

std::size_t FlowTable::add(FlowRule rule) {
  // Reuse a vacated slot if any, else append.
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    if (!rules_[i]) {
      rules_[i] = std::move(rule);
      return i;
    }
  }
  rules_.push_back(std::move(rule));
  return rules_.size() - 1;
}

void FlowTable::remove(std::size_t handle) {
  if (handle < rules_.size()) rules_[handle].reset();
}

FlowAction FlowTable::lookup(const net::FlowKey& key) {
  FlowRule* best = nullptr;
  for (auto& slot : rules_) {
    if (!slot || !slot->match.matches(key)) continue;
    if (best == nullptr || slot->priority > best->priority) best = &*slot;
  }
  if (best == nullptr) return table_miss_;
  ++best->hits;
  return best->action;
}

std::size_t FlowTable::ruleCount() const {
  return static_cast<std::size_t>(
      std::count_if(rules_.begin(), rules_.end(), [](const auto& r) { return r.has_value(); }));
}

const FlowRule* FlowTable::rule(std::size_t handle) const {
  if (handle >= rules_.size() || !rules_[handle]) return nullptr;
  return &*rules_[handle];
}

BypassController::BypassController(net::FirewallDevice& firewall,
                                   net::IntrusionDetectionSystem& ids)
    : firewall_(firewall) {
  ids.attachTo(firewall_);
  ids.onVetted([this](const net::FlowKey& flow) {
    firewall_.addBypass(flow);
    ++bypasses_;
    FlowRule rule;
    rule.priority = 10;
    rule.match.src = net::Prefix{flow.src, 32};
    rule.match.dst = net::Prefix{flow.dst, 32};
    rule.match.srcPort = flow.srcPort;
    rule.match.dstPort = flow.dstPort;
    rule.action = FlowAction::kBypassFirewall;
    table_.add(rule);
    if (onBypassInstalled) onBypassInstalled(flow);
  });
  ids.onFlagged([this](const net::FlowKey& flow) {
    ++drops_;
    FlowRule rule;
    rule.priority = 100;  // blocks outrank bypasses
    rule.match.src = net::Prefix{flow.src, 32};
    rule.action = FlowAction::kDrop;
    table_.add(rule);
    // Enforce in the firewall's policy too: deny the source outright.
    auto policy = firewall_.policy();
    net::AclRule deny;
    deny.action = net::AclAction::kDeny;
    deny.src = net::Prefix{flow.src, 32};
    deny.comment = "sdn-controller blocklist";
    // Prepend by rebuilding: deny first, then the existing rules.
    net::AclTable rebuilt{policy.defaultAction()};
    rebuilt.append(deny);
    for (const auto& r : policy.rules()) rebuilt.append(r);
    firewall_.setPolicy(rebuilt);
  });
}

}  // namespace scidmz::vc
