// OpenFlow-style flow table and the Section 7.3 controller application:
// dynamically modify security policy for large flows between trusted sites
// — send connection-setup traffic to the IDS, and once the connection is
// vetted, install a firewall bypass for the flow.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "net/firewall.hpp"
#include "net/ids.hpp"

namespace scidmz::vc {

/// Wildcard-capable match over the 5-tuple.
struct FlowMatch {
  std::optional<net::Prefix> src;
  std::optional<net::Prefix> dst;
  std::optional<std::uint16_t> srcPort;
  std::optional<std::uint16_t> dstPort;
  std::optional<net::Protocol> proto;

  [[nodiscard]] bool matches(const net::FlowKey& key) const {
    if (src && !src->contains(key.src)) return false;
    if (dst && !dst->contains(key.dst)) return false;
    if (srcPort && *srcPort != key.srcPort) return false;
    if (dstPort && *dstPort != key.dstPort) return false;
    if (proto && *proto != key.proto) return false;
    return true;
  }
};

enum class FlowAction : std::uint8_t {
  kForward,         ///< Normal forwarding (through the firewall).
  kBypassFirewall,  ///< Skip the firewall's inspection engines.
  kDrop,            ///< Blocklisted.
  kToController,    ///< Punt: no decision yet.
};

struct FlowRule {
  int priority = 0;  ///< Higher wins.
  FlowMatch match;
  FlowAction action = FlowAction::kForward;
  std::uint64_t hits = 0;
};

/// Priority-ordered flow table with a default (table-miss) action.
class FlowTable {
 public:
  explicit FlowTable(FlowAction tableMiss = FlowAction::kToController)
      : table_miss_(tableMiss) {}

  /// Insert a rule; returns a handle index usable with remove().
  std::size_t add(FlowRule rule);
  void remove(std::size_t handle);
  void clear() { rules_.clear(); }

  /// Highest-priority matching rule's action (counting the hit), or the
  /// table-miss action.
  FlowAction lookup(const net::FlowKey& key);

  [[nodiscard]] std::size_t ruleCount() const;
  [[nodiscard]] const FlowRule* rule(std::size_t handle) const;

 private:
  std::vector<std::optional<FlowRule>> rules_;
  FlowAction table_miss_;
};

/// The IDS-then-bypass controller: watches flows through a firewall via an
/// IDS tap; vetted flows get a firewall bypass installed, flagged flows get
/// a drop rule and a firewall policy deny.
class BypassController {
 public:
  /// Wires the IDS tap onto the firewall and registers the vet/flag
  /// policies. Configure the vetting depth on the IDS itself.
  BypassController(net::FirewallDevice& firewall, net::IntrusionDetectionSystem& ids);

  [[nodiscard]] FlowTable& table() { return table_; }
  [[nodiscard]] std::uint64_t bypassesInstalled() const { return bypasses_; }
  [[nodiscard]] std::uint64_t dropsInstalled() const { return drops_; }

  /// Fired when a bypass is installed (for logging / scenario assertions).
  std::function<void(const net::FlowKey&)> onBypassInstalled;

 private:
  net::FirewallDevice& firewall_;
  FlowTable table_;
  std::uint64_t bypasses_ = 0;
  std::uint64_t drops_ = 0;
};

}  // namespace scidmz::vc
