// OSCARS-style virtual circuit reservation service (Section 7.1): a
// bandwidth calendar with admission control over the topology's links.
//
// A reservation claims `bandwidth` on every link of the routed path for
// [start, end). Admission fails if any link's reservable capacity would be
// oversubscribed during any overlapping instant. The invariant the tests
// pin down: for every link and time, the sum of admitted reservations
// never exceeds the link's reservable capacity.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "net/topology.hpp"

namespace scidmz::vc {

struct ReservationId {
  std::uint64_t value = 0;
  [[nodiscard]] constexpr bool valid() const { return value != 0; }
  constexpr auto operator<=>(const ReservationId&) const = default;
};

struct Reservation {
  ReservationId id;
  net::Address src;
  net::Address dst;
  sim::DataRate bandwidth;
  sim::SimTime start;
  sim::SimTime end;
  std::vector<net::Link*> path;
};

class OscarsService {
 public:
  explicit OscarsService(net::Topology& topology, double reservableFraction = 1.0)
      : topology_(topology), reservable_fraction_(reservableFraction) {}

  /// Request a circuit. Returns the reservation id on success, nullopt if
  /// no route exists or any link lacks capacity in the window.
  std::optional<ReservationId> reserve(net::Address src, net::Address dst,
                                       sim::DataRate bandwidth, sim::SimTime start,
                                       sim::SimTime end);

  /// Release a reservation (idempotent).
  void release(ReservationId id);

  [[nodiscard]] const Reservation* find(ReservationId id) const;
  [[nodiscard]] bool activeAt(ReservationId id, sim::SimTime at) const;

  /// Total bandwidth reserved on `link` at instant `at`.
  [[nodiscard]] sim::DataRate reservedOn(const net::Link& link, sim::SimTime at) const;

  /// Remaining reservable bandwidth on `link` at instant `at`.
  [[nodiscard]] sim::DataRate availableOn(const net::Link& link, sim::SimTime at) const;

  [[nodiscard]] std::size_t reservationCount() const { return reservations_.size(); }

 private:
  [[nodiscard]] sim::DataRate reservableCapacity(const net::Link& link) const;

  net::Topology& topology_;
  double reservable_fraction_;
  std::map<std::uint64_t, Reservation> reservations_;
  std::uint64_t next_id_ = 0;
};

}  // namespace scidmz::vc
