#include "vc/oscars.hpp"

#include <algorithm>

namespace scidmz::vc {

sim::DataRate OscarsService::reservableCapacity(const net::Link& link) const {
  return sim::DataRate::bitsPerSecond(static_cast<std::uint64_t>(
      static_cast<double>(link.rate().bps()) * reservable_fraction_));
}

sim::DataRate OscarsService::reservedOn(const net::Link& link, sim::SimTime at) const {
  sim::DataRate total = sim::DataRate::zero();
  for (const auto& [id, res] : reservations_) {
    if (at < res.start || at >= res.end) continue;
    if (std::find(res.path.begin(), res.path.end(), &link) != res.path.end()) {
      total = total + res.bandwidth;
    }
  }
  return total;
}

sim::DataRate OscarsService::availableOn(const net::Link& link, sim::SimTime at) const {
  const auto capacity = reservableCapacity(link);
  const auto used = reservedOn(link, at);
  return used >= capacity ? sim::DataRate::zero() : capacity - used;
}

std::optional<ReservationId> OscarsService::reserve(net::Address src, net::Address dst,
                                                    sim::DataRate bandwidth, sim::SimTime start,
                                                    sim::SimTime end) {
  if (end <= start || bandwidth == sim::DataRate::zero()) return std::nullopt;
  const auto trace = topology_.trace(src, dst);
  if (!trace || !trace->complete()) return std::nullopt;

  std::vector<net::Link*> path;
  path.reserve(trace->hops.size());
  for (const auto& hop : trace->hops) path.push_back(hop.link);

  // Admission control: capacity must hold at every overlap boundary. Since
  // reservations are piecewise constant, checking at `start` and at every
  // overlapping reservation's start time inside the window suffices.
  std::vector<sim::SimTime> checkpoints{start};
  for (const auto& [id, res] : reservations_) {
    if (res.start > start && res.start < end) checkpoints.push_back(res.start);
  }
  for (net::Link* link : path) {
    const auto capacity = reservableCapacity(*link);
    for (const auto t : checkpoints) {
      if (reservedOn(*link, t) + bandwidth > capacity) return std::nullopt;
    }
  }

  const ReservationId id{++next_id_};
  reservations_.emplace(id.value,
                        Reservation{id, src, dst, bandwidth, start, end, std::move(path)});
  return id;
}

void OscarsService::release(ReservationId id) { reservations_.erase(id.value); }

const Reservation* OscarsService::find(ReservationId id) const {
  const auto it = reservations_.find(id.value);
  return it == reservations_.end() ? nullptr : &it->second;
}

bool OscarsService::activeAt(ReservationId id, sim::SimTime at) const {
  const auto* res = find(id);
  return res != nullptr && at >= res->start && at < res->end;
}

}  // namespace scidmz::vc
