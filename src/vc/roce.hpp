// RoCE-style transfer (Section 7.1): RDMA over Converged Ethernet, modeled
// as a rate-paced stream with NACK-driven go-back-N and no congestion
// control. On a guaranteed-bandwidth, loss-free circuit it matches TCP's
// goodput at a fraction of the CPU cost (Kissel et al. measured 39.5 Gbps
// at ~1/50th the CPU); on a lossy or contended path it collapses, because
// every gap rewinds the whole pipeline.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "net/host.hpp"

namespace scidmz::vc {

/// Relative CPU cost constants (arbitrary units per byte moved) used by
/// the Section 7.1 comparison bench: TCP spends ~50x the cycles per byte.
inline constexpr double kTcpCpuUnitsPerGB = 1.0;
inline constexpr double kRoceCpuUnitsPerGB = 1.0 / 50.0;

[[nodiscard]] inline double tcpCpuUnits(sim::DataSize moved) {
  return kTcpCpuUnitsPerGB * moved.toGB();
}
[[nodiscard]] inline double roceCpuUnits(sim::DataSize moved) {
  return kRoceCpuUnitsPerGB * moved.toGB();
}

struct RoceResult {
  bool completed = false;
  sim::Duration elapsed = sim::Duration::zero();
  sim::DataRate goodput = sim::DataRate::zero();
  sim::DataSize bytesMoved = sim::DataSize::zero();
  sim::DataSize bytesWasted = sim::DataSize::zero();  ///< go-back-N retransmission
  double cpuUnits = 0.0;
};

class RoceTransfer {
 public:
  struct Options {
    /// The circuit's guaranteed rate; the sender paces at exactly this.
    sim::DataRate rate = sim::DataRate::gigabitsPerSecond(40);
    std::uint16_t port = 4791;  // RoCEv2 UDP port
    sim::DataSize messageSize = sim::DataSize::bytes(4096);
    /// Give up if no progress for this long (reported as incomplete).
    sim::Duration progressTimeout = sim::Duration::seconds(30);
  };

  RoceTransfer(net::Host& src, net::Host& dst, sim::DataSize bytes, Options options);
  ~RoceTransfer();

  RoceTransfer(const RoceTransfer&) = delete;
  RoceTransfer& operator=(const RoceTransfer&) = delete;

  void start();

  std::function<void(const RoceResult&)> onComplete;

  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] const RoceResult& result() const { return result_; }

 private:
  class Receiver : public net::PacketSink {
   public:
    Receiver(RoceTransfer& owner, net::Host& host) : owner_(owner), host_(host) {}
    void onPacket(const net::Packet& packet) override;
    RoceTransfer& owner_;
    net::Host& host_;
    std::uint64_t expected_ = 0;
    sim::SimTime lastNackAt_;
    bool sentNack_ = false;
  };
  class SenderSink : public net::PacketSink {
   public:
    explicit SenderSink(RoceTransfer& owner) : owner_(owner) {}
    void onPacket(const net::Packet& packet) override;
    RoceTransfer& owner_;
  };

  void paceNext();
  void handleAck(std::uint64_t ackSeq);
  void handleNack(std::uint64_t nackSeq);
  void finish(bool completed);
  void armWatchdog();

  net::Host& src_;
  net::Host& dst_;
  sim::DataSize total_;
  Options options_;
  Receiver receiver_;
  SenderSink sender_sink_;
  std::uint16_t src_port_ = 0;

  std::uint64_t next_seq_ = 0;   ///< Next byte offset to transmit.
  std::uint64_t acked_ = 0;      ///< Cumulative bytes confirmed.
  sim::DataSize wasted_ = sim::DataSize::zero();
  sim::SimTime started_at_;
  sim::SimTime last_progress_at_;
  sim::EventId pace_timer_{};
  sim::EventId watchdog_{};
  bool finished_ = false;
  RoceResult result_;
};

}  // namespace scidmz::vc
