// Transfer orchestration in the mold of Globus Online: a queue of files
// moved with bounded concurrency, per-file stall timeouts, and automatic
// retries — the service layer scientists actually click on, sitting above
// raw GridFTP streams.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "apps/bulk_transfer.hpp"
#include "telemetry/span.hpp"

namespace scidmz::apps {

struct FileSpec {
  std::string name;
  sim::DataSize size = sim::DataSize::zero();
};

struct TransferReport {
  std::size_t filesTotal = 0;
  std::size_t filesDone = 0;
  std::size_t filesFailed = 0;
  std::uint64_t retries = 0;
  sim::DataSize bytesMoved = sim::DataSize::zero();
  sim::Duration elapsed = sim::Duration::zero();

  [[nodiscard]] sim::DataRate averageRate() const {
    if (elapsed <= sim::Duration::zero()) return sim::DataRate::zero();
    return sim::DataRate::bitsPerSecond(static_cast<std::uint64_t>(
        static_cast<double>(bytesMoved.bitCount()) / elapsed.toSeconds()));
  }
};

struct TransferManagerOptions {
  int concurrency = 4;
  int maxRetries = 3;
  /// A file whose transfer makes no progress for this long is aborted
  /// and retried (stall detection, not a hard deadline).
  sim::Duration stallTimeout = sim::Duration::seconds(60);
  std::uint16_t basePort = 2811;  // the GridFTP control port, by tradition
};

class TransferManager {
 public:
  using Options = TransferManagerOptions;

  TransferManager(net::Host& src, net::Host& dst, tcp::TcpConfig tcpConfig,
                  Options options = TransferManagerOptions());

  TransferManager(const TransferManager&) = delete;
  TransferManager& operator=(const TransferManager&) = delete;

  void enqueue(FileSpec file);
  void enqueue(std::vector<FileSpec> files);

  /// Kick off up to `concurrency` transfers; further files start as slots
  /// free up. onAllComplete fires once when the queue drains.
  void start();

  std::function<void(const TransferReport&)> onAllComplete;

  [[nodiscard]] TransferReport report() const;
  [[nodiscard]] bool idle() const { return active_count_ == 0 && queue_.empty(); }
  [[nodiscard]] std::size_t activeCount() const { return active_count_; }

 private:
  struct Slot {
    std::unique_ptr<BulkTransfer> transfer;
    FileSpec file;
    int attempts = 0;
    sim::DataSize lastProgress = sim::DataSize::zero();
    bool busy = false;
    /// Root "transfer" span covering this file attempt (tracing only).
    telemetry::SpanId span{};
  };

  void endSlotSpan(Slot& slot, const char* outcome);

  /// Stable snapshot name for this manager's per-slot closures
  /// ("transfer_manager/<src>-><dst>/<kind>/<slot>").
  [[nodiscard]] std::string callbackName(const char* kind, std::size_t slotIndex) const;

  void fillSlots();
  void launch(std::size_t slotIndex, FileSpec file, int attempts);
  void armWatchdog(std::size_t slotIndex);
  void onSlotComplete(std::size_t slotIndex, const BulkTransfer::Result& result);
  void onSlotStalled(std::size_t slotIndex);
  void finishIfDrained();

  net::Host& src_;
  net::Host& dst_;
  tcp::TcpConfig tcp_config_;
  Options options_;
  std::deque<FileSpec> queue_;
  std::vector<Slot> slots_;
  std::size_t active_count_ = 0;
  bool started_ = false;
  bool announced_ = false;
  sim::SimTime started_at_;
  TransferReport report_;
  telemetry::Tracer* tracer_ = nullptr;  ///< Armed in the constructor iff tracing is on.
};

}  // namespace scidmz::apps
