// Enterprise background traffic: the "business network" workload general-
// purpose campus infrastructure is built for — many short TCP flows (web,
// mail) arriving as a Poisson process with heavy-tailed sizes.
//
// Used by benches to (a) show firewalls coping fine with this profile while
// collapsing under DTN bursts, and (b) congest shared links in the
// general-purpose-network baseline scenarios.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "apps/bulk_transfer.hpp"
#include "net/host.hpp"
#include "sim/random.hpp"
#include "tcp/connection.hpp"

namespace scidmz::apps {

struct BackgroundProfile {
  /// Poisson flow arrival rate across the whole generator.
  double flowsPerSecond = 50.0;
  /// Pareto shape for flow sizes (1 < alpha <= 2 gives the classic
  /// heavy-tailed web mix).
  double paretoAlpha = 1.3;
  /// Minimum flow size (the Pareto scale parameter).
  sim::DataSize minFlowSize = sim::DataSize::kilobytes(10);
  /// Cap so a single elephant cannot run forever.
  sim::DataSize maxFlowSize = sim::DataSize::megabytes(20);
  /// TCP settings for business hosts (untuned defaults).
  tcp::TcpConfig tcp = tcp::TcpConfig::untunedDefault();
  /// Model fidelity for generated flows. Large fleets of short background
  /// flows are the fluid model's sweet spot (kAuto/kFluid); kPacket keeps
  /// historical scenarios byte-identical.
  net::FlowFidelity fidelity = net::FlowFidelity::kPacket;
};

/// Generates flows from random clients to random servers until stopped.
class BackgroundTraffic {
 public:
  BackgroundTraffic(net::Context& ctx, std::vector<net::Host*> clients,
                    std::vector<net::Host*> servers, std::uint16_t basePort,
                    BackgroundProfile profile, sim::Rng rng);

  BackgroundTraffic(const BackgroundTraffic&) = delete;
  BackgroundTraffic& operator=(const BackgroundTraffic&) = delete;

  void start();
  void stop();

  struct Stats {
    std::uint64_t flowsStarted = 0;
    std::uint64_t flowsCompleted = 0;
    sim::DataSize bytesCompleted = sim::DataSize::zero();
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  void scheduleNextArrival();
  void launchFlow();
  void reap();

  net::Context& ctx_;
  std::vector<net::Host*> clients_;
  std::vector<net::Host*> servers_;
  std::uint16_t base_port_;
  BackgroundProfile profile_;
  sim::Rng rng_;
  bool running_ = false;
  std::uint16_t next_port_offset_ = 0;
  std::vector<std::unique_ptr<BulkTransfer>> active_;
  Stats stats_;
};

}  // namespace scidmz::apps
