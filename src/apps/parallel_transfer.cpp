#include "apps/parallel_transfer.hpp"

namespace scidmz::apps {

ParallelTransfer::ParallelTransfer(net::Host& src, net::Host& dst, std::uint16_t port,
                                   sim::DataSize totalBytes, int streamCount,
                                   tcp::TcpConfig config)
    : src_(src), total_(totalBytes) {
  if (streamCount < 1) streamCount = 1;
  listener_ = dst.ctx().arena().make<tcp::TcpListener>(dst, port, config);

  // Stripe bytes as evenly as possible; the first stream takes the slack.
  const std::uint64_t base = totalBytes.byteCount() / static_cast<std::uint64_t>(streamCount);
  const std::uint64_t slack = totalBytes.byteCount() % static_cast<std::uint64_t>(streamCount);
  for (int i = 0; i < streamCount; ++i) {
    shares_.push_back(sim::DataSize::bytes(base + (i == 0 ? slack : 0)));
  }

  for (int i = 0; i < streamCount; ++i) {
    auto conn = src.ctx().arena().make<tcp::TcpConnection>(src, dst.address(), port, config);
    auto* raw = conn.get();
    const auto share = shares_[static_cast<std::size_t>(i)];
    raw->onEstablished = [raw, share] { raw->sendData(share); };
    raw->onSendComplete = [this] {
      ++completed_streams_;
      if (completed_streams_ == streams_.size()) {
        finished_at_ = src_.ctx().now();
        if (onComplete) onComplete();
      }
    };
    streams_.push_back(std::move(conn));
  }
}

ParallelTransfer::~ParallelTransfer() = default;

void ParallelTransfer::start() {
  started_ = true;
  started_at_ = src_.ctx().now();
  for (auto& s : streams_) s->start();
}

sim::Duration ParallelTransfer::elapsed() const {
  if (!started_) return sim::Duration::zero();
  const auto end = finished() ? finished_at_ : src_.ctx().now();
  return end - started_at_;
}

sim::DataRate ParallelTransfer::aggregateGoodput() const {
  const auto span = elapsed();
  if (span <= sim::Duration::zero()) return sim::DataRate::zero();
  sim::DataSize acked = sim::DataSize::zero();
  for (const auto& s : streams_) acked += s->stats().bytesAcked;
  return sim::DataRate::bitsPerSecond(
      static_cast<std::uint64_t>(static_cast<double>(acked.bitCount()) / span.toSeconds()));
}

std::uint64_t ParallelTransfer::totalRetransmits() const {
  std::uint64_t n = 0;
  for (const auto& s : streams_) n += s->stats().retransmits;
  return n;
}

}  // namespace scidmz::apps
