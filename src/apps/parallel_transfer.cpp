#include "apps/parallel_transfer.hpp"

namespace scidmz::apps {

ParallelTransfer::ParallelTransfer(net::Host& src, net::Host& dst, std::uint16_t port,
                                   sim::DataSize totalBytes, int streamCount,
                                   tcp::TcpConfig config, net::FlowFidelity fidelity)
    : src_(src), total_(totalBytes) {
  if (streamCount < 1) streamCount = 1;

  // Stripe bytes as evenly as possible; the first stream takes the slack.
  const std::uint64_t base = totalBytes.byteCount() / static_cast<std::uint64_t>(streamCount);
  const std::uint64_t slack = totalBytes.byteCount() % static_cast<std::uint64_t>(streamCount);
  for (int i = 0; i < streamCount; ++i) {
    shares_.push_back(sim::DataSize::bytes(base + (i == 0 ? slack : 0)));
  }

  net::FlowFactory::Options options;
  options.port = port;
  options.streams = streamCount;
  options.fidelity = fidelity;
  flow_ = net::flowFactory(src.ctx()).create(src, dst, config, options);
  flow_->onStreamEstablished = [this](int i) {
    flow_->sendOnStream(i, shares_[static_cast<std::size_t>(i)]);
  };
  flow_->onStreamSendComplete = [this](int) {
    ++completed_streams_;
    if (finished()) {
      finished_at_ = src_.ctx().now();
      if (onComplete) onComplete();
    }
  };
}

ParallelTransfer::~ParallelTransfer() = default;

void ParallelTransfer::start() {
  started_ = true;
  started_at_ = src_.ctx().now();
  flow_->start();
}

sim::Duration ParallelTransfer::elapsed() const {
  if (!started_) return sim::Duration::zero();
  const auto end = finished() ? finished_at_ : src_.ctx().now();
  return end - started_at_;
}

sim::DataRate ParallelTransfer::aggregateGoodput() const {
  const auto span = elapsed();
  if (span <= sim::Duration::zero()) return sim::DataRate::zero();
  const auto acked = flow_->ackedBytes();
  return sim::DataRate::bitsPerSecond(
      static_cast<std::uint64_t>(static_cast<double>(acked.bitCount()) / span.toSeconds()));
}

std::uint64_t ParallelTransfer::totalRetransmits() const { return flow_->retransmits(); }

}  // namespace scidmz::apps
