#include "apps/background_traffic.hpp"

#include <algorithm>
#include <string>

#include "scenario/callback_registry.hpp"

namespace scidmz::apps {

namespace {
/// Stable snapshot name for one generator's arrival process; the port
/// block distinguishes generators sharing a Context.
std::string arrivalName(std::uint16_t basePort) {
  return "background_traffic/" + std::to_string(basePort) + "/arrival";
}
}  // namespace

BackgroundTraffic::BackgroundTraffic(net::Context& ctx, std::vector<net::Host*> clients,
                                     std::vector<net::Host*> servers, std::uint16_t basePort,
                                     BackgroundProfile profile, sim::Rng rng)
    : ctx_(ctx),
      clients_(std::move(clients)),
      servers_(std::move(servers)),
      base_port_(basePort),
      profile_(profile),
      rng_(rng) {}

void BackgroundTraffic::start() {
  if (running_ || clients_.empty() || servers_.empty()) return;
  running_ = true;
  scheduleNextArrival();
}

void BackgroundTraffic::stop() {
  running_ = false;
  ctx_.extension<scenario::CallbackRegistry>().cancelNamed(ctx_.sim(), arrivalName(base_port_));
}

void BackgroundTraffic::scheduleNextArrival() {
  if (!running_) return;
  auto& callbacks = ctx_.extension<scenario::CallbackRegistry>();
  const std::string name = arrivalName(base_port_);
  if (!callbacks.registered(name)) {
    callbacks.registerNamed(name, [this] {
      launchFlow();
      scheduleNextArrival();
    });
  }
  const auto gap = rng_.exponential(sim::Duration::fromSeconds(1.0 / profile_.flowsPerSecond));
  callbacks.scheduleNamed(ctx_.sim(), name, gap);
}

void BackgroundTraffic::launchFlow() {
  net::Host* client = clients_[rng_.below(clients_.size())];
  net::Host* server = servers_[rng_.below(servers_.size())];
  if (client == server) return;

  const double sized = rng_.pareto(profile_.paretoAlpha,
                                   static_cast<double>(profile_.minFlowSize.byteCount()));
  const auto size = sim::DataSize::bytes(std::min<std::uint64_t>(
      static_cast<std::uint64_t>(sized), profile_.maxFlowSize.byteCount()));

  // Spread listeners over a port block so concurrent flows to one server
  // do not collide.
  const std::uint16_t port = static_cast<std::uint16_t>(base_port_ + next_port_offset_);
  next_port_offset_ = static_cast<std::uint16_t>((next_port_offset_ + 1) % 512);

  auto flow = std::make_unique<BulkTransfer>(*client, *server, port, size, profile_.tcp,
                                             profile_.fidelity);
  auto* raw = flow.get();
  raw->onComplete = [this](const BulkTransfer::Result& r) {
    ++stats_.flowsCompleted;
    stats_.bytesCompleted += r.bytes;
  };
  raw->start();
  ++stats_.flowsStarted;
  active_.push_back(std::move(flow));
  reap();
}

void BackgroundTraffic::reap() {
  // Completed transfers release their listeners and timers eagerly so the
  // generator can run for long simulated spans without growing.
  std::erase_if(active_, [](const std::unique_ptr<BulkTransfer>& t) { return t->finished(); });
}

}  // namespace scidmz::apps
