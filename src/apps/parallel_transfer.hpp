// Parallel-stream transfer tool in the mold of GridFTP / FDT: stripes one
// logical dataset across N TCP streams to the same server port.
//
// Parallel streams matter under residual loss: each stream keeps its own
// congestion window, so a drop halves 1/N of the aggregate instead of all
// of it — the reason DTN tooling defaults to striped transfers.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/flow.hpp"
#include "net/host.hpp"
#include "tcp/connection.hpp"

namespace scidmz::apps {

class ParallelTransfer {
 public:
  ParallelTransfer(net::Host& src, net::Host& dst, std::uint16_t port, sim::DataSize totalBytes,
                   int streamCount, tcp::TcpConfig config,
                   net::FlowFidelity fidelity = net::FlowFidelity::kPacket);
  ~ParallelTransfer();

  ParallelTransfer(const ParallelTransfer&) = delete;
  ParallelTransfer& operator=(const ParallelTransfer&) = delete;

  void start();

  std::function<void()> onComplete;

  [[nodiscard]] bool finished() const {
    return completed_streams_ == static_cast<std::size_t>(flow_->streamCount());
  }
  [[nodiscard]] int streamCount() const { return flow_->streamCount(); }
  [[nodiscard]] sim::Duration elapsed() const;
  /// Aggregate goodput: total bytes over wall time from start to last
  /// stream completion.
  [[nodiscard]] sim::DataRate aggregateGoodput() const;
  [[nodiscard]] std::uint64_t totalRetransmits() const;
  [[nodiscard]] sim::DataSize totalBytes() const { return total_; }

 private:
  net::Host& src_;
  sim::DataSize total_;
  net::FlowPtr flow_;
  std::vector<sim::DataSize> shares_;
  std::size_t completed_streams_ = 0;
  sim::SimTime started_at_;
  sim::SimTime finished_at_;
  bool started_ = false;
};

}  // namespace scidmz::apps
