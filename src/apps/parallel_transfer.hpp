// Parallel-stream transfer tool in the mold of GridFTP / FDT: stripes one
// logical dataset across N TCP streams to the same server port.
//
// Parallel streams matter under residual loss: each stream keeps its own
// congestion window, so a drop halves 1/N of the aggregate instead of all
// of it — the reason DTN tooling defaults to striped transfers.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/host.hpp"
#include "tcp/connection.hpp"

namespace scidmz::apps {

class ParallelTransfer {
 public:
  ParallelTransfer(net::Host& src, net::Host& dst, std::uint16_t port, sim::DataSize totalBytes,
                   int streamCount, tcp::TcpConfig config);
  ~ParallelTransfer();

  ParallelTransfer(const ParallelTransfer&) = delete;
  ParallelTransfer& operator=(const ParallelTransfer&) = delete;

  void start();

  std::function<void()> onComplete;

  [[nodiscard]] bool finished() const { return completed_streams_ == streams_.size(); }
  [[nodiscard]] int streamCount() const { return static_cast<int>(streams_.size()); }
  [[nodiscard]] sim::Duration elapsed() const;
  /// Aggregate goodput: total bytes over wall time from start to last
  /// stream completion.
  [[nodiscard]] sim::DataRate aggregateGoodput() const;
  [[nodiscard]] std::uint64_t totalRetransmits() const;
  [[nodiscard]] sim::DataSize totalBytes() const { return total_; }

 private:
  net::Host& src_;
  sim::DataSize total_;
  sim::ArenaPtr<tcp::TcpListener> listener_;
  std::vector<sim::ArenaPtr<tcp::TcpConnection>> streams_;
  std::vector<sim::DataSize> shares_;
  std::size_t completed_streams_ = 0;
  sim::SimTime started_at_;
  sim::SimTime finished_at_;
  bool started_ = false;
};

}  // namespace scidmz::apps
