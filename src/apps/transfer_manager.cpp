#include "apps/transfer_manager.hpp"

#include <algorithm>
#include <utility>

#include "scenario/callback_registry.hpp"

namespace scidmz::apps {

TransferManager::TransferManager(net::Host& src, net::Host& dst, tcp::TcpConfig tcpConfig,
                                 Options options)
    : src_(src), dst_(dst), tcp_config_(tcpConfig), options_(options) {
  slots_.resize(static_cast<std::size_t>(std::max(1, options_.concurrency)));
  auto& tracer = src_.ctx().extension<telemetry::Tracer>();
  if (tracer.enabled()) tracer_ = &tracer;
}

void TransferManager::enqueue(FileSpec file) {
  ++report_.filesTotal;
  queue_.push_back(std::move(file));
  if (started_) fillSlots();
}

void TransferManager::enqueue(std::vector<FileSpec> files) {
  for (auto& f : files) enqueue(std::move(f));
}

void TransferManager::start() {
  if (started_) return;
  started_ = true;
  started_at_ = src_.ctx().now();
  fillSlots();
  finishIfDrained();
}

TransferReport TransferManager::report() const {
  TransferReport r = report_;
  r.elapsed = src_.ctx().now() - started_at_;
  return r;
}

void TransferManager::fillSlots() {
  for (std::size_t i = 0; i < slots_.size() && !queue_.empty(); ++i) {
    if (slots_[i].busy) continue;
    FileSpec file = std::move(queue_.front());
    queue_.pop_front();
    launch(i, std::move(file), 0);
  }
}

void TransferManager::launch(std::size_t slotIndex, FileSpec file, int attempts) {
  auto& slot = slots_[slotIndex];
  slot.busy = true;
  slot.file = std::move(file);
  slot.attempts = attempts;
  slot.lastProgress = sim::DataSize::zero();
  ++active_count_;

  const auto port = static_cast<std::uint16_t>(options_.basePort + slotIndex);
  if (tracer_ != nullptr) {
    slot.span = tracer_->begin(src_.ctx().now(), "transfer " + slot.file.name, "transfer");
    tracer_->annotate(slot.span, "bytes", slot.file.size.byteCount());
    tracer_->annotate(slot.span, "attempt", static_cast<std::uint64_t>(attempts));
  }
  slot.transfer =
      std::make_unique<BulkTransfer>(src_, dst_, port, slot.file.size, tcp_config_);
  slot.transfer->onComplete = [this, slotIndex](const BulkTransfer::Result& r) {
    onSlotComplete(slotIndex, r);
  };
  slot.transfer->start();
  armWatchdog(slotIndex);
}

std::string TransferManager::callbackName(const char* kind, std::size_t slotIndex) const {
  return "transfer_manager/" + src_.name() + "->" + dst_.name() + "/" + kind + "/" +
         std::to_string(slotIndex);
}

void TransferManager::armWatchdog(std::size_t slotIndex) {
  auto& callbacks = src_.ctx().extension<scenario::CallbackRegistry>();
  const std::string name = callbackName("watchdog", slotIndex);
  if (!callbacks.registered(name)) {
    callbacks.registerNamed(name, [this, slotIndex] {
      auto& s = slots_[slotIndex];
      if (!s.busy || s.transfer == nullptr) return;
      const auto progress = s.transfer->progress();
      if (progress > s.lastProgress) {
        // Still moving; keep watching.
        s.lastProgress = progress;
        armWatchdog(slotIndex);
        return;
      }
      onSlotStalled(slotIndex);
    });
  }
  callbacks.scheduleNamed(src_.ctx().sim(), name, options_.stallTimeout);
}

void TransferManager::onSlotComplete(std::size_t slotIndex, const BulkTransfer::Result& result) {
  auto& slot = slots_[slotIndex];
  auto& callbacks = src_.ctx().extension<scenario::CallbackRegistry>();
  callbacks.cancelNamed(src_.ctx().sim(), callbackName("watchdog", slotIndex));
  ++report_.filesDone;
  report_.bytesMoved += result.bytes;
  endSlotSpan(slot, "complete");
  slot.busy = false;
  --active_count_;
  // Defer teardown and refill: we are inside the transfer's own callback
  // chain, so destroying it here would free the object under our feet.
  const std::string teardown = callbackName("teardown", slotIndex);
  if (!callbacks.registered(teardown)) {
    callbacks.registerNamed(teardown, [this, slotIndex] {
      slots_[slotIndex].transfer.reset();
      fillSlots();
      finishIfDrained();
    });
  }
  callbacks.scheduleNamed(src_.ctx().sim(), teardown, sim::Duration::zero());
}

void TransferManager::onSlotStalled(std::size_t slotIndex) {
  auto& slot = slots_[slotIndex];
  endSlotSpan(slot, "stalled");
  slot.transfer->abort();
  slot.transfer.reset();
  slot.busy = false;
  --active_count_;

  if (slot.attempts + 1 <= options_.maxRetries) {
    ++report_.retries;
    launch(slotIndex, slot.file, slot.attempts + 1);
  } else {
    ++report_.filesFailed;
    fillSlots();
    finishIfDrained();
  }
}

void TransferManager::endSlotSpan(Slot& slot, const char* outcome) {
  if (tracer_ == nullptr || !slot.span.valid()) return;
  tracer_->annotate(slot.span, "outcome", outcome);
  tracer_->end(slot.span, src_.ctx().now());
  slot.span = telemetry::SpanId{};
}

void TransferManager::finishIfDrained() {
  if (!started_ || announced_ || !idle()) return;
  announced_ = true;
  report_.elapsed = src_.ctx().now() - started_at_;
  if (onAllComplete) onAllComplete(report_);
}

}  // namespace scidmz::apps
