#include "apps/bulk_transfer.hpp"

namespace scidmz::apps {

BulkTransfer::BulkTransfer(net::Host& src, net::Host& dst, std::uint16_t port,
                           sim::DataSize bytes, tcp::TcpConfig config,
                           net::FlowFidelity fidelity)
    : src_(src), bytes_(bytes) {
  net::FlowFactory::Options options;
  options.port = port;
  options.fidelity = fidelity;
  flow_ = net::flowFactory(src.ctx()).create(src, dst, config, options);
  flow_->onEstablished = [this] { flow_->sendData(bytes_); };
  flow_->onSendComplete = [this] {
    finished_ = true;
    result_.completed = true;
    result_.elapsed = src_.ctx().now() - started_at_;
    result_.bytes = bytes_;
    result_.goodput = flow_->goodput();
    result_.senderStats = senderStatsSnapshot();
    if (onComplete) onComplete(result_);
  };
}

BulkTransfer::~BulkTransfer() = default;

void BulkTransfer::start() {
  started_ = true;
  started_at_ = src_.ctx().now();
  flow_->start();
}

void BulkTransfer::abort() {
  // Destroying the flow cancels its timers and unbinds its ports; packets
  // already in flight drain harmlessly into unbound ports (a fluid flow's
  // demand is withdrawn at the next engine tick).
  if (flow_) result_.senderStats = senderStatsSnapshot();
  flow_.reset();
  finished_ = true;
}

sim::DataSize BulkTransfer::progress() const {
  return flow_ ? flow_->ackedBytes() : result_.bytes;
}

tcp::TcpStats BulkTransfer::senderStatsSnapshot() const {
  if (const auto* client = const_cast<BulkTransfer*>(this)->flow_->clientConnection(0)) {
    return client->stats();
  }
  tcp::TcpStats stats;
  stats.bytesAcked = flow_->ackedBytes();
  stats.retransmits = flow_->retransmits();
  return stats;
}

}  // namespace scidmz::apps
