#include "apps/bulk_transfer.hpp"

namespace scidmz::apps {

BulkTransfer::BulkTransfer(net::Host& src, net::Host& dst, std::uint16_t port,
                           sim::DataSize bytes, tcp::TcpConfig config)
    : src_(src), bytes_(bytes) {
  listener_ = dst.ctx().arena().make<tcp::TcpListener>(dst, port, config);
  client_ = src.ctx().arena().make<tcp::TcpConnection>(src, dst.address(), port, config);
  client_->onEstablished = [this] { client_->sendData(bytes_); };
  client_->onSendComplete = [this] {
    finished_ = true;
    result_.completed = true;
    result_.elapsed = src_.ctx().now() - started_at_;
    result_.bytes = bytes_;
    result_.goodput = client_->goodput();
    result_.senderStats = client_->stats();
    if (onComplete) onComplete(result_);
  };
}

BulkTransfer::~BulkTransfer() = default;

void BulkTransfer::start() {
  started_ = true;
  started_at_ = src_.ctx().now();
  client_->start();
}

void BulkTransfer::abort() {
  // Destroying the endpoints cancels their timers and unbinds their ports;
  // packets already in flight drain harmlessly into unbound ports.
  result_.senderStats = client_ ? client_->stats() : result_.senderStats;
  client_.reset();
  listener_.reset();
  finished_ = true;
}

sim::DataSize BulkTransfer::progress() const {
  return client_ ? client_->stats().bytesAcked : result_.bytes;
}

}  // namespace scidmz::apps
