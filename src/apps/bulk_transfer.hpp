// Single-stream bulk data transfer: the building block for FTP-style and
// scp-style movement of one file between two hosts.
#pragma once

#include <functional>
#include <memory>

#include "net/flow.hpp"
#include "net/host.hpp"
#include "tcp/connection.hpp"

namespace scidmz::apps {

/// Moves `bytes` from `src` to `dst` over one flow created through the
/// net::FlowFactory seam — per-packet TCP by default, or the analytic fluid
/// model when requested (background-load populations).
class BulkTransfer {
 public:
  struct Result {
    bool completed = false;
    sim::Duration elapsed = sim::Duration::zero();
    sim::DataSize bytes = sim::DataSize::zero();
    sim::DataRate goodput = sim::DataRate::zero();
    tcp::TcpStats senderStats;
  };

  BulkTransfer(net::Host& src, net::Host& dst, std::uint16_t port, sim::DataSize bytes,
               tcp::TcpConfig config,
               net::FlowFidelity fidelity = net::FlowFidelity::kPacket);
  ~BulkTransfer();

  BulkTransfer(const BulkTransfer&) = delete;
  BulkTransfer& operator=(const BulkTransfer&) = delete;

  /// Begin the handshake and transfer.
  void start();

  /// Tear the transfer down mid-flight (used by retry logic).
  void abort();

  std::function<void(const Result&)> onComplete;

  [[nodiscard]] bool running() const { return started_ && !finished_; }
  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] const Result& result() const { return result_; }
  /// Packet-fidelity escape hatch (nullptr for fluid transfers).
  [[nodiscard]] tcp::TcpConnection* clientConnection() {
    return flow_ ? flow_->clientConnection(0) : nullptr;
  }
  /// Bytes ACKed so far (progress snapshot).
  [[nodiscard]] sim::DataSize progress() const;

 private:
  [[nodiscard]] tcp::TcpStats senderStatsSnapshot() const;

  net::Host& src_;
  sim::DataSize bytes_;
  net::FlowPtr flow_;
  sim::SimTime started_at_;
  bool started_ = false;
  bool finished_ = false;
  Result result_;
};

}  // namespace scidmz::apps
