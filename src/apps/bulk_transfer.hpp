// Single-stream bulk data transfer: the building block for FTP-style and
// scp-style movement of one file between two hosts.
#pragma once

#include <functional>
#include <memory>

#include "net/host.hpp"
#include "tcp/connection.hpp"

namespace scidmz::apps {

/// Moves `bytes` from `src` to `dst` over one TCP connection. Owns both the
/// server-side listener and the client connection for its lifetime.
class BulkTransfer {
 public:
  struct Result {
    bool completed = false;
    sim::Duration elapsed = sim::Duration::zero();
    sim::DataSize bytes = sim::DataSize::zero();
    sim::DataRate goodput = sim::DataRate::zero();
    tcp::TcpStats senderStats;
  };

  BulkTransfer(net::Host& src, net::Host& dst, std::uint16_t port, sim::DataSize bytes,
               tcp::TcpConfig config);
  ~BulkTransfer();

  BulkTransfer(const BulkTransfer&) = delete;
  BulkTransfer& operator=(const BulkTransfer&) = delete;

  /// Begin the handshake and transfer.
  void start();

  /// Tear the transfer down mid-flight (used by retry logic).
  void abort();

  std::function<void(const Result&)> onComplete;

  [[nodiscard]] bool running() const { return started_ && !finished_; }
  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] const Result& result() const { return result_; }
  [[nodiscard]] tcp::TcpConnection* clientConnection() { return client_.get(); }
  /// Bytes ACKed so far (progress snapshot).
  [[nodiscard]] sim::DataSize progress() const;

 private:
  net::Host& src_;
  sim::DataSize bytes_;
  sim::ArenaPtr<tcp::TcpListener> listener_;
  sim::ArenaPtr<tcp::TcpConnection> client_;
  sim::SimTime started_at_;
  bool started_ = false;
  bool finished_ = false;
  Result result_;
};

}  // namespace scidmz::apps
