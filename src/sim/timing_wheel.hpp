// Hierarchical timing wheel: O(1) parking for the dominant periodic and
// far-future timers (perfSONAR probe cadences, TCP pacing ticks and RTOs,
// telemetry sampling), in front of the event queue's 4-ary heap.
//
// The wheel is a *staging* structure, not a priority queue: entries are
// appended to power-of-two-granularity buckets in O(1) at schedule time and
// only meet the comparison-based heap when their bucket comes due. A bucket
// cascade either drains into the heap (level 0) or redistributes one level
// down (level L's bucket width equals level L-1's full span), so each entry
// is touched at most kLevels times between park and pop. Exactness is
// preserved because the heap — not the wheel — always serves the next
// event: the queue cascades buckets until the heap front is provably the
// global minimum (heap_min strictly < start of every non-empty bucket; an
// exact tie cascades, since the tied bucket may hold an earlier-scheduled
// entry at that same bucket-aligned timestamp), and bucket entries keep
// their original (time, sequence) keys, so pop order is byte-identical to
// a heap-only queue.
//
// Geometry: kLevels levels of 256 buckets. Level 0 buckets are 2^10 ns
// (~1 us) wide covering ~262 us; each level up is 256x coarser, so the
// wheel spans ~2^42 ns (~73 min) of simulated time ahead of its base.
// Anything beyond that — and anything within a few level-0 buckets of the
// base (kMinParkAheadNs), i.e. the sub-microsecond packet events — bypasses
// the wheel and uses the heap directly, which keeps the datapath fast path
// unchanged.
//
// Invariant: every non-empty bucket starts at or after base_. The base
// advances only by cascading the globally earliest bucket (coarsest level
// first on ties, so a parent bucket redistributes before a child at the
// same start is drained), which is what makes bucket start times
// unambiguous under the modulo-256 indexing.
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

namespace scidmz::sim {

/// `Entry` must expose `.at` (a SimTime) and be cheap to copy; the event
/// queue parks its 24-byte HeapEntry (time, sequence, slot) unchanged.
template <typename Entry>
class TimingWheel {
 public:
  static constexpr int kLevels = 4;
  static constexpr int kBucketBits = 8;
  static constexpr std::size_t kBuckets = std::size_t{1} << kBucketBits;
  /// Level-0 bucket width is 2^kShift0 ns; each level is 256x coarser.
  static constexpr int kShift0 = 10;
  /// Entries closer than this to the base stay in the heap. Sub-bucket
  /// deltas *must* (the current bucket can't hold future entries); a few
  /// buckets of slack keeps dense near-now schedules — the sub-microsecond
  /// datapath events — off the park/cascade round trip entirely, since
  /// they'd cascade within a handful of pops anyway.
  static constexpr std::int64_t kMinParkAheadNs = std::int64_t{4} << kShift0;

  /// Try to park `e`. Returns false when the entry is due now, too close to
  /// the base (kMinParkAheadNs), or beyond the wheel's span — the caller
  /// keeps such entries in the heap.
  bool park(const Entry& e) {
    const std::int64_t at = e.at.ns();
    if (at - base_ < kMinParkAheadNs) return false;  // due or near-now: heap
    for (int level = 0; level < kLevels; ++level) {
      if (at - base_ >= spanFor(level)) continue;
      const int shift = shiftFor(level);
      const std::size_t idx = static_cast<std::size_t>(at >> shift) & (kBuckets - 1);
      // When base_ is unaligned to this level's bucket width, a delta just
      // under the span can land exactly one revolution ahead — in the bucket
      // congruent with the base's own index, whose start would then resolve
      // *behind* base_ and regress it on cascade. Promote such entries a
      // level (or, at the top level, to the heap) instead.
      if (idx == (static_cast<std::size_t>(base_ >> shift) & (kBuckets - 1))) continue;
      bucketAt(level, idx).push_back(e);
      markOccupied(level, idx);
      ++count_;
      const std::int64_t start = (at >> shift) << shift;
      if (start < earliest_.start ||
          (start == earliest_.start && level > earliest_.level)) {
        earliest_ = {start, level, idx};
      }
      return true;
    }
    return false;  // beyond the horizon: heap overflow
  }

  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] std::int64_t baseNs() const { return base_; }

  /// Start time (ns) of the earliest non-empty bucket — a lower bound on
  /// every parked entry's time. INT64_MAX when the wheel is empty. O(1):
  /// the cursor is maintained on park and recomputed after each cascade.
  [[nodiscard]] std::int64_t horizonStartNs() const { return earliest_.start; }

  /// Advance the base when the wheel is empty — a free no-cascade catch-up
  /// the event queue applies at every pop. Without it, a long stretch of
  /// heap-only traffic leaves the base far behind simulated time and the
  /// next near-now schedule would park in a spuriously coarse bucket.
  void advanceBase(std::int64_t t) {
    if (count_ == 0 && t > base_) base_ = t;
  }

  /// Cascade the globally earliest bucket: level-0 entries are handed to
  /// `due` (the caller heap-pushes or reclaims them); higher-level buckets
  /// redistribute one level down. Advances the base. Precondition: !empty().
  template <typename Sink>
  void cascadeEarliest(Sink&& due) {
    if (earliest_.level < 0) return;
    const int bestLevel = earliest_.level;
    const std::size_t bestIdx = earliest_.idx;
    const std::int64_t bestStart = earliest_.start;
    std::vector<Entry>& bucket = bucketAt(bestLevel, bestIdx);
    scratch_.swap(bucket);
    clearOccupied(bestLevel, bestIdx);
    count_ -= scratch_.size();
    // Base first (re-parked children land relative to it), then rescan so
    // park()'s incremental cursor updates start from the surviving buckets.
    // The base never moves backwards: park() keeps every bucket start at or
    // after base_, and the clamp makes that monotonicity unconditional.
    const std::int64_t newBase =
        bestLevel == 0 ? bestStart + spanFor(0) / static_cast<std::int64_t>(kBuckets)
                       : bestStart;
    if (newBase > base_) base_ = newBase;
    rescanEarliest();
    if (bestLevel == 0) {
      for (Entry& e : scratch_) due(e);
    } else {
      for (Entry& e : scratch_) {
        if (!park(e)) due(e);
      }
    }
    scratch_.clear();
  }

  /// Hand every parked entry to `fn` and empty the wheel (teardown path).
  template <typename Fn>
  void drain(Fn&& fn) {
    for (int level = 0; level < kLevels; ++level) {
      for (std::size_t idx = 0; idx < kBuckets; ++idx) {
        for (Entry& e : bucketAt(level, idx)) fn(e);
        bucketAt(level, idx).clear();
      }
    }
    occupied_.fill(0);
    count_ = 0;
    earliest_ = Cursor{};
  }

  /// Visit every parked entry (bucket order, not time order) — snapshot
  /// key lookup and diagnostics; never on the hot path.
  template <typename Fn>
  void forEach(Fn&& fn) const {
    for (const auto& bucket : buckets_) {
      for (const Entry& e : bucket) fn(e);
    }
  }

  /// Remove every parked entry matching `pred`, invoking `reclaim` on each —
  /// the event queue's compact() uses this so tombstones parked in wheel
  /// buckets are reclaimed with the same trigger as heap tombstones.
  template <typename Pred, typename Reclaim>
  void removeIf(Pred&& pred, Reclaim&& reclaim) {
    for (int level = 0; level < kLevels; ++level) {
      for (std::size_t idx = 0; idx < kBuckets; ++idx) {
        std::vector<Entry>& bucket = bucketAt(level, idx);
        if (bucket.empty()) continue;
        std::size_t kept = 0;
        for (Entry& e : bucket) {
          if (pred(e)) {
            reclaim(e);
            --count_;
          } else {
            bucket[kept++] = e;
          }
        }
        bucket.resize(kept);
        if (bucket.empty()) clearOccupied(level, idx);
      }
    }
    rescanEarliest();
  }

 private:
  static constexpr int shiftFor(int level) { return kShift0 + level * kBucketBits; }
  static constexpr std::int64_t spanFor(int level) {
    return std::int64_t{1} << (shiftFor(level) + kBucketBits);
  }

  [[nodiscard]] std::vector<Entry>& bucketAt(int level, std::size_t idx) {
    return buckets_[static_cast<std::size_t>(level) * kBuckets + idx];
  }
  [[nodiscard]] const std::vector<Entry>& bucketAt(int level, std::size_t idx) const {
    return buckets_[static_cast<std::size_t>(level) * kBuckets + idx];
  }

  /// Absolute start time of bucket `idx` at `level`, resolved against the
  /// base (every non-empty bucket is within one revolution ahead of it).
  [[nodiscard]] std::int64_t bucketStartNs(int level, std::size_t idx) const {
    const int shift = shiftFor(level);
    const std::int64_t cur = base_ >> shift;
    const std::int64_t dist =
        static_cast<std::int64_t>((idx - static_cast<std::size_t>(cur)) & (kBuckets - 1));
    return (cur + dist) << shift;
  }

  // --- occupancy bitmap: 4 words of 64 bits per level ---------------------
  static constexpr std::size_t kWordsPerLevel = kBuckets / 64;

  void markOccupied(int level, std::size_t idx) {
    occupied_[static_cast<std::size_t>(level) * kWordsPerLevel + idx / 64] |=
        std::uint64_t{1} << (idx % 64);
  }
  void clearOccupied(int level, std::size_t idx) {
    occupied_[static_cast<std::size_t>(level) * kWordsPerLevel + idx / 64] &=
        ~(std::uint64_t{1} << (idx % 64));
  }

  /// Cursor to the globally earliest non-empty bucket; sentinel (INT64_MAX,
  /// -1) when the wheel is empty. Keeping it current makes horizonStartNs()
  /// — checked on every pop — one load instead of a 4-level bitmap scan,
  /// and hands cascadeEarliest() its target for free.
  struct Cursor {
    std::int64_t start = std::numeric_limits<std::int64_t>::max();
    int level = -1;
    std::size_t idx = 0;
  };

  /// Recompute the cursor from the occupancy bitmaps. Coarsest level first,
  /// strict '<' to update: on equal starts the parent bucket must
  /// redistribute before a child at the same start is drained.
  void rescanEarliest() {
    earliest_ = Cursor{};
    for (int level = kLevels - 1; level >= 0; --level) {
      const std::size_t idx = earliestBucket(level);
      if (idx == kBuckets) continue;
      const std::int64_t start = bucketStartNs(level, idx);
      if (start < earliest_.start) earliest_ = {start, level, idx};
    }
  }

  /// Earliest non-empty bucket at `level`, scanning circularly from the
  /// base's current bucket. Returns kBuckets when the level is empty.
  [[nodiscard]] std::size_t earliestBucket(int level) const {
    const std::size_t cur =
        static_cast<std::size_t>(base_ >> shiftFor(level)) & (kBuckets - 1);
    const std::uint64_t* words = &occupied_[static_cast<std::size_t>(level) * kWordsPerLevel];
    for (std::size_t step = 0; step < kWordsPerLevel + 1; ++step) {
      const std::size_t word = (cur / 64 + step) % kWordsPerLevel;
      std::uint64_t bits = words[word];
      if (step == 0) bits &= ~std::uint64_t{0} << (cur % 64);  // bits >= cur only
      if (step == kWordsPerLevel) bits = words[word] & ((std::uint64_t{1} << (cur % 64)) - 1);
      if (bits != 0) {
        return word * 64 + static_cast<std::size_t>(std::countr_zero(bits));
      }
    }
    return kBuckets;
  }

  std::vector<std::vector<Entry>> buckets_{std::size_t{kLevels} * kBuckets};
  std::array<std::uint64_t, std::size_t{kLevels} * kWordsPerLevel> occupied_{};
  std::vector<Entry> scratch_;  ///< reused cascade buffer, no per-cascade alloc
  std::int64_t base_ = 0;
  std::size_t count_ = 0;
  Cursor earliest_;
};

}  // namespace scidmz::sim
