// The Simulator owns the clock and the event queue and drives a run.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>

#include "sim/codec.hpp"
#include "sim/event_queue.hpp"
#include "sim/profiler.hpp"
#include "sim/units.hpp"

namespace scidmz::sim {

/// Single-threaded discrete-event simulator.
///
/// Components hold a Simulator& and schedule callbacks; the owner calls
/// run() / runFor() / runUntil(). The clock only moves at event boundaries.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule `cb` after `delay` (>= 0) from now. Templated end-to-end so
  /// the callable is materialized once, in the event queue's slot table.
  template <typename F>
  EventId schedule(Duration delay, F&& cb) {
    return queue_.schedule(now_ + (delay < Duration::zero() ? Duration::zero() : delay),
                           std::forward<F>(cb));
  }

  /// Schedule `cb` at an absolute time (clamped to now if in the past).
  template <typename F>
  EventId scheduleAt(SimTime at, F&& cb) {
    return queue_.schedule(at < now_ ? now_ : at, std::forward<F>(cb));
  }

  void cancel(EventId id) { queue_.cancel(id); }

  /// Schedule a *daemon* event: background housekeeping (telemetry sampling
  /// ticks, watchdogs) that should never keep a run() alive on its own.
  /// run() returns once only daemon events remain; runFor()/runUntil()
  /// still fire daemons up to their deadline, so periodic probes sample
  /// through idle windows. Daemon events must not be cancelled via
  /// cancel() — the pending-daemon count would leak; let them fire and
  /// simply not reschedule.
  template <typename F>
  EventId scheduleDaemon(Duration delay, F&& cb) {
    ++daemons_;
    return schedule(delay, [this, fn = std::forward<F>(cb)]() mutable {
      --daemons_;
      if (profiler_ != nullptr) profiler_->noteDaemonEvent();
      fn();
    });
  }

  /// Run until the event queue drains (daemon events excluded) or stop()
  /// is called.
  void run() { runUntil(SimTime::max()); }

  /// Run events with time <= deadline; the clock ends at
  /// min(deadline, time of last event) — or exactly deadline if any event
  /// remained beyond it. With an infinite deadline, pending daemon events
  /// alone do not keep the loop running.
  void runUntil(SimTime deadline) {
    stopped_ = false;
    const bool finite = deadline != SimTime::max();
    while (!stopped_ && (finite ? !queue_.empty() : queue_.size() > daemons_)) {
      if (queue_.nextTime() > deadline) {
        now_ = deadline;
        return;
      }
      auto ev = queue_.pop();
      now_ = ev.at;
      ++executed_;
      if (profiler_ == nullptr) {
        ev.cb();
      } else {
        profiler_->beginEvent();
        ev.cb();
        profiler_->endEvent(queue_.size(), queue_.parkedCount());
      }
    }
    if (!stopped_ && finite && now_ < deadline) now_ = deadline;
  }

  /// Run for `d` of simulated time from now.
  void runFor(Duration d) { runUntil(now_ + d); }

  // --- Sharded-execution seam (sim::ShardedSimulator) ----------------------

  /// Run events with time strictly < `horizon` (the exclusive epoch window
  /// of the conservative sharded scheduler). The clock is left at the last
  /// executed event — the epoch driver canonicalizes it afterwards via
  /// advanceClockTo() — so an idle epoch moves nothing.
  void runBefore(SimTime horizon) {
    while (!queue_.empty()) {
      if (queue_.nextTime() >= horizon) return;
      auto ev = queue_.pop();
      now_ = ev.at;
      ++executed_;
      if (profiler_ == nullptr) {
        ev.cb();
      } else {
        profiler_->beginEvent();
        ev.cb();
        profiler_->endEvent(queue_.size(), queue_.parkedCount());
      }
    }
  }

  /// Time of the next pending event; SimTime::max() when the queue is
  /// empty. Used to compute the conservative epoch horizon.
  [[nodiscard]] SimTime nextEventTime() { return queue_.nextTime(); }

  /// Move the clock forward to `t` without executing anything (no-op if the
  /// clock is already past). The sharded driver uses this so every domain's
  /// clock agrees at run boundaries, like a plain runUntil() would.
  void advanceClockTo(SimTime t) {
    if (t > now_) now_ = t;
  }

  /// Stop the current run() after the in-flight callback returns.
  void stop() { stopped_ = true; }

  /// Teardown path: drop every pending event, destroying the callbacks and
  /// whatever they captured (pool handles, component pointers). Callers use
  /// this to sequence resource destruction — e.g. net::Context clears the
  /// queue in its destructor so in-flight packet handles release into a
  /// still-alive pool. Daemon accounting resets with the queue.
  void clearPendingEvents() {
    queue_.clear();
    daemons_ = 0;
  }

  // --- Snapshot/restore seam -----------------------------------------------
  //
  // Restore is rebuild-then-overlay: the caller first reconstructs the
  // scenario identically in code (closures cannot be serialized), then
  // beginRestore() drops every construction-time event and resets the
  // clock, and each component re-arms its own pending events under their
  // original (time, sequence) keys via restoreSchedule(). Pop order is
  // strictly (at, seq), so re-arm call order is irrelevant and the restored
  // run is byte-identical to the uninterrupted one.

  /// The (time, sequence) key of a pending event (invalid for fired,
  /// cancelled, or stale handles). Components serialize this key alongside
  /// their armed-timer state.
  [[nodiscard]] EventKey eventKey(EventId id) const { return queue_.eventKey(id); }

  /// Reset clock, executed-event count, and sequence numbering to the
  /// snapshotted values, dropping every pending event. Components then
  /// re-arm via restoreSchedule()/restoreScheduleDaemon().
  void beginRestore(SimTime now, std::uint64_t executed, std::uint64_t nextSeq) {
    queue_.beginRestore(now, nextSeq);
    daemons_ = 0;
    stopped_ = false;
    now_ = now;
    executed_ = executed;
  }

  /// Re-arm an event under its snapshotted key.
  template <typename F>
  EventId restoreSchedule(SimTime at, std::uint64_t seq, F&& cb) {
    return queue_.restoreSchedule(at, seq, std::forward<F>(cb));
  }

  /// Re-arm a daemon event under its snapshotted key: re-applies the same
  /// accounting wrapper scheduleDaemon() installs, so run() termination and
  /// profiler attribution behave identically after a restore.
  template <typename F>
  EventId restoreScheduleDaemon(SimTime at, std::uint64_t seq, F&& cb) {
    ++daemons_;
    return queue_.restoreSchedule(at, seq, [this, fn = std::forward<F>(cb)]() mutable {
      --daemons_;
      if (profiler_ != nullptr) profiler_->noteDaemonEvent();
      fn();
    });
  }

  [[nodiscard]] std::uint64_t eventsExecuted() const { return executed_; }
  /// Sequence counter state for snapshots (total events ever scheduled).
  [[nodiscard]] std::uint64_t scheduledTotal() const { return queue_.scheduledTotal(); }
  [[nodiscard]] bool pendingEvents() const { return !queue_.empty(); }
  [[nodiscard]] std::size_t pendingEventCount() const { return queue_.size(); }
  /// Daemon events currently pending (scheduled and not yet fired).
  [[nodiscard]] std::size_t pendingDaemonCount() const { return daemons_; }

  /// Attach/detach the self-profiler (nullptr = detached, zero overhead:
  /// the hot loop takes one always-predicted branch). The profiler is not
  /// owned and must outlive the simulator or be detached first.
  void setProfiler(Profiler* profiler) { profiler_ = profiler; }
  [[nodiscard]] Profiler* profiler() const { return profiler_; }

 private:
  EventQueue queue_;
  SimTime now_ = SimTime::zero();
  std::uint64_t executed_ = 0;
  std::size_t daemons_ = 0;
  bool stopped_ = false;
  Profiler* profiler_ = nullptr;
};

/// Serialize one optional pending timer through `c`: writes armed-ness plus
/// the (at, seq) key; on read, re-arms `cb` under the original key and
/// stores the fresh handle in `slot`. Returns the number of pending events
/// claimed (0 or 1) for the snapshot's event accounting.
template <typename F>
std::uint64_t codecTimer(Codec& c, Simulator& sim, EventId& slot, F&& cb) {
  if (c.writing()) {
    const EventKey key = sim.eventKey(slot);
    bool armed = key.valid;
    SimTime at = key.at;
    std::uint64_t seq = key.seq;
    c.b(armed);
    if (!armed) return 0;
    codecTime(c, at);
    c.vu64(seq);
    return 1;
  }
  bool armed = false;
  c.b(armed);
  if (!armed) {
    slot = EventId{};
    return 0;
  }
  SimTime at = SimTime::zero();
  std::uint64_t seq = 0;
  codecTime(c, at);
  c.vu64(seq);
  slot = sim.restoreSchedule(at, seq, std::forward<F>(cb));
  return 1;
}

}  // namespace scidmz::sim
