// Event-loop self-profiler: where does the simulator's *host* time go, and
// how loaded are its data structures, while a scenario runs?
//
// A Profiler is attached to a Simulator (Simulator::setProfiler); the hot
// loop then wraps every callback in beginEvent()/endEvent(). Detached — the
// default — the loop takes a single perfectly-predicted nullptr branch and
// executes the callback directly, so disabled cost is zero; the A/B pair in
// bench/micro_simulator plus the perf.yml ratchet hold that line.
//
// What it records, per attached simulator:
//   - execute counts per event source. The loop itself distinguishes plain
//     vs daemon events; instrumented subsystems (telemetry tick, fluid
//     engine tick) refine the attribution by calling setSource("...") from
//     inside their callbacks.
//   - host-time latency histograms, log2 (power-of-two) bucketed: bucket k
//     counts callbacks whose wall duration was in [2^(k-1), 2^k) ns
//     (bucket index = bit_width of the nanosecond count).
//   - event-queue occupancy: heap + timing-wheel population sampled every
//     1024th event (log2 histogram + maxima), plus scheduled totals.
//
// Determinism: counts and occupancy derive only from the event stream, so
// they are byte-identical across SCIDMZ_SWEEP_THREADS; wall-clock latency
// buckets are inherently host-dependent and are exported under a separate
// "host" object that determinism diffs ignore (see tools/validate_trace.py).
#pragma once

#include <array>
#include <bit>
#include <chrono>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>

namespace scidmz::sim {

class Profiler {
 public:
  static constexpr std::size_t kLatencyBuckets = 40;   ///< 2^0 .. 2^39 ns (~0.5 s)
  static constexpr std::size_t kOccupancyBuckets = 28; ///< up to 2^27 pending events
  static constexpr std::uint64_t kOccupancySampleMask = 1023;  ///< sample every 1024th event

  struct SourceStats {
    std::uint64_t count = 0;
    std::uint64_t totalHostNs = 0;
    std::array<std::uint64_t, kLatencyBuckets> latency{};
  };

  /// Called by the simulator loop immediately before an event callback.
  void beginEvent() {
    source_ = nullptr;
    daemon_ = false;
    t0_ = std::chrono::steady_clock::now();
  }

  /// Instrumented callbacks self-identify ("telemetry.tick", "fluid.tick");
  /// uncategorized events land under "event" / "daemon".
  void setSource(const char* name) { source_ = name; }
  /// The scheduleDaemon wrapper marks daemon events before dispatch.
  void noteDaemonEvent() { daemon_ = true; }

  /// Called by the simulator loop after the callback returns, with the
  /// queue's current population split (heap `pending` includes parked).
  void endEvent(std::size_t pending, std::size_t parked) {
    const auto ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                             t0_)
            .count());
    SourceStats& stats = sources_[source_ != nullptr ? source_ : (daemon_ ? "daemon" : "event")];
    ++stats.count;
    stats.totalHostNs += ns;
    ++stats.latency[bucketOf(ns, kLatencyBuckets)];
    ++events_;
    if ((events_ & kOccupancySampleMask) == 0) {
      ++occupancy_samples_;
      ++occupancy_[bucketOf(static_cast<std::uint64_t>(pending), kOccupancyBuckets)];
      if (pending > max_pending_) max_pending_ = pending;
      if (parked > max_parked_) max_parked_ = parked;
    }
  }

  /// Allocator high-water marks, stamped by the owner at export time (the
  /// profiler lives in sim and cannot see net::PacketPool / the arena).
  void setHighWater(const std::string& name, std::uint64_t value) {
    high_water_[name] = value;
  }

  [[nodiscard]] std::uint64_t eventsProfiled() const { return events_; }
  [[nodiscard]] const std::map<std::string, SourceStats>& sources() const { return sources_; }
  [[nodiscard]] std::size_t maxPending() const { return max_pending_; }
  [[nodiscard]] std::size_t maxParked() const { return max_parked_; }

  /// scidmz.profile.v1: deterministic fields (counts, occupancy, high-water
  /// marks) at the top level; wall-clock-derived data confined to "host".
  void exportJson(std::ostream& out) const {
    out << "{\n  \"schema\": \"scidmz.profile.v1\",\n";
    out << "  \"events_profiled\": " << events_ << ",\n";
    out << "  \"sources\": {";
    bool first = true;
    for (const auto& [name, stats] : sources_) {
      out << (first ? "\n" : ",\n") << "    \"" << name << "\": {\"count\": " << stats.count
          << "}";
      first = false;
    }
    out << (first ? "" : "\n  ") << "},\n";
    out << "  \"occupancy\": {\"samples\": " << occupancy_samples_
        << ", \"max_pending\": " << max_pending_ << ", \"max_parked\": " << max_parked_
        << ", \"log2_pending\": [";
    for (std::size_t i = 0; i < kOccupancyBuckets; ++i)
      out << (i == 0 ? "" : ", ") << occupancy_[i];
    out << "]},\n";
    out << "  \"high_water\": {";
    first = true;
    for (const auto& [name, value] : high_water_) {
      out << (first ? "\n" : ",\n") << "    \"" << name << "\": " << value;
      first = false;
    }
    out << (first ? "" : "\n  ") << "},\n";
    // Host-time data below this point is machine-dependent by nature:
    // determinism checks must ignore the "host" object.
    out << "  \"host\": {\n    \"sources\": {";
    first = true;
    for (const auto& [name, stats] : sources_) {
      out << (first ? "\n" : ",\n") << "      \"" << name
          << "\": {\"total_ns\": " << stats.totalHostNs << ", \"latency_log2_ns\": [";
      for (std::size_t i = 0; i < kLatencyBuckets; ++i)
        out << (i == 0 ? "" : ", ") << stats.latency[i];
      out << "]}";
      first = false;
    }
    out << (first ? "" : "\n    ") << "}\n  }\n}\n";
  }

 private:
  static std::size_t bucketOf(std::uint64_t v, std::size_t buckets) {
    const std::size_t b = static_cast<std::size_t>(std::bit_width(v));  // 0 -> 0, 1 -> 1, ...
    return b < buckets ? b : buckets - 1;
  }

  std::map<std::string, SourceStats> sources_;
  std::array<std::uint64_t, kOccupancyBuckets> occupancy_{};
  std::map<std::string, std::uint64_t> high_water_;
  std::chrono::steady_clock::time_point t0_{};
  const char* source_ = nullptr;
  bool daemon_ = false;
  std::uint64_t events_ = 0;
  std::uint64_t occupancy_samples_ = 0;
  std::size_t max_pending_ = 0;
  std::size_t max_parked_ = 0;
};

}  // namespace scidmz::sim
