// Small-buffer-optimized move-only callable for the event hot path.
//
// std::function heap-allocates any capture larger than its tiny internal
// buffer, which on the scheduler hot path means one malloc/free per packet
// event. The data-path callbacks capture a `this` pointer plus a 16-byte
// net::PacketRef pool handle; SmallCallback sizes its inline buffer for
// those captures so the common schedule path never touches the allocator.
// Oversized or throwing-move callables fall back to the heap with identical
// semantics.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace scidmz::sim {

/// Move-only type-erased `void()` callable with `InlineBytes` of inline
/// storage. Callables that fit, are suitably aligned, and are nothrow move
/// constructible live inline; everything else is heap-backed.
template <std::size_t InlineBytes>
class SmallCallback {
  static_assert(InlineBytes >= sizeof(void*), "buffer must hold the heap fallback pointer");

 public:
  SmallCallback() noexcept = default;

  // Implicit by intent, mirroring std::function at call sites.
  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, SmallCallback> &&
                                        std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SmallCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    construct(std::forward<F>(f));
  }

  /// Replace the held callable, constructing the new one in place — the
  /// schedule hot path uses this to build the closure directly in its slot
  /// (no intermediate SmallCallback, no relocation).
  template <typename F,
            typename = std::enable_if_t<std::is_invocable_r_v<void, std::decay_t<F>&>>>
  void assign(F&& f) {
    reset();
    if constexpr (std::is_same_v<std::decay_t<F>, SmallCallback>) {
      moveFrom(f);
    } else {
      construct(std::forward<F>(f));
    }
  }

  SmallCallback(SmallCallback&& other) noexcept { moveFrom(other); }
  SmallCallback& operator=(SmallCallback&& other) noexcept {
    if (this != &other) {
      reset();
      moveFrom(other);
    }
    return *this;
  }
  SmallCallback(const SmallCallback&) = delete;
  SmallCallback& operator=(const SmallCallback&) = delete;
  ~SmallCallback() { reset(); }

  void operator()() { ops_->invoke(storage_); }

  [[nodiscard]] explicit operator bool() const noexcept { return ops_ != nullptr; }

  /// Destroy the wrapped callable (releases captured resources eagerly).
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  /// Whether the callable lives in the inline buffer (benchmark/test hook).
  [[nodiscard]] bool isInline() const noexcept { return ops_ != nullptr && ops_->isInline; }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    void (*relocate)(void* from, void* to) noexcept;  ///< Move-construct `to`, destroy `from`.
    void (*destroy)(void* storage) noexcept;
    bool isInline;
  };

  template <typename Fn>
  static Fn* inlinePtr(void* storage) noexcept {
    return std::launder(reinterpret_cast<Fn*>(storage));
  }
  template <typename Fn>
  static Fn* heapPtr(void* storage) noexcept {
    return static_cast<Fn*>(*reinterpret_cast<void**>(storage));
  }

  template <typename Fn>
  static constexpr Ops kInlineOps{
      [](void* s) { (*inlinePtr<Fn>(s))(); },
      [](void* from, void* to) noexcept {
        ::new (to) Fn(std::move(*inlinePtr<Fn>(from)));
        inlinePtr<Fn>(from)->~Fn();
      },
      [](void* s) noexcept { inlinePtr<Fn>(s)->~Fn(); },
      true,
  };

  template <typename Fn>
  static constexpr Ops kHeapOps{
      [](void* s) { (*heapPtr<Fn>(s))(); },
      [](void* from, void* to) noexcept { *reinterpret_cast<void**>(to) = *reinterpret_cast<void**>(from); },
      [](void* s) noexcept { delete heapPtr<Fn>(s); },
      false,
  };

  template <typename F>
  void construct(F&& f) {
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= InlineBytes && alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      *reinterpret_cast<void**>(storage_) = new Fn(std::forward<F>(f));
      ops_ = &kHeapOps<Fn>;
    }
  }

  void moveFrom(SmallCallback& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(other.storage_, storage_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[InlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace scidmz::sim
