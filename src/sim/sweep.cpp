#include "sim/sweep.hpp"

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <mutex>
#include <thread>
#include <utility>

namespace scidmz::sim {

namespace {

double secondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string formatDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6f", v);
  return buf;
}

}  // namespace

// One batch ("job") at a time: dispatch() publishes the body and cell count,
// workers claim indices under the lock (cells are seconds-long, so lock
// traffic is negligible), and the last completion wakes the dispatcher.
struct SweepRunner::Pool {
  std::mutex mu;
  std::condition_variable workCv;
  std::condition_variable doneCv;
  const std::function<void(SweepCell&)>* body = nullptr;
  std::vector<SweepCellStats>* cellStats = nullptr;
  std::vector<std::exception_ptr>* errors = nullptr;
  std::size_t next = 0;
  std::size_t total = 0;
  std::size_t completed = 0;
  bool shutdown = false;
  std::vector<std::thread> threads;

  void workerLoop() {
    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
      workCv.wait(lock, [this] { return shutdown || (body != nullptr && next < total); });
      if (shutdown) return;
      const std::size_t index = next++;
      const auto* job = body;
      auto* stats = cellStats;
      auto* errs = errors;
      lock.unlock();

      SweepCell cell;
      cell.index = index;
      const auto start = std::chrono::steady_clock::now();
      std::exception_ptr error;
      try {
        (*job)(cell);
      } catch (...) {
        error = std::current_exception();
      }
      const double wall = secondsSince(start);

      lock.lock();
      (*stats)[index] =
          SweepCellStats{wall,           cell.eventsExecuted, cell.packetsForwarded,
                         cell.flowsCreated, cell.spansEmitted, cell.snapshotBytes,
                         std::move(cell.telemetryJson), cell.domains,
                         std::move(cell.domainEvents)};
      if (error) (*errs)[index] = error;
      if (++completed == total) {
        body = nullptr;
        doneCv.notify_all();
      }
    }
  }
};

SweepRunner::SweepRunner(int workers) {
  workers_ = workers > 0 ? workers : defaultWorkers();
  pool_ = std::make_unique<Pool>();
  pool_->threads.reserve(static_cast<std::size_t>(workers_));
  for (int i = 0; i < workers_; ++i) {
    pool_->threads.emplace_back([pool = pool_.get()] { pool->workerLoop(); });
  }
}

SweepRunner::~SweepRunner() {
  {
    std::lock_guard<std::mutex> lock(pool_->mu);
    pool_->shutdown = true;
  }
  pool_->workCv.notify_all();
  for (auto& t : pool_->threads) t.join();
}

int SweepRunner::defaultWorkers() {
  if (const char* env = std::getenv("SCIDMZ_SWEEP_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

void SweepRunner::dispatch(std::size_t cellCount, const std::function<void(SweepCell&)>& body,
                           std::string name) {
  SweepRunStats stats;
  stats.name = std::move(name);
  stats.workers = workers_;
  stats.cells.resize(cellCount);
  if (cellCount == 0) {
    history_.push_back(std::move(stats));
    return;
  }

  std::vector<std::exception_ptr> errors(cellCount);
  const auto start = std::chrono::steady_clock::now();
  {
    std::unique_lock<std::mutex> lock(pool_->mu);
    pool_->body = &body;
    pool_->cellStats = &stats.cells;
    pool_->errors = &errors;
    pool_->next = 0;
    pool_->total = cellCount;
    pool_->completed = 0;
    pool_->workCv.notify_all();
    pool_->doneCv.wait(lock, [this] { return pool_->completed == pool_->total; });
  }
  stats.wallSeconds = secondsSince(start);
  history_.push_back(std::move(stats));

  // Propagate the lowest-index failure so 1-worker and N-worker runs report
  // the same error for the same broken cell.
  for (auto& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

bool SweepRunner::writeJson(const std::string& benchName, const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << "{\n  \"benchmark\": \"" << jsonEscape(benchName) << "\",\n  \"runs\": [\n";
  for (std::size_t r = 0; r < history_.size(); ++r) {
    const SweepRunStats& run = history_[r];
    const double speedup =
        run.wallSeconds > 0 ? run.cellSecondsSum() / run.wallSeconds : 0.0;
    const double eventsPerSec =
        run.wallSeconds > 0 ? static_cast<double>(run.totalEvents()) / run.wallSeconds : 0.0;
    const double packetsPerSec =
        run.wallSeconds > 0 ? static_cast<double>(run.totalPackets()) / run.wallSeconds : 0.0;
    const double flowsPerSec =
        run.wallSeconds > 0 ? static_cast<double>(run.totalFlows()) / run.wallSeconds : 0.0;
    out << "    {\n"
        << "      \"name\": \"" << jsonEscape(run.name) << "\",\n"
        << "      \"workers\": " << run.workers << ",\n"
        << "      \"cells\": " << run.cells.size() << ",\n"
        << "      \"wall_seconds\": " << formatDouble(run.wallSeconds) << ",\n"
        << "      \"cell_seconds_sum\": " << formatDouble(run.cellSecondsSum()) << ",\n"
        << "      \"speedup\": " << formatDouble(speedup) << ",\n"
        << "      \"events_executed\": " << run.totalEvents() << ",\n"
        << "      \"events_per_second\": " << formatDouble(eventsPerSec) << ",\n"
        << "      \"packets_forwarded\": " << run.totalPackets() << ",\n"
        << "      \"packets_per_second\": " << formatDouble(packetsPerSec) << ",\n"
        << "      \"flows_created\": " << run.totalFlows() << ",\n"
        << "      \"flows_per_second\": " << formatDouble(flowsPerSec) << ",\n"
        << "      \"spans_emitted\": " << run.totalSpans() << ",\n"
        << "      \"snapshot_bytes\": " << run.totalSnapshotBytes() << ",\n"
        << "      \"cell_stats\": [";
    for (std::size_t i = 0; i < run.cells.size(); ++i) {
      out << (i == 0 ? "" : ", ") << "{\"wall_seconds\": " << formatDouble(run.cells[i].wallSeconds)
          << ", \"events\": " << run.cells[i].eventsExecuted
          << ", \"packets\": " << run.cells[i].packetsForwarded
          << ", \"flows\": " << run.cells[i].flowsCreated
          << ", \"spans\": " << run.cells[i].spansEmitted
          << ", \"snapshot_bytes\": " << run.cells[i].snapshotBytes
          << ", \"domains\": " << run.cells[i].domains;
      if (!run.cells[i].domainEvents.empty()) {
        out << ", \"domain_events\": [";
        for (std::size_t d = 0; d < run.cells[i].domainEvents.size(); ++d) {
          out << (d == 0 ? "" : ", ") << run.cells[i].domainEvents[d];
        }
        out << "]";
      }
      // telemetryJson is already a JSON object (scidmz.telemetry.v1);
      // embed it raw so the cell's counters/series land in BENCH_sim.json.
      if (!run.cells[i].telemetryJson.empty()) {
        out << ", \"telemetry\": " << run.cells[i].telemetryJson;
      }
      out << "}";
    }
    out << "]\n    }" << (r + 1 < history_.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return static_cast<bool>(out);
}

}  // namespace scidmz::sim
