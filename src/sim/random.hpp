// Deterministic, seedable pseudo-random number generation.
//
// The simulator never touches std::random_device or global RNG state; every
// stochastic component draws from an explicitly-seeded Rng so whole runs are
// reproducible from a single seed. The generator is xoshiro256**, which is
// fast, tiny, and has well-understood statistical quality.
#pragma once

#include <cstdint>
#include <cmath>

#include "sim/codec.hpp"
#include "sim/units.hpp"

namespace scidmz::sim {

/// xoshiro256** generator with SplitMix64 seeding.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    seed_ = seed;
    // SplitMix64 expansion of the single word seed into 256 bits of state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit word.
  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Unbiased via rejection.
  std::uint64_t below(std::uint64_t n) {
    if (n == 0) return 0;
    const std::uint64_t threshold = (0 - n) % n;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % n;
    }
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
  }

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean) {
    double u = uniform();
    // Avoid log(0); uniform() is in [0,1) so 1-u is in (0,1].
    return -mean * std::log(1.0 - u);
  }

  /// Exponentially distributed duration with the given mean.
  Duration exponential(Duration mean) {
    return Duration::fromSeconds(exponential(mean.toSeconds()));
  }

  /// Standard normal via Box-Muller (single value; no cached spare so the
  /// draw count stays deterministic and easy to reason about).
  double normal(double mean = 0.0, double stddev = 1.0) {
    double u1 = 1.0 - uniform();  // (0, 1]
    double u2 = uniform();
    double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.28318530717958647692 * u2);
    return mean + stddev * z;
  }

  /// Pareto-distributed value with shape alpha and minimum xm (heavy-tailed
  /// flow sizes for enterprise traffic mixes).
  double pareto(double alpha, double xm) {
    double u = 1.0 - uniform();  // (0, 1]
    return xm / std::pow(u, 1.0 / alpha);
  }

  /// Derive an independent child stream (stable: depends only on this
  /// stream's seed lineage and `salt`, not on draw history).
  [[nodiscard]] Rng fork(std::uint64_t salt) const {
    return Rng{seed_ ^ (salt * 0xD1B54A32D192ED03ull + 0x8CB92BA72F3D8DD7ull)};
  }

  /// Snapshot/restore: the seed (fork() lineage) plus the four state words
  /// (draw position). Restoring both makes future draws *and* future forks
  /// match the uninterrupted run exactly.
  void serialize(Codec& c) {
    c.u64(seed_);
    for (auto& word : state_) c.u64(word);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t seed_ = 0;
  std::uint64_t state_[4]{};
};

}  // namespace scidmz::sim
