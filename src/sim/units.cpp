#include "sim/units.hpp"

#include <array>
#include <cmath>
#include <cstdio>

namespace scidmz::sim {
namespace {

std::string formatScaled(double value, const char* unit) {
  std::array<char, 64> buf{};
  std::snprintf(buf.data(), buf.size(), "%.3g %s", value, unit);
  return std::string{buf.data()};
}

}  // namespace

std::string toString(Duration d) {
  const double ns = static_cast<double>(d.ns());
  const double abs = std::fabs(ns);
  if (abs >= 1e9) return formatScaled(ns * 1e-9, "s");
  if (abs >= 1e6) return formatScaled(ns * 1e-6, "ms");
  if (abs >= 1e3) return formatScaled(ns * 1e-3, "us");
  return formatScaled(ns, "ns");
}

std::string toString(SimTime t) { return toString(t - SimTime::zero()); }

std::string toString(DataSize s) {
  const double b = static_cast<double>(s.byteCount());
  if (b >= 1e12) return formatScaled(b * 1e-12, "TB");
  if (b >= 1e9) return formatScaled(b * 1e-9, "GB");
  if (b >= 1e6) return formatScaled(b * 1e-6, "MB");
  if (b >= 1e3) return formatScaled(b * 1e-3, "KB");
  return formatScaled(b, "B");
}

std::string toString(DataRate r) {
  const double bps = static_cast<double>(r.bps());
  if (bps >= 1e9) return formatScaled(bps * 1e-9, "Gbps");
  if (bps >= 1e6) return formatScaled(bps * 1e-6, "Mbps");
  if (bps >= 1e3) return formatScaled(bps * 1e-3, "Kbps");
  return formatScaled(bps, "bps");
}

}  // namespace scidmz::sim
