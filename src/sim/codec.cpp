#include "sim/codec.hpp"

namespace scidmz::sim {

// The magic header is ASCII-identifiable (`head -c 16 file` names the
// format) and newline-terminated so text tools stop cleanly.
void writeMagic(BitWriter& w, const char* magic) {
  for (const char* p = magic; *p != '\0'; ++p) w.writeU8(static_cast<std::uint8_t>(*p));
  w.writeU8('\n');
}

bool readMagic(BitReader& r, const char* magic) {
  for (const char* p = magic; *p != '\0'; ++p) {
    if (r.readU8() != static_cast<std::uint8_t>(*p)) return false;
  }
  return r.readU8() == '\n' && r.ok();
}

}  // namespace scidmz::sim
