// Parallel scenario-sweep runner.
//
// A sweep is a grid of independent scenario cells — one (parameters →
// result) evaluation each, every cell owning its own Simulator, Rng, and
// Topology. Cells share no mutable state, so a sweep's per-cell results are
// bit-identical whether it runs on 1 worker or N: the runner only changes
// *when* a cell executes, never *what* it computes, and results land in
// submission-ordered slots regardless of completion order.
//
// Worker count: explicit constructor argument, else the SCIDMZ_SWEEP_THREADS
// environment variable, else std::thread::hardware_concurrency().
//
// Every run records per-cell wall clock and events executed; writeJson()
// emits the accumulated history as a BENCH_sim.json-style summary so the
// perf trajectory of the figure benches is tracked across PRs.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace scidmz::sim {

/// Per-cell execution report.
struct SweepCellStats {
  double wallSeconds = 0.0;
  std::uint64_t eventsExecuted = 0;
  /// Packets successfully forwarded through the data path (one count per
  /// Device::forward hop) — the numerator of the packets/sec column.
  std::uint64_t packetsForwarded = 0;
  /// Flows created through net::FlowFactory — the numerator of the
  /// flows/sec model-throughput column (the hybrid-fidelity headline).
  std::uint64_t flowsCreated = 0;
  /// Spans opened by the cell's telemetry::Tracer; 0 when tracing was off.
  std::uint64_t spansEmitted = 0;
  /// Size of the scidmz.snap.v1 blob the cell saved or restored; 0 when the
  /// cell did not touch the snapshot seam.
  std::uint64_t snapshotBytes = 0;
  /// Pre-serialized telemetry snapshot (scidmz.telemetry.v1 JSON), empty
  /// when the cell did not instrument itself. Opaque to the runner — sim
  /// stays independent of the telemetry layer.
  std::string telemetryJson;
  /// Execution domains the cell ran across (1 = single-threaded scenario).
  std::uint32_t domains = 1;
  /// Per-domain events executed when the cell ran sharded (sums to
  /// eventsExecuted); empty for unsharded cells.
  std::vector<std::uint64_t> domainEvents;
};

/// One run() call's report.
struct SweepRunStats {
  std::string name;
  int workers = 0;
  double wallSeconds = 0.0;
  std::vector<SweepCellStats> cells;

  [[nodiscard]] std::uint64_t totalEvents() const {
    std::uint64_t total = 0;
    for (const auto& c : cells) total += c.eventsExecuted;
    return total;
  }
  [[nodiscard]] std::uint64_t totalPackets() const {
    std::uint64_t total = 0;
    for (const auto& c : cells) total += c.packetsForwarded;
    return total;
  }
  [[nodiscard]] std::uint64_t totalFlows() const {
    std::uint64_t total = 0;
    for (const auto& c : cells) total += c.flowsCreated;
    return total;
  }
  [[nodiscard]] std::uint64_t totalSpans() const {
    std::uint64_t total = 0;
    for (const auto& c : cells) total += c.spansEmitted;
    return total;
  }
  [[nodiscard]] std::uint64_t totalSnapshotBytes() const {
    std::uint64_t total = 0;
    for (const auto& c : cells) total += c.snapshotBytes;
    return total;
  }
  /// Sum of per-cell wall clock — the serial-equivalent cost; divided by
  /// wallSeconds it is the realized parallel speedup.
  [[nodiscard]] double cellSecondsSum() const {
    double total = 0;
    for (const auto& c : cells) total += c.wallSeconds;
    return total;
  }
};

/// Handed to each cell body: identifies the cell and carries stats back.
struct SweepCell {
  std::size_t index = 0;
  /// Cell sets this (typically Simulator::eventsExecuted()) before returning.
  std::uint64_t eventsExecuted = 0;
  /// Cell sets this (typically Context::packetsForwarded()) before
  /// returning; reported as the packets/sec datapath-throughput column.
  std::uint64_t packetsForwarded = 0;
  /// Cell sets this (typically FlowFactory::flowsCreated()) before
  /// returning; reported as the flows/sec model-throughput column.
  std::uint64_t flowsCreated = 0;
  /// Cell sets this to its tracer's spansEmitted() when tracing is on;
  /// reported as the spans_emitted column.
  std::uint64_t spansEmitted = 0;
  /// Cell sets this to the scidmz.snap.v1 blob size it saved or restored;
  /// reported as the snapshot_bytes column.
  std::uint64_t snapshotBytes = 0;
  /// Cell may set this to its telemetry snapshot JSON
  /// (Telemetry::snapshot().toJson()); merged into BENCH_sim.json per cell.
  std::string telemetryJson;
  /// Execution domains (sharded scenarios set this to their --domains).
  std::uint32_t domains = 1;
  /// Per-domain events executed for sharded cells (empty otherwise).
  std::vector<std::uint64_t> domainEvents;
};

/// Fixed-size worker pool executing scenario cells.
class SweepRunner {
 public:
  /// `workers` <= 0 selects defaultWorkers(). The pool threads persist for
  /// the runner's lifetime and sleep between runs.
  explicit SweepRunner(int workers = 0);
  ~SweepRunner();
  SweepRunner(const SweepRunner&) = delete;
  SweepRunner& operator=(const SweepRunner&) = delete;

  /// SCIDMZ_SWEEP_THREADS if set to a positive integer, else hardware
  /// concurrency (at least 1).
  [[nodiscard]] static int defaultWorkers();

  [[nodiscard]] int workers() const { return workers_; }

  /// Execute `cellCount` cells of `cellFn` (signature `R(SweepCell&)`) and
  /// return their results in submission order. Blocks until the whole grid
  /// is done. If any cell throws, the lowest-index exception is rethrown
  /// here after all cells finish. R must be default-constructible.
  template <typename R, typename F>
  std::vector<R> run(std::size_t cellCount, F cellFn, std::string name = "sweep") {
    std::vector<R> results(cellCount);
    dispatch(
        cellCount, [&results, &cellFn](SweepCell& cell) { results[cell.index] = cellFn(cell); },
        std::move(name));
    return results;
  }

  /// All runs executed so far, in order.
  [[nodiscard]] const std::vector<SweepRunStats>& history() const { return history_; }
  [[nodiscard]] const SweepRunStats& lastRun() const { return history_.back(); }

  /// Write the run history as JSON. Returns false if the file can't be
  /// opened. Format documented in EXPERIMENTS.md ("BENCH_sim.json").
  bool writeJson(const std::string& benchName, const std::string& path) const;

 private:
  void dispatch(std::size_t cellCount, const std::function<void(SweepCell&)>& body,
                std::string name);

  struct Pool;
  int workers_ = 1;
  std::unique_ptr<Pool> pool_;
  std::vector<SweepRunStats> history_;
};

}  // namespace scidmz::sim
