// Minimal structured trace log.
//
// Components emit (time, component, message) records through a Logger
// owned by the scenario. By default records are dropped; tests and the
// troubleshooting example install sinks. Keeping logging explicit (no
// global singleton) preserves determinism and keeps scenarios independent.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/units.hpp"

namespace scidmz::sim {

enum class LogLevel { kTrace, kDebug, kInfo, kWarn, kError };

[[nodiscard]] constexpr std::string_view toString(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

struct LogRecord {
  SimTime at;
  LogLevel level = LogLevel::kInfo;
  std::string component;
  std::string message;
};

class Logger {
 public:
  using Sink = std::function<void(const LogRecord&)>;

  /// Records below `level` are dropped before reaching sinks.
  void setLevel(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }

  void addSink(Sink sink) { sinks_.push_back(std::move(sink)); }

  void log(SimTime at, LogLevel level, std::string_view component, std::string message) const {
    if (level < level_ || sinks_.empty()) return;
    const LogRecord rec{at, level, std::string{component}, std::move(message)};
    for (const auto& sink : sinks_) sink(rec);
  }

 private:
  LogLevel level_ = LogLevel::kInfo;
  std::vector<Sink> sinks_;
};

/// Convenience sink collecting records into a vector (tests).
class CapturingSink {
 public:
  [[nodiscard]] Logger::Sink sink() {
    return [this](const LogRecord& r) { records_.push_back(r); };
  }
  [[nodiscard]] const std::vector<LogRecord>& records() const { return records_; }

 private:
  std::vector<LogRecord> records_;
};

}  // namespace scidmz::sim
