// Minimal structured trace log.
//
// Components emit (time, component, message) records through a Logger
// owned by the scenario. By default records are dropped; tests and the
// troubleshooting example install sinks. Keeping logging explicit (no
// global singleton) preserves determinism and keeps scenarios independent.
//
// For field diagnostics without code changes, SCIDMZ_LOG=<level> (trace /
// debug / info / warn / error) arms a stderr sink on every Logger at
// construction — any bench or example becomes chatty on demand.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/units.hpp"

namespace scidmz::sim {

enum class LogLevel { kTrace, kDebug, kInfo, kWarn, kError };

[[nodiscard]] constexpr std::string_view toString(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

/// Parse "debug", "WARN", ... (case-insensitive); nullopt on anything else.
[[nodiscard]] inline std::optional<LogLevel> parseLogLevel(std::string_view text) {
  std::string lower;
  lower.reserve(text.size());
  for (const char c : text) lower.push_back(c >= 'A' && c <= 'Z' ? static_cast<char>(c + 32) : c);
  if (lower == "trace") return LogLevel::kTrace;
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  return std::nullopt;
}

struct LogRecord {
  SimTime at;
  LogLevel level = LogLevel::kInfo;
  std::string component;
  std::string message;
};

class Logger {
 public:
  using Sink = std::function<void(const LogRecord&)>;

  /// Honors SCIDMZ_LOG: when set to a valid level, lowers the threshold to
  /// it and attaches a stderr sink so existing binaries gain diagnostics
  /// with no code changes.
  Logger() {
    if (const char* env = std::getenv("SCIDMZ_LOG"); env != nullptr) {
      if (const auto level = parseLogLevel(env)) {
        level_ = *level;
        addSink([](const LogRecord& r) {
          std::fprintf(stderr, "[%12lld ns] %-5s %s: %s\n", static_cast<long long>(r.at.ns()),
                       std::string(toString(r.level)).c_str(), r.component.c_str(),
                       r.message.c_str());
        });
      }
    }
  }

  /// Records below `level` are dropped before reaching sinks.
  void setLevel(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }

  void addSink(Sink sink) { sinks_.push_back(std::move(sink)); }

  void log(SimTime at, LogLevel level, std::string_view component, std::string message) const {
    if (level < level_ || sinks_.empty()) return;
    const LogRecord rec{at, level, std::string{component}, std::move(message)};
    for (const auto& sink : sinks_) sink(rec);
  }

 private:
  LogLevel level_ = LogLevel::kInfo;
  std::vector<Sink> sinks_;
};

/// Bounded sink keeping the most recent `capacity` records: cheap enough
/// to leave armed in benches and long scenarios, with a drop count so a
/// truncated window is never mistaken for a quiet one.
class RingBufferSink {
 public:
  explicit RingBufferSink(std::size_t capacity = 1024) : capacity_(capacity ? capacity : 1) {}

  [[nodiscard]] Logger::Sink sink() {
    return [this](const LogRecord& r) {
      if (records_.size() == capacity_) {
        records_.pop_front();
        ++dropped_;
      }
      records_.push_back(r);
    };
  }

  [[nodiscard]] const std::deque<LogRecord>& records() const { return records_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Records evicted to make room since construction.
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  void clear() {
    records_.clear();
    dropped_ = 0;
  }

 private:
  std::size_t capacity_;
  std::deque<LogRecord> records_;
  std::uint64_t dropped_ = 0;
};

/// Convenience sink collecting records into a vector (tests).
class CapturingSink {
 public:
  [[nodiscard]] Logger::Sink sink() {
    return [this](const LogRecord& r) { records_.push_back(r); };
  }
  [[nodiscard]] const std::vector<LogRecord>& records() const { return records_; }

 private:
  std::vector<LogRecord> records_;
};

}  // namespace scidmz::sim
