// Strong unit types used throughout the simulator.
//
// All simulation time is integer nanoseconds (Duration / SimTime), data
// sizes are integer bytes (DataSize) and rates are integer bits per second
// (DataRate). Integer representations keep event ordering exact and runs
// bit-reproducible across platforms.
#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace scidmz::sim {

/// 128-bit intermediate for rate/size arithmetic that would overflow 64
/// bits (e.g. terabyte transfers). GCC/Clang extension, hence the marker.
__extension__ using UInt128 = unsigned __int128;

/// A span of simulated time in nanoseconds. Distinct from SimTime (a point
/// on the simulation clock) so that the two cannot be mixed accidentally.
class Duration {
 public:
  constexpr Duration() = default;
  static constexpr Duration nanoseconds(std::int64_t ns) { return Duration{ns}; }
  static constexpr Duration microseconds(std::int64_t us) { return Duration{us * 1'000}; }
  static constexpr Duration milliseconds(std::int64_t ms) { return Duration{ms * 1'000'000}; }
  static constexpr Duration seconds(std::int64_t s) { return Duration{s * 1'000'000'000}; }
  static constexpr Duration fromSeconds(double s) {
    return Duration{static_cast<std::int64_t>(s * 1e9 + (s >= 0 ? 0.5 : -0.5))};
  }
  static constexpr Duration zero() { return Duration{0}; }
  static constexpr Duration max() { return Duration{std::numeric_limits<std::int64_t>::max()}; }

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double toSeconds() const { return static_cast<double>(ns_) * 1e-9; }
  [[nodiscard]] constexpr double toMillis() const { return static_cast<double>(ns_) * 1e-6; }

  constexpr auto operator<=>(const Duration&) const = default;
  constexpr Duration operator+(Duration o) const { return Duration{ns_ + o.ns_}; }
  constexpr Duration operator-(Duration o) const { return Duration{ns_ - o.ns_}; }
  constexpr Duration operator*(std::int64_t k) const { return Duration{ns_ * k}; }
  constexpr Duration operator/(std::int64_t k) const { return Duration{ns_ / k}; }
  constexpr double operator/(Duration o) const {
    return static_cast<double>(ns_) / static_cast<double>(o.ns_);
  }
  constexpr Duration& operator+=(Duration o) { ns_ += o.ns_; return *this; }
  constexpr Duration& operator-=(Duration o) { ns_ -= o.ns_; return *this; }

 private:
  constexpr explicit Duration(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

/// An absolute point on the simulation clock (ns since simulation start).
class SimTime {
 public:
  constexpr SimTime() = default;
  static constexpr SimTime fromNs(std::int64_t ns) { return SimTime{ns}; }
  static constexpr SimTime zero() { return SimTime{0}; }
  static constexpr SimTime max() { return SimTime{std::numeric_limits<std::int64_t>::max()}; }

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double toSeconds() const { return static_cast<double>(ns_) * 1e-9; }

  constexpr auto operator<=>(const SimTime&) const = default;
  constexpr SimTime operator+(Duration d) const { return SimTime{ns_ + d.ns()}; }
  constexpr SimTime operator-(Duration d) const { return SimTime{ns_ - d.ns()}; }
  constexpr Duration operator-(SimTime o) const { return Duration::nanoseconds(ns_ - o.ns_); }
  constexpr SimTime& operator+=(Duration d) { ns_ += d.ns(); return *this; }

 private:
  constexpr explicit SimTime(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

/// A quantity of data in bytes.
class DataSize {
 public:
  constexpr DataSize() = default;
  static constexpr DataSize bytes(std::uint64_t b) { return DataSize{b}; }
  static constexpr DataSize kilobytes(std::uint64_t kb) { return DataSize{kb * 1'000}; }
  static constexpr DataSize megabytes(std::uint64_t mb) { return DataSize{mb * 1'000'000}; }
  static constexpr DataSize gigabytes(std::uint64_t gb) { return DataSize{gb * 1'000'000'000}; }
  static constexpr DataSize terabytes(std::uint64_t tb) { return DataSize{tb * 1'000'000'000'000}; }
  static constexpr DataSize kibibytes(std::uint64_t k) { return DataSize{k * 1024}; }
  static constexpr DataSize mebibytes(std::uint64_t m) { return DataSize{m * 1024 * 1024}; }
  static constexpr DataSize zero() { return DataSize{0}; }

  [[nodiscard]] constexpr std::uint64_t byteCount() const { return bytes_; }
  [[nodiscard]] constexpr std::uint64_t bitCount() const { return bytes_ * 8; }
  [[nodiscard]] constexpr double toMB() const { return static_cast<double>(bytes_) * 1e-6; }
  [[nodiscard]] constexpr double toGB() const { return static_cast<double>(bytes_) * 1e-9; }

  constexpr auto operator<=>(const DataSize&) const = default;
  constexpr DataSize operator+(DataSize o) const { return DataSize{bytes_ + o.bytes_}; }
  constexpr DataSize operator-(DataSize o) const { return DataSize{bytes_ - o.bytes_}; }
  constexpr DataSize operator*(std::uint64_t k) const { return DataSize{bytes_ * k}; }
  constexpr DataSize operator/(std::uint64_t k) const { return DataSize{bytes_ / k}; }
  constexpr DataSize& operator+=(DataSize o) { bytes_ += o.bytes_; return *this; }
  constexpr DataSize& operator-=(DataSize o) { bytes_ -= o.bytes_; return *this; }

 private:
  constexpr explicit DataSize(std::uint64_t b) : bytes_(b) {}
  std::uint64_t bytes_ = 0;
};

/// A data rate in bits per second.
class DataRate {
 public:
  constexpr DataRate() = default;
  static constexpr DataRate bitsPerSecond(std::uint64_t bps) { return DataRate{bps}; }
  static constexpr DataRate kilobitsPerSecond(std::uint64_t k) { return DataRate{k * 1'000}; }
  static constexpr DataRate megabitsPerSecond(std::uint64_t m) { return DataRate{m * 1'000'000}; }
  static constexpr DataRate gigabitsPerSecond(std::uint64_t g) { return DataRate{g * 1'000'000'000}; }
  static constexpr DataRate zero() { return DataRate{0}; }

  [[nodiscard]] constexpr std::uint64_t bps() const { return bps_; }
  [[nodiscard]] constexpr double toGbps() const { return static_cast<double>(bps_) * 1e-9; }
  [[nodiscard]] constexpr double toMbps() const { return static_cast<double>(bps_) * 1e-6; }
  [[nodiscard]] constexpr double toMBps() const { return static_cast<double>(bps_) / 8e6; }

  /// Time to serialize `size` onto a medium of this rate. Rounds up to the
  /// next nanosecond so back-to-back transmissions never overlap.
  [[nodiscard]] constexpr Duration transmissionTime(DataSize size) const {
    // ns = bits * 1e9 / bps, computed in 128-bit to avoid overflow.
    const auto bits = static_cast<UInt128>(size.bitCount());
    const auto num = bits * 1'000'000'000u;
    const auto ns = (num + bps_ - 1) / bps_;
    return Duration::nanoseconds(static_cast<std::int64_t>(ns));
  }

  /// Bytes transferable in `d` at this rate (rounded down).
  [[nodiscard]] constexpr DataSize bytesIn(Duration d) const {
    const auto bits =
        static_cast<UInt128>(bps_) * static_cast<std::uint64_t>(d.ns()) / 1'000'000'000u;
    return DataSize::bytes(static_cast<std::uint64_t>(bits / 8));
  }

  constexpr auto operator<=>(const DataRate&) const = default;
  constexpr DataRate operator+(DataRate o) const { return DataRate{bps_ + o.bps_}; }
  constexpr DataRate operator-(DataRate o) const { return DataRate{bps_ - o.bps_}; }
  constexpr DataRate operator*(std::uint64_t k) const { return DataRate{bps_ * k}; }
  constexpr DataRate operator/(std::uint64_t k) const { return DataRate{bps_ / k}; }

 private:
  constexpr explicit DataRate(std::uint64_t bps) : bps_(bps) {}
  std::uint64_t bps_ = 0;
};

namespace literals {
constexpr Duration operator""_ns(unsigned long long v) { return Duration::nanoseconds(static_cast<std::int64_t>(v)); }
constexpr Duration operator""_us(unsigned long long v) { return Duration::microseconds(static_cast<std::int64_t>(v)); }
constexpr Duration operator""_ms(unsigned long long v) { return Duration::milliseconds(static_cast<std::int64_t>(v)); }
constexpr Duration operator""_s(unsigned long long v) { return Duration::seconds(static_cast<std::int64_t>(v)); }
constexpr DataSize operator""_B(unsigned long long v) { return DataSize::bytes(v); }
constexpr DataSize operator""_KB(unsigned long long v) { return DataSize::kilobytes(v); }
constexpr DataSize operator""_MB(unsigned long long v) { return DataSize::megabytes(v); }
constexpr DataSize operator""_GB(unsigned long long v) { return DataSize::gigabytes(v); }
constexpr DataSize operator""_TB(unsigned long long v) { return DataSize::terabytes(v); }
constexpr DataSize operator""_KiB(unsigned long long v) { return DataSize::kibibytes(v); }
constexpr DataSize operator""_MiB(unsigned long long v) { return DataSize::mebibytes(v); }
constexpr DataRate operator""_bps(unsigned long long v) { return DataRate::bitsPerSecond(v); }
constexpr DataRate operator""_Kbps(unsigned long long v) { return DataRate::kilobitsPerSecond(v); }
constexpr DataRate operator""_Mbps(unsigned long long v) { return DataRate::megabitsPerSecond(v); }
constexpr DataRate operator""_Gbps(unsigned long long v) { return DataRate::gigabitsPerSecond(v); }
}  // namespace literals

/// Human-readable formatting helpers (used by reports and dashboards).
[[nodiscard]] std::string toString(Duration d);
[[nodiscard]] std::string toString(SimTime t);
[[nodiscard]] std::string toString(DataSize s);
[[nodiscard]] std::string toString(DataRate r);

}  // namespace scidmz::sim
