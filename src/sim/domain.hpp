// Conservative parallel DES: N Simulators stitched by timestamped channels.
//
// A ShardedSimulator drives one Simulator per *domain* (a partition of the
// topology cut only at links whose propagation delay is at least the
// lookahead floor). Execution proceeds in barrier epochs:
//
//   1. Drain every channel, injecting messages into their destination
//      domain's queue under explicit (time, sequence) keys.
//   2. tmin = min over domains of the next pending event time.
//   3. Horizon H = min(tmin + lookahead, deadline + 1ns); when every queue
//      is idle the horizon jumps straight past the deadline (the
//      null-message-style advance — an idle channel never blocks progress).
//   4. Every domain runs its events with time strictly < H in parallel.
//
// Safety argument: a cross-domain message sent at time t >= tmin arrives at
// t + delay >= tmin + lookahead = H, so it can never land inside a window
// another domain already executed. Liveness: the domain holding tmin always
// executes at least the event at tmin (H > tmin), so every epoch makes
// progress.
//
// Determinism / partition invariance: boundary deliveries carry reserved
// sequence keys above 2^63 — (channel id, per-channel FIFO counter) — so
// they sort after same-time local events and in a channel-id order that is
// a property of the topology, not of the partition. A channel has exactly
// one sending domain (one link direction), so its FIFO order is the
// sender's deterministic execution order. Provided *every* cut-eligible
// link routes through a channel at every domain count (including 1), event
// interleaving is byte-identical at 1, 2, and 8 domains.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <condition_variable>
#include <thread>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/units.hpp"

namespace scidmz::sim {

/// Drives N per-domain Simulators (non-owning) in conservative barrier
/// epochs. Construction spawns one worker thread per extra domain; domain 0
/// runs on the calling thread. All public methods except post() must be
/// called from the orchestrating thread between runs; post() is called by
/// domain threads while an epoch executes.
class ShardedSimulator {
 public:
  ShardedSimulator(std::vector<Simulator*> domains, Duration lookahead);
  ~ShardedSimulator();
  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;

  [[nodiscard]] int domainCount() const { return static_cast<int>(domains_.size()); }
  [[nodiscard]] Duration lookahead() const { return lookahead_; }

  /// Register a directed boundary channel into `dstDomain` with the given
  /// propagation delay (must be >= the lookahead floor). Returns the
  /// channel id used with post(). Channels must be registered in the same
  /// (topology-construction) order at every domain count — the id feeds
  /// the delivery sequence key.
  std::uint32_t addChannel(int dstDomain, Duration delay);

  /// Enqueue a delivery at absolute time `at` in the channel's destination
  /// domain. Callable from the sending domain's thread mid-epoch; the
  /// message is injected at the next barrier. The callback runs on the
  /// destination domain's thread and must touch only that domain's state.
  void post(std::uint32_t channel, SimTime at, std::function<void()> cb);

  /// Run all domains to `deadline` (events at the deadline execute, same
  /// contract as Simulator::runUntil). On return every domain's clock is
  /// exactly `deadline`. Channel messages beyond the deadline stay pending
  /// for the next run.
  void runUntil(SimTime deadline);
  /// Run for `d` from now (all domain clocks agree between runs).
  void runFor(Duration d) { runUntil(now() + d); }

  [[nodiscard]] SimTime now() const { return domains_[0]->now(); }
  [[nodiscard]] std::uint64_t eventsExecuted() const;
  [[nodiscard]] std::uint64_t domainEvents(int domain) const;
  /// Messages sitting in channels (not yet injected) — tests/teardown.
  [[nodiscard]] std::size_t pendingChannelMessages() const;

 private:
  struct Message {
    SimTime at;
    std::uint64_t seq;
    std::function<void()> cb;
  };
  // unique_ptr: std::mutex pins the Channel in place while channels_ grows.
  struct Channel {
    int dstDomain = 0;
    Duration delay = Duration::zero();
    std::uint64_t nextFifo = 0;
    std::mutex mutex;
    std::vector<Message> pending;
  };

  void workerLoop(int domain);
  void runEpoch(SimTime horizon);
  void drainChannels();

  // Boundary sequence band layout: bit 63 set, then channel id, then the
  // per-channel FIFO counter. Local sequences (EventQueue::next_seq_) stay
  // far below 2^63, so boundary deliveries sort after same-time local work.
  static constexpr std::uint64_t kBoundaryBand = std::uint64_t{1} << 63;
  static constexpr int kFifoBits = 40;
  static constexpr std::uint64_t kMaxChannels = std::uint64_t{1} << (63 - kFifoBits);

  std::vector<Simulator*> domains_;
  Duration lookahead_;
  std::vector<std::unique_ptr<Channel>> channels_;

  // Epoch barrier: the orchestrator bumps start_gen_ with the horizon set,
  // workers run their domain and count themselves into done_.
  std::mutex mutex_;
  std::condition_variable cv_;
  SimTime horizon_ = SimTime::zero();
  std::uint64_t start_gen_ = 0;
  int done_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace scidmz::sim
