// Size-class slab arena for per-scenario object allocation.
//
// Extends the PacketPool idiom (net/packet_pool.hpp) from one fixed type to
// any object a scenario churns through: TCP connections, flow state,
// telemetry series nodes. Allocations are rounded up to a power-of-two size
// class (64 B .. 4 KiB) and served from a per-class LIFO freelist carved out
// of 64 KiB slabs; frees push the block back onto its class's freelist, so
// steady-state connection setup/teardown performs no heap traffic at all.
// Oversized or over-aligned requests fall through to operator new — the
// arena never rejects a request, it only declines to pool it.
//
// Slabs are never returned to the OS during a scenario (same policy as the
// packet pool): the arena's footprint is the peak working set, reclaimed
// wholesale when the owning net::Context dies. Freelists are LIFO and slabs
// are carved front-to-back, so recycling order — and therefore heap layout
// and perf — is reproducible run to run.
//
// Ownership: ArenaPtr<T> is a unique_ptr whose deleter destroys the object
// and returns its block to the arena, so arena-backed members drop into
// existing std::unique_ptr-shaped code unchanged. The arena must outlive
// every ArenaPtr it issued; net::Context declares its arena first so it is
// destroyed last. The deleter is typed: construct ArenaPtr<T> only for the
// exact allocated type (no base-class erasure), or the returned block would
// be filed under the wrong size class.
//
// Not thread-safe, by design: one arena per Context, one Context per sweep
// cell, parallelism only across cells.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace scidmz::sim {

class Arena;

/// Deleter for arena-backed objects: destroy in place, return the block.
template <typename T>
struct ArenaDeleter {
  Arena* arena = nullptr;
  inline void operator()(T* p) const noexcept;
};

/// unique_ptr over an arena block. Default-constructed (empty) ArenaPtrs
/// carry no arena and are safe to destroy.
template <typename T>
using ArenaPtr = std::unique_ptr<T, ArenaDeleter<T>>;

class Arena {
 public:
  static constexpr std::size_t kMinClassBytes = 64;
  static constexpr std::size_t kMaxClassBytes = 4096;
  static constexpr std::size_t kSlabBytes = 64 * 1024;

  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Construct a T in an arena block. The arena must outlive the result.
  template <typename T, typename... Args>
  [[nodiscard]] ArenaPtr<T> make(Args&&... args) {
    void* mem = allocate(sizeof(T), alignof(T));
    try {
      return ArenaPtr<T>(::new (mem) T(std::forward<Args>(args)...), ArenaDeleter<T>{this});
    } catch (...) {
      deallocate(mem, sizeof(T), alignof(T));
      throw;
    }
  }

  /// Raw block interface, for containers that manage construction
  /// themselves. Pooled when `bytes` fits a size class and `align` is no
  /// stricter than the slab carving guarantees; plain new/delete otherwise.
  [[nodiscard]] void* allocate(std::size_t bytes, std::size_t align) {
    if (bytes > kMaxClassBytes || align > alignof(std::max_align_t)) {
      ++unpooled_live_;
      return ::operator new(bytes, std::align_val_t{align});
    }
    const std::size_t cls = classFor(bytes);
    std::vector<void*>& freelist = free_[cls];
    void* block;
    if (!freelist.empty()) {
      block = freelist.back();
      freelist.pop_back();
    } else {
      block = carve(classBytes(cls));
      // Grow the freelist's capacity here, on the throwing-allowed path: a
      // class's freelist can never hold more blocks than were carved for it,
      // so reserving for the carved count keeps deallocate()'s push_back
      // allocation-free and genuinely noexcept. Geometric growth bounds the
      // reserve cost to amortized O(1) per carve.
      ++carved_[cls];
      if (freelist.capacity() < carved_[cls]) {
        const std::size_t doubled = freelist.capacity() * 2;
        freelist.reserve(doubled > carved_[cls] ? doubled : carved_[cls]);
      }
    }
    ++live_;
    if (live_ > high_water_) high_water_ = live_;
    return block;
  }

  void deallocate(void* p, std::size_t bytes, std::size_t align) noexcept {
    if (p == nullptr) return;
    if (bytes > kMaxClassBytes || align > alignof(std::max_align_t)) {
      --unpooled_live_;
      ::operator delete(p, std::align_val_t{align});
      return;
    }
    // Cannot allocate (and thus cannot throw): allocate() reserved capacity
    // for every block ever carved in this class, and the freelist never
    // holds more than that.
    free_[classFor(bytes)].push_back(p);
    --live_;
  }

  /// Pooled blocks currently handed out.
  [[nodiscard]] std::size_t liveCount() const { return live_; }
  /// Peak simultaneous pooled blocks.
  [[nodiscard]] std::size_t highWater() const { return high_water_; }
  /// Oversized/over-aligned allocations currently live (operator-new path).
  [[nodiscard]] std::size_t unpooledLive() const { return unpooled_live_; }
  /// 64 KiB slabs retained by the arena.
  [[nodiscard]] std::size_t slabCount() const { return slabs_.size(); }

 private:
  // Size classes: 64, 128, 256, 512, 1024, 2048, 4096 bytes.
  static constexpr std::size_t kClasses = 7;

  static constexpr std::size_t classFor(std::size_t bytes) {
    std::size_t cls = 0;
    std::size_t cap = kMinClassBytes;
    while (cap < bytes) {
      cap <<= 1;
      ++cls;
    }
    return cls;
  }
  static constexpr std::size_t classBytes(std::size_t cls) { return kMinClassBytes << cls; }

  /// Carve one block of `bytes` (a power of two >= 64) from the current
  /// slab, starting a new slab when the remainder is too small. Slab bases
  /// are max_align-aligned and offsets are multiples of 64, so every pooled
  /// block satisfies any fundamental alignment (stricter requests take the
  /// operator-new path above).
  void* carve(std::size_t bytes) {
    if (slab_used_ + bytes > kSlabBytes || slabs_.empty()) {
      slabs_.push_back(std::make_unique<std::byte[]>(kSlabBytes));
      slab_used_ = 0;
    }
    void* block = slabs_.back().get() + slab_used_;
    slab_used_ += bytes;
    return block;
  }

  std::vector<std::unique_ptr<std::byte[]>> slabs_;
  std::size_t slab_used_ = 0;
  std::vector<void*> free_[kClasses];
  std::size_t carved_[kClasses] = {};  ///< blocks ever carved, per class
  std::size_t live_ = 0;
  std::size_t high_water_ = 0;
  std::size_t unpooled_live_ = 0;
};

template <typename T>
inline void ArenaDeleter<T>::operator()(T* p) const noexcept {
  if (p == nullptr) return;
  p->~T();
  arena->deallocate(p, sizeof(T), alignof(T));
}

}  // namespace scidmz::sim
