#include "sim/domain.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace scidmz::sim {

ShardedSimulator::ShardedSimulator(std::vector<Simulator*> domains, Duration lookahead)
    : domains_(std::move(domains)), lookahead_(lookahead) {
  if (domains_.empty()) {
    throw std::invalid_argument("ShardedSimulator: at least one domain required");
  }
  for (Simulator* d : domains_) {
    if (d == nullptr) throw std::invalid_argument("ShardedSimulator: null domain");
  }
  if (lookahead_ <= Duration::zero()) {
    throw std::invalid_argument("ShardedSimulator: lookahead must be positive");
  }
  workers_.reserve(domains_.size() - 1);
  for (int d = 1; d < domainCount(); ++d) {
    workers_.emplace_back([this, d] { workerLoop(d); });
  }
}

ShardedSimulator::~ShardedSimulator() {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

std::uint32_t ShardedSimulator::addChannel(int dstDomain, Duration delay) {
  if (dstDomain < 0 || dstDomain >= domainCount()) {
    throw std::invalid_argument("ShardedSimulator: channel destination out of range");
  }
  if (delay < lookahead_) {
    throw std::invalid_argument(
        "ShardedSimulator: channel delay below the lookahead floor");
  }
  if (channels_.size() >= kMaxChannels) {
    throw std::length_error("ShardedSimulator: channel id space exhausted");
  }
  auto ch = std::make_unique<Channel>();
  ch->dstDomain = dstDomain;
  ch->delay = delay;
  channels_.push_back(std::move(ch));
  return static_cast<std::uint32_t>(channels_.size() - 1);
}

void ShardedSimulator::post(std::uint32_t channel, SimTime at, std::function<void()> cb) {
  Channel& ch = *channels_[channel];
  std::lock_guard<std::mutex> lk(ch.mutex);
  const std::uint64_t seq = kBoundaryBand |
                            (static_cast<std::uint64_t>(channel) << kFifoBits) |
                            ch.nextFifo++;
  ch.pending.push_back(Message{at, seq, std::move(cb)});
}

void ShardedSimulator::drainChannels() {
  for (auto& ch : channels_) {
    std::vector<Message> batch;
    {
      std::lock_guard<std::mutex> lk(ch->mutex);
      batch.swap(ch->pending);
    }
    Simulator& dst = *domains_[static_cast<std::size_t>(ch->dstDomain)];
    for (Message& m : batch) {
      dst.restoreSchedule(m.at, m.seq, std::move(m.cb));
    }
  }
}

void ShardedSimulator::runEpoch(SimTime horizon) {
  if (domainCount() == 1) {
    domains_[0]->runBefore(horizon);
    return;
  }
  {
    std::lock_guard<std::mutex> lk(mutex_);
    horizon_ = horizon;
    done_ = 0;
    ++start_gen_;
  }
  cv_.notify_all();
  domains_[0]->runBefore(horizon);
  std::unique_lock<std::mutex> lk(mutex_);
  cv_.wait(lk, [this] { return done_ == domainCount() - 1; });
}

void ShardedSimulator::runUntil(SimTime deadline) {
  // Exclusive horizon one tick past the deadline: runBefore(past) executes
  // every event with time <= deadline, matching Simulator::runUntil.
  const SimTime past = deadline + Duration::nanoseconds(1);
  for (;;) {
    drainChannels();
    SimTime tmin = SimTime::max();
    for (Simulator* d : domains_) tmin = std::min(tmin, d->nextEventTime());
    SimTime horizon = past;
    if (tmin < past && tmin + lookahead_ < past) horizon = tmin + lookahead_;
    runEpoch(horizon);
    if (horizon == past) break;
  }
  // Canonicalize: messages produced in the final epoch arrive at
  // >= tmin + lookahead > deadline and stay pending in their channels.
  for (Simulator* d : domains_) d->advanceClockTo(deadline);
}

std::uint64_t ShardedSimulator::eventsExecuted() const {
  std::uint64_t total = 0;
  for (const Simulator* d : domains_) total += d->eventsExecuted();
  return total;
}

std::uint64_t ShardedSimulator::domainEvents(int domain) const {
  return domains_[static_cast<std::size_t>(domain)]->eventsExecuted();
}

std::size_t ShardedSimulator::pendingChannelMessages() const {
  std::size_t n = 0;
  for (const auto& ch : channels_) n += ch->pending.size();
  return n;
}

void ShardedSimulator::workerLoop(int domain) {
  std::uint64_t seen = 0;
  Simulator& sim = *domains_[static_cast<std::size_t>(domain)];
  for (;;) {
    SimTime horizon = SimTime::zero();
    {
      std::unique_lock<std::mutex> lk(mutex_);
      cv_.wait(lk, [&] { return shutdown_ || start_gen_ != seen; });
      if (shutdown_) return;
      seen = start_gen_;
      horizon = horizon_;
    }
    sim.runBefore(horizon);
    {
      std::lock_guard<std::mutex> lk(mutex_);
      ++done_;
    }
    cv_.notify_all();
  }
}

}  // namespace scidmz::sim
