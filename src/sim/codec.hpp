// Bit-packed serialization seam: the one encoding primitive every stateful
// layer speaks (snapshot/restore, binary flight-recorder export, and the
// ROADMAP's future distributed-sweep wire format).
//
// The encoding follows the utcp bit_buffer idiom (SNIPPETS.md): values are
// appended LSB-first at arbitrary bit offsets, so a bool costs one bit and
// small enums cost exactly their width — no per-field byte padding. On top
// of the raw bit stream sit three conveniences:
//
//   - varints (7-bit groups, LEB128-style) and zigzag for signed values, so
//     counters and timestamps cost bytes proportional to magnitude;
//   - doubles round-trip through std::bit_cast — byte-exact, never printf;
//   - byte-aligned sections (fourcc + u32 byte length) so readers can
//     validate structure, skip unknown sections, and external tools
//     (tools/validate_trace.py) can walk a blob without decoding bodies.
//
// Codec wraps a writer or a reader behind one dual-mode interface: a class
// writes one `serialize(Codec&)` that passes every field through `c.u64(x)`
// etc., and the same function both saves and loads. Restore-only logic
// (re-arming events, resetting containers) branches on `c.writing()`.
//
// Error handling is sticky-fail, not exceptions: a read past the end or a
// section mismatch sets fail() and every subsequent read returns zeros, so
// callers validate once at the end (the snapshot layer refuses the blob).
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "sim/units.hpp"

namespace scidmz::sim {

/// Append-only bit stream (LSB-first within each byte).
class BitWriter {
 public:
  /// Append the low `bits` bits of `value` (0 <= bits <= 64).
  void writeBits(std::uint64_t value, int bits) {
    while (bits > 0) {
      const std::size_t byte = bit_count_ >> 3;
      const int offset = static_cast<int>(bit_count_ & 7);
      if (byte == buf_.size()) buf_.push_back(0);
      const int take = bits < 8 - offset ? bits : 8 - offset;
      const std::uint64_t mask = (std::uint64_t{1} << take) - 1;
      buf_[byte] = static_cast<std::uint8_t>(buf_[byte] | ((value & mask) << offset));
      value >>= take;
      bits -= take;
      bit_count_ += static_cast<std::size_t>(take);
    }
  }

  void writeBool(bool v) { writeBits(v ? 1 : 0, 1); }
  void writeU8(std::uint8_t v) { writeBits(v, 8); }
  void writeU16(std::uint16_t v) { writeBits(v, 16); }
  void writeU32(std::uint32_t v) { writeBits(v, 32); }
  void writeU64(std::uint64_t v) { writeBits(v, 64); }

  /// LEB128-style varint: 7 value bits + 1 continuation bit per group.
  void writeVarint(std::uint64_t v) {
    while (v >= 0x80) {
      writeBits((v & 0x7F) | 0x80, 8);
      v >>= 7;
    }
    writeBits(v, 8);
  }

  /// Zigzag-mapped signed varint (small magnitudes of either sign are cheap).
  void writeZigzag(std::int64_t v) {
    writeVarint((static_cast<std::uint64_t>(v) << 1) ^
                static_cast<std::uint64_t>(v >> 63));
  }

  /// Byte-exact double (bit pattern, never a decimal round trip).
  void writeF64(double v) { writeU64(std::bit_cast<std::uint64_t>(v)); }

  /// Varint length + raw bytes.
  void writeString(const std::string& s) {
    writeVarint(s.size());
    for (const char ch : s) writeU8(static_cast<std::uint8_t>(ch));
  }

  /// Pad with zero bits to the next byte boundary.
  void align() {
    while ((bit_count_ & 7) != 0) writeBits(0, 1);
  }

  /// Byte-aligned raw copy (aligns first).
  void writeRaw(const void* data, std::size_t n) {
    align();
    const auto* p = static_cast<const std::uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
    bit_count_ += n * 8;
  }

  /// Open a byte-aligned section: fourcc + u32 length placeholder. Returns
  /// a cookie for endSection(), which patches the body's byte length.
  std::size_t beginSection(const char (&fourcc)[5]) {
    writeRaw(fourcc, 4);
    writeU32(0);
    return buf_.size();
  }

  void endSection(std::size_t cookie) {
    align();
    const auto length = static_cast<std::uint32_t>(buf_.size() - cookie);
    std::memcpy(buf_.data() + cookie - 4, &length, 4);
  }

  [[nodiscard]] std::size_t bitSize() const { return bit_count_; }
  [[nodiscard]] std::size_t byteSize() const { return buf_.size(); }
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> take() {
    bit_count_ = 0;
    return std::move(buf_);
  }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t bit_count_ = 0;
};

/// Sticky-fail bit stream reader over a borrowed byte range.
class BitReader {
 public:
  BitReader(const std::uint8_t* data, std::size_t sizeBytes)
      : data_(data), bit_size_(sizeBytes * 8) {}

  [[nodiscard]] std::uint64_t readBits(int bits) {
    if (fail_ || pos_ + static_cast<std::size_t>(bits) > bit_size_) {
      fail_ = true;
      return 0;
    }
    std::uint64_t out = 0;
    int got = 0;
    while (got < bits) {
      const std::size_t byte = pos_ >> 3;
      const int offset = static_cast<int>(pos_ & 7);
      const int take = bits - got < 8 - offset ? bits - got : 8 - offset;
      const std::uint64_t mask = (std::uint64_t{1} << take) - 1;
      out |= ((static_cast<std::uint64_t>(data_[byte]) >> offset) & mask)
             << got;
      got += take;
      pos_ += static_cast<std::size_t>(take);
    }
    return out;
  }

  [[nodiscard]] bool readBool() { return readBits(1) != 0; }
  [[nodiscard]] std::uint8_t readU8() { return static_cast<std::uint8_t>(readBits(8)); }
  [[nodiscard]] std::uint16_t readU16() { return static_cast<std::uint16_t>(readBits(16)); }
  [[nodiscard]] std::uint32_t readU32() { return static_cast<std::uint32_t>(readBits(32)); }
  [[nodiscard]] std::uint64_t readU64() { return readBits(64); }

  [[nodiscard]] std::uint64_t readVarint() {
    std::uint64_t out = 0;
    for (int shift = 0; shift < 70; shift += 7) {
      const std::uint64_t group = readBits(8);
      out |= (group & 0x7F) << shift;
      if ((group & 0x80) == 0) return out;
    }
    fail_ = true;  // unterminated varint
    return 0;
  }

  [[nodiscard]] std::int64_t readZigzag() {
    const std::uint64_t z = readVarint();
    return static_cast<std::int64_t>((z >> 1) ^ (0 - (z & 1)));
  }

  [[nodiscard]] double readF64() { return std::bit_cast<double>(readU64()); }

  [[nodiscard]] std::string readString() {
    const std::uint64_t n = readVarint();
    if (fail_ || pos_ + n * 8 > bit_size_) {
      fail_ = true;
      return {};
    }
    std::string s;
    s.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) s.push_back(static_cast<char>(readU8()));
    return s;
  }

  void align() { pos_ = (pos_ + 7) & ~std::size_t{7}; }

  void readRaw(void* out, std::size_t n) {
    align();
    if (fail_ || pos_ + n * 8 > bit_size_) {
      fail_ = true;
      std::memset(out, 0, n);
      return;
    }
    std::memcpy(out, data_ + (pos_ >> 3), n);
    pos_ += n * 8;
  }

  /// Enter a section: align, match the fourcc, return the body length in
  /// bytes. A mismatch sets fail() and returns 0.
  [[nodiscard]] std::uint32_t enterSection(const char (&fourcc)[5]) {
    char got[4];
    readRaw(got, 4);
    if (fail_ || std::memcmp(got, fourcc, 4) != 0) {
      fail_ = true;
      return 0;
    }
    return readU32();
  }

  void skipBytes(std::size_t n) {
    align();
    if (pos_ + n * 8 > bit_size_) {
      fail_ = true;
      return;
    }
    pos_ += n * 8;
  }

  /// Components call this when a decoded value is semantically impossible
  /// (e.g. the snapshot names state the rebuilt scenario lacks); the blob
  /// is then refused like any framing error.
  void markFailed() { fail_ = true; }

  [[nodiscard]] bool fail() const { return fail_; }
  [[nodiscard]] bool ok() const { return !fail_; }
  [[nodiscard]] bool atEnd() const { return ((pos_ + 7) & ~std::size_t{7}) >= bit_size_; }
  [[nodiscard]] std::size_t bitPos() const { return pos_; }

 private:
  const std::uint8_t* data_;
  std::size_t bit_size_;
  std::size_t pos_ = 0;
  bool fail_ = false;
};

/// Dual-mode archive: wraps either a BitWriter or a BitReader so one
/// `serialize(Codec&)` per class handles both directions. Every accessor
/// takes a reference — saved from it in write mode, stored to it in read
/// mode. Restore-only logic branches on writing().
class Codec {
 public:
  explicit Codec(BitWriter& w) : w_(&w) {}
  explicit Codec(BitReader& r) : r_(&r) {}

  [[nodiscard]] bool writing() const { return w_ != nullptr; }
  [[nodiscard]] bool ok() const { return r_ == nullptr || r_->ok(); }

  void b(bool& v) { writing() ? w_->writeBool(v) : void(v = r_->readBool()); }
  void u8(std::uint8_t& v) { writing() ? w_->writeU8(v) : void(v = r_->readU8()); }
  void u16(std::uint16_t& v) { writing() ? w_->writeU16(v) : void(v = r_->readU16()); }
  void u32(std::uint32_t& v) { writing() ? w_->writeU32(v) : void(v = r_->readU32()); }
  void u64(std::uint64_t& v) { writing() ? w_->writeU64(v) : void(v = r_->readU64()); }
  void vu32(std::uint32_t& v) {
    writing() ? w_->writeVarint(v) : void(v = static_cast<std::uint32_t>(r_->readVarint()));
  }
  void vu64(std::uint64_t& v) { writing() ? w_->writeVarint(v) : void(v = r_->readVarint()); }
  void vi64(std::int64_t& v) { writing() ? w_->writeZigzag(v) : void(v = r_->readZigzag()); }
  void f64(double& v) { writing() ? w_->writeF64(v) : void(v = r_->readF64()); }
  void str(std::string& v) { writing() ? w_->writeString(v) : void(v = r_->readString()); }

  /// size_t through a varint (container sizes).
  void size(std::size_t& v) {
    std::uint64_t wide = v;
    vu64(wide);
    v = static_cast<std::size_t>(wide);
  }

  /// Integer of any width through a varint (counters, enums as integers).
  template <typename T>
  void vint(T& v) {
    std::uint64_t wide = static_cast<std::uint64_t>(v);
    vu64(wide);
    v = static_cast<T>(wide);
  }

  [[nodiscard]] BitWriter& writer() { return *w_; }
  [[nodiscard]] BitReader& reader() { return *r_; }

 private:
  BitWriter* w_ = nullptr;
  BitReader* r_ = nullptr;
};

// Unit-type codecs: zigzag/varint encoded, so near-now timestamps and
// modest byte counts cost a few bytes instead of eight.
inline void codecTime(Codec& c, SimTime& t) {
  std::int64_t ns = t.ns();
  c.vi64(ns);
  if (!c.writing()) t = SimTime::fromNs(ns);
}

inline void codecDuration(Codec& c, Duration& d) {
  std::int64_t ns = d.ns();
  c.vi64(ns);
  if (!c.writing()) d = Duration::nanoseconds(ns);
}

inline void codecSize(Codec& c, DataSize& s) {
  std::uint64_t bytes = s.byteCount();
  c.vu64(bytes);
  if (!c.writing()) s = DataSize::bytes(bytes);
}

inline void codecRate(Codec& c, DataRate& r) {
  std::uint64_t bps = r.bps();
  c.vu64(bps);
  if (!c.writing()) r = DataRate::bitsPerSecond(bps);
}

/// Write an ASCII magic header ("scidmz.snap.v1" etc.), newline-terminated
/// so the format is identifiable with `head -c 16`.
void writeMagic(BitWriter& w, const char* magic);
/// Consume and verify a magic header; false on mismatch or truncation.
[[nodiscard]] bool readMagic(BitReader& r, const char* magic);

}  // namespace scidmz::sim
