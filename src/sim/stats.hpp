// Lightweight statistics primitives used by links, queues, TCP and the
// perfSONAR measurement archive.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "sim/codec.hpp"
#include "sim/units.hpp"

namespace scidmz::sim {

/// Streaming mean/variance/min/max (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }

  void reset() { *this = RunningStats{}; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Time-weighted average of a piecewise-constant signal (e.g. queue depth).
class TimeWeightedMean {
 public:
  void update(SimTime now, double newValue) {
    if (has_) {
      const double dt = (now - last_t_).toSeconds();
      if (dt > 0) {
        area_ += value_ * dt;
        span_ += dt;
      }
    }
    value_ = newValue;
    last_t_ = now;
    has_ = true;
  }

  /// Mean over [first update, now]; call with the current time to close the
  /// final segment.
  [[nodiscard]] double mean(SimTime now) const {
    double area = area_;
    double span = span_;
    if (has_) {
      const double dt = (now - last_t_).toSeconds();
      if (dt > 0) {
        area += value_ * dt;
        span += dt;
      }
    }
    return span > 0 ? area / span : value_;
  }

  [[nodiscard]] double current() const { return value_; }

  /// Snapshot/restore: doubles round-trip bit-exact through the codec, so
  /// a restored mean continues accumulating byte-identically.
  void serialize(Codec& c) {
    c.b(has_);
    c.f64(value_);
    c.f64(area_);
    c.f64(span_);
    codecTime(c, last_t_);
  }

 private:
  bool has_ = false;
  double value_ = 0.0;
  double area_ = 0.0;
  double span_ = 0.0;
  SimTime last_t_ = SimTime::zero();
};

/// Fixed-boundary histogram with under/overflow buckets.
class Histogram {
 public:
  /// `bounds` must be strictly increasing; bucket i holds values in
  /// [bounds[i-1], bounds[i]) with bucket 0 = (-inf, bounds[0]).
  explicit Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
    counts_.assign(bounds_.size() + 1, 0);
  }

  void add(double x) {
    const auto it = std::upper_bound(bounds_.begin(), bounds_.end(), x);
    ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
    ++total_;
  }

  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const { return counts_; }
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }

  /// Approximate quantile (0..1) using bucket upper bounds.
  [[nodiscard]] double quantile(double q) const {
    if (total_ == 0) return 0.0;
    const auto target = static_cast<std::uint64_t>(q * static_cast<double>(total_));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      seen += counts_[i];
      if (seen > target) {
        if (i >= bounds_.size()) return bounds_.empty() ? 0.0 : bounds_.back();
        return bounds_[i];
      }
    }
    return bounds_.empty() ? 0.0 : bounds_.back();
  }

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Counter of bytes observed over time; reports average throughput and can
/// be sampled into fixed intervals for utilization plots (Figure 8 style).
class ThroughputMeter {
 public:
  void add(SimTime now, DataSize bytes) {
    if (!started_) {
      start_ = now;
      started_ = true;
    }
    last_ = now;
    total_ += bytes;
  }

  [[nodiscard]] DataSize totalBytes() const { return total_; }

  /// Average rate between `from` and `to`.
  [[nodiscard]] DataRate averageRate(SimTime from, SimTime to) const {
    const double secs = (to - from).toSeconds();
    if (secs <= 0) return DataRate::zero();
    return DataRate::bitsPerSecond(
        static_cast<std::uint64_t>(static_cast<double>(total_.bitCount()) / secs));
  }

  /// Average rate over the observed span.
  [[nodiscard]] DataRate averageRate() const {
    if (!started_) return DataRate::zero();
    return averageRate(start_, last_);
  }

  void reset() { *this = ThroughputMeter{}; }

 private:
  bool started_ = false;
  SimTime start_ = SimTime::zero();
  SimTime last_ = SimTime::zero();
  DataSize total_ = DataSize::zero();
};

}  // namespace scidmz::sim
