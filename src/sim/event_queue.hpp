// Discrete-event scheduler core.
//
// Events are (time, sequence) keys served from a 4-ary min-heap, with the
// insertion sequence as a tie-break so simultaneous events fire in the order
// they were scheduled — a requirement for deterministic replay. Callbacks
// live in a side slot table with stable addresses, so heap sifts move
// 24-byte keys instead of whole closures and the schedule path performs no
// allocation for common capture sizes (see sim/callback.hpp).
//
// A hierarchical timing wheel (sim/timing_wheel.hpp) fronts the heap: the
// dominant periodic and far-future timers — probe cadences, pacing ticks,
// RTOs, telemetry sampling — park in O(1) wheel buckets and only enter the
// heap when their bucket cascades, so the heap stays shallow (roughly one
// bucket's worth of events plus the sub-microsecond datapath events, which
// bypass the wheel entirely). Entries keep their original (time, sequence)
// keys through the cascade, and the queue cascades until the heap front is
// provably the global minimum, so pop order — and therefore every golden
// table — is byte-identical to a heap-only queue.
//
// Cancellation is an O(1) tombstone write through a slot/generation handle:
// the EventId encodes (slot, generation), a fired or cancelled event bumps
// its slot's generation, and any stale handle is rejected exactly — no
// auxiliary cancelled-set, no drift in the live-event accounting. Tombstoned
// entries are reclaimed when they surface or cascade, or in bulk — across
// the heap AND the wheel buckets — when they outnumber live entries.
//
// Not thread-safe by design: the simulator is a single logical thread of
// control. Parallelism lives at the sweep level (sim/sweep.hpp), where
// independent Simulator instances run one per scenario cell.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/callback.hpp"
#include "sim/timing_wheel.hpp"
#include "sim/units.hpp"

namespace scidmz::sim {

/// Opaque handle to a scheduled event, usable for cancellation.
struct EventId {
  std::uint64_t value = 0;
  constexpr bool operator==(const EventId&) const = default;
  [[nodiscard]] constexpr bool valid() const { return value != 0; }
};

/// A pending event's ordering key, exposed for snapshot/restore: the
/// (time, sequence) pair is the event's identity across a serialization
/// boundary — restoring with the original key reproduces pop order exactly,
/// no matter what order components re-arm in.
struct EventKey {
  SimTime at;
  std::uint64_t seq = 0;
  bool valid = false;
};

/// Time-ordered event queue.
class EventQueue {
 public:
  /// Sized so the data-path closures — a `this` (or reference) plus a
  /// 16-byte net::PacketRef handle, with room to spare — stay inline. Since
  /// the zero-copy refactor no hot callback captures a Packet by value, so
  /// slots shrank from 192 to 64 bytes (3x more slots per cache line).
  using Callback = SmallCallback<64>;

  /// Schedule `cb` at absolute time `at`. Returns a cancellation handle.
  /// Templated so the closure is constructed directly in its slot.
  template <typename F>
  EventId schedule(SimTime at, F&& cb) {
    const std::uint32_t slot = acquireSlot(std::forward<F>(cb));
    const HeapEntry entry{at, ++next_seq_, slot};
    if (!wheel_.park(entry)) heapPush(entry);
    ++live_;
    return EventId{pack(slot, slots_[slot].generation)};
  }

  /// Cancel a previously scheduled event. Cancelling an already-fired,
  /// already-cancelled, or invalid handle is a harmless no-op: the slot's
  /// generation no longer matches, so accounting is untouched.
  void cancel(EventId id) {
    if (!id.valid()) return;
    const std::uint32_t slot = unpackSlot(id.value);
    if (slot >= slots_.size()) return;
    Slot& s = slots_[slot];
    if (!s.active || s.tombstone || s.generation != unpackGeneration(id.value)) return;
    s.tombstone = true;
    s.cb.reset();  // release captured resources eagerly
    --live_;
    ++tombstones_;
    if (tombstones_ > 64 && tombstones_ > live_) compact();
  }

  [[nodiscard]] bool empty() const { return live_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Time of the next live event; SimTime::max() when empty.
  [[nodiscard]] SimTime nextTime() {
    ensureFront();
    return heap_.empty() ? SimTime::max() : heap_.front().at;
  }

  /// Pop the next live event. Precondition: !empty().
  struct Popped {
    SimTime at;
    Callback cb;
  };
  Popped pop() {
    ensureFront();
    const HeapEntry top = heap_.front();
    heapPopFront();
    // Keep an idle wheel's base abreast of simulated time, so near-now
    // schedules during heap-only stretches are rejected by park() instead
    // of landing in a spuriously coarse bucket. No-op unless empty.
    wheel_.advanceBase(top.at.ns());
    Popped out{top.at, std::move(slots_[top.slot].cb)};
    releaseSlot(top.slot);
    --live_;
    return out;
  }

  /// Drop everything (used when tearing a simulation down early). Slots are
  /// released, not destroyed, so handles issued before clear() stay stale.
  void clear() {
    for (const HeapEntry& e : heap_) {
      if (slots_[e.slot].tombstone) --tombstones_;
      releaseSlot(e.slot);
    }
    wheel_.drain([this](const HeapEntry& e) {
      if (slots_[e.slot].tombstone) --tombstones_;
      releaseSlot(e.slot);
    });
    heap_.clear();
    live_ = 0;
  }

  [[nodiscard]] std::uint64_t scheduledTotal() const { return next_seq_; }

  /// The (time, sequence) key of a pending event, for snapshotting. Returns
  /// an invalid key for fired/cancelled/stale handles. O(pending) — scans
  /// the heap and the wheel buckets; snapshots are rare, so the slot table
  /// carries no extra per-event bytes on the schedule hot path.
  [[nodiscard]] EventKey eventKey(EventId id) const {
    if (!id.valid()) return {};
    const std::uint32_t slot = unpackSlot(id.value);
    if (slot >= slots_.size()) return {};
    const Slot& s = slots_[slot];
    if (!s.active || s.tombstone || s.generation != unpackGeneration(id.value)) return {};
    for (const HeapEntry& e : heap_) {
      if (e.slot == slot) return {e.at, e.seq, true};
    }
    EventKey found;
    wheel_.forEach([&](const HeapEntry& e) {
      if (e.slot == slot) found = {e.at, e.seq, true};
    });
    return found;
  }

  /// Restore-side twin of schedule(): re-arm a callback under its original
  /// (time, sequence) key from a snapshot. Does not advance next_seq_ — the
  /// sequence was already allocated before the snapshot; beginRestore()
  /// re-seeds the counter so post-restore schedules continue the original
  /// numbering. Pop order is strictly (at, seq), so the order components
  /// re-arm in is irrelevant.
  template <typename F>
  EventId restoreSchedule(SimTime at, std::uint64_t seq, F&& cb) {
    const std::uint32_t slot = acquireSlot(std::forward<F>(cb));
    const HeapEntry entry{at, seq, slot};
    if (!wheel_.park(entry)) heapPush(entry);
    ++live_;
    return EventId{pack(slot, slots_[slot].generation)};
  }

  /// Reset the queue for a restore: drop every pending event (releasing
  /// captured resources — pool handles die into a still-alive pool) and
  /// re-seed the sequence counter so restored and post-restore events share
  /// one numbering with the snapshotted run. The wheel base catches up to
  /// the restored clock; the wheel itself needs no restoration (placement
  /// is a performance detail — ensureFront() proves pop order regardless).
  void beginRestore(SimTime now, std::uint64_t nextSeq) {
    clear();
    next_seq_ = nextSeq;
    wheel_.advanceBase(now.ns());
  }

  /// Entries currently tombstoned, in the heap or parked in wheel buckets
  /// (observability/tests).
  [[nodiscard]] std::size_t tombstoneCount() const { return tombstones_; }

  /// Entries currently parked in wheel buckets rather than the heap
  /// (observability/tests/benches).
  [[nodiscard]] std::size_t parkedCount() const { return wheel_.size(); }

 private:
  struct HeapEntry {
    SimTime at;
    std::uint64_t seq = 0;
    std::uint32_t slot = 0;
  };
  struct Slot {
    Callback cb;
    std::uint32_t generation = 0;
    bool active = false;     ///< Owned by a heap entry (live or tombstoned).
    bool tombstone = false;  ///< Cancelled; reclaimed when it surfaces.
  };

  // EventId layout: (slot + 1) in the high 32 bits keeps value != 0.
  static constexpr std::uint64_t pack(std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<std::uint64_t>(slot) + 1) << 32 | gen;
  }
  static constexpr std::uint32_t unpackSlot(std::uint64_t v) {
    return static_cast<std::uint32_t>(v >> 32) - 1;
  }
  static constexpr std::uint32_t unpackGeneration(std::uint64_t v) {
    return static_cast<std::uint32_t>(v);
  }

  template <typename F>
  std::uint32_t acquireSlot(F&& cb) {
    std::uint32_t slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
    } else {
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    }
    Slot& s = slots_[slot];
    s.cb.assign(std::forward<F>(cb));
    s.active = true;
    s.tombstone = false;
    return slot;
  }

  void releaseSlot(std::uint32_t slot) {
    Slot& s = slots_[slot];
    s.cb.reset();
    s.active = false;
    s.tombstone = false;
    ++s.generation;  // invalidate outstanding handles
    free_.push_back(slot);
  }

  void skipTombstones() {
    while (!heap_.empty() && slots_[heap_.front().slot].tombstone) {
      const std::uint32_t slot = heap_.front().slot;
      heapPopFront();
      releaseSlot(slot);
      --tombstones_;
    }
  }

  /// Cascade wheel buckets into the heap until the heap front is provably
  /// the global minimum: every parked entry's time is bounded below by its
  /// bucket's start, so once heap_min is *strictly* before the earliest
  /// bucket start no wheel entry can precede it. The comparison must be
  /// strict: on an exact tie (heap_min lands on a bucket-aligned time) the
  /// bucket may hold an earlier-scheduled entry at that same timestamp, and
  /// only cascading it into the heap lets the (time, seq) tie-break decide.
  /// Tombstones met during a cascade are reclaimed instead of heap-pushed.
  void ensureFront() {
    for (;;) {
      skipTombstones();
      if (wheel_.empty()) return;
      const std::int64_t heapMin =
          heap_.empty() ? SimTime::max().ns() : heap_.front().at.ns();
      if (heapMin < wheel_.horizonStartNs()) return;
      wheel_.cascadeEarliest([this](const HeapEntry& e) {
        if (slots_[e.slot].tombstone) {
          releaseSlot(e.slot);
          --tombstones_;
        } else {
          heapPush(e);
        }
      });
    }
  }

  /// Rebuild the heap — and purge the wheel buckets — without tombstoned
  /// entries, bounding dead-entry state for workloads that cancel most of
  /// what they schedule (dense periodic schedules torn down mid-run).
  void compact() {
    std::size_t kept = 0;
    for (const HeapEntry& e : heap_) {
      if (slots_[e.slot].tombstone) {
        releaseSlot(e.slot);
        --tombstones_;
      } else {
        heap_[kept++] = e;
      }
    }
    heap_.resize(kept);
    if (kept > 1) {
      for (std::size_t i = (kept - 2) / kArity + 1; i-- > 0;) siftDown(i, heap_[i]);
    }
    wheel_.removeIf(
        [this](const HeapEntry& e) { return slots_[e.slot].tombstone; },
        [this](const HeapEntry& e) {
          releaseSlot(e.slot);
          --tombstones_;
        });
  }

  // --- 4-ary min-heap over (at, seq); shallower than binary, and the four
  // children share a cache line's worth of 24-byte entries. ---
  static constexpr std::size_t kArity = 4;

  static bool before(const HeapEntry& a, const HeapEntry& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }

  // Sifts move a hole and place the element once instead of swapping
  // 24-byte entries at every level.
  void heapPush(HeapEntry e) {
    std::size_t i = heap_.size();
    heap_.push_back(e);
    while (i > 0) {
      const std::size_t parent = (i - 1) / kArity;
      if (!before(e, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }

  void heapPopFront() {
    const HeapEntry tail = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) siftDown(0, tail);
  }

  void siftDown(std::size_t i, HeapEntry e) {
    const std::size_t n = heap_.size();
    for (;;) {
      const std::size_t first = i * kArity + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t last = first + kArity < n ? first + kArity : n;
      for (std::size_t c = first + 1; c < last; ++c) {
        if (before(heap_[c], heap_[best])) best = c;
      }
      if (!before(heap_[best], e)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = e;
  }

  std::vector<HeapEntry> heap_;
  TimingWheel<HeapEntry> wheel_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;
  std::size_t live_ = 0;
  std::size_t tombstones_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace scidmz::sim
