// Discrete-event scheduler core.
//
// Events are (time, sequence, callback) tuples ordered by time with the
// insertion sequence as a tie-break, so simultaneous events fire in the
// order they were scheduled — a requirement for deterministic replay.
// Cancellation is lazy: cancelled ids are remembered and skipped on pop.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/units.hpp"

namespace scidmz::sim {

/// Opaque handle to a scheduled event, usable for cancellation.
struct EventId {
  std::uint64_t value = 0;
  constexpr bool operator==(const EventId&) const = default;
  [[nodiscard]] constexpr bool valid() const { return value != 0; }
};

/// Time-ordered event queue. Not thread-safe by design: the simulator is a
/// single logical thread of control (parallelism lives at the sweep level,
/// where independent Simulator instances run per scenario).
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedule `cb` at absolute time `at`. Returns a cancellation handle.
  EventId schedule(SimTime at, Callback cb) {
    const EventId id{++next_seq_};
    heap_.push(Entry{at, id.value, std::move(cb)});
    ++live_;
    return id;
  }

  /// Cancel a previously scheduled event. Cancelling an already-fired or
  /// already-cancelled event is a harmless no-op.
  void cancel(EventId id) {
    if (!id.valid()) return;
    if (cancelled_.insert(id.value).second && live_ > 0) --live_;
  }

  [[nodiscard]] bool empty() const { return live_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Time of the next live event; SimTime::max() when empty.
  [[nodiscard]] SimTime nextTime() {
    skipCancelled();
    return heap_.empty() ? SimTime::max() : heap_.top().at;
  }

  /// Pop the next live event. Precondition: !empty().
  struct Popped {
    SimTime at;
    Callback cb;
  };
  Popped pop() {
    skipCancelled();
    Entry top = std::move(const_cast<Entry&>(heap_.top()));
    heap_.pop();
    --live_;
    return Popped{top.at, std::move(top.cb)};
  }

  /// Drop everything (used when tearing a simulation down early).
  void clear() {
    heap_ = {};
    cancelled_.clear();
    live_ = 0;
  }

  [[nodiscard]] std::uint64_t scheduledTotal() const { return next_seq_; }

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq = 0;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  void skipCancelled() {
    while (!heap_.empty()) {
      auto it = cancelled_.find(heap_.top().seq);
      if (it == cancelled_.end()) return;
      cancelled_.erase(it);
      heap_.pop();
    }
  }

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<std::uint64_t> cancelled_;
  std::size_t live_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace scidmz::sim
