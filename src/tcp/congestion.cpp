#include "tcp/congestion.hpp"

#include "tcp/cubic.hpp"
#include "tcp/htcp.hpp"
#include "tcp/reno.hpp"

namespace scidmz::tcp {

std::unique_ptr<CongestionControl> makeCongestionControl(CcAlgorithm algorithm) {
  switch (algorithm) {
    case CcAlgorithm::kReno: return std::make_unique<RenoCc>();
    case CcAlgorithm::kCubic: return std::make_unique<CubicCc>();
    case CcAlgorithm::kHtcp: return std::make_unique<HtcpCc>();
  }
  return std::make_unique<RenoCc>();
}

}  // namespace scidmz::tcp
