// CUBIC congestion control (RFC 8312, simplified): window growth follows a
// cubic function of time since the last loss, independent of RTT, with a
// TCP-friendly region so it never underperforms Reno.
#pragma once

#include "tcp/congestion.hpp"

namespace scidmz::tcp {

class CubicCc final : public CongestionControl {
 public:
  void onAckedBytes(CcState& state, std::uint64_t ackedBytes, sim::Duration srtt,
                    sim::SimTime now) override;
  void onPacketLoss(CcState& state, sim::SimTime now) override;
  void onRto(CcState& state, sim::SimTime now) override;
  void serializeState(sim::Codec& c) override {
    c.f64(w_max_);
    sim::codecTime(c, epoch_start_);
    c.b(in_epoch_);
  }
  [[nodiscard]] std::string_view name() const override { return "cubic"; }

 private:
  static constexpr double kBeta = 0.7;   // multiplicative decrease
  static constexpr double kC = 0.4;      // cubic scaling constant (segments/s^3)

  double w_max_ = 0.0;                   // window (segments) at last loss
  sim::SimTime epoch_start_;             // start of the current growth epoch
  bool in_epoch_ = false;
};

}  // namespace scidmz::tcp
