// Pluggable congestion control.
//
// Figure 1 of the paper compares measured TCP-Reno and TCP-Hamilton against
// the Mathis bound; we provide both plus CUBIC (the Linux default on DTNs).
#pragma once

#include <algorithm>
#include <memory>
#include <string_view>

#include "sim/codec.hpp"
#include "sim/units.hpp"

namespace scidmz::tcp {

enum class CcAlgorithm { kReno, kCubic, kHtcp };

[[nodiscard]] constexpr std::string_view toString(CcAlgorithm a) {
  switch (a) {
    case CcAlgorithm::kReno: return "reno";
    case CcAlgorithm::kCubic: return "cubic";
    case CcAlgorithm::kHtcp: return "htcp";
  }
  return "?";
}

/// Congestion window state shared between the connection and its CC module.
/// Windows are in bytes (doubles, so sub-MSS growth per ACK accumulates).
struct CcState {
  double cwnd = 0;
  double ssthresh = 0;
  sim::DataSize mss = sim::DataSize::bytes(1460);

  [[nodiscard]] bool inSlowStart() const { return cwnd < ssthresh; }
};

/// Congestion control policy. The connection calls these hooks; the module
/// adjusts cwnd/ssthresh. Fast-recovery inflation/deflation mechanics stay
/// in the connection (they are CC-independent NewReno plumbing).
class CongestionControl {
 public:
  virtual ~CongestionControl() = default;

  /// Called per cumulative ACK that advances snd_una.
  virtual void onAckedBytes(CcState& state, std::uint64_t ackedBytes, sim::Duration srtt,
                            sim::SimTime now) = 0;

  /// Loss detected by triple duplicate ACK: set ssthresh (and cwnd to the
  /// post-backoff value); the connection then applies recovery inflation.
  virtual void onPacketLoss(CcState& state, sim::SimTime now) = 0;

  /// Retransmission timeout: collapse to one segment.
  virtual void onRto(CcState& state, sim::SimTime now) {
    (void)now;
    state.ssthresh = std::max(state.cwnd / 2.0, 2.0 * static_cast<double>(state.mss.byteCount()));
    state.cwnd = static_cast<double>(state.mss.byteCount());
  }

  /// Fresh RTT sample (for delay-adaptive algorithms like H-TCP's beta).
  virtual void onRttSample(sim::Duration rtt) { (void)rtt; }

  /// Snapshot/restore of algorithm-internal state (loss epochs, RTT range).
  /// CcState itself is serialized by the connection; stateless algorithms
  /// inherit the no-op.
  virtual void serializeState(sim::Codec& c) { (void)c; }

  [[nodiscard]] virtual std::string_view name() const = 0;
};

[[nodiscard]] std::unique_ptr<CongestionControl> makeCongestionControl(CcAlgorithm algorithm);

}  // namespace scidmz::tcp
