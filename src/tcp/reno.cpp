#include "tcp/reno.hpp"

namespace scidmz::tcp {

void RenoCc::onAckedBytes(CcState& state, std::uint64_t ackedBytes, sim::Duration srtt,
                          sim::SimTime now) {
  (void)srtt;
  (void)now;
  const double mss = static_cast<double>(state.mss.byteCount());
  if (state.inSlowStart()) {
    // Exponential growth: one MSS per ACKed MSS, capped per RFC 3465.
    state.cwnd += std::min(static_cast<double>(ackedBytes), mss);
  } else {
    // Additive increase: ~1 MSS per RTT, apportioned per ACK.
    state.cwnd += mss * mss / state.cwnd;
  }
}

void RenoCc::onPacketLoss(CcState& state, sim::SimTime now) {
  (void)now;
  const double mss = static_cast<double>(state.mss.byteCount());
  state.ssthresh = std::max(state.cwnd / 2.0, 2.0 * mss);
  state.cwnd = state.ssthresh;
}

}  // namespace scidmz::tcp
