#include "tcp/cubic.hpp"

#include <cmath>

namespace scidmz::tcp {

void CubicCc::onAckedBytes(CcState& state, std::uint64_t ackedBytes, sim::Duration srtt,
                           sim::SimTime now) {
  const double mss = static_cast<double>(state.mss.byteCount());
  if (state.inSlowStart()) {
    state.cwnd += std::min(static_cast<double>(ackedBytes), mss);
    return;
  }
  if (!in_epoch_) {
    in_epoch_ = true;
    epoch_start_ = now;
    if (w_max_ <= 0.0) w_max_ = state.cwnd / mss;
  }
  const double wmax = w_max_;
  const double k = std::cbrt(wmax * (1.0 - kBeta) / kC);
  const double t = (now - epoch_start_).toSeconds() + srtt.toSeconds();
  const double target = kC * (t - k) * (t - k) * (t - k) + wmax;  // segments

  // TCP-friendly region: the window Reno would have reached in this epoch.
  const double elapsed = (now - epoch_start_).toSeconds();
  const double rtt = std::max(srtt.toSeconds(), 1e-6);
  const double w_reno = wmax * kBeta + 3.0 * (1.0 - kBeta) / (1.0 + kBeta) * (elapsed / rtt);

  const double cwndSeg = state.cwnd / mss;
  const double goal = std::max(target, w_reno);
  if (goal > cwndSeg) {
    // Spread the climb to `goal` over roughly one RTT of ACKs.
    state.cwnd += (goal - cwndSeg) / cwndSeg * mss;
  } else {
    // Stay almost flat in the concave plateau.
    state.cwnd += mss / (100.0 * cwndSeg);
  }
}

void CubicCc::onPacketLoss(CcState& state, sim::SimTime now) {
  (void)now;
  const double mss = static_cast<double>(state.mss.byteCount());
  const double cwndSeg = state.cwnd / mss;
  // Fast convergence: release bandwidth faster when the window shrank.
  w_max_ = cwndSeg < w_max_ ? cwndSeg * (1.0 + kBeta) / 2.0 : cwndSeg;
  state.ssthresh = std::max(state.cwnd * kBeta, 2.0 * mss);
  state.cwnd = state.ssthresh;
  in_epoch_ = false;
}

void CubicCc::onRto(CcState& state, sim::SimTime now) {
  CongestionControl::onRto(state, now);
  in_epoch_ = false;
  w_max_ = 0.0;
}

}  // namespace scidmz::tcp
