// H-TCP ("TCP-Hamilton", Leith & Shorten 2004): the high-BDP algorithm
// measured in Figure 1 of the paper. The additive-increase factor grows
// with the time elapsed since the last congestion event, so large windows
// recover far faster than Reno's one-MSS-per-RTT; the backoff factor
// adapts to the observed RTT range.
#pragma once

#include "tcp/congestion.hpp"

namespace scidmz::tcp {

class HtcpCc final : public CongestionControl {
 public:
  void onAckedBytes(CcState& state, std::uint64_t ackedBytes, sim::Duration srtt,
                    sim::SimTime now) override;
  void onPacketLoss(CcState& state, sim::SimTime now) override;
  void onRto(CcState& state, sim::SimTime now) override;
  void onRttSample(sim::Duration rtt) override;
  void serializeState(sim::Codec& c) override {
    sim::codecTime(c, last_loss_);
    c.b(had_loss_);
    c.f64(rtt_min_s_);
    c.f64(rtt_max_s_);
  }
  [[nodiscard]] std::string_view name() const override { return "htcp"; }

 private:
  [[nodiscard]] double alpha(sim::SimTime now) const;

  static constexpr double kDeltaL = 1.0;     // seconds of Reno-compatible regime
  static constexpr double kBetaMin = 0.5;
  static constexpr double kBetaMax = 0.8;

  sim::SimTime last_loss_;
  bool had_loss_ = false;
  double rtt_min_s_ = 1e9;
  double rtt_max_s_ = 0.0;
};

}  // namespace scidmz::tcp
