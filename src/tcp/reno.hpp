// TCP Reno congestion avoidance (RFC 5681): slow start doubling, +1 MSS per
// RTT in congestion avoidance, halve on loss.
#pragma once

#include "tcp/congestion.hpp"

namespace scidmz::tcp {

class RenoCc final : public CongestionControl {
 public:
  void onAckedBytes(CcState& state, std::uint64_t ackedBytes, sim::Duration srtt,
                    sim::SimTime now) override;
  void onPacketLoss(CcState& state, sim::SimTime now) override;
  [[nodiscard]] std::string_view name() const override { return "reno"; }
};

}  // namespace scidmz::tcp
