#include "tcp/connection.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <tuple>
#include <vector>

#include "net/codec.hpp"
#include "net/trace.hpp"

namespace scidmz::tcp {

namespace {

/// Smallest shift s in [0, 14] such that (buf >> s) fits the 16-bit field.
std::uint8_t scaleFor(sim::DataSize rcvBuf) {
  std::uint8_t s = 0;
  std::uint64_t win = rcvBuf.byteCount();
  while (s < 14 && (win >> s) > 65535) ++s;
  return s;
}

/// Disjoint sorted sequence-range map (SACK scoreboard, reassembly buffer).
void codecSeqMap(sim::Codec& c, std::map<std::uint64_t, std::uint64_t>& m) {
  if (c.writing()) {
    std::uint64_t n = m.size();
    c.vu64(n);
    for (auto& [start, end] : m) {
      std::uint64_t s = start;
      std::uint64_t e = end;
      c.vu64(s);
      c.vu64(e);
    }
  } else {
    m.clear();
    std::uint64_t n = 0;
    c.vu64(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      std::uint64_t s = 0;
      std::uint64_t e = 0;
      c.vu64(s);
      c.vu64(e);
      m.emplace(s, e);
    }
  }
}

[[nodiscard]] auto flowKeyTuple(const net::FlowKey& k) {
  return std::make_tuple(k.src.value(), k.dst.value(), k.srcPort, k.dstPort,
                         static_cast<int>(k.proto));
}

}  // namespace

TcpConnection::TcpConnection(net::Host& host, net::Address remote, std::uint16_t remotePort,
                             TcpConfig config)
    : host_(host),
      config_(config),
      hot_(host.ctx().extension<FlowHotTable>()),
      hot_row_(hot_.acquire()),
      rto_(config.initialRto) {
  client_side_ = true;
  flow_ = net::FlowKey{host_.address(), remote, host_.allocatePort(), remotePort,
                       net::Protocol::kTcp};
  host_.bind(net::Protocol::kTcp, flow_.srcPort, *this);
  bound_port_ = true;
  cc_ = makeCongestionControl(config_.algorithm);
  mss_ = host_.mss();
  hot_.cwnd(hot_row_) = static_cast<double>(mss_.byteCount()) * config_.initialWindowSegments;
  hot_.ssthresh(hot_row_) = 1e18;
  rcv_wscale_ = config_.windowScaling ? scaleFor(config_.rcvBuf) : 0;
}

TcpConnection::TcpConnection(net::Host& host, const net::Packet& syn, TcpConfig config)
    : host_(host),
      config_(config),
      hot_(host.ctx().extension<FlowHotTable>()),
      hot_row_(hot_.acquire()),
      rto_(config.initialRto) {
  client_side_ = false;
  flow_ = syn.flow.reversed();
  cc_ = makeCongestionControl(config_.algorithm);
  mss_ = host_.mss();
  hot_.cwnd(hot_row_) = static_cast<double>(mss_.byteCount()) * config_.initialWindowSegments;
  hot_.ssthresh(hot_row_) = 1e18;

  const auto& header = syn.tcp();
  if (header.windowScalePresent && config_.windowScaling) {
    scaling_ok_ = true;
    snd_wscale_ = header.windowScale;
    rcv_wscale_ = scaleFor(config_.rcvBuf);
  } else {
    scaling_ok_ = false;
    snd_wscale_ = 0;
    rcv_wscale_ = 0;
  }
  peer_wnd_ = header.windowField;  // SYN windows are never scaled
  state_ = State::kSynReceived;
  sendSynAck();
  armRto();
}

TcpConnection::TcpConnection(net::Host& host, net::FlowKey flow, TcpConfig config, RestoreTag)
    : host_(host),
      config_(config),
      hot_(host.ctx().extension<FlowHotTable>()),
      hot_row_(hot_.acquire()),
      rto_(config.initialRto) {
  client_side_ = false;
  flow_ = flow;
  cc_ = makeCongestionControl(config_.algorithm);
  mss_ = host_.mss();
}

TcpConnection::~TcpConnection() {
  if (tracer_ != nullptr) {
    const auto now = host_.ctx().now();
    if (episode_span_.valid()) tracer_->end(episode_span_, now);
    if (phase_span_.valid()) tracer_->end(phase_span_, now);
  }
  cancelRto();
  if (pace_timer_.valid()) {
    host_.ctx().sim().cancel(pace_timer_);
    pace_timer_ = sim::EventId{};
  }
  if (tel_init_) {
    auto& tel = host_.ctx().telemetry();
    for (const auto id : tel_samplers_) tel.removeSampler(id);
  }
  if (bound_port_) host_.unbind(net::Protocol::kTcp, flow_.srcPort);
  hot_.release(hot_row_);
}

void TcpConnection::start() {
  if (tracer_ != nullptr) traceSetPhase(TracePhase::kHandshake, host_.ctx().now());
  state_ = State::kSynSent;
  sendSyn();
  armRto();
}

void TcpConnection::setTrace(telemetry::Tracer* tracer, telemetry::SpanId parent, int stream) {
  if (tracer == nullptr || !tracer->enabled()) return;
  tracer_ = tracer;
  trace_parent_ = parent;
  trace_stream_ = stream;
}

void TcpConnection::traceSetPhase(TracePhase phase, sim::SimTime now) {
  if (phase == trace_phase_) return;
  if (phase_span_.valid()) tracer_->end(phase_span_, now);
  trace_phase_ = phase;
  phase_span_ = telemetry::SpanId{};
  const char* name = nullptr;
  switch (phase) {
    case TracePhase::kNone: return;
    case TracePhase::kHandshake: name = "handshake"; break;
    case TracePhase::kSlowStart: name = "slow_start"; break;
    case TracePhase::kCwndLimited: name = "cwnd_limited"; break;
    case TracePhase::kRwndLimited: name = "rwnd_limited"; break;
    case TracePhase::kLossRecovery: name = "loss_recovery"; break;
  }
  phase_span_ = tracer_->begin(now, name, "tcp.phase", trace_parent_);
  tracer_->annotate(phase_span_, "stream", static_cast<std::uint64_t>(trace_stream_));
}

TcpConnection::TracePhase TcpConnection::steadyPhase() const {
  // Loss recovery is sticky: it runs from the loss until cwnd regrows to
  // its pre-loss reference, so the phase covers the whole AIMD sawtooth
  // valley (on a chronically lossy path cwnd never gets back and the
  // entire stretch is attributed to loss recovery — the paper's point).
  if (trace_phase_ == TracePhase::kLossRecovery &&
      (in_recovery_ || hot_.cwnd(hot_row_) < loss_cwnd_ref_)) {
    return TracePhase::kLossRecovery;
  }
  // Eq. 2: the window is min(cwnd, peer rwnd, sndbuf); the binding term
  // names the phase.
  const auto cwnd = static_cast<std::uint64_t>(std::max(hot_.cwnd(hot_row_), 0.0));
  if (peer_wnd_ < std::min(cwnd, config_.sndBuf.byteCount())) return TracePhase::kRwndLimited;
  if (hot_.cwnd(hot_row_) < hot_.ssthresh(hot_row_)) return TracePhase::kSlowStart;
  return TracePhase::kCwndLimited;
}

void TcpConnection::traceOnAck(sim::SimTime now) {
  if (episode_span_.valid() && !in_recovery_) {
    tracer_->end(episode_span_, now);
    episode_span_ = telemetry::SpanId{};
  }
  traceSetPhase(steadyPhase(), now);
}

void TcpConnection::sendData(sim::DataSize bytes) {
  send_target_ += bytes.byteCount();
  send_complete_notified_ = false;
  trySend();
}

void TcpConnection::close() {
  fin_pending_ = true;
  trySend();
}

sim::DataRate TcpConnection::deliveryRate() const {
  if (!delivered_any_) return sim::DataRate::zero();
  const auto span = last_delivery_at_ - first_delivery_at_;
  if (span <= sim::Duration::zero()) return sim::DataRate::zero();
  return sim::DataRate::bitsPerSecond(static_cast<std::uint64_t>(
      static_cast<double>(delivered_.bitCount()) / span.toSeconds()));
}

sim::DataRate TcpConnection::goodput() const {
  if (!sent_any_) return sim::DataRate::zero();
  const auto span = last_ack_at_ - first_send_at_;
  if (span <= sim::Duration::zero()) return sim::DataRate::zero();
  return sim::DataRate::bitsPerSecond(static_cast<std::uint64_t>(
      static_cast<double>(stats_.bytesAcked.bitCount()) / span.toSeconds()));
}

// ---------------------------------------------------------------------------
// Segment construction

std::uint16_t TcpConnection::advertisedField() const {
  const std::uint64_t cap = std::uint64_t{65535} << rcv_wscale_;
  const std::uint64_t win = std::min(config_.rcvBuf.byteCount(), cap);
  return static_cast<std::uint16_t>(std::min<std::uint64_t>(win >> rcv_wscale_, 65535));
}

void TcpConnection::sendSyn() {
  net::TcpHeader header;
  header.flags.syn = true;
  header.windowField = static_cast<std::uint16_t>(
      std::min<std::uint64_t>(config_.rcvBuf.byteCount(), 65535));
  if (config_.windowScaling) {
    header.windowScalePresent = true;
    header.windowScale = rcv_wscale_;
  }
  host_.send(net::makeTcpPacket(host_.ctx().pool(), flow_, header, sim::DataSize::zero()));
}

void TcpConnection::sendSynAck() {
  net::TcpHeader header;
  header.flags.syn = true;
  header.flags.ack = true;
  header.ackNo = 0;
  header.windowField = static_cast<std::uint16_t>(
      std::min<std::uint64_t>(config_.rcvBuf.byteCount(), 65535));
  if (scaling_ok_) {
    header.windowScalePresent = true;
    header.windowScale = rcv_wscale_;
  }
  host_.send(net::makeTcpPacket(host_.ctx().pool(), flow_, header, sim::DataSize::zero()));
}

void TcpConnection::sendAckOnly() {
  net::TcpHeader header;
  header.flags.ack = true;
  header.ackNo = rcv_nxt_;
  header.windowField = advertisedField();
  header.tsVal = static_cast<std::uint64_t>(host_.ctx().now().ns());
  header.tsEcho = ts_recent_;
  if (!ooo_.empty()) {
    header.sackHint = ooo_.rbegin()->second;
    // Up to three most-recent blocks, highest first (RFC 2018 spirit).
    for (auto it = ooo_.rbegin(); it != ooo_.rend() && header.sackCount < 3; ++it) {
      header.sackBlocks[header.sackCount++] = net::TcpHeader::SackBlock{it->first, it->second};
    }
  }
  host_.send(net::makeTcpPacket(host_.ctx().pool(), flow_, header, sim::DataSize::zero()));
}

void TcpConnection::sendSegment(std::uint64_t seq, sim::DataSize len, bool fin,
                                bool isRetransmit) {
  net::TcpHeader header;
  header.seq = seq;
  header.flags.ack = true;
  header.flags.fin = fin;
  header.ackNo = rcv_nxt_;
  header.windowField = advertisedField();
  header.tsVal = static_cast<std::uint64_t>(host_.ctx().now().ns());
  header.tsEcho = ts_recent_;
  host_.send(net::makeTcpPacket(host_.ctx().pool(), flow_, header, len));
  ++stats_.dataSegmentsSent;
  if (isRetransmit) {
    ++stats_.retransmits;
    auto& tel = host_.ctx().telemetry();
    if (tel.enabled()) {
      if (!tel_init_) initTelemetry();
      ++*tel_retransmits_;
      telemetry::FlightEvent ev;
      ev.at = host_.ctx().now();
      ev.kind = telemetry::FlightEventKind::kRetransmit;
      ev.point = tel_point_;
      ev.aux = seq;
      ev.flow = net::toFlowRef(flow_);
      ev.bytes = static_cast<std::uint32_t>((len + net::kTcpIpHeaderBytes).byteCount());
      tel.recorder().record(ev);
    }
  }
  if (!sent_any_) {
    sent_any_ = true;
    first_send_at_ = host_.ctx().now();
  }
}

// ---------------------------------------------------------------------------
// Sending

std::uint64_t TcpConnection::effectiveWindow() const {
  const auto cwnd = static_cast<std::uint64_t>(std::max(hot_.cwnd(hot_row_), 0.0));
  return std::min({cwnd, peer_wnd_, config_.sndBuf.byteCount()});
}

bool TcpConnection::sendOneSegment() {
  const std::uint64_t limit = sendLimit();
  const std::uint64_t window = effectiveWindow();
  const std::uint64_t mss = mss_.byteCount();
  if (sndNxt() >= limit || sndNxt() - sndUna() >= window) return false;
  if (sndNxt() == send_target_) {
    // All data queued so far is out; emit the FIN (occupies one seq).
    sendSegment(sndNxt(), sim::DataSize::zero(), /*fin=*/true, /*isRetransmit=*/false);
    sndNxt() += 1;
  } else {
    const std::uint64_t len = std::min(mss, send_target_ - sndNxt());
    sendSegment(sndNxt(), sim::DataSize::bytes(len), /*fin=*/false, /*isRetransmit=*/false);
    sndNxt() += len;
  }
  return true;
}

void TcpConnection::trySend() {
  if (state_ != State::kEstablished) return;
  if (config_.pacing && have_rtt_) {
    pacedSend();
    return;
  }
  while (sendOneSegment()) {
  }
  if (sndNxt() > sndUna() && !rto_timer_.valid()) armRto();
}

void TcpConnection::pacedSend() {
  if (pace_timer_.valid()) return;  // the next emission is already scheduled
  if (!sendOneSegment()) {
    if (sndNxt() > sndUna() && !rto_timer_.valid()) armRto();
    return;
  }
  if (sndNxt() > sndUna() && !rto_timer_.valid()) armRto();
  // Inter-segment gap: spread cwnd over the smoothed RTT, sped up by the
  // pacing gain so the window can still grow.
  const double rateBps =
      std::max(config_.pacingGain * hot_.cwnd(hot_row_) * 8.0 / std::max(srtt().toSeconds(), 1e-6),
               8.0 * 1460.0);
  const double gapSecs =
      static_cast<double>(mss_.byteCount()) * 8.0 / rateBps;
  pace_timer_ = host_.ctx().sim().schedule(sim::Duration::fromSeconds(gapSecs), [this] {
    pace_timer_ = sim::EventId{};
    if (state_ == State::kEstablished) pacedSend();
  });
}

void TcpConnection::retransmitFrom(std::uint64_t seq) {
  const std::uint64_t mss = mss_.byteCount();
  if (fin_pending_ && seq == send_target_) {
    sendSegment(seq, sim::DataSize::zero(), /*fin=*/true, /*isRetransmit=*/true);
    return;
  }
  const std::uint64_t len = std::min(mss, send_target_ - seq);
  sendSegment(seq, sim::DataSize::bytes(len), /*fin=*/false, /*isRetransmit=*/true);
}

// ---------------------------------------------------------------------------
// Receiving

void TcpConnection::onPacket(const net::Packet& packet) {
  if (!packet.isTcp()) return;
  const auto& header = packet.tcp();
  const auto now = host_.ctx().now();

  // Handshake transitions.
  if (state_ == State::kSynSent) {
    if (header.flags.syn && header.flags.ack) {
      if (header.windowScalePresent && config_.windowScaling) {
        scaling_ok_ = true;
        snd_wscale_ = header.windowScale;
      } else {
        scaling_ok_ = false;
        snd_wscale_ = 0;
        rcv_wscale_ = 0;  // RFC 1323: both sides or neither
      }
      peer_wnd_ = header.windowField;  // SYN-ACK window unscaled
      cancelRto();
      becomeEstablished();
      sendAckOnly();
      trySend();
    }
    return;
  }
  if (state_ == State::kSynReceived) {
    if (header.flags.syn && !header.flags.ack) {
      sendSynAck();  // our SYN-ACK was lost
      return;
    }
    if (header.flags.ack && !header.flags.syn) {
      cancelRto();
      becomeEstablished();
      // Fall through: this segment may carry data.
    } else {
      return;
    }
  }
  if (state_ == State::kIdle) return;

  // Duplicate SYN-ACK after establishment: our handshake ACK was lost.
  if (header.flags.syn && header.flags.ack && state_ == State::kEstablished) {
    sendAckOnly();
    return;
  }

  if (header.flags.ack) {
    peer_wnd_ = static_cast<std::uint64_t>(header.windowField) << snd_wscale_;
    last_ack_at_ = now;
    handleAck(header);
  }
  if (packet.payload > sim::DataSize::zero() || header.flags.fin) {
    handleData(packet);
  }
}

void TcpConnection::becomeEstablished() {
  if (state_ == State::kEstablished) return;
  state_ = State::kEstablished;
  if (host_.ctx().telemetry().enabled() && !tel_init_) initTelemetry();
  if (tracer_ != nullptr) traceSetPhase(steadyPhase(), host_.ctx().now());
  if (onEstablished) onEstablished();
}

void TcpConnection::initTelemetry() {
  auto& tel = host_.ctx().telemetry();
  const std::string base = "tcp/" + flow_.toString();
  tel_point_ = tel.recorder().internPoint("tcp:" + flow_.toString());
  tel_retransmits_ = &tel.metrics().counter(base + "/retransmits");
  tel_rtos_ = &tel.metrics().counter(base + "/rtos");
  tel_samplers_[0] = tel.addSampler(base + "/cwnd_bytes", [this] { return hot_.cwnd(hot_row_); });
  tel_samplers_[1] =
      tel.addSampler(base + "/ssthresh_bytes", [this] { return hot_.ssthresh(hot_row_); });
  tel_samplers_[2] = tel.addSampler(base + "/srtt_ms", [this] { return srtt().toMillis(); });
  tel_samplers_[3] = tel.addSampler(base + "/inflight_bytes", [this] {
    return sndNxt() >= sndUna() ? static_cast<double>(sndNxt() - sndUna()) : 0.0;
  });
  tel_init_ = true;
}

void TcpConnection::handleAck(const net::TcpHeader& header) {
  const auto now = host_.ctx().now();
  const std::uint64_t mss = mss_.byteCount();

  // Timestamp-echo RTT sample (valid on new and duplicate ACKs alike).
  if (header.tsEcho != 0) {
    const auto sentAt = sim::SimTime::fromNs(static_cast<std::int64_t>(header.tsEcho));
    if (sentAt <= now) sampleRtt(now - sentAt);
  }

  absorbSack(header);

  if (header.ackNo > sndUna()) {
    const std::uint64_t acked = header.ackNo - sndUna();
    sndUna() = header.ackNo;
    // After a go-back-N RTO reset, ACKs for the original flight can race
    // past the rewound snd_nxt; never let the send point fall behind the
    // cumulative ACK or the unsigned in-flight arithmetic underflows.
    if (sndNxt() < sndUna()) sndNxt() = sndUna();
    stats_.bytesAcked += sim::DataSize::bytes(acked);


    if (in_recovery_) {
      if (header.ackNo >= recover_) {
        // Recovery complete: resume congestion avoidance from ssthresh.
        in_recovery_ = false;
        dup_acks_ = 0;
        high_rxt_ = 0;
        hot_.cwnd(hot_row_) = hot_.ssthresh(hot_row_);
      } else {
        // Partial ACK: keep repairing holes, SACK-guided, pipe-limited.
        sackRetransmit();
      }
    } else {
      dup_acks_ = 0;
      CcState st = ccLoad();
      cc_->onAckedBytes(st, acked, srtt(), now);
      ccStore(st);
    }
    (void)mss;

    cancelRto();
    if (sndNxt() > sndUna()) armRto();
    trySend();
    checkSendComplete();
    if (tracer_ != nullptr) traceOnAck(now);
    return;
  }

  // Duplicate ACK (only meaningful while data is outstanding).
  if (sndNxt() > sndUna() && header.ackNo == sndUna()) {
    if (in_recovery_) {
      sackRetransmit();
    } else if (++dup_acks_ == 3) {
      enterRecovery();
    }
  }
}

void TcpConnection::absorbSack(const net::TcpHeader& header) {
  for (std::uint8_t i = 0; i < header.sackCount; ++i) {
    std::uint64_t start = header.sackBlocks[i].start;
    std::uint64_t end = header.sackBlocks[i].end;
    if (end <= start || end <= sndUna()) continue;
    start = std::max(start, sndUna());
    // Merge [start, end) into the scoreboard.
    auto it = sacked_.lower_bound(start);
    if (it != sacked_.begin()) {
      auto prev = std::prev(it);
      if (prev->second >= start) {
        start = prev->first;
        end = std::max(end, prev->second);
        it = sacked_.erase(prev);
      }
    }
    while (it != sacked_.end() && it->first <= end) {
      end = std::max(end, it->second);
      it = sacked_.erase(it);
    }
    sacked_.emplace(start, end);
  }
  // Drop ranges the cumulative ACK has passed.
  while (!sacked_.empty() && sacked_.begin()->second <= sndUna()) {
    sacked_.erase(sacked_.begin());
  }
  if (!sacked_.empty() && sacked_.begin()->first < sndUna()) {
    auto node = sacked_.extract(sacked_.begin());
    if (node.mapped() > sndUna()) sacked_.emplace(sndUna(), node.mapped());
  }
}

std::uint64_t TcpConnection::sackedBytesInFlight() const {
  std::uint64_t total = 0;
  for (const auto& [start, end] : sacked_) {
    const auto hi = std::min(end, sndNxt());
    if (hi > start) total += hi - start;
  }
  return total;
}

std::uint64_t TcpConnection::nextHole(std::uint64_t point) const {
  for (const auto& [start, end] : sacked_) {
    if (point < start) return point;
    if (point < end) point = end;
  }
  return point;
}

void TcpConnection::sackRetransmit() {
  const std::uint64_t mss = mss_.byteCount();
  const auto cwnd = static_cast<std::uint64_t>(std::max(hot_.cwnd(hot_row_), 0.0));
  const std::uint64_t highestSack = sacked_.empty() ? sndUna() : sacked_.rbegin()->second;
  // Conservative pipe estimate: outstanding minus what SACK confirms
  // arrived. (Lost-but-unretransmitted bytes still count, which only makes
  // us less aggressive.)
  std::uint64_t outstanding = sndNxt() - sndUna();
  std::uint64_t pipe = outstanding - std::min(outstanding, sackedBytesInFlight());

  int budget = 64;  // hard bound on work per ACK
  while (pipe + mss <= cwnd && budget-- > 0) {
    std::uint64_t point = nextHole(std::max(sndUna(), high_rxt_));
    if (point < highestSack && point < sndNxt()) {
      retransmitFrom(point);
      high_rxt_ = point + mss;
      pipe += mss;
      continue;
    }
    // No known holes left: grow with new data if the window allows.
    if (!sendOneSegment()) break;
    pipe += mss;
  }
  if (sndNxt() > sndUna() && !rto_timer_.valid()) armRto();
}

void TcpConnection::enterRecovery() {
  const auto now = host_.ctx().now();
  if (tracer_ != nullptr) {
    // Pre-loss cwnd, captured before the CC reaction halves it.
    if (trace_phase_ != TracePhase::kLossRecovery) loss_cwnd_ref_ = hot_.cwnd(hot_row_);
    traceSetPhase(TracePhase::kLossRecovery, now);
    if (!episode_span_.valid()) {
      episode_span_ = tracer_->begin(now, "fast_retransmit", "tcp.recovery", trace_parent_);
      tracer_->annotate(episode_span_, "stream", static_cast<std::uint64_t>(trace_stream_));
      tracer_->annotate(episode_span_, "cwnd_at_loss", hot_.cwnd(hot_row_));
    }
  }
  recover_ = sndNxt();
  CcState st = ccLoad();
  cc_->onPacketLoss(st, now);
  ccStore(st);
  hot_.cwnd(hot_row_) = hot_.ssthresh(hot_row_);
  in_recovery_ = true;
  high_rxt_ = 0;
  ++stats_.fastRetransmits;
  retransmitFrom(sndUna());
  high_rxt_ = sndUna() + mss_.byteCount();
  sackRetransmit();
}

void TcpConnection::handleData(const net::Packet& packet) {
  const auto& header = packet.tcp();
  const auto now = host_.ctx().now();
  const std::uint64_t len = packet.payload.byteCount();
  const std::uint64_t seq = header.seq;

  // RFC 7323 (simplified): echo the timestamp of the segment that triggers
  // this ACK. Valid for in-order, out-of-order and duplicate arrivals
  // alike, so RTT samples stay honest through loss recovery.
  if (header.tsVal != 0) ts_recent_ = header.tsVal;

  if (header.flags.fin) {
    if (len == 0 && seq == rcv_nxt_) {
      // In-order pure FIN.
      rcv_nxt_ += 1;
      sendAckOnly();
      if (state_ != State::kClosed) {
        state_ = State::kClosed;
        if (onClosed) onClosed();
      }
      return;
    }
    if (seq >= rcv_nxt_) fin_seq_ = seq;  // FIN beyond a hole; consume later
    // else: duplicate FIN; fall through to re-ACK below.
  }

  std::uint64_t advance = 0;
  if (len > 0) {
    if (seq == rcv_nxt_) {
      rcv_nxt_ += len;
      advance += len;
      // Absorb any now-contiguous out-of-order blocks.
      auto it = ooo_.begin();
      while (it != ooo_.end() && it->first <= rcv_nxt_) {
        if (it->second > rcv_nxt_) {
          advance += it->second - rcv_nxt_;
          rcv_nxt_ = it->second;
        }
        it = ooo_.erase(it);
      }
    } else if (seq > rcv_nxt_) {
      // Store [seq, seq+len), merging overlaps.
      std::uint64_t start = seq;
      std::uint64_t end = seq + len;
      auto it = ooo_.lower_bound(start);
      if (it != ooo_.begin()) {
        auto prev = std::prev(it);
        if (prev->second >= start) {
          start = prev->first;
          end = std::max(end, prev->second);
          it = ooo_.erase(prev);
        }
      }
      while (it != ooo_.end() && it->first <= end) {
        end = std::max(end, it->second);
        it = ooo_.erase(it);
      }
      ooo_.emplace(start, end);
    }
    // else: fully duplicate segment; just re-ACK.
  }

  if (advance > 0) {
    const auto bytes = sim::DataSize::bytes(advance);
    delivered_ += bytes;
    if (!delivered_any_) {
      delivered_any_ = true;
      first_delivery_at_ = now;
    }
    last_delivery_at_ = now;
    if (onDelivered) onDelivered(bytes);
  }

  // Deferred FIN: all data before it has now arrived.
  if (fin_seq_ && *fin_seq_ == rcv_nxt_) {
    rcv_nxt_ += 1;
    fin_seq_.reset();
    sendAckOnly();
    if (state_ != State::kClosed) {
      state_ = State::kClosed;
      if (onClosed) onClosed();
    }
    return;
  }

  sendAckOnly();
}

void TcpConnection::checkSendComplete() {
  if (send_target_ > 0 && sndUna() >= send_target_ && !send_complete_notified_) {
    send_complete_notified_ = true;
    if (onSendComplete) onSendComplete();
  }
}

// ---------------------------------------------------------------------------
// Timers

void TcpConnection::sampleRtt(sim::Duration sample) {
  if (!have_rtt_) {
    setSrtt(sample);
    rttvar_ = sim::Duration::nanoseconds(sample.ns() / 2);
    have_rtt_ = true;
  } else {
    const double s = sample.toSeconds();
    const double smoothed = srtt().toSeconds();
    const double var = rttvar_.toSeconds();
    const double newVar = 0.75 * var + 0.25 * std::abs(smoothed - s);
    const double newSrtt = 0.875 * smoothed + 0.125 * s;
    setSrtt(sim::Duration::fromSeconds(newSrtt));
    rttvar_ = sim::Duration::fromSeconds(newVar);
  }
  cc_->onRttSample(sample);
  const auto candidate =
      sim::Duration::fromSeconds(srtt().toSeconds() + std::max(4.0 * rttvar_.toSeconds(), 1e-3));
  rto_ = std::clamp(candidate, config_.minRto, config_.maxRto);
}

void TcpConnection::armRto() {
  cancelRto();
  rto_timer_ = host_.ctx().sim().schedule(rto_, [this] {
    rto_timer_ = sim::EventId{};
    onRtoFire();
  });
}

void TcpConnection::cancelRto() {
  if (rto_timer_.valid()) {
    host_.ctx().sim().cancel(rto_timer_);
    rto_timer_ = sim::EventId{};
  }
}

void TcpConnection::onRtoFire() {
  rto_ = std::min(rto_ * 2, config_.maxRto);

  if (state_ == State::kSynSent) {
    sendSyn();
    armRto();
    return;
  }
  if (state_ == State::kSynReceived) {
    sendSynAck();
    armRto();
    return;
  }
  if (sndNxt() <= sndUna()) return;  // nothing outstanding

  ++stats_.rtos;
  {
    auto& tel = host_.ctx().telemetry();
    if (tel.enabled()) {
      if (!tel_init_) initTelemetry();
      ++*tel_rtos_;
    }
  }
  if (tracer_ != nullptr) {
    const auto now = host_.ctx().now();
    if (trace_phase_ != TracePhase::kLossRecovery) loss_cwnd_ref_ = hot_.cwnd(hot_row_);
    traceSetPhase(TracePhase::kLossRecovery, now);
    if (!episode_span_.valid()) {
      episode_span_ = tracer_->begin(now, "rto", "tcp.recovery", trace_parent_);
      tracer_->annotate(episode_span_, "stream", static_cast<std::uint64_t>(trace_stream_));
    } else {
      tracer_->bump(episode_span_, "rtos", 1);
    }
  }
  {
    CcState st = ccLoad();
    cc_->onRto(st, host_.ctx().now());
    ccStore(st);
  }
  in_recovery_ = false;
  dup_acks_ = 0;
  sacked_.clear();
  high_rxt_ = 0;
  sndNxt() = sndUna();  // go-back-N from the last cumulative ACK
  trySend();
  if (!rto_timer_.valid()) armRto();
}

// ---------------------------------------------------------------------------
// Snapshot/restore

void TcpConnection::restoreTelemetry(std::uint32_t point) {
  if (tel_init_) return;  // restore-twice: samplers already registered
  auto& tel = host_.ctx().telemetry();
  const std::string base = "tcp/" + flow_.toString();
  tel_point_ = point;
  tel_retransmits_ = &tel.metrics().counter(base + "/retransmits");
  tel_rtos_ = &tel.metrics().counter(base + "/rtos");
  tel_samplers_[0] = tel.addSampler(base + "/cwnd_bytes", [this] { return hot_.cwnd(hot_row_); });
  tel_samplers_[1] =
      tel.addSampler(base + "/ssthresh_bytes", [this] { return hot_.ssthresh(hot_row_); });
  tel_samplers_[2] = tel.addSampler(base + "/srtt_ms", [this] { return srtt().toMillis(); });
  tel_samplers_[3] = tel.addSampler(base + "/inflight_bytes", [this] {
    return sndNxt() >= sndUna() ? static_cast<double>(sndNxt() - sndUna()) : 0.0;
  });
  tel_init_ = true;
}

std::uint64_t TcpConnection::serialize(sim::Codec& c) {
  std::uint64_t claimed = 0;
  std::uint8_t state = static_cast<std::uint8_t>(state_);
  c.u8(state);
  if (!c.writing()) state_ = static_cast<State>(state);
  c.b(scaling_ok_);
  c.u8(snd_wscale_);
  c.u8(rcv_wscale_);

  // Hot-table row (this connection's SoA cells).
  c.f64(hot_.cwnd(hot_row_));
  c.f64(hot_.ssthresh(hot_row_));
  c.vint(hot_.srttNs(hot_row_));
  c.vu64(hot_.sndUna(hot_row_));
  c.vu64(hot_.sndNxt(hot_row_));

  // Sender state.
  c.vu64(send_target_);
  c.b(fin_pending_);
  c.b(send_complete_notified_);
  c.vu64(peer_wnd_);
  c.vint(dup_acks_);
  c.b(in_recovery_);
  c.vu64(recover_);
  c.vu64(high_rxt_);
  codecSeqMap(c, sacked_);
  sim::codecTime(c, first_send_at_);
  sim::codecTime(c, last_ack_at_);
  c.b(sent_any_);

  // RTO machinery.
  sim::codecDuration(c, rttvar_);
  c.b(have_rtt_);
  sim::codecDuration(c, rto_);

  // Receiver state.
  c.vu64(rcv_nxt_);
  c.vu64(ts_recent_);
  codecSeqMap(c, ooo_);
  bool hasFin = fin_seq_.has_value();
  c.b(hasFin);
  std::uint64_t finSeq = hasFin ? *fin_seq_ : 0;
  c.vu64(finSeq);
  if (!c.writing()) {
    fin_seq_.reset();
    if (hasFin) fin_seq_ = finSeq;
  }
  sim::codecSize(c, delivered_);
  sim::codecTime(c, first_delivery_at_);
  sim::codecTime(c, last_delivery_at_);
  c.b(delivered_any_);

  c.vu64(stats_.dataSegmentsSent);
  c.vu64(stats_.retransmits);
  c.vu64(stats_.fastRetransmits);
  c.vu64(stats_.rtos);
  sim::codecSize(c, stats_.bytesAcked);

  cc_->serializeState(c);

  // Telemetry registration: a restored established connection must resume
  // per-tick sampling immediately, under the snapshot's emit-point id (the
  // flight-recorder overlay re-installs the matching intern table).
  bool telInit = tel_init_;
  c.b(telInit);
  std::uint32_t telPoint = tel_point_;
  c.vu32(telPoint);
  if (!c.writing() && telInit && host_.ctx().telemetry().enabled()) {
    restoreTelemetry(telPoint);
  }

  // Span-trace machine. The ids index the tracer's span table, which the
  // snapshot's SPAN overlay replaces wholesale after the TCP section, so
  // restored ids land on exactly the spans they named when saved. A blob
  // traced into an untraced rebuild leaves tracer_ null (spans drop); the
  // ids stay parked and every emit site guards on tracer_.
  bool traced = tracer_ != nullptr;
  c.b(traced);
  std::uint8_t tracePhase = static_cast<std::uint8_t>(trace_phase_);
  c.u8(tracePhase);
  c.vu32(trace_parent_.value);
  c.vint(trace_stream_);
  c.vu32(phase_span_.value);
  c.vu32(episode_span_.value);
  c.f64(loss_cwnd_ref_);
  if (!c.writing()) {
    trace_phase_ = static_cast<TracePhase>(tracePhase);
    if (traced) {
      telemetry::Tracer& tracer = host_.ctx().extension<telemetry::Tracer>();
      tracer_ = tracer.enabled() ? &tracer : nullptr;
    }
  }

  // Pending timers, re-armed under their original keys.
  claimed += sim::codecTimer(c, host_.ctx().sim(), rto_timer_, [this] {
    rto_timer_ = sim::EventId{};
    onRtoFire();
  });
  claimed += sim::codecTimer(c, host_.ctx().sim(), pace_timer_, [this] {
    pace_timer_ = sim::EventId{};
    if (state_ == State::kEstablished) pacedSend();
  });
  return claimed;
}

std::uint64_t TcpListener::serialize(sim::Codec& c) {
  std::uint64_t claimed = 0;
  if (c.writing()) {
    std::vector<std::pair<net::FlowKey, TcpConnection*>> sorted;
    sorted.reserve(connections_.size());
    for (auto& [key, conn] : connections_) sorted.emplace_back(key, conn.get());
    std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
      return flowKeyTuple(a.first) < flowKeyTuple(b.first);
    });
    std::uint64_t n = sorted.size();
    c.vu64(n);
    for (auto& [key, conn] : sorted) {
      net::FlowKey k = key;
      net::codecFlowKey(c, k);
      claimed += conn->serialize(c);
    }
  } else {
    connections_.clear();  // restore-twice: drop previously restored shells
    std::uint64_t n = 0;
    c.vu64(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      net::FlowKey key{};
      net::codecFlowKey(c, key);
      auto conn = host_.ctx().arena().make<TcpConnection>(
          host_, key.reversed(), config_, TcpConnection::RestoreTag{});
      auto& ref = *conn;
      ref.onEstablished = [this, &ref] {
        if (onAccept) onAccept(ref);
      };
      claimed += ref.serialize(c);
      connections_.emplace(key, std::move(conn));
    }
  }
  return claimed;
}

// ---------------------------------------------------------------------------
// Listener

TcpListener::TcpListener(net::Host& host, std::uint16_t port, TcpConfig config)
    : host_(host), port_(port), config_(config) {
  host_.bind(net::Protocol::kTcp, port_, *this);
}

TcpListener::~TcpListener() { host_.unbind(net::Protocol::kTcp, port_); }

void TcpListener::onPacket(const net::Packet& packet) {
  if (!packet.isTcp()) return;
  const auto key = packet.flow;
  auto it = connections_.find(key);
  if (it == connections_.end()) {
    const auto& header = packet.tcp();
    if (!(header.flags.syn && !header.flags.ack)) return;  // stray segment
    auto conn = host_.ctx().arena().make<TcpConnection>(host_, packet, config_);
    auto& ref = *conn;
    ref.onEstablished = [this, &ref] {
      if (onAccept) onAccept(ref);
    };
    connections_.emplace(key, std::move(conn));
    return;
  }
  it->second->onPacket(packet);
}

}  // namespace scidmz::tcp
