// Structure-of-arrays store for the hottest per-flow TCP fields.
//
// The RTO/cwnd path touches five fields per ACK — cwnd, ssthresh, smoothed
// RTT, snd_una, snd_nxt — and with hundreds of flows those reads used to
// pointer-chase into whichever heap block each TcpConnection landed in.
// Here every field is a contiguous column indexed by a per-Context row id:
// a connection owns one row for its lifetime, the ACK path updates five
// array cells that pack eight flows per cache line, and telemetry samplers
// stream the columns directly instead of dereferencing connections.
//
// One table per scenario, attached via net::Context::extension<FlowHotTable>()
// so net:: never learns about tcp:: — and sweep cells, each with their own
// Context, never share rows. Rows are recycled LIFO (same policy as the
// packet pool and arena freelists) so row assignment is deterministic for a
// given scenario + seed.
//
// The CongestionControl interface (tcp/congestion.hpp) still speaks CcState
// by reference; TcpConnection copies the row into a stack CcState around
// each hook call and writes it back — the hooks are per-loss-event cold
// paths, and keeping the interface unchanged means every CC algorithm works
// untouched.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace scidmz::tcp {

class FlowHotTable {
 public:
  /// Claim a zeroed row. Rows are stable for the connection's lifetime.
  [[nodiscard]] std::uint32_t acquire() {
    std::uint32_t row;
    if (!free_.empty()) {
      row = free_.back();
      free_.pop_back();
    } else {
      row = static_cast<std::uint32_t>(cwnd_.size());
      cwnd_.push_back(0.0);
      ssthresh_.push_back(0.0);
      srtt_ns_.push_back(0);
      snd_una_.push_back(0);
      snd_nxt_.push_back(0);
    }
    cwnd_[row] = 0.0;
    ssthresh_[row] = 0.0;
    srtt_ns_[row] = 0;
    snd_una_[row] = 0;
    snd_nxt_[row] = 0;
    ++live_;
    return row;
  }

  /// Return a row to the freelist. The caller must not touch it afterwards.
  void release(std::uint32_t row) {
    free_.push_back(row);
    --live_;
  }

  // Per-row cells. Hot path: five contiguous-column accesses per ACK.
  [[nodiscard]] double& cwnd(std::uint32_t row) { return cwnd_[row]; }
  [[nodiscard]] double cwnd(std::uint32_t row) const { return cwnd_[row]; }
  [[nodiscard]] double& ssthresh(std::uint32_t row) { return ssthresh_[row]; }
  [[nodiscard]] double ssthresh(std::uint32_t row) const { return ssthresh_[row]; }
  [[nodiscard]] std::int64_t& srttNs(std::uint32_t row) { return srtt_ns_[row]; }
  [[nodiscard]] std::int64_t srttNs(std::uint32_t row) const { return srtt_ns_[row]; }
  [[nodiscard]] std::uint64_t& sndUna(std::uint32_t row) { return snd_una_[row]; }
  [[nodiscard]] std::uint64_t sndUna(std::uint32_t row) const { return snd_una_[row]; }
  [[nodiscard]] std::uint64_t& sndNxt(std::uint32_t row) { return snd_nxt_[row]; }
  [[nodiscard]] std::uint64_t sndNxt(std::uint32_t row) const { return snd_nxt_[row]; }

  /// Rows ever created (columns' length); freed rows stay allocated.
  [[nodiscard]] std::size_t rowCount() const { return cwnd_.size(); }
  /// Rows currently owned by live connections.
  [[nodiscard]] std::size_t liveCount() const { return live_; }

 private:
  std::vector<double> cwnd_;
  std::vector<double> ssthresh_;
  std::vector<std::int64_t> srtt_ns_;
  std::vector<std::uint64_t> snd_una_;
  std::vector<std::uint64_t> snd_nxt_;
  std::vector<std::uint32_t> free_;
  std::size_t live_ = 0;
};

}  // namespace scidmz::tcp
