// Fluid (analytic) TCP flow engine.
//
// The paper's Figure 1 argument is that steady-state TCP throughput is a
// *function* — the Mathis / TFRC response function of MSS, RTT and loss —
// not something that has to be rediscovered packet by packet. This engine
// exploits that: a fluid flow carries no packets at all. Its rate is
// computed analytically from its path (traced once at creation through the
// same FIBs packets use) and advanced on a coarse periodic tick, so one
// flow costs O(path length) arithmetic per tick instead of thousands of
// events per second. That is what makes 100k+ concurrent background flows
// affordable (see bench/micro_fluid.cpp).
//
// Coupling to the packet world runs both ways, through the links:
//   - each tick the engine publishes every traversed link direction's
//     aggregate fluid demand (Link::setFluidDemand); packet serialization
//     then runs at Link::effectiveRate — the residual capacity — so packet
//     flows feel fluid load;
//   - the engine measures each link direction's delivered packet bytes per
//     tick, and fluid flows get the larger of the measured leftover and a
//     flow-count-proportional entitlement of the capacity. The entitlement
//     floor (rather than leftover alone) keeps the split from locking in:
//     leftover-only allocation makes *any* division a fixed point.
//
// Rates are recomputed in flow-id order — never by iterating a hash map —
// so floating-point accumulation order, and therefore every table derived
// from fluid flows, is byte-identical run to run and at any
// SCIDMZ_SWEEP_THREADS. Recomputation only happens when something that
// feeds the rates changed (flow set, queued data, establishment,
// completion, packet-flow registration, or the measured per-link packet
// load); between changes a tick is a single pass over the compact hot
// arrays (rate/carry/target/delivered), which is what keeps 100k-flow
// crowds at a few hundred megabytes of memory traffic per simulated
// second instead of tens of gigabytes.
//
// One engine per net::Context, reached via ctx.extension<FluidEngine>()
// (default-constructed; attach() binds it to the Context on first use by
// the FlowFactory).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "net/flow.hpp"
#include "sim/codec.hpp"
#include "sim/event_queue.hpp"
#include "sim/units.hpp"
#include "tcp/congestion.hpp"

namespace scidmz::net {
class Host;
}

namespace scidmz::tcp {

struct TcpConfig;

/// The packet engine's measured Reno goodput over the lossy half of the
/// Figure 1 grid runs ~17% above the deterministic-sawtooth Mathis bound:
/// geometric (random) loss spacing beats the worst-case once-per-cycle
/// assumption, and NewReno keeps the pipe partially filled through fast
/// recovery. The fluid model stands in for the packet engine, not for the
/// textbook bound, so the response function carries this factor
/// (tests/scenario/fluid_agreement_test.cpp holds the two engines to a 10%
/// mean relative error).
inline constexpr double kRenoCalibration = 1.17;

/// Steady-state goodput (bits/s) of one congestion-control algorithm at the
/// given loss rate — the per-CC generalization of Equation 1, calibrated to
/// the packet engine (kRenoCalibration). Returns a huge sentinel (never a
/// binding constraint) when p <= 0.
[[nodiscard]] double ccResponseBps(CcAlgorithm algorithm, double mssBits, double rttSeconds,
                                   double lossRate);

class FluidEngine {
 public:
  /// 0 is never a valid id.
  using FlowId = std::uint32_t;

  struct FlowCallbacks {
    std::function<void()> onEstablished;
    std::function<void(sim::DataSize)> onDelivered;
    std::function<void()> onSendComplete;
  };

  FluidEngine() = default;
  FluidEngine(const FluidEngine&) = delete;
  FluidEngine& operator=(const FluidEngine&) = delete;

  /// Bind to the owning Context (idempotent; extension<T> requires default
  /// construction, so the binding happens on first factory use).
  void attach(net::Context& ctx) { if (ctx_ == nullptr) ctx_ = &ctx; }

  /// Rate-integration cadence. Coarser ticks are cheaper; finer ticks track
  /// packet-flow dynamics more closely. Takes effect at the next (re)arm.
  void setTickInterval(sim::Duration tick) { tick_ = tick; }
  [[nodiscard]] sim::Duration tickInterval() const { return tick_; }

  /// Create a fluid flow; the path is traced through the FIBs now, so
  /// routes must be installed. `streams` parallel streams aggregate into
  /// one flow with an N-fold response function and window (the paper's
  /// parallel-stream loss resilience).
  FlowId addFlow(net::Host& src, net::Host& dst, const TcpConfig& config, int streams);
  /// Tear a flow down (abort or handle destruction): demand is withdrawn
  /// at the next tick, the slot recycles.
  void removeFlow(FlowId id);

  [[nodiscard]] FlowCallbacks& callbacks(FlowId id);

  /// Begin the "handshake": the flow establishes one path-RTT from now
  /// (never, if the path was unroutable — the analog of a black-holed SYN).
  void startFlow(FlowId id);
  /// Queue bulk bytes (callable repeatedly, like TcpConnection::sendData).
  void queueData(FlowId id, sim::DataSize bytes);

  [[nodiscard]] bool established(FlowId id) const;
  [[nodiscard]] bool sendComplete(FlowId id) const;
  [[nodiscard]] sim::DataSize deliveredBytes(FlowId id) const;
  [[nodiscard]] sim::DataRate goodput(FlowId id) const;
  [[nodiscard]] sim::DataRate currentRate(FlowId id) const;
  /// Model-implied retransmit count: delivered segments x p / (1 - p).
  [[nodiscard]] std::uint64_t retransmitEstimate(FlowId id) const;

  /// Packet flows sharing links register their paths so the entitlement
  /// split (fluid vs packet capacity share) can count them per link
  /// direction. Called by the packet FlowHandle on start / completion.
  void registerPacketPath(const net::FlowPath& path);
  void deregisterPacketPath(const net::FlowPath& path);

  /// Flows currently established and draining queued data.
  [[nodiscard]] std::size_t activeFlowCount() const;
  [[nodiscard]] std::uint64_t flowsCompleted() const { return flows_completed_; }

  /// Snapshot/restore overlay (see DESIGN.md "State & serialization").
  /// The rebuild re-created the same flows in the same order, so paths,
  /// response functions, and slot layout are re-derived; this carries only
  /// the dynamic state (delivery progress, measured link loads, pending
  /// establishment events, the ticker). Link-direction aggregates are
  /// matched by endpoint-name key, not position: the rebuild's first-touch
  /// order may interleave packet-path registrations differently. Returns
  /// the number of pending events claimed.
  std::uint64_t serialize(sim::Codec& c);

 private:
  /// Per (link, direction) aggregate state. Stored in a vector in
  /// first-touch order (deterministic — flows are created in program
  /// order); the hash map is only a lookup index, never iterated for
  /// arithmetic.
  struct LinkDir {
    net::Link* link = nullptr;
    int end = 0;
    int packetFlows = 0;      ///< registered packet flows traversing this dir
    std::uint64_t baselineBytes = 0;  ///< bytesDelivered at last tick
    double measuredWireBps = 0.0;     ///< packet traffic observed last tick
    double fluidWeight = 0.0;         ///< sum of active fluid stream counts
    double availWireBps = 0.0;        ///< capacity available to fluid flows
    double wireDemandBps = 0.0;       ///< unconstrained fluid demand
    double publishBps = 0.0;          ///< post-scaling demand to publish
  };

  /// Cold per-flow state: touched at creation, rate recomputation, and
  /// completion — never in the per-tick integration loop. The hot state
  /// (rate/carry/target/delivered) lives in the parallel hot_* arrays so a
  /// steady-state tick streams ~40 bytes per flow, not this struct.
  struct Flow {
    bool inUse = false;
    /// Bumped on removal so pending establishment events for a recycled
    /// slot can recognize they are stale.
    std::uint32_t epoch = 0;
    net::FlowPath path;
    std::vector<std::uint32_t> hopIdx;  ///< indices into link_dirs_
    int weight = 1;                     ///< parallel streams
    double mssBytes = 1460.0;
    double wireFactor = 1.0;            ///< (mss + headers) / mss
    double responseBps = 0.0;           ///< loss-bound goodput (all streams)
    double windowBps = 0.0;             ///< buffer-limited goodput
    double bottleneckGoodputBps = 0.0;  ///< path capacity as goodput
    bool started = false;
    bool established = false;
    bool completeNotified = false;
    /// Pending establishment event (armed between startFlow and +RTT) and
    /// the epoch its closure captured — snapshots re-arm with the same
    /// staleness check.
    sim::EventId establishEvent{};
    std::uint32_t establishEpoch = 0;
    sim::SimTime establishedAt;
    /// Completion stamp, back-dated to the analytic finish instant within
    /// the tick. Only valid once the flow has drained; goodput() uses the
    /// current sim time for in-flight flows.
    sim::SimTime lastDeliveryAt;
    FlowCallbacks cb;
  };

  /// One entry per flow that had data in flight at the last rate
  /// recomputation, in flow-id order. `notify` caches whether the flow has
  /// an onDelivered callback so the no-listener hot path never touches the
  /// cold struct.
  struct ActiveEntry {
    std::uint32_t idx;  ///< flows_ / hot_* index (id - 1)
    bool notify;
  };

  [[nodiscard]] const Flow* flowFor(FlowId id) const;
  [[nodiscard]] Flow* flowFor(FlowId id);
  [[nodiscard]] std::uint32_t linkDirIndex(net::Link* link, int end);
  [[nodiscard]] bool activeSendingAt(std::size_t idx) const {
    return flows_[idx].established && hot_target_[idx] > hot_delivered_[idx];
  }

  void ensureTicker();
  void onTick();
  /// Body of the deferred-establishment event (shared by startFlow and the
  /// snapshot re-arm path so both fire identically).
  void establishmentFire(FlowId id, std::uint32_t epoch);
  /// Advance delivered bytes by the previous tick's rates over `dtSeconds`.
  void integrate(double dtSeconds);
  /// Measure per-link packet traffic over the elapsed interval; returns
  /// whether any direction's load changed (rates must be recomputed).
  bool measureLinks(double dtSeconds);
  /// Recompute every active flow's rate, rebuild the active list, and
  /// publish per-link demand.
  void recomputeRates();
  void withdrawDemand();
  void initTelemetry();

  net::Context* ctx_ = nullptr;
  sim::Duration tick_ = sim::Duration::milliseconds(10);
  std::deque<Flow> flows_;
  // Hot per-flow state, parallel to flows_ (index = id - 1).
  std::vector<double> hot_rate_;       ///< current goodput rate (bits/s)
  std::vector<double> hot_carry_;      ///< sub-byte accumulation between ticks
  std::vector<std::uint64_t> hot_target_;
  std::vector<std::uint64_t> hot_delivered_;
  std::vector<ActiveEntry> active_;
  std::size_t active_left_ = 0;  ///< active_.size() at the last recompute
  bool rates_dirty_ = false;     ///< a rate input changed since last recompute
  std::vector<FlowId> free_ids_;
  std::vector<LinkDir> link_dirs_;
  std::unordered_map<std::uint64_t, std::uint32_t> link_dir_index_;
  bool ticker_armed_ = false;
  sim::EventId ticker_event_{};
  sim::SimTime last_tick_;
  std::uint64_t flows_completed_ = 0;

  // Telemetry (armed lazily, only when the hub is enabled).
  bool tel_init_ = false;
  double total_rate_bps_ = 0.0;
  std::uint64_t* tel_bytes_ = nullptr;
  std::uint64_t* tel_completed_ = nullptr;
};

}  // namespace scidmz::tcp
