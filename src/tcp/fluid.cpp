#include "tcp/fluid.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "net/device.hpp"
#include "net/host.hpp"
#include "net/link.hpp"
#include "tcp/connection.hpp"
#include "tcp/mathis.hpp"

namespace scidmz::tcp {

namespace {
/// Sentinel for "no loss bound": larger than any physical rate so it never
/// binds, small enough that arithmetic on it stays finite.
constexpr double kUnboundedBps = 1e30;
/// Cap on the effective window when RFC 1323 scaling is off (either end).
constexpr std::uint64_t kUnscaledWindowBytes = 65535;
}  // namespace

double ccResponseBps(CcAlgorithm algorithm, double mssBits, double rttSeconds, double lossRate) {
  if (lossRate <= 0.0 || rttSeconds <= 0.0) return kUnboundedBps;
  const double reno =
      kRenoCalibration * mssBits / rttSeconds * (kMathisC / std::sqrt(lossRate));
  switch (algorithm) {
    case CcAlgorithm::kReno:
      return reno;
    case CcAlgorithm::kHtcp:
      // H-TCP's adaptive additive increase refills the pipe faster after a
      // loss epoch; modeled as a constant response-function gain over Reno
      // (adequate at the loss rates the scenarios sweep).
      return 1.25 * reno;
    case CcAlgorithm::kCubic: {
      // RFC 8312 average-window approximation (C = 0.4, beta = 0.7):
      // W = (C*(4-b)/(4b))^(1/4) * (RTT/p^3)^(1/4) segments, so goodput
      // scales as RTT^(-3/4) p^(-3/4). Never worse than the Reno bound
      // (CUBIC falls back to Reno-friendly mode in that regime).
      const double k = 0.8286;  // (0.4 * 3.3 / 2.8)^(1/4)
      const double cubic =
          k * mssBits * std::pow(rttSeconds, -0.75) * std::pow(lossRate, -0.75);
      return cubic > reno ? cubic : reno;
    }
  }
  return reno;
}

FluidEngine::FlowId FluidEngine::addFlow(net::Host& src, net::Host& dst, const TcpConfig& config,
                                         int streams) {
  attach(src.ctx());
  FlowId id;
  if (!free_ids_.empty()) {
    id = free_ids_.back();
    free_ids_.pop_back();
  } else {
    flows_.emplace_back();
    hot_rate_.push_back(0.0);
    hot_carry_.push_back(0.0);
    hot_target_.push_back(0);
    hot_delivered_.push_back(0);
    id = static_cast<FlowId>(flows_.size());
  }
  Flow& f = flows_[id - 1];
  const auto epoch = f.epoch;
  f = Flow{};
  f.epoch = epoch;
  f.inUse = true;
  hot_rate_[id - 1] = 0.0;
  hot_carry_[id - 1] = 0.0;
  hot_target_[id - 1] = 0;
  hot_delivered_[id - 1] = 0;
  rates_dirty_ = true;
  f.weight = streams < 1 ? 1 : streams;
  f.path = net::traceFlowPath(src, dst);
  f.hopIdx.clear();
  f.hopIdx.reserve(f.path.hops.size());
  for (const auto& [link, end] : f.path.hops) {
    f.hopIdx.push_back(linkDirIndex(link, end));
  }
  const double mssBytes = static_cast<double>(src.mss().byteCount());
  f.mssBytes = mssBytes;
  f.wireFactor =
      (mssBytes + static_cast<double>(net::kTcpIpHeaderBytes.byteCount())) / mssBytes;
  const double rttSeconds = f.path.rtt().toSeconds();
  std::uint64_t window = std::min(config.sndBuf.byteCount(), config.rcvBuf.byteCount());
  if (!config.windowScaling) window = std::min(window, kUnscaledWindowBytes);
  if (rttSeconds > 0.0) {
    f.responseBps = static_cast<double>(f.weight) *
                    ccResponseBps(config.algorithm, mssBytes * 8.0, rttSeconds, f.path.lossRate);
    f.windowBps =
        static_cast<double>(f.weight) * static_cast<double>(window) * 8.0 / rttSeconds;
  } else {
    f.responseBps = kUnboundedBps;
    f.windowBps = kUnboundedBps;
  }
  f.bottleneckGoodputBps =
      static_cast<double>(f.path.bottleneck.bps()) / f.wireFactor;
  if (f.bottleneckGoodputBps <= 0.0) f.bottleneckGoodputBps = kUnboundedBps;
  return id;
}

void FluidEngine::removeFlow(FlowId id) {
  Flow* f = flowFor(id);
  if (f == nullptr) return;
  ++f->epoch;  // invalidates any pending establishment event
  f->inUse = false;
  f->cb = FlowCallbacks{};
  hot_rate_[id - 1] = 0.0;  // a stale active_ entry now skips this slot
  hot_carry_[id - 1] = 0.0;
  hot_target_[id - 1] = 0;
  hot_delivered_[id - 1] = 0;
  rates_dirty_ = true;
  free_ids_.push_back(id);
  // Any published demand is withdrawn at the next tick; if the ticker is
  // not armed, this flow was not contributing demand in the first place.
}

FluidEngine::FlowCallbacks& FluidEngine::callbacks(FlowId id) {
  Flow* f = flowFor(id);
  static FlowCallbacks dummy;
  return f != nullptr ? f->cb : dummy;
}

void FluidEngine::startFlow(FlowId id) {
  Flow* f = flowFor(id);
  if (f == nullptr || f->started) return;
  f->started = true;
  if (!f->path.complete()) return;  // black-holed SYN: never establishes
  if (ctx_->telemetry().enabled() && !tel_init_) initTelemetry();
  // One path RTT of handshake (SYN out, SYN|ACK back), like the client side
  // of the packet model.
  const auto epoch = f->epoch;
  f->establishEpoch = epoch;
  f->establishEvent =
      ctx_->sim().schedule(f->path.rtt(), [this, id, epoch] { establishmentFire(id, epoch); });
}

void FluidEngine::establishmentFire(FlowId id, std::uint32_t epoch) {
  Flow* flow = flowFor(id);
  if (flow == nullptr || flow->epoch != epoch) return;
  flow->established = true;
  flow->establishedAt = ctx_->sim().now();
  flow->lastDeliveryAt = flow->establishedAt;
  rates_dirty_ = true;
  if (flow->cb.onEstablished) flow->cb.onEstablished();
  if (activeSendingAt(id - 1)) ensureTicker();
}

void FluidEngine::queueData(FlowId id, sim::DataSize bytes) {
  Flow* f = flowFor(id);
  if (f == nullptr) return;
  hot_target_[id - 1] += bytes.byteCount();
  f->completeNotified = false;
  rates_dirty_ = true;
  if (activeSendingAt(id - 1)) ensureTicker();
}

bool FluidEngine::established(FlowId id) const {
  const Flow* f = flowFor(id);
  return f != nullptr && f->established;
}

bool FluidEngine::sendComplete(FlowId id) const {
  const Flow* f = flowFor(id);
  return f != nullptr && hot_target_[id - 1] > 0 &&
         hot_delivered_[id - 1] >= hot_target_[id - 1];
}

sim::DataSize FluidEngine::deliveredBytes(FlowId id) const {
  const Flow* f = flowFor(id);
  return f != nullptr ? sim::DataSize::bytes(hot_delivered_[id - 1]) : sim::DataSize::zero();
}

sim::DataRate FluidEngine::goodput(FlowId id) const {
  const Flow* f = flowFor(id);
  if (f == nullptr || !f->established || hot_delivered_[id - 1] == 0) {
    return sim::DataRate::zero();
  }
  // Drained flows carry a back-dated completion stamp; in-flight flows are
  // measured against the current sim time (delivery tracks the ticker).
  const bool drained =
      hot_target_[id - 1] > 0 && hot_delivered_[id - 1] >= hot_target_[id - 1];
  const auto end = drained ? f->lastDeliveryAt : ctx_->sim().now();
  const auto span = end - f->establishedAt;
  if (span <= sim::Duration::zero()) return sim::DataRate::zero();
  return sim::DataRate::bitsPerSecond(static_cast<std::uint64_t>(
      static_cast<double>(hot_delivered_[id - 1]) * 8.0 / span.toSeconds()));
}

sim::DataRate FluidEngine::currentRate(FlowId id) const {
  const Flow* f = flowFor(id);
  if (f == nullptr || hot_rate_[id - 1] <= 0.0) return sim::DataRate::zero();
  return sim::DataRate::bitsPerSecond(static_cast<std::uint64_t>(hot_rate_[id - 1]));
}

std::uint64_t FluidEngine::retransmitEstimate(FlowId id) const {
  const Flow* f = flowFor(id);
  if (f == nullptr) return 0;
  const double p = f->path.lossRate;
  if (p <= 0.0 || p >= 1.0 || f->mssBytes <= 0.0) return 0;
  const double segments = static_cast<double>(hot_delivered_[id - 1]) / f->mssBytes;
  return static_cast<std::uint64_t>(std::llround(segments * p / (1.0 - p)));
}

void FluidEngine::registerPacketPath(const net::FlowPath& path) {
  for (const auto& [link, end] : path.hops) {
    ++link_dirs_[linkDirIndex(link, end)].packetFlows;
  }
  rates_dirty_ = true;
}

void FluidEngine::deregisterPacketPath(const net::FlowPath& path) {
  for (const auto& [link, end] : path.hops) {
    LinkDir& dir = link_dirs_[linkDirIndex(link, end)];
    if (dir.packetFlows > 0) --dir.packetFlows;
  }
  rates_dirty_ = true;
}

std::size_t FluidEngine::activeFlowCount() const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    if (flows_[i].inUse && activeSendingAt(i)) ++n;
  }
  return n;
}

const FluidEngine::Flow* FluidEngine::flowFor(FlowId id) const {
  if (id == 0 || id > flows_.size()) return nullptr;
  const Flow& f = flows_[id - 1];
  return f.inUse ? &f : nullptr;
}

FluidEngine::Flow* FluidEngine::flowFor(FlowId id) {
  if (id == 0 || id > flows_.size()) return nullptr;
  Flow& f = flows_[id - 1];
  return f.inUse ? &f : nullptr;
}

std::uint32_t FluidEngine::linkDirIndex(net::Link* link, int end) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(link)) << 1) |
      static_cast<std::uint64_t>(end & 1);
  const auto [it, inserted] =
      link_dir_index_.try_emplace(key, static_cast<std::uint32_t>(link_dirs_.size()));
  if (inserted) {
    LinkDir dir;
    dir.link = link;
    dir.end = end & 1;
    dir.baselineBytes = link->stats(end).bytesDelivered.byteCount();
    link_dirs_.push_back(dir);
  }
  return it->second;
}

void FluidEngine::ensureTicker() {
  if (ticker_armed_) return;
  ticker_armed_ = true;
  last_tick_ = ctx_->sim().now();
  // Re-anchor the packet-traffic baselines so the first tick measures only
  // the coming interval, then give freshly active flows an initial rate
  // (reusing the last measured packet load, zero on first arm).
  for (LinkDir& dir : link_dirs_) {
    dir.baselineBytes = dir.link->stats(dir.end).bytesDelivered.byteCount();
  }
  recomputeRates();
  rates_dirty_ = false;
  ticker_event_ = ctx_->sim().schedule(tick_, [this] { onTick(); });
}

void FluidEngine::onTick() {
  if (sim::Profiler* prof = ctx_->sim().profiler(); prof != nullptr) {
    prof->setSource("fluid.tick");
  }
  const auto now = ctx_->sim().now();
  const double dt = (now - last_tick_).toSeconds();
  integrate(dt);
  const bool linksChanged = measureLinks(dt);
  last_tick_ = now;
  // Steady state is the common case: no flow arrived, drained, or was
  // re-targeted, and the measured packet load is unchanged — the rates
  // (and the published demand) are already correct, skip the recompute.
  if (rates_dirty_ || linksChanged) {
    recomputeRates();
    rates_dirty_ = false;
  }
  if (active_left_ > 0) {
    ticker_event_ = ctx_->sim().schedule(tick_, [this] { onTick(); });
  } else {
    withdrawDemand();
    ticker_armed_ = false;
  }
}

void FluidEngine::integrate(double dtSeconds) {
  if (dtSeconds <= 0.0 || active_.empty()) return;
  std::uint64_t telBytes = 0;
  const std::size_t count = active_.size();  // callbacks never mutate active_
  for (std::size_t k = 0; k < count; ++k) {
    const ActiveEntry e = active_[k];
    const std::size_t i = e.idx;
    const double rate = hot_rate_[i];
    if (rate <= 0.0) continue;  // removed or re-added since the rebuild
    const std::uint64_t target = hot_target_[i];
    const std::uint64_t delivered = hot_delivered_[i];
    if (delivered >= target) continue;
    const double advance = rate * dtSeconds / 8.0 + hot_carry_[i];
    const auto whole = static_cast<std::uint64_t>(advance);
    const std::uint64_t remaining = target - delivered;
    std::uint64_t delta;
    bool finished = false;
    if (whole >= remaining) {
      // The flow finished mid-interval: clamp, and back-date the finish so
      // goodput reflects the analytic rate, not the tick granularity.
      delta = remaining;
      hot_carry_[i] = 0.0;
      finished = true;
      Flow& f = flows_[i];
      const double finishSeconds = static_cast<double>(remaining) * 8.0 / rate;
      f.lastDeliveryAt = last_tick_ + sim::Duration::fromSeconds(finishSeconds);
      rates_dirty_ = true;  // its share frees up for the others
    } else {
      delta = whole;
      hot_carry_[i] = advance - static_cast<double>(whole);
    }
    hot_delivered_[i] = delivered + delta;
    telBytes += delta;
    if (delta > 0 && e.notify) {
      Flow& f = flows_[i];
      if (f.cb.onDelivered) f.cb.onDelivered(sim::DataSize::bytes(delta));
    }
    // Completion re-reads the hot state: an onDelivered callback may have
    // queued more data, in which case the flow is no longer drained.
    if (finished) {
      Flow& f = flows_[i];
      if (f.inUse && hot_target_[i] > 0 && hot_delivered_[i] >= hot_target_[i] &&
          !f.completeNotified) {
        f.completeNotified = true;
        ++flows_completed_;
        if (tel_completed_ != nullptr) ++*tel_completed_;
        if (f.cb.onSendComplete) f.cb.onSendComplete();
      }
    }
  }
  if (tel_bytes_ != nullptr) *tel_bytes_ += telBytes;
}

bool FluidEngine::measureLinks(double dtSeconds) {
  if (dtSeconds <= 0.0) return false;
  bool changed = false;
  for (LinkDir& dir : link_dirs_) {
    const std::uint64_t bytes = dir.link->stats(dir.end).bytesDelivered.byteCount();
    const double wireBps = static_cast<double>(bytes - dir.baselineBytes) * 8.0 / dtSeconds;
    dir.baselineBytes = bytes;
    if (wireBps != dir.measuredWireBps) {
      dir.measuredWireBps = wireBps;
      changed = true;
    }
  }
  return changed;
}

void FluidEngine::recomputeRates() {
  for (LinkDir& dir : link_dirs_) {
    dir.fluidWeight = 0.0;
    dir.wireDemandBps = 0.0;
    dir.publishBps = 0.0;
  }
  // Pass 1 (flows, id order): unconstrained per-flow caps, link weights,
  // and the active list the per-tick integration iterates.
  active_.clear();
  const std::size_t n = flows_.size();
  for (std::size_t i = 0; i < n; ++i) {
    Flow& f = flows_[i];
    if (!f.inUse || !activeSendingAt(i)) {
      hot_rate_[i] = 0.0;
      continue;
    }
    hot_rate_[i] = std::min({f.responseBps, f.windowBps, f.bottleneckGoodputBps});
    active_.push_back({static_cast<std::uint32_t>(i), static_cast<bool>(f.cb.onDelivered)});
    for (const auto idx : f.hopIdx) {
      link_dirs_[idx].fluidWeight += static_cast<double>(f.weight);
    }
  }
  active_left_ = active_.size();
  // Pass 2 (links): capacity available to fluid flows — the measured
  // leftover, floored by a flow-count-proportional entitlement so the
  // fluid/packet split cannot lock in wherever it happens to start.
  for (LinkDir& dir : link_dirs_) {
    if (dir.fluidWeight <= 0.0) {
      dir.availWireBps = 0.0;
      continue;
    }
    const double capacity = static_cast<double>(dir.link->rate().bps());
    const double leftover =
        capacity > dir.measuredWireBps ? capacity - dir.measuredWireBps : 0.0;
    const double entitlement =
        capacity * dir.fluidWeight /
        (dir.fluidWeight + static_cast<double>(dir.packetFlows));
    dir.availWireBps = std::max(leftover, entitlement);
  }
  // Pass 3 (flows, id order): aggregate unconstrained wire demand per link.
  for (const ActiveEntry& e : active_) {
    const Flow& f = flows_[e.idx];
    for (const auto idx : f.hopIdx) {
      link_dirs_[idx].wireDemandBps += hot_rate_[e.idx] * f.wireFactor;
    }
  }
  // Pass 4 (flows, id order): scale each flow by its most-congested hop.
  total_rate_bps_ = 0.0;
  for (const ActiveEntry& e : active_) {
    const Flow& f = flows_[e.idx];
    double scale = 1.0;
    for (const auto idx : f.hopIdx) {
      const LinkDir& dir = link_dirs_[idx];
      if (dir.wireDemandBps > dir.availWireBps && dir.wireDemandBps > 0.0) {
        scale = std::min(scale, dir.availWireBps / dir.wireDemandBps);
      }
    }
    hot_rate_[e.idx] *= scale;
    total_rate_bps_ += hot_rate_[e.idx];
  }
  // Pass 5: publish per-link aggregate demand (wire bits/s) for
  // Link::effectiveRate — this is where packet flows feel the fluid load.
  for (const ActiveEntry& e : active_) {
    const Flow& f = flows_[e.idx];
    for (const auto idx : f.hopIdx) {
      link_dirs_[idx].publishBps += hot_rate_[e.idx] * f.wireFactor;
    }
  }
  for (LinkDir& dir : link_dirs_) {
    const double capacity = static_cast<double>(dir.link->rate().bps());
    double demand = std::min(dir.publishBps, capacity);
    // What packet flows are charged is capped at the fluid entitlement:
    // fluid may opportunistically run above it into measured leftover, but
    // it may never squeeze packet flows below their per-flow share — that
    // measured leftover would otherwise be self-fulfilling (packet flows
    // stay slow because the published demand keeps them slow).
    if (dir.packetFlows > 0 && dir.fluidWeight > 0.0) {
      const double entitlement =
          capacity * dir.fluidWeight /
          (dir.fluidWeight + static_cast<double>(dir.packetFlows));
      demand = std::min(demand, entitlement);
    }
    dir.link->setFluidDemand(
        dir.end, sim::DataRate::bitsPerSecond(static_cast<std::uint64_t>(demand)));
  }
}

void FluidEngine::withdrawDemand() {
  for (LinkDir& dir : link_dirs_) {
    dir.publishBps = 0.0;
    dir.link->setFluidDemand(dir.end, sim::DataRate::zero());
  }
}

std::uint64_t FluidEngine::serialize(sim::Codec& c) {
  std::uint64_t claimed = 0;
  bool bound = ctx_ != nullptr;
  c.b(bound);
  if (!c.writing() && bound != (ctx_ != nullptr)) {
    c.reader().markFailed();
    return claimed;
  }
  if (!bound) return claimed;

  // Per-flow dynamic state, id order. The rebuild created the same flows in
  // the same slots, so everything derived from the path or config (hopIdx,
  // response/window/bottleneck rates, weight) is already correct.
  std::uint64_t flowCount = flows_.size();
  c.vu64(flowCount);
  if (!c.writing() && flowCount != flows_.size()) {
    c.reader().markFailed();
    return claimed;
  }
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    Flow& f = flows_[i];
    c.b(f.inUse);
    c.vu32(f.epoch);
    c.b(f.started);
    c.b(f.established);
    c.b(f.completeNotified);
    c.vu32(f.establishEpoch);
    sim::codecTime(c, f.establishedAt);
    sim::codecTime(c, f.lastDeliveryAt);
    c.f64(hot_rate_[i]);
    c.f64(hot_carry_[i]);
    c.vu64(hot_target_[i]);
    c.vu64(hot_delivered_[i]);
    const FlowId id = static_cast<FlowId>(i + 1);
    const std::uint32_t epoch = f.establishEpoch;
    claimed += sim::codecTimer(c, ctx_->sim(), f.establishEvent,
                               [this, id, epoch] { establishmentFire(id, epoch); });
  }

  // Free-list, so slot recycling continues identically.
  std::uint64_t freeCount = free_ids_.size();
  c.vu64(freeCount);
  if (c.writing()) {
    for (const FlowId id : free_ids_) {
      std::uint32_t v = id;
      c.vu32(v);
    }
  } else {
    free_ids_.clear();
    free_ids_.reserve(static_cast<std::size_t>(freeCount));
    for (std::uint64_t k = 0; k < freeCount; ++k) {
      std::uint32_t v = 0;
      c.vu32(v);
      free_ids_.push_back(v);
    }
  }

  // Per-link-direction aggregates, matched by endpoint-name key rather than
  // position: the rebuild's first-touch order can interleave packet-path
  // registrations differently than the original run did. Parallel links
  // between the same device pair disambiguate by first-touch ordinal.
  auto dirKeys = [this] {
    std::vector<std::string> keys;
    std::unordered_map<std::string, int> seen;
    keys.reserve(link_dirs_.size());
    for (const LinkDir& dir : link_dirs_) {
      std::string base = dir.link->end(0).owner().name() + "|" +
                         dir.link->end(1).owner().name() + "|" + std::to_string(dir.end);
      const int ord = seen[base]++;
      keys.push_back(base + "#" + std::to_string(ord));
    }
    return keys;
  };
  std::uint64_t dirCount = link_dirs_.size();
  c.vu64(dirCount);
  if (c.writing()) {
    const auto keys = dirKeys();
    for (std::size_t i = 0; i < link_dirs_.size(); ++i) {
      LinkDir& dir = link_dirs_[i];
      std::string key = keys[i];
      c.str(key);
      c.vint(dir.packetFlows);
      c.vu64(dir.baselineBytes);
      c.f64(dir.measuredWireBps);
      c.f64(dir.fluidWeight);
      c.f64(dir.availWireBps);
      c.f64(dir.wireDemandBps);
      c.f64(dir.publishBps);
    }
  } else {
    if (dirCount != link_dirs_.size()) {
      c.reader().markFailed();
      return claimed;
    }
    const auto keys = dirKeys();
    std::unordered_map<std::string, std::uint32_t> byKey;
    for (std::uint32_t i = 0; i < keys.size(); ++i) byKey.emplace(keys[i], i);
    for (std::uint64_t k = 0; k < dirCount; ++k) {
      std::string key;
      c.str(key);
      const auto it = byKey.find(key);
      if (it == byKey.end()) {
        c.reader().markFailed();
        return claimed;
      }
      LinkDir& dir = link_dirs_[it->second];
      c.vint(dir.packetFlows);
      c.vu64(dir.baselineBytes);
      c.f64(dir.measuredWireBps);
      c.f64(dir.fluidWeight);
      c.f64(dir.availWireBps);
      c.f64(dir.wireDemandBps);
      c.f64(dir.publishBps);
    }
  }

  // Active list and tick scheduling state.
  std::uint64_t activeCount = active_.size();
  c.vu64(activeCount);
  if (!c.writing()) active_.resize(static_cast<std::size_t>(activeCount));
  for (auto& e : active_) {
    c.vu32(e.idx);
    c.b(e.notify);
  }
  c.size(active_left_);
  c.b(rates_dirty_);
  sim::codecTime(c, last_tick_);
  c.vu64(flows_completed_);
  c.f64(total_rate_bps_);
  bool telInit = tel_init_;
  c.b(telInit);
  if (!c.writing() && telInit && !tel_init_ && ctx_->telemetry().enabled()) initTelemetry();
  claimed += sim::codecTimer(c, ctx_->sim(), ticker_event_, [this] { onTick(); });
  if (!c.writing()) ticker_armed_ = ticker_event_.valid();
  return claimed;
}

void FluidEngine::initTelemetry() {
  auto& tel = ctx_->telemetry();
  tel_bytes_ = &tel.metrics().counter("fluid/bytes_delivered");
  tel_completed_ = &tel.metrics().counter("fluid/flows_completed");
  tel.addSampler("fluid/aggregate_goodput_bps", [this] { return total_rate_bps_; });
  tel_init_ = true;
}

}  // namespace scidmz::tcp
