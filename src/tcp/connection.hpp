// TCP connection: handshake with RFC 1323 window-scale negotiation, bulk
// data transfer with NewReno loss recovery, RFC 6298 retransmission timer,
// and pluggable congestion control.
//
// The model is deliberately faithful in the places the paper's phenomena
// live: window scaling can be stripped by middleboxes (capping throughput
// at 64 KiB / RTT), loss detection is duplicate-ACK based (so a single
// drop halves the window), and the sender emits whole windows back-to-back
// at NIC line rate (the bursts that overflow shallow buffers downstream).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>

#include "net/host.hpp"
#include "sim/arena.hpp"
#include "tcp/congestion.hpp"
#include "tcp/hot_table.hpp"
#include "telemetry/span.hpp"
#include "telemetry/telemetry.hpp"

namespace scidmz::tcp {

struct TcpConfig {
  CcAlgorithm algorithm = CcAlgorithm::kReno;
  /// Cap on unacknowledged in-flight data (sender-side socket buffer).
  sim::DataSize sndBuf = sim::DataSize::mebibytes(16);
  /// Advertised receive window (receiver-side socket buffer; the app in
  /// this model consumes instantly, so the full buffer is always offered).
  sim::DataSize rcvBuf = sim::DataSize::mebibytes(16);
  /// Host supports RFC 1323 window scaling (both ends must, and the option
  /// must survive middleboxes, for windows beyond 64 KiB).
  bool windowScaling = true;
  /// Sender-side pacing (fq-style, per the DTN tuning guides): spread the
  /// window over the RTT at pacingGain * cwnd/srtt instead of emitting
  /// line-rate bursts. Protects shallow-buffered devices downstream.
  bool pacing = false;
  double pacingGain = 1.25;
  std::uint32_t initialWindowSegments = 10;
  sim::Duration minRto = sim::Duration::milliseconds(200);
  sim::Duration initialRto = sim::Duration::seconds(1);
  sim::Duration maxRto = sim::Duration::seconds(60);

  /// A tuned data transfer node: large buffers, H-TCP.
  static TcpConfig tunedDtn() {
    TcpConfig c;
    c.algorithm = CcAlgorithm::kHtcp;
    c.sndBuf = sim::DataSize::mebibytes(512);
    c.rcvBuf = sim::DataSize::mebibytes(512);
    return c;
  }

  /// An untuned general-purpose host: 64 KiB buffers, no effective scaling
  /// headroom (the pre-autotuning default the paper's Section 6.2 cites).
  static TcpConfig untunedDefault() {
    TcpConfig c;
    c.sndBuf = sim::DataSize::kibibytes(64);
    c.rcvBuf = sim::DataSize::kibibytes(64);
    return c;
  }
};

struct TcpStats {
  std::uint64_t dataSegmentsSent = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t fastRetransmits = 0;
  std::uint64_t rtos = 0;
  sim::DataSize bytesAcked = sim::DataSize::zero();
};

/// One end of a TCP connection. Create client side via the active-open
/// constructor + start(); server sides are created by TcpListener.
///
/// NOTE: these constructors are internal to the flow seam. Production code
/// creates flows through net::FlowFactory (src/tcp/flow_factory.cpp is the
/// one production call site), which is where fidelity (packet vs fluid),
/// CC algorithm and arena placement are decided. Direct construction is
/// reserved for unit tests exercising TCP internals.
class TcpConnection : public net::PacketSink {
 public:
  /// Active open (client).
  TcpConnection(net::Host& host, net::Address remote, std::uint16_t remotePort, TcpConfig config);
  /// Passive open (server side), constructed by TcpListener from a SYN.
  TcpConnection(net::Host& host, const net::Packet& syn, TcpConfig config);
  /// Snapshot-restore construction (server side): a bare shell with the
  /// given local-perspective flow key and no wire side effects — every
  /// remaining field is overlaid by serialize() in read mode. Used by
  /// TcpListener when re-materializing accepted connections from a blob.
  struct RestoreTag {};
  TcpConnection(net::Host& host, net::FlowKey flow, TcpConfig config, RestoreTag);
  ~TcpConnection() override;

  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  /// Client: begin the handshake.
  void start();

  /// Attach span tracing: this connection emits contiguous TCP-phase child
  /// spans (handshake / slow_start / cwnd_limited / rwnd_limited /
  /// loss_recovery) plus per-episode recovery spans under `parent` (the
  /// flow's root span). Sender-side instrumentation: the factory calls this
  /// on client connections only, before start(). No-op if the tracer is
  /// null or disabled.
  void setTrace(telemetry::Tracer* tracer, telemetry::SpanId parent, int stream);

  /// Queue `bytes` of bulk data for transmission (callable repeatedly).
  void sendData(sim::DataSize bytes);

  /// Half-close after all queued data: sends FIN, peer fires onClosed.
  void close();

  // --- completion callbacks -------------------------------------------
  std::function<void()> onEstablished;
  std::function<void(sim::DataSize)> onDelivered;  ///< Receiver: in-order bytes handed to app.
  std::function<void()> onSendComplete;            ///< Sender: all queued data ACKed.
  std::function<void()> onClosed;                  ///< Receiver: FIN consumed.

  // --- introspection ----------------------------------------------------
  [[nodiscard]] bool established() const { return state_ == State::kEstablished; }
  [[nodiscard]] bool closed() const { return state_ == State::kClosed; }
  [[nodiscard]] const net::FlowKey& flow() const { return flow_; }
  [[nodiscard]] const TcpStats& stats() const { return stats_; }
  [[nodiscard]] double cwndBytes() const { return hot_.cwnd(hot_row_); }
  [[nodiscard]] sim::Duration srtt() const {
    return sim::Duration::nanoseconds(hot_.srttNs(hot_row_));
  }
  [[nodiscard]] bool windowScalingActive() const { return scaling_ok_; }
  [[nodiscard]] std::uint64_t peerWindowBytes() const { return peer_wnd_; }
  [[nodiscard]] std::string_view ccName() const { return cc_->name(); }

  /// Snapshot of internal transfer state, for diagnosis tooling and tests.
  struct DebugState {
    std::uint64_t sndUna = 0;
    std::uint64_t sndNxt = 0;
    std::uint64_t sendTarget = 0;
    std::uint64_t rcvNxt = 0;
    bool inRecovery = false;
    int dupAcks = 0;
    bool rtoArmed = false;
    sim::Duration rto = sim::Duration::zero();
  };
  [[nodiscard]] DebugState debugState() const {
    return DebugState{hot_.sndUna(hot_row_), hot_.sndNxt(hot_row_), send_target_, rcv_nxt_,
                      in_recovery_, dup_acks_, rto_timer_.valid(), rto_};
  }

  /// Receiver-side delivered byte count and average goodput.
  [[nodiscard]] sim::DataSize deliveredBytes() const { return delivered_; }
  [[nodiscard]] sim::DataRate deliveryRate() const;
  /// Sender-side goodput (acked bytes over active sending time).
  [[nodiscard]] sim::DataRate goodput() const;

  /// Entry point for segments (host demux for clients, listener dispatch
  /// for server sides).
  void onPacket(const net::Packet& packet) override;

  /// Snapshot/restore of the full connection state: handshake results, the
  /// hot-table row, sender/receiver sequence state, SACK scoreboard, RTO
  /// machinery, stats, CC-internal state, telemetry registration, and the
  /// pending RTO/pacing timers (re-armed under their original keys).
  /// Span tracing is not snapshotted — the orchestrator refuses to
  /// snapshot runs with an enabled tracer. Returns the number of pending
  /// events claimed.
  std::uint64_t serialize(sim::Codec& c);

 private:
  enum class State { kIdle, kSynSent, kSynReceived, kEstablished, kClosed };

  void sendSyn();
  void sendSynAck();
  void sendAckOnly();
  void sendSegment(std::uint64_t seq, sim::DataSize len, bool fin, bool isRetransmit);
  void trySend();
  /// Paced mode: emit at most one segment, then arm the pacing timer.
  void pacedSend();
  [[nodiscard]] bool sendOneSegment();
  void handleAck(const net::TcpHeader& header);
  void handleData(const net::Packet& packet);
  void enterRecovery();
  void retransmitFrom(std::uint64_t seq);
  /// Merge the ACK's SACK blocks into the scoreboard.
  void absorbSack(const net::TcpHeader& header);
  /// RFC 6675-style recovery step: retransmit un-SACKed holes (and then
  /// new data) while the pipe has room under cwnd.
  void sackRetransmit();
  [[nodiscard]] std::uint64_t sackedBytesInFlight() const;
  /// First un-SACKed byte at or after `point`.
  [[nodiscard]] std::uint64_t nextHole(std::uint64_t point) const;
  void becomeEstablished();
  /// Registers per-flow probes (cwnd/ssthresh/srtt/in-flight), caches the
  /// retransmit/RTO counters and interns the flow's emit point. Called on
  /// establishment when telemetry is enabled; samplers are unregistered in
  /// the destructor so a closing connection stops being sampled.
  void initTelemetry();
  /// Restore-path variant of initTelemetry(): trusts the snapshotted emit
  /// point id (the flight-recorder overlay re-installs the matching intern
  /// table) instead of interning a fresh one, and skips re-registration
  /// when samplers are already armed (restore-twice into one Context).
  void restoreTelemetry(std::uint32_t point);
  void checkSendComplete();

  /// Span-tracing phase machine (active only when setTrace armed it).
  /// Phases are contiguous: exactly one phase span is open from start()
  /// until destruction, so the critical-path report can attribute the
  /// flow's whole lifetime. Transitions are evaluated at establishment, on
  /// loss (fast retransmit / RTO) and at each new-data ACK.
  enum class TracePhase : std::uint8_t {
    kNone,
    kHandshake,
    kSlowStart,     ///< cwnd < ssthresh, window not receiver-limited.
    kCwndLimited,   ///< congestion avoidance; cwnd is the binding term.
    kRwndLimited,   ///< peer window binds Eq. 2's min(cwnd, rwnd, sndbuf).
    kLossRecovery,  ///< from loss until cwnd regrows to its pre-loss value.
  };
  void traceSetPhase(TracePhase phase, sim::SimTime now);
  [[nodiscard]] TracePhase steadyPhase() const;
  void traceOnAck(sim::SimTime now);

  void sampleRtt(sim::Duration sample);
  void armRto();
  void cancelRto();
  void onRtoFire();
  [[nodiscard]] std::uint64_t effectiveWindow() const;
  [[nodiscard]] std::uint16_t advertisedField() const;
  [[nodiscard]] std::uint64_t sendLimit() const {
    return send_target_ + (fin_pending_ ? 1 : 0);
  }

  // Hot-row shorthands: the five per-ACK fields live in the per-Context
  // FlowHotTable (tcp/hot_table.hpp), this connection owning row hot_row_.
  [[nodiscard]] std::uint64_t sndUna() const { return hot_.sndUna(hot_row_); }
  [[nodiscard]] std::uint64_t& sndUna() { return hot_.sndUna(hot_row_); }
  [[nodiscard]] std::uint64_t sndNxt() const { return hot_.sndNxt(hot_row_); }
  [[nodiscard]] std::uint64_t& sndNxt() { return hot_.sndNxt(hot_row_); }
  void setSrtt(sim::Duration d) { hot_.srttNs(hot_row_) = d.ns(); }
  /// Copy the row (plus mss) into the by-reference shape the
  /// CongestionControl hooks expect; pair with ccStore() after the call.
  [[nodiscard]] CcState ccLoad() const {
    CcState st;
    st.cwnd = hot_.cwnd(hot_row_);
    st.ssthresh = hot_.ssthresh(hot_row_);
    st.mss = mss_;
    return st;
  }
  void ccStore(const CcState& st) {
    hot_.cwnd(hot_row_) = st.cwnd;
    hot_.ssthresh(hot_row_) = st.ssthresh;
  }

  net::Host& host_;
  TcpConfig config_;
  net::FlowKey flow_;  ///< Local perspective: src = this host.
  State state_ = State::kIdle;
  bool client_side_ = false;
  bool bound_port_ = false;

  // Congestion control. The window state itself lives in the hot table;
  // only the algorithm object and the (immutable) mss stay here.
  sim::DataSize mss_ = sim::DataSize::bytes(1460);
  std::unique_ptr<CongestionControl> cc_;
  FlowHotTable& hot_;
  std::uint32_t hot_row_ = 0;

  // Sender state (byte sequence space; data starts at 0, FIN at target).
  std::uint64_t send_target_ = 0;
  bool fin_pending_ = false;
  bool send_complete_notified_ = false;
  std::uint64_t peer_wnd_ = 65535;
  int dup_acks_ = 0;
  bool in_recovery_ = false;
  std::uint64_t recover_ = 0;
  /// SACK scoreboard: received ranges above snd_una_, disjoint, sorted.
  std::map<std::uint64_t, std::uint64_t> sacked_;
  /// Highest sequence retransmitted during this recovery episode.
  std::uint64_t high_rxt_ = 0;
  sim::SimTime first_send_at_;
  sim::SimTime last_ack_at_;
  bool sent_any_ = false;

  // Window scaling negotiation.
  bool scaling_ok_ = false;
  std::uint8_t snd_wscale_ = 0;  ///< Peer's receive-window shift.
  std::uint8_t rcv_wscale_ = 0;  ///< Our receive-window shift.

  // RTO machinery (RFC 6298). srtt lives in the hot table (sampled by
  // telemetry and read per paced send); rttvar is only touched per sample.
  sim::Duration rttvar_ = sim::Duration::zero();
  bool have_rtt_ = false;
  sim::Duration rto_;
  sim::EventId rto_timer_{};
  sim::EventId pace_timer_{};

  // Receiver state.
  std::uint64_t rcv_nxt_ = 0;
  std::uint64_t ts_recent_ = 0;  ///< tsVal of the segment triggering our next ACK.
  std::map<std::uint64_t, std::uint64_t> ooo_;  ///< start -> end, disjoint.
  std::optional<std::uint64_t> fin_seq_;
  sim::DataSize delivered_ = sim::DataSize::zero();
  sim::SimTime first_delivery_at_;
  sim::SimTime last_delivery_at_;
  bool delivered_any_ = false;

  TcpStats stats_;

  // Span tracing (armed by setTrace; null tracer = zero cost).
  telemetry::Tracer* tracer_ = nullptr;
  telemetry::SpanId trace_parent_{};
  int trace_stream_ = 0;
  TracePhase trace_phase_ = TracePhase::kNone;
  telemetry::SpanId phase_span_{};
  telemetry::SpanId episode_span_{};
  /// cwnd at the loss that opened the current loss-recovery phase; the
  /// phase ends when cwnd regrows past it (or the connection dies).
  double loss_cwnd_ref_ = 0.0;

  // Telemetry (armed lazily; zero cost while the hub is disabled).
  bool tel_init_ = false;
  std::uint32_t tel_point_ = 0;
  std::uint64_t* tel_retransmits_ = nullptr;
  std::uint64_t* tel_rtos_ = nullptr;
  std::array<telemetry::SamplerId, 4> tel_samplers_{};
};

/// Listening socket: accepts SYNs on a port, owns the spawned server-side
/// connections, and dispatches subsequent segments to them by flow.
class TcpListener : public net::PacketSink {
 public:
  TcpListener(net::Host& host, std::uint16_t port, TcpConfig config);
  ~TcpListener() override;

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Fired when a new connection completes its handshake.
  std::function<void(TcpConnection&)> onAccept;

  void onPacket(const net::Packet& packet) override;

  [[nodiscard]] std::size_t connectionCount() const { return connections_.size(); }

  /// Accepted connection for a client→server packet flow key, or nullptr.
  /// Flow handles use this after a restore to re-wire per-stream callbacks.
  [[nodiscard]] TcpConnection* find(const net::FlowKey& packetFlow) {
    const auto it = connections_.find(packetFlow);
    return it == connections_.end() ? nullptr : it->second.get();
  }

  /// Snapshot/restore of the accept table. Connections are written in a
  /// deterministic (sorted-key) order; on read the table is rebuilt from
  /// scratch with restore-constructed connections, each overlaid by its own
  /// serialize(). Returns the number of pending events claimed.
  std::uint64_t serialize(sim::Codec& c);

 private:
  net::Host& host_;
  std::uint16_t port_;
  TcpConfig config_;
  /// Server-side connections are arena blocks: accept/teardown churn in
  /// fan-in scenarios recycles Context-arena slabs instead of the heap.
  std::unordered_map<net::FlowKey, sim::ArenaPtr<TcpConnection>, net::FlowKeyHash> connections_;
};

}  // namespace scidmz::tcp
