// net::FlowFactory::create and the two FlowHandle implementations.
//
// This file is the one production construction site of tcp::TcpConnection /
// tcp::TcpListener (tests may still build them directly). It lives in the
// tcp library so net/flow.hpp can stay a pure interface; every consumer of
// the factory already links scidmz_tcp, so the symbol resolves everywhere.
//
// PacketFlowHandle reproduces the historical call-site construction order
// exactly — listener first, then each client connection (whose constructor
// draws the ephemeral port) — so pre-factory scenarios stay byte-identical.
#include "net/flow.hpp"

#include <utility>
#include <vector>

#include "net/context.hpp"
#include "net/host.hpp"
#include "sim/arena.hpp"
#include "tcp/connection.hpp"
#include "tcp/fluid.hpp"
#include "telemetry/span.hpp"

namespace scidmz::tcp {

namespace {

/// Arena-place a concrete handle type. The FlowPtr deleter dispatches
/// through FlowHandle::destroySelf(), so each concrete class returns its
/// own exact block size (ArenaPtr's typed deleter cannot type-erase).
template <typename T, typename... Args>
net::FlowPtr makeHandle(net::Context& ctx, Args&&... args) {
  void* mem = ctx.arena().allocate(sizeof(T), alignof(T));
  try {
    return net::FlowPtr(::new (mem) T(std::forward<Args>(args)...));
  } catch (...) {
    ctx.arena().deallocate(mem, sizeof(T), alignof(T));
    throw;
  }
}

/// Open the flow's root span (both fidelities route through here so a
/// trace always has one root per created flow). Returns a disarmed pair
/// when tracing is off.
std::pair<telemetry::Tracer*, telemetry::SpanId> beginFlowSpan(
    net::Context& ctx, net::Host& src, net::Host& dst, net::FlowFidelity fidelity, int streams,
    const net::FlowFactory::Options& options) {
  telemetry::Tracer& tracer = ctx.extension<telemetry::Tracer>();
  if (!tracer.enabled()) return {nullptr, telemetry::SpanId{}};
  const telemetry::SpanId root =
      tracer.begin(ctx.now(), "flow " + src.name() + "->" + dst.name(), "flow");
  tracer.annotate(root, "fidelity", net::toString(fidelity));
  tracer.annotate(root, "streams", static_cast<std::uint64_t>(streams));
  tracer.annotate(root, "port", static_cast<std::uint64_t>(options.port));
  tracer.setCorrelationKey(root, src.address().value(), dst.address().value());
  return {&tracer, root};
}

class PacketFlowHandle final : public net::FlowHandle {
 public:
  PacketFlowHandle(net::Context& ctx, net::Host& src, net::Host& dst, const TcpConfig& config,
                   const net::FlowFactory::Options& options)
      : ctx_(ctx), src_(src), dst_(dst) {
    const int streams = options.streams < 1 ? 1 : options.streams;
    const TcpConfig& serverConfig = options.serverTcp != nullptr ? *options.serverTcp : config;
    listener_ = ctx.arena().make<TcpListener>(dst, options.port, serverConfig);
    listener_->onAccept = [this](TcpConnection& conn) { onServerAccept(conn); };
    servers_.assign(static_cast<std::size_t>(streams), nullptr);
    pending_.assign(static_cast<std::size_t>(streams), 0);
    clients_.reserve(static_cast<std::size_t>(streams));
    const auto [tracer, root] =
        beginFlowSpan(ctx, src, dst, net::FlowFidelity::kPacket, streams, options);
    tracer_ = tracer;
    root_ = root;
    for (int i = 0; i < streams; ++i) {
      auto client = ctx.arena().make<TcpConnection>(src, dst.address(), options.port, config);
      client->onEstablished = [this, i] { onStreamUp(i); };
      client->onSendComplete = [this, i] { onStreamDrained(i); };
      if (tracer_ != nullptr) client->setTrace(tracer_, root_, i);
      clients_.push_back(std::move(client));
    }
  }

  ~PacketFlowHandle() override {
    deregisterPath();
    endRootSpan();
  }

  void start() override {
    // Register with the fluid engine so capacity entitlement on shared
    // links counts this flow; pure bookkeeping, no events or RNG draws.
    if (!registered_) {
      path_ = net::traceFlowPath(src_, dst_);
      if (path_.complete()) {
        ctx_.extension<FluidEngine>().registerPacketPath(path_);
        registered_ = true;
      }
    }
    for (auto& client : clients_) client->start();
  }

  void sendData(sim::DataSize bytes) override {
    const int i = next_stream_;
    next_stream_ = (next_stream_ + 1) % static_cast<int>(clients_.size());
    sendOnStream(i, bytes);
  }

  void sendOnStream(int stream, sim::DataSize bytes) override {
    auto& client = clients_.at(static_cast<std::size_t>(stream));
    queued_any_ = true;
    if (pending_[static_cast<std::size_t>(stream)] == 0) {
      pending_[static_cast<std::size_t>(stream)] = 1;
      ++pending_count_;
    }
    client->sendData(bytes);
  }

  void abort() override {
    deregisterPath();
    for (auto& client : clients_) client.reset();
    listener_.reset();
    for (auto& server : servers_) server = nullptr;
    endRootSpan();
  }

  [[nodiscard]] net::FlowFidelity fidelity() const override {
    return net::FlowFidelity::kPacket;
  }
  [[nodiscard]] int streamCount() const override { return static_cast<int>(clients_.size()); }

  [[nodiscard]] bool established() const override {
    if (clients_.empty()) return false;
    for (const auto& client : clients_) {
      if (!client || !client->established()) return false;
    }
    return true;
  }

  [[nodiscard]] bool sendComplete() const override { return queued_any_ && pending_count_ == 0; }

  [[nodiscard]] sim::DataSize deliveredBytes() const override {
    auto total = sim::DataSize::zero();
    for (const auto* server : servers_) {
      if (server != nullptr) total += server->deliveredBytes();
    }
    return total;
  }

  [[nodiscard]] sim::DataSize ackedBytes() const override {
    auto total = sim::DataSize::zero();
    for (const auto& client : clients_) {
      if (client) total += client->stats().bytesAcked;
    }
    return total;
  }

  [[nodiscard]] sim::DataRate goodput() const override {
    std::uint64_t bps = 0;
    for (const auto& client : clients_) {
      if (client) bps += client->goodput().bps();
    }
    return sim::DataRate::bitsPerSecond(bps);
  }

  [[nodiscard]] std::uint64_t retransmits() const override {
    std::uint64_t total = 0;
    for (const auto& client : clients_) {
      if (client) total += client->stats().retransmits;
    }
    return total;
  }

  [[nodiscard]] sim::DataRate currentRate() const override {
    double bps = 0.0;
    for (const auto& client : clients_) {
      if (!client || !client->established()) continue;
      const auto srtt = client->srtt();
      if (srtt > sim::Duration::zero()) {
        bps += client->cwndBytes() * 8.0 / srtt.toSeconds();
      }
    }
    return sim::DataRate::bitsPerSecond(static_cast<std::uint64_t>(bps));
  }

  [[nodiscard]] TcpConnection* clientConnection(int stream) override {
    if (stream < 0 || stream >= streamCount()) return nullptr;
    return clients_[static_cast<std::size_t>(stream)].get();
  }
  [[nodiscard]] TcpConnection* serverConnection(int stream) override {
    if (stream < 0 || stream >= streamCount()) return nullptr;
    return servers_[static_cast<std::size_t>(stream)];
  }

  std::uint64_t serializeState(sim::Codec& c) override {
    std::uint64_t claimed = 0;
    bool hasListener = static_cast<bool>(listener_);
    c.b(hasListener);
    if (!c.writing()) {
      if (!hasListener) {
        listener_.reset();  // the flow was aborted before the snapshot
      } else if (!listener_) {
        c.reader().markFailed();
        return claimed;
      }
    }
    if (hasListener) claimed += listener_->serialize(c);
    std::uint64_t clientCount = clients_.size();
    c.vu64(clientCount);
    if (!c.writing() && clientCount != clients_.size()) {
      c.reader().markFailed();
      return claimed;
    }
    for (auto& client : clients_) {
      bool alive = static_cast<bool>(client);
      c.b(alive);
      if (!c.writing() && !alive) {
        client.reset();
        continue;
      }
      if (!alive) continue;
      if (!client) {  // snapshot has a live client the rebuild lacks
        c.reader().markFailed();
        return claimed;
      }
      claimed += client->serialize(c);
    }
    for (auto& p : pending_) {
      std::uint8_t v = static_cast<std::uint8_t>(p);
      c.u8(v);
      if (!c.writing()) p = static_cast<char>(v);
    }
    c.vint(pending_count_);
    c.vint(established_count_);
    c.vint(next_stream_);
    c.b(queued_any_);
    bool registered = registered_;
    c.b(registered);
    if (!c.writing()) {
      // Re-derive servers_: the listener restored its accepted connections
      // under their packet-flow keys; match each client's ephemeral port
      // and re-wire delivery, exactly as onServerAccept() did originally.
      for (std::size_t i = 0; i < clients_.size(); ++i) {
        servers_[i] = nullptr;
        if (!clients_[i] || !listener_) continue;
        TcpConnection* server = listener_->find(clients_[i]->flow());
        if (server != nullptr && server->established()) {
          servers_[i] = server;
          server->onDelivered = [this](sim::DataSize bytes) {
            if (onDelivered) onDelivered(bytes);
          };
        }
      }
      // Re-register with the fluid engine (pure bookkeeping; the FLU
      // section overlays the authoritative per-link counts afterwards, but
      // the registration keeps link_dirs_'s first-touch set complete).
      deregisterPath();
      if (registered) {
        path_ = net::traceFlowPath(src_, dst_);
        if (path_.complete()) {
          ctx_.extension<FluidEngine>().registerPacketPath(path_);
          registered_ = true;
        }
      }
    }
    return claimed;
  }

 protected:
  void destroySelf() noexcept override {
    sim::Arena& arena = ctx_.arena();
    this->~PacketFlowHandle();
    arena.deallocate(this, sizeof(PacketFlowHandle), alignof(PacketFlowHandle));
  }

 private:
  void onServerAccept(TcpConnection& conn) {
    // Map the accepted connection to its stream: the server side's remote
    // port is the client's ephemeral port, drawn in our constructor.
    for (std::size_t i = 0; i < clients_.size(); ++i) {
      if (clients_[i] && clients_[i]->flow().srcPort == conn.flow().dstPort) {
        servers_[i] = &conn;
        conn.onDelivered = [this](sim::DataSize bytes) {
          if (onDelivered) onDelivered(bytes);
        };
        if (onAccepted) onAccepted(static_cast<int>(i));
        return;
      }
    }
  }

  void onStreamUp(int stream) {
    ++established_count_;
    if (onStreamEstablished) onStreamEstablished(stream);
    if (established_count_ == streamCount() && onEstablished) onEstablished();
  }

  void onStreamDrained(int stream) {
    if (pending_[static_cast<std::size_t>(stream)] == 0) return;
    pending_[static_cast<std::size_t>(stream)] = 0;
    --pending_count_;
    if (onStreamSendComplete) onStreamSendComplete(stream);
    if (pending_count_ == 0) {
      deregisterPath();  // the flow no longer competes for capacity
      if (onSendComplete) onSendComplete();
    }
  }

  void deregisterPath() noexcept {
    if (registered_) {
      ctx_.extension<FluidEngine>().deregisterPacketPath(path_);
      registered_ = false;
    }
  }

  void endRootSpan() {
    if (tracer_ != nullptr && root_.valid()) {
      tracer_->end(root_, ctx_.now());
      root_ = telemetry::SpanId{};
    }
  }

  telemetry::Tracer* tracer_ = nullptr;
  telemetry::SpanId root_{};
  net::Context& ctx_;
  net::Host& src_;
  net::Host& dst_;
  sim::ArenaPtr<TcpListener> listener_;
  std::vector<sim::ArenaPtr<TcpConnection>> clients_;
  std::vector<TcpConnection*> servers_;
  std::vector<char> pending_;  ///< per stream: queued data not yet drained
  int pending_count_ = 0;
  int established_count_ = 0;
  int next_stream_ = 0;
  bool queued_any_ = false;
  net::FlowPath path_;
  bool registered_ = false;
};

class FluidFlowHandle final : public net::FlowHandle {
 public:
  FluidFlowHandle(net::Context& ctx, net::Host& src, net::Host& dst, const TcpConfig& config,
                  const net::FlowFactory::Options& options)
      : ctx_(ctx), engine_(ctx.extension<FluidEngine>()) {
    engine_.attach(ctx);
    streams_ = options.streams < 1 ? 1 : options.streams;
    id_ = engine_.addFlow(src, dst, config, streams_);
    const auto [tracer, root] =
        beginFlowSpan(ctx, src, dst, net::FlowFidelity::kFluid, streams_, options);
    tracer_ = tracer;
    root_ = root;
    auto& cb = engine_.callbacks(id_);
    cb.onEstablished = [this] {
      if (tracer_ != nullptr && !phase_.valid()) {
        if (handshake_.valid()) tracer_->end(handshake_, ctx_.now());
        // The analytic model has no per-ACK window dynamics: its whole
        // established lifetime reads as one cwnd-limited phase.
        phase_ = tracer_->begin(ctx_.now(), "cwnd_limited", "tcp.phase", root_);
        tracer_->annotate(phase_, "model", "fluid");
      }
      for (int i = 0; i < streams_; ++i) {
        if (onAccepted) onAccepted(i);
        if (onStreamEstablished) onStreamEstablished(i);
      }
      if (onEstablished) onEstablished();
      // The user callback above was the last natural point to assign
      // onDelivered; re-sync so the engine knows whether to notify.
      syncDeliveryCallback();
    };
    cb.onSendComplete = [this] {
      if (onStreamSendComplete) {
        for (int i = 0; i < streams_; ++i) onStreamSendComplete(i);
      }
      if (onSendComplete) onSendComplete();
    };
  }

  ~FluidFlowHandle() override {
    engine_.removeFlow(id_);
    endSpans();
  }

  void start() override {
    if (tracer_ != nullptr && root_.valid() && !handshake_.valid()) {
      handshake_ = tracer_->begin(ctx_.now(), "handshake", "tcp.phase", root_);
    }
    syncDeliveryCallback();
    engine_.startFlow(id_);
  }
  void sendData(sim::DataSize bytes) override { engine_.queueData(id_, bytes); }
  void sendOnStream(int, sim::DataSize bytes) override { engine_.queueData(id_, bytes); }
  void abort() override {
    engine_.removeFlow(id_);
    id_ = 0;
    endSpans();
  }

  [[nodiscard]] net::FlowFidelity fidelity() const override { return net::FlowFidelity::kFluid; }
  [[nodiscard]] int streamCount() const override { return streams_; }
  [[nodiscard]] bool established() const override { return engine_.established(id_); }
  [[nodiscard]] bool sendComplete() const override { return engine_.sendComplete(id_); }
  [[nodiscard]] sim::DataSize deliveredBytes() const override {
    return engine_.deliveredBytes(id_);
  }
  /// Fluid flows have no retransmission queue: delivered == acked.
  [[nodiscard]] sim::DataSize ackedBytes() const override { return engine_.deliveredBytes(id_); }
  [[nodiscard]] sim::DataRate goodput() const override { return engine_.goodput(id_); }
  [[nodiscard]] std::uint64_t retransmits() const override {
    return engine_.retransmitEstimate(id_);
  }
  [[nodiscard]] sim::DataRate currentRate() const override { return engine_.currentRate(id_); }

  [[nodiscard]] TcpConnection* clientConnection(int) override { return nullptr; }
  [[nodiscard]] TcpConnection* serverConnection(int) override { return nullptr; }

  std::uint64_t serializeState(sim::Codec& c) override {
    // The engine-side flow record is carried wholesale by the FLU section;
    // the handle only overlays its id (0 after an abort) and re-registers
    // its delivery callback, which cannot cross the wire.
    std::uint32_t id = id_;
    c.vu32(id);
    if (!c.writing()) {
      if (id == 0 && id_ != 0) {
        engine_.removeFlow(id_);  // aborted before the snapshot (FLU re-overlays)
        id_ = 0;
      } else if (id != id_) {
        c.reader().markFailed();
        return 0;
      }
    }
    bool notify = id_ != 0 && static_cast<bool>(engine_.callbacks(id_).onDelivered);
    c.b(notify);
    if (!c.writing() && notify) syncDeliveryCallback();
    return 0;
  }

 protected:
  void destroySelf() noexcept override {
    sim::Arena& arena = ctx_.arena();
    this->~FluidFlowHandle();
    arena.deallocate(this, sizeof(FluidFlowHandle), alignof(FluidFlowHandle));
  }

 private:
  /// Per-delivery notification costs one indirect call per flow per engine
  /// tick, so it is only registered when someone actually listens. Checked
  /// at start() and again after onEstablished; assigning onDelivered later
  /// than that is not supported at fluid fidelity (see net::FlowHandle).
  void syncDeliveryCallback() {
    if (!onDelivered || id_ == 0) return;
    auto& cb = engine_.callbacks(id_);
    if (!cb.onDelivered) {
      cb.onDelivered = [this](sim::DataSize bytes) {
        if (onDelivered) onDelivered(bytes);
      };
    }
  }

  void endSpans() {
    if (tracer_ == nullptr) return;
    const auto now = ctx_.now();
    if (handshake_.valid() && tracer_->isOpen(handshake_)) tracer_->end(handshake_, now);
    if (phase_.valid()) tracer_->end(phase_, now);
    if (root_.valid()) tracer_->end(root_, now);
    root_ = phase_ = handshake_ = telemetry::SpanId{};
  }

  net::Context& ctx_;
  FluidEngine& engine_;
  FluidEngine::FlowId id_ = 0;
  int streams_ = 1;
  telemetry::Tracer* tracer_ = nullptr;
  telemetry::SpanId root_{};
  telemetry::SpanId handshake_{};
  telemetry::SpanId phase_{};
};

}  // namespace

}  // namespace scidmz::tcp

namespace scidmz::net {

FlowPtr FlowFactory::create(Host& src, Host& dst, const tcp::TcpConfig& tcp,
                            const Options& options) {
  const FlowFidelity fidelity = resolve(src, dst, options);
  const int streams = options.streams < 1 ? 1 : options.streams;
  flows_created_ += static_cast<std::uint64_t>(streams);
  Context& ctx = src.ctx();
  FlowPtr handle;
  if (fidelity == FlowFidelity::kFluid) {
    fluid_flows_created_ += static_cast<std::uint64_t>(streams);
    handle = tcp::makeHandle<tcp::FluidFlowHandle>(ctx, ctx, src, dst, tcp, options);
  } else {
    handle = tcp::makeHandle<tcp::PacketFlowHandle>(ctx, ctx, src, dst, tcp, options);
  }
  noteHandleCreated(handle.get());
  return handle;
}

}  // namespace scidmz::net
