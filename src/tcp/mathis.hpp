// Analytic TCP throughput models from the paper.
//
// Equation 1 (Mathis et al. 1997): maximum TCP throughput is at most
//     (MSS / RTT) * (C / sqrt(p))
// with C ~ sqrt(3/2) for a Reno-style sender acknowledging every segment.
// Equation 2: the bandwidth-delay product window required to fill a path.
#pragma once

#include <cmath>

#include "sim/units.hpp"

namespace scidmz::tcp {

/// Mathis constant for per-segment ACKs.
inline constexpr double kMathisC = 1.2247448713915890;  // sqrt(3/2)

/// Equation 1: loss-bounded throughput. For p == 0 the model is unbounded;
/// callers should clamp with `lossFreeThroughput`.
[[nodiscard]] inline sim::DataRate mathisThroughput(sim::DataSize mss, sim::Duration rtt,
                                                    double lossRate) {
  if (lossRate <= 0.0 || rtt <= sim::Duration::zero()) {
    return sim::DataRate::bitsPerSecond(0);
  }
  const double bitsPerSecond =
      static_cast<double>(mss.bitCount()) / rtt.toSeconds() * (kMathisC / std::sqrt(lossRate));
  return sim::DataRate::bitsPerSecond(static_cast<std::uint64_t>(bitsPerSecond));
}

/// Loss-free ceiling: the lower of the bottleneck rate and the window-limited
/// rate (receive window / RTT).
[[nodiscard]] inline sim::DataRate lossFreeThroughput(sim::DataRate bottleneck,
                                                      sim::DataSize window, sim::Duration rtt) {
  if (rtt <= sim::Duration::zero()) return bottleneck;
  const double windowBps = static_cast<double>(window.bitCount()) / rtt.toSeconds();
  const auto windowRate = sim::DataRate::bitsPerSecond(static_cast<std::uint64_t>(windowBps));
  return windowRate < bottleneck ? windowRate : bottleneck;
}

/// Combined prediction: min(loss bound, bottleneck, window bound).
[[nodiscard]] inline sim::DataRate predictThroughput(sim::DataRate bottleneck, sim::DataSize mss,
                                                     sim::DataSize window, sim::Duration rtt,
                                                     double lossRate) {
  const auto ceiling = lossFreeThroughput(bottleneck, window, rtt);
  if (lossRate <= 0.0) return ceiling;
  const auto bound = mathisThroughput(mss, rtt, lossRate);
  return bound < ceiling ? bound : ceiling;
}

/// Equation 2: window needed to sustain `rate` over `rtt` (the paper's
/// example: 1 Gbps x 10 ms -> 1.25 MB).
[[nodiscard]] inline sim::DataSize bandwidthDelayWindow(sim::DataRate rate, sim::Duration rtt) {
  return rate.bytesIn(rtt);
}

}  // namespace scidmz::tcp
