#include "tcp/htcp.hpp"

#include <algorithm>

namespace scidmz::tcp {

double HtcpCc::alpha(sim::SimTime now) const {
  if (!had_loss_) return 1.0;
  const double delta = (now - last_loss_).toSeconds();
  if (delta <= kDeltaL) return 1.0;
  const double d = delta - kDeltaL;
  // Quadratic ramp from the H-TCP paper: 1 + 10d + (d/2)^2, in MSS per RTT.
  return 1.0 + 10.0 * d + 0.25 * d * d;
}

void HtcpCc::onAckedBytes(CcState& state, std::uint64_t ackedBytes, sim::Duration srtt,
                          sim::SimTime now) {
  (void)srtt;
  const double mss = static_cast<double>(state.mss.byteCount());
  if (state.inSlowStart()) {
    state.cwnd += std::min(static_cast<double>(ackedBytes), mss);
    return;
  }
  // alpha MSS per RTT, apportioned per ACK.
  state.cwnd += alpha(now) * mss * mss / state.cwnd;
}

void HtcpCc::onPacketLoss(CcState& state, sim::SimTime now) {
  const double mss = static_cast<double>(state.mss.byteCount());
  // Adaptive backoff: shrink only as far as the queueing contribution to
  // RTT suggests, bounded to [0.5, 0.8].
  double beta = kBetaMin;
  if (rtt_max_s_ > 0.0 && rtt_min_s_ < 1e9) {
    beta = std::clamp(rtt_min_s_ / rtt_max_s_, kBetaMin, kBetaMax);
  }
  state.ssthresh = std::max(state.cwnd * beta, 2.0 * mss);
  state.cwnd = state.ssthresh;
  had_loss_ = true;
  last_loss_ = now;
  // Restart the RTT envelope for the next congestion epoch.
  rtt_min_s_ = 1e9;
  rtt_max_s_ = 0.0;
}

void HtcpCc::onRto(CcState& state, sim::SimTime now) {
  CongestionControl::onRto(state, now);
  had_loss_ = true;
  last_loss_ = now;
}

void HtcpCc::onRttSample(sim::Duration rtt) {
  const double s = rtt.toSeconds();
  rtt_min_s_ = std::min(rtt_min_s_, s);
  rtt_max_s_ = std::max(rtt_max_s_, s);
}

}  // namespace scidmz::tcp
