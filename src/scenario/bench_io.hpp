// Bench output plumbing: aligned ASCII table printing, the
// machine-readable table emitter (scidmz.bench.table.v1 JSON next to every
// ASCII table, consumed by CI), and the sweep-report summary (stderr +
// BENCH_sim.json). (Moved here from bench/bench_util.hpp.)
//
// bench::Table is the one-call emitter: each row is described once as typed
// Cells and rendered to BOTH the ASCII table and the JSON mirror, so the
// two outputs can never drift. Per-column printf formats reproduce the
// legacy tables byte-for-byte; a pre-rendered Cell overrides the ASCII text
// for the handful of historical cells whose ASCII and JSON forms diverge.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "sim/sweep.hpp"

namespace scidmz::bench {

inline void header(const char* title, const char* paperRef) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paperRef);
  std::printf("================================================================\n");
}

inline std::string vformatRow(const char* fmt, va_list args) {
  va_list copy;
  va_copy(copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out(n > 0 ? static_cast<std::size_t>(n) : 0, '\0');
  if (n > 0) std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  return out;
}

/// printf into a std::string — for cells that run off the main thread and
/// must defer their output until the sweep completes.
inline std::string formatRow(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::string out = vformatRow(fmt, args);
  va_end(args);
  return out;
}

inline void row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

/// Table cell for a measured rate: "%.1f" when the flow established, the
/// "n/e" (never established) marker otherwise — a silent 0.0 looks like a
/// collapsed-but-working flow, which is a different failure.
inline std::string mbpsCell(double mbps, bool established) {
  return established ? formatRow("%.1f", mbps) : std::string{"n/e"};
}

/// Print each sweep run's parallel stats to stderr (stdout must stay
/// byte-identical to a serial run) and write the BENCH_sim.json wall-clock
/// summary. SCIDMZ_BENCH_JSON overrides the output path; set it empty to
/// disable the file.
inline void writeSweepReport(const sim::SweepRunner& sweep, const char* benchName) {
  for (const auto& run : sweep.history()) {
    const double speedup = run.wallSeconds > 0 ? run.cellSecondsSum() / run.wallSeconds : 0.0;
    std::fprintf(stderr,
                 "[sweep] %s/%s: %zu cells on %d worker%s, %.2fs wall "
                 "(%.2fs serial-equivalent, %.2fx), %llu events\n",
                 benchName, run.name.c_str(), run.cells.size(), run.workers,
                 run.workers == 1 ? "" : "s", run.wallSeconds,
                 run.cellSecondsSum(), speedup,
                 static_cast<unsigned long long>(run.totalEvents()));
  }
  const char* env = std::getenv("SCIDMZ_BENCH_JSON");
  const std::string path = env != nullptr ? env : "BENCH_sim.json";
  if (path.empty()) return;
  if (!sweep.writeJson(benchName, path)) {
    std::fprintf(stderr, "[sweep] could not write %s\n", path.c_str());
  }
}

/// A cell of a machine-readable bench table: number or string.
struct JsonValue {
  enum class Kind { kNumber, kString };
  Kind kind = Kind::kNumber;
  double number = 0.0;
  std::string text;

  JsonValue(double v) : number(v) {}                        // NOLINT(google-explicit-constructor)
  JsonValue(int v) : number(v) {}                           // NOLINT(google-explicit-constructor)
  JsonValue(long long v)                                    // NOLINT(google-explicit-constructor)
      : number(static_cast<double>(v)) {}
  JsonValue(unsigned long long v)                           // NOLINT(google-explicit-constructor)
      : number(static_cast<double>(v)) {}
  JsonValue(const char* v) : kind(Kind::kString), text(v) {}  // NOLINT
  JsonValue(std::string v)                                  // NOLINT(google-explicit-constructor)
      : kind(Kind::kString), text(std::move(v)) {}

  void appendTo(std::string& out) const {
    if (kind == Kind::kNumber) {
      char buf[40];
      // %.10g keeps integers exact (up to 2^33) and floats readable while
      // staying byte-deterministic for identical inputs.
      std::snprintf(buf, sizeof buf, "%.10g", number);
      out += buf;
      return;
    }
    out.push_back('"');
    for (const char c : text) {
      if (c == '"' || c == '\\') {
        out.push_back('\\');
        out.push_back(c);
      } else if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof buf, "\\u%04x", c);
        out += buf;
      } else {
        out.push_back(c);
      }
    }
    out.push_back('"');
  }
};

/// Machine-readable mirror of a bench's ASCII table (one schema for every
/// figure/use-case bench, consumed by CI). Rows are appended alongside the
/// printed rows; write() drops `<bench>.table.json` next to the binary's
/// working directory. SCIDMZ_TABLE_JSON_DIR redirects the output directory;
/// set it to the empty string to disable the file entirely.
class JsonTable {
 public:
  JsonTable(std::string bench, std::string title, std::string paperRef,
            std::vector<std::string> columns)
      : bench_(std::move(bench)),
        title_(std::move(title)),
        paper_ref_(std::move(paperRef)),
        columns_(std::move(columns)) {}

  JsonTable& addRow(std::vector<JsonValue> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }

  /// Free-form notes (the explanatory lines under the ASCII table).
  JsonTable& addNote(std::string note) {
    notes_.push_back(std::move(note));
    return *this;
  }

  [[nodiscard]] std::string toJson() const {
    std::string out;
    out.reserve(256 + rows_.size() * 64);
    out += "{\"schema\":\"scidmz.bench.table.v1\",\"bench\":";
    JsonValue(bench_).appendTo(out);
    out += ",\"title\":";
    JsonValue(title_).appendTo(out);
    out += ",\"paper_ref\":";
    JsonValue(paper_ref_).appendTo(out);
    out += ",\"columns\":[";
    for (std::size_t i = 0; i < columns_.size(); ++i) {
      if (i) out += ',';
      JsonValue(columns_[i]).appendTo(out);
    }
    out += "],\"rows\":[";
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      if (r) out += ',';
      out += '[';
      for (std::size_t c = 0; c < rows_[r].size(); ++c) {
        if (c) out += ',';
        rows_[r][c].appendTo(out);
      }
      out += ']';
    }
    out += "],\"notes\":[";
    for (std::size_t i = 0; i < notes_.size(); ++i) {
      if (i) out += ',';
      JsonValue(notes_[i]).appendTo(out);
    }
    out += "]}\n";
    return out;
  }

  bool writeTo(const std::string& path) const {
    std::ofstream out(path, std::ios::binary);
    if (!out) return false;
    out << toJson();
    return static_cast<bool>(out);
  }

  /// Write to $SCIDMZ_TABLE_JSON_DIR/<bench>.table.json (default ".").
  /// Returns true when written or intentionally disabled.
  bool write() const {
    const char* env = std::getenv("SCIDMZ_TABLE_JSON_DIR");
    std::string dir = env != nullptr ? env : ".";
    if (env != nullptr && dir.empty()) return true;  // explicitly disabled
    const std::string path = dir + "/" + bench_ + ".table.json";
    if (!writeTo(path)) {
      std::fprintf(stderr, "[table] could not write %s\n", path.c_str());
      return false;
    }
    return true;
  }

 private:
  std::string bench_;
  std::string title_;
  std::string paper_ref_;
  std::vector<std::string> columns_;
  std::vector<std::vector<JsonValue>> rows_;
  std::vector<std::string> notes_;
};

/// One column of a Table: the JSON column name, the printf format for the
/// ASCII cell (including its alignment padding — cells are joined by a
/// single space), an optional distinct ASCII header label, and an optional
/// explicit header format when it can't be derived from the cell format.
struct Column {
  std::string name;       ///< JSON column name
  std::string fmt;        ///< printf format for the ASCII cell
  std::string label;      ///< ASCII header text; defaults to `name`
  std::string headerFmt;  ///< printf %s format for the header; derived from
                          ///< `fmt` (same flags/width) when empty

  Column(std::string n, std::string f) : name(std::move(n)), fmt(std::move(f)) {
    label = name;
  }
  Column(std::string n, std::string f, std::string l)
      : name(std::move(n)), fmt(std::move(f)), label(std::move(l)) {}
  Column(std::string n, std::string f, std::string l, std::string hf)
      : name(std::move(n)), fmt(std::move(f)), label(std::move(l)), headerFmt(std::move(hf)) {}

  /// "%-14.1f" -> "%-14s": keep flags and width, drop precision/length/
  /// conversion, so the header aligns with the cells under it.
  [[nodiscard]] std::string derivedHeaderFmt() const {
    const std::size_t pct = fmt.find('%');
    if (pct == std::string::npos) return "%s";
    std::size_t i = pct + 1;
    while (i < fmt.size() && std::strchr("-+ #0", fmt[i]) != nullptr) ++i;
    while (i < fmt.size() && fmt[i] >= '0' && fmt[i] <= '9') ++i;
    return fmt.substr(pct, i - pct) + "s";
  }
};

/// One table row cell: carries the typed value once; Table::emit() renders
/// it into both the ASCII row (via the column's printf format) and the JSON
/// mirror. The (JsonValue, ascii) constructor pre-renders the ASCII text
/// verbatim for cells whose two forms intentionally diverge.
struct Cell {
  enum class Raw { kDouble, kSigned, kUnsigned, kString, kRendered };

  Raw raw = Raw::kRendered;
  JsonValue json{0.0};
  std::string ascii;          ///< kRendered / kString payloads
  double d = 0.0;             ///< kDouble payload
  long long s = 0;            ///< kSigned payload
  unsigned long long u = 0;   ///< kUnsigned payload

  Cell(double v) : raw(Raw::kDouble), json(v), d(v) {}       // NOLINT(google-explicit-constructor)
  Cell(int v) : raw(Raw::kSigned), json(v), s(v) {}          // NOLINT(google-explicit-constructor)
  Cell(long long v) : raw(Raw::kSigned), json(v), s(v) {}    // NOLINT(google-explicit-constructor)
  Cell(unsigned long long v)                                 // NOLINT(google-explicit-constructor)
      : raw(Raw::kUnsigned), json(v), u(v) {}
  Cell(unsigned long v)                                      // NOLINT(google-explicit-constructor)
      : Cell(static_cast<unsigned long long>(v)) {}
  Cell(const char* v)                                        // NOLINT(google-explicit-constructor)
      : raw(Raw::kString), json(v), ascii(v) {}
  Cell(std::string v)                                        // NOLINT(google-explicit-constructor)
      : raw(Raw::kString), json(v), ascii(std::move(v)) {}
  /// Pre-rendered: `asciiText` is used verbatim (no column format applied).
  Cell(JsonValue jsonValue, std::string asciiText)
      : raw(Raw::kRendered), json(std::move(jsonValue)), ascii(std::move(asciiText)) {}

  /// Render through the column's printf format, choosing the vararg cast
  /// from the format's length modifier + conversion character.
  [[nodiscard]] std::string render(const std::string& fmt) const {
    if (raw == Raw::kRendered) return ascii;
    // Locate the conversion spec: flags, width, precision, length, char.
    const std::size_t pct = fmt.find('%');
    std::size_t i = pct == std::string::npos ? fmt.size() : pct + 1;
    while (i < fmt.size() && std::strchr("-+ #0", fmt[i]) != nullptr) ++i;
    while (i < fmt.size() && ((fmt[i] >= '0' && fmt[i] <= '9') || fmt[i] == '.')) ++i;
    std::string length;
    while (i < fmt.size() && std::strchr("hljzt", fmt[i]) != nullptr) length += fmt[i++];
    const char conv = i < fmt.size() ? fmt[i] : 's';
    const char* f = fmt.c_str();
    switch (conv) {
      case 'f': case 'F': case 'e': case 'E': case 'g': case 'G':
        return formatRow(f, asDouble());
      case 'd': case 'i':
        if (length == "ll") return formatRow(f, static_cast<long long>(asSigned()));
        if (length == "l") return formatRow(f, static_cast<long>(asSigned()));
        if (length == "z") return formatRow(f, static_cast<std::size_t>(asSigned()));
        return formatRow(f, static_cast<int>(asSigned()));
      case 'u': case 'o': case 'x': case 'X':
        if (length == "ll") return formatRow(f, static_cast<unsigned long long>(asUnsigned()));
        if (length == "l") return formatRow(f, static_cast<unsigned long>(asUnsigned()));
        if (length == "z") return formatRow(f, static_cast<std::size_t>(asUnsigned()));
        return formatRow(f, static_cast<unsigned>(asUnsigned()));
      default:
        return formatRow(f, ascii.c_str());
    }
  }

 private:
  [[nodiscard]] double asDouble() const {
    if (raw == Raw::kDouble) return d;
    if (raw == Raw::kSigned) return static_cast<double>(s);
    return static_cast<double>(u);
  }
  [[nodiscard]] long long asSigned() const {
    if (raw == Raw::kSigned) return s;
    if (raw == Raw::kUnsigned) return static_cast<long long>(u);
    return static_cast<long long>(d);
  }
  [[nodiscard]] unsigned long long asUnsigned() const {
    if (raw == Raw::kUnsigned) return u;
    if (raw == Raw::kSigned) return static_cast<unsigned long long>(s);
    return static_cast<unsigned long long>(d);
  }
};

/// ASCII table + JSON mirror behind ONE emit call per row, so the printed
/// table and the .table.json can never drift apart.
class Table {
 public:
  Table(std::string bench, std::string title, std::string paperRef,
        std::vector<Column> columns)
      : columns_(std::move(columns)),
        json_(std::move(bench), std::move(title), std::move(paperRef), columnNames(columns_)) {}

  /// Print the header line (column labels aligned like the cells).
  void printHeader() {
    std::string line;
    for (std::size_t i = 0; i < columns_.size(); ++i) {
      if (i) line += ' ';
      const Column& c = columns_[i];
      const std::string hf = c.headerFmt.empty() ? c.derivedHeaderFmt() : c.headerFmt;
      line += formatRow(hf.c_str(), c.label.c_str());
    }
    row("%s", line.c_str());
  }

  /// Render one row to stdout AND append it to the JSON mirror.
  void emit(std::vector<Cell> cells) {
    std::string line;
    std::vector<JsonValue> jsonCells;
    jsonCells.reserve(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) line += ' ';
      line += cells[i].render(i < columns_.size() ? columns_[i].fmt : std::string{"%s"});
      jsonCells.push_back(std::move(cells[i].json));
    }
    row("%s", line.c_str());
    json_.addRow(std::move(jsonCells));
  }

  /// Blank ASCII separator line (no JSON row).
  void blankRow() { std::printf("\n"); }

  /// Print a note line and mirror it into the JSON notes.
  void note(const std::string& text) {
    row("%s", text.c_str());
    json_.addNote(text);
  }

  /// Escape hatch for the few asymmetric ASCII/JSON spots (notes that only
  /// appear in one form, historical row quirks).
  JsonTable& json() { return json_; }

  bool write() const { return json_.write(); }

 private:
  static std::vector<std::string> columnNames(const std::vector<Column>& columns) {
    std::vector<std::string> names;
    names.reserve(columns.size());
    for (const auto& c : columns) names.push_back(c.name);
    return names;
  }

  std::vector<Column> columns_;
  JsonTable json_;
};

}  // namespace scidmz::bench
