// Named scheduled closures that snapshots can claim. A raw
// Simulator::schedule(lambda) is invisible to scidmz.snap.v1 — the save
// refuses because the pending event has no serializable owner. Registering
// the closure under a stable name fixes that: the registry owns one
// pending timer per name, serializes the (at, seq) keys of every armed
// name, and on restore re-arms each one against the function the rebuilt
// scenario registered under the same name. Recurring callbacks reschedule
// themselves by name from inside their own body.
//
// Header-only on purpose: the users live in apps/ and usecase/, below the
// scenario library in the link order; only the checkpoint code in
// scenario/ walks the registry.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>

#include "sim/codec.hpp"
#include "sim/simulator.hpp"
#include "sim/units.hpp"

namespace scidmz::scenario {

/// Per-Context extension (net::Context::extension<CallbackRegistry>()).
/// Each name owns at most one pending timer; names are kept sorted so the
/// snapshot layout is deterministic.
class CallbackRegistry {
 public:
  /// Register (or replace) the closure behind `name`. A restore that finds
  /// an armed name the rebuild never registered refuses the blob, so
  /// scenarios must register before restoring.
  void registerNamed(std::string name, std::function<void()> fn) {
    entries_[std::move(name)].fn = std::move(fn);
  }

  [[nodiscard]] bool registered(const std::string& name) const {
    return entries_.find(name) != entries_.end();
  }

  /// Arm `name` to fire `delay` from now, replacing any pending schedule.
  void scheduleNamed(sim::Simulator& sim, const std::string& name, sim::Duration delay) {
    Entry& e = entries_.at(name);
    if (e.timer.valid()) sim.cancel(e.timer);
    e.timer = sim.schedule(delay, [&e] {
      e.timer = sim::EventId{};
      e.fn();
    });
  }

  void cancelNamed(sim::Simulator& sim, const std::string& name) {
    auto it = entries_.find(name);
    if (it == entries_.end() || !it->second.timer.valid()) return;
    sim.cancel(it->second.timer);
    it->second.timer = sim::EventId{};
  }

  [[nodiscard]] bool pendingNamed(const std::string& name) const {
    auto it = entries_.find(name);
    return it != entries_.end() && it->second.timer.valid();
  }

  /// Snapshot section: armed names + their event keys. Returns the pending
  /// events claimed, one per armed name.
  std::uint64_t serialize(sim::Codec& c, sim::Simulator& sim) {
    std::uint64_t claimed = 0;
    if (c.writing()) {
      std::uint64_t armed = 0;
      for (const auto& [name, e] : entries_) armed += e.timer.valid() ? 1 : 0;
      c.vu64(armed);
      for (auto& [name, e] : entries_) {
        if (!e.timer.valid()) continue;
        std::string n = name;
        c.str(n);
        claimed += sim::codecTimer(c, sim, e.timer, [] {});
      }
      return claimed;
    }
    // The restore protocol has already dropped every pending event, so any
    // handle the rebuild armed during construction is stale; clear them all
    // before re-arming the blob's set (else a stale id could alias a
    // restored event's key and cancelNamed would cancel the wrong event).
    for (auto& [name, e] : entries_) e.timer = sim::EventId{};
    std::uint64_t armed = 0;
    c.vu64(armed);
    for (std::uint64_t i = 0; i < armed; ++i) {
      std::string name;
      c.str(name);
      auto it = entries_.find(name);
      if (it == entries_.end()) {
        // The rebuild never registered this closure; dropping the event
        // would silently change the continuation, so refuse the blob.
        c.reader().markFailed();
        return claimed;
      }
      Entry& e = it->second;
      claimed += sim::codecTimer(c, sim, e.timer, [&e] {
        e.timer = sim::EventId{};
        e.fn();
      });
    }
    return claimed;
  }

 private:
  struct Entry {
    std::function<void()> fn;
    sim::EventId timer{};
  };
  std::map<std::string, Entry> entries_;
};

}  // namespace scidmz::scenario
