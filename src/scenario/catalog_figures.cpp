// Catalog: the paper's headline figures and Section 2 anecdotes.
//   fig1_tcp_loss_rtt      — Figure 1 throughput-vs-RTT-under-loss grid
//   fig2_dashboard_mesh    — Figure 2 perfSONAR mesh dashboard (native)
//   soft_failure_linecard  — Section 2 failing line card, plus telemetry
//   eqn2_window_sizing     — Equation 2 BDP window sizing
// Each entry's specs() builds the declarative cells; render() reproduces
// the legacy bench's stdout and .table.json byte-for-byte from the raw
// metrics. fig2 drives the perfSONAR mesh directly (continuous measurement
// over one long-lived simulation does not decompose into independent
// scenario cells), so it stays a native entry.
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "net/loss.hpp"
#include "perfsonar/alerts.hpp"
#include "perfsonar/dashboard.hpp"
#include "perfsonar/mesh.hpp"
#include "scenario/bench_io.hpp"
#include "sim/units.hpp"
#include "scenario/harness.hpp"
#include "scenario/registry.hpp"
#include "scenario/run.hpp"
#include "tcp/mathis.hpp"
#include "telemetry/diagnosis.hpp"

namespace scidmz::scenario {
namespace {

using namespace scidmz::sim::literals;

double mbpsOf(const CellOutcome& o, const std::string& key) {
  return sim::DataRate::bitsPerSecond(static_cast<std::uint64_t>(o.result.at(key))).toMbps();
}

// --- fig1_tcp_loss_rtt -----------------------------------------------------

const std::vector<int>& fig1Rtts() {
  static const std::vector<int> rtts{1, 10, 20, 50, 100};
  return rtts;
}

const std::vector<double>& fig1Losses() {
  static const std::vector<double> losses{0.0, 1e-5, 1.0 / 22000.0, 2e-4, 1e-3};
  return losses;
}

std::vector<ScenarioSpec> fig1Specs() {
  std::vector<ScenarioSpec> specs;
  for (const double loss : fig1Losses()) {
    for (const int rtt : fig1Rtts()) {
      for (const CcAlgo algo : {CcAlgo::kReno, CcAlgo::kHtcp}) {
        ScenarioSpec s;
        s.name = "fig1_tcp_loss_rtt#" + std::to_string(specs.size());
        s.topology.kind = TopologyKind::kPath;
        auto& p = s.topology.path;
        p.link.rateMbps = 10000;
        p.link.delayUs = static_cast<std::uint64_t>(rtt) * 500;
        p.link.mtuBytes = 9000;
        if (loss > 0) {
          LossSpec l;
          l.rate = loss;
          p.losses.push_back(l);
        }
        WorkloadSpec w;
        w.tcp.cc = algo;
        w.tcp.bufBytes = (256_MB).byteCount();  // above the 125 MB BDP at 100 ms
        // Measurement horizon scaled to the congestion-avoidance sawtooth
        // (see the legacy bench comment): several cycles, bounded so the
        // grid stays minutes.
        double windowSecs = 10.0;
        if (loss > 0) {
          windowSecs = std::clamp(8.2 * (static_cast<double>(rtt) * 1e-3) / std::sqrt(loss),
                                  15.0, 90.0);
        }
        w.windowS = windowSecs;
        w.warmupS = std::clamp(windowSecs / 3.0, 5.0, 20.0);
        s.workloads.push_back(w);
        specs.push_back(std::move(s));
      }
    }
  }
  return specs;
}

void renderFig1(const ScenarioEntry& entry, const std::vector<CellOutcome>& outcomes) {
  bench::Table table(entry.name, entry.title, entry.paperRef,
                     {{"rtt_ms", "%-10d"},
                      {"loss", "%-12.2e"},
                      {"mathis_mbps", "%-14.1f"},
                      {"reno_mbps", "%-14s"},
                      {"htcp_mbps", "%-14s"}});
  table.printHeader();
  std::size_t next = 0;
  for (const double loss : fig1Losses()) {
    for (const int rtt : fig1Rtts()) {
      const auto predicted =
          loss > 0 ? tcp::mathisThroughput(8960_B, sim::Duration::milliseconds(rtt), loss)
                   : 10_Gbps;
      const double capped = std::min(predicted.toMbps(), (10_Gbps).toMbps());
      const auto& reno = outcomes[next++];
      const auto& htcp = outcomes[next++];
      table.emit({rtt, loss, capped,
                  bench::mbpsCell(mbpsOf(reno, "w0.bps"), reno.result.at("w0.established") != 0.0),
                  bench::mbpsCell(mbpsOf(htcp, "w0.bps"), htcp.result.at("w0.established") != 0.0)});
    }
    table.blankRow();
  }
  bench::row("shape checks:");
  bench::row("  - loss-free row flat near 10000 Mbps at all RTTs");
  bench::row("  - each lossy family falls ~1/RTT; families drop ~1/sqrt(loss)");
  bench::row("  - htcp >= reno at high RTT x loss (the paper's measured gap)");
  table.json().addNote("loss-free row flat near 10000 Mbps at all RTTs");
  table.json().addNote("each lossy family falls ~1/RTT; families drop ~1/sqrt(loss)");
  table.json().addNote("htcp >= reno at high RTT x loss (the paper's measured gap)");
  table.write();
}

// --- fig2_dashboard_mesh (native) ------------------------------------------

struct MeshResult {
  std::vector<std::string> lines;
  int degradedWithCard = 0;
  int degradedAfterRepair = 0;
  std::size_t alertsRaised = 0;
};

MeshResult runMesh(sim::SweepCell& cell) {
  MeshResult result;
  std::vector<std::string>& out = result.lines;

  Scenario s;
  // Star of four sites around a WAN core; 10G, 10ms spokes.
  auto& core = s.topo.addRouter("esnet-core");
  const char* names[] = {"lbl", "anl", "ornl", "slac"};
  std::vector<perfsonar::MeshSite> sites;
  net::Link* lblUplink = nullptr;
  for (int i = 0; i < 4; ++i) {
    auto& host = s.topo.addHost(std::string{"ps-"} + names[i],
                                net::Address(198, 129, 0, static_cast<std::uint8_t>(i + 1)));
    net::LinkParams spoke;
    spoke.rate = 10_Gbps;
    spoke.delay = 10_ms;
    spoke.mtu = 9000_B;
    auto& link = s.topo.connect(host, core, spoke);
    if (i == 0) lblUplink = &link;
    sites.push_back(perfsonar::MeshSite{names[i], &host});
  }
  s.topo.computeRoutes();

  perfsonar::MeasurementArchive archive;
  perfsonar::MeshRunner::Options options;
  options.lossReportInterval = 10_s;
  // Short tests with idle gaps: enough to rate every one of the 12 ordered
  // pairs while keeping the simulated byte volume (and wall time) modest.
  options.throughputTestGap = 3_s;
  options.throughputTestDuration = 2_s;
  options.owamp.interval = 10_ms;
  perfsonar::MeshRunner mesh{s.ctx, sites, archive, options};

  // Science-path policy: any sustained probe loss is a failure, and a
  // path dropping below 60% of its own baseline is investigated.
  perfsonar::SoftFailureOptions detectorOptions;
  detectorOptions.lossThreshold = 5e-4;
  detectorOptions.throughputDropFraction = 0.6;
  perfsonar::SoftFailureDetector detector{archive, detectorOptions};
  std::size_t alertCount = 0;
  detector.onAlert = [&alertCount, &out](const perfsonar::Alert& a) {
    ++alertCount;
    out.push_back(bench::formatRow("  alert @%s: %s -> %s (%s)", sim::toString(a.at).c_str(),
                                   a.src.c_str(), a.dst.c_str(), a.metric.c_str()));
  };

  // Healthy baseline first (regression detection needs one), then the card
  // starts dropping 1/22000 of everything LBL transmits.
  mesh.start();
  for (int i = 0; i < 8; ++i) {
    s.simulator.runFor(10_s);
    detector.evaluate(s.simulator.now());
  }
  out.push_back("t=80s: lbl's uplink line card begins dropping 1/22000 packets");
  lblUplink->setLossModel(0, std::make_unique<net::RandomLoss>(1.0 / 22000.0, s.rng.fork(2)));
  for (int i = 0; i < 15; ++i) {
    s.simulator.runFor(10_s);
    detector.evaluate(s.simulator.now());
  }

  // 2s tests only reach ~5-7 Gbps through slow start on a clean 40ms-RTT
  // path; rate against that expectation rather than full line rate.
  perfsonar::Dashboard dashboard{archive, mesh.siteNames(), 5000.0};
  out.push_back("");
  out.push_back("dashboard with the failing line card on lbl's uplink:");
  out.push_back(dashboard.render());
  result.degradedWithCard = dashboard.countAtRating(perfsonar::CellRating::kBad) +
                            dashboard.countAtRating(perfsonar::CellRating::kDegraded);
  out.push_back(bench::formatRow("degraded/bad cells: %d (expect the lbl-sourced row impaired)",
                                 result.degradedWithCard));
  out.push_back(bench::formatRow("alerts raised: %zu", alertCount));
  result.alertsRaised = alertCount;

  out.push_back("");
  out.push_back("repairing the line card and re-measuring...");
  lblUplink->repair();
  s.simulator.runFor(120_s);
  out.push_back(dashboard.render());
  result.degradedAfterRepair = dashboard.countAtRating(perfsonar::CellRating::kBad) +
                               dashboard.countAtRating(perfsonar::CellRating::kDegraded);
  out.push_back(bench::formatRow("degraded/bad cells after repair: %d",
                                 result.degradedAfterRepair));
  mesh.stop();
  finishCell(s, cell);
  return result;
}

void runFig2Native() {
  sim::SweepRunner sweep;
  const auto results = sweep.run<MeshResult>(
      1, [](sim::SweepCell& cell) { return runMesh(cell); }, "mesh");
  const MeshResult& mesh = results[0];
  for (const auto& line : mesh.lines) bench::row("%s", line.c_str());

  bench::JsonTable table("fig2_dashboard_mesh",
                         "perfSONAR mesh dashboard with a soft failure",
                         "Figure 2 + Section 3.3, Dart et al. SC13",
                         {"phase", "degraded_bad_cells", "alerts_raised"});
  table.addRow({"with_failing_card", mesh.degradedWithCard,
                static_cast<unsigned long long>(mesh.alertsRaised)});
  table.addRow({"after_repair", mesh.degradedAfterRepair,
                static_cast<unsigned long long>(mesh.alertsRaised)});
  table.addNote("1/22000 loss on lbl's uplink impairs the lbl-sourced dashboard row;"
                " repair clears it");
  table.write();
  bench::writeSweepReport(sweep, "fig2_dashboard_mesh");
}

// --- soft_failure_linecard -------------------------------------------------

TcpSpec softFailureTcp() {
  TcpSpec tcp;
  tcp.cc = CcAlgo::kHtcp;
  tcp.bufBytes = (256_MB).byteCount();
  return tcp;
}

ScenarioSpec softFailureCell(int rttMs, bool broken, std::size_t index) {
  ScenarioSpec s;
  s.name = "soft_failure_linecard#" + std::to_string(index);
  s.topology.kind = TopologyKind::kPath;
  auto& p = s.topology.path;
  p.middlebox = Middlebox::kRouter;
  p.midName = "line-card-router";
  p.link.rateMbps = 10000;
  p.link.delayUs = static_cast<std::uint64_t>(rttMs) * 250;
  p.link.mtuBytes = 9000;
  if (broken) {
    LossSpec l;
    l.segment = 1;  // the router->b line card
    l.kind = LossKind::kPeriodic;
    l.period = 22000;
    p.losses.push_back(l);
  }
  WorkloadSpec w;
  w.tcp = softFailureTcp();
  w.warmupS = 5.0;
  w.windowS = 20.0;
  s.workloads.push_back(w);
  return s;
}

std::vector<ScenarioSpec> softFailureSpecs() {
  std::vector<ScenarioSpec> specs;
  for (const int rtt : {2, 10, 40, 80}) {
    for (const bool broken : {false, true}) {
      specs.push_back(softFailureCell(rtt, broken, specs.size()));
    }
  }
  return specs;
}

/// Rerun the broken 40 ms path with telemetry armed and name the failing
/// hop from the recorded counters alone. This stays native: localizeLoss
/// and the cwnd-series corroboration need the live telemetry::Snapshot,
/// not just the flat metrics a spec run returns.
void diagnoseFromTelemetry() {
  Scenario s;
  s.ctx.telemetry().enable();
  auto& a = s.topo.addHost("a", net::Address(10, 0, 0, 1));
  auto& r = s.topo.addRouter("line-card-router");
  auto& b = s.topo.addHost("b", net::Address(10, 0, 0, 2));
  net::LinkParams wan;
  wan.rate = 10_Gbps;
  wan.delay = sim::Duration::microseconds(40 * 250);
  wan.mtu = 9000_B;
  s.topo.connect(a, r, wan);
  auto& badLink = s.topo.connect(r, b, wan);
  badLink.setLossModel(0, std::make_unique<net::PeriodicLoss>(22000));
  s.topo.computeRoutes();

  tcp::TcpConfig cfg;
  cfg.algorithm = tcp::CcAlgorithm::kHtcp;
  cfg.sndBuf = 256_MB;
  cfg.rcvBuf = 256_MB;
  SteadyFlow flow{s, a, b, cfg};
  const double brokenMbps = flow.measure(5_s, 20_s).toMbps();

  const auto snapshot = s.ctx.telemetry().snapshot();
  const auto diagnosis = telemetry::localizeLoss(snapshot);

  bench::row("%s", "");
  bench::row("telemetry diagnosis (40 ms RTT, broken path at %.1f Mbps, probes only):",
             brokenMbps);
  bench::row("  %-44s %s", "loss/drop counter", "count");
  for (const auto& suspect : diagnosis.suspects) {
    bench::row("  %-44s %llu", suspect.point.c_str(),
               static_cast<unsigned long long>(suspect.count));
  }
  if (const auto* culprit = diagnosis.culprit()) {
    bench::row("  => failing hop: %s", culprit->point.c_str());
  } else {
    bench::row("  => no loss recorded (unexpected on the broken path)");
  }
  for (const auto& series : snapshot.series) {
    // The sender's cwnd probe corroborates the diagnosis: sawtooth collapse.
    if (series.name.size() > 11 &&
        series.name.compare(series.name.size() - 11, 11, "/cwnd_bytes") == 0 &&
        series.sampleCount > 0 && series.max > series.min) {
      bench::row("  sender cwnd over the run: min %.0f B, max %.0f B (%zu samples)", series.min,
                 series.max, series.sampleCount);
      break;
    }
  }

  // Artifacts for CI: the packet-level trace (scidmz.trace.v1 JSONL) and
  // the summary snapshot (scidmz.telemetry.v1). SCIDMZ_TRACE_JSONL
  // overrides the trace path; set it empty to skip the files.
  const char* env = std::getenv("SCIDMZ_TRACE_JSONL");
  const std::string tracePath = env != nullptr ? env : "soft_failure_linecard.trace.jsonl";
  if (!tracePath.empty()) {
    if (!s.ctx.telemetry().writeTrace(tracePath)) {
      std::fprintf(stderr, "[telemetry] could not write %s\n", tracePath.c_str());
    }
    std::ofstream snap("soft_failure_linecard.telemetry.json", std::ios::binary);
    if (snap) snap << snapshot.toJson() << "\n";
  }
}

void renderSoftFailure(const ScenarioEntry& entry, const std::vector<CellOutcome>& outcomes) {
  bench::Table table(entry.name, entry.title, entry.paperRef,
                     {{"rtt_ms", "%-8d"},
                      {"clean_mbps", "%-14.1f"},
                      {"with_card_mbps", "%-16.1f"},
                      {"local_drop_mbps", "%-20.1f"},
                      {"collapse_factor", "%.0fx", "collapse", "%-12s"}});
  // Historical quirk: the drop column prints 3 decimals while its header
  // derives from a .1f-wide layout; keep the legacy formats exactly.
  bench::row("%-8s %-14s %-16s %-20s %-12s", "rtt_ms", "clean_mbps", "with_card_mbps",
             "local_drop_mbps", "collapse");
  const std::vector<int> rtts{2, 10, 40, 80};
  for (std::size_t i = 0; i < rtts.size(); ++i) {
    const auto& clean = outcomes[2 * i];
    const auto& broken = outcomes[2 * i + 1];
    const double cleanMbps = mbpsOf(clean, "w0.bps");
    const double brokenMbps = mbpsOf(broken, "w0.bps");
    // The device-local view: bits actually dropped per second over the
    // 25 s (warmup + window) run.
    const double lostBits = broken.result.at("seg1.lost") * 9000.0 * 8.0;
    const double localLossMbps = lostBits / 25.0 / 1e6;
    const double collapse = cleanMbps / std::max(brokenMbps, 1.0);
    bench::row("%-8d %-14.1f %-16.1f %-20.3f %.0fx", rtts[i], cleanMbps, brokenMbps,
               localLossMbps, collapse);
    table.json().addRow({rtts[i], cleanMbps, brokenMbps, localLossMbps, collapse});
  }
  bench::row("%s", "");
  bench::row("paper's point: the card itself loses <1 Mbps of traffic, invisible to");
  bench::row("error counters, while end-to-end TCP loses orders of magnitude more;");
  bench::row("only active measurement (owamp) sees it. (cf. bench/fig2_dashboard_mesh)");
  table.json().addNote("the card itself loses <1 Mbps of traffic, invisible to error counters,"
                       " while end-to-end TCP loses orders of magnitude more");
  table.write();

  diagnoseFromTelemetry();
}

// --- eqn2_window_sizing ----------------------------------------------------

struct Eqn2Case {
  sim::DataRate rate;
  sim::Duration rtt;
  std::uint64_t rateMbps;
  std::uint64_t delayUs;  ///< one-way: rtt / 2
};

const std::vector<Eqn2Case>& eqn2Cases() {
  static const std::vector<Eqn2Case> cases{
      {100_Mbps, 10_ms, 100, 5000},   {1_Gbps, 10_ms, 1000, 5000},
      {1_Gbps, 50_ms, 1000, 25000},   {10_Gbps, 10_ms, 10000, 5000},
      {10_Gbps, 100_ms, 10000, 50000}};
  return cases;
}

std::vector<ScenarioSpec> eqn2Specs() {
  std::vector<ScenarioSpec> specs;
  for (const auto& c : eqn2Cases()) {
    const auto window = tcp::bandwidthDelayWindow(c.rate, c.rtt);
    const std::uint64_t tuned = window.byteCount() * 3;
    for (const std::uint64_t buf : {(64_KiB).byteCount(), tuned}) {
      ScenarioSpec s;
      s.name = "eqn2_window_sizing#" + std::to_string(specs.size());
      s.topology.kind = TopologyKind::kPath;
      s.topology.path.link.rateMbps = c.rateMbps;
      s.topology.path.link.delayUs = c.delayUs;
      s.topology.path.link.mtuBytes = 1500;
      WorkloadSpec w;
      w.tcp.cc = CcAlgo::kCubic;
      w.tcp.bufBytes = buf;
      w.warmupS = 3.0;
      w.windowS = 5.0;
      s.workloads.push_back(w);
      specs.push_back(std::move(s));
    }
  }
  return specs;
}

void renderEqn2(const ScenarioEntry& entry, const std::vector<CellOutcome>& outcomes) {
  bench::Table table(entry.name, entry.title, entry.paperRef,
                     {{"rate", "%-12s"},
                      {"rtt_ms", "%-8.0f"},
                      {"required_window_bytes", "%-16s", "required_window"},
                      {"mbps_64KB_buf", "%-18.1f"},
                      {"mbps_tuned_buf", "%-18.1f"}});
  table.printHeader();
  std::size_t next = 0;
  for (const auto& c : eqn2Cases()) {
    const auto window = tcp::bandwidthDelayWindow(c.rate, c.rtt);
    const double small = mbpsOf(outcomes[next++], "w0.bps");
    const double big = mbpsOf(outcomes[next++], "w0.bps");
    table.emit({sim::toString(c.rate), c.rtt.toMillis(),
                bench::Cell{bench::JsonValue(static_cast<unsigned long long>(window.byteCount())),
                            bench::formatRow("%-16s", sim::toString(window).c_str())},
                small, big});
  }
  table.blankRow();
  bench::row("paper example: 1 Gbps x 10 ms needs %s; the 64KB default is ~20x too small,",
             sim::toString(tcp::bandwidthDelayWindow(1_Gbps, 10_ms)).c_str());
  bench::row("capping throughput near 50 Mbps regardless of link speed.");
  table.json().addNote(bench::formatRow(
      "paper example: 1 Gbps x 10 ms needs %s; the 64KB default is ~20x too small, capping"
      " throughput near 50 Mbps regardless of link speed",
      sim::toString(tcp::bandwidthDelayWindow(1_Gbps, 10_ms)).c_str()));
  table.write();
}

}  // namespace

void registerFigureScenarios(ScenarioRegistry& registry) {
  registry.add({"fig1_tcp_loss_rtt", "figure",
                "throughput vs RTT under loss (10G hosts, 9K MTU)",
                "Figure 1 + Section 2.1 (Mathis equation), Dart et al. SC13", "grid",
                fig1Specs, renderFig1, nullptr});
  registry.add({"fig2_dashboard_mesh", "figure",
                "perfSONAR mesh dashboard with a soft failure",
                "Figure 2 + Section 3.3, Dart et al. SC13", "mesh", nullptr, nullptr,
                runFig2Native});
  registry.add({"soft_failure_linecard", "figure",
                "1/22000 loss, local vs end-to-end damage",
                "Section 2 failing-line-card anecdote, Dart et al. SC13", "rtt_grid",
                softFailureSpecs, renderSoftFailure, nullptr});
  registry.add({"eqn2_window_sizing", "figure",
                "BDP window requirement, analytic + simulated",
                "Equation 2 + Section 6.2, Dart et al. SC13", "cases",
                eqn2Specs, renderEqn2, nullptr});
}

}  // namespace scidmz::scenario
