#include "scenario/json.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace scidmz::scenario {

namespace {

/// Recursive-descent parser with line/column tracking for error messages.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parseDocument() {
    Json value = parseValue();
    skipWhitespace();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    std::size_t line = 1;
    std::size_t column = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    throw JsonError("JSON parse error at line " + std::to_string(line) + ", column " +
                    std::to_string(column) + ": " + message);
  }

  [[nodiscard]] bool atEnd() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  void skipWhitespace() {
    while (!atEnd()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  void expect(char c, const char* what) {
    if (atEnd() || text_[pos_] != c) fail(std::string("expected ") + what);
    ++pos_;
  }

  bool consumeLiteral(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Json parseValue() {
    skipWhitespace();
    if (atEnd()) fail("unexpected end of input");
    const char c = peek();
    switch (c) {
      case '{':
        return parseObject();
      case '[':
        return parseArray();
      case '"':
        return Json(parseString());
      case 't':
        if (consumeLiteral("true")) return Json(true);
        fail("invalid literal (expected 'true')");
      case 'f':
        if (consumeLiteral("false")) return Json(false);
        fail("invalid literal (expected 'false')");
      case 'n':
        if (consumeLiteral("null")) return Json(nullptr);
        fail("invalid literal (expected 'null')");
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return parseNumber();
        fail(std::string("unexpected character '") + c + "'");
    }
  }

  Json parseObject() {
    expect('{', "'{'");
    Json object = Json::object();
    skipWhitespace();
    if (!atEnd() && peek() == '}') {
      ++pos_;
      return object;
    }
    while (true) {
      skipWhitespace();
      if (atEnd() || peek() != '"') fail("expected object key string");
      std::string key = parseString();
      if (object.contains(key)) fail("duplicate object key \"" + key + "\"");
      skipWhitespace();
      expect(':', "':' after object key");
      object.set(std::move(key), parseValue());
      skipWhitespace();
      if (atEnd()) fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}', "',' or '}' in object");
      return object;
    }
  }

  Json parseArray() {
    expect('[', "'['");
    Json array = Json::array();
    skipWhitespace();
    if (!atEnd() && peek() == ']') {
      ++pos_;
      return array;
    }
    while (true) {
      array.push(parseValue());
      skipWhitespace();
      if (atEnd()) fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']', "',' or ']' in array");
      return array;
    }
  }

  std::string parseString() {
    expect('"', "'\"'");
    std::string out;
    while (true) {
      if (atEnd()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (atEnd()) fail("unterminated escape sequence");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned code = parseHex4();
          // Surrogate pairs: combine into one code point.
          if (code >= 0xD800 && code <= 0xDBFF) {
            if (!consumeLiteral("\\u")) fail("unpaired high surrogate");
            const unsigned low = parseHex4();
            if (low < 0xDC00 || low > 0xDFFF) fail("invalid low surrogate");
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            fail("unpaired low surrogate");
          }
          appendUtf8(out, code);
          break;
        }
        default:
          fail(std::string("invalid escape '\\") + esc + "'");
      }
    }
  }

  unsigned parseHex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("invalid hex digit in \\u escape");
      }
    }
    return value;
  }

  static void appendUtf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Json parseNumber() {
    const std::size_t start = pos_;
    if (!atEnd() && peek() == '-') ++pos_;
    if (atEnd() || peek() < '0' || peek() > '9') fail("invalid number");
    if (peek() == '0') {
      ++pos_;
    } else {
      while (!atEnd() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!atEnd() && peek() == '.') {
      ++pos_;
      if (atEnd() || peek() < '0' || peek() > '9') fail("digits required after decimal point");
      while (!atEnd() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!atEnd() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!atEnd() && (peek() == '+' || peek() == '-')) ++pos_;
      if (atEnd() || peek() < '0' || peek() > '9') fail("digits required in exponent");
      while (!atEnd() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    errno = 0;
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("invalid number");
    if (!std::isfinite(value)) fail("number out of range");
    return Json(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool Json::contains(std::string_view key) const {
  for (const auto& [name, value] : members_) {
    if (name == key) return true;
  }
  return false;
}

const Json& Json::get(std::string_view key) const {
  static const Json kNull;
  for (const auto& [name, value] : members_) {
    if (name == key) return value;
  }
  return kNull;
}

Json& Json::set(std::string key, Json value) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  requireKind(Kind::kObject, "object");
  for (auto& [name, existing] : members_) {
    if (name == key) {
      existing = std::move(value);
      return existing;
    }
  }
  members_.emplace_back(std::move(key), std::move(value));
  return members_.back().second;
}

Json& Json::operator[](std::string_view key) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  requireKind(Kind::kObject, "object");
  for (auto& [name, value] : members_) {
    if (name == key) return value;
  }
  members_.emplace_back(std::string(key), Json());
  return members_.back().second;
}

Json Json::parse(std::string_view text) { return Parser(text).parseDocument(); }

std::string Json::dump() const {
  std::string out;
  dumpTo(out, /*indent=*/-1, /*depth=*/0);
  return out;
}

std::string Json::pretty() const {
  std::string out;
  dumpTo(out, /*indent=*/2, /*depth=*/0);
  out.push_back('\n');
  return out;
}

void Json::dumpTo(std::string& out, int indent, int depth) const {
  const bool prettyPrint = indent >= 0;
  const auto newlineAndPad = [&](int level) {
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent * level), ' ');
  };
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kNumber:
      appendJsonNumber(out, number_);
      break;
    case Kind::kString:
      appendJsonString(out, string_);
      break;
    case Kind::kArray: {
      out.push_back('[');
      bool first = true;
      for (const auto& item : items_) {
        if (!first) out.push_back(',');
        first = false;
        if (prettyPrint) newlineAndPad(depth + 1);
        item.dumpTo(out, indent, depth + 1);
      }
      if (prettyPrint && !items_.empty()) newlineAndPad(depth);
      out.push_back(']');
      break;
    }
    case Kind::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [name, value] : members_) {
        if (!first) out.push_back(',');
        first = false;
        if (prettyPrint) newlineAndPad(depth + 1);
        appendJsonString(out, name);
        out.push_back(':');
        if (prettyPrint) out.push_back(' ');
        value.dumpTo(out, indent, depth + 1);
      }
      if (prettyPrint && !members_.empty()) newlineAndPad(depth);
      out.push_back('}');
      break;
    }
  }
}

void appendJsonNumber(std::string& out, double v) {
  // Integral values below 2^63 print as plain integers; everything else
  // uses the shortest %g precision that survives a strtod round trip.
  if (v == 0.0) {
    out += "0";
    return;
  }
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 9.2233720368547758e18) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64, static_cast<std::int64_t>(v));
    out += buf;
    return;
  }
  char buf[40];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  out += buf;
}

void appendJsonString(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

}  // namespace scidmz::scenario
