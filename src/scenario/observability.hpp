// Scenario-level wiring for the observability layer: where traces and
// profiles come out of a run.
//
// Process options (set once at startup by `scidmz_run --trace=<base>` /
// `--profile=<base>`, or via the SCIDMZ_TRACE / SCIDMZ_PROFILE environment
// variables whose value is the output base path) select the artifacts;
// every sweep cell then writes its own files from finishCell():
//   <base>.cell<N>.spans.jsonl  — scidmz.spans.v1 (tools/validate_trace.py)
//   <base>.cell<N>.trace.json   — Chrome trace events (open in Perfetto)
//   <base>.cell<N>.profile.json — scidmz.profile.v1 self-profile
// Cells run on sweep worker threads, so per-cell files (never a shared
// stream) keep output deterministic and lock-free; byte-identical at any
// SCIDMZ_SWEEP_THREADS (the profile's host-time section excepted).
//
// printCriticalPathReport() is the `scidmz_run report` backend: it reads
// spans JSONL files back and prints, per flow/transfer root span, where the
// time went (handshake / slow_start / cwnd_limited / rwnd_limited /
// queue_limited / loss_recovery / storage) — the paper's "why is my
// transfer slow" diagnosis as a table.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "scenario/harness.hpp"
#include "sim/sweep.hpp"

namespace scidmz::scenario {

/// Select trace output and enable tracing process-wide (empty base = leave
/// tracing to the SCIDMZ_TRACE environment variable). Call before any
/// simulation runs.
void setTraceOutput(const std::string& base);
/// Select profile output and enable profiling process-wide.
void setProfileOutput(const std::string& base);

/// Tracing/profiling requested for this process (option or environment)?
[[nodiscard]] bool tracingRequested();
[[nodiscard]] bool profilingRequested();
/// Output base path for each artifact ("" = requested without file output,
/// or not requested at all).
[[nodiscard]] std::string traceOutputBase();
[[nodiscard]] std::string profileOutputBase();

/// End-of-cell hook (called from finishCell): correlate the cell's spans
/// with its flight recorder, stamp allocator high-water marks into the
/// profiler, record cell.spansEmitted, and write the per-cell artifacts if
/// output bases are set.
void writeCellObservability(Scenario& s, sim::SweepCell& cell);

/// Read spans JSONL files and print per-root critical-path breakdowns plus
/// an aggregate phase table. Returns false if any file fails to parse.
bool printCriticalPathReport(const std::vector<std::string>& files, std::ostream& out);

}  // namespace scidmz::scenario
