// Simulation bootstrap shared by the scenario engine and the catalog
// renderers: one Scenario owns the simulator/rng/logger/context/topology
// for a single cell, SteadyFlow measures one bulk TCP flow's steady-state
// goodput, and finishCell() does the standard end-of-cell sweep
// bookkeeping. (Moved here from bench/bench_util.hpp so benches, the
// scenario engine, and scidmz_run share one harness.)
#pragma once

#include <cstdint>
#include <memory>

#include "net/flow.hpp"
#include "net/topology.hpp"
#include "sim/log.hpp"
#include "sim/profiler.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/sweep.hpp"
#include "tcp/connection.hpp"

namespace scidmz::scenario {

// Defined in observability.cpp; forward-declared here so the harness header
// does not pull in the observability header (which includes this one).
struct Scenario;
[[nodiscard]] bool profilingRequested();
void writeCellObservability(Scenario& s, sim::SweepCell& cell);

// Sharded-execution runtime (per-domain simulators/contexts + the
// ShardedSimulator); defined in scenario/shard.hpp. A plain Scenario never
// creates one — attachShards() (the engine's --domains path) does.
struct ShardRuntime;

struct Scenario {
  Scenario() { attachProfiler(); }
  explicit Scenario(std::uint64_t seed) : rng(seed) { attachProfiler(); }

  sim::Profiler profiler;  ///< attached iff profiling was requested
  sim::Simulator simulator;
  sim::Rng rng{20130101};
  sim::Logger logger;
  net::Context ctx{simulator, rng, logger};
  // Declared between ctx and topo so teardown runs topo (devices, links,
  // queued packets) -> extra domain contexts -> the primary context.
  std::shared_ptr<ShardRuntime> shards;
  net::Topology topo{ctx};

  /// Advance simulated time: the sharded barrier-epoch driver when shards
  /// are attached, the plain single simulator otherwise. Workloads and
  /// measurement loops must use this instead of simulator.runFor so the
  /// same scenario code runs at any --domains. Defined in shard.cpp.
  void runFor(sim::Duration d);
  [[nodiscard]] bool sharded() const { return shards != nullptr; }

 private:
  void attachProfiler() {
    if (profilingRequested()) simulator.setProfiler(&profiler);
  }
};

/// Standard end-of-cell bookkeeping: record events executed and, when the
/// scenario instrumented itself (SCIDMZ_TELEMETRY=1 or an explicit
/// enable()), attach the telemetry snapshot so writeSweepReport() merges it
/// into the cell's BENCH_sim.json entry. When tracing/profiling is on,
/// writeCellObservability() additionally correlates spans with the flight
/// recorder, records spansEmitted, and writes per-cell trace/profile files.
/// Sharded scenarios merge per-domain counters/telemetry/spans into
/// partition-invariant cell results. Defined in shard.cpp.
void finishCell(Scenario& s, sim::SweepCell& cell);

/// Steady-state goodput of one bulk TCP flow between two hosts: start an
/// effectively infinite transfer, discard `warmup`, measure `window`.
struct SteadyFlow {
  SteadyFlow(Scenario& s, net::Host& src, net::Host& dst, tcp::TcpConfig config,
             std::uint16_t port = 5001,
             net::FlowFidelity fidelity = net::FlowFidelity::kPacket)
      : scenario(s) {
    net::FlowFactory::Options options;
    options.port = port;
    options.fidelity = fidelity;
    flow = net::flowFactory(src.ctx()).create(src, dst, config, options);
    // Accept (not client-side establishment) is the pin signal, preserving
    // the historical "listener has accepted" semantics at packet fidelity;
    // fluid flows fire onAccepted at establishment.
    flow->onAccepted = [this](int) { accepted_ = true; };
    flow->onEstablished = [this] { flow->sendData(sim::DataSize::terabytes(100)); };
    flow->start();
  }

  /// Receiver-side goodput over `window` after discarding `warmup`. The
  /// connection is pinned at the start of the window: if the listener has
  /// not accepted by then the measurement is meaningless, so this returns
  /// zero and flips established() false rather than silently measuring a
  /// flow that only appeared (or never appeared) mid-window off a zero base.
  [[nodiscard]] sim::DataRate measure(sim::Duration warmup, sim::Duration window) {
    scenario.runFor(warmup);
    established_ = accepted_;
    const auto base = accepted_ ? flow->deliveredBytes() : sim::DataSize::zero();
    scenario.runFor(window);
    if (!established_) return sim::DataRate::zero();
    const auto delta = flow->deliveredBytes() - base;
    return sim::DataRate::bitsPerSecond(static_cast<std::uint64_t>(
        static_cast<double>(delta.bitCount()) / window.toSeconds()));
  }

  /// False when the flow had not established by the start of the last
  /// measure() window — surface as "n/e" in bench tables via mbpsCell().
  [[nodiscard]] bool established() const { return established_; }

  Scenario& scenario;
  net::FlowPtr flow;
  bool accepted_ = false;
  bool established_ = true;
};

}  // namespace scidmz::scenario
