// Drive a catalog entry end to end: header, sweep over its specs, render,
// sweep report. Bench binaries are one-line wrappers over
// runScenarioMain(); scidmz_run drives the same path plus ad-hoc specs.
#pragma once

#include <string>
#include <vector>

#include "scenario/registry.hpp"

namespace scidmz::scenario {

/// Run every cell of `specs` on the parallel sweep runner (bit-identical
/// at any SCIDMZ_SWEEP_THREADS) and pair each spec with its metrics.
/// `benchName` labels the BENCH_sim.json entry; `sweepName` the stderr
/// progress lines.
std::vector<CellOutcome> runSpecs(const std::vector<ScenarioSpec>& specs,
                                  const std::string& sweepName, const std::string& benchName);

/// Full legacy-bench behavior for one catalog entry: print the header, run
/// the sweep (or the native body), render the tables, write the sweep
/// report. Returns a process exit code.
int runScenario(const ScenarioEntry& entry);

/// Look `name` up in the builtin registry and run it; unknown names print
/// to stderr and return 1. This is the whole main() of every bench wrapper.
int runScenarioMain(const std::string& name);

}  // namespace scidmz::scenario
