#include "scenario/registry.hpp"

namespace scidmz::scenario {

const ScenarioEntry* ScenarioRegistry::find(const std::string& name) const {
  for (const auto& entry : entries_) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

const ScenarioRegistry& ScenarioRegistry::builtin() {
  static const ScenarioRegistry registry = [] {
    ScenarioRegistry r;
    registerFigureScenarios(r);
    registerArchScenarios(r);
    registerUsecaseScenarios(r);
    registerAblationScenarios(r);
    registerHybridScenarios(r);
    registerVcScenarios(r);
    registerScaleScenarios(r);
    return r;
  }();
  return registry;
}

}  // namespace scidmz::scenario
