// Catalog: hybrid-fidelity validation.
//   hybrid_fidelity_background — one per-packet science flow against a
//   growing crowd of fluid (analytic) background flows over a shared
//   fan-in bottleneck. The experiment the unified Flow API exists for:
//   packet and fluid flows must contend for the SAME link capacity, so the
//   packet flow's goodput should fall roughly as 1/(1+N) while the fluid
//   aggregate absorbs the rest — without simulating a single background
//   packet.
#include <cstdint>
#include <string>
#include <vector>

#include "scenario/bench_io.hpp"
#include "sim/units.hpp"
#include "scenario/registry.hpp"

namespace scidmz::scenario {
namespace {

using namespace scidmz::sim::literals;

// --- hybrid_fidelity_background --------------------------------------------

const std::vector<int>& hybridFluidCounts() {
  static const std::vector<int> counts{0, 8, 64, 512};
  return counts;
}

std::vector<ScenarioSpec> hybridSpecs() {
  std::vector<ScenarioSpec> specs;
  for (const int fluidFlows : hybridFluidCounts()) {
    ScenarioSpec s;
    s.name = "hybrid_fidelity_background#" + std::to_string(specs.size());
    s.topology.kind = TopologyKind::kFanin;
    auto& f = s.topology.fanin;
    f.senders = fluidFlows + 1;  // the last sender is the packet science flow
    f.egressBufferBytes = sim::DataSize::mebibytes(32).byteCount();
    f.egressLink = LinkSpec{10000, 5000, 9000};
    f.senderLink = LinkSpec{10000, 20, 9000};
    WorkloadSpec w;
    w.kind = WorkloadKind::kConvergingFlows;
    w.tcp.cc = CcAlgo::kHtcp;
    w.tcp.bufBytes = (64_MB).byteCount();
    w.port = 6000;
    w.warmupS = 3.0;
    w.windowS = 6.0;
    w.fluidFlows = fluidFlows;  // first N senders analytic, the rest packet
    s.workloads.push_back(w);
    specs.push_back(std::move(s));
  }
  return specs;
}

void renderHybrid(const ScenarioEntry& entry, const std::vector<CellOutcome>& outcomes) {
  bench::Table table(entry.name, entry.title, entry.paperRef,
                     {{"fluid_flows", "%-12d"},
                      {"packet_mbps", "%-14.1f"},
                      {"fluid_agg_mbps", "%-16.1f"},
                      {"total_mbps", "%-12.1f"},
                      {"fluid_share_pct", "%-16.1f"}});
  table.printHeader();
  for (std::size_t i = 0; i < hybridFluidCounts().size(); ++i) {
    const int fluidFlows = hybridFluidCounts()[i];
    const auto& o = outcomes[i];
    const double totalBits = o.result.at("w0.delta_bits");
    const double packetBits =
        fluidFlows > 0 ? o.result.at("w0.packet_bits") : totalBits;
    const double fluidBits = fluidFlows > 0 ? o.result.at("w0.fluid_bits") : 0.0;
    table.emit({fluidFlows, packetBits / 6.0 / 1e6, fluidBits / 6.0 / 1e6,
                totalBits / 6.0 / 1e6,
                totalBits > 0 ? fluidBits / totalBits * 100.0 : 0.0});
  }
  table.blankRow();
  bench::row("the packet flow's share shrinks as analytic background joins the");
  bench::row("bottleneck: fluid demand is subtracted from the link capacity packet");
  bench::row("serialization sees, so no background packet is ever simulated.");
  table.json().addNote("the packet flow's share shrinks as analytic background joins the"
                       " bottleneck: fluid demand is subtracted from the link capacity packet"
                       " serialization sees, so no background packet is ever simulated");
  table.write();
}

}  // namespace

void registerHybridScenarios(ScenarioRegistry& registry) {
  registry.add({"hybrid_fidelity_background", "ablation",
                "per-packet science flow vs fluid background crowd",
                "DESIGN.md hybrid-fidelity engine; Eq. 1 response function, Dart et al. SC13",
                "hybrid_grid", hybridSpecs, renderHybrid, nullptr});
}

}  // namespace scidmz::scenario
