#include "scenario/observability.hpp"

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <ostream>
#include <set>
#include <string>
#include <vector>

#include "net/context.hpp"
#include "scenario/json.hpp"
#include "scenario/shard.hpp"
#include "sim/profiler.hpp"
#include "telemetry/span.hpp"

namespace scidmz::scenario {

namespace {

std::string g_trace_base;    // set by --trace=<base>
std::string g_profile_base;  // set by --profile=<base>
bool g_profile_flag = false;

/// SCIDMZ_TRACE/SCIDMZ_PROFILE double as enable switch and output base: a
/// bare "1"/"on"/"true" enables without file output, anything else is the
/// base path.
std::string envBase(const char* var) {
  const char* value = std::getenv(var);
  if (value == nullptr) return {};
  const std::string s = value;
  if (s.empty() || s == "1" || s == "on" || s == "true") return {};
  return s;
}

std::string fmtSeconds(std::int64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6f", static_cast<double>(ns) / 1e9);
  return buf;
}

std::string fmtPercent(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%5.1f%%", fraction * 100.0);
  return buf;
}

/// The report's phase vocabulary, in display order. queue_limited is
/// reserved (no emitter yet) but kept in the table so its column is stable.
constexpr const char* kPhases[] = {"handshake",    "slow_start",    "cwnd_limited", "rwnd_limited",
                                   "queue_limited", "loss_recovery", "storage"};

struct ReportSpan {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;
  std::string name;
  std::string cat;
  std::int64_t t0 = 0;
  std::int64_t t1 = 0;
  std::int64_t stream = -1;  ///< "stream" arg when present.
};

struct RootReport {
  std::string file;
  std::string name;
  std::string cat;
  std::int64_t duration = 0;
  std::size_t streams = 1;
  std::map<std::string, std::int64_t> phaseNs;  ///< per parallel stream, summed.

  [[nodiscard]] std::int64_t denominator() const {
    return duration * static_cast<std::int64_t>(streams);
  }
  [[nodiscard]] std::int64_t attributedNs() const {
    std::int64_t total = 0;
    for (const auto& [name_, ns] : phaseNs) total += ns;
    return total;
  }
};

bool loadSpansFile(const std::string& path, std::vector<RootReport>& roots, std::ostream& err) {
  std::ifstream in(path);
  if (!in) {
    err << "report: cannot open " << path << "\n";
    return false;
  }
  std::vector<ReportSpan> spans;
  std::map<std::uint64_t, std::size_t> byId;
  std::string line;
  bool sawHeader = false;
  std::size_t lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    if (line.empty()) continue;
    Json j;
    try {
      j = Json::parse(line);
    } catch (const JsonError& e) {
      err << "report: " << path << ":" << lineNo << ": " << e.what() << "\n";
      return false;
    }
    if (!sawHeader) {
      sawHeader = true;
      if (!j.isObject() || !j.contains("schema") ||
          j.get("schema").asString() != "scidmz.spans.v1") {
        err << "report: " << path << ": not a scidmz.spans.v1 file\n";
        return false;
      }
      continue;
    }
    ReportSpan s;
    s.id = static_cast<std::uint64_t>(j.get("id").asNumber());
    s.parent = j.contains("parent") ? static_cast<std::uint64_t>(j.get("parent").asNumber()) : 0;
    s.name = j.get("name").asString();
    s.cat = j.get("cat").asString();
    s.t0 = static_cast<std::int64_t>(j.get("t0_ns").asNumber());
    s.t1 = static_cast<std::int64_t>(j.get("t1_ns").asNumber());
    const Json& args = j.get("args");
    if (args.isObject() && args.contains("stream")) {
      s.stream = static_cast<std::int64_t>(args.get("stream").asNumber());
    }
    byId[s.id] = spans.size();
    spans.push_back(std::move(s));
  }
  if (!sawHeader) {
    err << "report: " << path << ": empty file\n";
    return false;
  }

  // Attribute each phase/storage span to its root's report row. Spans are
  // written id-ascending and parents precede children, so a single pass with
  // a parent→root map suffices.
  std::map<std::uint64_t, std::size_t> rootRowOf;  ///< span id (root) → roots index.
  std::map<std::uint64_t, std::uint64_t> rootIdOf;  ///< span id → its root's span id.
  for (const ReportSpan& s : spans) {
    if (s.parent == 0) {
      rootIdOf[s.id] = s.id;
      RootReport row;
      row.file = path;
      row.name = s.name;
      row.cat = s.cat;
      row.duration = s.t1 - s.t0;
      rootRowOf[s.id] = roots.size();
      roots.push_back(std::move(row));
      continue;
    }
    const auto up = rootIdOf.find(s.parent);
    if (up == rootIdOf.end()) continue;  // orphan: parent missing from file
    rootIdOf[s.id] = up->second;
    RootReport& row = roots[rootRowOf[up->second]];
    if (s.cat == "tcp.phase") {
      row.phaseNs[s.name] += s.t1 - s.t0;
      if (s.stream >= 0 && static_cast<std::size_t>(s.stream) + 1 > row.streams) {
        row.streams = static_cast<std::size_t>(s.stream) + 1;
      }
    } else if (s.cat == "storage") {
      row.phaseNs["storage"] += s.t1 - s.t0;
    }
  }
  return true;
}

}  // namespace

void setTraceOutput(const std::string& base) {
  g_trace_base = base;
  telemetry::setProcessTracingEnabled(true);
}

void setProfileOutput(const std::string& base) {
  g_profile_base = base;
  g_profile_flag = true;
}

bool tracingRequested() {
  return telemetry::processTracingEnabled() || std::getenv("SCIDMZ_TRACE") != nullptr;
}

bool profilingRequested() { return g_profile_flag || std::getenv("SCIDMZ_PROFILE") != nullptr; }

std::string traceOutputBase() {
  return !g_trace_base.empty() ? g_trace_base : envBase("SCIDMZ_TRACE");
}

std::string profileOutputBase() {
  return !g_profile_base.empty() ? g_profile_base : envBase("SCIDMZ_PROFILE");
}

void writeCellObservability(Scenario& s, sim::SweepCell& cell) {
  const sim::SimTime now = s.ctx.now();
  if (s.sharded()) {
    // Sharded cell: each domain traced its own flows into its own Tracer,
    // and a flow's hops recorded into whichever domain ring they live in.
    // Correlate every domain tracer against the union of the rings, then
    // merge into one tracer whose span order (and hence export bytes and
    // spansEmitted) is partition-invariant.
    std::vector<const telemetry::FlightRecorder*> recorders;
    for (net::Context* ctx : s.shards->contexts) {
      recorders.push_back(&ctx->telemetry().recorder());
    }
    std::vector<const telemetry::Tracer*> parts;
    bool anyEnabled = false;
    for (net::Context* ctx : s.shards->contexts) {
      auto& t = ctx->extension<telemetry::Tracer>();
      if (t.enabled()) {
        anyEnabled = true;
        t.correlate(recorders, now);
      }
      parts.push_back(&t);
    }
    if (anyEnabled) {
      telemetry::Tracer merged;
      merged.mergeFrom(parts);
      cell.spansEmitted = merged.spansEmitted();
      const std::string base = traceOutputBase();
      if (!base.empty()) {
        const std::string stem = base + ".cell" + std::to_string(cell.index);
        char cellExtra[48];
        std::snprintf(cellExtra, sizeof cellExtra, ", \"cell\": %zu", cell.index);
        if (std::ofstream out(stem + ".spans.jsonl"); out) {
          merged.exportSpansJsonl(out, now, cellExtra);
        }
        if (std::ofstream out(stem + ".trace.json"); out) {
          merged.exportChromeTrace(out, now);
        }
      }
    }
    // --profile does not compose with sharding (attachShards refuses it),
    // so there is no profiler block on this path.
    return;
  }
  auto& tracer = s.ctx.extension<telemetry::Tracer>();
  if (tracer.enabled()) {
    // Flow handles may still be alive (spans open): correlate against the
    // flight recorder now and let the exporters close open spans virtually.
    tracer.correlate(s.ctx.telemetry().recorder(), now);
    cell.spansEmitted = tracer.spansEmitted();
    const std::string base = traceOutputBase();
    if (!base.empty()) {
      // Per-cell files keep sweep workers from sharing a stream; cell.index
      // makes the paths deterministic at any SCIDMZ_SWEEP_THREADS.
      const std::string stem = base + ".cell" + std::to_string(cell.index);
      char cellExtra[48];
      std::snprintf(cellExtra, sizeof cellExtra, ", \"cell\": %zu", cell.index);
      if (std::ofstream out(stem + ".spans.jsonl"); out) {
        tracer.exportSpansJsonl(out, now, cellExtra);
      }
      if (std::ofstream out(stem + ".trace.json"); out) {
        tracer.exportChromeTrace(out, now);
      }
    }
  }
  if (sim::Profiler* prof = s.simulator.profiler(); prof != nullptr) {
    prof->setHighWater("arena_blocks_live", s.ctx.arena().liveCount());
    prof->setHighWater("arena_blocks_peak", s.ctx.arena().highWater());
    prof->setHighWater("arena_unpooled_live", s.ctx.arena().unpooledLive());
    prof->setHighWater("arena_slabs", s.ctx.arena().slabCount());
    prof->setHighWater("packet_pool_peak", s.ctx.pool().highWater());
    prof->setHighWater("packet_pool_slots", s.ctx.pool().slotCount());
    const std::string base = profileOutputBase();
    if (!base.empty()) {
      if (std::ofstream out(base + ".cell" + std::to_string(cell.index) + ".profile.json"); out) {
        prof->exportJson(out);
      }
    }
  }
}

bool printCriticalPathReport(const std::vector<std::string>& files, std::ostream& out) {
  std::vector<RootReport> roots;
  for (const std::string& file : files) {
    if (!loadSpansFile(file, roots, out)) return false;
  }

  out << "critical-path report: " << files.size() << " file(s), " << roots.size()
      << " root span(s)\n";
  std::map<std::string, std::int64_t> aggregate;
  std::int64_t aggregateDenominator = 0;
  for (const RootReport& row : roots) {
    out << "\n" << row.name << "  [" << row.cat << "]  file=" << row.file << "\n";
    out << "  duration " << fmtSeconds(row.duration) << " s";
    if (row.streams > 1) out << "  (" << row.streams << " parallel streams)";
    out << "\n";
    if (row.duration <= 0) continue;
    const std::int64_t denom = row.denominator();
    for (const char* phase : kPhases) {
      const auto it = row.phaseNs.find(phase);
      if (it == row.phaseNs.end() || it->second == 0) continue;
      out << "    " << fmtPercent(static_cast<double>(it->second) / static_cast<double>(denom))
          << "  " << phase;
      for (int pad = static_cast<int>(14 - std::string(phase).size()); pad > 0; --pad) out << ' ';
      out << fmtSeconds(it->second) << " s\n";
      aggregate[phase] += it->second;
    }
    out << "    " << fmtPercent(static_cast<double>(row.attributedNs()) / static_cast<double>(denom))
        << "  attributed\n";
    aggregateDenominator += denom;
  }

  out << "\naggregate (all roots)\n";
  std::int64_t attributed = 0;
  for (const char* phase : kPhases) {
    const std::int64_t ns = aggregate.count(phase) != 0 ? aggregate[phase] : 0;
    attributed += ns;
    out << "    "
        << fmtPercent(aggregateDenominator > 0
                          ? static_cast<double>(ns) / static_cast<double>(aggregateDenominator)
                          : 0.0)
        << "  " << phase;
    for (int pad = static_cast<int>(14 - std::string(phase).size()); pad > 0; --pad) out << ' ';
    out << fmtSeconds(ns) << " s\n";
  }
  out << "    "
      << fmtPercent(aggregateDenominator > 0
                        ? static_cast<double>(attributed) / static_cast<double>(aggregateDenominator)
                        : 0.0)
      << "  attributed\n";
  return true;
}

}  // namespace scidmz::scenario
