// esnet_scale: a ring of ESnet-style sites sized to exercise the sharded
// scheduler. K site routers are stitched into a WAN ring whose segment
// delays all sit above the lookahead floor (every ring link is
// cut-eligible); each site hangs `hostsPerSite` DTNs off its router on
// 10 us LAN links (never cut — the partitioner contracts them), and every
// host runs bulk flows to its peer host one site clockwise. Transit load
// is therefore spread evenly around the ring: with domains == sites each
// worker owns exactly one site and only WAN handoffs cross domains.
//
// The per-site delivered-bytes table is the determinism artifact: it must
// be byte-identical at every --domains, while events/s scales with the
// worker count (bench/micro_shard measures that curve).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/sweep.hpp"
#include "sim/units.hpp"

namespace scidmz::scenario {

struct EsnetScaleConfig {
  int sites = 8;
  int hostsPerSite = 4;
  int flowsPerHost = 1;
  /// Simulated time to run after flow start.
  sim::Duration runDuration = sim::Duration::milliseconds(500);
  std::uint64_t seed = 20130101;
  /// Conservative lookahead floor; every WAN ring delay is >= this.
  sim::Duration lookahead = sim::Duration::milliseconds(5);
  /// Requested worker domains (>= 1). 1 still runs the sharded scheduler —
  /// it is the byte-compare baseline for every higher count.
  int domains = 1;
  sim::DataRate wanRate = sim::DataRate::gigabitsPerSecond(100);
  sim::DataRate hostRate = sim::DataRate::gigabitsPerSecond(10);
};

struct EsnetScaleResult {
  /// Bytes landed at each site's hosts (site = flow destination), in site
  /// order. Domain-invariant.
  std::vector<unsigned long long> deliveredBySite;
  std::uint64_t flows = 0;
};

/// Build the ring, attach shards at cfg.domains, run for cfg.runDuration,
/// and finish `cell` with the standard sharded bookkeeping (events,
/// per-domain event split, merged telemetry/spans). Refuses --profile and
/// a process-wide fluid fidelity override, like the engine's gate.
EsnetScaleResult runEsnetScale(const EsnetScaleConfig& cfg, sim::SweepCell& cell);

}  // namespace scidmz::scenario
