// Catalog: Section 7 — virtual circuits and SDN.
//   vc_roce_circuit       — OSCARS admission + RoCE vs TCP on a 40G circuit
//   sdn_policy_comparison — always-firewall / ids-then-bypass / acl-only
#include <string>
#include <vector>

#include "scenario/bench_io.hpp"
#include "sim/units.hpp"
#include "scenario/harness.hpp"
#include "scenario/registry.hpp"
#include "vc/oscars.hpp"
#include "vc/roce.hpp"

namespace scidmz::scenario {
namespace {

using namespace scidmz::sim::literals;

// --- vc_roce_circuit -------------------------------------------------------

ScenarioSpec roceCell(double lossRate, std::size_t index) {
  ScenarioSpec s;
  s.name = "vc_roce_circuit#" + std::to_string(index);
  s.topology.kind = TopologyKind::kPath;
  auto& p = s.topology.path;
  p.link = LinkSpec{40000, 10000, 9000};
  if (lossRate > 0) {
    LossSpec l;
    l.rate = lossRate;
    l.rngFork = 6;
    p.losses.push_back(l);
  }
  WorkloadSpec w;
  w.kind = WorkloadKind::kRoce;
  w.rateGbps = 40;
  w.bytes = (10_GB).byteCount();
  w.timeoutS = 600.0;
  s.workloads.push_back(w);
  return s;
}

std::vector<ScenarioSpec> vcSpecs() {
  std::vector<ScenarioSpec> specs;
  ScenarioSpec tcpSpec;
  tcpSpec.name = "vc_roce_circuit#0";
  tcpSpec.topology.kind = TopologyKind::kPath;
  tcpSpec.topology.path.link = LinkSpec{40000, 10000, 9000};
  WorkloadSpec w;
  w.tcp.cc = CcAlgo::kHtcp;
  w.tcp.bufBytes = (512_MB).byteCount();
  w.warmupS = 3.0;
  w.windowS = 4.0;
  tcpSpec.workloads.push_back(w);
  specs.push_back(std::move(tcpSpec));
  specs.push_back(roceCell(0.0, 1));
  specs.push_back(roceCell(1e-4, 2));
  return specs;
}

/// OSCARS admission control demo: build the 40G core inline and ask for
/// the circuit twice. Pure control-plane arithmetic over the topology —
/// no simulated traffic — so it lives in the render.
void oscarsDemo() {
  Scenario s;
  auto& a = s.topo.addHost("a", net::Address(10, 0, 0, 1));
  auto& sw = s.topo.addSwitch("core");
  auto& b = s.topo.addHost("b", net::Address(10, 0, 0, 2));
  net::LinkParams lp;
  lp.rate = 40_Gbps;
  s.topo.connect(a, sw, lp);
  s.topo.connect(sw, b, lp);
  s.topo.computeRoutes();
  vc::OscarsService oscars{s.topo};
  const auto start = sim::SimTime::zero();
  const auto id = oscars.reserve(a.address(), b.address(), 40_Gbps, start,
                                 start + sim::Duration::seconds(3600));
  bench::row("oscars: reserved 40G a->b for 1h: %s", id ? "granted" : "DENIED");
  const auto second = oscars.reserve(a.address(), b.address(), 1_Gbps, start,
                                     start + sim::Duration::seconds(3600));
  bench::row("oscars: a second 1G overlapping request: %s (admission control)",
             second ? "granted (bug)" : "denied, circuit is full");
}

void renderVc(const ScenarioEntry& entry, const std::vector<CellOutcome>& outcomes) {
  oscarsDemo();

  bench::Table table(entry.name, entry.title, entry.paperRef,
                     {{"transport", "%-30s"},
                      {"gbps", "%-12.1f"},
                      {"cpu_units", "%-14.3f"},
                      {"wasted_GB", "%-12.2f"}});
  table.blankRow();
  table.printHeader();

  const auto& tcp = outcomes[0];
  const auto tcpRate =
      sim::DataRate::bitsPerSecond(static_cast<std::uint64_t>(tcp.result.at("w0.bps")));
  table.emit({"tcp (htcp) on circuit", tcpRate.toGbps(), vc::tcpCpuUnits(tcpRate.bytesIn(4_s)),
              bench::Cell{bench::JsonValue("-"), bench::formatRow("%-12s", "-")}});
  for (std::size_t i = 1; i < 3; ++i) {
    const auto& o = outcomes[i];
    const auto goodput = sim::DataRate::bitsPerSecond(
        static_cast<std::uint64_t>(o.result.at("w0.goodput_bps")));
    const double wastedGB =
        sim::DataSize::bytes(static_cast<std::uint64_t>(o.result.at("w0.wasted_bytes"))).toGB();
    table.emit({i == 1 ? "roce on loss-free circuit" : "roce without circuit (1e-4 loss)",
                goodput.toGbps(), o.result.at("w0.cpu_units"), wastedGB});
  }
  table.blankRow();
  bench::row("cpu per GB moved, tcp/roce: %.0fx (paper: ~50x less CPU;",
             vc::kTcpCpuUnitsPerGB / vc::kRoceCpuUnitsPerGB);
  bench::row("39.5 Gbps single flow on a 40GE host). without the circuit, go-back-N");
  bench::row("wastes the pipe: RoCE requires the loss-free guaranteed-bandwidth path.");
  table.json().addNote(bench::formatRow(
      "cpu per GB moved, tcp/roce: %.0fx (paper: ~50x less CPU); without the circuit,"
      " go-back-N wastes the pipe",
      vc::kTcpCpuUnitsPerGB / vc::kRoceCpuUnitsPerGB));
  table.write();
}

// --- sdn_policy_comparison -------------------------------------------------

std::vector<ScenarioSpec> sdnSpecs() {
  std::vector<ScenarioSpec> specs;
  for (int mode = 0; mode < 3; ++mode) {  // 0 = firewall, 1 = ids-bypass, 2 = acl-only
    ScenarioSpec s;
    s.name = "sdn_policy_comparison#" + std::to_string(specs.size());
    s.topology.kind = TopologyKind::kPath;
    auto& p = s.topology.path;
    p.src = HostSpec{"remote", "198.128.1.1"};
    p.dst = HostSpec{"dtn", "10.10.1.10"};
    p.link = LinkSpec{10000, 10000, 9000};
    if (mode == 2) {
      p.middlebox = Middlebox::kSwitch;
      p.midName = "dmz-switch";
    } else {
      // Sequence checking off: a bypass installed after the handshake
      // cannot restore window scaling the firewall already stripped from
      // the SYN, so we isolate the data-path (engine/buffer) cost here.
      p.middlebox = Middlebox::kFirewall;
      p.midName = "edge-fw";
      p.firewallSeqChecking = false;
      if (mode == 1) p.idsVettingPackets = 5;
    }
    WorkloadSpec w;
    w.tcp.cc = CcAlgo::kHtcp;
    w.tcp.bufBytes = (128_MB).byteCount();
    w.warmupS = 5.0;
    w.windowS = 15.0;
    s.workloads.push_back(w);
    specs.push_back(std::move(s));
  }
  return specs;
}

void renderSdn(const ScenarioEntry& entry, const std::vector<CellOutcome>& outcomes) {
  bench::Table table(entry.name, entry.title, entry.paperRef,
                     {{"policy", "%-26s"},
                      {"mbps", "%-12s"},
                      {"pkts_inspected", "%-18llu"},
                      {"fw_drops", "%-14llu"}});
  table.printHeader();
  const char* names[] = {"always-firewall", "ids-then-bypass (sdn)", "acl-only (science dmz)"};
  for (std::size_t mode = 0; mode < 3; ++mode) {
    const auto& o = outcomes[mode];
    const double mbps =
        sim::DataRate::bitsPerSecond(static_cast<std::uint64_t>(o.result.at("w0.bps")))
            .toMbps();
    table.emit({names[mode], bench::mbpsCell(mbps, o.result.at("w0.established") != 0.0),
                static_cast<unsigned long long>(o.result.get("fw.inspected", 0.0)),
                static_cast<unsigned long long>(o.result.get("fw.drops_input_buffer", 0.0))});
  }
  table.blankRow();
  bench::row("the SDN policy recovers (nearly) the ACL-only rate while still passing");
  bench::row("connection setup through the IDS — the paper's proposed middle ground.");
  table.json().addNote("the SDN policy recovers (nearly) the ACL-only rate while still passing"
                       " connection setup through the IDS — the paper's proposed middle ground");
  table.write();
}

}  // namespace

void registerVcScenarios(ScenarioRegistry& registry) {
  registry.add({"vc_roce_circuit", "vc", "RoCE vs TCP on a guaranteed 40G virtual circuit",
                "Section 7.1 (OSCARS + RoCE, Kissel et al. numbers), Dart et al. SC13",
                "transports", vcSpecs, renderVc, nullptr});
  registry.add({"sdn_policy_comparison", "vc", "security policy vs science-flow throughput",
                "Section 7.3 (OpenFlow IDS-then-bypass), Dart et al. SC13", "policies",
                sdnSpecs, renderSdn, nullptr});
}

}  // namespace scidmz::scenario
