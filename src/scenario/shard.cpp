#include "scenario/shard.hpp"

#include <map>
#include <stdexcept>
#include <string>
#include <utility>

#include "net/flow.hpp"
#include "net/topology.hpp"
#include "scenario/harness.hpp"
#include "telemetry/snapshot.hpp"

namespace scidmz::scenario {

ShardRuntime::ShardRuntime(Scenario& s, int domains, std::uint64_t seed,
                           sim::Duration lookaheadFloor)
    : lookahead(lookaheadFloor) {
  contexts.push_back(&s.ctx);
  std::vector<sim::Simulator*> sims;
  sims.push_back(&s.simulator);
  for (int d = 1; d < domains; ++d) {
    extras.push_back(std::make_unique<DomainRuntime>(seed));
    contexts.push_back(&extras.back()->ctx);
    sims.push_back(&extras.back()->simulator);
  }
  sharded = std::make_unique<sim::ShardedSimulator>(std::move(sims), lookahead);
}

void attachShards(Scenario& s, const ShardPlan& plan, std::uint64_t seed,
                  sim::Duration lookaheadFloor) {
  if (s.shards != nullptr) {
    throw std::runtime_error("attachShards: scenario already sharded");
  }
  if (s.simulator.profiler() != nullptr) {
    throw std::runtime_error(
        "sharded execution does not compose with --profile: the self-profiler "
        "instruments one event queue; run the profile at --domains=1 without sharding");
  }
  if (plan.domains < 1) {
    throw std::runtime_error("attachShards: plan has no domains");
  }
  s.shards = std::make_shared<ShardRuntime>(s, plan.domains, seed, lookaheadFloor);

  // Per-domain hubs follow the primary's instrumentation decision (made by
  // the engine / SCIDMZ_TELEMETRY before shards attach) so every domain's
  // emit points are live and the merged snapshot covers the whole topology.
  if (s.ctx.telemetry().enabled()) {
    for (auto& extra : s.shards->extras) {
      extra->ctx.telemetry().enable(s.ctx.telemetry().config());
    }
  }

  // The fluid engine's rate solve reads link state across the whole
  // topology from one thread; pin every domain to per-packet TCP so no
  // cross-domain state is touched off the owning worker.
  for (net::Context* ctx : s.shards->contexts) {
    net::flowFactory(*ctx).setOverride(net::FlowFidelity::kPacket);
  }

  net::ShardConfig config;
  config.domains = s.shards->contexts;
  config.deviceDomain = plan.nodeDomain;
  config.lookaheadFloor = lookaheadFloor;
  config.sharded = s.shards->sharded.get();
  s.topo.configureShards(std::move(config));
}

namespace {
std::optional<int> g_domains_override;
}  // namespace

void setProcessDomainsOverride(std::optional<int> domains) { g_domains_override = domains; }

std::optional<int> processDomainsOverride() { return g_domains_override; }

void Scenario::runFor(sim::Duration d) {
  if (shards != nullptr) {
    shards->sharded->runFor(d);
  } else {
    simulator.runFor(d);
  }
}

namespace {

/// Deterministic union of per-domain telemetry snapshots: counters summed
/// by name (the same emit point may fire in several domains — e.g. pool
/// counters), gauges and series unioned by name (device-scoped names are
/// unique to one domain; first mention wins), flight accounting summed.
/// std::map keying makes the merged vectors name-sorted, matching what a
/// single-domain hub's snapshot() emits.
telemetry::TelemetrySnapshot mergeSnapshots(const std::vector<net::Context*>& contexts) {
  using Snapshot = telemetry::TelemetrySnapshot;
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Snapshot::SeriesSummary> series;
  Snapshot merged;
  for (net::Context* ctx : contexts) {
    const Snapshot part = ctx->telemetry().snapshot();
    for (const auto& c : part.counters) counters[c.name] += c.value;
    for (const auto& g : part.gauges) gauges.try_emplace(g.name, g.value);
    for (const auto& ss : part.series) series.try_emplace(ss.name, ss);
    merged.flightEventsRecorded += part.flightEventsRecorded;
    merged.flightEventsRetained += part.flightEventsRetained;
    merged.flightEventsOverwritten += part.flightEventsOverwritten;
  }
  merged.counters.reserve(counters.size());
  for (const auto& [name, value] : counters) merged.counters.push_back({name, value});
  merged.gauges.reserve(gauges.size());
  for (const auto& [name, value] : gauges) merged.gauges.push_back({name, value});
  merged.series.reserve(series.size());
  for (const auto& [name, summary] : series) merged.series.push_back(summary);
  return merged;
}

}  // namespace

void finishCell(Scenario& s, sim::SweepCell& cell) {
  if (s.shards == nullptr) {
    cell.eventsExecuted = s.simulator.eventsExecuted();
    cell.packetsForwarded = s.ctx.packetsForwarded();
    cell.flowsCreated = net::flowFactory(s.ctx).flowsCreated();
    if (s.ctx.telemetry().enabled()) {
      cell.telemetryJson = s.ctx.telemetry().snapshot().toJson();
    }
    writeCellObservability(s, cell);
    return;
  }

  ShardRuntime& shards = *s.shards;
  cell.domains = static_cast<std::uint32_t>(shards.contexts.size());
  cell.eventsExecuted = shards.sharded->eventsExecuted();
  cell.domainEvents.clear();
  for (std::size_t d = 0; d < shards.contexts.size(); ++d) {
    cell.domainEvents.push_back(shards.sharded->domainEvents(static_cast<int>(d)));
  }
  cell.packetsForwarded = 0;
  cell.flowsCreated = 0;
  for (net::Context* ctx : shards.contexts) {
    cell.packetsForwarded += ctx->packetsForwarded();
    cell.flowsCreated += net::flowFactory(*ctx).flowsCreated();
  }
  if (s.ctx.telemetry().enabled()) {
    cell.telemetryJson = mergeSnapshots(shards.contexts).toJson();
  }
  writeCellObservability(s, cell);
}

}  // namespace scidmz::scenario
