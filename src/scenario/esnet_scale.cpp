#include "scenario/esnet_scale.hpp"

#include <string>
#include <vector>

#include "net/flow.hpp"
#include "net/topology.hpp"
#include "scenario/harness.hpp"
#include "scenario/partition.hpp"
#include "scenario/shard.hpp"
#include "scenario/spec.hpp"
#include "tcp/connection.hpp"

namespace scidmz::scenario {

using namespace scidmz::sim::literals;

namespace {

std::string routerName(int site) { return "r" + std::to_string(site); }

std::string hostName(int site, int host) {
  return "s" + std::to_string(site) + "h" + std::to_string(host);
}

/// WAN delay for ring segment r<i> -> r<i+1 mod K>: 10/12/14 ms cycling,
/// so the stitch points exercise unequal delay/lookahead ratios while the
/// per-site slow-start ramps stay close enough that transit load balances
/// across domains. Every value stays >= the 5 ms default floor.
sim::Duration wanDelay(int segment) {
  constexpr std::int64_t kPattern[] = {10, 12, 14, 12};
  return sim::Duration::milliseconds(kPattern[segment % 4]);
}

constexpr sim::Duration kLanDelay = sim::Duration::microseconds(10);

}  // namespace

EsnetScaleResult runEsnetScale(const EsnetScaleConfig& cfg, sim::SweepCell& cell) {
  if (cfg.sites < 2 || cfg.sites > 250) {
    throw SpecError("esnet_scale: sites must be in [2, 250]");
  }
  if (cfg.hostsPerSite < 1 || cfg.hostsPerSite > 250 * 250) {
    throw SpecError("esnet_scale: hosts_per_site must be in [1, 62500]");
  }
  if (cfg.flowsPerHost < 1 || cfg.flowsPerHost > 1000) {
    throw SpecError("esnet_scale: flows_per_host must be in [1, 1000]");
  }
  if (cfg.domains < 1) throw SpecError("esnet_scale: domains must be >= 1");
  if (net::processFidelityOverride() == net::FlowFidelity::kFluid) {
    throw SpecError("esnet_scale runs the sharded scheduler, which pins packet "
                    "fidelity; --fidelity=fluid does not apply");
  }
  if (profilingRequested()) {
    throw SpecError("esnet_scale runs the sharded scheduler, which does not "
                    "compose with --profile");
  }

  Scenario s{cfg.seed};

  // Mirror the topology (same names, same delays) into the partitioner:
  // LAN edges contract, WAN ring edges are the only cut points, and the
  // first-mention atom order — site 0, site 1, ... — makes the domain
  // assignment deterministic.
  ShardPlanBuilder builder;
  for (int i = 0; i < cfg.sites; ++i) {
    builder.addNode(routerName(i));
    for (int j = 0; j < cfg.hostsPerSite; ++j) {
      builder.addNode(hostName(i, j));
      builder.addEdge(routerName(i), hostName(i, j), kLanDelay);
    }
  }
  for (int i = 0; i < cfg.sites; ++i) {
    builder.addEdge(routerName(i), routerName((i + 1) % cfg.sites), wanDelay(i));
  }
  attachShards(s, builder.plan(cfg.domains, cfg.lookahead), cfg.seed, cfg.lookahead);

  std::vector<net::RouterDevice*> routers;
  std::vector<std::vector<net::Host*>> hosts(static_cast<std::size_t>(cfg.sites));
  for (int i = 0; i < cfg.sites; ++i) {
    routers.push_back(&s.topo.addRouter(routerName(i)));
    net::LinkParams lan;
    lan.rate = cfg.hostRate;
    lan.delay = kLanDelay;
    lan.mtu = 9000_B;
    for (int j = 0; j < cfg.hostsPerSite; ++j) {
      auto& host = s.topo.addHost(
          hostName(i, j), net::Address(10, static_cast<std::uint8_t>(i),
                                       static_cast<std::uint8_t>(j / 250),
                                       static_cast<std::uint8_t>(j % 250 + 1)));
      s.topo.connect(host, *routers.back(), lan);
      hosts[static_cast<std::size_t>(i)].push_back(&host);
    }
  }
  for (int i = 0; i < cfg.sites; ++i) {
    net::LinkParams wan;
    wan.rate = cfg.wanRate;
    wan.delay = wanDelay(i);
    wan.mtu = 9000_B;
    s.topo.connect(*routers[static_cast<std::size_t>(i)],
                   *routers[static_cast<std::size_t>((i + 1) % cfg.sites)], wan);
  }
  s.topo.computeRoutes();

  // Every host streams to its peer one site clockwise: one WAN hop per
  // flow, transit load identical on every ring segment. The server port is
  // unique per (src, dst, stream) triple, so merged span exports stay
  // unambiguous.
  tcp::TcpConfig tcp;
  tcp.algorithm = tcp::CcAlgorithm::kHtcp;
  tcp.sndBuf = sim::DataSize::mebibytes(32);
  tcp.rcvBuf = sim::DataSize::mebibytes(32);

  std::vector<net::FlowPtr> flows;
  flows.reserve(static_cast<std::size_t>(cfg.sites) *
                static_cast<std::size_t>(cfg.hostsPerSite) *
                static_cast<std::size_t>(cfg.flowsPerHost));
  for (int i = 0; i < cfg.sites; ++i) {
    for (int j = 0; j < cfg.hostsPerSite; ++j) {
      net::Host& src = *hosts[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
      net::Host& dst =
          *hosts[static_cast<std::size_t>((i + 1) % cfg.sites)][static_cast<std::size_t>(j)];
      for (int f = 0; f < cfg.flowsPerHost; ++f) {
        net::FlowFactory::Options options;
        options.port = static_cast<std::uint16_t>(5001 + f);
        options.fidelity = net::FlowFidelity::kPacket;
        auto flow = net::flowFactory(src.ctx()).create(src, dst, tcp, options);
        auto* raw = flow.get();
        flow->onEstablished = [raw] { raw->sendData(sim::DataSize::terabytes(1)); };
        flow->start();
        flows.push_back(std::move(flow));
      }
    }
  }

  s.runFor(cfg.runDuration);

  EsnetScaleResult result;
  result.deliveredBySite.assign(static_cast<std::size_t>(cfg.sites), 0);
  result.flows = flows.size();
  std::size_t k = 0;
  for (int i = 0; i < cfg.sites; ++i) {
    const auto dstSite = static_cast<std::size_t>((i + 1) % cfg.sites);
    for (int j = 0; j < cfg.hostsPerSite; ++j) {
      for (int f = 0; f < cfg.flowsPerHost; ++f) {
        result.deliveredBySite[dstSite] +=
            static_cast<unsigned long long>(flows[k++]->deliveredBytes().byteCount());
      }
    }
  }
  finishCell(s, cell);
  return result;
}

}  // namespace scidmz::scenario
