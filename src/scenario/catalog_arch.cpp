// Catalog: the Section 4 reference architectures.
//   arch_simple_dmz      — Figure 3 design vs general-purpose campus
//   arch_supercomputer   — Figure 4 DTN pool into a shared parallel fs
//   arch_bigdata_cluster — Figure 5 LHC-scale data cluster front-end
#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "scenario/bench_io.hpp"
#include "sim/units.hpp"
#include "scenario/registry.hpp"

namespace scidmz::scenario {
namespace {

using namespace scidmz::sim::literals;

double mbpsOf(const CellOutcome& o, const std::string& key) {
  return sim::DataRate::bitsPerSecond(static_cast<std::uint64_t>(o.result.at(key))).toMbps();
}

// --- arch_simple_dmz -------------------------------------------------------

ScenarioSpec simpleDmzCell(bool dmz, std::size_t index) {
  ScenarioSpec s;
  s.name = "arch_simple_dmz#" + std::to_string(index);
  s.topology.kind = TopologyKind::kSite;
  auto& site = s.topology.site;
  site.design = dmz ? SiteDesign::kSimpleDmz : SiteDesign::kGeneralPurpose;
  site.untunedHosts = !dmz;
  s.analysis.validate = true;
  s.analysis.assessPath = true;
  s.analysis.windowScalingBroken = !dmz;  // the firewall strips RFC1323
  WorkloadSpec w;
  w.kind = WorkloadKind::kDtnTransfer;
  w.port = 50000;
  w.bytes = dmz ? (2_GB).byteCount() : (100_MB).byteCount();
  w.timeoutS = 3600.0;
  s.workloads.push_back(w);
  return s;
}

std::vector<ScenarioSpec> simpleDmzSpecs() {
  return {simpleDmzCell(false, 0), simpleDmzCell(true, 1)};
}

void renderSimpleDmz(const ScenarioEntry& entry, const std::vector<CellOutcome>& outcomes) {
  bench::Table table(entry.name, entry.title, entry.paperRef,
                     {{"architecture", "%-26s"},
                      {"criticals", "%-10zu"},
                      {"firewall", "%-10s"},
                      {"predicted_mbps", "%-16.1f"},
                      {"measured_mbps", "%-14.1f"}});
  table.printHeader();
  const char* names[] = {"general-purpose campus", "simple science dmz"};
  double measured[2] = {0, 0};
  std::size_t criticals[2] = {0, 0};
  for (std::size_t i = 0; i < 2; ++i) {
    const auto& o = outcomes[i];
    criticals[i] = static_cast<std::size_t>(o.result.at("validate.criticals"));
    measured[i] = o.result.at("w0.completed") != 0.0 ? mbpsOf(o, "w0.bps") : 0.0;
    const double predicted =
        o.result.has("path.predicted_bps") ? mbpsOf(o, "path.predicted_bps") : 0.0;
    const bool crossesFw = o.result.get("path.crosses_firewall", 0.0) != 0.0;
    table.emit({names[i], static_cast<unsigned long long>(criticals[i]),
                crossesFw ? "on-path" : "off-path", predicted, measured[i]});
  }
  table.blankRow();
  table.note(bench::formatRow(
      "improvement: %.0fx measured (validator predicted the loser: %zu vs %zu criticals)",
      measured[1] / std::max(measured[0], 0.001), criticals[0], criticals[1]));
  table.write();
}

// --- arch_supercomputer ----------------------------------------------------

std::vector<ScenarioSpec> supercomputerSpecs() {
  std::vector<ScenarioSpec> specs;
  for (const int pool : {1, 2, 4}) {
    ScenarioSpec s;
    s.name = "arch_supercomputer#" + std::to_string(specs.size());
    s.topology.kind = TopologyKind::kSite;
    auto& site = s.topology.site;
    site.design = SiteDesign::kSupercomputer;
    site.dtnCount = pool;
    site.wan = LinkSpec{10000, 20000, 9000};
    // The remote source's archive reads slightly below its NIC rate so the
    // disk pump cannot pile unbounded backlog into the host queue when
    // several lanes share the single source.
    site.remoteStorageReadMbps = 9200;
    site.remoteStoragePerStreamCapMbps = 8000;
    WorkloadSpec w;
    w.kind = WorkloadKind::kCampaign;
    w.label = "campaign";
    w.srcCluster = "experiment";
    w.dstCluster = "center";
    w.port = 50000;
    w.files = 8;
    w.fileSizeBytes = (500_MB).byteCount();
    w.filePrefix = "shot-";
    w.fileSuffix = ".h5";
    w.timeoutS = 3600.0;
    s.workloads.push_back(w);
    specs.push_back(std::move(s));
  }
  return specs;
}

void renderSupercomputer(const ScenarioEntry& entry, const std::vector<CellOutcome>& outcomes) {
  bench::Table table(entry.name, entry.title, entry.paperRef,
                     {{"dtn_pool", "%-10d"},
                      {"files", "%-8d"},
                      {"aggregate_mbps", "%-16.1f"},
                      {"elapsed_s", "%-12.1f"},
                      {"files_visible_without_copy", "%-22s", "visible_without_copy"}});
  table.printHeader();
  const std::vector<int> pools{1, 2, 4};
  for (std::size_t i = 0; i < pools.size(); ++i) {
    const auto& o = outcomes[i];
    const double aggregateMbps =
        o.result.has("campaign.aggregate_bps") ? mbpsOf(o, "campaign.aggregate_bps") : 0.0;
    const double elapsedSecs = o.result.get("campaign.elapsed_s", 0.0);
    const auto visible = static_cast<std::size_t>(o.result.at("campaign.files_visible"));
    table.emit({pools[i], 8, aggregateMbps, elapsedSecs,
                bench::Cell{bench::JsonValue(static_cast<unsigned long long>(visible)),
                            bench::formatRow("%zu/8", visible)}});
  }
  table.blankRow();
  bench::row("note: every ingested file is visible on the shared filesystem the");
  bench::row("moment the DTN commits it; login nodes never copy data (Section 4.2).");
  bench::row("remote single DTN is the source; pool scaling amortizes per-file");
  bench::row("ramp-up until the sender or the WAN becomes the bottleneck.");
  table.json().addNote("every ingested file is visible on the shared filesystem the moment the"
                       " DTN commits it; login nodes never copy data (Section 4.2)");
  table.json().addNote("pool scaling amortizes per-file ramp-up until the sender or the WAN"
                       " becomes the bottleneck");
  table.write();
}

// --- arch_bigdata_cluster --------------------------------------------------

std::vector<ScenarioSpec> bigdataSpecs() {
  ScenarioSpec s;
  s.name = "arch_bigdata_cluster#0";
  s.topology.kind = TopologyKind::kSite;
  auto& site = s.topology.site;
  site.design = SiteDesign::kBigData;
  site.dtnCount = 6;
  site.wan = LinkSpec{10000, 20000, 9000};
  s.analysis.validate = true;
  // Campaign: 18 files spread across the 6-node cluster.
  WorkloadSpec campaign;
  campaign.kind = WorkloadKind::kCampaign;
  campaign.label = "campaign";
  campaign.srcCluster = "tier0";
  campaign.dstCluster = "tier1";
  campaign.port = 50000;
  campaign.files = 18;
  campaign.fileSizeBytes = (400_MB).byteCount();
  campaign.filePrefix = "aod-";
  campaign.fileSuffix = ".root";
  campaign.timeoutS = 3600.0;
  s.workloads.push_back(campaign);
  // An unsanctioned probe toward a cluster node, dropped in the
  // forwarding plane by the data-switch ACL.
  WorkloadSpec probe;
  probe.kind = WorkloadKind::kProbe;
  probe.label = "probe";
  probe.tcp.cc = CcAlgo::kReno;  // tcp::TcpConfig{} defaults
  probe.tcp.bufBytes = sim::DataSize::mebibytes(16).byteCount();
  probe.port = 22;
  probe.runS = 10.0;
  s.workloads.push_back(probe);
  return {std::move(s)};
}

void renderBigdata(const ScenarioEntry& entry, const std::vector<CellOutcome>& outcomes) {
  const auto& o = outcomes[0];
  const auto criticals = static_cast<unsigned long long>(o.result.at("validate.criticals"));
  bench::row("validator: %zu critical findings on the science path",
             static_cast<std::size_t>(criticals));
  const double secs = o.result.get("campaign.elapsed_s", 0.0);
  const double mbps = o.result.has("campaign.aggregate_bps")
                          ? mbpsOf(o, "campaign.aggregate_bps")
                          : 0.0;
  bench::row("campaign: 18 x 400 MB in %.1f s  ->  %.1f Mbps aggregate", secs, mbps);
  bench::row("firewall saw %llu science packets (must be 0: flows bypass it)",
             static_cast<unsigned long long>(o.result.at("campaign.fw.inspected")));
  bench::row("data-switch ACL drops (unsanctioned traffic): %llu",
             static_cast<unsigned long long>(o.result.at("campaign.sw.drops_acl")));
  bench::row("unsanctioned ssh to a transfer node: %s; ACL drops now: %llu",
             o.result.at("probe.connected") != 0.0 ? "CONNECTED (bug)"
                                                   : "blocked in the switching plane",
             static_cast<unsigned long long>(o.result.at("probe.sw.drops_acl")));

  bench::JsonTable table(entry.name, entry.title, entry.paperRef, {"metric", "value"});
  table.addRow({"validator_critical_findings", criticals});
  table.addRow({"campaign_elapsed_s", secs});
  table.addRow({"campaign_aggregate_mbps", mbps});
  table.addRow({"firewall_inspected_science_packets",
                static_cast<unsigned long long>(o.result.at("fw.inspected"))});
  table.addRow({"acl_drops", static_cast<unsigned long long>(o.result.at("sw.drops_acl"))});
  table.addRow({"unsanctioned_ssh", o.result.at("probe.connected") != 0.0 ? "connected"
                                                                          : "blocked"});
  table.addNote("science flows bypass the enterprise firewall entirely; the data-switch ACL"
                " filters unsanctioned traffic at line rate");
  table.write();
}

}  // namespace

void registerArchScenarios(ScenarioRegistry& registry) {
  registry.add({"arch_simple_dmz", "arch", "Figure 3 design vs general-purpose campus",
                "Figure 3 + Section 4.1, Dart et al. SC13", "designs", simpleDmzSpecs,
                renderSimpleDmz, nullptr});
  registry.add({"arch_supercomputer", "arch",
                "DTN pool ingestion into a shared parallel filesystem",
                "Figure 4 + Sections 4.2 / 6.4, Dart et al. SC13", "pools",
                supercomputerSpecs, renderSupercomputer, nullptr});
  registry.add({"arch_bigdata_cluster", "arch", "LHC-scale data cluster front-end",
                "Figure 5 + Section 4.3, Dart et al. SC13", "cluster", bigdataSpecs,
                renderBigdata, nullptr});
}

}  // namespace scidmz::scenario
