#include "scenario/engine.hpp"

#include <algorithm>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "apps/background_traffic.hpp"
#include "apps/parallel_transfer.hpp"
#include "core/path_analysis.hpp"
#include "core/site.hpp"
#include "core/site_builder.hpp"
#include "core/validator.hpp"
#include "dtn/dtn_cluster.hpp"
#include "dtn/dtn_node.hpp"
#include "net/acl.hpp"
#include "net/ids.hpp"
#include "net/loss.hpp"
#include "scenario/harness.hpp"
#include "scenario/partition.hpp"
#include "scenario/shard.hpp"
#include "usecase/colorado.hpp"
#include "usecase/nersc_olcf.hpp"
#include "usecase/noaa.hpp"
#include "usecase/pennstate.hpp"
#include "vc/openflow.hpp"
#include "vc/roce.hpp"

namespace scidmz::scenario {
namespace {

tcp::TcpConfig toTcpConfig(const TcpSpec& spec) {
  tcp::TcpConfig cfg;
  switch (spec.cc) {
    case CcAlgo::kReno: cfg.algorithm = tcp::CcAlgorithm::kReno; break;
    case CcAlgo::kHtcp: cfg.algorithm = tcp::CcAlgorithm::kHtcp; break;
    case CcAlgo::kCubic: cfg.algorithm = tcp::CcAlgorithm::kCubic; break;
  }
  cfg.sndBuf = sim::DataSize::bytes(spec.bufBytes);
  cfg.rcvBuf = sim::DataSize::bytes(spec.bufBytes);
  cfg.pacing = spec.pacing;
  return cfg;
}

net::LinkParams toLinkParams(const LinkSpec& spec) {
  net::LinkParams params;
  params.rate = sim::DataRate::megabitsPerSecond(spec.rateMbps);
  params.delay = sim::Duration::microseconds(static_cast<std::int64_t>(spec.delayUs));
  params.mtu = sim::DataSize::bytes(spec.mtuBytes);
  return params;
}

/// Per-workload live state whose addresses must stay stable for the whole
/// cell: simulator callbacks capture pointers into these.
struct FlowSet {
  std::vector<net::FlowPtr> flows;
  bool connected = false;  ///< timed_flow: accepted; probe: established
};

/// Everything the spec materialized into; owns all objects that must
/// outlive the workloads (the topology itself lives in the Scenario).
struct Materialized {
  // Devices of interest (non-owning; the topology owns them).
  net::FirewallDevice* fw = nullptr;
  net::SwitchDevice* sw = nullptr;
  net::Host* src = nullptr;  ///< path
  net::Host* dst = nullptr;  ///< path
  net::Host* sink = nullptr;              ///< fanin
  std::vector<net::Host*> senders;        ///< fanin
  std::vector<net::Host*> edgeClients;    ///< enterprise edge
  std::vector<net::Host*> edgeServers;    ///< enterprise edge
  std::vector<net::Link*> links;          ///< path segments in connect order

  std::unique_ptr<net::IntrusionDetectionSystem> ids;
  std::unique_ptr<vc::BypassController> bypass;
  std::unique_ptr<core::Site> site;

  // Live workload objects.
  std::deque<FlowSet> flowSets;
  std::vector<std::unique_ptr<SteadyFlow>> steadyFlows;
  std::vector<std::unique_ptr<apps::ParallelTransfer>> parallelTransfers;
  std::vector<std::unique_ptr<dtn::DtnTransfer>> dtnTransfers;
  std::vector<std::unique_ptr<dtn::DtnCluster>> clusters;
  std::vector<std::unique_ptr<dtn::TransferCampaign>> campaigns;
  std::vector<std::unique_ptr<apps::BackgroundTraffic>> backgroundTraffic;
  std::vector<std::unique_ptr<vc::RoceTransfer>> roceTransfers;
};

[[noreturn]] void incompatible(const WorkloadSpec& w, const TopologySpec& t) {
  throw SpecError(std::string{"workload \""} + toString(w.kind) +
                  "\" cannot run on a \"" + toString(t.kind) + "\" topology");
}

void buildPath(const PathTopology& t, Scenario& s, Materialized& m) {
  auto& src = s.topo.addHost(t.src.name, net::Address::parse(t.src.ip));
  auto& dst = s.topo.addHost(t.dst.name, net::Address::parse(t.dst.ip));
  m.src = &src;
  m.dst = &dst;
  const auto link = toLinkParams(t.link);
  const auto link2 = t.link2 ? toLinkParams(*t.link2) : link;
  switch (t.middlebox) {
    case Middlebox::kNone:
      m.links.push_back(&s.topo.connect(src, dst, link));
      break;
    case Middlebox::kRouter: {
      auto& mid = s.topo.addRouter(t.midName);
      m.links.push_back(&s.topo.connect(src, mid, link));
      m.links.push_back(&s.topo.connect(mid, dst, link2));
      break;
    }
    case Middlebox::kSwitch: {
      net::SwitchProfile profile = t.switchProfile == SwitchProfileKind::kScienceDmz
                                       ? net::SwitchProfile::scienceDmz()
                                       : net::SwitchProfile{};
      if (t.egressBufferBytes > 0) profile.egressBuffer = sim::DataSize::bytes(t.egressBufferBytes);
      auto& mid = s.topo.addSwitch(t.midName, profile);
      m.sw = &mid;
      if (t.aclPermitAllDefaultDeny) {
        net::AclTable acl{net::AclAction::kDeny};
        net::AclRule permitAll;
        permitAll.action = net::AclAction::kPermit;
        acl.append(permitAll);
        mid.setAcl(acl);
      }
      m.links.push_back(&s.topo.connect(src, mid, link));
      m.links.push_back(&s.topo.connect(mid, dst, link2));
      break;
    }
    case Middlebox::kFirewall: {
      auto profile = net::FirewallProfile::enterprise10G();
      profile.tcpSequenceChecking = t.firewallSeqChecking;
      auto& mid = s.topo.addFirewall(t.midName, profile);
      m.fw = &mid;
      if (t.idsVettingPackets > 0) {
        m.ids = std::make_unique<net::IntrusionDetectionSystem>();
        m.ids->setVettingPacketCount(t.idsVettingPackets);
        m.bypass = std::make_unique<vc::BypassController>(mid, *m.ids);
      }
      m.links.push_back(&s.topo.connect(src, mid, link));
      m.links.push_back(&s.topo.connect(mid, dst, link2));
      break;
    }
  }
  for (const auto& loss : t.losses) {
    if (loss.segment < 0 || static_cast<std::size_t>(loss.segment) >= m.links.size()) {
      throw SpecError("loss segment " + std::to_string(loss.segment) +
                      " out of range for this path");
    }
    auto& wire = *m.links[static_cast<std::size_t>(loss.segment)];
    if (loss.kind == LossKind::kRandom) {
      wire.setLossModel(loss.direction,
                        std::make_unique<net::RandomLoss>(loss.rate, s.rng.fork(loss.rngFork)));
    } else {
      wire.setLossModel(loss.direction, std::make_unique<net::PeriodicLoss>(loss.period));
    }
  }
  s.topo.computeRoutes();
}

void buildFanin(const FaninTopology& t, Scenario& s, Materialized& m) {
  net::SwitchProfile profile = net::SwitchProfile::scienceDmz();
  profile.egressBuffer = sim::DataSize::bytes(t.egressBufferBytes);
  auto& sw = s.topo.addSwitch("agg", profile);
  m.sw = &sw;
  auto& sink = s.topo.addHost("sink", net::Address(10, 0, 0, 99));
  m.sink = &sink;
  s.topo.connect(sw, sink, toLinkParams(t.egressLink));
  const auto in = toLinkParams(t.senderLink);
  for (int i = 0; i < t.senders; ++i) {
    auto& h = s.topo.addHost("h" + std::to_string(i),
                             net::Address(10, 0, 1, static_cast<std::uint8_t>(i + 1)));
    s.topo.connect(h, sw, in);
    m.senders.push_back(&h);
  }
  s.topo.computeRoutes();
}

void buildEnterpriseEdge(const EnterpriseEdgeTopology& t, Scenario& s, Materialized& m) {
  auto& fw = s.topo.addFirewall("fw", net::FirewallProfile::enterprise10G());
  m.fw = &fw;
  auto& outside = s.topo.addSwitch("outside");
  auto& inside = s.topo.addSwitch("inside");
  const auto core = toLinkParams(t.coreLink);
  s.topo.connect(outside, fw, core);
  s.topo.connect(fw, inside, core);
  const auto edge = toLinkParams(t.edgeLink);
  for (int i = 0; i < t.pairs; ++i) {
    auto& c = s.topo.addHost("c" + std::to_string(i),
                             net::Address(198, 0, 1, static_cast<std::uint8_t>(i + 1)));
    s.topo.connect(c, outside, edge);
    m.edgeClients.push_back(&c);
    auto& v = s.topo.addHost("s" + std::to_string(i),
                             net::Address(10, 20, 1, static_cast<std::uint8_t>(i + 1)));
    s.topo.connect(v, inside, edge);
    m.edgeServers.push_back(&v);
  }
  s.topo.computeRoutes();
}

void buildSite(const SiteTopology& t, Scenario& s, Materialized& m) {
  core::SiteConfig config;
  config.wan.rate = sim::DataRate::megabitsPerSecond(t.wan.rateMbps);
  config.wan.delay = sim::Duration::microseconds(static_cast<std::int64_t>(t.wan.delayUs));
  config.wan.mtu = sim::DataSize::bytes(t.wan.mtuBytes);
  config.dtnCount = t.dtnCount;
  config.computeNodeCount = t.computeNodeCount;
  if (t.untunedHosts) {
    config.dtnProfile = dtn::DtnProfile::untunedGeneralPurpose();
    config.remoteProfile = dtn::DtnProfile::untunedGeneralPurpose();
  }
  if (t.remoteStorageReadMbps > 0) {
    config.remoteStorage.readRate = sim::DataRate::megabitsPerSecond(t.remoteStorageReadMbps);
  }
  if (t.remoteStoragePerStreamCapMbps > 0) {
    config.remoteStorage.perStreamCap =
        sim::DataRate::megabitsPerSecond(t.remoteStoragePerStreamCapMbps);
  }
  switch (t.design) {
    case SiteDesign::kGeneralPurpose: m.site = core::buildGeneralPurposeCampus(s.topo, config); break;
    case SiteDesign::kSimpleDmz: m.site = core::buildSimpleScienceDmz(s.topo, config); break;
    case SiteDesign::kSupercomputer: m.site = core::buildSupercomputerCenter(s.topo, config); break;
    case SiteDesign::kBigData: m.site = core::buildBigDataSite(s.topo, config); break;
  }
  m.fw = m.site->enterpriseFirewall;
  m.sw = m.site->dmzSwitch;
}

/// Device counters of interest, written as "<prefix>fw.…" / "<prefix>sw.…".
/// Called with prefix "" at end of cell and with "<label>." right after a
/// labeled workload completes.
void recordDeviceMetrics(const Materialized& m, ScenarioResult& r, const std::string& prefix) {
  if (m.fw != nullptr) {
    const auto& stats = m.fw->firewallStats();
    r.metrics[prefix + "fw.inspected"] = static_cast<double>(stats.inspected);
    r.metrics[prefix + "fw.drops_input_buffer"] = static_cast<double>(stats.dropsInputBuffer);
  }
  if (m.sw != nullptr) {
    r.metrics[prefix + "sw.drops_acl"] = static_cast<double>(m.sw->stats().dropsAcl);
    r.metrics[prefix + "sw.egress_drop_fraction"] =
        m.sw->interface(0).queue().stats().dropFraction();
  }
}

void runAnalysis(const ScenarioSpec& spec, Scenario& s, Materialized& m, ScenarioResult& r) {
  if (!spec.analysis.validate && !spec.analysis.assessPath) return;
  if (!m.site) throw SpecError("analysis passes require a \"site\" topology");
  if (spec.analysis.validate) {
    r.metrics["validate.criticals"] =
        static_cast<double>(core::validate(*m.site).criticalCount());
  }
  if (spec.analysis.assessPath) {
    core::PathAssumptions assumptions;
    assumptions.endpoint = m.site->primaryDtn()->profile().tcp;
    assumptions.windowScalingBroken = spec.analysis.windowScalingBroken;
    const auto assessment =
        core::assessPath(s.topo, m.site->remoteDtn->host().address(),
                         m.site->primaryDtn()->host().address(), assumptions);
    if (assessment) {
      r.metrics["path.crosses_firewall"] = assessment->crossesFirewall ? 1.0 : 0.0;
      r.metrics["path.predicted_bps"] =
          static_cast<double>(assessment->expectedThroughput.bps());
    }
  }
}

void runWorkload(const WorkloadSpec& w, const std::string& p, const ScenarioSpec& spec,
                 Scenario& s, Materialized& m, ScenarioResult& r) {
  const auto port = static_cast<std::uint16_t>(w.port);
  switch (w.kind) {
    case WorkloadKind::kSteadyFlow: {
      if (m.src == nullptr) incompatible(w, spec.topology);
      m.steadyFlows.push_back(
          std::make_unique<SteadyFlow>(s, *m.src, *m.dst, toTcpConfig(w.tcp), port, w.fidelity));
      auto& flow = *m.steadyFlows.back();
      const auto rate = flow.measure(sim::Duration::fromSeconds(w.warmupS),
                                     sim::Duration::fromSeconds(w.windowS));
      r.metrics[p + ".bps"] = static_cast<double>(rate.bps());
      r.metrics[p + ".established"] = flow.established() ? 1.0 : 0.0;
      break;
    }
    case WorkloadKind::kConvergingFlows: {
      if (m.sink == nullptr) incompatible(w, spec.topology);
      const auto cfg = toTcpConfig(w.tcp);
      m.flowSets.emplace_back();
      auto& set = m.flowSets.back();
      // Mixed-fidelity fan-in: the first `fluid_flows` senders run on the
      // analytic engine, the rest at the workload's base fidelity — the
      // bottleneck-sharing experiment in one knob.
      const std::size_t fluidCount =
          w.fluidFlows > 0
              ? std::min<std::size_t>(static_cast<std::size_t>(w.fluidFlows), m.senders.size())
              : 0;
      for (std::size_t i = 0; i < m.senders.size(); ++i) {
        net::FlowFactory::Options options;
        options.port = static_cast<std::uint16_t>(w.port + static_cast<int>(i));
        options.fidelity = i < fluidCount ? net::FlowFidelity::kFluid : w.fidelity;
        auto flow = net::flowFactory(s.ctx).create(*m.senders[i], *m.sink, cfg, options);
        auto* raw = flow.get();
        flow->onEstablished = [raw] { raw->sendData(sim::DataSize::terabytes(1)); };
        flow->start();
        set.flows.push_back(std::move(flow));
      }
      s.runFor(sim::Duration::fromSeconds(w.warmupS));
      std::vector<sim::DataSize> base(set.flows.size(), sim::DataSize::zero());
      for (std::size_t i = 0; i < set.flows.size(); ++i) base[i] = set.flows[i]->deliveredBytes();
      s.runFor(sim::Duration::fromSeconds(w.windowS));
      sim::DataSize packetDelta = sim::DataSize::zero();
      sim::DataSize fluidDelta = sim::DataSize::zero();
      for (std::size_t i = 0; i < set.flows.size(); ++i) {
        const auto delta = set.flows[i]->deliveredBytes() - base[i];
        if (set.flows[i]->fidelity() == net::FlowFidelity::kFluid) {
          fluidDelta += delta;
        } else {
          packetDelta += delta;
        }
      }
      r.metrics[p + ".delta_bits"] = static_cast<double>((packetDelta + fluidDelta).bitCount());
      if (fluidCount > 0) {
        r.metrics[p + ".packet_bits"] = static_cast<double>(packetDelta.bitCount());
        r.metrics[p + ".fluid_bits"] = static_cast<double>(fluidDelta.bitCount());
      }
      break;
    }
    case WorkloadKind::kTimedFlow: {
      if (m.src == nullptr) incompatible(w, spec.topology);
      const auto cfg = toTcpConfig(w.tcp);
      m.flowSets.emplace_back();
      auto& set = m.flowSets.back();
      net::FlowFactory::Options options;
      options.port = port;
      options.fidelity = w.fidelity;
      // Create through the src host's context: under sharding the flow's
      // client side (timers, arena blocks) must live in src's domain.
      auto flow = net::flowFactory(m.src->ctx()).create(*m.src, *m.dst, cfg, options);
      auto* raw = flow.get();
      auto* flags = &set;
      flow->onAccepted = [flags](int) { flags->connected = true; };
      flow->onEstablished = [raw] { raw->sendData(sim::DataSize::terabytes(1)); };
      flow->start();
      s.runFor(sim::Duration::fromSeconds(w.runS));
      r.metrics[p + ".delivered_bits"] = static_cast<double>(flow->deliveredBytes().bitCount());
      r.metrics[p + ".established"] = set.connected ? 1.0 : 0.0;
      r.metrics[p + ".retx"] = static_cast<double>(flow->retransmits());
      set.flows.push_back(std::move(flow));
      break;
    }
    case WorkloadKind::kParallelTransfer: {
      if (m.src == nullptr) incompatible(w, spec.topology);
      m.parallelTransfers.push_back(std::make_unique<apps::ParallelTransfer>(
          *m.src, *m.dst, port, sim::DataSize::bytes(w.bytes), w.streams, toTcpConfig(w.tcp),
          w.fidelity));
      auto& transfer = *m.parallelTransfers.back();
      transfer.start();
      s.runFor(sim::Duration::fromSeconds(w.timeoutS));
      r.metrics[p + ".finished"] = transfer.finished() ? 1.0 : 0.0;
      r.metrics[p + ".elapsed_s"] = transfer.elapsed().toSeconds();
      break;
    }
    case WorkloadKind::kDtnTransfer: {
      if (!m.site || m.site->remoteDtn == nullptr || m.site->primaryDtn() == nullptr) {
        incompatible(w, spec.topology);
      }
      m.dtnTransfers.push_back(std::make_unique<dtn::DtnTransfer>(
          *m.site->remoteDtn, *m.site->primaryDtn(), w.file, sim::DataSize::bytes(w.bytes), port));
      auto& transfer = *m.dtnTransfers.back();
      transfer.start();
      s.runFor(sim::Duration::fromSeconds(w.timeoutS));
      r.metrics[p + ".completed"] = transfer.finished() ? 1.0 : 0.0;
      r.metrics[p + ".bps"] =
          transfer.finished() ? static_cast<double>(transfer.result().averageRate.bps()) : 0.0;
      break;
    }
    case WorkloadKind::kCampaign: {
      if (!m.site || m.site->remoteDtn == nullptr || m.site->dtns.empty()) {
        incompatible(w, spec.topology);
      }
      m.clusters.push_back(std::make_unique<dtn::DtnCluster>(w.srcCluster));
      auto& remote = *m.clusters.back();
      remote.addNode(*m.site->remoteDtn);
      m.clusters.push_back(std::make_unique<dtn::DtnCluster>(w.dstCluster));
      auto& pool = *m.clusters.back();
      for (auto* node : m.site->dtns) pool.addNode(*node);
      m.campaigns.push_back(std::make_unique<dtn::TransferCampaign>(remote, pool, port));
      auto& campaign = *m.campaigns.back();
      for (int i = 0; i < w.files; ++i) {
        campaign.enqueue({w.filePrefix + std::to_string(i) + w.fileSuffix,
                          sim::DataSize::bytes(w.fileSizeBytes)});
      }
      auto* result = &r;
      const auto prefix = p;
      campaign.onComplete = [result, prefix](const dtn::TransferCampaign::Report& report) {
        result->metrics[prefix + ".completed"] = 1.0;
        result->metrics[prefix + ".aggregate_bps"] =
            static_cast<double>(report.aggregateRate().bps());
        result->metrics[prefix + ".elapsed_s"] = report.elapsed.toSeconds();
      };
      campaign.start();
      s.runFor(sim::Duration::fromSeconds(w.timeoutS));
      if (!r.has(p + ".completed")) r.metrics[p + ".completed"] = 0.0;
      r.metrics[p + ".files_done"] = static_cast<double>(campaign.report().filesDone);
      if (m.site->parallelFs != nullptr) {
        std::size_t visible = 0;
        for (int i = 0; i < w.files; ++i) {
          if (m.site->parallelFs->available(w.filePrefix + std::to_string(i) + w.fileSuffix,
                                            s.simulator.now())) {
            ++visible;
          }
        }
        r.metrics[p + ".files_visible"] = static_cast<double>(visible);
      }
      campaign.onComplete = nullptr;
      break;
    }
    case WorkloadKind::kProbe: {
      if (!m.site || m.site->remoteDtn == nullptr || m.site->primaryDtn() == nullptr) {
        incompatible(w, spec.topology);
      }
      const auto cfg = toTcpConfig(w.tcp);
      m.flowSets.emplace_back();
      auto& set = m.flowSets.back();
      net::FlowFactory::Options options;
      options.port = port;
      options.fidelity = w.fidelity;
      auto flow = net::flowFactory(s.ctx).create(m.site->remoteDtn->host(),
                                                 m.site->primaryDtn()->host(), cfg, options);
      auto* flags = &set;
      flow->onEstablished = [flags] { flags->connected = true; };
      flow->start();
      set.flows.push_back(std::move(flow));
      s.runFor(sim::Duration::fromSeconds(w.runS));
      r.metrics[p + ".connected"] = set.connected ? 1.0 : 0.0;
      break;
    }
    case WorkloadKind::kRoce: {
      if (m.src == nullptr) incompatible(w, spec.topology);
      vc::RoceTransfer::Options options;
      options.rate = sim::DataRate::gigabitsPerSecond(w.rateGbps);
      m.roceTransfers.push_back(std::make_unique<vc::RoceTransfer>(
          *m.src, *m.dst, sim::DataSize::bytes(w.bytes), options));
      auto& transfer = *m.roceTransfers.back();
      transfer.start();
      s.runFor(sim::Duration::fromSeconds(w.timeoutS));
      r.metrics[p + ".completed"] = transfer.result().completed ? 1.0 : 0.0;
      r.metrics[p + ".goodput_bps"] = static_cast<double>(transfer.result().goodput.bps());
      r.metrics[p + ".cpu_units"] = transfer.result().cpuUnits;
      r.metrics[p + ".wasted_bytes"] =
          static_cast<double>(transfer.result().bytesWasted.byteCount());
      break;
    }
    case WorkloadKind::kBackground: {
      if (m.edgeClients.empty()) incompatible(w, spec.topology);
      apps::BackgroundProfile profile;
      profile.flowsPerSecond = w.flowsPerSecond;
      profile.fidelity = w.fidelity;
      m.backgroundTraffic.push_back(std::make_unique<apps::BackgroundTraffic>(
          s.ctx, m.edgeClients, m.edgeServers, port, profile, s.rng.fork(w.rngFork)));
      auto& traffic = *m.backgroundTraffic.back();
      traffic.start();
      s.runFor(sim::Duration::fromSeconds(w.runS));
      traffic.stop();
      s.runFor(sim::Duration::fromSeconds(w.drainS));
      r.metrics[p + ".flows_started"] = static_cast<double>(traffic.stats().flowsStarted);
      break;
    }
  }
  if (!w.label.empty()) recordDeviceMetrics(m, r, w.label + ".");
}

/// Section 6 use cases drive their own simulation (src/usecase/*); map the
/// result structs onto metrics. The sweep cell keeps its defaults — the
/// use-case runner owns its simulator, so there is no event count to report.
ScenarioResult runUsecase(const UsecaseTopology& u) {
  ScenarioResult r;
  switch (u.which) {
    case UsecaseKind::kColorado: {
      usecase::ColoradoConfig config;
      config.physicsHosts = u.physicsHosts;
      config.vendorFixApplied = u.vendorFix;
      const auto result = usecase::runColorado(config);
      r.metrics["colorado.worst_mbps"] = result.worstHostMbps();
      r.metrics["colorado.aggregate_mbps"] = result.aggregateMbps;
      r.metrics["colorado.latched"] = result.storeForwardLatched ? 1.0 : 0.0;
      r.metrics["colorado.switch_drops"] = static_cast<double>(result.switchDrops);
      break;
    }
    case UsecaseKind::kPennState: {
      const auto result = usecase::runPennState(usecase::PennStateConfig{});
      r.metrics["pennstate.in_before_mbps"] = result.inboundBefore.mbps;
      r.metrics["pennstate.in_before_peak_window"] =
          static_cast<double>(result.inboundBefore.peakWindowBytes);
      r.metrics["pennstate.out_before_mbps"] = result.outboundBefore.mbps;
      r.metrics["pennstate.out_before_peak_window"] =
          static_cast<double>(result.outboundBefore.peakWindowBytes);
      r.metrics["pennstate.in_after_mbps"] = result.inboundAfter.mbps;
      r.metrics["pennstate.in_after_peak_window"] =
          static_cast<double>(result.inboundAfter.peakWindowBytes);
      r.metrics["pennstate.out_after_mbps"] = result.outboundAfter.mbps;
      r.metrics["pennstate.out_after_peak_window"] =
          static_cast<double>(result.outboundAfter.peakWindowBytes);
      break;
    }
    case UsecaseKind::kNoaa: {
      const auto result = usecase::runNoaa();
      r.metrics["noaa.legacy_MBps"] = result.legacyMBps;
      r.metrics["noaa.dmz_MBps"] = result.dmzMBps;
      r.metrics["noaa.batch_s"] = result.dmzBatchTime.toSeconds();
      r.metrics["noaa.files_moved"] = static_cast<double>(result.filesMoved);
      break;
    }
    case UsecaseKind::kNerscOlcf: {
      const auto result = usecase::runNerscOlcf();
      r.metrics["nersc.before_MBps"] = result.beforeMBps;
      r.metrics["nersc.after_MBps"] = result.afterMBps;
      r.metrics["nersc.file_before_s"] = result.fileTimeBefore.toSeconds();
      r.metrics["nersc.file_after_s"] = result.fileTimeAfter.toSeconds();
      r.metrics["nersc.campaign_after_s"] = result.campaignTimeAfter.toSeconds();
      break;
    }
  }
  return r;
}

/// Validate the sharding gate and arm the scenario before any topology
/// construction. Sharded execution covers the conservative subset the
/// determinism contract holds for: path topologies with pure packet-TCP
/// flow workloads. Everything else is refused loudly, never degraded.
void maybeAttachShards(const ScenarioSpec& spec, int domains, Scenario& s) {
  if (domains <= 0) return;
  if (spec.topology.kind != TopologyKind::kPath) {
    throw SpecError("sharded execution (domains=" + std::to_string(domains) +
                    ") supports \"path\" topologies only, not \"" +
                    toString(spec.topology.kind) + "\"");
  }
  for (const auto& w : spec.workloads) {
    if (w.kind != WorkloadKind::kSteadyFlow && w.kind != WorkloadKind::kTimedFlow) {
      throw SpecError(std::string{"workload \""} + toString(w.kind) +
                      "\" cannot run sharded (only steady_flow and timed_flow)");
    }
    if (w.fidelity != net::FlowFidelity::kPacket) {
      throw SpecError("sharded execution requires packet fidelity: the fluid "
                      "engine's rate solve is global");
    }
  }
  if (net::processFidelityOverride() == net::FlowFidelity::kFluid) {
    throw SpecError("--fidelity=fluid does not compose with sharded execution");
  }
  if (profilingRequested()) {
    throw SpecError("--profile does not compose with --domains: the self-profiler "
                    "instruments one event queue; profile the unsharded run");
  }
  const sim::Duration floor =
      spec.lookaheadUs > 0
          ? sim::Duration::microseconds(static_cast<std::int64_t>(spec.lookaheadUs))
          : sim::Duration::milliseconds(1);
  const PathTopology& t = spec.topology.path;
  ShardPlanBuilder b;
  b.addNode(t.src.name);
  if (t.middlebox != Middlebox::kNone) {
    b.addNode(t.midName);
    b.addNode(t.dst.name);
    b.addEdge(t.src.name, t.midName, toLinkParams(t.link).delay);
    b.addEdge(t.midName, t.dst.name, toLinkParams(t.link2 ? *t.link2 : t.link).delay);
  } else {
    b.addNode(t.dst.name);
    b.addEdge(t.src.name, t.dst.name, toLinkParams(t.link).delay);
  }
  attachShards(s, b.plan(domains, floor), spec.seed, floor);
}

}  // namespace

ScenarioResult runSpec(const ScenarioSpec& spec, sim::SweepCell& cell) {
  if (spec.topology.kind == TopologyKind::kUsecase) {
    return runUsecase(spec.topology.usecase);
  }

  Scenario s(spec.seed);
  if (spec.telemetry) s.ctx.telemetry().enable();
  maybeAttachShards(spec, processDomainsOverride().value_or(spec.domains), s);

  Materialized m;
  switch (spec.topology.kind) {
    case TopologyKind::kPath: buildPath(spec.topology.path, s, m); break;
    case TopologyKind::kFanin: buildFanin(spec.topology.fanin, s, m); break;
    case TopologyKind::kEnterpriseEdge: buildEnterpriseEdge(spec.topology.edge, s, m); break;
    case TopologyKind::kSite: buildSite(spec.topology.site, s, m); break;
    case TopologyKind::kUsecase: break;  // handled above
  }

  ScenarioResult r;
  runAnalysis(spec, s, m, r);
  for (std::size_t i = 0; i < spec.workloads.size(); ++i) {
    const auto& w = spec.workloads[i];
    const std::string p = w.label.empty() ? "w" + std::to_string(i) : w.label;
    runWorkload(w, p, spec, s, m, r);
  }

  recordDeviceMetrics(m, r, "");
  for (std::size_t k = 0; k < m.links.size(); ++k) {
    const auto stats = m.links[k]->stats(0);
    r.metrics["seg" + std::to_string(k) + ".delivered"] = static_cast<double>(stats.delivered);
    r.metrics["seg" + std::to_string(k) + ".lost"] = static_cast<double>(stats.lost);
  }
  finishCell(s, cell);
  return r;
}

}  // namespace scidmz::scenario
