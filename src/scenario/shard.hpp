// Sharded scenario runtime: per-domain simulator/rng/logger/context
// bundles plus the conservative ShardedSimulator that stitches them at WAN
// links. attachShards() arms a Scenario before topology construction; the
// scenario code itself is unchanged — it builds devices through the same
// Topology factories and advances time through Scenario::runFor().
//
// Determinism contract (the bar every result holds): tables, merged
// telemetry snapshots and merged span exports are byte-identical at any
// --domains, because (a) every cut-eligible link routes deliveries through
// reserved-sequence channels at every domain count, (b) per-domain RNGs
// only ever produce values that never surface in compared artifacts
// (ephemeral ports), and (c) merges are keyed on names/timestamps, never
// on domain index.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "net/context.hpp"
#include "scenario/partition.hpp"
#include "sim/domain.hpp"
#include "sim/log.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/units.hpp"

namespace scidmz::scenario {

struct Scenario;

/// One extra domain's private runtime (domain 0 reuses the Scenario's own
/// members). Same seed as the scenario: RNG streams are per-context, and
/// nothing a context RNG produces surfaces in compared artifacts.
struct DomainRuntime {
  explicit DomainRuntime(std::uint64_t seed) : rng(seed) {}

  sim::Simulator simulator;
  sim::Rng rng;
  sim::Logger logger;
  net::Context ctx{simulator, rng, logger};
};

struct ShardRuntime {
  ShardRuntime(Scenario& s, int domains, std::uint64_t seed, sim::Duration lookaheadFloor);

  sim::Duration lookahead;
  std::vector<std::unique_ptr<DomainRuntime>> extras;  ///< domains 1..N-1
  std::vector<net::Context*> contexts;                 ///< [0] = scenario ctx
  std::unique_ptr<sim::ShardedSimulator> sharded;
};

/// Arm `s` for sharded execution per `plan` (from ShardPlanBuilder or a
/// hand-written map). Must run before any topology construction; refuses a
/// non-positive lookahead (zero lookahead means no conservative window) or
/// an armed profiler (its counters are single-queue by construction).
/// Per-domain telemetry hubs follow the primary hub's enabled state, and
/// every domain's FlowFactory is pinned to packet fidelity (the fluid
/// engine's global rate solve does not shard).
void attachShards(Scenario& s, const ShardPlan& plan, std::uint64_t seed,
                  sim::Duration lookaheadFloor);

/// Process-wide domain-count override (`scidmz_run --domains=N`): replaces
/// every spec's `domains` field. N=1 still runs the sharded scheduler (the
/// byte-compare baseline); nullopt defers to the spec. Set once at startup,
/// before any simulation runs — sweep workers read it unsynchronized.
void setProcessDomainsOverride(std::optional<int> domains);
[[nodiscard]] std::optional<int> processDomainsOverride();

}  // namespace scidmz::scenario
