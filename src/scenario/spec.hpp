// ScenarioSpec: the declarative description of one simulation cell — the
// topology (a point-to-point science path, a fan-in aggregation, an
// enterprise edge, one of the paper's reference site designs, or a Section
// 6 use case), optional analytic passes (validator, path assessment), and
// an ordered list of workloads to run over it.
//
// Specs serialize to/from `scidmz.scenario.v1` JSON documents, or
// `scidmz.scenario.v2` when any workload uses the v2 extensions (per-flow
// model fidelity, converging-flow fluid counts). A spec with no v2 fields
// always serializes as v1, byte-identical to pre-v2 output. The
// serialization is canonical: fields always appear, in a fixed order, so
// parse -> serialize -> parse is byte-identical and a dumped spec is the
// fixed point of its own round trip. Unknown keys and unrecognized enum
// values are hard errors that name the offending key — a typo in a
// hand-written scenario file fails loudly, not silently (v1 documents
// reject the v2 keys, too).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/flow.hpp"
#include "scenario/json.hpp"

namespace scidmz::scenario {

/// Error raised when a scidmz.scenario.v1 document is structurally valid
/// JSON but not a valid spec (unknown key, bad enum, wrong type).
class SpecError : public JsonError {
 public:
  explicit SpecError(const std::string& message) : JsonError(message) {}
};

inline constexpr const char* kScenarioSchema = "scidmz.scenario.v1";
/// Emitted (and accepted) when any workload carries a v2-only field.
inline constexpr const char* kScenarioSchemaV2 = "scidmz.scenario.v2";
inline constexpr const char* kCatalogSchema = "scidmz.scenario.catalog.v1";

// --- shared fragments ------------------------------------------------------

struct LinkSpec {
  std::uint64_t rateMbps = 10000;  ///< matches net::LinkParams default 10 Gbps
  std::uint64_t delayUs = 5;       ///< one-way propagation delay
  std::uint64_t mtuBytes = 1500;
};

struct HostSpec {
  std::string name;
  std::string ip;  ///< dotted quad
};

enum class CcAlgo { kReno, kHtcp, kCubic };

struct TcpSpec {
  CcAlgo cc = CcAlgo::kHtcp;
  std::uint64_t bufBytes = 16 * 1024 * 1024;  ///< snd and rcv buffer alike
  bool pacing = false;
};

enum class LossKind { kRandom, kPeriodic };

/// A loss model attached to one end of one path segment.
struct LossSpec {
  int segment = 0;    ///< 0 = src->mid (or src->dst), 1 = mid->dst
  int direction = 0;  ///< link end the model attaches to (0 = first endpoint)
  LossKind kind = LossKind::kRandom;
  double rate = 0.0;         ///< random: per-packet drop probability
  std::uint64_t period = 0;  ///< periodic: drop 1 in `period`
  std::uint64_t rngFork = 1;  ///< random: scenario-rng fork index
};

// --- topologies ------------------------------------------------------------

enum class Middlebox { kNone, kRouter, kSwitch, kFirewall };
enum class SwitchProfileKind { kDefault, kScienceDmz };

/// src --link--> [middlebox] --link2--> dst (link2 defaults to link).
struct PathTopology {
  HostSpec src{"a", "10.0.0.1"};
  HostSpec dst{"b", "10.0.0.2"};
  Middlebox middlebox = Middlebox::kNone;
  std::string midName = "mid";
  LinkSpec link;
  std::optional<LinkSpec> link2;
  // Switch middlebox options.
  SwitchProfileKind switchProfile = SwitchProfileKind::kDefault;
  std::uint64_t egressBufferBytes = 0;  ///< 0 = profile default
  bool aclPermitAllDefaultDeny = false;  ///< the compiled DMZ policy shape
  // Firewall middlebox options.
  bool firewallSeqChecking = true;  ///< enterprise10G() default
  std::uint64_t idsVettingPackets = 0;  ///< >0: IDS + OpenFlow bypass
  std::vector<LossSpec> losses;
};

/// `senders` hosts on fast ports converge on one egress toward a sink.
struct FaninTopology {
  int senders = 2;
  std::uint64_t egressBufferBytes = 32 * 1024 * 1024;
  LinkSpec egressLink;  ///< switch -> sink
  LinkSpec senderLink;  ///< each sender -> switch
};

/// outside-switch -> firewall -> inside-switch with `pairs` client/server
/// hosts on 1G edges — the business-traffic shape of Section 5.
struct EnterpriseEdgeTopology {
  int pairs = 4;
  LinkSpec coreLink{10000, 5000, 1500};
  LinkSpec edgeLink{1000, 5, 1500};
};

enum class SiteDesign { kGeneralPurpose, kSimpleDmz, kSupercomputer, kBigData };

/// One of the paper's reference designs via core::buildX(SiteConfig).
struct SiteTopology {
  SiteDesign design = SiteDesign::kSimpleDmz;
  int dtnCount = 4;
  int computeNodeCount = 4;
  LinkSpec wan{10000, 10000, 9000};  ///< WanConfig defaults
  bool untunedHosts = false;  ///< untunedGeneralPurpose() DTN + remote profiles
  std::uint64_t remoteStorageReadMbps = 0;          ///< 0 = profile default
  std::uint64_t remoteStoragePerStreamCapMbps = 0;  ///< 0 = profile default
};

enum class UsecaseKind { kColorado, kPennState, kNoaa, kNerscOlcf };

/// A self-contained Section 6 use-case run (src/usecase/*); the use case
/// builds and drives its own simulation, so it takes no workloads.
struct UsecaseTopology {
  UsecaseKind which = UsecaseKind::kColorado;
  int physicsHosts = 5;     ///< colorado
  bool vendorFix = false;   ///< colorado
};

enum class TopologyKind { kPath, kFanin, kEnterpriseEdge, kSite, kUsecase };

struct TopologySpec {
  TopologyKind kind = TopologyKind::kPath;
  PathTopology path;
  FaninTopology fanin;
  EnterpriseEdgeTopology edge;
  SiteTopology site;
  UsecaseTopology usecase;
};

// --- analysis --------------------------------------------------------------

/// Analytic passes run before the workloads (site topologies only).
struct AnalysisSpec {
  bool validate = false;    ///< core::validate -> "validate.criticals"
  bool assessPath = false;  ///< core::assessPath remote -> primary DTN
  bool windowScalingBroken = false;  ///< PathAssumptions for assessPath
};

// --- workloads -------------------------------------------------------------

enum class WorkloadKind {
  kSteadyFlow,       ///< one bulk flow, warmup + measured window
  kConvergingFlows,  ///< fan-in: one bulk flow per sender into the sink
  kTimedFlow,        ///< one bulk flow, goodput over a fixed run time
  kParallelTransfer, ///< apps::ParallelTransfer of `bytes` over N streams
  kDtnTransfer,      ///< dtn::DtnTransfer remote DTN -> primary DTN
  kCampaign,         ///< dtn::TransferCampaign over the site's DTN pool
  kProbe,            ///< unsanctioned TCP connection attempt
  kRoce,             ///< vc::RoceTransfer between the path endpoints
  kBackground,       ///< apps::BackgroundTraffic over the enterprise edge
};

struct WorkloadSpec {
  WorkloadKind kind = WorkloadKind::kSteadyFlow;
  /// Metric prefix; a labeled workload also snapshots device counters
  /// (fw/sw) under "<label>." when it completes.
  std::string label;
  TcpSpec tcp;
  int port = 5001;        ///< steady/timed/parallel/dtn/probe; fan-in base
  double warmupS = 5.0;   ///< steady_flow, converging_flows
  double windowS = 15.0;  ///< steady_flow, converging_flows
  double runS = 20.0;     ///< timed_flow, probe, background active phase
  double drainS = 10.0;   ///< background: post-stop drain
  double timeoutS = 1200.0;  ///< parallel/dtn/campaign/roce run bound
  std::uint64_t bytes = 0;   ///< parallel total, dtn file, roce payload
  int streams = 1;           ///< parallel_transfer
  std::string file = "sample.dat";  ///< dtn_transfer
  std::string srcCluster = "src";   ///< campaign
  std::string dstCluster = "dst";   ///< campaign
  int files = 0;                    ///< campaign
  std::uint64_t fileSizeBytes = 0;  ///< campaign
  std::string filePrefix;           ///< campaign: name = prefix + i + suffix
  std::string fileSuffix;           ///< campaign
  double flowsPerSecond = 50.0;     ///< background
  std::uint64_t rngFork = 3;        ///< background: scenario-rng fork index
  std::uint64_t rateGbps = 40;      ///< roce line rate
  // -- v2 fields (serialized only when non-default) --
  /// Flow model fidelity for TCP-flow workloads (steady/converging/timed/
  /// parallel/probe/background). Default packet keeps v1 semantics.
  net::FlowFidelity fidelity = net::FlowFidelity::kPacket;
  /// converging_flows: the first `fluidFlows` senders run at fluid fidelity
  /// regardless of `fidelity` — the mixed-fidelity bottleneck-sharing knob.
  int fluidFlows = 0;
};

/// True for the workload kinds that create TCP flows and therefore honor
/// the v2 `fidelity` field.
[[nodiscard]] bool workloadHasFidelity(WorkloadKind kind);

// --- the spec --------------------------------------------------------------

struct ScenarioSpec {
  std::string name;
  std::uint64_t seed = 20130101;  ///< scenario rng seed (the paper's SC13 date)
  bool telemetry = false;  ///< force-enable telemetry for this cell
  // -- v2 fields (serialized only when non-default) --
  /// Sharded execution: partition the topology into this many per-worker
  /// domains cut at WAN links (see DESIGN.md "Sharded execution"). 0 keeps
  /// the classic single-queue path; any non-zero value (1 included) runs
  /// the sharded scheduler, so results byte-compare across domain counts.
  /// `scidmz_run --domains=N` overrides this per process.
  int domains = 0;
  /// Conservative lookahead floor in microseconds; links with at least this
  /// much propagation delay are cut-eligible. 0 = the 1 ms default.
  std::uint64_t lookaheadUs = 0;
  TopologySpec topology;
  AnalysisSpec analysis;
  std::vector<WorkloadSpec> workloads;

  /// Canonical scidmz.scenario.v1 document (fixed field order).
  [[nodiscard]] Json toJson() const;
  /// Parse and validate; throws SpecError naming the offending key.
  static ScenarioSpec fromJson(const Json& doc);
  static ScenarioSpec parse(const std::string& text);
};

// Enum <-> string helpers (shared with the engine and the CLI).
[[nodiscard]] const char* toString(CcAlgo v);
[[nodiscard]] const char* toString(LossKind v);
[[nodiscard]] const char* toString(Middlebox v);
[[nodiscard]] const char* toString(SwitchProfileKind v);
[[nodiscard]] const char* toString(SiteDesign v);
[[nodiscard]] const char* toString(UsecaseKind v);
[[nodiscard]] const char* toString(TopologyKind v);
[[nodiscard]] const char* toString(WorkloadKind v);

}  // namespace scidmz::scenario
