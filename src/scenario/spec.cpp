#include "scenario/spec.hpp"

#include <cmath>
#include <cstring>
#include <utility>

namespace scidmz::scenario {

namespace {

// --- reading helpers -------------------------------------------------------

/// Tracks which keys of an object were consumed; done() rejects leftovers
/// so typos in hand-written scenario files fail loudly, naming the key.
class ObjectReader {
 public:
  ObjectReader(const Json& obj, std::string path) : obj_(obj), path_(std::move(path)) {
    if (!obj_.isObject()) throw SpecError("\"" + path_ + "\" must be a JSON object");
  }

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] bool has(const char* key) const { return obj_.contains(key); }

  const Json& require(const char* key) {
    if (!obj_.contains(key)) {
      throw SpecError("missing key \"" + std::string(key) + "\" in \"" + path_ + "\"");
    }
    seen_.emplace_back(key);
    return obj_.get(key);
  }

  std::string getString(const char* key) {
    const Json& v = require(key);
    if (!v.isString()) throw typeError(key, "a string");
    return v.asString();
  }

  bool getBool(const char* key) {
    const Json& v = require(key);
    if (!v.isBool()) throw typeError(key, "a boolean");
    return v.asBool();
  }

  double getNumber(const char* key) {
    const Json& v = require(key);
    if (!v.isNumber()) throw typeError(key, "a number");
    return v.asNumber();
  }

  std::uint64_t getUint(const char* key) {
    const double v = getNumber(key);
    if (v < 0 || v != std::floor(v) || v > 9.007199254740992e15) {
      throw typeError(key, "a non-negative integer");
    }
    return static_cast<std::uint64_t>(v);
  }

  int getInt(const char* key) {
    const double v = getNumber(key);
    if (v != std::floor(v) || std::fabs(v) > 2147483647.0) {
      throw typeError(key, "an integer");
    }
    return static_cast<int>(v);
  }

  const Json& getObject(const char* key) {
    const Json& v = require(key);
    if (!v.isObject()) throw typeError(key, "an object");
    return v;
  }

  const Json& getArray(const char* key) {
    const Json& v = require(key);
    if (!v.isArray()) throw typeError(key, "an array");
    return v;
  }

  /// Reject any key that was never consumed.
  void done() const {
    for (const auto& [key, value] : obj_.members()) {
      bool known = false;
      for (const auto& s : seen_) {
        if (s == key) {
          known = true;
          break;
        }
      }
      if (!known) throw SpecError("unknown key \"" + key + "\" in \"" + path_ + "\"");
    }
  }

 private:
  SpecError typeError(const char* key, const char* what) const {
    return SpecError("key \"" + std::string(key) + "\" in \"" + path_ + "\" must be " + what);
  }

  const Json& obj_;
  std::string path_;
  std::vector<std::string> seen_;
};

template <typename Enum>
Enum parseEnum(const std::string& value, const std::string& keyPath,
               std::initializer_list<std::pair<const char*, Enum>> table) {
  for (const auto& [name, v] : table) {
    if (value == name) return v;
  }
  throw SpecError("unknown value \"" + value + "\" for \"" + keyPath + "\"");
}

// --- fragment (de)serializers ---------------------------------------------

Json linkToJson(const LinkSpec& l) {
  Json j = Json::object();
  j.set("rate_mbps", l.rateMbps);
  j.set("delay_us", l.delayUs);
  j.set("mtu_bytes", l.mtuBytes);
  return j;
}

LinkSpec linkFromJson(const Json& doc, const std::string& path) {
  ObjectReader r(doc, path);
  LinkSpec l;
  l.rateMbps = r.getUint("rate_mbps");
  l.delayUs = r.getUint("delay_us");
  l.mtuBytes = r.getUint("mtu_bytes");
  r.done();
  return l;
}

Json hostToJson(const HostSpec& h) {
  Json j = Json::object();
  j.set("name", h.name);
  j.set("ip", h.ip);
  return j;
}

HostSpec hostFromJson(const Json& doc, const std::string& path) {
  ObjectReader r(doc, path);
  HostSpec h;
  h.name = r.getString("name");
  h.ip = r.getString("ip");
  r.done();
  return h;
}

Json tcpToJson(const TcpSpec& t) {
  Json j = Json::object();
  j.set("cc", toString(t.cc));
  j.set("buf_bytes", t.bufBytes);
  j.set("pacing", t.pacing);
  return j;
}

TcpSpec tcpFromJson(const Json& doc, const std::string& path) {
  ObjectReader r(doc, path);
  TcpSpec t;
  t.cc = parseEnum<CcAlgo>(r.getString("cc"), path + ".cc",
                           {{"reno", CcAlgo::kReno},
                            {"htcp", CcAlgo::kHtcp},
                            {"cubic", CcAlgo::kCubic}});
  t.bufBytes = r.getUint("buf_bytes");
  t.pacing = r.getBool("pacing");
  r.done();
  return t;
}

Json lossToJson(const LossSpec& l) {
  Json j = Json::object();
  j.set("segment", l.segment);
  j.set("direction", l.direction);
  j.set("kind", toString(l.kind));
  if (l.kind == LossKind::kRandom) {
    j.set("rate", l.rate);
    j.set("rng_fork", l.rngFork);
  } else {
    j.set("period", l.period);
  }
  return j;
}

LossSpec lossFromJson(const Json& doc, const std::string& path) {
  ObjectReader r(doc, path);
  LossSpec l;
  l.segment = r.getInt("segment");
  l.direction = r.getInt("direction");
  l.kind = parseEnum<LossKind>(r.getString("kind"), path + ".kind",
                               {{"random", LossKind::kRandom},
                                {"periodic", LossKind::kPeriodic}});
  if (l.kind == LossKind::kRandom) {
    l.rate = r.getNumber("rate");
    l.rngFork = r.getUint("rng_fork");
  } else {
    l.period = r.getUint("period");
  }
  r.done();
  return l;
}

// --- topologies ------------------------------------------------------------

Json pathToJson(const PathTopology& p) {
  Json j = Json::object();
  j.set("src", hostToJson(p.src));
  j.set("dst", hostToJson(p.dst));
  j.set("middlebox", toString(p.middlebox));
  if (p.middlebox != Middlebox::kNone) j.set("mid_name", p.midName);
  j.set("link", linkToJson(p.link));
  if (p.link2) j.set("link2", linkToJson(*p.link2));
  if (p.middlebox == Middlebox::kSwitch) {
    j.set("switch_profile", toString(p.switchProfile));
    j.set("egress_buffer_bytes", p.egressBufferBytes);
    j.set("acl_permit_all_default_deny", p.aclPermitAllDefaultDeny);
  }
  if (p.middlebox == Middlebox::kFirewall) {
    j.set("firewall_seq_checking", p.firewallSeqChecking);
    j.set("ids_vetting_packets", p.idsVettingPackets);
  }
  Json losses = Json::array();
  for (const auto& l : p.losses) losses.push(lossToJson(l));
  j.set("losses", std::move(losses));
  return j;
}

PathTopology pathFromJson(const Json& doc, const std::string& path) {
  ObjectReader r(doc, path);
  PathTopology p;
  p.src = hostFromJson(r.getObject("src"), path + ".src");
  p.dst = hostFromJson(r.getObject("dst"), path + ".dst");
  p.middlebox = parseEnum<Middlebox>(r.getString("middlebox"), path + ".middlebox",
                                     {{"none", Middlebox::kNone},
                                      {"router", Middlebox::kRouter},
                                      {"switch", Middlebox::kSwitch},
                                      {"firewall", Middlebox::kFirewall}});
  if (p.middlebox != Middlebox::kNone) p.midName = r.getString("mid_name");
  p.link = linkFromJson(r.getObject("link"), path + ".link");
  if (r.has("link2")) p.link2 = linkFromJson(r.getObject("link2"), path + ".link2");
  if (p.middlebox == Middlebox::kSwitch) {
    p.switchProfile = parseEnum<SwitchProfileKind>(
        r.getString("switch_profile"), path + ".switch_profile",
        {{"default", SwitchProfileKind::kDefault},
         {"science_dmz", SwitchProfileKind::kScienceDmz}});
    p.egressBufferBytes = r.getUint("egress_buffer_bytes");
    p.aclPermitAllDefaultDeny = r.getBool("acl_permit_all_default_deny");
  }
  if (p.middlebox == Middlebox::kFirewall) {
    p.firewallSeqChecking = r.getBool("firewall_seq_checking");
    p.idsVettingPackets = r.getUint("ids_vetting_packets");
  }
  const Json& losses = r.getArray("losses");
  for (std::size_t i = 0; i < losses.size(); ++i) {
    p.losses.push_back(
        lossFromJson(losses.at(i), path + ".losses[" + std::to_string(i) + "]"));
  }
  r.done();
  return p;
}

Json faninToJson(const FaninTopology& f) {
  Json j = Json::object();
  j.set("senders", f.senders);
  j.set("egress_buffer_bytes", f.egressBufferBytes);
  j.set("egress_link", linkToJson(f.egressLink));
  j.set("sender_link", linkToJson(f.senderLink));
  return j;
}

FaninTopology faninFromJson(const Json& doc, const std::string& path) {
  ObjectReader r(doc, path);
  FaninTopology f;
  f.senders = r.getInt("senders");
  f.egressBufferBytes = r.getUint("egress_buffer_bytes");
  f.egressLink = linkFromJson(r.getObject("egress_link"), path + ".egress_link");
  f.senderLink = linkFromJson(r.getObject("sender_link"), path + ".sender_link");
  r.done();
  return f;
}

Json edgeToJson(const EnterpriseEdgeTopology& e) {
  Json j = Json::object();
  j.set("pairs", e.pairs);
  j.set("core_link", linkToJson(e.coreLink));
  j.set("edge_link", linkToJson(e.edgeLink));
  return j;
}

EnterpriseEdgeTopology edgeFromJson(const Json& doc, const std::string& path) {
  ObjectReader r(doc, path);
  EnterpriseEdgeTopology e;
  e.pairs = r.getInt("pairs");
  e.coreLink = linkFromJson(r.getObject("core_link"), path + ".core_link");
  e.edgeLink = linkFromJson(r.getObject("edge_link"), path + ".edge_link");
  r.done();
  return e;
}

Json siteToJson(const SiteTopology& s) {
  Json j = Json::object();
  j.set("design", toString(s.design));
  j.set("dtn_count", s.dtnCount);
  j.set("compute_node_count", s.computeNodeCount);
  j.set("wan", linkToJson(s.wan));
  j.set("untuned_hosts", s.untunedHosts);
  j.set("remote_storage_read_mbps", s.remoteStorageReadMbps);
  j.set("remote_storage_per_stream_cap_mbps", s.remoteStoragePerStreamCapMbps);
  return j;
}

SiteTopology siteFromJson(const Json& doc, const std::string& path) {
  ObjectReader r(doc, path);
  SiteTopology s;
  s.design = parseEnum<SiteDesign>(r.getString("design"), path + ".design",
                                   {{"general_purpose", SiteDesign::kGeneralPurpose},
                                    {"simple_dmz", SiteDesign::kSimpleDmz},
                                    {"supercomputer", SiteDesign::kSupercomputer},
                                    {"bigdata", SiteDesign::kBigData}});
  s.dtnCount = r.getInt("dtn_count");
  s.computeNodeCount = r.getInt("compute_node_count");
  s.wan = linkFromJson(r.getObject("wan"), path + ".wan");
  s.untunedHosts = r.getBool("untuned_hosts");
  s.remoteStorageReadMbps = r.getUint("remote_storage_read_mbps");
  s.remoteStoragePerStreamCapMbps = r.getUint("remote_storage_per_stream_cap_mbps");
  r.done();
  return s;
}

Json usecaseToJson(const UsecaseTopology& u) {
  Json j = Json::object();
  j.set("which", toString(u.which));
  if (u.which == UsecaseKind::kColorado) {
    j.set("physics_hosts", u.physicsHosts);
    j.set("vendor_fix", u.vendorFix);
  }
  return j;
}

UsecaseTopology usecaseFromJson(const Json& doc, const std::string& path) {
  ObjectReader r(doc, path);
  UsecaseTopology u;
  u.which = parseEnum<UsecaseKind>(r.getString("which"), path + ".which",
                                   {{"colorado", UsecaseKind::kColorado},
                                    {"pennstate", UsecaseKind::kPennState},
                                    {"noaa", UsecaseKind::kNoaa},
                                    {"nersc_olcf", UsecaseKind::kNerscOlcf}});
  if (u.which == UsecaseKind::kColorado) {
    u.physicsHosts = r.getInt("physics_hosts");
    u.vendorFix = r.getBool("vendor_fix");
  }
  r.done();
  return u;
}

Json topologyToJson(const TopologySpec& t) {
  Json j = Json::object();
  j.set("kind", toString(t.kind));
  switch (t.kind) {
    case TopologyKind::kPath: j.set("path", pathToJson(t.path)); break;
    case TopologyKind::kFanin: j.set("fanin", faninToJson(t.fanin)); break;
    case TopologyKind::kEnterpriseEdge: j.set("enterprise_edge", edgeToJson(t.edge)); break;
    case TopologyKind::kSite: j.set("site", siteToJson(t.site)); break;
    case TopologyKind::kUsecase: j.set("usecase", usecaseToJson(t.usecase)); break;
  }
  return j;
}

TopologySpec topologyFromJson(const Json& doc, const std::string& path) {
  ObjectReader r(doc, path);
  TopologySpec t;
  t.kind = parseEnum<TopologyKind>(r.getString("kind"), path + ".kind",
                                   {{"path", TopologyKind::kPath},
                                    {"fanin", TopologyKind::kFanin},
                                    {"enterprise_edge", TopologyKind::kEnterpriseEdge},
                                    {"site", TopologyKind::kSite},
                                    {"usecase", TopologyKind::kUsecase}});
  switch (t.kind) {
    case TopologyKind::kPath:
      t.path = pathFromJson(r.getObject("path"), path + ".path");
      break;
    case TopologyKind::kFanin:
      t.fanin = faninFromJson(r.getObject("fanin"), path + ".fanin");
      break;
    case TopologyKind::kEnterpriseEdge:
      t.edge = edgeFromJson(r.getObject("enterprise_edge"), path + ".enterprise_edge");
      break;
    case TopologyKind::kSite:
      t.site = siteFromJson(r.getObject("site"), path + ".site");
      break;
    case TopologyKind::kUsecase:
      t.usecase = usecaseFromJson(r.getObject("usecase"), path + ".usecase");
      break;
  }
  r.done();
  return t;
}

Json analysisToJson(const AnalysisSpec& a) {
  Json j = Json::object();
  j.set("validate", a.validate);
  j.set("assess_path", a.assessPath);
  j.set("window_scaling_broken", a.windowScalingBroken);
  return j;
}

AnalysisSpec analysisFromJson(const Json& doc, const std::string& path) {
  ObjectReader r(doc, path);
  AnalysisSpec a;
  a.validate = r.getBool("validate");
  a.assessPath = r.getBool("assess_path");
  a.windowScalingBroken = r.getBool("window_scaling_broken");
  r.done();
  return a;
}

// --- workloads -------------------------------------------------------------

/// Any v2-only field non-default? Such a workload forces the document's
/// schema to scidmz.scenario.v2; all-default specs stay byte-identical v1.
bool workloadNeedsV2(const WorkloadSpec& w) {
  return (workloadHasFidelity(w.kind) && w.fidelity != net::FlowFidelity::kPacket) ||
         (w.kind == WorkloadKind::kConvergingFlows && w.fluidFlows != 0);
}

Json workloadToJson(const WorkloadSpec& w) {
  Json j = Json::object();
  j.set("kind", toString(w.kind));
  j.set("label", w.label);
  switch (w.kind) {
    case WorkloadKind::kSteadyFlow:
      j.set("tcp", tcpToJson(w.tcp));
      j.set("port", w.port);
      j.set("warmup_s", w.warmupS);
      j.set("window_s", w.windowS);
      break;
    case WorkloadKind::kConvergingFlows:
      j.set("tcp", tcpToJson(w.tcp));
      j.set("base_port", w.port);
      j.set("warmup_s", w.warmupS);
      j.set("window_s", w.windowS);
      break;
    case WorkloadKind::kTimedFlow:
      j.set("tcp", tcpToJson(w.tcp));
      j.set("port", w.port);
      j.set("run_s", w.runS);
      break;
    case WorkloadKind::kParallelTransfer:
      j.set("tcp", tcpToJson(w.tcp));
      j.set("port", w.port);
      j.set("bytes", w.bytes);
      j.set("streams", w.streams);
      j.set("timeout_s", w.timeoutS);
      break;
    case WorkloadKind::kDtnTransfer:
      j.set("file", w.file);
      j.set("bytes", w.bytes);
      j.set("port", w.port);
      j.set("timeout_s", w.timeoutS);
      break;
    case WorkloadKind::kCampaign:
      j.set("src_cluster", w.srcCluster);
      j.set("dst_cluster", w.dstCluster);
      j.set("files", w.files);
      j.set("file_size_bytes", w.fileSizeBytes);
      j.set("file_prefix", w.filePrefix);
      j.set("file_suffix", w.fileSuffix);
      j.set("timeout_s", w.timeoutS);
      break;
    case WorkloadKind::kProbe:
      j.set("port", w.port);
      j.set("run_s", w.runS);
      break;
    case WorkloadKind::kRoce:
      j.set("rate_gbps", w.rateGbps);
      j.set("bytes", w.bytes);
      j.set("timeout_s", w.timeoutS);
      break;
    case WorkloadKind::kBackground:
      j.set("flows_per_second", w.flowsPerSecond);
      j.set("base_port", w.port);
      j.set("run_s", w.runS);
      j.set("drain_s", w.drainS);
      j.set("rng_fork", w.rngFork);
      break;
  }
  // v2 extension fields, emitted only when non-default so fidelity-free
  // specs serialize as unchanged v1 documents.
  if (workloadHasFidelity(w.kind) && w.fidelity != net::FlowFidelity::kPacket) {
    j.set("fidelity", net::toString(w.fidelity));
  }
  if (w.kind == WorkloadKind::kConvergingFlows && w.fluidFlows != 0) {
    j.set("fluid_flows", w.fluidFlows);
  }
  return j;
}

WorkloadSpec workloadFromJson(const Json& doc, const std::string& path, bool allowV2) {
  ObjectReader r(doc, path);
  WorkloadSpec w;
  w.kind = parseEnum<WorkloadKind>(
      r.getString("kind"), path + ".kind",
      {{"steady_flow", WorkloadKind::kSteadyFlow},
       {"converging_flows", WorkloadKind::kConvergingFlows},
       {"timed_flow", WorkloadKind::kTimedFlow},
       {"parallel_transfer", WorkloadKind::kParallelTransfer},
       {"dtn_transfer", WorkloadKind::kDtnTransfer},
       {"campaign", WorkloadKind::kCampaign},
       {"probe", WorkloadKind::kProbe},
       {"roce", WorkloadKind::kRoce},
       {"background", WorkloadKind::kBackground}});
  w.label = r.getString("label");
  switch (w.kind) {
    case WorkloadKind::kSteadyFlow:
      w.tcp = tcpFromJson(r.getObject("tcp"), path + ".tcp");
      w.port = r.getInt("port");
      w.warmupS = r.getNumber("warmup_s");
      w.windowS = r.getNumber("window_s");
      break;
    case WorkloadKind::kConvergingFlows:
      w.tcp = tcpFromJson(r.getObject("tcp"), path + ".tcp");
      w.port = r.getInt("base_port");
      w.warmupS = r.getNumber("warmup_s");
      w.windowS = r.getNumber("window_s");
      break;
    case WorkloadKind::kTimedFlow:
      w.tcp = tcpFromJson(r.getObject("tcp"), path + ".tcp");
      w.port = r.getInt("port");
      w.runS = r.getNumber("run_s");
      break;
    case WorkloadKind::kParallelTransfer:
      w.tcp = tcpFromJson(r.getObject("tcp"), path + ".tcp");
      w.port = r.getInt("port");
      w.bytes = r.getUint("bytes");
      w.streams = r.getInt("streams");
      w.timeoutS = r.getNumber("timeout_s");
      break;
    case WorkloadKind::kDtnTransfer:
      w.file = r.getString("file");
      w.bytes = r.getUint("bytes");
      w.port = r.getInt("port");
      w.timeoutS = r.getNumber("timeout_s");
      break;
    case WorkloadKind::kCampaign:
      w.srcCluster = r.getString("src_cluster");
      w.dstCluster = r.getString("dst_cluster");
      w.files = r.getInt("files");
      w.fileSizeBytes = r.getUint("file_size_bytes");
      w.filePrefix = r.getString("file_prefix");
      w.fileSuffix = r.getString("file_suffix");
      w.timeoutS = r.getNumber("timeout_s");
      break;
    case WorkloadKind::kProbe:
      w.port = r.getInt("port");
      w.runS = r.getNumber("run_s");
      break;
    case WorkloadKind::kRoce:
      w.rateGbps = r.getUint("rate_gbps");
      w.bytes = r.getUint("bytes");
      w.timeoutS = r.getNumber("timeout_s");
      break;
    case WorkloadKind::kBackground:
      w.flowsPerSecond = r.getNumber("flows_per_second");
      w.port = r.getInt("base_port");
      w.runS = r.getNumber("run_s");
      w.drainS = r.getNumber("drain_s");
      w.rngFork = r.getUint("rng_fork");
      break;
  }
  // v2 extension fields. Under a v1 schema these keys stay unconsumed and
  // r.done() rejects them by name — v1 documents cannot smuggle v2 fields.
  if (allowV2 && workloadHasFidelity(w.kind) && r.has("fidelity")) {
    w.fidelity = parseEnum<net::FlowFidelity>(r.getString("fidelity"), path + ".fidelity",
                                              {{"packet", net::FlowFidelity::kPacket},
                                               {"fluid", net::FlowFidelity::kFluid},
                                               {"auto", net::FlowFidelity::kAuto}});
  }
  if (allowV2 && w.kind == WorkloadKind::kConvergingFlows && r.has("fluid_flows")) {
    w.fluidFlows = r.getInt("fluid_flows");
  }
  r.done();
  return w;
}

}  // namespace

// --- ScenarioSpec ----------------------------------------------------------

Json ScenarioSpec::toJson() const {
  bool v2 = domains != 0 || lookaheadUs != 0;
  for (const auto& workload : workloads) {
    if (workloadNeedsV2(workload)) {
      v2 = true;
      break;
    }
  }
  Json j = Json::object();
  j.set("schema", v2 ? kScenarioSchemaV2 : kScenarioSchema);
  j.set("name", name);
  j.set("seed", seed);
  j.set("telemetry", telemetry);
  // v2 sharding knobs, emitted only when non-default so unsharded specs
  // serialize as unchanged v1 documents.
  if (domains != 0) j.set("domains", domains);
  if (lookaheadUs != 0) j.set("lookahead_us", lookaheadUs);
  j.set("topology", topologyToJson(topology));
  j.set("analysis", analysisToJson(analysis));
  Json w = Json::array();
  for (const auto& workload : workloads) w.push(workloadToJson(workload));
  j.set("workloads", std::move(w));
  return j;
}

ScenarioSpec ScenarioSpec::fromJson(const Json& doc) {
  ObjectReader r(doc, "scenario");
  const std::string schema = r.getString("schema");
  if (schema != kScenarioSchema && schema != kScenarioSchemaV2) {
    throw SpecError("unknown value \"" + schema + "\" for \"scenario.schema\" (expected \"" +
                    kScenarioSchema + "\" or \"" + kScenarioSchemaV2 + "\")");
  }
  const bool allowV2 = schema == kScenarioSchemaV2;
  ScenarioSpec spec;
  spec.name = r.getString("name");
  spec.seed = r.getUint("seed");
  spec.telemetry = r.getBool("telemetry");
  if (allowV2 && r.has("domains")) {
    spec.domains = r.getInt("domains");
    if (spec.domains < 0) throw SpecError("\"scenario.domains\" must be non-negative");
  }
  if (allowV2 && r.has("lookahead_us")) spec.lookaheadUs = r.getUint("lookahead_us");
  spec.topology = topologyFromJson(r.getObject("topology"), "topology");
  spec.analysis = analysisFromJson(r.getObject("analysis"), "analysis");
  const Json& w = r.getArray("workloads");
  for (std::size_t i = 0; i < w.size(); ++i) {
    spec.workloads.push_back(
        workloadFromJson(w.at(i), "workloads[" + std::to_string(i) + "]", allowV2));
  }
  if (spec.topology.kind == TopologyKind::kUsecase && !spec.workloads.empty()) {
    throw SpecError("\"workloads\" must be empty for a usecase topology (\"" + spec.name +
                    "\"): the use case drives its own simulation");
  }
  r.done();
  return spec;
}

ScenarioSpec ScenarioSpec::parse(const std::string& text) {
  return fromJson(Json::parse(text));
}

const char* toString(CcAlgo v) {
  switch (v) {
    case CcAlgo::kReno: return "reno";
    case CcAlgo::kHtcp: return "htcp";
    case CcAlgo::kCubic: return "cubic";
  }
  return "?";
}

const char* toString(LossKind v) {
  return v == LossKind::kRandom ? "random" : "periodic";
}

const char* toString(Middlebox v) {
  switch (v) {
    case Middlebox::kNone: return "none";
    case Middlebox::kRouter: return "router";
    case Middlebox::kSwitch: return "switch";
    case Middlebox::kFirewall: return "firewall";
  }
  return "?";
}

const char* toString(SwitchProfileKind v) {
  return v == SwitchProfileKind::kDefault ? "default" : "science_dmz";
}

const char* toString(SiteDesign v) {
  switch (v) {
    case SiteDesign::kGeneralPurpose: return "general_purpose";
    case SiteDesign::kSimpleDmz: return "simple_dmz";
    case SiteDesign::kSupercomputer: return "supercomputer";
    case SiteDesign::kBigData: return "bigdata";
  }
  return "?";
}

const char* toString(UsecaseKind v) {
  switch (v) {
    case UsecaseKind::kColorado: return "colorado";
    case UsecaseKind::kPennState: return "pennstate";
    case UsecaseKind::kNoaa: return "noaa";
    case UsecaseKind::kNerscOlcf: return "nersc_olcf";
  }
  return "?";
}

const char* toString(TopologyKind v) {
  switch (v) {
    case TopologyKind::kPath: return "path";
    case TopologyKind::kFanin: return "fanin";
    case TopologyKind::kEnterpriseEdge: return "enterprise_edge";
    case TopologyKind::kSite: return "site";
    case TopologyKind::kUsecase: return "usecase";
  }
  return "?";
}

bool workloadHasFidelity(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kSteadyFlow:
    case WorkloadKind::kConvergingFlows:
    case WorkloadKind::kTimedFlow:
    case WorkloadKind::kParallelTransfer:
    case WorkloadKind::kProbe:
    case WorkloadKind::kBackground:
      return true;
    case WorkloadKind::kDtnTransfer:
    case WorkloadKind::kCampaign:
    case WorkloadKind::kRoce:
      return false;
  }
  return false;
}

const char* toString(WorkloadKind v) {
  switch (v) {
    case WorkloadKind::kSteadyFlow: return "steady_flow";
    case WorkloadKind::kConvergingFlows: return "converging_flows";
    case WorkloadKind::kTimedFlow: return "timed_flow";
    case WorkloadKind::kParallelTransfer: return "parallel_transfer";
    case WorkloadKind::kDtnTransfer: return "dtn_transfer";
    case WorkloadKind::kCampaign: return "campaign";
    case WorkloadKind::kProbe: return "probe";
    case WorkloadKind::kRoce: return "roce";
    case WorkloadKind::kBackground: return "background";
  }
  return "?";
}

}  // namespace scidmz::scenario
