// Catalog: the Section 6 use cases. Each cell materializes the
// corresponding src/usecase/ run; the renderers rebuild the legacy tables
// (and pennstate's Figure 8-style utilization series, which needs a live
// mid-run firewall change and so runs natively inside its render).
#include <memory>
#include <string>
#include <vector>

#include "scenario/bench_io.hpp"
#include "sim/units.hpp"
#include "scenario/harness.hpp"
#include "scenario/registry.hpp"
#include "usecase/pennstate.hpp"

namespace scidmz::scenario {
namespace {

using namespace scidmz::sim::literals;

// --- usecase_colorado_fanin ------------------------------------------------

std::vector<ScenarioSpec> coloradoSpecs() {
  std::vector<ScenarioSpec> specs;
  for (const int hosts : {2, 5, 8}) {
    for (const bool fixed : {false, true}) {
      ScenarioSpec s;
      s.name = "usecase_colorado_fanin#" + std::to_string(specs.size());
      s.topology.kind = TopologyKind::kUsecase;
      s.topology.usecase.which = UsecaseKind::kColorado;
      s.topology.usecase.physicsHosts = hosts;
      s.topology.usecase.vendorFix = fixed;
      specs.push_back(std::move(s));
    }
  }
  return specs;
}

void renderColorado(const ScenarioEntry& entry, const std::vector<CellOutcome>& outcomes) {
  bench::Table table(entry.name, entry.title, entry.paperRef,
                     {{"hosts", "%-8d"},
                      {"fix", "%-10s"},
                      {"latched_sf", "%-12s"},
                      {"switch_drops", "%-16llu"},
                      {"worst_mbps", "%-14.1f"},
                      {"aggregate_mbps", "%-14.1f"}});
  table.printHeader();
  std::size_t next = 0;
  for (const int hosts : {2, 5, 8}) {
    for (const bool fixed : {false, true}) {
      const auto& o = outcomes[next++];
      table.emit({hosts, fixed ? "applied" : "no",
                  o.result.at("colorado.latched") != 0.0 ? "yes" : "no",
                  static_cast<unsigned long long>(o.result.at("colorado.switch_drops")),
                  o.result.at("colorado.worst_mbps"), o.result.at("colorado.aggregate_mbps")});
    }
  }
  table.blankRow();
  bench::row("paper outcome: before the vendor fix, heavy use collapsed throughput");
  bench::row("(store-and-forward fallback lost its buffers); after the fix,");
  bench::row("\"performance returned to near line rate for each member\".");
  table.json().addNote("before the vendor fix, heavy use collapsed throughput; after the fix,"
                       " performance returned to near line rate for each member");
  table.write();
}

// --- usecase_pennstate_firewall --------------------------------------------

std::vector<ScenarioSpec> pennstateSpecs() {
  ScenarioSpec s;
  s.name = "usecase_pennstate_firewall#0";
  s.topology.kind = TopologyKind::kUsecase;
  s.topology.usecase.which = UsecaseKind::kPennState;
  return {std::move(s)};
}

/// Figure 8 style: sample CoE-edge utilization while flows run, with the
/// firewall feature disabled mid-run. A live mid-run device change cannot
/// be expressed as an independent spec cell, so this stays native.
void utilizationTimeSeries(bench::JsonTable& utilTable) {
  Scenario s;
  auto& vtti = s.topo.addHost("vtti", net::Address(198, 82, 0, 1));
  auto profile = net::FirewallProfile::enterprise10G();
  profile.tcpSequenceChecking = true;
  auto& fw = s.topo.addFirewall("coe-fw", profile);
  auto& server = s.topo.addHost("coe-server", net::Address(10, 30, 1, 1));
  net::LinkParams outside;
  outside.rate = 1_Gbps;
  outside.delay = 5_ms;
  s.topo.connect(vtti, fw, outside);
  net::LinkParams inside;
  inside.rate = 1_Gbps;
  inside.delay = 10_us;
  s.topo.connect(fw, server, inside);
  s.topo.computeRoutes();

  tcp::TcpConfig cfg;
  cfg.algorithm = tcp::CcAlgorithm::kCubic;
  cfg.sndBuf = 64_MB;
  cfg.rcvBuf = 64_MB;

  // Long-lived inbound flow; a fresh connection every 30s (transfers were
  // ongoing; new connections pick up the fixed behaviour after the change).
  std::vector<net::FlowPtr> flows;
  auto launchFlow = [&](std::uint16_t port) {
    // Firewall sequence-checking forensics need real segments: pinned packet.
    net::FlowFactory::Options options;
    options.port = port;
    options.pinned = true;
    auto flow = net::flowFactory(s.ctx).create(vtti, server, cfg, options);
    auto* raw = flow.get();
    flow->onEstablished = [raw] { raw->sendData(sim::DataSize::terabytes(1)); };
    flow->start();
    flows.push_back(std::move(flow));
  };

  launchFlow(5001);
  bench::row("%s", "");
  bench::row("figure-8-style SNMP series (edge utilization, 10s samples):");
  bench::row("%-8s %-12s %-10s", "t_sec", "util_mbps", "note");

  auto sampleDelivered = [&flows]() {
    sim::DataSize total = sim::DataSize::zero();
    for (const auto& f : flows) total += f->ackedBytes();
    return total;
  };

  sim::DataSize last = sim::DataSize::zero();
  for (int t = 10; t <= 120; t += 10) {
    if (t == 60) {
      fw.setTcpSequenceChecking(false);
      // Ongoing connections keep their broken negotiation; users restart
      // their transfers (new connections) as word of the fix spreads.
      launchFlow(5002);
    }
    s.simulator.runFor(10_s);
    const auto now = sampleDelivered();
    const double mbps = static_cast<double>((now - last).bitCount()) / 10.0 / 1e6;
    last = now;
    bench::row("%-8d %-12.1f %-10s", t, mbps, t == 60 ? "<- sequence checking disabled" : "");
    utilTable.addRow({t, mbps, t == 60 ? "sequence checking disabled" : ""});
  }
}

void renderPennstate(const ScenarioEntry& entry, const std::vector<CellOutcome>& outcomes) {
  usecase::PennStateConfig config;
  bench::row("equation 2: required window = %s (paper: 1.25 MB, ~20x the 64KB default)",
             sim::toString(usecase::requiredWindow(config)).c_str());

  bench::Table table(entry.name, entry.title, entry.paperRef,
                     {{"direction", "%-12s"},
                      {"sequence_checking", "%-22s"},
                      {"mbps", "%-14.1f"},
                      {"peak_window_bytes", "%-18llu"}});
  const auto& o = outcomes[0];
  table.blankRow();
  table.printHeader();
  struct RowKeys {
    const char* direction;
    const char* state;
    const char* mbps;
    const char* window;
  };
  const RowKeys rows[] = {
      {"inbound", "on (before)", "pennstate.in_before_mbps", "pennstate.in_before_peak_window"},
      {"outbound", "on (before)", "pennstate.out_before_mbps",
       "pennstate.out_before_peak_window"},
      {"inbound", "off (after)", "pennstate.in_after_mbps", "pennstate.in_after_peak_window"},
      {"outbound", "off (after)", "pennstate.out_after_mbps",
       "pennstate.out_after_peak_window"}};
  for (const auto& r : rows) {
    table.emit({r.direction, r.state, o.result.at(r.mbps),
                static_cast<unsigned long long>(o.result.at(r.window))});
  }
  table.blankRow();
  const double inBefore = o.result.at("pennstate.in_before_mbps");
  const double outBefore = o.result.at("pennstate.out_before_mbps");
  const double inSpeedup =
      inBefore > 0 ? o.result.at("pennstate.in_after_mbps") / inBefore : 0.0;
  const double outSpeedup =
      outBefore > 0 ? o.result.at("pennstate.out_after_mbps") / outBefore : 0.0;
  bench::row("speedup: inbound %.1fx, outbound %.1fx (paper: ~5x inbound, ~12x outbound",
             inSpeedup, outSpeedup);
  bench::row("from a lower outbound baseline; our symmetric model improves both alike)");
  table.json().addNote(bench::formatRow("speedup: inbound %.1fx, outbound %.1fx (paper: ~5x"
                                        " inbound, ~12x outbound from a lower outbound"
                                        " baseline)",
                                        inSpeedup, outSpeedup));
  table.write();

  bench::JsonTable utilTable("usecase_pennstate_firewall_util",
                             "figure-8-style SNMP series (edge utilization, 10s samples)",
                             "Figure 8, Dart et al. SC13", {"t_sec", "util_mbps", "note"});
  utilizationTimeSeries(utilTable);
  utilTable.write();
}

// --- usecase_noaa_transfer -------------------------------------------------

std::vector<ScenarioSpec> noaaSpecs() {
  ScenarioSpec s;
  s.name = "usecase_noaa_transfer#0";
  s.topology.kind = TopologyKind::kUsecase;
  s.topology.usecase.which = UsecaseKind::kNoaa;
  return {std::move(s)};
}

void renderNoaa(const ScenarioEntry& entry, const std::vector<CellOutcome>& outcomes) {
  const auto& o = outcomes[0];
  const double legacyMBps = o.result.at("noaa.legacy_MBps");
  const double dmzMBps = o.result.at("noaa.dmz_MBps");
  const double batchSecs = o.result.at("noaa.batch_s");
  const double speedup = legacyMBps > 0 ? dmzMBps / legacyMBps : 0.0;
  bench::row("%-28s %-14s %-20s", "path", "rate_MBps", "239.5GB batch time");
  bench::row("%-28s %-14.2f %s", "firewalled FTP (legacy)", legacyMBps,
             legacyMBps > 0 ? "weeks (extrapolated)" : "n/a");
  bench::row("%-28s %-14.1f %.1f minutes", "science DMZ DTN + Globus", dmzMBps,
             batchSecs / 60.0);
  bench::row("%s", "");
  bench::row("speedup: %.0fx    (paper: 1-2 MB/s -> ~395 MB/s, \"nearly 200 times\",", speedup);
  bench::row("273 files / 239.5 GB \"in just over 10 minutes\")");

  bench::JsonTable table(entry.name, entry.title, entry.paperRef,
                         {"path", "rate_MBps", "batch_minutes"});
  table.addRow({"firewalled FTP (legacy)", legacyMBps, "weeks (extrapolated)"});
  table.addRow({"science DMZ DTN + Globus", dmzMBps, batchSecs / 60.0});
  table.addNote(bench::formatRow(
      "speedup: %.0fx (paper: 1-2 MB/s -> ~395 MB/s, nearly 200 times)", speedup));
  table.write();
}

// --- usecase_nersc_olcf ----------------------------------------------------

std::vector<ScenarioSpec> nerscSpecs() {
  ScenarioSpec s;
  s.name = "usecase_nersc_olcf#0";
  s.topology.kind = TopologyKind::kUsecase;
  s.topology.usecase.which = UsecaseKind::kNerscOlcf;
  return {std::move(s)};
}

void renderNersc(const ScenarioEntry& entry, const std::vector<CellOutcome>& outcomes) {
  const auto& o = outcomes[0];
  const double beforeMBps = o.result.at("nersc.before_MBps");
  const double afterMBps = o.result.at("nersc.after_MBps");
  const double fileBeforeSecs = o.result.at("nersc.file_before_s");
  const double fileAfterSecs = o.result.at("nersc.file_after_s");
  const double campaignAfterSecs = o.result.at("nersc.campaign_after_s");
  const double speedup = beforeMBps > 0 ? afterMBps / beforeMBps : 0.0;
  bench::row("%-26s %-12s %-20s %-18s", "path", "rate_MBps", "33GB file", "40TB campaign");
  bench::row("%-26s %-12.2f %-20s %-18s", "login-node path (before)", beforeMBps,
             (std::to_string(fileBeforeSecs / 3600.0).substr(0, 4) + " hours").c_str(),
             "months");
  bench::row("%-26s %-12.1f %-20s %.2f days", "DTN to DTN (after)", afterMBps,
             (std::to_string(fileAfterSecs / 60.0).substr(0, 4) + " minutes").c_str(),
             campaignAfterSecs / 86400.0);
  bench::row("%s", "");
  bench::row("speedup: %.0fx    (paper: >workday for one 33 GB file -> 200 MB/s;", speedup);
  bench::row("40 TB in under three days; \"at least a factor of 20\" for many groups)");

  bench::JsonTable table(entry.name, entry.title, entry.paperRef,
                         {"path", "rate_MBps", "file_33gb_hours", "campaign_40tb_days"});
  table.addRow({"login-node path (before)", beforeMBps, fileBeforeSecs / 3600.0, "months"});
  table.addRow({"DTN to DTN (after)", afterMBps, fileAfterSecs / 3600.0,
                campaignAfterSecs / 86400.0});
  table.addNote(bench::formatRow(
      "speedup: %.0fx (paper: >workday for one 33 GB file -> 200 MB/s; 40 TB in under"
      " three days)",
      speedup));
  table.write();
}

}  // namespace

void registerUsecaseScenarios(ScenarioRegistry& registry) {
  registry.add({"usecase_colorado_fanin", "usecase", "RCNet aggregation switch defect",
                "Section 6.1 + Figures 6-7, Dart et al. SC13", "hosts_grid", coloradoSpecs,
                renderColorado, nullptr});
  registry.add({"usecase_pennstate_firewall", "usecase",
                "window scaling stripped by the firewall",
                "Section 6.2 + Figure 8 + Equation 2, Dart et al. SC13", "pennstate",
                pennstateSpecs, renderPennstate, nullptr});
  registry.add({"usecase_noaa_transfer", "usecase", "NERSC -> NOAA reforecast retrieval",
                "Section 6.3, Dart et al. SC13", "noaa", noaaSpecs, renderNoaa, nullptr});
  registry.add({"usecase_nersc_olcf", "usecase", "inter-center mass storage transfers",
                "Section 6.4, Dart et al. SC13", "nersc", nerscSpecs, renderNersc, nullptr});
}

}  // namespace scidmz::scenario
