// Scale catalog:
//   esnet_scale — WAN ring of DTN sites sized for the sharded scheduler
//
// The entry is native: it drives the sharded harness directly (ring
// construction + attachShards), which the spec engine's path-topology
// schema cannot express. The printed per-site table and its JSON mirror
// are byte-identical at every --domains; bench/micro_shard reuses
// runEsnetScale() for the scaling curve.
#include <cstdint>

#include "scenario/bench_io.hpp"
#include "scenario/esnet_scale.hpp"
#include "scenario/registry.hpp"
#include "scenario/shard.hpp"
#include "sim/sweep.hpp"

namespace scidmz::scenario {

namespace {

void runEsnetScaleNative() {
  EsnetScaleConfig cfg;  // catalog defaults: 8 sites x 4 DTNs, 0.5 s
  cfg.domains = processDomainsOverride().value_or(1);

  sim::SweepRunner sweep(1);
  const auto results = sweep.run<EsnetScaleResult>(
      1, [&cfg](sim::SweepCell& cell) { return runEsnetScale(cfg, cell); }, "ring");
  const EsnetScaleResult& r = results[0];

  bench::Table table("esnet_scale", "WAN ring of DTN sites under bulk load",
                     "Section 5 (ESnet backbone) + Figure 4, Dart et al. SC13",
                     {{"site", "%-6d"},
                      {"hosts", "%-6d"},
                      {"flows_in", "%-8d"},
                      {"delivered_mb", "%-14.1f"}});
  table.printHeader();
  unsigned long long total = 0;
  for (int i = 0; i < cfg.sites; ++i) {
    const unsigned long long bytes = r.deliveredBySite[static_cast<std::size_t>(i)];
    total += bytes;
    table.emit({i, cfg.hostsPerSite, cfg.hostsPerSite * cfg.flowsPerHost,
                static_cast<double>(bytes) / 1e6});
  }
  table.blankRow();
  table.note(bench::formatRow(
      "%d sites in a 10-14ms WAN ring, %llu flows (each one hop clockwise), "
      "%.1f MB total in %.1fs",
      cfg.sites, static_cast<unsigned long long>(r.flows),
      static_cast<double>(total) / 1e6, cfg.runDuration.toSeconds()));
  table.note("per-site delivered bytes are byte-identical at any --domains; "
             "events/s scales with domains (see bench/micro_shard)");
  table.write();
  bench::writeSweepReport(sweep, "esnet_scale");
}

}  // namespace

void registerScaleScenarios(ScenarioRegistry& registry) {
  registry.add({"esnet_scale", "scale",
                "WAN ring of DTN sites under bulk load (sharded scheduler)",
                "Section 5 (ESnet backbone) + Figure 4, Dart et al. SC13", "ring",
                nullptr, nullptr, runEsnetScaleNative});
}

}  // namespace scidmz::scenario
