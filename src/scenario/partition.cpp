#include "scenario/partition.hpp"

#include <numeric>

namespace scidmz::scenario {

int ShardPlanBuilder::indexOf(const std::string& name) {
  const auto [it, inserted] = index_.try_emplace(name, static_cast<int>(nodes_.size()));
  if (inserted) nodes_.push_back(name);
  return it->second;
}

void ShardPlanBuilder::addNode(const std::string& name) { indexOf(name); }

void ShardPlanBuilder::addEdge(const std::string& a, const std::string& b, sim::Duration delay) {
  const int ia = indexOf(a);
  const int ib = indexOf(b);
  edges_.push_back(Edge{ia, ib, delay});
}

ShardPlan ShardPlanBuilder::plan(int requestedDomains, sim::Duration lookaheadFloor) const {
  ShardPlan out;
  if (requestedDomains < 1) requestedDomains = 1;

  // Union-find; contract every sub-floor edge.
  std::vector<int> parent(nodes_.size());
  std::iota(parent.begin(), parent.end(), 0);
  const auto find = [&parent](int x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
      x = parent[static_cast<std::size_t>(x)];
    }
    return x;
  };
  for (const Edge& e : edges_) {
    if (e.delay >= lookaheadFloor) continue;
    const int ra = find(e.a);
    const int rb = find(e.b);
    // Union toward the lower root so atom identity follows first mention.
    if (ra != rb) parent[static_cast<std::size_t>(ra < rb ? rb : ra)] = ra < rb ? ra : rb;
  }

  // Atoms in first-mention order, with device counts.
  std::vector<int> atomOf(nodes_.size(), -1);
  std::vector<std::vector<int>> atoms;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const int root = find(static_cast<int>(i));
    if (atomOf[static_cast<std::size_t>(root)] < 0) {
      atomOf[static_cast<std::size_t>(root)] = static_cast<int>(atoms.size());
      atoms.emplace_back();
    }
    atoms[static_cast<std::size_t>(atomOf[static_cast<std::size_t>(root)])].push_back(
        static_cast<int>(i));
  }

  const int effective =
      atoms.empty() ? 1 : std::min<int>(requestedDomains, static_cast<int>(atoms.size()));
  out.domains = effective;

  // Contiguous blocking balanced by device count: domain d ends once the
  // running total crosses (d+1)/effective of all devices.
  const std::size_t total = nodes_.size();
  int domain = 0;
  std::size_t assigned = 0;
  for (const auto& atom : atoms) {
    for (const int node : atom) {
      out.nodeDomain[nodes_[static_cast<std::size_t>(node)]] = domain;
    }
    assigned += atom.size();
    while (domain + 1 < effective &&
           assigned * static_cast<std::size_t>(effective) >=
               (static_cast<std::size_t>(domain) + 1) * total) {
      ++domain;
    }
  }
  return out;
}

}  // namespace scidmz::scenario
