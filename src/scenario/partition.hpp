// Automatic topology partitioner for sharded execution: contract every
// edge whose propagation delay is below the lookahead floor (those links
// must never be cut), then deal the resulting atoms — LAN-connected device
// groups — into contiguous, device-count-balanced domains. WAN links
// (delay >= floor) are the only cut points, exactly the Science DMZ shape:
// sites are dense low-latency islands stitched by long-haul paths.
#pragma once

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/units.hpp"

namespace scidmz::scenario {

/// The partitioner's output: how many domains were actually used (never
/// more than the number of atoms) and each device's assignment.
struct ShardPlan {
  int domains = 1;
  std::map<std::string, int> nodeDomain;
};

/// Collects the device graph by name, then plans. Nodes referenced only by
/// addEdge are registered implicitly; insertion order (first mention) is
/// the deterministic atom order.
class ShardPlanBuilder {
 public:
  void addNode(const std::string& name);
  void addEdge(const std::string& a, const std::string& b, sim::Duration delay);

  /// Partition into at most `requestedDomains` (>= 1) domains with cuts
  /// only at edges of delay >= `lookaheadFloor`. Atoms are assigned to
  /// domains in first-mention order, blocked so device counts balance.
  [[nodiscard]] ShardPlan plan(int requestedDomains, sim::Duration lookaheadFloor) const;

 private:
  int indexOf(const std::string& name);

  struct Edge {
    int a = 0;
    int b = 0;
    sim::Duration delay = sim::Duration::zero();
  };
  std::vector<std::string> nodes_;
  std::unordered_map<std::string, int> index_;
  std::vector<Edge> edges_;
};

}  // namespace scidmz::scenario
