// The scenario engine: materialize a ScenarioSpec into a live topology +
// applications, run it, and return a flat name -> value metric map.
//
// Determinism contract: a given spec produces bit-identical metrics on
// every run at any SCIDMZ_SWEEP_THREADS — device construction touches no
// simulator state, loss/background rngs are pure forks of the cell seed,
// and every metric is either an exact integer counter (< 2^53) or a value
// computed by the simulation itself. Renderers that need a legacy table's
// derived quantities (Mbps, fractions, speedups) recompute them from these
// raw metrics with the exact legacy arithmetic.
#pragma once

#include <map>
#include <stdexcept>
#include <string>

#include "scenario/spec.hpp"
#include "sim/sweep.hpp"

namespace scidmz::scenario {

/// Flat results of one scenario cell. Keys are "<prefix>.<metric>":
/// workload metrics under the workload's label (or "w<index>"), device
/// counters under "fw."/"sw."/"seg<k>.", analytic passes under
/// "validate."/"path.", and a labeled workload additionally snapshots the
/// device counters under "<label>." at its completion instant.
struct ScenarioResult {
  std::map<std::string, double> metrics;

  [[nodiscard]] bool has(const std::string& name) const {
    return metrics.find(name) != metrics.end();
  }
  [[nodiscard]] double get(const std::string& name, double fallback = 0.0) const {
    const auto it = metrics.find(name);
    return it == metrics.end() ? fallback : it->second;
  }
  /// Throwing lookup for metrics a renderer cannot do without.
  [[nodiscard]] double at(const std::string& name) const {
    const auto it = metrics.find(name);
    if (it == metrics.end()) {
      throw std::out_of_range("scenario result has no metric \"" + name + "\"");
    }
    return it->second;
  }
};

/// Build the spec's topology, run its analysis passes and workloads in
/// order, and finish the sweep cell (events executed + telemetry snapshot).
/// Throws SpecError when the spec combines a workload with a topology that
/// cannot host it (e.g. a campaign on a two-host path).
ScenarioResult runSpec(const ScenarioSpec& spec, sim::SweepCell& cell);

}  // namespace scidmz::scenario
