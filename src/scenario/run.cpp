#include "scenario/run.hpp"

#include <cstdio>

#include "scenario/bench_io.hpp"
#include "sim/sweep.hpp"

namespace scidmz::scenario {

std::vector<CellOutcome> runSpecs(const std::vector<ScenarioSpec>& specs,
                                  const std::string& sweepName, const std::string& benchName) {
  sim::SweepRunner sweep;
  auto results = sweep.run<ScenarioResult>(
      specs.size(),
      [&specs](sim::SweepCell& cell) { return runSpec(specs[cell.index], cell); }, sweepName);
  std::vector<CellOutcome> outcomes;
  outcomes.reserve(results.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    outcomes.push_back(CellOutcome{&specs[i], std::move(results[i])});
  }
  bench::writeSweepReport(sweep, benchName.c_str());
  return outcomes;
}

int runScenario(const ScenarioEntry& entry) {
  bench::header((entry.name + ": " + entry.title).c_str(), entry.paperRef.c_str());
  if (entry.native) {
    entry.native();
    return 0;
  }
  const auto specs = entry.specs();
  const auto outcomes = runSpecs(specs, entry.sweepName, entry.name);
  entry.render(entry, outcomes);
  return 0;
}

int runScenarioMain(const std::string& name) {
  const auto* entry = ScenarioRegistry::builtin().find(name);
  if (entry == nullptr) {
    std::fprintf(stderr, "unknown scenario \"%s\"\n", name.c_str());
    return 1;
  }
  return runScenario(*entry);
}

}  // namespace scidmz::scenario
