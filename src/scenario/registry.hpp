// The scenario catalog: every paper figure, reference architecture,
// Section 6 use case, and ablation registers its ScenarioSpec(s) plus a
// renderer that turns the raw per-cell metrics back into the bench's
// table. Benches become thin wrappers over runScenarioMain(name), and
// scidmz_run drives the same entries from the command line.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "scenario/engine.hpp"
#include "scenario/spec.hpp"

namespace scidmz::scenario {

/// One sweep cell's spec and the metrics the engine produced for it.
struct CellOutcome {
  const ScenarioSpec* spec = nullptr;
  ScenarioResult result;
};

struct ScenarioEntry {
  std::string name;       ///< bench/binary name, e.g. "fig1_tcp_loss_rtt"
  std::string family;     ///< "figure" | "arch" | "usecase" | "ablation" | "vc"
  std::string title;      ///< header/table title (header prints "name: title")
  std::string paperRef;
  std::string sweepName;  ///< SweepRunner sweep label
  /// The cells, in sweep/table order. Empty for native entries.
  std::function<std::vector<ScenarioSpec>()> specs;
  /// Print the tables/notes from the sweep results. Runs after all cells
  /// complete, on the main thread, in legacy output order.
  std::function<void(const ScenarioEntry&, const std::vector<CellOutcome>&)> render;
  /// A fully self-driven entry (fig2's perfSONAR mesh): builds, runs, and
  /// prints on its own. Mutually exclusive with specs/render.
  std::function<void()> native;
};

class ScenarioRegistry {
 public:
  void add(ScenarioEntry entry) { entries_.push_back(std::move(entry)); }
  [[nodiscard]] const ScenarioEntry* find(const std::string& name) const;
  [[nodiscard]] const std::vector<ScenarioEntry>& entries() const { return entries_; }

  /// The built-in catalog, in paper order (figures, architectures, use
  /// cases, ablations, virtual circuits).
  static const ScenarioRegistry& builtin();

 private:
  std::vector<ScenarioEntry> entries_;
};

// One registration hook per catalog translation unit.
void registerFigureScenarios(ScenarioRegistry& registry);
void registerArchScenarios(ScenarioRegistry& registry);
void registerUsecaseScenarios(ScenarioRegistry& registry);
void registerAblationScenarios(ScenarioRegistry& registry);
void registerHybridScenarios(ScenarioRegistry& registry);
void registerVcScenarios(ScenarioRegistry& registry);
void registerScaleScenarios(ScenarioRegistry& registry);

}  // namespace scidmz::scenario
