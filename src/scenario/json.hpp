// Minimal JSON value, parser, and deterministic writer for the scenario
// layer (scidmz.scenario.v1 documents and the scidmz_run CLI).
//
// Design goals, in order: (1) deterministic output — dump() of a given
// value is byte-stable, object keys keep insertion order, numbers use the
// shortest representation that round-trips, so serialize(parse(x)) is a
// fixed point; (2) actionable errors — parse failures carry line/column,
// and the spec layer can name the offending key; (3) no dependencies.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace scidmz::scenario {

class JsonError : public std::runtime_error {
 public:
  explicit JsonError(const std::string& message) : std::runtime_error(message) {}
};

/// A parsed JSON value. Objects preserve key insertion order (both when
/// parsed and when built programmatically) so dumps are deterministic.
class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;
  Json(std::nullptr_t) {}                                 // NOLINT(google-explicit-constructor)
  Json(bool v) : kind_(Kind::kBool), bool_(v) {}          // NOLINT(google-explicit-constructor)
  Json(double v) : kind_(Kind::kNumber), number_(v) {}    // NOLINT(google-explicit-constructor)
  Json(int v) : Json(static_cast<double>(v)) {}           // NOLINT(google-explicit-constructor)
  Json(std::uint64_t v)                                   // NOLINT(google-explicit-constructor)
      : Json(static_cast<double>(v)) {}
  Json(std::int64_t v)                                    // NOLINT(google-explicit-constructor)
      : Json(static_cast<double>(v)) {}
  Json(const char* v) : kind_(Kind::kString), string_(v) {}  // NOLINT
  Json(std::string v)                                     // NOLINT(google-explicit-constructor)
      : kind_(Kind::kString), string_(std::move(v)) {}

  static Json array() {
    Json j;
    j.kind_ = Kind::kArray;
    return j;
  }
  static Json object() {
    Json j;
    j.kind_ = Kind::kObject;
    return j;
  }

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool isNull() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool isBool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool isNumber() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool isString() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool isArray() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool isObject() const { return kind_ == Kind::kObject; }

  [[nodiscard]] bool asBool() const {
    requireKind(Kind::kBool, "bool");
    return bool_;
  }
  [[nodiscard]] double asNumber() const {
    requireKind(Kind::kNumber, "number");
    return number_;
  }
  [[nodiscard]] const std::string& asString() const {
    requireKind(Kind::kString, "string");
    return string_;
  }

  // --- array access ------------------------------------------------------
  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] const Json& at(std::size_t i) const {
    requireKind(Kind::kArray, "array");
    return items_.at(i);
  }
  Json& push(Json v) {
    requireKind(Kind::kArray, "array");
    items_.push_back(std::move(v));
    return items_.back();
  }

  // --- object access (insertion-ordered) ---------------------------------
  [[nodiscard]] bool contains(std::string_view key) const;
  /// Null-object sentinel when the key is absent.
  [[nodiscard]] const Json& get(std::string_view key) const;
  /// Set (insert or overwrite, keeping the original position on overwrite).
  Json& set(std::string key, Json value);
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& members() const {
    return members_;
  }
  /// Mutable lookup; inserts a null member when absent.
  Json& operator[](std::string_view key);

  /// Parse a complete JSON document; trailing garbage is an error.
  static Json parse(std::string_view text);

  /// Compact deterministic serialization (no whitespace). Numbers use the
  /// shortest printf "%.Ng" form that round-trips through strtod.
  [[nodiscard]] std::string dump() const;
  /// Pretty serialization (2-space indent) for files meant to be edited.
  [[nodiscard]] std::string pretty() const;

 private:
  void requireKind(Kind k, const char* what) const {
    if (kind_ != k) throw JsonError(std::string("JSON value is not a ") + what);
  }
  void dumpTo(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;
};

/// Append the canonical text form of `v` (shortest round-trip). Exposed for
/// table/number formatting reuse.
void appendJsonNumber(std::string& out, double v);

/// Append `s` JSON-escaped, including the surrounding quotes.
void appendJsonString(std::string& out, std::string_view s);

}  // namespace scidmz::scenario
