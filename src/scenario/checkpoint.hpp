// Snapshot/restore orchestrator: one versioned blob ("scidmz.snap.v1")
// holding the full dynamic state of a scenario — clock + event keys, rng,
// context counters, device/link/queue state, TCP and fluid flow state, and
// the telemetry hub.
//
// Restore is rebuild-then-overlay (closures cannot cross a serialization
// boundary): the caller first reconstructs the scenario *identically in
// code* — same topology, same flows, same construction order — then
// restoreSnapshot() resets the clock/sequence numbering and each component
// re-arms its pending events under their original (time, sequence) keys.
// Pop order is strictly (time, seq), so the restored run is byte-identical
// to the uninterrupted one at any SCIDMZ_SWEEP_THREADS.
//
// The format is self-validating: every component reports how many pending
// events it claimed, and a snapshot whose claimed total does not match the
// simulator's live-event count is REFUSED — loudly, with an error — rather
// than silently dropping events it cannot re-materialize. Out of scope in
// v1 (all refuse via that accounting or an explicit check): scenario-level
// scheduled closures, packets inside a firewall's inspection pipeline,
// span tracing, the DTN storage pump, perfSONAR probe schedulers, and vc/
// circuit timers. See DESIGN.md "State & serialization".
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace scidmz::sim {
class Simulator;
class Rng;
}  // namespace scidmz::sim

namespace scidmz::net {
class Context;
class Topology;
}  // namespace scidmz::net

namespace scidmz::scenario {

struct Scenario;

inline constexpr const char* kSnapshotMagic = "scidmz.snap.v1";

/// Result of saveSnapshot(): the blob, or a human-readable refusal.
struct SnapshotBlob {
  std::vector<std::uint8_t> bytes;
  std::string error;
  [[nodiscard]] bool ok() const { return error.empty(); }
};

/// Serialize a scenario's dynamic state. Requires Context::armSnapshots()
/// to have been called before the run (the datapath then records in-flight
/// packets alongside their event handles). Refuses — with error set — when
/// any pending event is not owned by a serializable component.
[[nodiscard]] SnapshotBlob saveSnapshot(sim::Simulator& sim, sim::Rng& rng,
                                        net::Context& ctx, net::Topology& topo);

/// Overlay a snapshot onto an identically rebuilt scenario. On success the
/// simulator's clock, event queue, rng and every component's state match
/// the snapshotting run exactly; continuing the run reproduces its bytes.
/// On failure (format mismatch, rebuild divergence, event accounting
/// mismatch) returns false with *error describing the refusal; the target
/// scenario is then in an indeterminate state and must be discarded.
[[nodiscard]] bool restoreSnapshot(sim::Simulator& sim, sim::Rng& rng, net::Context& ctx,
                                   net::Topology& topo, const std::uint8_t* data,
                                   std::size_t size, std::string* error = nullptr);

// Harness conveniences (Scenario bundles the four components).
[[nodiscard]] SnapshotBlob saveSnapshot(Scenario& s);
[[nodiscard]] bool restoreSnapshot(Scenario& s, const std::vector<std::uint8_t>& blob,
                                   std::string* error = nullptr);

/// File wrappers for the scidmz_run --snapshot/--restore flags.
[[nodiscard]] bool saveSnapshotFile(Scenario& s, const std::string& path,
                                    std::string* error = nullptr);
[[nodiscard]] bool restoreSnapshotFile(Scenario& s, const std::string& path,
                                       std::string* error = nullptr);

/// The canonical snapshot-compatible cell shared by `scidmz_run --snapshot/
/// --restore` and bench/micro_snapshot: a 1 Gbps two-hop path with a
/// periodic-loss egress hop, one per-packet and one fluid 48 MB flow,
/// telemetry on, snapshots armed. Deterministic construction — building two
/// cells yields the identical rebuild the restore protocol requires.
class DemoCell {
 public:
  DemoCell();
  ~DemoCell();
  DemoCell(const DemoCell&) = delete;
  DemoCell& operator=(const DemoCell&) = delete;

  [[nodiscard]] Scenario& scenario() { return *scenario_; }
  /// Deterministic per-flow summary table (delivered/acked/retransmits plus
  /// clock and event accounting) — byte-identical between an uninterrupted
  /// run and a restored continuation.
  [[nodiscard]] std::string table() const;

 private:
  struct State;
  // Order matters: flows (in State) hold handles into the scenario's
  // context and must be destroyed first, so scenario_ is declared first.
  std::unique_ptr<Scenario> scenario_;
  std::unique_ptr<State> state_;
};

}  // namespace scidmz::scenario
