// Catalog: the Section 5 / Section 3.2 ablations.
//   ablation_buffer_fanin     — egress buffer sweep under fan-in
//   ablation_pacing           — bursty vs paced senders into a slower egress
//   ablation_parallel_streams — streams x MTU on a lossy 50ms path
//   ablation_firewall_vs_acl  — firewall appliance vs router ACLs
#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "scenario/bench_io.hpp"
#include "sim/units.hpp"
#include "scenario/registry.hpp"

namespace scidmz::scenario {
namespace {

using namespace scidmz::sim::literals;

double mbpsOf(const CellOutcome& o, const std::string& key) {
  return sim::DataRate::bitsPerSecond(static_cast<std::uint64_t>(o.result.at(key))).toMbps();
}

// --- ablation_buffer_fanin -------------------------------------------------

const std::vector<int>& faninSenderCounts() {
  static const std::vector<int> counts{2, 4, 8};
  return counts;
}

const std::vector<std::uint64_t>& faninBuffers() {
  static const std::vector<std::uint64_t> buffers{
      (128_KiB).byteCount(), sim::DataSize::mebibytes(1).byteCount(),
      sim::DataSize::mebibytes(8).byteCount(), sim::DataSize::mebibytes(32).byteCount()};
  return buffers;
}

std::vector<ScenarioSpec> faninSpecs() {
  std::vector<ScenarioSpec> specs;
  for (const int senders : faninSenderCounts()) {
    for (const std::uint64_t buffer : faninBuffers()) {
      ScenarioSpec s;
      s.name = "ablation_buffer_fanin#" + std::to_string(specs.size());
      s.topology.kind = TopologyKind::kFanin;
      auto& f = s.topology.fanin;
      f.senders = senders;
      f.egressBufferBytes = buffer;
      f.egressLink = LinkSpec{10000, 5000, 9000};  // the WAN beyond the aggregation point
      f.senderLink = LinkSpec{10000, 20, 9000};    // senders as fast as the egress: fan-in
      WorkloadSpec w;
      w.kind = WorkloadKind::kConvergingFlows;
      w.tcp.cc = CcAlgo::kCubic;
      w.tcp.bufBytes = (16_MB).byteCount();
      w.port = 6000;
      w.warmupS = 3.0;
      w.windowS = 6.0;
      s.workloads.push_back(w);
      specs.push_back(std::move(s));
    }
  }
  return specs;
}

void renderFanin(const ScenarioEntry& entry, const std::vector<CellOutcome>& outcomes) {
  bench::Table table(entry.name, entry.title, entry.paperRef,
                     {{"senders", "%-10d"},
                      {"egress_buffer", "%-14s"},
                      {"aggregate_mbps", "%-18.1f"},
                      {"drop_pct", "%-10.3f"}});
  table.printHeader();
  std::size_t next = 0;
  for (const int senders : faninSenderCounts()) {
    for (std::size_t b = 0; b < faninBuffers().size(); ++b) {
      const auto& o = outcomes[next++];
      const double aggregateMbps = o.result.at("w0.delta_bits") / 6.0 / 1e6;
      const double dropPct = o.result.at("sw.egress_drop_fraction") * 100.0;
      table.emit({senders, sim::toString(sim::DataSize::bytes(faninBuffers()[b])),
                  aggregateMbps, dropPct});
    }
    table.blankRow();
  }
  bench::row("shallow buffers shave multiple Gbps off the aggregate as coincident");
  bench::row("bursts drop and flows stall in recovery; science-DMZ-class buffers");
  bench::row("carry the same fan-in at line rate.");
  table.json().addNote("shallow buffers shave multiple Gbps off the aggregate as coincident"
                       " bursts drop and flows stall in recovery; science-DMZ-class buffers"
                       " carry the same fan-in at line rate");
  table.write();
}

// --- ablation_pacing -------------------------------------------------------

const std::vector<std::uint64_t>& pacingBuffers() {
  static const std::vector<std::uint64_t> buffers{
      (256_KiB).byteCount(), (512_KiB).byteCount(), sim::DataSize::mebibytes(2).byteCount(),
      sim::DataSize::mebibytes(8).byteCount()};
  return buffers;
}

std::vector<ScenarioSpec> pacingSpecs() {
  std::vector<ScenarioSpec> specs;
  for (const std::uint64_t buffer : pacingBuffers()) {
    for (const bool paced : {false, true}) {
      ScenarioSpec s;
      s.name = "ablation_pacing#" + std::to_string(specs.size());
      s.topology.kind = TopologyKind::kPath;
      auto& p = s.topology.path;
      p.middlebox = Middlebox::kSwitch;
      p.midName = "agg";
      p.egressBufferBytes = buffer;
      p.link = LinkSpec{10000, 10000, 9000};  // 10G sender side
      p.link2 = LinkSpec{1000, 10000, 9000};  // 1G egress: the burst bottleneck
      WorkloadSpec w;
      w.kind = WorkloadKind::kTimedFlow;
      w.tcp.cc = CcAlgo::kHtcp;
      w.tcp.bufBytes = (8_MB).byteCount();
      w.tcp.pacing = paced;
      w.runS = 20.0;
      s.workloads.push_back(w);
      specs.push_back(std::move(s));
    }
  }
  return specs;
}

void renderPacing(const ScenarioEntry& entry, const std::vector<CellOutcome>& outcomes) {
  bench::Table table(entry.name, entry.title, entry.paperRef,
                     {{"egress_buffer", "%-14s"},
                      {"bursty_mbps", "%-14.1f"},
                      {"bursty_retx", "%-10llu", "retx"},
                      {"paced_mbps", "%-14.1f"},
                      {"paced_retx", "%-10llu", "retx"}});
  table.printHeader();
  for (std::size_t i = 0; i < pacingBuffers().size(); ++i) {
    const auto& bursty = outcomes[i * 2];
    const auto& paced = outcomes[i * 2 + 1];
    table.emit({sim::toString(sim::DataSize::bytes(pacingBuffers()[i])),
                bursty.result.at("w0.delivered_bits") / 20.0 / 1e6,
                static_cast<unsigned long long>(bursty.result.at("w0.retx")),
                paced.result.at("w0.delivered_bits") / 20.0 / 1e6,
                static_cast<unsigned long long>(paced.result.at("w0.retx"))});
  }
  table.blankRow();
  bench::row("line-rate bursts need the egress buffer to hold them; pacing shrinks");
  bench::row("the required buffer — the host-side complement to the deep-buffered");
  bench::row("switch the location pattern calls for.");
  table.json().addNote("line-rate bursts need the egress buffer to hold them; pacing shrinks"
                       " the required buffer — the host-side complement to the deep-buffered"
                       " switch");
  table.write();
}

// --- ablation_parallel_streams ---------------------------------------------

const std::vector<int>& streamCounts() {
  static const std::vector<int> counts{1, 2, 4, 8, 16};
  return counts;
}

std::vector<ScenarioSpec> streamsSpecs() {
  std::vector<ScenarioSpec> specs;
  for (const int streams : streamCounts()) {
    for (const std::uint64_t mtu : {std::uint64_t{1500}, std::uint64_t{9000}}) {
      ScenarioSpec s;
      s.name = "ablation_parallel_streams#" + std::to_string(specs.size());
      s.topology.kind = TopologyKind::kPath;
      auto& p = s.topology.path;
      p.link = LinkSpec{10000, 25000, mtu};  // 50ms RTT: a coast-to-coast science path
      LossSpec l;
      l.rate = 1e-4;
      l.rngFork = 4;
      p.losses.push_back(l);
      WorkloadSpec w;
      w.kind = WorkloadKind::kParallelTransfer;
      w.tcp.cc = CcAlgo::kReno;  // the worst case streams rescue
      w.tcp.bufBytes = (32_MB).byteCount();
      w.port = 2811;
      w.bytes = (400_MB).byteCount();
      w.streams = streams;
      w.timeoutS = 1200.0;
      s.workloads.push_back(w);
      specs.push_back(std::move(s));
    }
  }
  return specs;
}

double streamsMbps(const CellOutcome& o) {
  if (o.result.at("w0.finished") == 0.0) return 0.0;
  return static_cast<double>((400_MB).bitCount()) / o.result.at("w0.elapsed_s") / 1e6;
}

void renderStreams(const ScenarioEntry& entry, const std::vector<CellOutcome>& outcomes) {
  bench::Table table(entry.name, entry.title, entry.paperRef,
                     {{"streams", "%-10d"},
                      {"mbps_mtu1500", "%-16.1f"},
                      {"mbps_mtu9000", "%-16.1f"}});
  table.printHeader();
  for (std::size_t i = 0; i < streamCounts().size(); ++i) {
    table.emit({streamCounts()[i], streamsMbps(outcomes[i * 2]), streamsMbps(outcomes[i * 2 + 1])});
  }
  table.blankRow();
  bench::row("both knobs act through the Mathis equation: N streams multiply the");
  bench::row("aggregate window N-fold; jumbo frames multiply MSS (and thus the");
  bench::row("loss-limited rate) 6-fold. DTN defaults combine the two.");
  table.json().addNote("both knobs act through the Mathis equation: N streams multiply the"
                       " aggregate window N-fold; jumbo frames multiply MSS (and thus the"
                       " loss-limited rate) 6-fold");
  table.write();
}

// --- ablation_firewall_vs_acl ----------------------------------------------

const std::vector<int>& fvaRtts() {
  static const std::vector<int> rtts{5, 20, 60};
  return rtts;
}

/// One 10G science flow through the chosen middlebox at the given RTT.
/// Sequence checking stays off on the firewall cells: this ablation
/// isolates the engine/buffer pathology (the header-rewrite pathology is
/// usecase_pennstate).
ScenarioSpec fvaScienceCell(bool useFirewall, int rttMs, std::size_t index) {
  ScenarioSpec s;
  s.name = "ablation_firewall_vs_acl#" + std::to_string(index);
  s.topology.kind = TopologyKind::kPath;
  auto& p = s.topology.path;
  p.src = HostSpec{"remote", "198.128.1.1"};
  p.dst = HostSpec{"dtn", "10.10.1.10"};
  p.link = LinkSpec{10000, static_cast<std::uint64_t>(rttMs) * 500, 9000};
  if (useFirewall) {
    p.middlebox = Middlebox::kFirewall;
    p.midName = "fw";
    p.firewallSeqChecking = false;
  } else {
    p.middlebox = Middlebox::kSwitch;
    p.midName = "dmz-switch";
    p.aclPermitAllDefaultDeny = true;  // the compiled DMZ policy shape
  }
  WorkloadSpec w;
  w.tcp.cc = CcAlgo::kHtcp;
  w.tcp.bufBytes = (256_MB).byteCount();
  w.warmupS = 5.0;
  w.windowS = 15.0;
  s.workloads.push_back(w);
  return s;
}

/// The converse cell: hundreds of short business flows through the same
/// firewall (sequence checking and all), which it handles perfectly well.
ScenarioSpec fvaBusinessCell(std::size_t index) {
  ScenarioSpec s;
  s.name = "ablation_firewall_vs_acl#" + std::to_string(index);
  s.topology.kind = TopologyKind::kEnterpriseEdge;
  WorkloadSpec w;
  w.kind = WorkloadKind::kBackground;
  w.port = 20000;
  w.flowsPerSecond = 150.0;
  w.runS = 30.0;
  w.drainS = 10.0;
  w.rngFork = 3;
  s.workloads.push_back(w);
  return s;
}

std::vector<ScenarioSpec> fvaSpecs() {
  std::vector<ScenarioSpec> specs;
  for (const int rtt : fvaRtts()) {
    specs.push_back(fvaScienceCell(true, rtt, specs.size()));
    specs.push_back(fvaScienceCell(false, rtt, specs.size()));
  }
  specs.push_back(fvaBusinessCell(specs.size()));
  return specs;
}

void renderFva(const ScenarioEntry& entry, const std::vector<CellOutcome>& outcomes) {
  bench::Table table(entry.name, entry.title, entry.paperRef,
                     {{"rtt_ms", "%-8d"},
                      {"firewall_path_mbps", "%-22.1f"},
                      {"acl_switch_path_mbps", "%-22.1f"},
                      {"firewall_drops", "%-16llu"}});
  table.printHeader();
  for (std::size_t i = 0; i < fvaRtts().size(); ++i) {
    const auto& viaFw = outcomes[i * 2];
    const auto& viaAcl = outcomes[i * 2 + 1];
    table.emit({fvaRtts()[i], mbpsOf(viaFw, "w0.bps"), mbpsOf(viaAcl, "w0.bps"),
                static_cast<unsigned long long>(viaFw.result.at("fw.drops_input_buffer"))});
  }
  table.blankRow();
  const auto& business = outcomes.back();
  const auto flows = static_cast<unsigned long long>(business.result.at("w0.flows_started"));
  const auto inspected = static_cast<std::uint64_t>(business.result.at("fw.inspected"));
  const auto drops = static_cast<std::uint64_t>(business.result.at("fw.drops_input_buffer"));
  const double dropFrac = static_cast<double>(drops) /
                          static_cast<double>(std::max<std::uint64_t>(inspected + drops, 1));
  bench::row("business mix through the SAME firewall: %llu flows, %.4f%% buffer drops", flows,
             dropFrac * 100.0);
  table.json().addNote(bench::formatRow(
      "business mix through the SAME firewall: %llu flows, %.4f%% buffer drops", flows,
      dropFrac * 100.0));
  table.blankRow();
  bench::row("the firewall is fine for what it was built for (many small flows) and");
  bench::row("ruinous for single line-rate science flows; ACLs filter at line rate.");
  table.json().addNote("the firewall is fine for what it was built for (many small flows) and"
                       " ruinous for single line-rate science flows; ACLs filter at line rate");
  table.write();
}

}  // namespace

void registerAblationScenarios(ScenarioRegistry& registry) {
  registry.add({"ablation_buffer_fanin", "ablation", "egress buffer sweep under fan-in",
                "Section 5 (fan-in and buffer sizing), Dart et al. SC13", "fanin_grid",
                faninSpecs, renderFanin, nullptr});
  registry.add({"ablation_pacing", "ablation", "bursty vs paced senders into a slower egress",
                "Section 5 (TCP burst behaviour) + DTN tuning guidance, Dart et al. SC13",
                "buffer_grid", pacingSpecs, renderPacing, nullptr});
  registry.add({"ablation_parallel_streams", "ablation", "streams x MTU on a lossy 50ms path",
                "Section 3.2 (DTN tooling) + Section 2.1 (MSS in Eq. 1), Dart et al. SC13",
                "streams_grid", streamsSpecs, renderStreams, nullptr});
  registry.add({"ablation_firewall_vs_acl", "ablation", "the science path's middlebox choice",
                "Section 5 (firewall internals, ACL alternative), Dart et al. SC13", "paths",
                fvaSpecs, renderFva, nullptr});
}

}  // namespace scidmz::scenario
